#!/usr/bin/env python3
"""Speedup-floor gate for the pool bench JSONs (CI bench-smoke).

Usage: bench_gate.py <fresh_dir> <baseline_dir>

Reads the freshly generated BENCH_*.json records from <fresh_dir> and the
checked-in reference copies from <baseline_dir>, then enforces:

  * every `pool_scaling` record keeps sim_speedup >= p — the dense-matmul
    strip deal is embarrassingly parallel in the model, so anything below
    p is a scheduling regression, not noise (the simulated cost model is
    deterministic);
  * the dependent-workload records of bench_pool_algos (closure_pool,
    gauss_pool, dft_pool) never regress below the checked-in sim_speedup
    at the same p — these are the epoch runtime's overlap wins, and a
    drop means a barrier crept back in;
  * no record anywhere reports counters_match == false.

Records also carry a measured `wall_ns` (real backend execution time).
It is machine-dependent by nature and is deliberately NOT gated — the
simulated costs are the reproducible quantities; wall_ns is reported for
human comparison only.

Exits nonzero with a ::error:: line per violation, each naming the file
and record that failed. The model costs are exact integers, so
comparisons use a 1e-6 slack only to absorb the JSON's decimal
formatting.
"""

import json
import sys
from pathlib import Path

SLACK = 1e-6
GATED_ALGOS = ("closure_pool", "gauss_pool", "dft_pool")

# Fields every record must carry for the gate to reason about it.
# (wall_ns is intentionally absent: accepted, never required or gated.)
REQUIRED_FIELDS = ("name", "p", "sim_speedup", "counters_match")


def load(path: Path):
    with open(path) as f:
        return json.load(f)


def describe(path: Path, rec) -> str:
    """Human-readable identity of one record for failure messages."""
    name = rec.get("name", "<unnamed>")
    p = rec.get("p", "?")
    return f"{path.name}: record name={name} p={p}"


def validated_records(path: Path, failures):
    """Yield records that carry every gated field; report the rest."""
    try:
        records = load(path)
    except (OSError, json.JSONDecodeError) as err:
        failures.append(f"{path.name}: unreadable ({err})")
        return
    if not isinstance(records, list):
        failures.append(f"{path.name}: expected a JSON array of records")
        return
    for rec in records:
        missing = [f for f in REQUIRED_FIELDS if f not in rec]
        if missing:
            failures.append(
                f"{describe(path, rec)} is missing required field(s) "
                f"{', '.join(missing)}")
            continue
        yield rec


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_dir, base_dir = Path(sys.argv[1]), Path(sys.argv[2])
    failures = []

    fresh_files = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        failures.append(f"no BENCH_*.json found in {fresh_dir}")

    for path in fresh_files:
        for rec in validated_records(path, failures):
            if rec["counters_match"] is False:
                failures.append(
                    f"{describe(path, rec)} reports counters_match == false")

    # Floor 1: pooled matmul must scale at least linearly in the model.
    scaling = fresh_dir / "BENCH_pool_scaling.json"
    if scaling.exists():
        for rec in validated_records(scaling, failures):
            if rec["name"] != "pool_scaling":
                continue
            if rec["sim_speedup"] < rec["p"] - SLACK:
                failures.append(
                    f"{describe(scaling, rec)}: sim_speedup "
                    f"{rec['sim_speedup']} < p={rec['p']}")
    else:
        failures.append("BENCH_pool_scaling.json missing from fresh run")

    # Floor 2: the dependent workloads must not regress below the
    # checked-in reference at the same unit count.
    base_algos = base_dir / "BENCH_pool_algos.json"
    fresh_algos = fresh_dir / "BENCH_pool_algos.json"
    if base_algos.exists() and fresh_algos.exists():
        baseline = {(r["name"], r["p"]): r["sim_speedup"]
                    for r in validated_records(base_algos, failures)
                    if r["name"] in GATED_ALGOS}
        fresh = {(r["name"], r["p"]): r["sim_speedup"]
                 for r in validated_records(fresh_algos, failures)
                 if r["name"] in GATED_ALGOS}
        for key, floor in sorted(baseline.items()):
            got = fresh.get(key)
            if got is None:
                failures.append(
                    f"{fresh_algos.name}: record name={key[0]} p={key[1]} "
                    "missing from fresh run")
            elif got < floor - SLACK:
                failures.append(
                    f"{fresh_algos.name}: record name={key[0]} p={key[1]}: "
                    f"sim_speedup {got} regressed below checked-in {floor}")
    else:
        for p in (base_algos, fresh_algos):
            if not p.exists():
                failures.append(f"{p} missing")

    for msg in failures:
        print(f"::error::{msg}")
    if not failures:
        print("bench gate: all speedup floors hold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
