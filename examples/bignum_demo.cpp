// Long integer multiplication on the TCU (§4.7): schoolbook as one
// banded-Toeplitz tensor product (Theorem 9) and the Karatsuba hybrid
// (Theorem 10), cross-checked against the RAM schoolbook.
//
//   $ ./bignum_demo

#include <iostream>

#include "intmul/mul.hpp"
#include "util/table.hpp"

int main() {
  using tcu::intmul::BigInt;
  using tcu::util::fmt;
  std::cout << "=== TCU bignum demo ===\n\n";

  // A small worked example.
  const BigInt a = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  const BigInt b = BigInt::from_hex("cafebabedeadbeef0123456789abcdef");
  tcu::Device<std::int64_t> dev({.m = 256, .latency = 32});
  const BigInt c = tcu::intmul::mul_schoolbook_tcu(dev, a, b);
  std::cout << "a   = " << a.to_hex() << "\n"
            << "b   = " << b.to_hex() << "\n"
            << "a*b = " << c.to_hex() << "\n\n";

  // Scaling study: schoolbook-TCU vs Karatsuba-TCU vs RAM schoolbook.
  tcu::util::Table t({"bits", "Thm 9 time", "Thm 10 time", "RAM time",
                      "Thm10/Thm9"});
  tcu::util::Xoshiro256 rng(99);
  for (std::size_t bits : {4096u, 16384u, 65536u, 262144u}) {
    const BigInt x = BigInt::random_bits(bits, rng);
    const BigInt y = BigInt::random_bits(bits, rng);
    tcu::Device<std::int64_t> d9({.m = 256, .latency = 32});
    tcu::Device<std::int64_t> d10({.m = 256, .latency = 32});
    tcu::Counters ram;
    const BigInt p9 = tcu::intmul::mul_schoolbook_tcu(d9, x, y);
    const BigInt p10 = tcu::intmul::mul_karatsuba_tcu(d10, x, y);
    const BigInt pr = tcu::intmul::mul_schoolbook_ram(x, y, ram);
    if (!(p9 == p10) || !(p9 == pr)) {
      std::cerr << "MISMATCH at " << bits << " bits!\n";
      return 1;
    }
    t.add_row({fmt(static_cast<std::uint64_t>(bits)),
               fmt(d9.counters().time()), fmt(d10.counters().time()),
               fmt(ram.time()),
               fmt(static_cast<double>(d10.counters().time()) /
                       static_cast<double>(d9.counters().time()),
                   3)});
  }
  t.print(std::cout);
  std::cout << "\nall products verified against the RAM schoolbook.\n";
  return 0;
}
