// Graph analytics on the TCU: reachability (transitive closure, §4.3) and
// shortest distances (Seidel APSD, §4.4) on random graphs, with model-cost
// comparison against the RAM baselines.
//
//   $ ./graph_analytics [n]

#include <cstdlib>
#include <iostream>

#include "core/costs.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using tcu::util::fmt;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  std::cout << "=== TCU graph analytics (n = " << n << ") ===\n\n";

  // --- transitive closure of a sparse random digraph -------------------
  auto digraph = tcu::graph::random_digraph(n, 4.0 / static_cast<double>(n),
                                            2024);
  std::size_t edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) edges += digraph(i, j) != 0;
  }
  tcu::Device<std::int64_t> dev({.m = 256, .latency = 64});
  auto closed = digraph;
  tcu::graph::closure_tcu(dev, closed.view());
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) reachable += closed(i, j) != 0;
  }
  tcu::Counters ram;
  auto closed_ram = digraph;
  tcu::graph::closure_naive(closed_ram.view(), ram);

  std::cout << "transitive closure: " << edges << " edges -> " << reachable
            << " reachable pairs\n";
  tcu::util::Table t1({"algorithm", "model time", "predicted (Thm 5)"});
  t1.add_row({"closure_tcu", fmt(dev.counters().time()),
              fmt(tcu::costs::thm5_closure(static_cast<double>(n), 256, 64),
                  0)});
  t1.add_row({"closure_naive (RAM)", fmt(ram.time()), "-"});
  t1.print(std::cout);
  std::cout << "results agree: " << (closed == closed_ram ? "yes" : "NO")
            << "\n\n";

  // --- all pairs shortest distances on a connected graph ---------------
  auto graph = tcu::graph::random_connected_graph(
      n, 2.0 / static_cast<double>(n), 2025);
  tcu::Device<std::int64_t> dev2({.m = 256, .latency = 64});
  auto dist = tcu::graph::apsd_seidel(dev2, graph.view());
  tcu::Counters bfs;
  auto dist_bfs = tcu::graph::apsd_bfs(graph.view(), bfs);

  std::int64_t diameter = 0;
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      diameter = std::max(diameter, dist(i, j));
      total += static_cast<double>(dist(i, j));
    }
  }
  std::cout << "APSD: diameter " << diameter << ", mean distance "
            << total / static_cast<double>(n) / static_cast<double>(n)
            << "\n";
  tcu::util::Table t2({"algorithm", "model time", "predicted (Thm 6)"});
  t2.add_row({"apsd_seidel (TCU)", fmt(dev2.counters().time()),
              fmt(tcu::costs::thm6_apsd(static_cast<double>(n), 256, 64),
                  0)});
  t2.add_row({"apsd_bfs (RAM)", fmt(bfs.time()), "-"});
  t2.print(std::cout);
  std::cout << "results agree: " << (dist == dist_bfs ? "yes" : "NO")
            << "\n";
  return 0;
}
