// Quickstart: create an (m, l)-TCU device, run a tensor product, and read
// the cost model.
//
//   $ ./quickstart
//
// Walks through the three model properties of Section 3: the O(m)-time
// tile product, the latency cost l, and the asymmetric tall-left-operand
// streaming — and shows the weak (square-only) model for contrast.

#include <iostream>

#include "core/device.hpp"
#include "linalg/dense.hpp"
#include "systolic/engine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using tcu::util::fmt;
  std::cout << "=== (m, l)-TCU quickstart ===\n\n";

  // A device with a 16x16 tile (m = 256) and latency 100.
  tcu::Device<double> dev({.m = 256, .latency = 100, .name = "demo"});
  std::cout << "device '" << dev.name() << "': tile " << dev.tile_dim()
            << "x" << dev.tile_dim() << " (m = " << dev.m()
            << "), latency l = " << dev.latency() << "\n\n";

  // 1. One tall tensor call: a 1024 x 16 operand streams through a
  //    resident 16 x 16 weight tile.
  tcu::util::Xoshiro256 rng(7);
  tcu::Matrix<double> a(1024, 16), b(16, 16);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < 16; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  auto c = dev.multiply(a, b);
  std::cout << "tall gemm 1024x16 * 16x16:\n"
            << "  tensor calls : " << dev.counters().tensor_calls << "\n"
            << "  model time   : " << dev.counters().time()
            << "  (= n*sqrt(m) + l = 1024*16 + 100)\n"
            << "  MACs         : " << dev.counters().tensor_macs << "\n\n";

  // 2. Blocked dense matmul (Theorem 2) vs the charged RAM baseline.
  const std::size_t d = 256;
  tcu::Matrix<double> x(d, d), y(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = rng.uniform(-1, 1);
      y(i, j) = rng.uniform(-1, 1);
    }
  }
  dev.reset();
  auto z = tcu::linalg::matmul_tcu(dev, x.view(), y.view());
  tcu::Counters ram;
  auto z2 = tcu::linalg::matmul_naive<double>(x.view(), y.view(), ram);
  tcu::util::Table table({"algorithm", "model time", "tensor calls"});
  table.add_row({"matmul_tcu (Thm 2)", fmt(dev.counters().time()),
                 fmt(dev.counters().tensor_calls)});
  table.add_row({"matmul_naive (RAM)", fmt(ram.time()), "0"});
  table.print(std::cout);
  std::cout << "speedup ~ sqrt(m) = "
            << static_cast<double>(ram.time()) /
                   static_cast<double>(dev.counters().time())
            << "\n\n";

  // 3. The weak model (square calls only) pays latency per tile row.
  tcu::Device<double> weak({.m = 256, .latency = 100, .allow_tall = false});
  auto c2 = weak.multiply(a, b);
  std::cout << "same tall gemm on the weak model: time "
            << weak.counters().time() << " over "
            << weak.counters().tensor_calls << " square calls ("
            << weak.counters().latency_time << " latency units vs "
            << 100 << " in tall mode)\n\n";

  // 4. The numeric engine is pluggable: the cycle-level systolic array of
  //    Figure 1 reports cycles next to model time.
  auto sys = tcu::systolic::make_systolic_device<double>({.m = 256});
  auto c3 = sys.multiply(a, b);
  std::cout << "systolic engine: " << sys.counters().systolic_cycles
            << " cycles for model time " << sys.counters().time() << "\n";
  // Results agree across engines and modes.
  double max_diff = 0;
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      max_diff = std::max(max_diff, std::abs(c(i, j) - c3(i, j)));
      max_diff = std::max(max_diff, std::abs(c(i, j) - c2(i, j)));
    }
  }
  std::cout << "max deviation across engines: " << max_diff << "\n";
  (void)z;
  (void)z2;
  return 0;
}
