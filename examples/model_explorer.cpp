// Model explorer: how the (m, l) parameters shape algorithm cost.
//
//   $ ./model_explorer
//
// For dense matrix multiplication (Theorem 2) this prints the measured
// simulated time against the closed form across a grid of m and l, the
// empirical scaling exponent, and the latency share — the numbers behind
// the paper's discussion of TPU-like (huge m, huge l) vs TC-like (small
// m, small l) design points.

#include <iostream>

#include "core/costs.hpp"
#include "linalg/dense.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using tcu::util::fmt;
  std::cout << "=== (m, l) design-space explorer: dense MM, d = 256 ===\n\n";
  const std::size_t d = 256;
  tcu::util::Xoshiro256 rng(4242);
  tcu::Matrix<double> a(d, d), b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  }

  tcu::util::Table t({"m", "l", "sim time", "predicted", "ratio",
                      "latency share", "speedup vs RAM"});
  const double ram_time = static_cast<double>(d) * d * d;
  for (std::size_t m : {16u, 256u, 4096u, 65536u}) {
    for (std::uint64_t ell : {0u, 1024u, 65536u}) {
      if (m > d * d) continue;
      tcu::Device<double> dev({.m = m, .latency = ell});
      auto c = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
      const double sim = static_cast<double>(dev.counters().time());
      const double pred = tcu::costs::thm2_dense(
          static_cast<double>(d) * d, static_cast<double>(m),
          static_cast<double>(ell));
      t.add_row({fmt(static_cast<std::uint64_t>(m)), fmt(ell), fmt(sim, 0),
                 fmt(pred, 0), fmt(sim / pred, 2),
                 fmt(static_cast<double>(dev.counters().latency_time) / sim,
                     2),
                 fmt(ram_time / sim, 1)});
      (void)c;
    }
  }
  t.print(std::cout);

  // Empirical exponent check: time vs dimension at fixed (m, l).
  std::cout << "\nscaling fit at m = 256, l = 0 (Theorem 2 predicts d^3):\n";
  std::vector<double> ds, ts;
  for (std::size_t dim : {64u, 128u, 256u, 512u}) {
    tcu::Matrix<double> x(dim, dim, 1.0), y(dim, dim, 1.0);
    tcu::Device<double> dev({.m = 256});
    auto c = tcu::linalg::matmul_tcu(dev, x.view(), y.view());
    ds.push_back(static_cast<double>(dim));
    ts.push_back(static_cast<double>(dev.counters().time()));
    (void)c;
  }
  const auto fit = tcu::util::fit_power_law(ds, ts);
  std::cout << "  measured exponent " << fit.exponent << " (r^2 = " << fit.r2
            << ")\n";
  return 0;
}
