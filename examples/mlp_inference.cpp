// Neural-network inference: the workload tensor units were built for.
//
//   $ ./mlp_inference
//
// A small MLP classifies points of two interleaved spirals. The weights
// are hand-constructed (no training loop — the paper models inference,
// §2.1's TPU workflow); the interesting output is the cost structure:
// the whole batch streams through resident weight tiles, so tensor calls
// and latency are independent of batch size.

#include <cmath>
#include <iostream>
#include <numbers>

#include "nn/layers.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

// Random-feature classifier: a wide random hidden layer followed by a
// linear readout fitted coarsely to the radius rule (|p| < 1 -> class 0).
tcu::nn::Mlp build_network(std::size_t hidden, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  tcu::Matrix<double> w1(2, hidden);
  std::vector<double> b1(hidden);
  for (std::size_t j = 0; j < hidden; ++j) {
    w1(0, j) = rng.uniform(-2, 2);
    w1(1, j) = rng.uniform(-2, 2);
    b1[j] = rng.uniform(-1, 1);
  }
  tcu::Matrix<double> w2(hidden, 1);
  std::vector<double> b2{0.0};
  // Readout approximating the radius: weights proportional to the hidden
  // unit's direction norm (a crude but deterministic construction).
  for (std::size_t j = 0; j < hidden; ++j) {
    w2(j, 0) = (w1(0, j) * w1(0, j) + w1(1, j) * w1(1, j)) /
               static_cast<double>(hidden);
  }
  tcu::nn::Mlp mlp;
  mlp.add_layer(tcu::nn::DenseLayer(std::move(w1), std::move(b1)));
  mlp.add_layer(tcu::nn::DenseLayer(std::move(w2), std::move(b2)));
  return mlp;
}

}  // namespace

int main() {
  using tcu::util::fmt;
  std::cout << "=== MLP inference on the TCU ===\n\n";
  const std::size_t hidden = 64;
  auto mlp = build_network(hidden, 7);

  // Batch of points on two circles (radius 0.5 vs 2.0).
  const std::size_t per_class = 256;
  tcu::Matrix<double> batch(2 * per_class, 2);
  for (std::size_t i = 0; i < per_class; ++i) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                         static_cast<double>(per_class);
    batch(i, 0) = 0.5 * std::cos(angle);
    batch(i, 1) = 0.5 * std::sin(angle);
    batch(per_class + i, 0) = 2.0 * std::cos(angle);
    batch(per_class + i, 1) = 2.0 * std::sin(angle);
  }

  tcu::Device<double> dev({.m = 256, .latency = 200});
  auto scores = mlp.forward(dev, batch.view());

  // Separation check: outer-circle scores exceed inner-circle scores.
  double inner_max = -1e9, outer_min = 1e9;
  for (std::size_t i = 0; i < per_class; ++i) {
    inner_max = std::max(inner_max, scores(i, 0));
    outer_min = std::min(outer_min, scores(per_class + i, 0));
  }
  std::cout << "score ranges: inner max " << inner_max << ", outer min "
            << outer_min << " -> "
            << (outer_min > inner_max ? "separable" : "overlapping")
            << "\n\n";

  // The headline: batch size does not change tensor calls or latency.
  tcu::util::Table t({"batch", "tensor calls", "latency units",
                      "model time"});
  for (std::size_t bs : {32u, 128u, 512u}) {
    tcu::Matrix<double> sub(bs, 2);
    for (std::size_t i = 0; i < bs; ++i) {
      sub(i, 0) = batch(i % (2 * per_class), 0);
      sub(i, 1) = batch(i % (2 * per_class), 1);
    }
    tcu::Device<double> d({.m = 256, .latency = 200});
    (void)mlp.forward(d, sub.view());
    t.add_row({fmt(static_cast<std::uint64_t>(bs)),
               fmt(d.counters().tensor_calls),
               fmt(d.counters().latency_time), fmt(d.counters().time())});
  }
  t.print(std::cout);
  std::cout << "\n(latency is paid per weight tile, never per input — the\n"
               " asymmetry property the model formalizes in Section 3)\n";
  return 0;
}
