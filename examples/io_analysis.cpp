// External-memory analysis (Section 5 / Theorem 12) as an interactive
// walkthrough: record a weak-TCU algorithm's trace, replay it on the
// I/O machine at M = 3m, and compare against the classical matmul I/O
// bounds.
//
//   $ ./io_analysis [d]

#include <cstdlib>
#include <iostream>

#include "core/costs.hpp"
#include "extmem/extmem.hpp"
#include "linalg/dense.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using tcu::util::fmt;
  const std::size_t d = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  std::cout << "=== Theorem 12 walkthrough (d = " << d << ") ===\n\n";

  tcu::util::Xoshiro256 rng(2026);
  tcu::Matrix<double> a(d, d), b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  }

  tcu::util::Table t({"m", "weak TCU time", "I/O lower bound (M=3m)",
                      "time/bound", "trace replay I/Os",
                      "blocked matmul I/Os"});
  for (std::size_t m : {16u, 64u, 256u}) {
    tcu::Device<double> dev({.m = m, .allow_tall = false});
    dev.enable_trace();
    auto c = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
    (void)c;
    const double bound = tcu::costs::extmem_mm_lower_bound(
        static_cast<double>(d) * d, 3.0 * static_cast<double>(m));
    const auto replay = tcu::extmem::simulate_trace_io(dev.trace(), m);
    const auto blocked = tcu::extmem::matmul_io_blocked(d, 3 * m, 1);
    t.add_row({fmt(static_cast<std::uint64_t>(m)),
               fmt(dev.counters().time()), fmt(bound, 0),
               fmt(static_cast<double>(dev.counters().time()) / bound, 3),
               fmt(replay), fmt(blocked)});
  }
  t.print(std::cout);
  std::cout
      << "\nReading the table (Section 5 of the paper):\n"
         "  * every weak-TCU call simulates in Theta(m) I/Os, so the trace\n"
         "    replay is exactly 3x the tensor time;\n"
         "  * the weak TCU time exceeds the I/O lower bound by the constant\n"
         "    sqrt(3) at every m — the Theorem 12 transfer, observed;\n"
         "  * an actual LRU machine running blocked matmul stays within a\n"
         "    small constant of the same bound.\n";
  return 0;
}
