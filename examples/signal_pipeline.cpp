// Signal processing on the TCU: spectral analysis with the Theorem 7 DFT
// and a heat-equation simulation with the §4.6 stencil pipeline.
//
//   $ ./signal_pipeline

#include <cmath>
#include <iostream>
#include <numbers>

#include "dft/dft.hpp"
#include "stencil/stencil.hpp"
#include "util/table.hpp"

int main() {
  using tcu::dft::Complex;
  using tcu::util::fmt;
  std::cout << "=== TCU signal pipeline ===\n\n";

  // --- spectral analysis ------------------------------------------------
  // A signal with two tones (bins 17 and 93) plus a DC offset.
  const std::size_t n = 1024;
  tcu::dft::CVec signal(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double tt = static_cast<double>(t);
    signal[t] = 0.5 +
                1.0 * std::sin(2.0 * std::numbers::pi * 17.0 * tt /
                               static_cast<double>(n)) +
                0.25 * std::cos(2.0 * std::numbers::pi * 93.0 * tt /
                                static_cast<double>(n));
  }
  tcu::Device<Complex> dev({.m = 256, .latency = 50});
  auto spectrum = tcu::dft::dft_tcu(dev, signal);

  // Report the three strongest bins in the lower half-spectrum.
  tcu::util::Table peaks({"bin", "magnitude"});
  std::vector<std::pair<double, std::size_t>> mags;
  for (std::size_t k = 0; k < n / 2; ++k) {
    mags.emplace_back(std::abs(spectrum[k]), k);
  }
  std::sort(mags.rbegin(), mags.rend());
  for (int top = 0; top < 3; ++top) {
    peaks.add_row({fmt(static_cast<std::uint64_t>(mags[top].second)),
                   fmt(mags[top].first, 1)});
  }
  peaks.print(std::cout);
  std::cout << "(expected: DC at bin 0, tones at bins 17 and 93)\n"
            << "DFT model time: " << dev.counters().time() << " over "
            << dev.counters().tensor_calls << " tensor calls\n\n";

  // --- heat diffusion ---------------------------------------------------
  // A hot square in the middle of a plate, k = 32 time steps in one
  // blocked-convolution pass.
  const std::size_t dim = 64, k = 32;
  tcu::Matrix<double> plate(dim, dim, 0.0);
  for (std::size_t i = 28; i < 36; ++i) {
    for (std::size_t j = 28; j < 36; ++j) plate(i, j) = 100.0;
  }
  auto kernel = tcu::stencil::heat_kernel(0.2, 0.2);
  tcu::Device<Complex> dev2({.m = 256, .latency = 50});
  auto heated = tcu::stencil::stencil_tcu(dev2, plate.view(), kernel, k);

  tcu::Counters ram;
  auto reference = tcu::stencil::stencil_direct(plate.view(), kernel, k, ram);
  double max_diff = 0, total = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      max_diff = std::max(max_diff, std::abs(heated(i, j) - reference(i, j)));
      total += heated(i, j);
    }
  }
  std::cout << "heat equation after " << k << " steps:\n"
            << "  centre temperature : " << heated(32, 32) << " (from 100)\n"
            << "  total heat         : " << total << " (conserved from "
            << 64 * 100.0 << ")\n"
            << "  max |tcu - direct| : " << max_diff << "\n";
  tcu::util::Table t({"algorithm", "model time"});
  t.add_row({"stencil_tcu (Thm 8)", fmt(dev2.counters().time())});
  t.add_row({"stencil_direct (RAM)", fmt(ram.time())});
  t.print(std::cout);
  return 0;
}
