// tcu_lint — static source audit for the (m, l)-TCU residency contracts.
//
// The runtime checker (src/check/contract.hpp) catches violations on the
// paths a test actually executes; this tool audits the source itself, so
// a raw untagged call cannot even be merged without either a tag or an
// explicit, reasoned annotation. Three rules:
//
//   [untagged-gemm]  A raw `.gemm(` / `->gemm(` call. Untagged calls
//                    clobber the whole resident set (§3 charges l per
//                    tile load; an anonymous operand can't be vouched
//                    for), so every such site must either use
//                    `gemm_resident` or carry
//                        // tcu-lint: untagged-ok(<reason>)
//                    on the same line or the line above.
//
//   [empty-chain]    `submit_affine(cost, {}, task)`: a declared-affine
//                    task with an empty chain defeats the dealer — it is
//                    `submit` with extra steps and a misleading name.
//
//   [missing-anchor] A `gemm_resident(` / `submit_affine(` call site
//                    whose arguments derive a key on the spot from a
//                    `*_key(...)` helper (generation-dependent keys like
//                    Gaussian elimination's per-pivot panels), in a file
//                    that never calls `evict_all`. Derived-key tagged
//                    loops must re-anchor the resident set between
//                    generations or stale keys alias fresh content.
//                    Suppress with // tcu-lint: anchored-ok(<reason>).
//                    (`make_tile_key` itself is exempt: it is the key
//                    constructor, not a generation-dependent derivation.)
//
//   [raw-backend]    An identifier ending in `backend` (or `backend_`)
//                    dereferenced with `->` outside core/device.hpp and
//                    the core/backend* implementation files. The GEMM
//                    backend seam is accounted for exactly once, inside
//                    Device::issue(): a direct `backend->run(...)`
//                    bypasses the cost model AND the wall-clock timer.
//                    Suppress with // tcu-lint: backend-ok(<reason>)
//                    (tests driving the raw kernels deliberately, say).
//
//   [epoch-deps]     In a file that uses the epoch runtime (calls
//                    `join_epoch(`), a `submit_affine(` that passes no
//                    TaskDeps argument runs as soon as the current fence
//                    allows — correct only when a fence covers every
//                    predecessor. Such sites must either declare their
//                    predecessor set (a TaskDeps argument) or state why
//                    fencing suffices with
//                        // tcu-lint: epoch-free-ok(<reason>).
//
// Annotations require a non-empty reason — `untagged-ok()` is itself a
// finding. Usage:
//
//   tcu_lint <file-or-directory>...   # exit 1 if any finding
//   tcu_lint --self-test              # run the embedded fixtures
//
// No third-party dependencies; plain lexical scanning with enough state
// to ignore comments and string literals.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct SourceLine {
  std::string code;     ///< comments and literal contents blanked
  std::string comment;  ///< comment text (annotations live here)
};

bool has_code(const std::string& code) {
  return std::any_of(code.begin(), code.end(),
                     [](unsigned char c) { return !std::isspace(c); });
}

/// Split a translation unit into per-line code/comment parts, blanking
/// string and character literal contents (so `"submit_affine("` in a log
/// message never matches) while preserving column positions.
std::vector<SourceLine> lex(const std::string& text) {
  std::vector<SourceLine> lines;
  SourceLine current;
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated string/char at end of line: recover (raw strings and
      // line continuations are not used in this codebase).
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      lines.push_back(std::move(current));
      current = SourceLine{};
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          current.code += '"';
          state = State::kString;
        } else if (c == '\'') {
          current.code += '\'';
          state = State::kChar;
        } else {
          current.code += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          current.code += '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          current.code += '\'';
          state = State::kCode;
        }
        break;
      case State::kLineComment:
        current.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment += c;
        }
        break;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

/// Annotations found in comments, resolved to the code line they bless:
/// their own line if it has code, otherwise the next line that does.
struct Annotations {
  std::map<std::size_t, std::set<std::string>> by_line;  // 0-based line
  std::vector<Finding> malformed;
};

Annotations collect_annotations(const std::string& path,
                                const std::vector<SourceLine>& lines) {
  Annotations out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    std::size_t pos = 0;
    while ((pos = comment.find("tcu-lint:", pos)) != std::string::npos) {
      std::size_t p = pos + std::string("tcu-lint:").size();
      while (p < comment.size() && comment[p] == ' ') ++p;
      std::size_t kind_end = p;
      while (kind_end < comment.size() &&
             (std::isalnum(static_cast<unsigned char>(comment[kind_end])) ||
              comment[kind_end] == '-')) {
        ++kind_end;
      }
      const std::string kind = comment.substr(p, kind_end - p);
      const std::size_t open = kind_end;
      const std::size_t close = comment.find(')', open);
      const bool known = kind == "untagged-ok" || kind == "anchored-ok" ||
                         kind == "epoch-free-ok" || kind == "backend-ok";
      const bool shaped = known && open < comment.size() &&
                          comment[open] == '(' && close != std::string::npos;
      const std::string reason =
          shaped ? comment.substr(open + 1, close - open - 1) : "";
      if (!shaped || !has_code(reason)) {
        out.malformed.push_back(
            {path, i + 1, "annotation",
             "malformed tcu-lint annotation; expected 'tcu-lint: "
             "untagged-ok(<reason>)', 'tcu-lint: anchored-ok(<reason>)', "
             "'tcu-lint: epoch-free-ok(<reason>)', or 'tcu-lint: "
             "backend-ok(<reason>)' with a non-empty reason"});
        pos = p;
        continue;
      }
      // Bless this line if it has code, else the next code line.
      std::size_t target = i;
      if (!has_code(lines[i].code)) {
        target = i + 1;
        while (target < lines.size() && !has_code(lines[target].code)) {
          ++target;
        }
      }
      out.by_line[target].insert(kind);
      pos = close + 1;
    }
  }
  return out;
}

bool annotated(const Annotations& ann, std::size_t line,
               const std::string& kind) {
  const auto it = ann.by_line.find(line);
  return it != ann.by_line.end() && it->second.count(kind) > 0;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Find call sites of `name(` on a line's code, returning the offsets of
/// the opening parenthesis. `name` must not be part of a longer
/// identifier on either side.
std::vector<std::size_t> find_calls(const std::string& code,
                                    const std::string& name) {
  std::vector<std::size_t> opens;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t after = pos + name.size();
    const bool right_ident = after < code.size() && ident_char(code[after]);
    while (after < code.size() && code[after] == ' ') ++after;
    if (left_ok && !right_ident && after < code.size() &&
        code[after] == '(') {
      opens.push_back(after);
    }
    pos += name.size();
  }
  return opens;
}

/// Collect the argument text of a call spanning up to `max_lines` lines,
/// starting at `open` (offset of '(') on line `start`. Returns the text
/// between the outer parentheses, or an empty string if unbalanced
/// within the window.
std::string call_args(const std::vector<SourceLine>& lines, std::size_t start,
                      std::size_t open, std::size_t max_lines = 40) {
  std::string args;
  int depth = 0;
  for (std::size_t li = start; li < lines.size() && li < start + max_lines;
       ++li) {
    const std::string& code = lines[li].code;
    for (std::size_t ci = li == start ? open : 0; ci < code.size(); ++ci) {
      const char c = code[ci];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == ')') {
        --depth;
        if (depth == 0) return args;
      }
      if (depth >= 1) args += c;
    }
    args += ' ';
  }
  return std::string();
}

std::string strip_spaces(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

/// True if `args` calls a `*_key(...)` helper other than make_tile_key —
/// a generation-dependent key derived at the call site.
bool derives_key(const std::string& args) {
  std::size_t pos = 0;
  while ((pos = args.find("_key", pos)) != std::string::npos) {
    std::size_t begin = pos;
    while (begin > 0 && ident_char(args[begin - 1])) --begin;
    std::size_t after = pos + 4;
    const bool right_ident = after < args.size() && ident_char(args[after]);
    std::size_t paren = after;
    while (paren < args.size() && args[paren] == ' ') ++paren;
    if (!right_ident && paren < args.size() && args[paren] == '(' &&
        args.substr(begin, after - begin) != "make_tile_key") {
      return true;
    }
    pos = after;
  }
  return false;
}

/// Offsets where an identifier ending in `backend` / `backend_` is
/// dereferenced with `->` on this line's code.
std::vector<std::size_t> find_backend_derefs(const std::string& code) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find("backend", pos)) != std::string::npos) {
    std::size_t end = pos + std::string("backend").size();
    if (end < code.size() && code[end] == '_') ++end;
    std::size_t arrow = end;
    while (arrow < code.size() && code[arrow] == ' ') ++arrow;
    if ((end >= code.size() || !ident_char(code[end])) &&
        arrow + 1 < code.size() && code[arrow] == '-' &&
        code[arrow + 1] == '>') {
      hits.push_back(pos);
    }
    pos = end;
  }
  return hits;
}

/// Files allowed to dereference the backend pointer: the accounting choke
/// point (Device::issue) and the backend implementations themselves.
bool backend_seam_file(const std::string& path) {
  return path.find("core/device.hpp") != std::string::npos ||
         path.find("core/backend") != std::string::npos;
}

std::vector<Finding> scan_source(const std::string& path,
                                 const std::string& text) {
  const std::vector<SourceLine> lines = lex(text);
  Annotations ann = collect_annotations(path, lines);
  std::vector<Finding> findings = std::move(ann.malformed);

  bool file_has_evict_all = false;
  bool file_has_join_epoch = false;
  for (const SourceLine& line : lines) {
    if (!file_has_evict_all && !find_calls(line.code, "evict_all").empty()) {
      file_has_evict_all = true;
    }
    if (!file_has_join_epoch &&
        !find_calls(line.code, "join_epoch").empty()) {
      file_has_join_epoch = true;
    }
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;

    // [untagged-gemm]: member calls `.gemm(` / `->gemm(` only — the
    // checker's own definitions and free helpers don't clobber anything.
    for (const std::size_t open : find_calls(code, "gemm")) {
      std::size_t name_pos = code.rfind("gemm", open);
      const bool member =
          name_pos > 0 && (code[name_pos - 1] == '.' ||
                           (code[name_pos - 1] == '>' && name_pos > 1 &&
                            code[name_pos - 2] == '-'));
      if (!member) continue;
      if (annotated(ann, i, "untagged-ok")) continue;
      findings.push_back(
          {path, i + 1, "untagged-gemm",
           "raw untagged gemm call clobbers the resident set; use "
           "gemm_resident or annotate with // tcu-lint: "
           "untagged-ok(<reason>)"});
    }

    // [raw-backend]: the seam is charged inside Device::issue() only.
    if (!backend_seam_file(path)) {
      for (std::size_t hit = 0; hit < find_backend_derefs(code).size();
           ++hit) {
        if (annotated(ann, i, "backend-ok")) continue;
        findings.push_back(
            {path, i + 1, "raw-backend",
             "raw backend-> dereference bypasses the Device::issue() "
             "accounting (model cost and wall clock); route the call "
             "through the device or annotate with // tcu-lint: "
             "backend-ok(<reason>)"});
      }
    }

    // [empty-chain] and [epoch-deps]
    for (const std::size_t open : find_calls(code, "submit_affine")) {
      const std::string args = strip_spaces(call_args(lines, i, open));
      if (args.empty()) continue;  // unbalanced within window; skip
      if (args.find(",{},") != std::string::npos) {
        findings.push_back(
            {path, i + 1, "empty-chain",
             "submit_affine with an empty chain declares no residency; "
             "use submit for untagged work"});
      }
      if (file_has_join_epoch && args.find("TaskDeps") == std::string::npos &&
          !annotated(ann, i, "epoch-free-ok")) {
        findings.push_back(
            {path, i + 1, "epoch-deps",
             "submit_affine in an epoch-runtime file (this file calls "
             "join_epoch) declares no predecessor set; pass a TaskDeps "
             "argument or annotate with // tcu-lint: epoch-free-ok(<reason>) "
             "stating why fence ordering suffices"});
      }
    }

    // [missing-anchor]
    for (const char* callee : {"gemm_resident", "submit_affine"}) {
      for (const std::size_t open : find_calls(code, callee)) {
        const std::string args = call_args(lines, i, open);
        if (!derives_key(args)) continue;
        if (file_has_evict_all) continue;
        if (annotated(ann, i, "anchored-ok")) continue;
        findings.push_back(
            {path, i + 1, "missing-anchor",
             std::string(callee) +
                 " derives a generation-dependent key at the call site "
                 "but this file never re-anchors with evict_all; stale "
                 "keys would alias fresh content (annotate with // "
                 "tcu-lint: anchored-ok(<reason>) if anchoring happens "
                 "elsewhere)"});
      }
    }
  }
  return findings;
}

// ------------------------------------------------------------- self-test

struct Fixture {
  const char* name;
  const char* source;
  std::vector<std::string> expected_rules;  // in line order
};

int self_test() {
  const std::vector<Fixture> fixtures = {
      {"clean-tagged",
       "void f(Dev& d) {\n"
       "  d.gemm_resident(key, a, b, c);\n"
       "  d.evict_all();\n"
       "}\n",
       {}},
      {"raw-gemm-flagged",
       "void f(Dev& d) { d.gemm(a, b, c); }\n",
       {"untagged-gemm"}},
      {"raw-gemm-arrow-flagged",
       "void f(Dev* d) { d->gemm(a, b, c); }\n",
       {"untagged-gemm"}},
      {"raw-gemm-annotated-same-line",
       "d.gemm(a, b, c);  // tcu-lint: untagged-ok(cold-stream baseline)\n",
       {}},
      {"raw-gemm-annotated-line-above",
       "// tcu-lint: untagged-ok(operand changes every call)\n"
       "d.gemm(a, b, c);\n",
       {}},
      {"annotation-needs-reason",
       "d.gemm(a, b, c);  // tcu-lint: untagged-ok()\n",
       {"annotation", "untagged-gemm"}},
      {"annotation-unknown-kind",
       "d.gemm(a, b, c);  // tcu-lint: whatever-ok(reason)\n",
       {"annotation", "untagged-gemm"}},
      {"gemm-in-comment-ignored",
       "// an untagged d.gemm(a, b, c) would clobber\n"
       "int x = 0;\n",
       {}},
      {"gemm-in-string-ignored",
       "log(\"calling d.gemm(a, b, c)\");\n",
       {}},
      {"gemm-resident-not-matched",
       "d.gemm_resident(key, a, b, c);\n"
       "d.evict_all();\n",
       {}},
      {"empty-chain-flagged",
       "exec.submit_affine(cost, {}, [](Dev& u) { run(u); });\n",
       {"empty-chain"}},
      {"empty-chain-multiline-flagged",
       "exec.submit_affine(cost,\n"
       "                   { },\n"
       "                   [](Dev& u) { run(u); });\n",
       {"empty-chain"}},
      {"nonempty-chain-clean",
       "exec.submit_affine(cost, {key}, [](Dev& u) { run(u); });\n"
       "exec.evict_all();\n",
       {}},
      {"derived-key-without-anchor",
       "d.gemm_resident(panel_key(kb, jb), a, b, c);\n",
       {"missing-anchor"}},
      {"derived-key-with-anchor",
       "d.evict_all();\n"
       "d.gemm_resident(panel_key(kb, jb), a, b, c);\n",
       {}},
      {"derived-key-annotated",
       "// tcu-lint: anchored-ok(caller anchors per generation)\n"
       "d.gemm_resident(panel_key(kb, jb), a, b, c);\n",
       {}},
      {"make-tile-key-exempt",
       "d.gemm_resident(make_tile_key(kTag, id), a, b, c);\n",
       {}},
      {"derived-key-in-chain",
       "exec.submit_affine(cost, {panel_key(kb, jb)}, task);\n",
       {"missing-anchor"}},
      {"epoch-file-affine-without-deps",
       "exec.submit_affine(cost, {key}, task);\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {"epoch-deps"}},
      {"epoch-file-affine-with-deps",
       "exec.submit_affine(cost, {key}, TaskDeps{{prev.serial}}, task);\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {}},
      {"epoch-file-affine-annotated",
       "// tcu-lint: epoch-free-ok(fence-ordered: one level per epoch)\n"
       "exec.submit_affine(cost, {key}, task);\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {}},
      {"barrier-file-affine-exempt",
       "exec.submit_affine(cost, {key}, task);\n"
       "exec.join();\n"
       "exec.evict_all();\n",
       {}},
      {"raw-backend-flagged",
       "void f() { backend_->run(a, b, c, false, ctr); }\n",
       {"raw-backend"}},
      {"raw-backend-member-flagged",
       "void f(Unit& u) { u.gemm_backend->run(a, b, c, false, ctr); }\n",
       {"raw-backend"}},
      {"raw-backend-annotated",
       "// tcu-lint: backend-ok(test drives the raw kernel deliberately)\n"
       "backend_->run(a, b, c, false, ctr);\n",
       {}},
      {"raw-backend-longer-identifier-clean",
       "void f() { backend_name(); backend_kind = x; }\n",
       {}},
      {"src/core/device.hpp",  // the accounting choke point is exempt
       "void issue() { backend_->run(A, B, C, accumulate, counters_); }\n",
       {}},
      {"src/core/backend_micro.cpp",  // as are the implementations
       "void warm() { backend_->run(a, b, c, false, ctr); }\n",
       {}},
      {"epoch-free-needs-reason",
       "exec.submit_affine(cost, {key}, task);  "
       "// tcu-lint: epoch-free-ok()\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {"annotation", "epoch-deps"}},
  };

  int failures = 0;
  for (const Fixture& fixture : fixtures) {
    const std::vector<Finding> findings =
        scan_source(fixture.name, fixture.source);
    std::vector<std::string> rules;
    rules.reserve(findings.size());
    for (const Finding& f : findings) rules.push_back(f.rule);
    if (rules != fixture.expected_rules) {
      ++failures;
      std::ostringstream want, got;
      for (const auto& r : fixture.expected_rules) want << r << " ";
      for (const auto& r : rules) got << r << " ";
      std::cerr << "self-test FAILED: " << fixture.name << "\n  expected: "
                << want.str() << "\n  got:      " << got.str() << "\n";
      for (const Finding& f : findings) {
        std::cerr << "    " << f.path << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
      }
    }
  }
  if (failures == 0) {
    std::cout << "tcu_lint self-test: " << fixtures.size()
              << " fixtures passed\n";
    return 0;
  }
  std::cerr << "tcu_lint self-test: " << failures << " of "
            << fixtures.size() << " fixtures failed\n";
  return 1;
}

// ------------------------------------------------------------------ driver

bool lintable(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx" || ext == ".hxx";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--self-test") return self_test();
  if (args.empty()) {
    std::cerr << "usage: tcu_lint <file-or-directory>... | --self-test\n";
    return 2;
  }

  std::vector<std::filesystem::path> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
      if (ec) {
        std::cerr << "tcu_lint: cannot walk " << arg << ": " << ec.message()
                  << "\n";
        return 2;
      }
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      files.push_back(arg);
    } else {
      std::cerr << "tcu_lint: no such file or directory: " << arg << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "tcu_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<Finding> file_findings =
        scan_source(file.string(), text.str());
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  for (const Finding& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (findings.empty()) {
    std::cout << "tcu_lint: " << files.size() << " files scanned, 0 findings\n";
    return 0;
  }
  std::cout << "tcu_lint: " << files.size() << " files scanned, "
            << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return 1;
}
