#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>

namespace tcu_analyze {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"annotation", "malformed tcu-lint annotation"},
      {"untagged-gemm",
       "raw untagged gemm call clobbers the resident set"},
      {"empty-chain", "submit_affine with an empty chain declares nothing"},
      {"missing-anchor",
       "derived-key tagged call in a file that never re-anchors"},
      {"raw-backend",
       "backend-> dereference bypasses Device::issue() accounting"},
      {"epoch-deps",
       "submit_affine without TaskDeps in an epoch-runtime file"},
      {"stale-ticket",
       "ticket assigned before a join_epoch() fence used as a dep after"},
      {"dead-ticket", "ticket captured from submit* but never consumed"},
      {"ticket-before-def",
       "ticket used before any submit assigns it"},
      {"chain-thrash",
       "declared chain longer than the static resident_tiles capacity"},
      {"uncharged-compute",
       "arithmetic loop over tile data the cost model never charges"},
  };
  return catalog;
}

namespace {

// ------------------------------------------------------- line-rule helpers
// Ported from the PR 6 single-file tool; these scan the blanked code
// channel, so strings and comments never match.

std::vector<std::size_t> find_calls(const std::string& code,
                                    const std::string& name) {
  std::vector<std::size_t> opens;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t after = pos + name.size();
    const bool right_ident = after < code.size() && ident_char(code[after]);
    while (after < code.size() && code[after] == ' ') ++after;
    if (left_ok && !right_ident && after < code.size() &&
        code[after] == '(') {
      opens.push_back(after);
    }
    pos += name.size();
  }
  return opens;
}

std::string call_args(const std::vector<SourceLine>& lines, std::size_t start,
                      std::size_t open, std::size_t max_lines = 40) {
  std::string args;
  int depth = 0;
  for (std::size_t li = start; li < lines.size() && li < start + max_lines;
       ++li) {
    const std::string& code = lines[li].code;
    for (std::size_t ci = li == start ? open : 0; ci < code.size(); ++ci) {
      const char c = code[ci];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == ')') {
        --depth;
        if (depth == 0) return args;
      }
      if (depth >= 1) args += c;
    }
    args += ' ';
  }
  return std::string();
}

std::string strip_spaces(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

bool derives_key(const std::string& args) {
  std::size_t pos = 0;
  while ((pos = args.find("_key", pos)) != std::string::npos) {
    std::size_t begin = pos;
    while (begin > 0 && ident_char(args[begin - 1])) --begin;
    std::size_t after = pos + 4;
    const bool right_ident = after < args.size() && ident_char(args[after]);
    std::size_t paren = after;
    while (paren < args.size() && args[paren] == ' ') ++paren;
    if (!right_ident && paren < args.size() && args[paren] == '(' &&
        args.substr(begin, after - begin) != "make_tile_key") {
      return true;
    }
    pos = after;
  }
  return false;
}

std::vector<std::size_t> find_backend_derefs(const std::string& code) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find("backend", pos)) != std::string::npos) {
    std::size_t end = pos + std::string("backend").size();
    if (end < code.size() && code[end] == '_') ++end;
    std::size_t arrow = end;
    while (arrow < code.size() && code[arrow] == ' ') ++arrow;
    if ((end >= code.size() || !ident_char(code[end])) &&
        arrow + 1 < code.size() && code[arrow] == '-' &&
        code[arrow + 1] == '>') {
      hits.push_back(pos);
    }
    pos = end;
  }
  return hits;
}

/// Files allowed to dereference the backend pointer: the accounting choke
/// point (Device::issue) and the backend implementations themselves.
bool backend_seam_file(const std::string& path) {
  return path.find("core/device.hpp") != std::string::npos ||
         path.find("core/backend") != std::string::npos;
}

/// Files whose whole purpose is elementwise tile access: the storage
/// layer and the backend kernels. Compute there is the charged seam.
bool uncharged_exempt_file(const std::string& path) {
  return backend_seam_file(path) ||
         path.find("core/matrix.hpp") != std::string::npos;
}

// --------------------------------------------------------- token helpers

bool tok_is(const Token& t, Token::Kind kind, const char* text) {
  return t.kind == kind && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return tok_is(t, Token::Kind::kIdent, text);
}

bool is_punct(const Token& t, const char* text) {
  return tok_is(t, Token::Kind::kPunct, text);
}

bool stmt_has_ident(const Statement& s, const char* text) {
  for (const Token& t : s.toks) {
    if (is_ident(t, text)) return true;
  }
  return false;
}

bool stmt_has_punct(const Statement& s, const char* text) {
  for (const Token& t : s.toks) {
    if (is_punct(t, text)) return true;
  }
  return false;
}

/// True if the statement calls `name(` — identifier token followed by an
/// opening parenthesis.
bool stmt_calls(const Statement& s, const char* name) {
  for (std::size_t i = 0; i + 1 < s.toks.size(); ++i) {
    if (is_ident(s.toks[i], name) && is_punct(s.toks[i + 1], "(")) {
      return true;
    }
  }
  return false;
}

bool stmt_has_submit(const Statement& s) {
  for (const Token& t : s.toks) {
    if (t.kind == Token::Kind::kIdent &&
        t.text.rfind("submit", 0) == 0) {
      return true;
    }
  }
  return false;
}

// ------------------------------------------------- per-function dataflow

/// One tracked TaskTicket (or std::vector<TaskTicket>) variable.
struct TicketVar {
  std::string name;
  bool vec = false;
  std::size_t decl = 0;  ///< position in the function's statement list
  std::vector<std::size_t> assigns;  ///< statement positions that assign
  bool submit_assigned = false;      ///< some assignment RHS calls submit*
  struct Use {
    std::size_t at;    ///< statement position
    bool guarded;
    bool dep;          ///< used in a TaskDeps / .after context
  };
  std::vector<Use> uses;
};

/// Methods on a ticket vector that neither assign nor consume tickets.
bool neutral_member(const std::string& name) {
  return name == "reserve" || name == "clear" || name == "resize" ||
         name == "size" || name == "empty" || name == "capacity" ||
         name == "shrink_to_fit";
}

/// Find ticket variables declared in `stmts` (a function's statements,
/// in textual order, indexed by position).
std::vector<TicketVar> collect_ticket_vars(
    const std::vector<const Statement*>& stmts) {
  std::vector<TicketVar> vars;
  for (std::size_t pos = 0; pos < stmts.size(); ++pos) {
    const std::vector<Token>& toks = stmts[pos]->toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "TaskTicket")) continue;
      const bool vec = i > 0 && is_punct(toks[i - 1], "<");
      std::size_t j = i + 1;
      if (vec) {
        // std::vector<TaskTicket> name — skip to past the closing '>'.
        int angle = 1;
        while (j < toks.size() && angle > 0) {
          if (is_punct(toks[j], "<")) ++angle;
          if (is_punct(toks[j], ">")) --angle;
          ++j;
        }
      }
      // Skip cv/ref tokens between the type and the declarator.
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_ident(toks[j], "const"))) {
        ++j;
      }
      // Declarator list: name [init] [, name [init]]*.
      while (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
        const std::string name = toks[j].text;
        std::size_t k = j + 1;
        bool assigned = false;
        // `TaskTicket f(args...)` is a function declaration, not a
        // variable, unless the vector form's sizing constructor.
        if (!vec && k < toks.size() && is_punct(toks[k], "(")) break;
        if (k < toks.size() &&
            (is_punct(toks[k], "(") || is_punct(toks[k], "{"))) {
          const bool brace = is_punct(toks[k], "{");
          int depth = 0;
          std::size_t body = 0;
          do {
            if (is_punct(toks[k], brace ? "{" : "(")) ++depth;
            if (is_punct(toks[k], brace ? "}" : ")")) --depth;
            if (depth > 0) ++body;
            ++k;
          } while (k < toks.size() && depth > 0);
          // `TaskTicket t{};` and `vector<TaskTicket> v(n)` stay
          // default-constructed; `TaskTicket t{serial, unit}` assigns.
          assigned = brace && body > 1;
        } else if (k < toks.size() && is_punct(toks[k], "=")) {
          assigned = true;
          int depth = 0;
          while (k < toks.size() &&
                 !(depth == 0 && is_punct(toks[k], ","))) {
            if (is_punct(toks[k], "(") || is_punct(toks[k], "{") ||
                is_punct(toks[k], "[")) {
              ++depth;
            }
            if (is_punct(toks[k], ")") || is_punct(toks[k], "}") ||
                is_punct(toks[k], "]")) {
              --depth;
            }
            ++k;
          }
        }
        TicketVar var;
        var.name = name;
        var.vec = vec;
        var.decl = pos;
        if (assigned) {
          var.assigns.push_back(pos);
          var.submit_assigned = stmt_has_submit(*stmts[pos]);
        }
        vars.push_back(std::move(var));
        if (k < toks.size() && is_punct(toks[k], ",")) {
          j = k + 1;
          continue;
        }
        break;
      }
      break;  // one declaration per statement is enough
    }
  }
  return vars;
}

/// Classify every occurrence of `var` in the function's statements as an
/// assignment, a neutral member call, or a use.
void classify_occurrences(const std::vector<const Statement*>& stmts,
                          TicketVar& var) {
  for (std::size_t pos = 0; pos < stmts.size(); ++pos) {
    const Statement& s = *stmts[pos];
    const bool dep_ctx = stmt_has_ident(s, "TaskDeps") ||
                         stmt_has_ident(s, "after");
    for (std::size_t i = 0; i < s.toks.size(); ++i) {
      if (!is_ident(s.toks[i], var.name.c_str())) continue;
      if (pos == var.decl && i > 0 &&
          (is_ident(s.toks[i - 1], "TaskTicket") ||
           is_punct(s.toks[i - 1], ">") || is_punct(s.toks[i - 1], "&") ||
           is_punct(s.toks[i - 1], "*") || is_punct(s.toks[i - 1], ",") ||
           is_ident(s.toks[i - 1], "const"))) {
        // The declarator itself, including later names in a
        // multi-declarator list; initializers are handled at collection.
        continue;
      }
      std::size_t j = i + 1;
      if (j < s.toks.size() && is_punct(s.toks[j], "[")) {
        int depth = 1;
        ++j;
        while (j < s.toks.size() && depth > 0) {
          if (is_punct(s.toks[j], "[")) ++depth;
          if (is_punct(s.toks[j], "]")) --depth;
          ++j;
        }
      }
      if (j < s.toks.size() && is_punct(s.toks[j], "=")) {
        var.assigns.push_back(pos);
        var.submit_assigned |= stmt_has_submit(s);
        continue;
      }
      if (j < s.toks.size() && is_punct(s.toks[j], ".") &&
          j + 1 < s.toks.size() &&
          s.toks[j + 1].kind == Token::Kind::kIdent) {
        const std::string& member = s.toks[j + 1].text;
        if (member == "push_back" || member == "emplace_back") {
          var.assigns.push_back(pos);
          var.submit_assigned |= stmt_has_submit(s);
          continue;
        }
        if (neutral_member(member)) continue;
      }
      var.uses.push_back({pos, s.guarded, dep_ctx});
    }
  }
  std::sort(var.assigns.begin(), var.assigns.end());
}

/// Parse a submit_affine call in `s` and return the element count of its
/// chain argument when it is a brace literal, or npos when unknown.
std::size_t static_chain_length(const Statement& s) {
  for (std::size_t i = 0; i + 1 < s.toks.size(); ++i) {
    if (!is_ident(s.toks[i], "submit_affine") ||
        !is_punct(s.toks[i + 1], "(")) {
      continue;
    }
    // Walk the argument list at depth 1, splitting on top-level commas.
    std::size_t j = i + 2;
    int depth = 1;
    int arg = 0;
    while (j < s.toks.size() && depth > 0) {
      const Token& t = s.toks[j];
      if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) {
        if (depth == 1 && arg == 1 && is_punct(t, "{")) {
          // Chain argument: count elements of the brace literal.
          int b = 1;
          std::size_t elems = 0;
          bool any = false;
          std::size_t k = j + 1;
          while (k < s.toks.size() && b > 0) {
            const Token& u = s.toks[k];
            if (is_punct(u, "{") || is_punct(u, "(") || is_punct(u, "[")) {
              ++b;
            } else if (is_punct(u, "}") || is_punct(u, ")") ||
                       is_punct(u, "]")) {
              --b;
            } else if (b == 1 && is_punct(u, ",")) {
              ++elems;
            } else if (b >= 1) {
              any = true;
            }
            ++k;
          }
          return any ? elems + 1 : 0;
        }
        ++depth;
      } else if (is_punct(t, ")") || is_punct(t, "]") ||
                 is_punct(t, "}")) {
        --depth;
      } else if (depth == 1 && is_punct(t, ",")) {
        ++arg;
      }
      ++j;
    }
    return npos;
  }
  return npos;
}

/// Statically-known Config::resident_tiles in this function: the number
/// literal assigned to a `resident_tiles` field, or npos.
std::size_t static_resident_tiles(
    const std::vector<const Statement*>& stmts) {
  for (const Statement* s : stmts) {
    for (std::size_t i = 0; i + 2 < s->toks.size(); ++i) {
      if (is_ident(s->toks[i], "resident_tiles") &&
          is_punct(s->toks[i + 1], "=") &&
          s->toks[i + 2].kind == Token::Kind::kNumber) {
        return static_cast<std::size_t>(
            std::strtoull(s->toks[i + 2].text.c_str(), nullptr, 10));
      }
    }
  }
  return npos;
}

bool stmt_arithmetic(const Statement& s) {
  if (stmt_has_punct(s, "+=") || stmt_has_punct(s, "-=") ||
      stmt_has_punct(s, "*=") || stmt_has_punct(s, "/=")) {
    return true;
  }
  return stmt_has_punct(s, "=") &&
         (stmt_has_punct(s, "*") || stmt_has_punct(s, "+"));
}

/// Run the dataflow rules over one function's statements.
void dataflow_rules(const FileModel& model,
                    const std::vector<const Statement*>& stmts,
                    std::vector<Finding>& out) {
  std::vector<std::size_t> fences;  // positions of join_epoch() calls
  bool has_split_chains = false;
  bool charges = false;
  for (std::size_t pos = 0; pos < stmts.size(); ++pos) {
    if (stmt_calls(*stmts[pos], "join_epoch")) fences.push_back(pos);
    has_split_chains |= stmt_has_ident(*stmts[pos], "split_chains");
    charges |= stmt_calls(*stmts[pos], "charge_cpu") ||
               stmt_calls(*stmts[pos], "charge");
  }

  std::vector<TicketVar> vars = collect_ticket_vars(stmts);
  for (TicketVar& var : vars) {
    classify_occurrences(stmts, var);
    const std::size_t first_assign =
        var.assigns.empty() ? npos : var.assigns.front();

    // [ticket-before-def]
    for (const TicketVar::Use& use : var.uses) {
      if (use.guarded) continue;
      if (first_assign != npos && use.at >= first_assign) continue;
      const std::size_t line = stmts[use.at]->first_line;
      if (model.blessed(line, "ticket-before-def-ok")) continue;
      out.push_back(
          {model.path, line + 1, "ticket-before-def",
           "ticket '" + var.name +
               "' is used before any submit assigns it; a "
               "default-constructed ticket's serial 0 is always ready, so "
               "this declares no ordering (guard the use or assign first; "
               "annotate with // tcu-lint: ticket-before-def-ok(<reason>) "
               "if the always-ready dep is intended)"});
      break;  // one finding per variable is enough
    }

    // [stale-ticket]
    for (const TicketVar::Use& use : var.uses) {
      if (!use.dep) continue;
      std::size_t last_assign = npos;
      for (const std::size_t a : var.assigns) {
        if (a < use.at) last_assign = a;
      }
      if (last_assign == npos) continue;
      bool fenced = false;
      for (const std::size_t f : fences) {
        fenced |= last_assign < f && f < use.at;
      }
      if (!fenced) continue;
      const std::size_t line = stmts[use.at]->first_line;
      if (model.blessed(line, "stale-ticket-ok")) continue;
      out.push_back(
          {model.path, line + 1, "stale-ticket",
           "ticket '" + var.name +
               "' was assigned before a join_epoch() fence and is passed "
               "as a dependency after it; the fence already orders that "
               "work, so the serial is stale — depend on a post-fence "
               "ticket or drop the dep (annotate with // tcu-lint: "
               "stale-ticket-ok(<reason>) if the redundancy is "
               "deliberate)"});
      break;
    }

    // [dead-ticket]
    if (var.submit_assigned && var.uses.empty()) {
      const std::size_t pos = var.assigns.front();
      const std::size_t line = stmts[pos]->first_line;
      if (!model.blessed(line, "dead-ticket-ok")) {
        out.push_back(
            {model.path, line + 1, "dead-ticket",
             "ticket '" + var.name +
                 "' captures a submit result but is never consumed before "
                 "the strict join; the overlap it could declare is lost — "
                 "drop the capture or wire it into a TaskDeps (annotate "
                 "with // tcu-lint: dead-ticket-ok(<reason>) if "
                 "deliberate)"});
      }
    }
  }

  // [chain-thrash]
  const std::size_t capacity = static_resident_tiles(stmts);
  if (capacity != npos && !has_split_chains) {
    for (const Statement* s : stmts) {
      const std::size_t len = static_chain_length(*s);
      if (len == npos || len <= capacity) continue;
      const std::size_t line = s->first_line;
      if (model.blessed(line, "chain-thrash-ok")) continue;
      out.push_back(
          {model.path, line + 1, "chain-thrash",
           "declared chain has " + std::to_string(len) +
               " tiles but resident_tiles is " + std::to_string(capacity) +
               " at this call site; every pass over the chain reloads "
               "every tile (use split_chains or raise the capacity; "
               "annotate with // tcu-lint: chain-thrash-ok(<reason>) if "
               "thrash is the point)"});
    }
  }

  // [uncharged-compute]
  if (!uncharged_exempt_file(model.path) && !charges) {
    for (const Statement* s : stmts) {
      if (!s->looped || !stmt_arithmetic(*s)) continue;
      if (!stmt_calls(*s, "tile_view") && !stmt_calls(*s, "strip_view") &&
          !stmt_calls(*s, "tile_data")) {
        continue;
      }
      if (stmt_has_submit(*s) || stmt_has_ident(*s, "gemm") ||
          stmt_has_ident(*s, "gemm_resident") ||
          stmt_has_ident(*s, "pack") || stmt_has_ident(*s, "unpack")) {
        continue;
      }
      const std::size_t line = s->first_line;
      if (model.blessed(line, "uncharged-ok")) continue;
      out.push_back(
          {model.path, line + 1, "uncharged-compute",
           "arithmetic loop over tile_view/strip_view data outside "
           "submit_cpu and the backend seam; this work never reaches the "
           "cost model — move it into submit_cpu (or charge_cpu the "
           "flops) or annotate with // tcu-lint: uncharged-ok(<reason>)"});
    }
  }
}

}  // namespace

std::vector<Finding> scan_source(const std::string& path,
                                 const std::string& text) {
  const FileModel model = build_model(path, text);
  const std::vector<SourceLine>& lines = model.lines;
  std::vector<Finding> findings;

  // ---- malformed annotations (kept first within a line) ----------------
  for (const std::size_t line : model.malformed) {
    findings.push_back(
        {path, line + 1, "annotation",
         "malformed tcu-lint annotation; expected 'tcu-lint: "
         "<kind>(<reason>)' with a non-empty reason, where <kind> is one "
         "of: untagged-ok, anchored-ok, epoch-free-ok, backend-ok, "
         "stale-ticket-ok, dead-ticket-ok, ticket-before-def-ok, "
         "chain-thrash-ok, uncharged-ok"});
  }

  // ---- line rules (PR 6 behavior, statement-anchored annotations) ------
  bool file_has_evict_all = false;
  bool file_has_join_epoch = false;
  for (const SourceLine& line : lines) {
    if (!file_has_evict_all && !find_calls(line.code, "evict_all").empty()) {
      file_has_evict_all = true;
    }
    if (!file_has_join_epoch &&
        !find_calls(line.code, "join_epoch").empty()) {
      file_has_join_epoch = true;
    }
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;

    // [untagged-gemm]: member calls `.gemm(` / `->gemm(` only — the
    // checker's own definitions and free helpers don't clobber anything.
    for (const std::size_t open : find_calls(code, "gemm")) {
      std::size_t name_pos = code.rfind("gemm", open);
      const bool member =
          name_pos > 0 && (code[name_pos - 1] == '.' ||
                           (code[name_pos - 1] == '>' && name_pos > 1 &&
                            code[name_pos - 2] == '-'));
      if (!member) continue;
      if (model.blessed(i, "untagged-ok")) continue;
      findings.push_back(
          {path, i + 1, "untagged-gemm",
           "raw untagged gemm call clobbers the resident set; use "
           "gemm_resident or annotate with // tcu-lint: "
           "untagged-ok(<reason>)"});
    }

    // [raw-backend]: the seam is charged inside Device::issue() only.
    if (!backend_seam_file(path)) {
      for (std::size_t hit = 0; hit < find_backend_derefs(code).size();
           ++hit) {
        if (model.blessed(i, "backend-ok")) continue;
        findings.push_back(
            {path, i + 1, "raw-backend",
             "raw backend-> dereference bypasses the Device::issue() "
             "accounting (model cost and wall clock); route the call "
             "through the device or annotate with // tcu-lint: "
             "backend-ok(<reason>)"});
      }
    }

    // [empty-chain] and [epoch-deps]
    for (const std::size_t open : find_calls(code, "submit_affine")) {
      const std::string args = strip_spaces(call_args(lines, i, open));
      if (args.empty()) continue;  // unbalanced within window; skip
      if (args.find(",{},") != std::string::npos) {
        findings.push_back(
            {path, i + 1, "empty-chain",
             "submit_affine with an empty chain declares no residency; "
             "use submit for untagged work"});
      }
      if (file_has_join_epoch && args.find("TaskDeps") == std::string::npos &&
          !model.blessed(i, "epoch-free-ok")) {
        findings.push_back(
            {path, i + 1, "epoch-deps",
             "submit_affine in an epoch-runtime file (this file calls "
             "join_epoch) declares no predecessor set; pass a TaskDeps "
             "argument or annotate with // tcu-lint: epoch-free-ok(<reason>) "
             "stating why fence ordering suffices"});
      }
    }

    // [missing-anchor]
    for (const char* callee : {"gemm_resident", "submit_affine"}) {
      for (const std::size_t open : find_calls(code, callee)) {
        const std::string args = call_args(lines, i, open);
        if (!derives_key(args)) continue;
        if (file_has_evict_all) continue;
        if (model.blessed(i, "anchored-ok")) continue;
        findings.push_back(
            {path, i + 1, "missing-anchor",
             std::string(callee) +
                 " derives a generation-dependent key at the call site "
                 "but this file never re-anchors with evict_all; stale "
                 "keys would alias fresh content (annotate with // "
                 "tcu-lint: anchored-ok(<reason>) if anchoring happens "
                 "elsewhere)"});
      }
    }
  }

  // ---- dataflow rules, per function ------------------------------------
  std::vector<Finding> flow;
  for (const Function& fn : model.functions) {
    std::vector<const Statement*> stmts;
    stmts.reserve(fn.stmts.size());
    for (const std::size_t si : fn.stmts) {
      stmts.push_back(&model.statements[si]);
    }
    dataflow_rules(model, stmts, flow);
  }
  // Statements outside any function (fixture snippets, file-scope code)
  // form an implicit function so self-test sources need no wrappers.
  {
    std::vector<const Statement*> stmts;
    for (const Statement& s : model.statements) {
      if (s.func == npos && !s.func_header) stmts.push_back(&s);
    }
    if (!stmts.empty()) dataflow_rules(model, stmts, flow);
  }
  std::sort(flow.begin(), flow.end(), [](const Finding& a, const Finding& b) {
    return a.line < b.line;
  });
  findings.insert(findings.end(), flow.begin(), flow.end());

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  for (Finding& f : findings) {
    if (f.line >= 1 && f.line <= lines.size()) {
      f.context = strip_spaces(lines[f.line - 1].code);
    }
  }
  return findings;
}

}  // namespace tcu_analyze
