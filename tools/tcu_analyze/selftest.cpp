#include "selftest.hpp"

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"
#include "sarif.hpp"

namespace tcu_analyze {

namespace {

struct Fixture {
  const char* name;
  const char* source;
  std::vector<std::string> expected_rules;  // in line order
  std::vector<std::size_t> expected_lines;  // 1-based; empty = unchecked
};

const std::vector<Fixture>& fixtures() {
  static const std::vector<Fixture> all = {
      // ---- PR 6 line rules (ported verbatim) ---------------------------
      {"clean-tagged",
       "void f(Dev& d) {\n"
       "  d.gemm_resident(key, a, b, c);\n"
       "  d.evict_all();\n"
       "}\n",
       {},
       {}},
      {"raw-gemm-flagged",
       "void f(Dev& d) { d.gemm(a, b, c); }\n",
       {"untagged-gemm"},
       {}},
      {"raw-gemm-arrow-flagged",
       "void f(Dev* d) { d->gemm(a, b, c); }\n",
       {"untagged-gemm"},
       {}},
      {"raw-gemm-annotated-same-line",
       "d.gemm(a, b, c);  // tcu-lint: untagged-ok(cold-stream baseline)\n",
       {},
       {}},
      {"raw-gemm-annotated-line-above",
       "// tcu-lint: untagged-ok(operand changes every call)\n"
       "d.gemm(a, b, c);\n",
       {},
       {}},
      {"annotation-needs-reason",
       "d.gemm(a, b, c);  // tcu-lint: untagged-ok()\n",
       {"annotation", "untagged-gemm"},
       {}},
      {"annotation-unknown-kind",
       "d.gemm(a, b, c);  // tcu-lint: whatever-ok(reason)\n",
       {"annotation", "untagged-gemm"},
       {}},
      {"gemm-in-comment-ignored",
       "// an untagged d.gemm(a, b, c) would clobber\n"
       "int x = 0;\n",
       {},
       {}},
      {"gemm-in-string-ignored",
       "log(\"calling d.gemm(a, b, c)\");\n",
       {},
       {}},
      {"gemm-resident-not-matched",
       "d.gemm_resident(key, a, b, c);\n"
       "d.evict_all();\n",
       {},
       {}},
      {"empty-chain-flagged",
       "exec.submit_affine(cost, {}, [](Dev& u) { run(u); });\n",
       {"empty-chain"},
       {}},
      {"empty-chain-multiline-flagged",
       "exec.submit_affine(cost,\n"
       "                   { },\n"
       "                   [](Dev& u) { run(u); });\n",
       {"empty-chain"},
       {}},
      {"nonempty-chain-clean",
       "exec.submit_affine(cost, {key}, [](Dev& u) { run(u); });\n"
       "exec.evict_all();\n",
       {},
       {}},
      {"derived-key-without-anchor",
       "d.gemm_resident(panel_key(kb, jb), a, b, c);\n",
       {"missing-anchor"},
       {}},
      {"derived-key-with-anchor",
       "d.evict_all();\n"
       "d.gemm_resident(panel_key(kb, jb), a, b, c);\n",
       {},
       {}},
      {"derived-key-annotated",
       "// tcu-lint: anchored-ok(caller anchors per generation)\n"
       "d.gemm_resident(panel_key(kb, jb), a, b, c);\n",
       {},
       {}},
      {"make-tile-key-exempt",
       "d.gemm_resident(make_tile_key(kTag, id), a, b, c);\n",
       {},
       {}},
      {"derived-key-in-chain",
       "exec.submit_affine(cost, {panel_key(kb, jb)}, task);\n",
       {"missing-anchor"},
       {}},
      {"epoch-file-affine-without-deps",
       "exec.submit_affine(cost, {key}, task);\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {"epoch-deps"},
       {}},
      {"epoch-file-affine-with-deps",
       "exec.submit_affine(cost, {key}, TaskDeps{{prev.serial}}, task);\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {},
       {}},
      {"epoch-file-affine-annotated",
       "// tcu-lint: epoch-free-ok(fence-ordered: one level per epoch)\n"
       "exec.submit_affine(cost, {key}, task);\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {},
       {}},
      {"barrier-file-affine-exempt",
       "exec.submit_affine(cost, {key}, task);\n"
       "exec.join();\n"
       "exec.evict_all();\n",
       {},
       {}},
      {"raw-backend-flagged",
       "void f() { backend_->run(a, b, c, false, ctr); }\n",
       {"raw-backend"},
       {}},
      {"raw-backend-member-flagged",
       "void f(Unit& u) { u.gemm_backend->run(a, b, c, false, ctr); }\n",
       {"raw-backend"},
       {}},
      {"raw-backend-annotated",
       "// tcu-lint: backend-ok(test drives the raw kernel deliberately)\n"
       "backend_->run(a, b, c, false, ctr);\n",
       {},
       {}},
      {"raw-backend-longer-identifier-clean",
       "void f() { backend_name(); backend_kind = x; }\n",
       {},
       {}},
      {"src/core/device.hpp",  // the accounting choke point is exempt
       "void issue() { backend_->run(A, B, C, accumulate, counters_); }\n",
       {},
       {}},
      {"src/core/backend_micro.cpp",  // as are the implementations
       "void warm() { backend_->run(a, b, c, false, ctr); }\n",
       {},
       {}},
      {"epoch-free-needs-reason",
       "exec.submit_affine(cost, {key}, task);  "
       "// tcu-lint: epoch-free-ok()\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {"annotation", "epoch-deps"},
       {}},

      // ---- lexer regressions: raw strings ------------------------------
      {"raw-string-gemm-ignored",
       "log(R\"(calling d.gemm(a, b, c))\");\n",
       {},
       {}},
      {"raw-string-delimited-ignored",
       "const char* s = R\"x(exec.submit_affine(cost, {}, task);)x\";\n",
       {},
       {}},
      {"raw-string-terminates-correctly",
       "const char* s = R\"(some \"quoted\" text)\";\n"
       "d.gemm(a, b, c);\n",
       {"untagged-gemm"},
       {2}},
      {"raw-string-multiline-keeps-line-numbers",
       "const char* s = R\"(first\n"
       "second)\";\n"
       "d.gemm(a, b, c);\n",
       {"untagged-gemm"},
       {3}},

      // ---- lexer regressions: backslash line continuations -------------
      {"line-continuation-extends-comment",
       "// this comment continues \\\n"
       "d.gemm(inside_the_comment);\n"
       "d.gemm(a, b, c);\n",
       {"untagged-gemm"},
       {3}},
      {"line-continuation-in-string-keeps-line-numbers",
       "log(\"split \\\n"
       "string\");\n"
       "d.gemm(a, b, c);\n",
       {"untagged-gemm"},
       {3}},

      // ---- statement-anchored annotations ------------------------------
      {"annotation-above-closing-paren",
       "d.gemm(a,\n"
       "       b,\n"
       "       // tcu-lint: untagged-ok(cold stream; operand never "
       "reused)\n"
       "       c);\n",
       {},
       {}},
      {"annotation-inside-multiline-call",
       "exec.submit_affine(cost, {key},\n"
       "                   // tcu-lint: epoch-free-ok(fence covers the "
       "level)\n"
       "                   task);\n"
       "exec.join_epoch();\n"
       "exec.evict_all();\n",
       {},
       {}},

      // ---- [stale-ticket] ----------------------------------------------
      // Mirrors tests/test_epoch.cpp ForwardDependencyIsRejected: the
      // runtime throws std::invalid_argument on forward deps, and a
      // pre-fence serial used after join_epoch() is the static shadow of
      // that dynamic contract (the fence already ordered the work).
      {"stale-ticket-across-fence",
       "const TaskTicket t0 = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.join_epoch();\n"
       "exec.submit_cpu(1, TaskDeps{.after = {t0.serial}}, task);\n",
       {"stale-ticket"},
       {3}},
      {"stale-ticket-via-push-back",
       "TaskTicket prev;\n"
       "prev = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.join_epoch();\n"
       "TaskDeps deps;\n"
       "deps.after.push_back(prev.serial);\n"
       "exec.submit_cpu(1, deps, task);\n",
       {"stale-ticket"},
       {5}},
      {"stale-ticket-clean-use-before-fence",
       "const TaskTicket t0 = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.submit_cpu(1, TaskDeps{.after = {t0.serial}}, task);\n"
       "exec.join_epoch();\n",
       {},
       {}},
      {"stale-ticket-clean-reassigned-after-fence",
       "TaskTicket t;\n"
       "t = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.join_epoch();\n"
       "t = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.submit_cpu(1, TaskDeps{.after = {t.serial}}, task);\n",
       {},
       {}},
      {"stale-ticket-annotated",
       "const TaskTicket t0 = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.join_epoch();\n"
       "// tcu-lint: stale-ticket-ok(redundant dep kept for the checker)\n"
       "exec.submit_cpu(1, TaskDeps{.after = {t0.serial}}, task);\n",
       {},
       {}},

      // ---- [dead-ticket] -----------------------------------------------
      {"dead-ticket-scalar",
       "const TaskTicket t = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.join();\n",
       {"dead-ticket"},
       {1}},
      {"dead-ticket-vector",
       "std::vector<TaskTicket> tickets;\n"
       "tickets.push_back(exec.submit_affine(cost, {key}, TaskDeps{}, "
       "task));\n"
       "exec.join();\n",
       {"dead-ticket"},
       {2}},
      {"dead-ticket-clean-consumed",
       "const TaskTicket t = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.submit_cpu(1, TaskDeps{.after = {t.serial}}, task);\n",
       {},
       {}},
      {"dead-ticket-clean-returned",
       "std::vector<TaskTicket> tickets;\n"
       "tickets.reserve(4);\n"
       "tickets.push_back(exec.submit_cpu(1, TaskDeps{}, task));\n"
       "return tickets;\n",
       {},
       {}},
      {"dead-ticket-annotated",
       "// tcu-lint: dead-ticket-ok(fire-and-forget warmup; join fences "
       "it)\n"
       "const TaskTicket t = exec.submit_cpu(1, TaskDeps{}, task);\n",
       {},
       {}},

      // ---- [ticket-before-def] -------------------------------------------
      {"ticket-before-def-scalar",
       "TaskTicket t;\n"
       "exec.submit_cpu(1, TaskDeps{.after = {t.serial}}, task);\n"
       "t = exec.submit_cpu(1, TaskDeps{}, task);\n",
       {"ticket-before-def"},
       {2}},
      {"ticket-before-def-vector",
       "std::vector<TaskTicket> prev(n);\n"
       "deps.after.push_back(prev[0].serial);\n"
       "prev[0] = exec.submit_cpu(1, deps, task);\n",
       {"ticket-before-def"},
       {2}},
      {"ticket-before-def-clean-guarded",
       "std::vector<TaskTicket> prev(n);\n"
       "for (std::size_t k = 0; k < n; ++k) {\n"
       "  if (k > 0) deps.after.push_back(prev[k - 1].serial);\n"
       "  prev[k] = exec.submit_cpu(1, deps, task);\n"
       "}\n",
       {},
       {}},
      {"ticket-before-def-clean-assigned-at-decl",
       "const TaskTicket t = exec.submit_cpu(1, TaskDeps{}, task);\n"
       "exec.submit_cpu(1, TaskDeps{.after = {t.serial}}, task);\n",
       {},
       {}},
      {"ticket-before-def-annotated",
       "TaskTicket t;\n"
       "// tcu-lint: ticket-before-def-ok(serial 0 is the always-ready "
       "sentinel)\n"
       "exec.submit_cpu(1, TaskDeps{.after = {t.serial}}, task);\n",
       {},
       {}},

      // ---- [chain-thrash] ------------------------------------------------
      {"chain-thrash-static-capacity",
       "Config cfg;\n"
       "cfg.resident_tiles = 1;\n"
       "exec.submit_affine(cost, {k0, k1}, task);\n",
       {"chain-thrash"},
       {3}},
      {"chain-thrash-designated-init",
       "PoolExecutor<double> exec(p, Config{.resident_tiles = 2});\n"
       "exec.submit_affine(cost, {a, b, c}, task);\n",
       {"chain-thrash"},
       {2}},
      {"chain-thrash-clean-fits",
       "Config cfg;\n"
       "cfg.resident_tiles = 2;\n"
       "exec.submit_affine(cost, {k0, k1}, task);\n",
       {},
       {}},
      {"chain-thrash-clean-split-chains",
       "Config cfg;\n"
       "cfg.resident_tiles = 1;\n"
       "const auto parts = split_chains(chain, cfg.resident_tiles);\n"
       "exec.submit_affine(cost, {k0, k1}, task);\n",
       {},
       {}},
      {"chain-thrash-annotated",
       "Config cfg;\n"
       "cfg.resident_tiles = 1;\n"
       "// tcu-lint: chain-thrash-ok(thrash bench: measures the reload "
       "cliff)\n"
       "exec.submit_affine(cost, {k0, k1}, task);\n",
       {},
       {}},

      // ---- [uncharged-compute] -------------------------------------------
      {"uncharged-compute-for-loop",
       "for (std::size_t i = 0; i < n; ++i) {\n"
       "  acc += A.tile_view(ti, tj)[i] * s;\n"
       "}\n",
       {"uncharged-compute"},
       {2}},
      {"uncharged-compute-while-loop",
       "while (i < n) {\n"
       "  out[i] = B.strip_view(tj)[i] + bias;\n"
       "  ++i;\n"
       "}\n",
       {"uncharged-compute"},
       {2}},
      {"uncharged-compute-clean-inside-submit-cpu",
       "exec.submit_cpu(cost, TaskDeps{}, [&](Device<double>& u) {\n"
       "  for (std::size_t i = 0; i < n; ++i) acc += A.tile_view(ti, "
       "tj)[i] * s;\n"
       "});\n",
       {},
       {}},
      {"uncharged-compute-clean-charged-function",
       "for (std::size_t i = 0; i < n; ++i) acc += A.tile_view(ti, tj)[i] "
       "* s;\n"
       "ctx.charge_cpu(n);\n",
       {},
       {}},
      {"src/core/matrix.hpp",  // the storage layer is the charged seam
       "for (std::size_t i = 0; i < n; ++i) acc += tile_view(ti, tj)[i] * "
       "s;\n",
       {},
       {}},
      {"uncharged-compute-annotated",
       "// tcu-lint: uncharged-ok(diagnostic checksum, not modeled work)\n"
       "for (std::size_t i = 0; i < n; ++i) acc += A.tile_view(ti, tj)[i] "
       "* s;\n",
       {},
       {}},
  };
  return all;
}

int run_fixtures() {
  int failures = 0;
  for (const Fixture& fixture : fixtures()) {
    const std::vector<Finding> findings =
        scan_source(fixture.name, fixture.source);
    std::vector<std::string> rules;
    std::vector<std::size_t> fnd_lines;
    rules.reserve(findings.size());
    for (const Finding& f : findings) {
      rules.push_back(f.rule);
      fnd_lines.push_back(f.line);
    }
    const bool lines_ok = fixture.expected_lines.empty() ||
                          fnd_lines == fixture.expected_lines;
    if (rules != fixture.expected_rules || !lines_ok) {
      ++failures;
      std::ostringstream want, got;
      for (const auto& r : fixture.expected_rules) want << r << " ";
      for (const auto& r : rules) got << r << " ";
      std::cerr << "self-test FAILED: " << fixture.name << "\n  expected: "
                << want.str() << "\n  got:      " << got.str() << "\n";
      for (const Finding& f : findings) {
        std::cerr << "    " << f.path << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
      }
    }
  }
  return failures;
}

/// The generated SARIF must parse back as JSON with the 2.1.0 shape:
/// one run, the full rule table, one result per finding.
int check_sarif() {
  const Fixture& seeded = fixtures()[1];  // raw-gemm-flagged
  const std::vector<Finding> findings =
      scan_source(seeded.name, seeded.source);
  const std::string sarif = to_sarif(findings, {});
  Json doc;
  if (!json_parse(sarif, doc)) {
    std::cerr << "self-test FAILED: SARIF output is not valid JSON\n";
    return 1;
  }
  const Json* version = doc.find("version");
  const Json* runs = doc.find("runs");
  if (version == nullptr || version->str != "2.1.0" || runs == nullptr ||
      runs->type != Json::Type::kArray || runs->array.size() != 1) {
    std::cerr << "self-test FAILED: SARIF version/runs shape\n";
    return 1;
  }
  const Json& run = runs->array[0];
  const Json* tool = run.find("tool");
  const Json* driver = tool != nullptr ? tool->find("driver") : nullptr;
  const Json* rules = driver != nullptr ? driver->find("rules") : nullptr;
  if (rules == nullptr || rules->array.size() != rule_catalog().size()) {
    std::cerr << "self-test FAILED: SARIF rule table incomplete\n";
    return 1;
  }
  const Json* results = run.find("results");
  if (results == nullptr || results->array.size() != findings.size()) {
    std::cerr << "self-test FAILED: SARIF results do not match findings\n";
    return 1;
  }
  const Json* rule_id = results->array[0].find("ruleId");
  if (rule_id == nullptr || rule_id->str != "untagged-gemm") {
    std::cerr << "self-test FAILED: SARIF ruleId mismatch\n";
    return 1;
  }
  return 0;
}

/// The baseline must round-trip, suppress known findings, and flag a
/// seeded regression as new — the contract the CI gate relies on.
int check_baseline_gate() {
  const std::string base_src = "void f(Dev& d) { d.gemm(a, b, c); }\n";
  const std::vector<Finding> before =
      scan_source("src/linalg/fixture.hpp", base_src);
  if (before.size() != 1) {
    std::cerr << "self-test FAILED: baseline fixture expected 1 finding\n";
    return 1;
  }
  std::vector<BaselineEntry> entries;
  for (const Finding& f : before) entries.push_back(baseline_identity(f));
  const std::string text = write_baseline(entries);
  std::vector<BaselineEntry> parsed;
  if (!parse_baseline(text, parsed) || parsed.size() != entries.size()) {
    std::cerr << "self-test FAILED: baseline does not round-trip\n";
    return 1;
  }
  const std::vector<bool> unchanged = match_baseline(before, parsed);
  for (const bool is_new : unchanged) {
    if (is_new) {
      std::cerr << "self-test FAILED: baselined finding reported as new\n";
      return 1;
    }
  }
  // Seed a regression: a second raw gemm the baseline has never seen.
  const std::string regressed =
      base_src + "void g(Dev& d) { d.gemm(x, y, z); }\n";
  const std::vector<Finding> after =
      scan_source("src/linalg/fixture.hpp", regressed);
  const std::vector<bool> flags = match_baseline(after, parsed);
  std::size_t fresh = 0;
  for (const bool is_new : flags) fresh += is_new ? 1 : 0;
  if (after.size() != 2 || fresh != 1) {
    std::cerr << "self-test FAILED: seeded regression not gated "
              << "(findings=" << after.size() << ", new=" << fresh << ")\n";
    return 1;
  }
  // An empty baseline must report everything as new.
  const std::vector<bool> no_base = match_baseline(after, {});
  for (const bool is_new : no_base) {
    if (!is_new) {
      std::cerr << "self-test FAILED: empty baseline suppressed a "
                << "finding\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int self_test() {
  int failures = run_fixtures();
  failures += check_sarif();
  failures += check_baseline_gate();
  if (failures == 0) {
    std::cout << "tcu_lint self-test: " << fixtures().size()
              << " fixtures + sarif/baseline checks passed\n";
    return 0;
  }
  std::cerr << "tcu_lint self-test: " << failures << " check"
            << (failures == 1 ? "" : "s") << " failed\n";
  return 1;
}

}  // namespace tcu_analyze
