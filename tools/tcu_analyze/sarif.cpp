#include "sarif.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <tuple>

namespace tcu_analyze {

// ----------------------------------------------------------- tiny JSON

const Json* Json::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text.compare(pos, n, word) != 0) return false;
    pos += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // The baseline/SARIF corpus is ASCII; keep it simple.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return false;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.type = Json::Type::kObject;
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos >= text.size() || text[pos] != ':') return false;
        ++pos;
        Json value;
        if (!parse_value(value)) return false;
        out.object.emplace_back(std::move(key), std::move(value));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos;
      out.type = Json::Type::kArray;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Json value;
        if (!parse_value(value)) return false;
        out.array.push_back(std::move(value));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out.type = Json::Type::kString;
      return parse_string(out.str);
    }
    if (literal("true")) {
      out.type = Json::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.type = Json::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.type = Json::Type::kNull;
      return true;
    }
    // number
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return false;
    out.type = Json::Type::kNumber;
    out.number = std::strtod(text.substr(start, pos - start).c_str(), nullptr);
    return true;
  }
};

}  // namespace

bool json_parse(const std::string& text, Json& out) {
  Parser p{text};
  if (!p.parse_value(out)) return false;
  p.skip_ws();
  return p.pos == text.size();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ------------------------------------------------------------ baseline

std::string norm_path(const std::string& path) {
  for (const char* root : {"src/", "tools/", "tests/"}) {
    const std::size_t pos = path.find(root);
    if (pos != std::string::npos && (pos == 0 || path[pos - 1] == '/')) {
      return path.substr(pos);
    }
  }
  if (path.rfind("./", 0) == 0) return path.substr(2);
  return path;
}

BaselineEntry baseline_identity(const Finding& f) {
  return {f.rule, norm_path(f.path), f.context};
}

std::string write_baseline(const std::vector<BaselineEntry>& entries) {
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"findings\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << json_escape(entries[i].rule)
        << "\", \"path\": \"" << json_escape(entries[i].path)
        << "\", \"context\": \"" << json_escape(entries[i].context)
        << "\"}";
  }
  out << (entries.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

bool parse_baseline(const std::string& text,
                    std::vector<BaselineEntry>& out) {
  Json doc;
  if (!json_parse(text, doc)) return false;
  const Json* findings = doc.find("findings");
  if (findings == nullptr || findings->type != Json::Type::kArray) {
    return false;
  }
  for (const Json& entry : findings->array) {
    const Json* rule = entry.find("rule");
    const Json* path = entry.find("path");
    const Json* context = entry.find("context");
    if (rule == nullptr || rule->type != Json::Type::kString ||
        path == nullptr || path->type != Json::Type::kString ||
        context == nullptr || context->type != Json::Type::kString) {
      return false;
    }
    out.push_back({rule->str, path->str, context->str});
  }
  return true;
}

std::vector<bool> match_baseline(const std::vector<Finding>& findings,
                                 const std::vector<BaselineEntry>& baseline) {
  std::map<std::tuple<std::string, std::string, std::string>, std::size_t>
      pool;
  for (const BaselineEntry& e : baseline) {
    ++pool[{e.rule, e.path, e.context}];
  }
  std::vector<bool> is_new(findings.size(), true);
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const BaselineEntry e = baseline_identity(findings[i]);
    const auto it = pool.find({e.rule, e.path, e.context});
    if (it != pool.end() && it->second > 0) {
      --it->second;
      is_new[i] = false;
    }
  }
  return is_new;
}

// --------------------------------------------------------------- SARIF

std::string to_sarif(const std::vector<Finding>& findings,
                     const std::vector<bool>& new_flags) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"tcu_lint\",\n"
      << "          \"informationUri\": "
         "\"https://github.com/tcu/tcu#static-analysis\",\n"
      << "          \"rules\": [";
  const std::vector<RuleInfo>& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "            {\"id\": \"" << json_escape(catalog[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalog[i].summary) << "\"}}";
  }
  out << "\n          ]\n        }\n      },\n      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{"
        << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(norm_path(f.path))
        << "\"}, \"region\": {\"startLine\": " << f.line << "}}}], "
        << "\"partialFingerprints\": {\"tcuLintContext/v1\": \""
        << json_escape(f.context) << "\"}";
    if (new_flags.size() == findings.size()) {
      out << ", \"baselineState\": \""
          << (new_flags[i] ? "new" : "unchanged") << "\"";
    }
    out << "}";
  }
  out << "\n      ]\n    }\n  ]\n}\n";
  return out.str();
}

}  // namespace tcu_analyze
