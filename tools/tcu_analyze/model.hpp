#pragma once
// tcu_analyze model — pass 1 of the analyzer. Consumes the token stream
// and builds, per translation unit, a statement-ordered model with
// function scoping: which statements belong to which function, which
// are guarded (under `if`/`else`/`switch` or a loop) and which sit in a
// loop body, plus every tcu-lint annotation resolved to the
// *statement* it blesses. Statement anchoring is what fixes the PR 6
// adjacency bug: an annotation above (or inside) a multi-line call
// blesses the whole statement, so findings anchored to the call's first
// line match annotations written near its closing paren.

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace tcu_analyze {

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// A well-formed tcu-lint annotation — the `kind(reason)` suppression
/// comment whose grammar annotation_kinds() enumerates.
struct Annotation {
  std::string kind;
  std::string reason;
  std::size_t line = 0;         ///< 0-based line the annotation is on
  std::size_t target_line = 0;  ///< code line it resolves to (legacy rule)
  std::size_t stmt = npos;      ///< statement it blesses (npos if none)
};

/// One statement: a maximal run of tokens ended by `;` at paren depth 0,
/// or by a block brace. Headers (`if (...)`, function signatures) are
/// emitted as their own statements just before their block opens.
struct Statement {
  std::vector<Token> toks;
  std::size_t first_line = 0;  ///< 0-based
  std::size_t last_line = 0;   ///< 0-based
  std::size_t func = npos;     ///< enclosing function, npos at file scope
  bool guarded = false;  ///< under if/else/switch or a loop (or inline)
  bool looped = false;   ///< under a for/while body (or inline for/while)
  bool func_header = false;  ///< a function signature (parameter list)
};

struct Function {
  std::string name;
  std::size_t first_line = 0;
  std::size_t last_line = 0;
  std::vector<std::size_t> stmts;  ///< indices into FileModel::statements
};

struct FileModel {
  std::string path;
  std::vector<SourceLine> lines;
  std::vector<Statement> statements;  ///< textual order
  std::vector<Function> functions;
  std::vector<Annotation> annotations;
  std::vector<std::size_t> malformed;  ///< 0-based lines of bad annotations

  /// True if an annotation of `kind` blesses the statement covering the
  /// 0-based `line` (or, as a fallback for code outside any statement,
  /// resolves to exactly that line).
  bool blessed(std::size_t line, const std::string& kind) const;
};

/// All annotation kinds the grammar accepts.
const std::vector<std::string>& annotation_kinds();

FileModel build_model(std::string path, const std::string& text);

}  // namespace tcu_analyze
