#pragma once
// tcu_analyze rules — pass 2 of the analyzer. Runs the PR 6 line rules
// (untagged-gemm, empty-chain, missing-anchor, raw-backend, epoch-deps)
// plus the dataflow rules the line lexer could not express:
//
//   [stale-ticket]      a ticket assigned before a join_epoch() fence and
//                       passed as a dependency after it — the fence
//                       already orders the work, so the dep is at best
//                       redundant and at worst a stale serial that hides
//                       the real predecessor.
//   [dead-ticket]       a ticket captured from submit* but never consumed
//                       before the enclosing strict join() — the overlap
//                       the ticket could declare is silently lost.
//   [ticket-before-def] an unguarded use of a ticket variable before any
//                       submit assigns it (a default ticket's serial 0 is
//                       "always ready" — almost never what was meant).
//   [chain-thrash]      a declared chain statically longer than the
//                       statically-known Config::resident_tiles at the
//                       same call site, without split_chains.
//   [uncharged-compute] an arithmetic loop over tile_view/strip_view/
//                       tile_data outside submit_cpu and the backend-seam
//                       files — work the cost model never charges.

#include <cstddef>
#include <string>
#include <vector>

#include "model.hpp"

namespace tcu_analyze {

struct Finding {
  Finding() = default;
  Finding(std::string p, std::size_t l, std::string r, std::string m)
      : path(std::move(p)),
        line(l),
        rule(std::move(r)),
        message(std::move(m)) {}

  std::string path;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
  /// Whitespace-stripped code of the finding line — the baseline matches
  /// on (rule, path, context), so findings survive line-number drift.
  std::string context;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the analyzer can emit, for the SARIF rule table.
const std::vector<RuleInfo>& rule_catalog();

/// Lex + model + all rules over one translation unit. Findings are
/// ordered by line; same-line findings keep annotation errors first.
std::vector<Finding> scan_source(const std::string& path,
                                 const std::string& text);

}  // namespace tcu_analyze
