#pragma once
// tcu_analyze SARIF + baseline — the CI-facing output layer. Findings
// are serialized as SARIF 2.1.0 (for github/codeql-action/upload-sarif
// PR annotations) and gated against a checked-in baseline so only *new*
// findings fail the job. No third-party JSON dependency: a minimal
// parser/writer pair lives here, and the self-test round-trips the
// generated SARIF through the parser to keep the writer honest.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "rules.hpp"

namespace tcu_analyze {

// ----------------------------------------------------------- tiny JSON

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* find(const std::string& key) const;
};

/// Parse a JSON document (objects, arrays, strings, numbers, booleans,
/// null). Returns false on any syntax error or trailing garbage.
bool json_parse(const std::string& text, Json& out);

std::string json_escape(const std::string& text);

// ------------------------------------------------------------ baseline

struct BaselineEntry {
  std::string rule;
  std::string path;     ///< repo-relative (normalized)
  std::string context;  ///< whitespace-stripped finding-line code
};

/// Repo-relative form of a scan path: the suffix starting at the first
/// `src/` / `tools/` / `tests/` path component, else the path as given.
std::string norm_path(const std::string& path);

BaselineEntry baseline_identity(const Finding& f);

std::string write_baseline(const std::vector<BaselineEntry>& entries);

/// Parse a baseline document. Returns false on malformed JSON or a
/// missing/ill-typed `findings` array.
bool parse_baseline(const std::string& text,
                    std::vector<BaselineEntry>& out);

/// Multiset-match findings against the baseline. Returns a vector
/// parallel to `findings`: true means NEW (not covered by the baseline).
std::vector<bool> match_baseline(const std::vector<Finding>& findings,
                                 const std::vector<BaselineEntry>& baseline);

// --------------------------------------------------------------- SARIF

/// SARIF 2.1.0 document. `new_flags` may be empty (no baseline run) or
/// parallel to `findings`, setting each result's baselineState.
std::string to_sarif(const std::vector<Finding>& findings,
                     const std::vector<bool>& new_flags);

}  // namespace tcu_analyze
