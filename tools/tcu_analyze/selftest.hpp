#pragma once
// tcu_analyze self-test — embedded fixtures for every rule (seeded
// violations and clean counterparts), the lexer regression fixtures
// (raw strings, line continuations), statement-anchored annotation
// adjacency, and programmatic SARIF well-formedness + baseline-gate
// checks. Run with `tcu_lint --self-test`.

namespace tcu_analyze {

/// Returns 0 when every fixture and programmatic check passes.
int self_test();

}  // namespace tcu_analyze
