#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace tcu_analyze {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool has_code(const std::string& code) {
  return std::any_of(code.begin(), code.end(),
                     [](unsigned char c) { return !std::isspace(c); });
}

namespace {

/// True if the code accumulated so far ends in a raw-string encoding
/// prefix (`R`, `uR`, `u8R`, `UR`, `LR`) that is its own token — i.e. the
/// upcoming `"` opens a raw string literal.
bool raw_prefix(const std::string& code) {
  const std::size_t n = code.size();
  if (n == 0 || code[n - 1] != 'R') return false;
  std::size_t start = n - 1;  // first char of the candidate prefix
  if (start > 0) {
    const char p = code[start - 1];
    if (p == 'u' || p == 'U' || p == 'L') {
      --start;
    } else if (p == '8' && start > 1 && code[start - 2] == 'u') {
      start -= 2;
    }
  }
  return start == 0 || !ident_char(code[start - 1]);
}

}  // namespace

std::vector<SourceLine> lex(const std::string& text) {
  std::vector<SourceLine> lines;
  SourceLine current;
  enum class State {
    kCode,
    kString,
    kChar,
    kRawString,
    kLineComment,
    kBlockComment
  };
  State state = State::kCode;
  // `)` + raw_delim + `"` terminates the current raw string.
  std::string raw_delim;
  // A `\` immediately before the newline splices the next physical line:
  // whatever state we are in (line comment, string, char) continues.
  bool spliced = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (!spliced) {
        if (state == State::kLineComment) state = State::kCode;
        // Unterminated ordinary string/char at end of line: recover (a
        // legal literal only crosses lines via a splice, handled above).
        if (state == State::kString || state == State::kChar) {
          state = State::kCode;
        }
      }
      const bool continue_directive = spliced && current.directive;
      spliced = false;
      lines.push_back(std::move(current));
      current = SourceLine{};
      current.directive = continue_directive;
      continue;
    }
    spliced = false;
    switch (state) {
      case State::kCode:
        if (c == '\\' && next == '\n') {
          spliced = true;
        } else if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && raw_prefix(current.code)) {
          current.code += '"';
          state = State::kRawString;
          // Collect the delimiter: everything up to the opening '('.
          raw_delim.clear();
          while (i + 1 < text.size() && text[i + 1] != '(' &&
                 text[i + 1] != '\n' && raw_delim.size() < 16) {
            raw_delim += text[++i];
          }
          if (i + 1 < text.size() && text[i + 1] == '(') ++i;
        } else if (c == '"') {
          current.code += '"';
          state = State::kString;
        } else if (c == '\'') {
          current.code += '\'';
          state = State::kChar;
        } else {
          if (c == '#' && !has_code(current.code)) current.directive = true;
          current.code += c;
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          if (next == '\n') {
            spliced = true;  // spliced literal: stays open on the next line
          } else {
            ++i;  // skip the escaped character
          }
        } else if (c == '"' && state == State::kString) {
          current.code += '"';
          state = State::kCode;
        } else if (c == '\'' && state == State::kChar) {
          current.code += '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        // No escapes inside a raw literal; only `)` delim `"` closes it.
        if (c == ')' && text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < text.size() &&
            text[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          current.code += '"';
          state = State::kCode;
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') {
          spliced = true;  // comment continues on the spliced line
        } else {
          current.comment += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment += c;
        }
        break;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

namespace {

bool is_two_char_op(char a, char b) {
  switch (a) {
    case '-':
      return b == '>' || b == '=' || b == '-';
    case ':':
      return b == ':';
    case '=':
    case '!':
    case '*':
    case '/':
    case '%':
    case '^':
      return b == '=';
    case '<':
      return b == '=' || b == '<';
    case '>':
      return b == '=' || b == '>';
    case '+':
      return b == '=' || b == '+';
    case '&':
      return b == '&' || b == '=';
    case '|':
      return b == '|' || b == '=';
    default:
      return false;
  }
}

}  // namespace

std::vector<Token> tokenize(const std::vector<SourceLine>& lines) {
  std::vector<Token> toks;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    if (lines[li].directive) continue;
    const std::string& code = lines[li].code;
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token tok;
      tok.line = li;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < code.size() && ident_char(code[j])) ++j;
        tok.kind = Token::Kind::kIdent;
        tok.text = code.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < code.size() &&
               (ident_char(code[j]) || code[j] == '.' ||
                ((code[j] == '+' || code[j] == '-') && j > i &&
                 (code[j - 1] == 'e' || code[j - 1] == 'E')))) {
          ++j;
        }
        tok.kind = Token::Kind::kNumber;
        tok.text = code.substr(i, j - i);
        i = j;
      } else if (c == '"') {
        // The lexer blanked the contents; literals appear as `"` pairs,
        // possibly split across lines — collapse what is on this line.
        tok.kind = Token::Kind::kString;
        tok.text = "\"\"";
        i += (i + 1 < code.size() && code[i + 1] == '"') ? 2 : 1;
      } else if (c == '\'') {
        tok.kind = Token::Kind::kChar;
        tok.text = "''";
        i += (i + 1 < code.size() && code[i + 1] == '\'') ? 2 : 1;
      } else {
        tok.kind = Token::Kind::kPunct;
        if (i + 1 < code.size() && is_two_char_op(c, code[i + 1])) {
          tok.text = code.substr(i, 2);
          i += 2;
        } else {
          tok.text = std::string(1, c);
          ++i;
        }
      }
      toks.push_back(std::move(tok));
    }
  }
  return toks;
}

}  // namespace tcu_analyze
