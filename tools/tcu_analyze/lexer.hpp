#pragma once
// tcu_analyze lexer — pass 0 of the static analyzer behind the `tcu_lint`
// CLI. Splits a translation unit into per-line code/comment channels
// (string and character literal contents blanked so `"submit_affine("`
// in a log message never matches a rule) and tokenizes the code channel
// into a flat stream the model pass consumes.
//
// Handles the full lexical surface the repo actually uses plus the two
// constructs the PR 6 line-lexer got wrong:
//   * raw string literals `R"delim(...)delim"` (any encoding prefix):
//     contents are blanked verbatim — no escape processing, embedded
//     quotes do not terminate the literal, and embedded newlines keep
//     the line count aligned;
//   * backslash line continuations: a `\` at end of line splices the
//     next physical line in phase 2, so a `//` comment (or a string)
//     continues across it. Lines are still emitted one per physical
//     line so every downstream line number stays 1-based and exact.

#include <cstddef>
#include <string>
#include <vector>

namespace tcu_analyze {

struct SourceLine {
  std::string code;     ///< comments and literal contents blanked
  std::string comment;  ///< comment text (annotations live here)
  bool directive = false;  ///< preprocessor line (incl. spliced tails)
};

/// Split a translation unit into per-line code/comment parts, preserving
/// column positions within each physical line.
std::vector<SourceLine> lex(const std::string& text);

/// One code token. Literals are collapsed: a string becomes the single
/// token `""` and a char literal `''` — rules never need their contents,
/// only their presence.
struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 0-based physical line
};

/// Tokenize the code channel of lexed lines. Identifiers and numbers are
/// max-munched; multi-character operators that matter to the model
/// (`->`, `::`, `==`, `!=`, `<=`, `>=`, `+=`, `-=`, `*=`, `/=`, `&&`,
/// `||`, `<<`, `>>`, `++`, `--`) stay single tokens. Preprocessor
/// directive lines are skipped — they are not statements.
std::vector<Token> tokenize(const std::vector<SourceLine>& lines);

bool ident_char(char c);
bool has_code(const std::string& code);

}  // namespace tcu_analyze
