// tcu_lint — dataflow-aware static analyzer for the (m, l)-TCU runtime
// contracts. Two passes: tools/tcu_analyze/lexer+model build a
// statement-ordered, function-scoped model of each translation unit;
// tools/tcu_analyze/rules runs the line rules (untagged-gemm,
// empty-chain, missing-anchor, raw-backend, epoch-deps) and the
// dataflow rules (stale-ticket, dead-ticket, ticket-before-def,
// chain-thrash, uncharged-compute) over it. Findings print in the
// classic text format and optionally as SARIF 2.1.0; a checked-in
// baseline makes the exit status gate on *new* findings only.
//
// Usage:
//   tcu_lint [options] <file-or-directory>...
//   tcu_lint --self-test
//
// Options:
//   --sarif <out.sarif>        write all findings as SARIF 2.1.0
//   --baseline <file.json>     suppress findings matched by the baseline;
//                              exit 1 only on new ones
//   --write-baseline <file>    write the current findings as a baseline
//                              and exit 0
//
// Exit codes: 0 clean (or fully baselined), 1 new findings, 2 usage/IO.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"
#include "sarif.hpp"
#include "selftest.hpp"

namespace {

bool lintable(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx" || ext == ".hxx";
}

int usage() {
  std::cerr << "usage: tcu_lint [--sarif <out>] [--baseline <file>] "
               "[--write-baseline <file>] <file-or-directory>... | "
               "--self-test\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--self-test") {
    return tcu_analyze::self_test();
  }

  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--sarif" || arg == "--baseline" ||
        arg == "--write-baseline") {
      if (i + 1 >= args.size()) return usage();
      std::string& slot = arg == "--sarif" ? sarif_path
                          : arg == "--baseline" ? baseline_path
                                                : write_baseline_path;
      slot = args[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<std::filesystem::path> files;
  for (const std::string& arg : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
      if (ec) {
        std::cerr << "tcu_lint: cannot walk " << arg << ": " << ec.message()
                  << "\n";
        return 2;
      }
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      files.push_back(arg);
    } else {
      std::cerr << "tcu_lint: no such file or directory: " << arg << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<tcu_analyze::Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "tcu_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<tcu_analyze::Finding> file_findings =
        tcu_analyze::scan_source(file.string(), text.str());
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  if (!write_baseline_path.empty()) {
    std::vector<tcu_analyze::BaselineEntry> entries;
    entries.reserve(findings.size());
    for (const tcu_analyze::Finding& f : findings) {
      entries.push_back(tcu_analyze::baseline_identity(f));
    }
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "tcu_lint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    out << tcu_analyze::write_baseline(entries);
    std::cout << "tcu_lint: wrote baseline with " << entries.size()
              << " finding" << (entries.size() == 1 ? "" : "s") << " to "
              << write_baseline_path << "\n";
    return 0;
  }

  std::vector<bool> is_new;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "tcu_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<tcu_analyze::BaselineEntry> baseline;
    if (!tcu_analyze::parse_baseline(text.str(), baseline)) {
      std::cerr << "tcu_lint: malformed baseline " << baseline_path << "\n";
      return 2;
    }
    is_new = tcu_analyze::match_baseline(findings, baseline);
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "tcu_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << tcu_analyze::to_sarif(findings, is_new);
  }

  std::size_t shown = 0;
  std::size_t suppressed = 0;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (!is_new.empty() && !is_new[i]) {
      ++suppressed;
      continue;
    }
    const tcu_analyze::Finding& f = findings[i];
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
    ++shown;
  }
  std::cout << "tcu_lint: " << files.size() << " files scanned, " << shown
            << " finding" << (shown == 1 ? "" : "s");
  if (suppressed > 0) {
    std::cout << " (" << suppressed << " baselined)";
  }
  std::cout << "\n";
  return shown == 0 ? 0 : 1;
}
