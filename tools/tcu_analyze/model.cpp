#include "model.hpp"

#include <cctype>

namespace tcu_analyze {

const std::vector<std::string>& annotation_kinds() {
  static const std::vector<std::string> kinds = {
      "untagged-ok",          "anchored-ok",     "epoch-free-ok",
      "backend-ok",           "stale-ticket-ok", "dead-ticket-ok",
      "ticket-before-def-ok", "chain-thrash-ok", "uncharged-ok"};
  return kinds;
}

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

bool contains_ident(const std::vector<Token>& toks, const char* text) {
  for (const Token& t : toks) {
    if (is_ident(t, text)) return true;
  }
  return false;
}

bool contains_punct(const std::vector<Token>& toks, const char* text) {
  for (const Token& t : toks) {
    if (is_punct(t, text)) return true;
  }
  return false;
}

/// Identifier immediately before the first depth-0 `(` of a header —
/// the function (or control keyword) the parenthesis belongs to.
std::string callee_of(const std::vector<Token>& toks) {
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) {
      if (depth == 0 && i > 0 && toks[i - 1].kind == Token::Kind::kIdent) {
        return toks[i - 1].text;
      }
      ++depth;
    } else if (is_punct(toks[i], ")")) {
      --depth;
    }
  }
  return std::string();
}

/// Scope stack entry. `kind`: 'G' global, 'N' namespace, 'T' type,
/// 'F' function, 'B' plain/control block.
struct Scope {
  char kind = 'G';
  bool cond = false;  ///< if/else/switch/catch block
  bool loop = false;  ///< for/while/do block
  std::size_t func = npos;
};

struct Builder {
  FileModel model;
  std::vector<Scope> stack{Scope{}};
  std::vector<Token> pending;
  int paren = 0;       ///< () and [] depth inside the pending statement
  int expr_brace = 0;  ///< {} opened inside the pending statement

  std::size_t cur_func() const { return stack.back().func; }

  bool under(bool Scope::* flag) const {
    for (const Scope& s : stack) {
      if (s.*flag) return true;
    }
    return false;
  }

  void flush(std::size_t end_line) {
    if (pending.empty()) return;
    Statement stmt;
    stmt.first_line = pending.front().line;
    stmt.last_line = end_line;
    stmt.func = cur_func();
    stmt.guarded = under(&Scope::cond) || under(&Scope::loop) ||
                   contains_ident(pending, "if") ||
                   contains_ident(pending, "else") ||
                   contains_ident(pending, "for") ||
                   contains_ident(pending, "while") ||
                   contains_ident(pending, "switch");
    stmt.looped = under(&Scope::loop) || contains_ident(pending, "for") ||
                  contains_ident(pending, "while") ||
                  contains_ident(pending, "do");
    stmt.toks = std::move(pending);
    pending.clear();
    if (stmt.func != npos) {
      model.functions[stmt.func].stmts.push_back(model.statements.size());
    }
    model.statements.push_back(std::move(stmt));
  }

  /// Classify and open the scope a depth-0 `{` introduces. The pending
  /// header is flushed as a statement of the *enclosing* scope first, so
  /// function signatures never leak parameters into dataflow.
  void open_block(const Token& brace) {
    const std::string prev = pending.empty() ? "" : pending.back().text;
    const bool type_header = (contains_ident(pending, "struct") ||
                              contains_ident(pending, "class") ||
                              contains_ident(pending, "union") ||
                              contains_ident(pending, "enum")) &&
                             !contains_punct(pending, "(");
    if (contains_ident(pending, "namespace")) {
      flush(brace.line);
      stack.push_back({'N', false, false, npos});
      return;
    }
    if (type_header) {
      flush(brace.line);
      stack.push_back({'T', false, false, npos});
      return;
    }
    const bool control =
        contains_ident(pending, "if") || contains_ident(pending, "else") ||
        contains_ident(pending, "for") || contains_ident(pending, "while") ||
        contains_ident(pending, "switch") ||
        contains_ident(pending, "catch") || contains_ident(pending, "do") ||
        contains_ident(pending, "try");
    if (control) {
      const bool loop = contains_ident(pending, "for") ||
                        contains_ident(pending, "while") ||
                        contains_ident(pending, "do");
      const bool cond = !loop && !contains_ident(pending, "try");
      flush(brace.line);
      stack.push_back({'B', cond, loop, cur_func()});
      return;
    }
    // Not a control/type/namespace header. An expression brace (braced
    // init) follows an identifier, `=`, `,`, `{`, `return`, `>` or `]`;
    // a block follows `)` (function/lambda header) or a boundary.
    const bool blockish =
        pending.empty() || prev == ")" || prev == ";" || prev == "}";
    if (!blockish) {
      ++expr_brace;
      pending.push_back(brace);
      return;
    }
    const std::string name = callee_of(pending);
    // `[` in the header means a lambda (or array declarator) — those open
    // plain blocks of the enclosing scope, not new named functions.
    if (cur_func() == npos && !name.empty() &&
        !contains_punct(pending, "[")) {
      // Free/member function definition at namespace or type scope.
      Function fn;
      fn.name = name;
      fn.first_line =
          pending.empty() ? brace.line : pending.front().line;
      flush(brace.line);
      // The signature's parameter list must not feed dataflow (a
      // TaskTicket-returning header is not a ticket declaration).
      model.statements.back().func_header = true;
      stack.push_back({'F', false, false, model.functions.size()});
      model.functions.push_back(std::move(fn));
      return;
    }
    flush(brace.line);
    stack.push_back({'B', false, false, cur_func()});
  }

  void close_block(const Token& brace) {
    flush(brace.line);
    if (stack.size() > 1) {
      if (stack.back().kind == 'F') {
        model.functions[stack.back().func].last_line = brace.line;
      }
      stack.pop_back();
    }
  }

  void feed(const Token& tok) {
    if (is_punct(tok, "(") || is_punct(tok, "[")) {
      ++paren;
      pending.push_back(tok);
    } else if (is_punct(tok, ")") || is_punct(tok, "]")) {
      if (paren > 0) --paren;
      pending.push_back(tok);
    } else if (is_punct(tok, ";") && paren == 0 && expr_brace == 0) {
      flush(tok.line);
    } else if (is_punct(tok, "{")) {
      if (paren > 0 || expr_brace > 0) {
        ++expr_brace;
        pending.push_back(tok);
      } else {
        open_block(tok);
      }
    } else if (is_punct(tok, "}")) {
      if (expr_brace > 0) {
        --expr_brace;
        pending.push_back(tok);
      } else {
        close_block(tok);
      }
    } else {
      pending.push_back(tok);
    }
  }
};

}  // namespace

bool FileModel::blessed(std::size_t line, const std::string& kind) const {
  for (const Annotation& a : annotations) {
    if (a.kind != kind) continue;
    if (a.stmt != npos) {
      const Statement& s = statements[a.stmt];
      if (s.first_line <= line && line <= s.last_line) return true;
    }
    if (a.target_line == line) return true;
  }
  return false;
}

FileModel build_model(std::string path, const std::string& text) {
  Builder b;
  b.model.path = std::move(path);
  b.model.lines = lex(text);

  const std::vector<Token> toks = tokenize(b.model.lines);
  for (const Token& tok : toks) b.feed(tok);
  b.flush(b.model.lines.empty() ? 0 : b.model.lines.size() - 1);
  FileModel model = std::move(b.model);

  // ---- annotations, resolved to statements -----------------------------
  const std::vector<SourceLine>& lines = model.lines;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    std::size_t pos = 0;
    while ((pos = comment.find("tcu-lint:", pos)) != std::string::npos) {
      std::size_t p = pos + std::string("tcu-lint:").size();
      while (p < comment.size() && comment[p] == ' ') ++p;
      std::size_t kind_end = p;
      while (kind_end < comment.size() &&
             (std::isalnum(static_cast<unsigned char>(comment[kind_end])) ||
              comment[kind_end] == '-')) {
        ++kind_end;
      }
      const std::string kind = comment.substr(p, kind_end - p);
      const std::size_t open = kind_end;
      const std::size_t close = comment.find(')', open);
      bool known = false;
      for (const std::string& k : annotation_kinds()) known |= (kind == k);
      const bool shaped = known && open < comment.size() &&
                          comment[open] == '(' && close != std::string::npos;
      const std::string reason =
          shaped ? comment.substr(open + 1, close - open - 1) : "";
      if (!shaped || !has_code(reason)) {
        model.malformed.push_back(i);
        pos = p;
        continue;
      }
      Annotation ann;
      ann.kind = kind;
      ann.reason = reason;
      ann.line = i;
      // Resolve to a code line: this one if it has code, else the next.
      std::size_t target = i;
      if (!has_code(lines[i].code)) {
        target = i + 1;
        while (target < lines.size() && !has_code(lines[target].code)) {
          ++target;
        }
      }
      ann.target_line = target;
      for (std::size_t si = 0; si < model.statements.size(); ++si) {
        const Statement& s = model.statements[si];
        if (s.first_line <= target && target <= s.last_line) {
          ann.stmt = si;
          break;
        }
      }
      model.annotations.push_back(std::move(ann));
      pos = close + 1;
    }
  }
  return model;
}

}  // namespace tcu_analyze
