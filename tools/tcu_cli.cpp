// tcu_cli — run any of the paper's algorithms from the command line and
// print the simulated model cost next to the paper's predicted bound.
//
//   tcu_cli <command> [--m M] [--l L] [--size N] [--seed S]
//
// Commands: matmul, strassen, gauss, closure, apsd, dft, stencil,
//           intmul, karatsuba, polyeval, scan, triangles, all.
//
// The `fault` scenario drives the self-healing pool runtime under a
// seeded fault plan and checks the recovery contract end to end:
//
//   tcu_cli fault [--workload matmul|gauss|conv2d|stencil] [--p P]
//                 [--rounds R] [--dead U] [--die-at C] [--rate-ppm F]
//                 [--straggle-us S] [--m M] [--l L] [--size N] [--seed S]
//
// It runs the workload on a serial device, a fault-free pool, and a pool
// under the plan (unit U dies at its C-th call; every call faults
// transiently with probability F*1e-6; unit 0 sleeps S us per call), then
// prints the degraded sim speedup and the RoundReport bookkeeping.
// Exit status is nonzero if the recovered outputs are not bit-identical
// to the serial reference or recovery was exhausted.
//
// The `pool` scenario compares the two pool schedules of a dependent
// workload — the historical barrier rounds against the epoch (non-
// barrier) runtime — next to the serial reference:
//
//   tcu_cli pool [--mode barrier|epoch] [--workload closure|gauss|dft|mlp]
//                [--backend sim|micro|blas]
//                [--p P] [--m M] [--l L] [--size N] [--seed S]
//
// It prints the pool makespan, the sim speedup over serial, and whether
// the pooled output is bit-identical to the serial device's. Exit status
// is nonzero on any output mismatch.
//
// Examples:
//   tcu_cli matmul --size 256 --m 1024 --l 100
//   tcu_cli all --size 128
//   tcu_cli fault --workload matmul --p 4 --dead 3 --rate-ppm 2000
//   tcu_cli pool --workload gauss --mode epoch --p 4

#include <cerrno>
#include <complex>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/costs.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"
#include "fault/fault.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"
#include "intmul/mul.hpp"
#include "linalg/dense.hpp"
#include "linalg/gauss.hpp"
#include "linalg/parallel.hpp"
#include "linalg/strassen.hpp"
#include "nn/layers.hpp"
#include "poly/poly.hpp"
#include "primitives/primitives.hpp"
#include "stencil/stencil.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using Complex = std::complex<double>;

struct Options {
  std::size_t m = 256;
  std::uint64_t latency = 0;
  std::size_t size = 128;
  std::uint64_t seed = 42;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: tcu_cli <command> [--m M] [--l L] [--size N] [--seed S]\n"
         "commands: matmul strassen gauss closure apsd dft stencil intmul\n"
         "          karatsuba polyeval scan triangles all\n"
         "       tcu_cli fault [--workload matmul|gauss|conv2d|stencil]\n"
         "                     [--p P] [--rounds R] [--dead U] [--die-at C]\n"
         "                     [--rate-ppm F] [--straggle-us S]\n"
         "                     [--m M] [--l L] [--size N] [--seed S]\n"
         "       tcu_cli pool  [--mode barrier|epoch]\n"
         "                     [--workload closure|gauss|dft|mlp]\n"
         "                     [--backend sim|micro|blas]\n"
         "                     [--p P] [--m M] [--l L] [--size N] [--seed S]\n";
  std::exit(2);
}

Matrix<double> rand_mat(std::size_t r, std::size_t c, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

struct Row {
  std::string name;
  double measured;
  double predicted;
  double baseline;
};

Row run_matmul(const Options& o) {
  Device<double> dev({.m = o.m, .latency = o.latency});
  auto a = rand_mat(o.size, o.size, o.seed);
  auto b = rand_mat(o.size, o.size, o.seed + 1);
  (void)tcu::linalg::matmul_tcu(dev, a.view(), b.view());
  Counters ram;
  (void)tcu::linalg::matmul_naive<double>(a.view(), b.view(), ram);
  const double n = static_cast<double>(o.size) * o.size;
  return {"matmul (Thm 2)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm2_dense(n, static_cast<double>(o.m),
                                 static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_strassen(const Options& o) {
  Device<double> dev({.m = o.m, .latency = o.latency});
  auto a = rand_mat(o.size, o.size, o.seed);
  auto b = rand_mat(o.size, o.size, o.seed + 1);
  (void)tcu::linalg::matmul_strassen_tcu(dev, a.view(), b.view(), {.p0 = 7});
  Counters ram;
  (void)tcu::linalg::matmul_strassen_ram<double>(a.view(), b.view(), ram);
  const double n = static_cast<double>(o.size) * o.size;
  return {"strassen (Thm 1)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm1_strassen(n, static_cast<double>(o.m),
                                    static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_gauss(const Options& o) {
  const std::size_t s = tcu::exact_sqrt(o.m);
  const std::size_t r = ((o.size + s - 1) / s) * s;
  tcu::util::Xoshiro256 rng(o.seed);
  Matrix<double> c(r, r, 0.0);
  for (std::size_t i = 0; i + 1 < r; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < r; ++j) {
      c(i, j) = rng.uniform(-1, 1);
      row += std::abs(c(i, j));
    }
    c(i, i) = row + 1.0;
  }
  auto c2 = c;
  Device<double> dev({.m = o.m, .latency = o.latency});
  tcu::linalg::ge_forward_tcu(dev, c.view());
  Counters ram;
  tcu::linalg::ge_forward_naive(c2.view(), ram);
  return {"gauss (Thm 4)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm4_gauss(static_cast<double>(r) * r,
                                 static_cast<double>(o.m),
                                 static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_closure(const Options& o) {
  auto adj = tcu::graph::random_digraph(o.size, 0.05, o.seed);
  auto a2 = adj;
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  tcu::graph::closure_tcu(dev, adj.view());
  Counters ram;
  tcu::graph::closure_naive(a2.view(), ram);
  return {"closure (Thm 5)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm5_closure(static_cast<double>(o.size),
                                   static_cast<double>(o.m),
                                   static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_apsd(const Options& o) {
  auto adj = tcu::graph::random_connected_graph(o.size, 0.05, o.seed);
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  (void)tcu::graph::apsd_seidel(dev, adj.view());
  Counters ram;
  (void)tcu::graph::apsd_bfs(adj.view(), ram);
  return {"apsd (Thm 6)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm6_apsd(static_cast<double>(o.size),
                                static_cast<double>(o.m),
                                static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_dft(const Options& o) {
  std::size_t n = 1;
  while (n < o.size * o.size) n *= 2;  // comparable work to the d x d runs
  tcu::util::Xoshiro256 rng(o.seed);
  tcu::dft::CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  Device<Complex> dev({.m = o.m, .latency = o.latency});
  (void)tcu::dft::dft_tcu(dev, x);
  Counters ram;
  (void)tcu::dft::fft_ram(x, ram);
  return {"dft (Thm 7)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm7_dft(static_cast<double>(n),
                               static_cast<double>(o.m),
                               static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_stencil(const Options& o) {
  const std::size_t k = std::max<std::size_t>(4, o.size / 8);
  auto grid = rand_mat(o.size, o.size, o.seed);
  auto w = tcu::stencil::heat_kernel(0.125, 0.125);
  Device<Complex> dev({.m = o.m, .latency = o.latency});
  (void)tcu::stencil::stencil_tcu(dev, grid.view(), w, k);
  Counters ram;
  (void)tcu::stencil::stencil_direct(grid.view(), w, k, ram);
  return {"stencil (Thm 8)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm8_stencil_refined(
              static_cast<double>(o.size) * o.size, static_cast<double>(k),
              static_cast<double>(o.m), static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_intmul(const Options& o) {
  tcu::util::Xoshiro256 rng(o.seed);
  const std::size_t bits = o.size * 64;
  const auto a = tcu::intmul::BigInt::random_bits(bits, rng);
  const auto b = tcu::intmul::BigInt::random_bits(bits, rng);
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  (void)tcu::intmul::mul_schoolbook_tcu(dev, a, b);
  Counters ram;
  (void)tcu::intmul::mul_schoolbook_ram(a, b, ram);
  return {"intmul (Thm 9)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm9_intmul(static_cast<double>(bits), 64.0,
                                  static_cast<double>(o.m),
                                  static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_karatsuba(const Options& o) {
  tcu::util::Xoshiro256 rng(o.seed);
  const std::size_t bits = o.size * 64;
  const auto a = tcu::intmul::BigInt::random_bits(bits, rng);
  const auto b = tcu::intmul::BigInt::random_bits(bits, rng);
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  (void)tcu::intmul::mul_karatsuba_tcu(dev, a, b);
  Counters ram;
  (void)tcu::intmul::mul_karatsuba_ram(a, b, ram);
  return {"karatsuba (Thm 10)",
          static_cast<double>(dev.counters().time()),
          tcu::costs::thm10_karatsuba(static_cast<double>(bits), 64.0,
                                      static_cast<double>(o.m),
                                      static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_polyeval(const Options& o) {
  tcu::util::Xoshiro256 rng(o.seed);
  const std::size_t n = o.size * 16, p = o.size;
  std::vector<double> coeffs(n), points(p);
  for (auto& v : coeffs) v = rng.uniform(-1, 1);
  for (auto& v : points) v = rng.uniform(-1, 1);
  Device<double> dev({.m = o.m, .latency = o.latency});
  (void)tcu::poly::eval_tcu(dev, coeffs, points);
  Counters ram;
  (void)tcu::poly::eval_horner(coeffs, points, ram);
  return {"polyeval (Thm 11)",
          static_cast<double>(dev.counters().time()),
          tcu::costs::thm11_polyeval(static_cast<double>(n),
                                     static_cast<double>(p),
                                     static_cast<double>(o.m),
                                     static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_scan(const Options& o) {
  tcu::util::Xoshiro256 rng(o.seed);
  std::vector<double> data(o.size * o.size);
  for (auto& v : data) v = rng.uniform(-1, 1);
  Device<double> dev({.m = o.m, .latency = o.latency});
  (void)tcu::primitives::inclusive_scan_tcu(dev, data);
  Counters ram;
  (void)tcu::primitives::inclusive_scan_ram(data, ram);
  return {"scan (prim)", static_cast<double>(dev.counters().time()),
          static_cast<double>(data.size()),
          static_cast<double>(ram.time())};
}

Row run_triangles(const Options& o) {
  auto g = tcu::graph::random_connected_graph(o.size, 0.3, o.seed);
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  (void)tcu::graph::count_triangles_tcu(dev, g.view());
  Counters ram;
  (void)tcu::graph::count_triangles_ram(g.view(), ram);
  return {"triangles", static_cast<double>(dev.counters().time()),
          tcu::costs::thm2_dense(static_cast<double>(o.size) * o.size,
                                 static_cast<double>(o.m),
                                 static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

// ------------------------------------------------------------- fault driver

struct FaultOptions {
  std::string workload = "matmul";
  std::size_t p = 4;
  int rounds = 2;
  std::size_t m = 256;
  std::uint64_t latency = 64;
  std::size_t size = 96;
  std::uint64_t seed = 42;
  bool has_dead = false;
  std::size_t dead = 0;
  std::uint64_t die_at = 0;
  std::uint64_t rate_ppm = 0;
  std::uint64_t straggle_us = 0;
};

/// Serial reference, fault-free pool, faulty pool: `serial` runs one
/// round on a Device<T>, `pooled` one round on a PoolExecutor<T>; both
/// must produce the same bits for fixed inputs. Returns the process exit
/// status.
template <typename T, typename Serial, typename Pooled>
int fault_drive(const FaultOptions& fo, const tcu::fault::FaultSpec& spec,
                Serial serial, Pooled pooled) {
  Device<T> ref({.m = fo.m, .latency = fo.latency});
  Matrix<double> expect(1, 1);
  for (int r = 0; r < fo.rounds; ++r) expect = serial(ref);

  tcu::DevicePool<T> clean(fo.p, {.m = fo.m, .latency = fo.latency});
  {
    tcu::PoolExecutor<T> exec(clean);
    for (int r = 0; r < fo.rounds; ++r) (void)pooled(exec);
  }

  tcu::DevicePool<T> pool(fo.p, {.m = fo.m, .latency = fo.latency});
  tcu::fault::FaultPlan plan(fo.seed, spec);
  tcu::fault::ScopedInjection<T> inject(pool, plan);
  bool outputs_match = false;
  tcu::RoundReport report;
  try {
    tcu::PoolExecutor<T> exec(pool);
    Matrix<double> got(1, 1);
    for (int r = 0; r < fo.rounds; ++r) got = pooled(exec);
    outputs_match = got == expect;
    report = exec.fault_stats();
  } catch (const tcu::fault::FaultError& err) {
    std::cerr << "tcu_cli fault: recovery exhausted: " << err.what() << "\n";
    return 1;
  }

  const auto serial_time = static_cast<double>(ref.counters().time());
  std::cout << "  serial model time    : " << ref.counters().time() << "\n"
            << "  fault-free pool      : makespan " << clean.makespan()
            << ", sim speedup "
            << tcu::util::fmt(serial_time /
                                  static_cast<double>(clean.makespan()),
                              2)
            << "\n"
            << "  faulty pool          : makespan " << pool.makespan()
            << ", sim speedup "
            << tcu::util::fmt(serial_time /
                                  static_cast<double>(pool.makespan()),
                              2)
            << "\n"
            << "  outputs bit-identical: "
            << (outputs_match ? "yes" : "NO") << "\n"
            << "  transients injected  : " << plan.transients_injected()
            << " (retried " << report.retried << ", redealt "
            << report.redealt << ", drained " << report.drained << ")\n"
            << "  quarantined units    : [";
  for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
    std::cout << (i ? " " : "") << report.quarantined[i];
  }
  std::cout << "] -> " << report.healthy_units << "/" << fo.p
            << " healthy\n";
  return outputs_match ? 0 : 1;
}

/// Parse a flag's value as a decimal number, or die with a diagnostic
/// (strtoull's silent 0 on garbage would turn a typo into a valid plan).
std::uint64_t parse_num(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const auto num = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || errno == ERANGE) {
    std::cerr << "tcu_cli fault: " << flag << " expects a number, got '"
              << value << "'\n";
    usage();
  }
  return num;
}

int run_fault(int argc, char** argv) {
  FaultOptions fo;
  int i = 2;
  for (; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--workload") {
      fo.workload = value;
      continue;
    }
    const auto num = parse_num(flag, value);
    if (flag == "--p") {
      fo.p = num;
    } else if (flag == "--rounds") {
      fo.rounds = static_cast<int>(num);
    } else if (flag == "--dead") {
      fo.has_dead = true;
      fo.dead = num;
    } else if (flag == "--die-at") {
      fo.die_at = num;
    } else if (flag == "--rate-ppm") {
      fo.rate_ppm = num;
    } else if (flag == "--straggle-us") {
      fo.straggle_us = num;
    } else if (flag == "--m") {
      fo.m = num;
    } else if (flag == "--l") {
      fo.latency = num;
    } else if (flag == "--size") {
      fo.size = num;
    } else if (flag == "--seed") {
      fo.seed = num;
    } else {
      usage();
    }
  }
  if (i < argc) {  // a trailing flag with no value must not pass silently
    std::cerr << "tcu_cli fault: missing value for '" << argv[i] << "'\n";
    usage();
  }

  tcu::fault::FaultSpec spec;
  if (fo.has_dead) spec.death_at = {{fo.dead, fo.die_at}};
  if (fo.rate_ppm > 0) {
    spec.transient_rate = static_cast<double>(fo.rate_ppm) * 1e-6;
  }
  if (fo.straggle_us > 0) {  // one slow unit: the straggler-tolerance case
    spec.stragglers = {0};
    spec.straggle_us = fo.straggle_us;
  }

  // Round dimensions up so the strip/panel decompositions are exact.
  const std::size_t s = tcu::exact_sqrt(fo.m);
  const std::size_t d = ((fo.size + s - 1) / s) * s;

  std::cout << "fault scenario: workload=" << fo.workload << " p=" << fo.p
            << " rounds=" << fo.rounds << " seed=" << fo.seed;
  if (fo.has_dead) std::cout << " dead=" << fo.dead << "@" << fo.die_at;
  if (fo.rate_ppm) std::cout << " rate=" << fo.rate_ppm << "ppm";
  if (fo.straggle_us) std::cout << " straggle=" << fo.straggle_us << "us";
  std::cout << "\n";

  if (fo.workload == "matmul") {
    auto a = rand_mat(d, d, fo.seed);
    auto b = rand_mat(d, d, fo.seed + 1);
    return fault_drive<double>(
        fo, spec,
        [&](Device<double>& dev) {
          return tcu::linalg::matmul_tcu(dev, a.view(), b.view());
        },
        [&](tcu::PoolExecutor<double>& exec) {
          return tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
        });
  }
  if (fo.workload == "gauss") {
    // Diagonally dominant input: the forward elimination stays benign.
    tcu::util::Xoshiro256 rng(fo.seed);
    Matrix<double> x(d, d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
      double row = 0;
      for (std::size_t j = 0; j < d; ++j) {
        x(i, j) = rng.uniform(-1, 1);
        row += std::abs(x(i, j));
      }
      x(i, i) = row + 1.0;
    }
    return fault_drive<double>(
        fo, spec,
        [&](Device<double>& dev) {
          Matrix<double> c = x;
          tcu::linalg::ge_forward_tcu(dev, c.view());
          return c;
        },
        [&](tcu::PoolExecutor<double>& exec) {
          Matrix<double> c = x;
          tcu::linalg::ge_forward_tcu_pool(exec, c.view());
          return c;
        });
  }
  if (fo.workload == "conv2d") {
    const std::size_t channels = 2, kh = 2, kw = 2, filters_out = 3;
    auto input = rand_mat(channels * fo.size, fo.size, fo.seed);
    auto filters = rand_mat(filters_out, channels * kh * kw, fo.seed + 1);
    return fault_drive<double>(
        fo, spec,
        [&](Device<double>& dev) {
          return tcu::nn::conv2d_tcu(dev, input.view(), channels,
                                     filters.view(), kh, kw);
        },
        [&](tcu::PoolExecutor<double>& exec) {
          return tcu::nn::conv2d_tcu_pool(exec, input.view(), channels,
                                          filters.view(), kh, kw);
        });
  }
  if (fo.workload == "stencil") {
    auto grid = rand_mat(fo.size, fo.size, fo.seed);
    const auto w = tcu::stencil::heat_kernel(0.125, 0.125);
    const std::size_t k = std::max<std::size_t>(4, fo.size / 8);
    return fault_drive<Complex>(
        fo, spec,
        [&](Device<Complex>& dev) {
          return tcu::stencil::stencil_tcu(dev, grid.view(), w, k);
        },
        [&](tcu::PoolExecutor<Complex>& exec) {
          return tcu::stencil::stencil_tcu_pool(exec, grid.view(), w, k);
        });
  }
  usage();
}

// -------------------------------------------------------------- pool driver

struct PoolOptions {
  std::string workload = "closure";
  tcu::ExecMode mode = tcu::ExecMode::kEpoch;
  tcu::BackendKind backend = tcu::BackendKind::kDefault;
  std::size_t p = 4;
  std::size_t m = 256;
  std::uint64_t latency = 64;
  std::size_t size = 96;
  std::uint64_t seed = 42;
};

/// One dependent workload, serial vs pooled under the chosen schedule:
/// `serial` runs on a Device<T>, `pooled` on a DevicePool<T> in
/// `po.mode`; both must produce the same bits. Returns the process exit
/// status (nonzero on mismatch).
template <typename T, typename Serial, typename Pooled>
int pool_drive(const PoolOptions& po, Serial serial, Pooled pooled) {
  Device<T> ref({.m = po.m, .latency = po.latency, .backend = po.backend});
  const auto expect = serial(ref);

  tcu::DevicePool<T> pool(
      po.p, {.m = po.m, .latency = po.latency, .backend = po.backend});
  const auto got = pooled(pool);
  const bool outputs_match = got == expect;

  std::uint64_t pool_wall = 0;
  for (std::size_t u = 0; u < pool.size(); ++u) {
    pool_wall += pool.unit(u).wall_ns();
  }
  const auto serial_time = static_cast<double>(ref.counters().time());
  std::cout << "  backend              : " << ref.backend_name() << "\n"
            << "  serial model time    : " << ref.counters().time()
            << "  (wall " << ref.wall_ns() << " ns)\n"
            << "  pool makespan        : " << pool.makespan()
            << ", sim speedup "
            << tcu::util::fmt(
                   serial_time / static_cast<double>(pool.makespan()), 2)
            << "  (backend wall " << pool_wall << " ns)\n"
            << "  outputs bit-identical: "
            << (outputs_match ? "yes" : "NO") << "\n";
  return outputs_match ? 0 : 1;
}

int run_pool(int argc, char** argv) {
  PoolOptions po;
  int i = 2;
  for (; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--workload") {
      po.workload = value;
      continue;
    }
    if (flag == "--mode") {
      if (value == "barrier") {
        po.mode = tcu::ExecMode::kBarrier;
      } else if (value == "epoch") {
        po.mode = tcu::ExecMode::kEpoch;
      } else {
        std::cerr << "tcu_cli pool: --mode expects barrier|epoch, got '"
                  << value << "'\n";
        usage();
      }
      continue;
    }
    if (flag == "--backend") {
      try {
        po.backend = tcu::parse_backend_kind(value);
      } catch (const std::invalid_argument&) {
        std::cerr << "tcu_cli pool: --backend expects sim|micro|blas, got '"
                  << value << "'\n";
        usage();
      }
      if (!tcu::backend_available(po.backend)) {
        std::cerr << "tcu_cli pool: backend '" << value
                  << "' is not available in this build (blas needs "
                     "-DTCU_BLAS=ON)\n";
        return 2;
      }
      continue;
    }
    const auto num = parse_num(flag, value);
    if (flag == "--p") {
      po.p = num;
    } else if (flag == "--m") {
      po.m = num;
    } else if (flag == "--l") {
      po.latency = num;
    } else if (flag == "--size") {
      po.size = num;
    } else if (flag == "--seed") {
      po.seed = num;
    } else {
      usage();
    }
  }
  if (i < argc) {
    std::cerr << "tcu_cli pool: missing value for '" << argv[i] << "'\n";
    usage();
  }

  // Round dimensions up so the strip/panel decompositions are exact.
  const std::size_t s = tcu::exact_sqrt(po.m);
  const std::size_t d = ((po.size + s - 1) / s) * s;

  std::cout << "pool scenario: workload=" << po.workload << " mode="
            << (po.mode == tcu::ExecMode::kEpoch ? "epoch" : "barrier")
            << " backend="
            << tcu::backend_kind_name(tcu::resolve_backend_kind(po.backend))
            << " p=" << po.p << " m=" << po.m << " l=" << po.latency
            << " size=" << d << " seed=" << po.seed << "\n";

  if (po.workload == "closure") {
    const auto adj = tcu::graph::random_digraph(d, 0.05, po.seed);
    return pool_drive<tcu::graph::Vert>(
        po,
        [&](Device<tcu::graph::Vert>& dev) {
          auto c = adj;
          tcu::graph::closure_tcu(dev, c.view());
          return c;
        },
        [&](tcu::DevicePool<tcu::graph::Vert>& pool) {
          auto c = adj;
          tcu::graph::closure_tcu(pool, c.view(), po.mode);
          return c;
        });
  }
  if (po.workload == "gauss") {
    // Diagonally dominant input: the forward elimination stays benign.
    tcu::util::Xoshiro256 rng(po.seed);
    Matrix<double> x(d, d, 0.0);
    for (std::size_t r = 0; r < d; ++r) {
      double row = 0;
      for (std::size_t j = 0; j < d; ++j) {
        x(r, j) = rng.uniform(-1, 1);
        row += std::abs(x(r, j));
      }
      x(r, r) = row + 1.0;
    }
    return pool_drive<double>(
        po,
        [&](Device<double>& dev) {
          auto c = x;
          tcu::linalg::ge_forward_tcu(dev, c.view());
          return c;
        },
        [&](tcu::DevicePool<double>& pool) {
          auto c = x;
          tcu::linalg::ge_forward_tcu_pool(pool, c.view(), po.mode);
          return c;
        });
  }
  if (po.workload == "dft") {
    tcu::util::Xoshiro256 rng(po.seed);
    Matrix<Complex> batch(4, d);
    for (std::size_t r = 0; r < batch.rows(); ++r) {
      for (std::size_t j = 0; j < d; ++j) {
        batch(r, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
      }
    }
    return pool_drive<Complex>(
        po,
        [&](Device<Complex>& dev) {
          auto b = batch;
          tcu::dft::dft_batch_tcu(dev, b.view(), {.affinity = true});
          return b;
        },
        [&](tcu::DevicePool<Complex>& pool) {
          auto b = batch;
          tcu::PoolExecutor<Complex> exec(pool);
          tcu::dft::dft_batch_tcu(exec, b.view(),
                                  {.affinity = true, .mode = po.mode});
          return b;
        });
  }
  if (po.workload == "mlp") {
    tcu::util::Xoshiro256 rng(po.seed);
    tcu::nn::Mlp mlp;
    for (int l = 0; l < 3; ++l) {
      auto w = rand_mat(d, d, po.seed + 10 + l);
      std::vector<double> bias(d);
      for (auto& v : bias) v = rng.uniform(-1, 1);
      mlp.add_layer(tcu::nn::DenseLayer(w, bias));
    }
    const auto batch = rand_mat(d, d, po.seed + 20);
    return pool_drive<double>(
        po,
        [&](Device<double>& dev) { return mlp.forward(dev, batch.view()); },
        [&](tcu::DevicePool<double>& pool) {
          tcu::PoolExecutor<double> exec(pool);
          return mlp.forward(exec, batch.view(), {.affinity = true},
                             po.mode);
        });
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "fault") return run_fault(argc, argv);
  if (command == "pool") return run_pool(argc, argv);
  Options o;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const auto value = std::strtoull(argv[i + 1], nullptr, 10);
    if (flag == "--m") {
      o.m = value;
    } else if (flag == "--l") {
      o.latency = value;
    } else if (flag == "--size") {
      o.size = value;
    } else if (flag == "--seed") {
      o.seed = value;
    } else {
      usage();
    }
  }

  const std::map<std::string, Row (*)(const Options&)> commands{
      {"matmul", run_matmul},       {"strassen", run_strassen},
      {"gauss", run_gauss},         {"closure", run_closure},
      {"apsd", run_apsd},           {"dft", run_dft},
      {"stencil", run_stencil},     {"intmul", run_intmul},
      {"karatsuba", run_karatsuba}, {"polyeval", run_polyeval},
      {"scan", run_scan},           {"triangles", run_triangles},
  };

  std::vector<Row> rows;
  try {
    if (command == "all") {
      for (const auto& [name, fn] : commands) rows.push_back(fn(o));
    } else if (auto it = commands.find(command); it != commands.end()) {
      rows.push_back(it->second(o));
    } else {
      usage();
    }
  } catch (const std::exception& err) {
    std::cerr << "tcu_cli: " << err.what() << "\n";
    return 1;
  }

  std::cout << "(m = " << o.m << ", l = " << o.latency
            << ", size = " << o.size << ", seed = " << o.seed << ")\n\n";
  tcu::util::Table table({"algorithm", "model time", "paper bound", "ratio",
                          "RAM baseline", "speedup"});
  for (const auto& row : rows) {
    table.add_row({row.name, tcu::util::fmt(row.measured, 0),
                   tcu::util::fmt(row.predicted, 0),
                   tcu::util::fmt(row.measured / row.predicted, 2),
                   tcu::util::fmt(row.baseline, 0),
                   tcu::util::fmt(row.baseline / row.measured, 2)});
  }
  table.print(std::cout);
  return 0;
}
