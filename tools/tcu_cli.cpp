// tcu_cli — run any of the paper's algorithms from the command line and
// print the simulated model cost next to the paper's predicted bound.
//
//   tcu_cli <command> [--m M] [--l L] [--size N] [--seed S]
//
// Commands: matmul, strassen, gauss, closure, apsd, dft, stencil,
//           intmul, karatsuba, polyeval, scan, triangles, all.
//
// Examples:
//   tcu_cli matmul --size 256 --m 1024 --l 100
//   tcu_cli all --size 128

#include <complex>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/costs.hpp"
#include "dft/dft.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"
#include "intmul/mul.hpp"
#include "linalg/dense.hpp"
#include "linalg/gauss.hpp"
#include "linalg/strassen.hpp"
#include "poly/poly.hpp"
#include "primitives/primitives.hpp"
#include "stencil/stencil.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using Complex = std::complex<double>;

struct Options {
  std::size_t m = 256;
  std::uint64_t latency = 0;
  std::size_t size = 128;
  std::uint64_t seed = 42;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: tcu_cli <command> [--m M] [--l L] [--size N] [--seed S]\n"
         "commands: matmul strassen gauss closure apsd dft stencil intmul\n"
         "          karatsuba polyeval scan triangles all\n";
  std::exit(2);
}

Matrix<double> rand_mat(std::size_t r, std::size_t c, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

struct Row {
  std::string name;
  double measured;
  double predicted;
  double baseline;
};

Row run_matmul(const Options& o) {
  Device<double> dev({.m = o.m, .latency = o.latency});
  auto a = rand_mat(o.size, o.size, o.seed);
  auto b = rand_mat(o.size, o.size, o.seed + 1);
  (void)tcu::linalg::matmul_tcu(dev, a.view(), b.view());
  Counters ram;
  (void)tcu::linalg::matmul_naive<double>(a.view(), b.view(), ram);
  const double n = static_cast<double>(o.size) * o.size;
  return {"matmul (Thm 2)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm2_dense(n, static_cast<double>(o.m),
                                 static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_strassen(const Options& o) {
  Device<double> dev({.m = o.m, .latency = o.latency});
  auto a = rand_mat(o.size, o.size, o.seed);
  auto b = rand_mat(o.size, o.size, o.seed + 1);
  (void)tcu::linalg::matmul_strassen_tcu(dev, a.view(), b.view(), {.p0 = 7});
  Counters ram;
  (void)tcu::linalg::matmul_strassen_ram<double>(a.view(), b.view(), ram);
  const double n = static_cast<double>(o.size) * o.size;
  return {"strassen (Thm 1)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm1_strassen(n, static_cast<double>(o.m),
                                    static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_gauss(const Options& o) {
  const std::size_t s = tcu::exact_sqrt(o.m);
  const std::size_t r = ((o.size + s - 1) / s) * s;
  tcu::util::Xoshiro256 rng(o.seed);
  Matrix<double> c(r, r, 0.0);
  for (std::size_t i = 0; i + 1 < r; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < r; ++j) {
      c(i, j) = rng.uniform(-1, 1);
      row += std::abs(c(i, j));
    }
    c(i, i) = row + 1.0;
  }
  auto c2 = c;
  Device<double> dev({.m = o.m, .latency = o.latency});
  tcu::linalg::ge_forward_tcu(dev, c.view());
  Counters ram;
  tcu::linalg::ge_forward_naive(c2.view(), ram);
  return {"gauss (Thm 4)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm4_gauss(static_cast<double>(r) * r,
                                 static_cast<double>(o.m),
                                 static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_closure(const Options& o) {
  auto adj = tcu::graph::random_digraph(o.size, 0.05, o.seed);
  auto a2 = adj;
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  tcu::graph::closure_tcu(dev, adj.view());
  Counters ram;
  tcu::graph::closure_naive(a2.view(), ram);
  return {"closure (Thm 5)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm5_closure(static_cast<double>(o.size),
                                   static_cast<double>(o.m),
                                   static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_apsd(const Options& o) {
  auto adj = tcu::graph::random_connected_graph(o.size, 0.05, o.seed);
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  (void)tcu::graph::apsd_seidel(dev, adj.view());
  Counters ram;
  (void)tcu::graph::apsd_bfs(adj.view(), ram);
  return {"apsd (Thm 6)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm6_apsd(static_cast<double>(o.size),
                                static_cast<double>(o.m),
                                static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_dft(const Options& o) {
  std::size_t n = 1;
  while (n < o.size * o.size) n *= 2;  // comparable work to the d x d runs
  tcu::util::Xoshiro256 rng(o.seed);
  tcu::dft::CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  Device<Complex> dev({.m = o.m, .latency = o.latency});
  (void)tcu::dft::dft_tcu(dev, x);
  Counters ram;
  (void)tcu::dft::fft_ram(x, ram);
  return {"dft (Thm 7)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm7_dft(static_cast<double>(n),
                               static_cast<double>(o.m),
                               static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_stencil(const Options& o) {
  const std::size_t k = std::max<std::size_t>(4, o.size / 8);
  auto grid = rand_mat(o.size, o.size, o.seed);
  auto w = tcu::stencil::heat_kernel(0.125, 0.125);
  Device<Complex> dev({.m = o.m, .latency = o.latency});
  (void)tcu::stencil::stencil_tcu(dev, grid.view(), w, k);
  Counters ram;
  (void)tcu::stencil::stencil_direct(grid.view(), w, k, ram);
  return {"stencil (Thm 8)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm8_stencil_refined(
              static_cast<double>(o.size) * o.size, static_cast<double>(k),
              static_cast<double>(o.m), static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_intmul(const Options& o) {
  tcu::util::Xoshiro256 rng(o.seed);
  const std::size_t bits = o.size * 64;
  const auto a = tcu::intmul::BigInt::random_bits(bits, rng);
  const auto b = tcu::intmul::BigInt::random_bits(bits, rng);
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  (void)tcu::intmul::mul_schoolbook_tcu(dev, a, b);
  Counters ram;
  (void)tcu::intmul::mul_schoolbook_ram(a, b, ram);
  return {"intmul (Thm 9)", static_cast<double>(dev.counters().time()),
          tcu::costs::thm9_intmul(static_cast<double>(bits), 64.0,
                                  static_cast<double>(o.m),
                                  static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_karatsuba(const Options& o) {
  tcu::util::Xoshiro256 rng(o.seed);
  const std::size_t bits = o.size * 64;
  const auto a = tcu::intmul::BigInt::random_bits(bits, rng);
  const auto b = tcu::intmul::BigInt::random_bits(bits, rng);
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  (void)tcu::intmul::mul_karatsuba_tcu(dev, a, b);
  Counters ram;
  (void)tcu::intmul::mul_karatsuba_ram(a, b, ram);
  return {"karatsuba (Thm 10)",
          static_cast<double>(dev.counters().time()),
          tcu::costs::thm10_karatsuba(static_cast<double>(bits), 64.0,
                                      static_cast<double>(o.m),
                                      static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_polyeval(const Options& o) {
  tcu::util::Xoshiro256 rng(o.seed);
  const std::size_t n = o.size * 16, p = o.size;
  std::vector<double> coeffs(n), points(p);
  for (auto& v : coeffs) v = rng.uniform(-1, 1);
  for (auto& v : points) v = rng.uniform(-1, 1);
  Device<double> dev({.m = o.m, .latency = o.latency});
  (void)tcu::poly::eval_tcu(dev, coeffs, points);
  Counters ram;
  (void)tcu::poly::eval_horner(coeffs, points, ram);
  return {"polyeval (Thm 11)",
          static_cast<double>(dev.counters().time()),
          tcu::costs::thm11_polyeval(static_cast<double>(n),
                                     static_cast<double>(p),
                                     static_cast<double>(o.m),
                                     static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

Row run_scan(const Options& o) {
  tcu::util::Xoshiro256 rng(o.seed);
  std::vector<double> data(o.size * o.size);
  for (auto& v : data) v = rng.uniform(-1, 1);
  Device<double> dev({.m = o.m, .latency = o.latency});
  (void)tcu::primitives::inclusive_scan_tcu(dev, data);
  Counters ram;
  (void)tcu::primitives::inclusive_scan_ram(data, ram);
  return {"scan (prim)", static_cast<double>(dev.counters().time()),
          static_cast<double>(data.size()),
          static_cast<double>(ram.time())};
}

Row run_triangles(const Options& o) {
  auto g = tcu::graph::random_connected_graph(o.size, 0.3, o.seed);
  Device<std::int64_t> dev({.m = o.m, .latency = o.latency});
  (void)tcu::graph::count_triangles_tcu(dev, g.view());
  Counters ram;
  (void)tcu::graph::count_triangles_ram(g.view(), ram);
  return {"triangles", static_cast<double>(dev.counters().time()),
          tcu::costs::thm2_dense(static_cast<double>(o.size) * o.size,
                                 static_cast<double>(o.m),
                                 static_cast<double>(o.latency)),
          static_cast<double>(ram.time())};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  Options o;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const auto value = std::strtoull(argv[i + 1], nullptr, 10);
    if (flag == "--m") {
      o.m = value;
    } else if (flag == "--l") {
      o.latency = value;
    } else if (flag == "--size") {
      o.size = value;
    } else if (flag == "--seed") {
      o.seed = value;
    } else {
      usage();
    }
  }

  const std::map<std::string, Row (*)(const Options&)> commands{
      {"matmul", run_matmul},       {"strassen", run_strassen},
      {"gauss", run_gauss},         {"closure", run_closure},
      {"apsd", run_apsd},           {"dft", run_dft},
      {"stencil", run_stencil},     {"intmul", run_intmul},
      {"karatsuba", run_karatsuba}, {"polyeval", run_polyeval},
      {"scan", run_scan},           {"triangles", run_triangles},
  };

  std::vector<Row> rows;
  try {
    if (command == "all") {
      for (const auto& [name, fn] : commands) rows.push_back(fn(o));
    } else if (auto it = commands.find(command); it != commands.end()) {
      rows.push_back(it->second(o));
    } else {
      usage();
    }
  } catch (const std::exception& err) {
    std::cerr << "tcu_cli: " << err.what() << "\n";
    return 1;
  }

  std::cout << "(m = " << o.m << ", l = " << o.latency
            << ", size = " << o.size << ", seed = " << o.seed << ")\n\n";
  tcu::util::Table table({"algorithm", "model time", "paper bound", "ratio",
                          "RAM baseline", "speedup"});
  for (const auto& row : rows) {
    table.add_row({row.name, tcu::util::fmt(row.measured, 0),
                   tcu::util::fmt(row.predicted, 0),
                   tcu::util::fmt(row.measured / row.predicted, 2),
                   tcu::util::fmt(row.baseline, 0),
                   tcu::util::fmt(row.baseline / row.measured, 2)});
  }
  table.print(std::cout);
  return 0;
}
