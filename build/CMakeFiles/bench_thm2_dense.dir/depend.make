# Empty dependencies file for bench_thm2_dense.
# This may be replaced when dependencies are built.
