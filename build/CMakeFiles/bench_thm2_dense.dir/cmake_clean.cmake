file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_dense.dir/bench/bench_thm2_dense.cpp.o"
  "CMakeFiles/bench_thm2_dense.dir/bench/bench_thm2_dense.cpp.o.d"
  "bench_thm2_dense"
  "bench_thm2_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
