file(REMOVE_RECURSE
  "CMakeFiles/mlp_inference.dir/examples/mlp_inference.cpp.o"
  "CMakeFiles/mlp_inference.dir/examples/mlp_inference.cpp.o.d"
  "mlp_inference"
  "mlp_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
