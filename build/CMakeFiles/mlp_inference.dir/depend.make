# Empty dependencies file for mlp_inference.
# This may be replaced when dependencies are built.
