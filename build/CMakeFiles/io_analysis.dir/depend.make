# Empty dependencies file for io_analysis.
# This may be replaced when dependencies are built.
