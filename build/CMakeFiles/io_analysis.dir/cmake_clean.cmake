file(REMOVE_RECURSE
  "CMakeFiles/io_analysis.dir/examples/io_analysis.cpp.o"
  "CMakeFiles/io_analysis.dir/examples/io_analysis.cpp.o.d"
  "io_analysis"
  "io_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
