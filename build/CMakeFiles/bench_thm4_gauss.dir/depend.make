# Empty dependencies file for bench_thm4_gauss.
# This may be replaced when dependencies are built.
