file(REMOVE_RECURSE
  "CMakeFiles/bench_thm4_gauss.dir/bench/bench_thm4_gauss.cpp.o"
  "CMakeFiles/bench_thm4_gauss.dir/bench/bench_thm4_gauss.cpp.o.d"
  "bench_thm4_gauss"
  "bench_thm4_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm4_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
