# Empty dependencies file for bench_ablation_tall.
# This may be replaced when dependencies are built.
