file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tall.dir/bench/bench_ablation_tall.cpp.o"
  "CMakeFiles/bench_ablation_tall.dir/bench/bench_ablation_tall.cpp.o.d"
  "bench_ablation_tall"
  "bench_ablation_tall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
