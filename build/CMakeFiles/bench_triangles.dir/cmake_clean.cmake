file(REMOVE_RECURSE
  "CMakeFiles/bench_triangles.dir/bench/bench_triangles.cpp.o"
  "CMakeFiles/bench_triangles.dir/bench/bench_triangles.cpp.o.d"
  "bench_triangles"
  "bench_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
