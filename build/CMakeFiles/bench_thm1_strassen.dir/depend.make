# Empty dependencies file for bench_thm1_strassen.
# This may be replaced when dependencies are built.
