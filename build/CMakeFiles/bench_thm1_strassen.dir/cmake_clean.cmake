file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_strassen.dir/bench/bench_thm1_strassen.cpp.o"
  "CMakeFiles/bench_thm1_strassen.dir/bench/bench_thm1_strassen.cpp.o.d"
  "bench_thm1_strassen"
  "bench_thm1_strassen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_strassen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
