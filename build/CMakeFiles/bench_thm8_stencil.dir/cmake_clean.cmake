file(REMOVE_RECURSE
  "CMakeFiles/bench_thm8_stencil.dir/bench/bench_thm8_stencil.cpp.o"
  "CMakeFiles/bench_thm8_stencil.dir/bench/bench_thm8_stencil.cpp.o.d"
  "bench_thm8_stencil"
  "bench_thm8_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm8_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
