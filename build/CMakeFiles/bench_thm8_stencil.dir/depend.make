# Empty dependencies file for bench_thm8_stencil.
# This may be replaced when dependencies are built.
