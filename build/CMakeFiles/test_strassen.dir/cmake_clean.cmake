file(REMOVE_RECURSE
  "CMakeFiles/test_strassen.dir/tests/test_strassen.cpp.o"
  "CMakeFiles/test_strassen.dir/tests/test_strassen.cpp.o.d"
  "test_strassen"
  "test_strassen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strassen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
