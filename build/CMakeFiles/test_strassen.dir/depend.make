# Empty dependencies file for test_strassen.
# This may be replaced when dependencies are built.
