# Empty dependencies file for bench_thm7_dft.
# This may be replaced when dependencies are built.
