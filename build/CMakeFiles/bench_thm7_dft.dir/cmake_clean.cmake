file(REMOVE_RECURSE
  "CMakeFiles/bench_thm7_dft.dir/bench/bench_thm7_dft.cpp.o"
  "CMakeFiles/bench_thm7_dft.dir/bench/bench_thm7_dft.cpp.o.d"
  "bench_thm7_dft"
  "bench_thm7_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm7_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
