# Empty dependencies file for bignum_demo.
# This may be replaced when dependencies are built.
