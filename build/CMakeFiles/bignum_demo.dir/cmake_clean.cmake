file(REMOVE_RECURSE
  "CMakeFiles/bignum_demo.dir/examples/bignum_demo.cpp.o"
  "CMakeFiles/bignum_demo.dir/examples/bignum_demo.cpp.o.d"
  "bignum_demo"
  "bignum_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bignum_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
