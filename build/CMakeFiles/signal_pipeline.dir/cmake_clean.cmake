file(REMOVE_RECURSE
  "CMakeFiles/signal_pipeline.dir/examples/signal_pipeline.cpp.o"
  "CMakeFiles/signal_pipeline.dir/examples/signal_pipeline.cpp.o.d"
  "signal_pipeline"
  "signal_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
