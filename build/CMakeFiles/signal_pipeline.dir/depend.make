# Empty dependencies file for signal_pipeline.
# This may be replaced when dependencies are built.
