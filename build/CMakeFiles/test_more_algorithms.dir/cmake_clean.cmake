file(REMOVE_RECURSE
  "CMakeFiles/test_more_algorithms.dir/tests/test_more_algorithms.cpp.o"
  "CMakeFiles/test_more_algorithms.dir/tests/test_more_algorithms.cpp.o.d"
  "test_more_algorithms"
  "test_more_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
