# Empty dependencies file for test_more_algorithms.
# This may be replaced when dependencies are built.
