# Empty dependencies file for test_intmul.
# This may be replaced when dependencies are built.
