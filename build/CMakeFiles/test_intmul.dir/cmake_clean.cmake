file(REMOVE_RECURSE
  "CMakeFiles/test_intmul.dir/tests/test_intmul.cpp.o"
  "CMakeFiles/test_intmul.dir/tests/test_intmul.cpp.o.d"
  "test_intmul"
  "test_intmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
