# Empty dependencies file for bench_fig1_systolic.
# This may be replaced when dependencies are built.
