file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_systolic.dir/bench/bench_fig1_systolic.cpp.o"
  "CMakeFiles/bench_fig1_systolic.dir/bench/bench_fig1_systolic.cpp.o.d"
  "bench_fig1_systolic"
  "bench_fig1_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
