# Empty dependencies file for test_dft.
# This may be replaced when dependencies are built.
