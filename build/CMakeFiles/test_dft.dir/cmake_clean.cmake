file(REMOVE_RECURSE
  "CMakeFiles/test_dft.dir/tests/test_dft.cpp.o"
  "CMakeFiles/test_dft.dir/tests/test_dft.cpp.o.d"
  "test_dft"
  "test_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
