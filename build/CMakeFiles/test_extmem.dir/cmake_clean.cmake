file(REMOVE_RECURSE
  "CMakeFiles/test_extmem.dir/tests/test_extmem.cpp.o"
  "CMakeFiles/test_extmem.dir/tests/test_extmem.cpp.o.d"
  "test_extmem"
  "test_extmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
