# Empty dependencies file for test_extmem.
# This may be replaced when dependencies are built.
