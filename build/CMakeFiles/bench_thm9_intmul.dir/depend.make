# Empty dependencies file for bench_thm9_intmul.
# This may be replaced when dependencies are built.
