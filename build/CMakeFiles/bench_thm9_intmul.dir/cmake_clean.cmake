file(REMOVE_RECURSE
  "CMakeFiles/bench_thm9_intmul.dir/bench/bench_thm9_intmul.cpp.o"
  "CMakeFiles/bench_thm9_intmul.dir/bench/bench_thm9_intmul.cpp.o.d"
  "bench_thm9_intmul"
  "bench_thm9_intmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm9_intmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
