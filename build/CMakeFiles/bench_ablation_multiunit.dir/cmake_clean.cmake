file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiunit.dir/bench/bench_ablation_multiunit.cpp.o"
  "CMakeFiles/bench_ablation_multiunit.dir/bench/bench_ablation_multiunit.cpp.o.d"
  "bench_ablation_multiunit"
  "bench_ablation_multiunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
