# Empty dependencies file for bench_ablation_multiunit.
# This may be replaced when dependencies are built.
