file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_sparse.dir/bench/bench_thm3_sparse.cpp.o"
  "CMakeFiles/bench_thm3_sparse.dir/bench/bench_thm3_sparse.cpp.o.d"
  "bench_thm3_sparse"
  "bench_thm3_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
