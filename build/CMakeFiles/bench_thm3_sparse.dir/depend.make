# Empty dependencies file for bench_thm3_sparse.
# This may be replaced when dependencies are built.
