# Empty dependencies file for bench_ablation_complex.
# This may be replaced when dependencies are built.
