file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_complex.dir/bench/bench_ablation_complex.cpp.o"
  "CMakeFiles/bench_ablation_complex.dir/bench/bench_ablation_complex.cpp.o.d"
  "bench_ablation_complex"
  "bench_ablation_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
