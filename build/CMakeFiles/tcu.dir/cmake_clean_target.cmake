file(REMOVE_RECURSE
  "libtcu.a"
)
