
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/complex_gemm.cpp" "CMakeFiles/tcu.dir/src/core/complex_gemm.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/core/complex_gemm.cpp.o.d"
  "/root/repo/src/core/precision.cpp" "CMakeFiles/tcu.dir/src/core/precision.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/core/precision.cpp.o.d"
  "/root/repo/src/dft/dft.cpp" "CMakeFiles/tcu.dir/src/dft/dft.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/dft/dft.cpp.o.d"
  "/root/repo/src/extmem/extmem.cpp" "CMakeFiles/tcu.dir/src/extmem/extmem.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/extmem/extmem.cpp.o.d"
  "/root/repo/src/graph/apsd.cpp" "CMakeFiles/tcu.dir/src/graph/apsd.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/graph/apsd.cpp.o.d"
  "/root/repo/src/graph/closure.cpp" "CMakeFiles/tcu.dir/src/graph/closure.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/graph/closure.cpp.o.d"
  "/root/repo/src/graph/triangles.cpp" "CMakeFiles/tcu.dir/src/graph/triangles.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/graph/triangles.cpp.o.d"
  "/root/repo/src/intmul/bigint.cpp" "CMakeFiles/tcu.dir/src/intmul/bigint.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/intmul/bigint.cpp.o.d"
  "/root/repo/src/intmul/mul.cpp" "CMakeFiles/tcu.dir/src/intmul/mul.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/intmul/mul.cpp.o.d"
  "/root/repo/src/linalg/linalg.cpp" "CMakeFiles/tcu.dir/src/linalg/linalg.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/linalg/linalg.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "CMakeFiles/tcu.dir/src/nn/layers.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/nn/layers.cpp.o.d"
  "/root/repo/src/poly/poly.cpp" "CMakeFiles/tcu.dir/src/poly/poly.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/poly/poly.cpp.o.d"
  "/root/repo/src/poly/poly_mul.cpp" "CMakeFiles/tcu.dir/src/poly/poly_mul.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/poly/poly_mul.cpp.o.d"
  "/root/repo/src/primitives/primitives.cpp" "CMakeFiles/tcu.dir/src/primitives/primitives.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/primitives/primitives.cpp.o.d"
  "/root/repo/src/stencil/stencil.cpp" "CMakeFiles/tcu.dir/src/stencil/stencil.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/stencil/stencil.cpp.o.d"
  "/root/repo/src/stencil/stencil1d.cpp" "CMakeFiles/tcu.dir/src/stencil/stencil1d.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/stencil/stencil1d.cpp.o.d"
  "/root/repo/src/systolic/systolic.cpp" "CMakeFiles/tcu.dir/src/systolic/systolic.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/systolic/systolic.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/tcu.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/tcu.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/tcu.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
