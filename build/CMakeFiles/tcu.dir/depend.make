# Empty dependencies file for tcu.
# This may be replaced when dependencies are built.
