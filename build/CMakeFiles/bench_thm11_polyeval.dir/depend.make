# Empty dependencies file for bench_thm11_polyeval.
# This may be replaced when dependencies are built.
