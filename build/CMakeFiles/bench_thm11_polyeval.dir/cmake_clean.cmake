file(REMOVE_RECURSE
  "CMakeFiles/bench_thm11_polyeval.dir/bench/bench_thm11_polyeval.cpp.o"
  "CMakeFiles/bench_thm11_polyeval.dir/bench/bench_thm11_polyeval.cpp.o.d"
  "bench_thm11_polyeval"
  "bench_thm11_polyeval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm11_polyeval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
