file(REMOVE_RECURSE
  "CMakeFiles/bench_thm5_closure.dir/bench/bench_thm5_closure.cpp.o"
  "CMakeFiles/bench_thm5_closure.dir/bench/bench_thm5_closure.cpp.o.d"
  "bench_thm5_closure"
  "bench_thm5_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
