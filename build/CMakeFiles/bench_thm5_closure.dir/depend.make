# Empty dependencies file for bench_thm5_closure.
# This may be replaced when dependencies are built.
