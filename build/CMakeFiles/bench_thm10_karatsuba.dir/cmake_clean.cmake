file(REMOVE_RECURSE
  "CMakeFiles/bench_thm10_karatsuba.dir/bench/bench_thm10_karatsuba.cpp.o"
  "CMakeFiles/bench_thm10_karatsuba.dir/bench/bench_thm10_karatsuba.cpp.o.d"
  "bench_thm10_karatsuba"
  "bench_thm10_karatsuba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm10_karatsuba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
