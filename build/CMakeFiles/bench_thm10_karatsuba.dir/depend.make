# Empty dependencies file for bench_thm10_karatsuba.
# This may be replaced when dependencies are built.
