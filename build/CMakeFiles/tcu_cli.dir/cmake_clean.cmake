file(REMOVE_RECURSE
  "CMakeFiles/tcu_cli.dir/tools/tcu_cli.cpp.o"
  "CMakeFiles/tcu_cli.dir/tools/tcu_cli.cpp.o.d"
  "tcu_cli"
  "tcu_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcu_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
