# Empty dependencies file for tcu_cli.
# This may be replaced when dependencies are built.
