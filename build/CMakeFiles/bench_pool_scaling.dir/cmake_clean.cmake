file(REMOVE_RECURSE
  "CMakeFiles/bench_pool_scaling.dir/bench/bench_pool_scaling.cpp.o"
  "CMakeFiles/bench_pool_scaling.dir/bench/bench_pool_scaling.cpp.o.d"
  "bench_pool_scaling"
  "bench_pool_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pool_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
