# Empty dependencies file for bench_pool_scaling.
# This may be replaced when dependencies are built.
