# Empty dependencies file for bench_thm6_apsd.
# This may be replaced when dependencies are built.
