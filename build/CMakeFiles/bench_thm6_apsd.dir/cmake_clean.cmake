file(REMOVE_RECURSE
  "CMakeFiles/bench_thm6_apsd.dir/bench/bench_thm6_apsd.cpp.o"
  "CMakeFiles/bench_thm6_apsd.dir/bench/bench_thm6_apsd.cpp.o.d"
  "bench_thm6_apsd"
  "bench_thm6_apsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm6_apsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
