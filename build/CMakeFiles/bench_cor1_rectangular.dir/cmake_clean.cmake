file(REMOVE_RECURSE
  "CMakeFiles/bench_cor1_rectangular.dir/bench/bench_cor1_rectangular.cpp.o"
  "CMakeFiles/bench_cor1_rectangular.dir/bench/bench_cor1_rectangular.cpp.o.d"
  "bench_cor1_rectangular"
  "bench_cor1_rectangular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cor1_rectangular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
