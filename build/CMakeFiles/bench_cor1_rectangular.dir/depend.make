# Empty dependencies file for bench_cor1_rectangular.
# This may be replaced when dependencies are built.
