file(REMOVE_RECURSE
  "CMakeFiles/test_sparse.dir/tests/test_sparse.cpp.o"
  "CMakeFiles/test_sparse.dir/tests/test_sparse.cpp.o.d"
  "test_sparse"
  "test_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
