# Empty dependencies file for bench_thm12_extmem.
# This may be replaced when dependencies are built.
