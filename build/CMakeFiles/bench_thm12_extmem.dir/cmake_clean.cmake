file(REMOVE_RECURSE
  "CMakeFiles/bench_thm12_extmem.dir/bench/bench_thm12_extmem.cpp.o"
  "CMakeFiles/bench_thm12_extmem.dir/bench/bench_thm12_extmem.cpp.o.d"
  "bench_thm12_extmem"
  "bench_thm12_extmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm12_extmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
