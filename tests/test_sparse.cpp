// Tests for output-sensitive sparse multiplication (Theorem 3): the
// compress-multiply-recover pipeline must reproduce the naive sparse
// product exactly (int64) or within tolerance (double) across densities,
// shapes and hint qualities, and its tensor-call cost must track the
// Theorem 3 bound when the output is balanced.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/costs.hpp"
#include "linalg/sparse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::linalg::SparseEntry;
using tcu::linalg::SparseMatrix;
using tcu::linalg::spmm_naive;
using tcu::linalg::spmm_tcu;
using tcu::linalg::SpmmOptions;

template <typename T>
SparseMatrix<T> random_sparse(std::size_t rows, std::size_t cols,
                              std::size_t nnz, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  std::vector<SparseEntry<T>> entries;
  entries.reserve(nnz);
  for (std::size_t t = 0; t < nnz; ++t) {
    entries.push_back(
        {static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(rows) - 1)),
         static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(cols) - 1)),
         static_cast<T>(rng.uniform_int(1, 9))});
  }
  return SparseMatrix<T>::from_entries(rows, cols, std::move(entries));
}

template <typename T>
void expect_equal_sparse(const SparseMatrix<T>& a, const SparseMatrix<T>& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t t = 0; t < a.nnz(); ++t) {
    EXPECT_EQ(a.entries()[t].row, b.entries()[t].row);
    EXPECT_EQ(a.entries()[t].col, b.entries()[t].col);
    EXPECT_EQ(a.entries()[t].value, b.entries()[t].value);
  }
}

TEST(SparseMatrix, FromEntriesSortsAndMergesDuplicates) {
  auto m = SparseMatrix<std::int64_t>::from_entries(
      4, 4, {{2, 1, 5}, {0, 3, 1}, {2, 1, -2}, {1, 1, 4}});
  ASSERT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.entries()[0].row, 0u);
  EXPECT_EQ(m.entries()[1].row, 1u);
  EXPECT_EQ(m.entries()[2].value, 3);  // 5 + (-2)
}

TEST(SparseMatrix, MergedZeroEntriesAreDropped) {
  auto m = SparseMatrix<std::int64_t>::from_entries(3, 3,
                                                    {{1, 1, 5}, {1, 1, -5}});
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(SparseMatrix, OutOfRangeEntryThrows) {
  EXPECT_THROW(SparseMatrix<std::int64_t>::from_entries(2, 2, {{2, 0, 1}}),
               std::out_of_range);
}

TEST(SparseMatrix, ToDenseAccumulates) {
  auto m = SparseMatrix<std::int64_t>::from_entries(2, 2, {{0, 1, 7}});
  auto dense = m.to_dense();
  EXPECT_EQ(dense(0, 1), 7);
  EXPECT_EQ(dense(1, 0), 0);
}

TEST(SpmmNaive, MatchesDenseProduct) {
  auto a = random_sparse<std::int64_t>(16, 16, 40, 1);
  auto b = random_sparse<std::int64_t>(16, 16, 40, 2);
  Counters c;
  auto got = spmm_naive(a, b, c).to_dense();
  auto ad = a.to_dense(), bd = b.to_dense();
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < 16; ++k) acc += ad(i, k) * bd(k, j);
      EXPECT_EQ(got(i, j), acc);
    }
  }
}

TEST(SpmmNaive, MismatchedShapesThrow) {
  SparseMatrix<std::int64_t> a(4, 5), b(6, 4);
  Counters c;
  EXPECT_THROW((void)spmm_naive(a, b, c), std::invalid_argument);
}

class SparseTcuSweep : public ::testing::TestWithParam<
                           std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(SparseTcuSweep, MatchesNaiveInt64) {
  const auto [dim, nnz, m] = GetParam();
  auto a = random_sparse<std::int64_t>(dim, dim, nnz, 100 + dim + nnz);
  auto b = random_sparse<std::int64_t>(dim, dim, nnz, 200 + dim + nnz);
  Counters ram;
  auto expect = spmm_naive(a, b, ram);
  Device<std::int64_t> dev({.m = m});
  auto got = spmm_tcu(dev, a, b, {.z_hint = expect.nnz(), .seed = 7});
  expect_equal_sparse(got, expect);
  EXPECT_GT(dev.counters().tensor_calls, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, SparseTcuSweep,
    ::testing::Combine(::testing::Values<std::size_t>(24, 48, 96),
                       ::testing::Values<std::size_t>(16, 64, 192),
                       ::testing::Values<std::size_t>(16, 64)));

TEST(SparseTcu, WorksWithoutZHint) {
  auto a = random_sparse<std::int64_t>(32, 32, 64, 31);
  auto b = random_sparse<std::int64_t>(32, 32, 64, 32);
  Counters ram;
  auto expect = spmm_naive(a, b, ram);
  Device<std::int64_t> dev({.m = 16});
  auto got = spmm_tcu(dev, a, b, {.seed = 9});
  expect_equal_sparse(got, expect);
}

TEST(SparseTcu, WorksWithUnderestimatedHint) {
  // A bad hint forces the adaptive widening path.
  auto a = random_sparse<std::int64_t>(48, 48, 160, 41);
  auto b = random_sparse<std::int64_t>(48, 48, 160, 42);
  Counters ram;
  auto expect = spmm_naive(a, b, ram);
  Device<std::int64_t> dev({.m = 16});
  auto got = spmm_tcu(dev, a, b, {.z_hint = 4, .seed = 11});
  expect_equal_sparse(got, expect);
}

TEST(SparseTcu, DoubleValuesWithinTolerance) {
  tcu::util::Xoshiro256 rng(51);
  std::vector<SparseEntry<double>> ea, eb;
  for (int t = 0; t < 60; ++t) {
    ea.push_back({static_cast<std::size_t>(rng.uniform_int(0, 31)),
                  static_cast<std::size_t>(rng.uniform_int(0, 31)),
                  rng.uniform(0.5, 2.0)});
    eb.push_back({static_cast<std::size_t>(rng.uniform_int(0, 31)),
                  static_cast<std::size_t>(rng.uniform_int(0, 31)),
                  rng.uniform(0.5, 2.0)});
  }
  auto a = SparseMatrix<double>::from_entries(32, 32, std::move(ea));
  auto b = SparseMatrix<double>::from_entries(32, 32, std::move(eb));
  Counters ram;
  auto expect = spmm_naive(a, b, ram).to_dense();
  Device<double> dev({.m = 16});
  auto got = spmm_tcu(dev, a, b, {.seed = 13}).to_dense();
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_NEAR(got(i, j), expect(i, j), 1e-6);
    }
  }
}

TEST(SparseTcu, EmptyInputsYieldEmptyOutput) {
  SparseMatrix<std::int64_t> a(16, 16), b(16, 16);
  Device<std::int64_t> dev({.m = 16});
  auto got = spmm_tcu(dev, a, b, {.seed = 17});
  EXPECT_EQ(got.nnz(), 0u);
}

TEST(SparseTcu, DiagonalTimesDiagonalIsDiagonal) {
  std::vector<SparseEntry<std::int64_t>> ea, eb;
  for (std::size_t i = 0; i < 20; ++i) {
    ea.push_back({i, i, static_cast<std::int64_t>(i + 1)});
    eb.push_back({i, i, 2});
  }
  auto a = SparseMatrix<std::int64_t>::from_entries(20, 20, std::move(ea));
  auto b = SparseMatrix<std::int64_t>::from_entries(20, 20, std::move(eb));
  Device<std::int64_t> dev({.m = 16});
  auto got = spmm_tcu(dev, a, b, {.z_hint = 20, .seed = 19});
  ASSERT_EQ(got.nnz(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(got.entries()[i].row, i);
    EXPECT_EQ(got.entries()[i].col, i);
    EXPECT_EQ(got.entries()[i].value, 2 * static_cast<std::int64_t>(i + 1));
  }
}

TEST(SparseTcu, CancellationToZeroIsNotReported) {
  // C[0][0] = 1*1 + 1*(-1) = 0 must simply not appear in the output.
  auto a = SparseMatrix<std::int64_t>::from_entries(4, 4,
                                                    {{0, 0, 1}, {0, 1, 1}});
  auto b = SparseMatrix<std::int64_t>::from_entries(4, 4,
                                                    {{0, 0, 1}, {1, 0, -1}});
  Device<std::int64_t> dev({.m = 4});
  auto got = spmm_tcu(dev, a, b, {.seed = 23});
  EXPECT_EQ(got.nnz(), 0u);
}

TEST(SparseTcu, CostTracksTheorem3AcrossSizes) {
  // Balanced outputs by construction: band matrices with fixed bandwidth,
  // so Z ~ dim * band. Tensor time should scale near sqrt(n)*Z/sqrt(m)
  // (the omega0 = 3/2 instantiation of Theorem 3).
  std::vector<double> predicted, measured;
  for (std::size_t dim : {64u, 128u, 256u}) {
    std::vector<SparseEntry<std::int64_t>> ea, eb;
    const std::size_t band = 4;
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t d = 0; d < band; ++d) {
        ea.push_back({i, (i + d) % dim, static_cast<std::int64_t>(1 + d)});
        eb.push_back({i, (i + 2 * d) % dim, static_cast<std::int64_t>(2 + d)});
      }
    }
    auto a = SparseMatrix<std::int64_t>::from_entries(dim, dim, std::move(ea));
    auto b = SparseMatrix<std::int64_t>::from_entries(dim, dim, std::move(eb));
    Counters ram;
    auto expect = spmm_naive(a, b, ram);
    Device<std::int64_t> dev({.m = 16});
    auto got = spmm_tcu(dev, a, b, {.z_hint = expect.nnz(), .seed = 29});
    expect_equal_sparse(got, expect);
    predicted.push_back(tcu::costs::thm3_sparse(
        static_cast<double>(dim) * dim, static_cast<double>(expect.nnz()),
        static_cast<double>(a.nnz() + b.nnz()), 16.0, 0.0));
    measured.push_back(static_cast<double>(dev.counters().time()));
  }
  // Theta-style check: the measured/predicted ratio stays within a small
  // constant band across the sweep.
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 4.0);
}

}  // namespace
