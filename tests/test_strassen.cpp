// Tests for the Strassen-like TCU recursion (Theorem 1): numeric
// correctness for both p0 = 7 and p0 = 8, cost scaling with the predicted
// exponent omega0 = log_{n0} p0, and the tensor-call count of the
// recursion tree.

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "linalg/dense.hpp"
#include "linalg/strassen.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using tcu::linalg::matmul_naive;
using tcu::linalg::matmul_strassen_ram;
using tcu::linalg::matmul_strassen_tcu;
using tcu::linalg::StrassenOptions;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

void expect_close(const Matrix<double>& a, const Matrix<double>& b,
                  double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_NEAR(a(i, j), b(i, j), tol) << "at (" << i << "," << j << ")";
    }
  }
}

class StrassenSweep : public ::testing::TestWithParam<
                          std::tuple<int, std::size_t, std::size_t>> {};

TEST_P(StrassenSweep, MatchesNaive) {
  const auto [p0, m, d] = GetParam();
  Device<double> dev({.m = m});
  auto a = random_matrix(d, d, 500 + d + m + p0);
  auto b = random_matrix(d, d, 600 + d + m + p0);
  Counters ram;
  auto expect = matmul_naive<double>(a.view(), b.view(), ram);
  auto got = matmul_strassen_tcu(dev, a.view(), b.view(), {.p0 = p0});
  // Strassen's extra additions amplify rounding; tolerance scales with d.
  expect_close(got, expect, 1e-9 * static_cast<double>(d));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StrassenSweep,
    ::testing::Combine(::testing::Values(7, 8),
                       ::testing::Values<std::size_t>(4, 16, 64),
                       ::testing::Values<std::size_t>(8, 16, 31, 32, 64)));

TEST(Strassen, RejectsBadArguments) {
  Device<double> dev({.m = 16});
  auto a = random_matrix(8, 8, 1);
  auto rect = random_matrix(8, 4, 2);
  EXPECT_THROW(
      (void)matmul_strassen_tcu(dev, a.view(), rect.view(), StrassenOptions{}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)matmul_strassen_tcu(dev, a.view(), a.view(), {.p0 = 6}),
      std::invalid_argument);
}

TEST(Strassen, TensorCallCountFollowsRecursionTree) {
  // With d = 4s the recursion splits once (area 16m > 4m), yielding p0
  // base products, each a (2s)^2 blocked multiply of 4 tile-calls.
  const std::size_t m = 64, s = 8, d = 4 * s;
  for (int p0 : {7, 8}) {
    Device<double> dev({.m = m});
    auto a = random_matrix(d, d, 700 + p0);
    auto b = random_matrix(d, d, 800 + p0);
    (void)matmul_strassen_tcu(dev, a.view(), b.view(), {.p0 = p0});
    EXPECT_EQ(dev.counters().tensor_calls,
              static_cast<std::uint64_t>(p0) * 4u)
        << "p0=" << p0;
  }
}

TEST(Strassen, StrassenUsesFewerTensorCallsThanStandard) {
  const std::size_t m = 16, d = 128;
  Device<double> dev7({.m = m}), dev8({.m = m});
  auto a = random_matrix(d, d, 901);
  auto b = random_matrix(d, d, 902);
  (void)matmul_strassen_tcu(dev7, a.view(), b.view(), {.p0 = 7});
  (void)matmul_strassen_tcu(dev8, a.view(), b.view(), {.p0 = 8});
  EXPECT_LT(dev7.counters().tensor_calls, dev8.counters().tensor_calls);
  EXPECT_LT(dev7.counters().tensor_time, dev8.counters().tensor_time);
}

TEST(Strassen, TensorTimeScalesWithOmega0) {
  // Fit the exponent of tensor_time vs d over a geometric sweep; with
  // latency 0 Theorem 1 predicts exponent 2*omega0 in d (n = d^2).
  for (int p0 : {7, 8}) {
    std::vector<double> ds, times;
    for (std::size_t d : {32u, 64u, 128u, 256u}) {
      Device<double> dev({.m = 16});
      auto a = random_matrix(d, d, 1000 + d + p0);
      auto b = random_matrix(d, d, 1100 + d + p0);
      (void)matmul_strassen_tcu(dev, a.view(), b.view(), {.p0 = p0});
      ds.push_back(static_cast<double>(d));
      times.push_back(static_cast<double>(dev.counters().tensor_time));
    }
    const double omega0 = tcu::costs::omega0(p0, 4);
    auto fit = tcu::util::fit_power_law(ds, times);
    EXPECT_NEAR(fit.exponent, 2.0 * omega0, 0.08) << "p0=" << p0;
  }
}

TEST(Strassen, RamBaselineMatchesNaive) {
  Counters c1, c2;
  auto a = random_matrix(256, 256, 1201);
  auto b = random_matrix(256, 256, 1202);
  auto expect = matmul_naive<double>(a.view(), b.view(), c1);
  auto got = matmul_strassen_ram<double>(a.view(), b.view(), c2, 16);
  expect_close(got, expect, 1e-7);
  // Strassen performs asymptotically fewer charged operations; at d = 256
  // with base 16 the bookkeeping overhead is already amortized.
  EXPECT_LT(c2.cpu_ops, c1.cpu_ops);
}

TEST(Strassen, PaddedSizesMatchNaive) {
  // Odd dimension forces padding to the next s * 2^k.
  Device<double> dev({.m = 16});
  auto a = random_matrix(37, 37, 1301);
  auto b = random_matrix(37, 37, 1302);
  Counters ram;
  auto expect = matmul_naive<double>(a.view(), b.view(), ram);
  auto got = matmul_strassen_tcu(dev, a.view(), b.view(), {.p0 = 7});
  expect_close(got, expect, 1e-8);
}

}  // namespace
