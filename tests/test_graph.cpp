// Tests for the graph algorithms: transitive closure (Figure 7 blocked
// version vs Figure 5 and a BFS oracle, Theorem 5 cost) and Seidel APSD
// (vs BFS distances, Theorem 6 cost, connectivity precondition).

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using tcu::graph::apsd_bfs;
using tcu::graph::apsd_seidel;
using tcu::graph::closure_bfs_oracle;
using tcu::graph::closure_naive;
using tcu::graph::closure_tcu;
using tcu::graph::cycle_graph;
using tcu::graph::random_connected_graph;
using tcu::graph::random_digraph;

// ------------------------------------------------------ transitive closure

class ClosureSweep : public ::testing::TestWithParam<
                         std::tuple<std::size_t, double, std::size_t>> {};

TEST_P(ClosureSweep, BlockedMatchesNaiveAndOracle) {
  const auto [n, p, m] = GetParam();
  auto adj = random_digraph(n, p, 5000 + n + m);
  auto d_naive = adj;
  auto d_tcu = adj;
  Counters ram;
  closure_naive(d_naive.view(), ram);
  Device<std::int64_t> dev({.m = m});
  closure_tcu(dev, d_tcu.view());
  EXPECT_TRUE(d_naive == d_tcu);
  auto oracle = closure_bfs_oracle(adj.view());
  EXPECT_TRUE(d_tcu == oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ClosureSweep,
    ::testing::Combine(::testing::Values<std::size_t>(8, 17, 32, 48),
                       ::testing::Values(0.02, 0.1, 0.4),
                       ::testing::Values<std::size_t>(16, 64)));

TEST(Closure, EmptyGraphStaysEmpty) {
  Matrix<std::int64_t> adj(12, 12, 0);
  Device<std::int64_t> dev({.m = 16});
  closure_tcu(dev, adj.view());
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) EXPECT_EQ(adj(i, j), 0);
  }
}

TEST(Closure, CompleteDigraphIsFixedPoint) {
  Matrix<std::int64_t> adj(10, 10, 1);
  for (std::size_t i = 0; i < 10; ++i) adj(i, i) = 0;
  auto d = adj;
  Device<std::int64_t> dev({.m = 16});
  closure_tcu(dev, d.view());
  // Every vertex lies on a 2-cycle, so the closure is all ones.
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) EXPECT_EQ(d(i, j), 1);
  }
}

TEST(Closure, DirectedPathClosesToUpperTriangle) {
  const std::size_t n = 9;
  Matrix<std::int64_t> adj(n, n, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) adj(i, i + 1) = 1;
  Device<std::int64_t> dev({.m = 4});
  closure_tcu(dev, adj.view());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(adj(i, j), i < j ? 1 : 0) << i << "," << j;
    }
  }
}

TEST(Closure, NonSquareThrows) {
  Matrix<std::int64_t> bad(4, 5, 0);
  Device<std::int64_t> dev({.m = 16});
  EXPECT_THROW(closure_tcu(dev, bad.view()), std::invalid_argument);
  Counters c;
  EXPECT_THROW(closure_naive(bad.view(), c), std::invalid_argument);
}

TEST(Closure, CostTracksTheorem5AcrossSizes) {
  std::vector<double> predicted, measured;
  for (std::size_t n : {32u, 64u, 128u}) {
    auto adj = random_digraph(n, 0.05, 6000 + n);
    Device<std::int64_t> dev({.m = 16, .latency = 10});
    closure_tcu(dev, adj.view());
    predicted.push_back(
        tcu::costs::thm5_closure(static_cast<double>(n), 16.0, 10.0));
    measured.push_back(static_cast<double>(dev.counters().time()));
  }
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 3.0);
}

TEST(Closure, TensorTimeBeatsNaiveCpuTime) {
  const std::size_t n = 96;
  auto adj = random_digraph(n, 0.1, 61);
  auto d1 = adj;
  auto d2 = adj;
  Counters ram;
  closure_naive(d1.view(), ram);
  Device<std::int64_t> dev({.m = 256});
  closure_tcu(dev, d2.view());
  EXPECT_LT(dev.counters().time(), ram.time());
}

// ------------------------------------------------------------ Seidel APSD

class ApsdSweep : public ::testing::TestWithParam<
                      std::tuple<std::size_t, double, std::size_t>> {};

TEST_P(ApsdSweep, MatchesBfsDistances) {
  const auto [n, p, m] = GetParam();
  auto adj = random_connected_graph(n, p, 7000 + n + m);
  Counters ram;
  auto expect = apsd_bfs(adj.view(), ram);
  Device<std::int64_t> dev({.m = m});
  auto got = apsd_seidel(dev, adj.view());
  EXPECT_TRUE(got == expect);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ApsdSweep,
    ::testing::Combine(::testing::Values<std::size_t>(5, 16, 33, 64),
                       ::testing::Values(0.05, 0.3),
                       ::testing::Values<std::size_t>(16, 64)));

TEST(Apsd, CycleGraphDistances) {
  const std::size_t n = 24;
  auto adj = cycle_graph(n);
  Device<std::int64_t> dev({.m = 16});
  auto d = apsd_seidel(dev, adj.view());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t fwd = (j + n - i) % n;
      const auto expect = static_cast<std::int64_t>(std::min(fwd, n - fwd));
      EXPECT_EQ(d(i, j), expect) << i << "," << j;
    }
  }
}

TEST(Apsd, StrassenVariantMatches) {
  auto adj = random_connected_graph(40, 0.15, 71);
  Device<std::int64_t> dev1({.m = 16}), dev2({.m = 16});
  auto d1 = apsd_seidel(dev1, adj.view(), {.use_strassen = false});
  auto d2 = apsd_seidel(dev2, adj.view(), {.use_strassen = true});
  EXPECT_TRUE(d1 == d2);
}

TEST(Apsd, SingleVertexAndEdge) {
  Matrix<std::int64_t> one(1, 1, 0);
  Device<std::int64_t> dev({.m = 16});
  auto d1 = apsd_seidel(dev, one.view());
  EXPECT_EQ(d1(0, 0), 0);

  Matrix<std::int64_t> pair(2, 2, 0);
  pair(0, 1) = pair(1, 0) = 1;
  auto d2 = apsd_seidel(dev, pair.view());
  EXPECT_EQ(d2(0, 1), 1);
  EXPECT_EQ(d2(1, 0), 1);
}

TEST(Apsd, DisconnectedGraphThrows) {
  Matrix<std::int64_t> adj(6, 6, 0);
  adj(0, 1) = adj(1, 0) = 1;  // two components
  adj(3, 4) = adj(4, 3) = 1;
  Device<std::int64_t> dev({.m = 16});
  EXPECT_THROW((void)apsd_seidel(dev, adj.view()), std::invalid_argument);
}

TEST(Apsd, RejectsMalformedAdjacency) {
  Device<std::int64_t> dev({.m = 16});
  Matrix<std::int64_t> selfloop(3, 3, 0);
  selfloop(1, 1) = 1;
  EXPECT_THROW((void)apsd_seidel(dev, selfloop.view()),
               std::invalid_argument);
  Matrix<std::int64_t> asym(3, 3, 0);
  asym(0, 1) = 1;
  EXPECT_THROW((void)apsd_seidel(dev, asym.view()), std::invalid_argument);
  Matrix<std::int64_t> nonbool(3, 3, 0);
  nonbool(0, 1) = nonbool(1, 0) = 2;
  EXPECT_THROW((void)apsd_seidel(dev, nonbool.view()),
               std::invalid_argument);
}

TEST(Apsd, CostTracksTheorem6AcrossSizes) {
  std::vector<double> predicted, measured;
  for (std::size_t n : {32u, 64u, 128u}) {
    auto adj = random_connected_graph(n, 0.1, 7200 + n);
    Device<std::int64_t> dev({.m = 16, .latency = 5});
    (void)apsd_seidel(dev, adj.view());
    predicted.push_back(
        tcu::costs::thm6_apsd(static_cast<double>(n), 16.0, 5.0));
    measured.push_back(static_cast<double>(dev.counters().time()));
  }
  // O-bound check: ratio bounded above; denser graphs converge faster
  // than the worst case so the band is wider than for Theta results.
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 8.0);
}

}  // namespace
