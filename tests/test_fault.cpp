// Fault injection and PoolExecutor self-healing (src/fault/fault.hpp):
//
//   * a faulted call charges nothing — counters, residency, and output
//     untouched, so retries are bit-identical to first attempts;
//   * transient faults retry in place, then redeal to healthy lanes, and
//     recovered rounds reproduce the fault-free outputs bit-for-bit;
//   * permanent death quarantines the unit and the pool degrades to
//     p - f without losing a round; the executor stays usable across
//     rounds after quarantine;
//   * spawn faults degrade construction to the workers that started;
//   * retry exhaustion and all-units-dead rethrow, with the executor
//     left reusable (the historical error contract);
//   * RoundReports and cumulative fault_stats are deterministic given
//     (seed, plan) — same counts at p = 1/2/4/8 across repeated runs;
//   * stragglers add wall-clock latency only: counters bit-identical.
//
// The CI fault leg re-runs this suite (and the whole build) under
// ASan+UBSan with -DTCU_CHECK=ON and TCU_FAULT_SEED pinned, so every
// recovery path is also a contract-checker audit.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/pool.hpp"
#include "fault/fault.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;
using tcu::RoundReport;
using tcu::fault::FaultPlan;
using tcu::fault::FaultSpec;
using tcu::fault::ScopedInjection;

/// Seed for fault plans: TCU_FAULT_SEED when set (the CI fault leg pins
/// it so the whole suite replays one plan), else the given default.
std::uint64_t fault_seed(std::uint64_t fallback) {
  const char* env = std::getenv("TCU_FAULT_SEED");
  if (!env || !*env) return fallback;
  return std::strtoull(env, nullptr, 10);
}

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out(i, j) = rng.uniform(-1, 1);
  }
  return out;
}

void expect_counters_identical(const Counters& got, const Counters& want) {
  EXPECT_EQ(got.tensor_calls, want.tensor_calls);
  EXPECT_EQ(got.tensor_rows, want.tensor_rows);
  EXPECT_EQ(got.tensor_time, want.tensor_time);
  EXPECT_EQ(got.tensor_macs, want.tensor_macs);
  EXPECT_EQ(got.latency_time, want.latency_time);
  EXPECT_EQ(got.resident_hits, want.resident_hits);
  EXPECT_EQ(got.latency_saved, want.latency_saved);
  EXPECT_EQ(got.evictions, want.evictions);
  EXPECT_EQ(got.cpu_ops, want.cpu_ops);
}

// ------------------------------------------------------------- injection

TEST(FaultInjection, FaultedCallChargesNothing) {
  FaultPlan plan(fault_seed(7), {.transient_at = {{0, 0}}});
  Device<double> dev({.m = 16, .latency = 5});
  dev.set_fault_injector(plan.injector(0));
  auto a = random_matrix(4, 4, 1);
  auto b = random_matrix(4, 4, 2);
  Matrix<double> c(4, 4, 0.0);

  EXPECT_THROW(dev.gemm(a.view(), b.view(), c.view()),
               tcu::fault::TransientFault);
  // Zero side effects: no charges, no residency, no output writes.
  EXPECT_EQ(dev.counters().tensor_calls, 0u);
  EXPECT_EQ(dev.counters().tensor_time, 0u);
  EXPECT_EQ(dev.tile_cache().size(), 0u);
  EXPECT_EQ(c, Matrix<double>(4, 4, 0.0));

  // The next call (index 1) is clean and behaves as a first attempt.
  dev.gemm(a.view(), b.view(), c.view());
  Device<double> ref({.m = 16, .latency = 5});
  auto expect = tcu::linalg::matmul_tcu(ref, a.view(), b.view());
  EXPECT_EQ(c, expect);
  expect_counters_identical(dev.counters(), ref.counters());
  EXPECT_EQ(plan.calls(0), 2u);
  EXPECT_EQ(plan.transients_injected(), 1u);
  dev.set_fault_injector(nullptr);
}

TEST(FaultInjection, DeadUnitFailsEveryCall) {
  FaultPlan plan(fault_seed(7), {.death_at = {{0, 1}}});
  Device<double> dev({.m = 16});
  dev.set_fault_injector(plan.injector(0));
  auto a = random_matrix(4, 4, 3);
  auto b = random_matrix(4, 4, 4);
  Matrix<double> c(4, 4, 0.0);
  dev.gemm(a.view(), b.view(), c.view());  // call 0: fine
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(dev.gemm(a.view(), b.view(), c.view()),
                 tcu::fault::PermanentUnitFault);
  }
  EXPECT_EQ(dev.counters().tensor_calls, 1u);
  EXPECT_EQ(plan.permanent_trips(), 1u);
  dev.set_fault_injector(nullptr);
}

// -------------------------------------------------------------- recovery

TEST(FaultRecovery, TransientRetriesInPlaceBitIdentical) {
  const std::size_t d = 64;  // 4 strips at s = 16
  auto a = random_matrix(d, d, 10);
  auto b = random_matrix(d, d, 11);
  Device<double> single({.m = 256, .latency = 7});
  auto expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());

  DevicePool<double> pool(4, {.m = 256, .latency = 7});
  // Unit 0's second call faults once; the retry re-runs the whole strip.
  FaultPlan plan(fault_seed(7), {.transient_at = {{0, 1}}});
  ScopedInjection<double> inject(pool, plan);
  PoolExecutor<double> exec(pool);
  auto got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());

  EXPECT_EQ(got, expect);
  const RoundReport& stats = exec.fault_stats();
  EXPECT_EQ(stats.transient_faults, 1u);
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.redealt, 0u);
  EXPECT_TRUE(stats.quarantined.empty());
  EXPECT_EQ(exec.healthy_units(), 4u);
}

TEST(FaultRecovery, PermanentDeathRedealsQuarantinesAndStaysUsable) {
  const std::size_t d = 64;
  auto a = random_matrix(d, d, 20);
  auto b = random_matrix(d, d, 21);
  Device<double> single({.m = 256, .latency = 3});
  auto expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());

  DevicePool<double> pool(4, {.m = 256, .latency = 3});
  FaultPlan plan(fault_seed(7), {.death_at = {{1, 0}}});  // dies instantly
  ScopedInjection<double> inject(pool, plan);
  PoolExecutor<double> exec(pool);

  auto got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
  EXPECT_EQ(got, expect);
  const RoundReport& stats = exec.fault_stats();
  EXPECT_EQ(stats.permanent_faults, 1u);
  EXPECT_GE(stats.redealt, 1u);
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0], 1u);
  EXPECT_EQ(exec.healthy_units(), 3u);
  EXPECT_TRUE(exec.quarantined(1));
  // The dead unit charged nothing (it died before its first charge) and
  // holds no residency the dealer could mispredict.
  EXPECT_EQ(pool.unit(1).counters().tensor_calls, 0u);
  EXPECT_EQ(pool.unit(1).tile_cache().size(), 0u);

  // Quarantine-then-recover: the same executor keeps serving rounds on
  // the survivors, bit-identical to fault-free.
  for (int round = 0; round < 3; ++round) {
    auto a2 = random_matrix(d, d, 30 + static_cast<std::uint64_t>(round));
    auto b2 = random_matrix(d, d, 40 + static_cast<std::uint64_t>(round));
    Device<double> ref({.m = 256, .latency = 3});
    auto want = tcu::linalg::matmul_tcu(ref, a2.view(), b2.view());
    auto out = tcu::linalg::matmul_tcu_pool(exec, a2.view(), b2.view());
    EXPECT_EQ(out, want) << "round " << round;
  }
  EXPECT_EQ(exec.fault_stats().permanent_faults, 1u);  // no new faults
}

TEST(FaultRecovery, RetryExhaustionRethrowsAndExecutorRecovers) {
  DevicePool<double> pool(2, {.m = 16, .latency = 1});
  auto a = random_matrix(4, 4, 50);
  auto b = random_matrix(4, 4, 51);
  {
    FaultPlan plan(fault_seed(7), {.transient_rate = 1.0});  // every call
    ScopedInjection<double> inject(pool, plan);
    PoolExecutor<double> exec(pool);
    Matrix<double> c(4, 4, 0.0);
    exec.submit(16 + 1, [&](Device<double>& dev) {
      dev.gemm(a.view(), b.view(), c.view());
    });
    EXPECT_THROW(exec.join(), tcu::fault::TransientFault);
    // max_attempts executions were burned: same-lane retry, then redeal,
    // then the redealt lane's retry — all faulted.
    EXPECT_EQ(plan.transients_injected(), 4u);
    EXPECT_EQ(c, Matrix<double>(4, 4, 0.0));  // no partial charge/output

    // The executor survives the rethrow: once the plan detaches, the
    // next round is clean.
  }
  PoolExecutor<double> exec(pool);
  auto got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
  Device<double> ref({.m = 16, .latency = 1});
  EXPECT_EQ(got, tcu::linalg::matmul_tcu(ref, a.view(), b.view()));
}

TEST(FaultRecovery, ExhaustionIsDecidedBeforeAnyRedealInTheWave) {
  // A redeal wave holding both a salvageable task and an exhausted one
  // must rethrow *before* re-enqueueing anything: once a task is back on
  // a lane its worker is live again, and the rethrow path's
  // reseed/evict_all may only touch unit state while every worker is
  // idle — and the re-dealt task would outlive the throw, leaking work
  // past the barrier.
  DevicePool<double> pool(2, {.m = 16, .latency = 1});
  // Unit 0 dies instantly; unit 1 faults calls 0-1 (task X's first
  // visit) and 3-6 (tasks C and X after the redeal).
  FaultPlan plan(fault_seed(7),
                 {.transient_at = {{1, 0}, {1, 1}, {1, 3}, {1, 4}, {1, 5},
                                   {1, 6}},
                  .death_at = {{0, 0}}});
  ScopedInjection<double> inject(pool, plan);
  PoolExecutor<double> exec(pool);

  auto a = random_matrix(4, 4, 80);
  auto b = random_matrix(4, 4, 81);
  Matrix<double> ck(4, 4, 0.0), cc(4, 4, 0.0), cx(4, 4, 0.0);
  // K (serial 0) kills unit 0; C (serial 1) drains off the dead lane
  // with no attempts consumed; X (serial 2) burns its budget on unit 1.
  exec.submit_to(0, 16 + 1, [&](Device<double>& dev) {
    dev.gemm(a.view(), b.view(), ck.view());
  });
  exec.submit_to(0, 16 + 1, [&](Device<double>& dev) {
    dev.gemm(a.view(), b.view(), cc.view());
  });
  exec.submit_to(1, 16 + 1, [&](Device<double>& dev) {
    dev.gemm(a.view(), b.view(), cx.view());
  });
  // Wave 1: K trips unit 0's death, C drains, X faults twice. The redeal
  // sends K, C, X to unit 1 (calls 2-6): K completes, C fails twice
  // (attempts = 2, salvageable), X fails twice more (attempts = 4,
  // exhausted). The barrier must surface X without redealing C.
  EXPECT_THROW(exec.join(), tcu::fault::TransientFault);

  // C was never re-enqueued: unit 1 saw exactly calls 0-6, and C's
  // output was never written (a leaked redeal would complete cleanly at
  // call 7 and write it after join threw).
  EXPECT_EQ(plan.calls(1), 7u);
  EXPECT_EQ(cc, Matrix<double>(4, 4, 0.0));
  EXPECT_EQ(cx, Matrix<double>(4, 4, 0.0));
  Device<double> ref({.m = 16, .latency = 1});
  auto expect = tcu::linalg::matmul_tcu(ref, a.view(), b.view());
  EXPECT_EQ(ck, expect);  // K's redeal completed before the exhaustion

  // The failed round's bookkeeping still lands in the lifetime stats.
  const RoundReport& stats = exec.fault_stats();
  EXPECT_EQ(stats.transient_faults, 6u);
  EXPECT_EQ(stats.permanent_faults, 1u);
  EXPECT_EQ(stats.retried, 3u);
  EXPECT_EQ(stats.redealt, 3u);
  EXPECT_EQ(stats.drained, 1u);
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0], 0u);
  EXPECT_EQ(stats.healthy_units, 1u);

  // Reusable after the rethrow: the next round runs clean on the
  // survivor (no triggers remain past call 6).
  Matrix<double> cy(4, 4, 0.0);
  exec.submit(16 + 1, [&](Device<double>& dev) {
    dev.gemm(a.view(), b.view(), cy.view());
  });
  const RoundReport round = exec.join();
  EXPECT_FALSE(round.faulted());
  EXPECT_EQ(cy, expect);
}

TEST(FaultRecovery, AllUnitsDeadRethrows) {
  DevicePool<double> pool(2, {.m = 16});
  FaultPlan plan(fault_seed(7), {.death_at = {{0, 0}, {1, 0}}});
  ScopedInjection<double> inject(pool, plan);
  PoolExecutor<double> exec(pool);
  auto a = random_matrix(4, 4, 60);
  auto b = random_matrix(4, 4, 61);
  Matrix<double> c(4, 4, 0.0);
  exec.submit(16, [&](Device<double>& dev) {
    dev.gemm(a.view(), b.view(), c.view());
  });
  EXPECT_THROW(exec.join(), tcu::fault::PermanentUnitFault);
  EXPECT_EQ(exec.healthy_units(), 0u);
  // Further submits are refused outright: there is nowhere to run.
  EXPECT_THROW(exec.submit(16, [](Device<double>&) {}),
               tcu::fault::PermanentUnitFault);
}

TEST(FaultRecovery, NonFaultExceptionsKeepTheHistoricalContract) {
  // A plain task exception must still rethrow at join untouched by the
  // recovery machinery (no retry, no redeal, no quarantine).
  DevicePool<double> pool(2, {.m = 16});
  PoolExecutor<double> exec(pool);
  exec.submit(1, [](Device<double>&) {
    throw std::runtime_error("task bug");
  });
  EXPECT_THROW(exec.join(), std::runtime_error);
  const RoundReport& stats = exec.fault_stats();
  EXPECT_EQ(stats.transient_faults, 0u);
  EXPECT_EQ(stats.redealt, 0u);
  EXPECT_EQ(exec.healthy_units(), 2u);
}

// ----------------------------------------------------------- spawn faults

TEST(SpawnFault, DegradesToSpawnedWorkers) {
  const std::size_t d = 64;
  auto a = random_matrix(d, d, 70);
  auto b = random_matrix(d, d, 71);
  Device<double> single({.m = 256, .latency = 2});
  auto expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());

  DevicePool<double> pool(4, {.m = 256, .latency = 2});
  FaultPlan plan(fault_seed(7), {.spawn_fail = {1, 3}});
  ScopedInjection<double> inject(pool, plan);
  PoolExecutor<double> exec(pool);
  EXPECT_EQ(exec.spawn_failures(), 2u);
  EXPECT_EQ(exec.healthy_units(), 2u);
  EXPECT_TRUE(exec.quarantined(1));
  EXPECT_TRUE(exec.quarantined(3));

  auto got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
  EXPECT_EQ(got, expect);
  // The unspawned units never ran anything.
  EXPECT_EQ(pool.unit(1).counters().tensor_calls, 0u);
  EXPECT_EQ(pool.unit(3).counters().tensor_calls, 0u);
  RoundReport report = exec.join();
  EXPECT_EQ(report.spawn_failures, 2u);
  EXPECT_EQ(report.healthy_units, 2u);
}

TEST(SpawnFault, AllWorkersFailingToSpawnThrows) {
  DevicePool<double> pool(2, {.m = 16});
  FaultPlan plan(fault_seed(7), {.spawn_fail = {0, 1}});
  ScopedInjection<double> inject(pool, plan);
  EXPECT_THROW(PoolExecutor<double> exec(pool), tcu::fault::SpawnFault);
}

TEST(SpawnFault, PinnedSubmitToQuarantinedUnitRedirects) {
  DevicePool<double> pool(2, {.m = 16, .latency = 1});
  FaultPlan plan(fault_seed(7), {.spawn_fail = {1}});
  ScopedInjection<double> inject(pool, plan);
  PoolExecutor<double> exec(pool);
  auto a = random_matrix(4, 4, 80);
  auto b = random_matrix(4, 4, 81);
  Matrix<double> c(4, 4, 0.0);
  exec.submit_to(1, 16 + 1, [&](Device<double>& dev) {
    dev.gemm(a.view(), b.view(), c.view());
  });
  exec.join();
  Device<double> ref({.m = 16, .latency = 1});
  EXPECT_EQ(c, tcu::linalg::matmul_tcu(ref, a.view(), b.view()));
  EXPECT_EQ(pool.unit(1).counters().tensor_calls, 0u);
  EXPECT_EQ(pool.unit(0).counters().tensor_calls, 1u);
}

// ------------------------------------------------------------ determinism

TEST(FaultDeterminism, ReportsIdenticalAcrossRunsAtEveryUnitCount) {
  const std::size_t d = 96;  // 6 strips at s = 16
  auto a = random_matrix(d, d, 90);
  auto b = random_matrix(d, d, 91);
  Device<double> single({.m = 256, .latency = 4});
  auto expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());

  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    // Transients only: a death at p = 1 would leave no healthy unit.
    const FaultSpec spec{.transient_rate = 0.08,
                         .max_rate_transients_per_unit = 2};
    RoundReport first;
    Counters first_agg;
    std::string first_outcome;
    for (int run = 0; run < 10; ++run) {
      DevicePool<double> pool(p, {.m = 256, .latency = 4});
      FaultPlan plan(fault_seed(7), spec);
      ScopedInjection<double> inject(pool, plan);
      PoolExecutor<double> exec(pool);
      // At an unlucky (seed, p) the plan can fault one task max_attempts
      // times and exhaust recovery. That outcome must be exactly as
      // deterministic as a clean one: the same rethrow message, recovery
      // bookkeeping, and aggregate counters on every run.
      std::string outcome = "recovered";
      try {
        auto got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
        ASSERT_EQ(got, expect) << "p=" << p << " run=" << run;
      } catch (const tcu::fault::FaultError& err) {
        outcome = err.what();
      }
      const RoundReport stats = exec.fault_stats();
      const Counters agg = pool.aggregate();
      if (run == 0) {
        first = stats;
        first_agg = agg;
        first_outcome = outcome;
      } else {
        EXPECT_EQ(outcome, first_outcome);
        EXPECT_EQ(stats.transient_faults, first.transient_faults);
        EXPECT_EQ(stats.permanent_faults, first.permanent_faults);
        EXPECT_EQ(stats.retried, first.retried);
        EXPECT_EQ(stats.redealt, first.redealt);
        EXPECT_EQ(stats.drained, first.drained);
        EXPECT_EQ(stats.quarantined, first.quarantined);
        EXPECT_EQ(stats.healthy_units, first.healthy_units);
        expect_counters_identical(agg, first_agg);
      }
    }
  }
}

TEST(FaultDeterminism, StragglersPerturbNothingButWallClock) {
  const std::size_t d = 64;
  auto a = random_matrix(d, d, 95);
  auto b = random_matrix(d, d, 96);

  DevicePool<double> clean_pool(2, {.m = 256, .latency = 6});
  auto expect = tcu::linalg::matmul_tcu_pool(clean_pool, a.view(), b.view());

  DevicePool<double> pool(2, {.m = 256, .latency = 6});
  FaultPlan plan(fault_seed(7),
                 {.stragglers = {0}, .straggle_us = 100});
  ScopedInjection<double> inject(pool, plan);
  PoolExecutor<double> exec(pool);
  auto got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());

  EXPECT_EQ(got, expect);
  expect_counters_identical(pool.aggregate(), clean_pool.aggregate());
  EXPECT_EQ(exec.fault_stats().transient_faults, 0u);
  EXPECT_GT(plan.calls(0), 0u);  // the straggler did run work
}

}  // namespace
