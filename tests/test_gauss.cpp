// Tests for Gaussian elimination without pivoting (§4.2, Theorem 4): the
// blocked TCU forward phase must agree with the Figure 2 triple loop on
// the row-echelon upper triangle, solve systems correctly end-to-end via
// back substitution, and charge the Theorem 4 cost.

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "linalg/gauss.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using tcu::linalg::back_substitute;
using tcu::linalg::ge_forward_naive;
using tcu::linalg::ge_forward_tcu;
using tcu::linalg::make_augmented;

/// Random diagonally-dominant system of d equations (safe without pivots).
Matrix<double> random_system(std::size_t d, std::uint64_t seed,
                             std::vector<double>* rhs = nullptr) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> A(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    double row_sum = 0;
    for (std::size_t j = 0; j < d; ++j) {
      A(i, j) = rng.uniform(-1, 1);
      row_sum += std::abs(A(i, j));
    }
    A(i, i) = row_sum + 1.0;
  }
  if (rhs) {
    rhs->resize(d);
    for (auto& x : *rhs) x = rng.uniform(-1, 1);
  }
  return A;
}

std::vector<double> residual(const Matrix<double>& A,
                             const std::vector<double>& x,
                             const std::vector<double>& b) {
  std::vector<double> r(b.size());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    double acc = -b[i];
    for (std::size_t j = 0; j < A.cols(); ++j) acc += A(i, j) * x[j];
    r[i] = acc;
  }
  return r;
}

class GaussSweep : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t>> {};

TEST_P(GaussSweep, UpperTriangleMatchesNaive) {
  const auto [m, r] = GetParam();
  const std::size_t s = tcu::exact_sqrt(m);
  if (r % s != 0) GTEST_SKIP();
  std::vector<double> b;
  auto A = random_system(r - 1, 9000 + m + r, &b);
  auto c_naive = make_augmented<double>(A.view(), b, r);
  auto c_tcu = c_naive;

  Counters ram;
  ge_forward_naive(c_naive.view(), ram);
  Device<double> dev({.m = m});
  ge_forward_tcu(dev, c_tcu.view());

  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = i; j < r; ++j) {
      ASSERT_NEAR(c_tcu(i, j), c_naive(i, j), 1e-8)
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST_P(GaussSweep, SolvesTheSystem) {
  const auto [m, r] = GetParam();
  const std::size_t s = tcu::exact_sqrt(m);
  if (r % s != 0) GTEST_SKIP();
  std::vector<double> b;
  auto A = random_system(r - 1, 9500 + m + r, &b);
  auto c = make_augmented<double>(A.view(), b, r);

  Device<double> dev({.m = m});
  ge_forward_tcu(dev, c.view());
  Counters back;
  auto x = back_substitute<double>(c.view(), back);
  ASSERT_EQ(x.size(), r - 1);
  // The first r-1 unknowns solve the original system (padding unknowns
  // are the appended trivial equations).
  std::vector<double> x_orig(x.begin(), x.begin() + (A.rows()));
  for (double res : residual(A, x_orig, b)) {
    EXPECT_NEAR(res, 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GaussSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 16, 64),
                       ::testing::Values<std::size_t>(16, 32, 64)));

TEST(Gauss, NaiveSolvesSmallKnownSystem) {
  // x + y = 3, x - y = 1  =>  x = 2, y = 1.
  Matrix<double> c(3, 3, 0.0);
  c(0, 0) = 1;
  c(0, 1) = 1;
  c(0, 2) = 3;
  c(1, 0) = 1;
  c(1, 1) = -1;
  c(1, 2) = 1;
  Counters ctr;
  ge_forward_naive(c.view(), ctr);
  auto x = back_substitute<double>(c.view(), ctr);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Gauss, MakeAugmentedLayout) {
  Matrix<double> A(2, 2);
  A(0, 0) = 4;
  A(0, 1) = 1;
  A(1, 0) = 2;
  A(1, 1) = 5;
  auto c = make_augmented<double>(A.view(), {7.0, 8.0}, 6);
  EXPECT_DOUBLE_EQ(c(0, 0), 4);
  EXPECT_DOUBLE_EQ(c(0, 5), 7);
  EXPECT_DOUBLE_EQ(c(1, 5), 8);
  EXPECT_DOUBLE_EQ(c(2, 2), 1);  // appended trivial equation
  EXPECT_DOUBLE_EQ(c(4, 4), 1);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(c(5, j), 0);
}

TEST(Gauss, MakeAugmentedValidation) {
  Matrix<double> A(2, 3);
  EXPECT_THROW((void)make_augmented<double>(A.view(), {1.0, 2.0}, 6),
               std::invalid_argument);
  Matrix<double> B(2, 2);
  EXPECT_THROW((void)make_augmented<double>(B.view(), {1.0, 2.0}, 2),
               std::invalid_argument);
}

TEST(Gauss, TcuRequiresDivisibleDimension) {
  Device<double> dev({.m = 16});
  Matrix<double> c(10, 10, 1.0);
  EXPECT_THROW(ge_forward_tcu(dev, c.view()), std::invalid_argument);
}

TEST(Gauss, TensorCallsMatchBlockedSchedule) {
  // Kernel D issues one tall call per trailing block column per outer
  // iteration: sum over k of (t - 1 - k) calls, t = r/s.
  const std::size_t m = 16, s = 4, r = 32, t = r / s;
  std::vector<double> b;
  auto A = random_system(r - 1, 777, &b);
  auto c = make_augmented<double>(A.view(), b, r);
  Device<double> dev({.m = m, .latency = 5});
  ge_forward_tcu(dev, c.view());
  std::uint64_t expected_calls = 0;
  for (std::size_t k = 0; k + 1 < t; ++k) expected_calls += t - 1 - k;
  EXPECT_EQ(dev.counters().tensor_calls, expected_calls);
}

TEST(Gauss, CostTracksTheorem4AcrossSizes) {
  std::vector<double> predicted, measured;
  for (std::size_t r : {32u, 64u, 128u, 256u}) {
    std::vector<double> b;
    auto A = random_system(r - 1, 880 + r, &b);
    auto c = make_augmented<double>(A.view(), b, r);
    Device<double> dev({.m = 16, .latency = 20});
    ge_forward_tcu(dev, c.view());
    predicted.push_back(tcu::costs::thm4_gauss(
        static_cast<double>(r) * r, 16.0, 20.0));
    measured.push_back(static_cast<double>(dev.counters().time()));
  }
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 3.0);
  auto fit = tcu::util::fit_power_law(predicted, measured);
  EXPECT_NEAR(fit.exponent, 1.0, 0.15);
}

TEST(Gauss, TcuFasterThanNaiveInModelTime) {
  const std::size_t r = 128;
  std::vector<double> b;
  auto A = random_system(r - 1, 999, &b);
  auto c1 = make_augmented<double>(A.view(), b, r);
  auto c2 = c1;
  Counters ram;
  ge_forward_naive(c1.view(), ram);
  Device<double> dev({.m = 256});
  ge_forward_tcu(dev, c2.view());
  EXPECT_LT(dev.counters().time(), ram.time());
}

}  // namespace
