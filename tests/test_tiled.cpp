// Tile-major storage (TiledMatrix): packer round-trips, contiguity
// guarantees, and the tiled matmul paths' bit-identity against the
// row-major Theorem 2 schedule. The layout exists so dealt A strips,
// resident B tiles, and written C strips reach the device as contiguous
// blocks; these tests pin the invariants the linalg/nn layers rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/contract.hpp"
#include "core/device.hpp"
#include "core/matrix.hpp"
#include "core/pool.hpp"
#include "linalg/batch.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"
#include "util/rng.hpp"

namespace {

using tcu::ConstMatrixView;
using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;
using tcu::TiledMatrix;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

void expect_counters_equal(const Counters& got, const Counters& want,
                           const std::string& what,
                           bool compare_evictions = true) {
  EXPECT_EQ(got.tensor_calls, want.tensor_calls) << what;
  EXPECT_EQ(got.tensor_rows, want.tensor_rows) << what;
  EXPECT_EQ(got.tensor_time, want.tensor_time) << what;
  EXPECT_EQ(got.tensor_macs, want.tensor_macs) << what;
  EXPECT_EQ(got.latency_time, want.latency_time) << what;
  EXPECT_EQ(got.cpu_ops, want.cpu_ops) << what;
  EXPECT_EQ(got.resident_hits, want.resident_hits) << what;
  EXPECT_EQ(got.latency_saved, want.latency_saved) << what;
  // Evictions depend on lane placement, so pool-vs-serial comparisons
  // exclude them (as every bench match predicate does).
  if (compare_evictions) EXPECT_EQ(got.evictions, want.evictions) << what;
}

// ----------------------------------------------------------------- layout

TEST(TiledMatrix, PackUnpackRoundTripsAlignedAndRagged) {
  for (const auto [r, c, s] : {std::tuple<std::size_t, std::size_t,
                                          std::size_t>{16, 16, 4},
                               {15, 7, 4},
                               {4, 4, 4},
                               {1, 9, 8}}) {
    const auto src = random_matrix(r, c, 100 + r * 31 + c);
    const auto packed = TiledMatrix<double>::pack(src.view(), s);
    EXPECT_EQ(packed.rows(), r);
    EXPECT_EQ(packed.cols(), c);
    EXPECT_EQ(packed.tile_dim(), s);
    EXPECT_EQ(packed.padded_rows() % s, 0u);
    EXPECT_EQ(packed.padded_cols() % s, 0u);
    EXPECT_GE(packed.padded_rows(), r);
    EXPECT_GE(packed.padded_cols(), c);
    EXPECT_EQ(packed.pack_cost(), static_cast<std::uint64_t>(r) * c);
    EXPECT_EQ(packed.unpack(), src) << r << "x" << c << " s=" << s;
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        EXPECT_EQ(packed.at(i, j), src(i, j));
      }
    }
  }
}

TEST(TiledMatrix, PaddingStaysZero) {
  const auto src = random_matrix(5, 6, 200);
  const auto packed = TiledMatrix<double>::pack(src.view(), 4);
  // Whole strips carry the padding: beyond the logical region every
  // element the strip view exposes must be exactly zero, or the tall
  // padded calls would pollute the product.
  for (std::size_t tj = 0; tj < packed.tile_cols(); ++tj) {
    const auto strip = packed.strip_view(tj);
    for (std::size_t i = 0; i < strip.rows; ++i) {
      for (std::size_t j = 0; j < strip.cols; ++j) {
        const std::size_t gi = i, gj = tj * 4 + j;
        if (gi < packed.rows() && gj < packed.cols()) {
          EXPECT_EQ(strip(i, j), src(gi, gj));
        } else {
          EXPECT_EQ(strip(i, j), 0.0) << gi << "," << gj;
        }
      }
    }
  }
}

TEST(TiledMatrix, TilesAndStripsAreContiguous) {
  const auto src = random_matrix(12, 8, 201);
  const auto packed = TiledMatrix<double>::pack(src.view(), 4);
  ASSERT_EQ(packed.tile_rows(), 3u);
  ASSERT_EQ(packed.tile_cols(), 2u);
  for (std::size_t tj = 0; tj < packed.tile_cols(); ++tj) {
    const auto strip = packed.strip_view(tj);
    EXPECT_EQ(strip.stride, packed.tile_dim());  // dense: stride == cols
    EXPECT_EQ(strip.rows, packed.padded_rows());
    for (std::size_t ti = 0; ti < packed.tile_rows(); ++ti) {
      const auto tile = packed.tile_view(ti, tj);
      EXPECT_EQ(tile.stride, packed.tile_dim());
      EXPECT_EQ(tile.data, packed.tile_data(ti, tj));
      // A strip is its tiles back to back: tile (ti, tj) starts exactly
      // s*s elements after tile (ti-1, tj).
      EXPECT_EQ(tile.data, strip.data + ti * 4 * 4);
    }
  }
}

TEST(TiledMatrix, InvalidShapesThrow) {
  EXPECT_THROW(TiledMatrix<double>(4, 4, 0), std::invalid_argument);
  const auto src = random_matrix(8, 8, 202);
  const auto packed = TiledMatrix<double>::pack(src.view(), 4);
  Matrix<double> wrong(7, 8);
  EXPECT_THROW(packed.unpack_into(wrong.view()), std::invalid_argument);
}

// ------------------------------------------------------- serial identity

TEST(TiledMatmul, BTiledMatchesRowMajorBitwise) {
  // Aligned shapes: the tile-major B path must charge and compute exactly
  // what the row-major resident path does — same tall calls, same k
  // order, same counters (keys differ: tile addresses vs row-major
  // addresses — identity structure, not values, is what matters).
  const auto a = random_matrix(32, 16, 300);
  const auto b = random_matrix(16, 24, 301);
  Device<double> row({.m = 16, .latency = 5, .resident_tiles = 2});
  Device<double> tiled({.m = 16, .latency = 5, .resident_tiles = 2});
  const auto packed = TiledMatrix<double>::pack(b.view(), 4);

  const auto c_row =
      tcu::linalg::matmul_tcu_resident(row, a.view(), b.view());
  Matrix<double> c_tiled(32, 24, 0.0);
  tcu::linalg::matmul_tcu_resident_into(tiled, a.view(), packed,
                                        c_tiled.view());
  EXPECT_EQ(c_row, c_tiled);
  expect_counters_equal(tiled.counters(), row.counters(), "B-tiled serial");
}

TEST(TiledMatmul, FullyTiledMatchesRowMajor) {
  // Aligned: bit-identical product and counters through TiledMatrix on
  // both sides.
  {
    const auto a = random_matrix(16, 16, 302);
    const auto b = random_matrix(16, 16, 303);
    Device<double> row({.m = 16, .latency = 3});
    Device<double> tiled({.m = 16, .latency = 3});
    const auto pa = TiledMatrix<double>::pack(a.view(), 4);
    const auto pb = TiledMatrix<double>::pack(b.view(), 4);
    const auto c_row =
        tcu::linalg::matmul_tcu_resident(row, a.view(), b.view());
    const auto c_tiled = tcu::linalg::matmul_tcu_resident(tiled, pa, pb);
    EXPECT_EQ(c_tiled.unpack(), c_row);
    expect_counters_equal(tiled.counters(), row.counters(),
                          "fully tiled serial");
  }
  // Ragged: the containers' zero padding stands in for the scratch path;
  // values match exactly (padding contributes exact zeros in the same
  // k-sequential order).
  {
    const auto a = random_matrix(10, 6, 304);
    const auto b = random_matrix(6, 7, 305);
    Device<double> dev({.m = 16, .latency = 3});
    Counters ram;
    const auto expect = tcu::linalg::matmul_naive(a.view(), b.view(), ram);
    const auto pa = TiledMatrix<double>::pack(a.view(), 4);
    const auto pb = TiledMatrix<double>::pack(b.view(), 4);
    const auto got = tcu::linalg::matmul_tcu_resident(dev, pa, pb);
    EXPECT_EQ(got.rows(), 10u);
    EXPECT_EQ(got.cols(), 7u);
    const auto unpacked = got.unpack();
    for (std::size_t i = 0; i < 10; ++i) {
      for (std::size_t j = 0; j < 7; ++j) {
        EXPECT_DOUBLE_EQ(unpacked(i, j), expect(i, j)) << i << "," << j;
      }
    }
  }
}

// --------------------------------------------------------- pool identity

TEST(TiledMatmul, PooledBTiledMatchesSerialAcrossP) {
  const auto a = random_matrix(48, 16, 306);
  const auto b = random_matrix(16, 32, 307);
  Device<double> serial({.m = 16, .latency = 5});
  const auto packed = TiledMatrix<double>::pack(b.view(), 4);
  Matrix<double> c_serial(48, 32, 0.0);
  tcu::linalg::matmul_tcu_resident_into(serial, a.view(), packed,
                                        c_serial.view());

  for (const std::size_t p : {1u, 2u, 4u}) {
    DevicePool<double> pool(p, {.m = 16, .latency = 5});
    tcu::check::ScopedCheck<double> check(pool);
    PoolExecutor<double> exec(pool);
    Matrix<double> c_pool(48, 32, 0.0);
    tcu::linalg::matmul_tcu_pool_into(exec, a.view(), packed, c_pool.view(),
                                      {.affinity = true});
    EXPECT_EQ(c_pool, c_serial) << "p=" << p;
    expect_counters_equal(pool.aggregate(), serial.counters(),
                          "B-tiled pool p=" + std::to_string(p),
                          /*compare_evictions=*/false);
    check.verify();
  }
}

TEST(TiledMatmul, PooledFullyTiledMatchesSerialAcrossP) {
  const auto a = random_matrix(30, 11, 308);  // ragged on purpose
  const auto b = random_matrix(11, 9, 309);
  const auto pa = TiledMatrix<double>::pack(a.view(), 4);
  const auto pb = TiledMatrix<double>::pack(b.view(), 4);
  Device<double> serial({.m = 16, .latency = 5});
  const auto c_serial = tcu::linalg::matmul_tcu_resident(serial, pa, pb);
  const auto expect = c_serial.unpack();

  for (const std::size_t p : {1u, 2u, 4u}) {
    DevicePool<double> pool(p, {.m = 16, .latency = 5});
    tcu::check::ScopedCheck<double> check(pool);
    PoolExecutor<double> exec(pool);
    TiledMatrix<double> c_pool(pa.rows(), pb.cols(), 4);
    tcu::linalg::matmul_tcu_pool_into(exec, pa, pb, c_pool,
                                      {.affinity = true});
    EXPECT_EQ(c_pool.unpack(), expect) << "p=" << p;
    expect_counters_equal(pool.aggregate(), serial.counters(),
                          "fully tiled pool p=" + std::to_string(p),
                          /*compare_evictions=*/false);
    check.verify();
  }
}

TEST(TiledMatmul, MismatchedTileDimThrows) {
  DevicePool<double> pool(2, {.m = 16, .latency = 5});
  PoolExecutor<double> exec(pool);
  const auto b = random_matrix(16, 16, 310);
  const auto packed = TiledMatrix<double>::pack(b.view(), 8);  // != sqrt(16)
  const auto a = random_matrix(16, 16, 311);
  Matrix<double> c(16, 16, 0.0);
  EXPECT_THROW(tcu::linalg::matmul_tcu_pool_into(exec, a.view(), packed,
                                                 c.view()),
               std::invalid_argument);
}

// ------------------------------------------------------------- batched

TEST(TiledMatmul, BatchSharedBMatchesRowMajorOverload) {
  // Aligned batch: identical numeric results to the row-major pooled
  // batch (the relayout only adds its own charged pack/unpack CPU work).
  std::vector<Matrix<double>> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(random_matrix(8, 16, 400 + static_cast<unsigned>(i)));
  }
  const auto b = random_matrix(16, 16, 404);
  const auto packed = TiledMatrix<double>::pack(b.view(), 4);

  DevicePool<double> pool_row(2, {.m = 16, .latency = 5, .resident_tiles = 8});
  DevicePool<double> pool_tile(2,
                               {.m = 16, .latency = 5, .resident_tiles = 8});
  PoolExecutor<double> exec_row(pool_row);
  PoolExecutor<double> exec_tile(pool_tile);
  const auto got_row =
      tcu::linalg::matmul_batch_shared_b(exec_row, batch, b.view());
  const auto got_tile =
      tcu::linalg::matmul_batch_shared_b(exec_tile, batch, packed);
  ASSERT_EQ(got_row.size(), got_tile.size());
  for (std::size_t i = 0; i < got_row.size(); ++i) {
    EXPECT_EQ(got_row[i], got_tile[i]) << "item " << i;
  }
  // The tensor-side counters agree (the tiled path's extra CPU is the
  // charged pack/unpack relayout, by exactly 2 * pack_cost of the
  // stacked operand plus the product copy the row-major path also pays).
  const Counters row = pool_row.aggregate();
  const Counters tile = pool_tile.aggregate();
  EXPECT_EQ(tile.tensor_calls, row.tensor_calls);
  EXPECT_EQ(tile.tensor_macs, row.tensor_macs);
  EXPECT_EQ(tile.tensor_time, row.tensor_time);
  EXPECT_EQ(tile.latency_time, row.latency_time);
  EXPECT_GT(tile.cpu_ops, row.cpu_ops);  // the relayout is charged work

  // Residency persists across rounds on the tiled path too.
  const auto again =
      tcu::linalg::matmul_batch_shared_b(exec_tile, batch, packed);
  ASSERT_EQ(again.size(), got_tile.size());
  EXPECT_GT(pool_tile.aggregate().resident_hits, tile.resident_hits);
}

}  // namespace
