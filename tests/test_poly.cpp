// Tests for batch polynomial evaluation (§4.8, Theorem 11): agreement
// with Horner across degrees/point counts, known closed forms, and the
// p n / sqrt(m) + p sqrt(m) + (n/m) l cost structure.

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "poly/poly.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::poly::eval_horner;
using tcu::poly::eval_tcu;

std::vector<double> random_coeffs(std::size_t n, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  std::vector<double> c(n);
  for (auto& v : c) v = rng.uniform(-1, 1);
  return c;
}

std::vector<double> random_points(std::size_t p, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  std::vector<double> x(p);
  for (auto& v : x) v = rng.uniform(-1, 1);
  return x;
}

class PolySweep : public ::testing::TestWithParam<
                      std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(PolySweep, MatchesHorner) {
  const auto [n, p, m] = GetParam();
  auto coeffs = random_coeffs(n, 8000 + n + p);
  auto points = random_points(p, 8100 + n + p);
  Counters ram;
  auto expect = eval_horner(coeffs, points, ram);
  Device<double> dev({.m = m});
  auto got = eval_tcu(dev, coeffs, points);
  ASSERT_EQ(got.size(), p);
  for (std::size_t i = 0; i < p; ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-9 * std::max(1.0, std::abs(expect[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PolySweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 7, 64, 257, 1024),
                       ::testing::Values<std::size_t>(1, 5, 33, 256),
                       ::testing::Values<std::size_t>(16, 64, 256)));

TEST(Poly, ConstantPolynomial) {
  Device<double> dev({.m = 16});
  auto got = eval_tcu(dev, {3.5}, {-2.0, 0.0, 7.0});
  for (double v : got) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(Poly, GeometricSeriesClosedForm) {
  // 1 + x + ... + x^{n-1} = (x^n - 1)/(x - 1).
  const std::size_t n = 100;
  std::vector<double> coeffs(n, 1.0);
  const double x = 0.9;
  Device<double> dev({.m = 64});
  auto got = eval_tcu(dev, coeffs, {x});
  const double expect = (std::pow(x, static_cast<double>(n)) - 1.0) / (x - 1.0);
  EXPECT_NEAR(got[0], expect, 1e-10);
}

TEST(Poly, EmptyInputsHandled) {
  Device<double> dev({.m = 16});
  Counters c;
  EXPECT_THROW((void)eval_tcu(dev, {}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)eval_horner({}, {1.0}, c), std::invalid_argument);
  EXPECT_TRUE(eval_tcu(dev, {1.0, 2.0}, {}).empty());
}

TEST(Poly, EvaluationAtZeroAndOne) {
  auto coeffs = random_coeffs(83, 42);
  Device<double> dev({.m = 16});
  auto got = eval_tcu(dev, coeffs, {0.0, 1.0});
  EXPECT_NEAR(got[0], coeffs[0], 1e-12);
  double sum = 0;
  for (double c : coeffs) sum += c;
  EXPECT_NEAR(got[1], sum, 1e-10);
}

TEST(PolyCost, TensorCallCountIsNOverM) {
  // n/m tensor calls (one per sqrt(m) x sqrt(m) block of A).
  const std::size_t n = 4096, m = 256;
  Device<double> dev({.m = m, .latency = 9});
  (void)eval_tcu(dev, random_coeffs(n, 51), random_points(64, 52));
  EXPECT_EQ(dev.counters().tensor_calls, n / m);
  EXPECT_EQ(dev.counters().latency_time, (n / m) * 9u);
}

TEST(PolyCost, TracksTheorem11AcrossShapes) {
  std::vector<double> predicted, measured;
  for (std::size_t n : {1024u, 4096u, 16384u}) {
    for (std::size_t p : {64u, 512u}) {
      Device<double> dev({.m = 256, .latency = 30});
      (void)eval_tcu(dev, random_coeffs(n, 60 + n), random_points(p, 61 + p));
      predicted.push_back(tcu::costs::thm11_polyeval(
          static_cast<double>(n), static_cast<double>(p), 256.0, 30.0));
      measured.push_back(static_cast<double>(dev.counters().time()));
    }
  }
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 3.0);
}

TEST(PolyCost, TcuBeatsHornerModelTime) {
  const std::size_t n = 8192, p = 256;
  auto coeffs = random_coeffs(n, 70);
  auto points = random_points(p, 71);
  Counters ram;
  (void)eval_horner(coeffs, points, ram);
  Device<double> dev({.m = 256});
  (void)eval_tcu(dev, coeffs, points);
  EXPECT_LT(dev.counters().time(), ram.time());
}

}  // namespace
