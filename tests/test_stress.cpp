// Stress and edge-regime tests: larger instances and awkward parameter
// corners that the per-module suites keep small for speed.

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/contract.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"
#include "extmem/extmem.hpp"
#include "fault/fault.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "intmul/mul.hpp"
#include "linalg/gauss.hpp"
#include "linalg/parallel.hpp"
#include "nn/layers.hpp"
#include "primitives/primitives.hpp"
#include "stencil/stencil.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using Complex = tcu::dft::Complex;

TEST(Stress, BluesteinOnLargePrimeLengths) {
  // 1009 and 2003 are prime >> sqrt(m): the whole transform goes through
  // the chirp-z reduction onto power-of-two convolutions.
  for (std::size_t n : {1009u, 2003u}) {
    tcu::util::Xoshiro256 rng(n);
    tcu::dft::CVec x(n);
    for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    Device<Complex> dev({.m = 64});
    auto y = tcu::dft::dft_tcu(dev, x);
    auto back = tcu::dft::dft_tcu(dev, y, /*inverse=*/true);
    double worst = 0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, std::abs(back[i] - x[i]));
    }
    EXPECT_LT(worst, 1e-8) << "n=" << n;
    // Spot-check a few bins against the direct definition.
    for (std::size_t k : std::vector<std::size_t>{0, 1, n / 2, n - 1}) {
      Complex direct{};
      for (std::size_t j = 0; j < n; ++j) {
        const double angle = -2.0 * std::numbers::pi *
                             static_cast<double>((j * k) % n) /
                             static_cast<double>(n);
        direct += x[j] * Complex{std::cos(angle), std::sin(angle)};
      }
      EXPECT_NEAR(std::abs(y[k] - direct), 0.0, 1e-7) << "bin " << k;
    }
  }
}

TEST(Stress, HundredKilobitThreeWayDifferential) {
  tcu::util::Xoshiro256 rng(99);
  const auto a = tcu::intmul::BigInt::random_bits(100000, rng);
  const auto b = tcu::intmul::BigInt::random_bits(99991, rng);
  Counters ram;
  Device<std::int64_t> dev({.m = 256});
  const auto r1 = tcu::intmul::mul_schoolbook_ram(a, b, ram);
  const auto r2 = tcu::intmul::mul_schoolbook_tcu(dev, a, b);
  const auto r3 = tcu::intmul::mul_karatsuba_tcu(dev, a, b);
  const auto r4 = tcu::intmul::mul_karatsuba_ram(a, b, ram, 16);
  EXPECT_TRUE(r1 == r2);
  EXPECT_TRUE(r1 == r3);
  EXPECT_TRUE(r1 == r4);
  EXPECT_EQ(r1.bit_length(), 100000u + 99991u);
}

TEST(Stress, MachineWordOracleSweep) {
  // Exhaustive-ish differential against native 128-bit arithmetic.
  tcu::util::Xoshiro256 rng(101);
  Device<std::int64_t> dev({.m = 16});
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint64_t>(rng());
    const auto b = static_cast<std::uint64_t>(rng());
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(a) * b;
    const auto hi = static_cast<std::uint64_t>(wide >> 64);
    const auto lo = static_cast<std::uint64_t>(wide);
    auto expect = tcu::intmul::BigInt(hi).shifted_limbs(4) +
                  tcu::intmul::BigInt(lo);
    auto got = tcu::intmul::mul_schoolbook_tcu(
        dev, tcu::intmul::BigInt(a), tcu::intmul::BigInt(b));
    ASSERT_EQ(got.to_hex(), expect.to_hex()) << a << " * " << b;
  }
}

TEST(Stress, NaiveMatmulIoDegradesWithoutBlocking) {
  // The naive loop's I/O count scales as d^3 once a row of B no longer
  // fits: exponent ~3 with a much larger constant than the blocked one.
  std::vector<double> ds, naive_ios, blocked_ios;
  for (std::size_t d : {24u, 48u, 96u}) {
    ds.push_back(static_cast<double>(d));
    naive_ios.push_back(
        static_cast<double>(tcu::extmem::matmul_io_naive(d, 48, 1)));
    blocked_ios.push_back(
        static_cast<double>(tcu::extmem::matmul_io_blocked(d, 48, 1)));
  }
  auto fit = tcu::util::fit_power_law(ds, naive_ios);
  EXPECT_NEAR(fit.exponent, 3.0, 0.2);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GT(naive_ios[i], blocked_ios[i]);
  }
}

TEST(Stress, PoolWithMoreUnitsThanStrips) {
  // 2 output strips on 8 units: 6 units idle, speedup capped at 2,
  // results still exact.
  tcu::util::Xoshiro256 rng(111);
  const std::size_t d = 32;  // 2 strips at s = 16
  Matrix<double> a(d, d), b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  }
  tcu::DevicePool<double> pool(8, {.m = 256, .latency = 5});
  auto c1 = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
  Device<double> single({.m = 256, .latency = 5});
  auto c2 = tcu::linalg::matmul_tcu(single, a.view(), b.view());
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      ASSERT_NEAR(c1(i, j), c2(i, j), 1e-12);
    }
  }
  const double speedup = static_cast<double>(single.counters().time()) /
                         static_cast<double>(pool.makespan());
  EXPECT_NEAR(speedup, 2.0, 0.05);
  std::size_t busy = 0;
  for (std::size_t u = 0; u < pool.size(); ++u) {
    busy += pool.unit(u).counters().tensor_calls > 0;
  }
  EXPECT_EQ(busy, 2u);
}

TEST(Stress, SeidelOnPathGraphMaxDepth) {
  // A path graph has the largest diameter, driving the deepest recursion.
  const std::size_t n = 96;
  Matrix<std::int64_t> adj(n, n, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) adj(i, i + 1) = adj(i + 1, i) = 1;
  Device<std::int64_t> dev({.m = 64});
  auto d = tcu::graph::apsd_seidel(dev, adj.view());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto expect = static_cast<std::int64_t>(
          i > j ? i - j : j - i);
      ASSERT_EQ(d(i, j), expect);
    }
  }
}

TEST(Stress, DeviceWithM1IsDegenerateButConsistent) {
  // m = 1: the "tensor unit" multiplies scalars; everything still works
  // and the charge is n per call.
  Device<double> dev({.m = 1, .latency = 2});
  Matrix<double> a(5, 1), b(1, 1), c(5, 1);
  for (std::size_t i = 0; i < 5; ++i) a(i, 0) = static_cast<double>(i);
  b(0, 0) = 3.0;
  dev.gemm(a.view(), b.view(), c.view());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(c(i, 0), 3.0 * static_cast<double>(i));
  }
  EXPECT_EQ(dev.counters().tensor_time, 5u * 1u + 2u);
}

TEST(Stress, HundredRoundChaosUnderSeededFaults) {
  // 100 rounds of every pooled workload on persistent executors with the
  // contract checker attached and a seeded fault plan injecting a low
  // transient rate plus one mid-run permanent death. The rounds run the
  // epoch (non-barrier) runtime wherever a workload has one — GE, the
  // stencil's batched DFT levels, transitive closure, and the Mlp pass
  // all submit dependent tasks across join_epoch fences, so transients,
  // the quarantine, and the deferred dep-waits of the recovery path all
  // land inside open epochs. Every round's output must be bit-identical
  // to a fault-free serial reference, and the checker guarantees no
  // stale resident sets survive any recovery bracket (its join_epoch
  // markers audit every lane mirror at every virtual barrier). Seed
  // overridable via TCU_FAULT_SEED so the CI fault leg replays the chaos
  // under a pinned-but-different schedule.
  std::uint64_t seed = 20260808;
  if (const char* env = std::getenv("TCU_FAULT_SEED"); env && *env) {
    seed = std::strtoull(env, nullptr, 10);
  }
  const std::uint64_t ell = 3;
  const auto fill = [](Matrix<double>& x, std::uint64_t s) {
    tcu::util::Xoshiro256 rng(s);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) x(i, j) = rng.uniform(-1, 1);
    }
  };

  tcu::DevicePool<double> dpool(4, {.m = 16, .latency = ell});
  tcu::check::ScopedCheck<double> dcheck(dpool);
  tcu::fault::FaultPlan dplan(
      seed, {.transient_rate = 0.004,
             .max_rate_transients_per_unit = 25,
             .death_at = {{2, 500}}});
  tcu::fault::ScopedInjection<double> dinject(dpool, dplan);
  tcu::PoolExecutor<double> dexec(dpool);

  tcu::DevicePool<Complex> cpool(4, {.m = 16, .latency = ell});
  tcu::check::ScopedCheck<Complex> ccheck(cpool);
  tcu::fault::FaultPlan cplan(
      seed + 1,
      {.transient_rate = 0.004, .max_rate_transients_per_unit = 25});
  tcu::fault::ScopedInjection<Complex> cinject(cpool, cplan);
  tcu::PoolExecutor<Complex> cexec(cpool);

  tcu::DevicePool<tcu::graph::Vert> vpool(4, {.m = 16, .latency = ell});
  tcu::check::ScopedCheck<tcu::graph::Vert> vcheck(vpool);
  tcu::fault::FaultPlan vplan(
      seed + 2,
      {.transient_rate = 0.004, .max_rate_transients_per_unit = 25});
  tcu::fault::ScopedInjection<tcu::graph::Vert> vinject(vpool, vplan);
  tcu::PoolExecutor<tcu::graph::Vert> vexec(vpool);

  tcu::nn::Mlp mlp;
  {
    tcu::util::Xoshiro256 rng(7000);
    for (int l = 0; l < 2; ++l) {
      Matrix<double> wts(16, 16);
      for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 16; ++j) wts(i, j) = rng.uniform(-1, 1);
      }
      std::vector<double> bias(16);
      for (auto& v : bias) v = rng.uniform(-1, 1);
      mlp.add_layer(tcu::nn::DenseLayer(wts, bias));
    }
  }

  const auto w = tcu::stencil::heat_kernel(0.1, 0.05);
  for (std::uint64_t round = 0; round < 100; ++round) {
    {  // matmul: affinity chains over B-tile keys.
      Matrix<double> a(24, 24), b(24, 24);
      fill(a, 1000 + round);
      fill(b, 2000 + round);
      auto got = tcu::linalg::matmul_tcu_pool(dexec, a.view(), b.view());
      Device<double> ref({.m = 16, .latency = ell});
      auto expect = tcu::linalg::matmul_tcu(ref, a.view(), b.view());
      ASSERT_EQ(got, expect) << "matmul, round " << round;
    }
    {  // Gaussian elimination: in-place panels over pivot-tagged tiles.
      Matrix<double> got(24, 24), expect(24, 24);
      fill(got, 3000 + round);
      expect = got;
      tcu::linalg::ge_forward_tcu_pool(dexec, got.view());
      Device<double> ref({.m = 16, .latency = ell});
      tcu::linalg::ge_forward_tcu(ref, expect.view());
      ASSERT_EQ(got, expect) << "GE, round " << round;
    }
    {  // conv2d: im2col strips with resident filter tiles.
      Matrix<double> input(2 * 8, 8), filters(3, 2 * 2 * 2);
      fill(input, 4000 + round);
      fill(filters, 5000 + round);
      auto got = tcu::nn::conv2d_tcu_pool(dexec, input.view(), 2,
                                          filters.view(), 2, 2);
      Device<double> ref({.m = 16, .latency = ell});
      auto expect =
          tcu::nn::conv2d_tcu(ref, input.view(), 2, filters.view(), 2, 2);
      ASSERT_EQ(got, expect) << "conv2d, round " << round;
    }
    {  // stencil: batched DFT levels with shared Fourier-tile keys.
      Matrix<double> grid(12, 10);
      fill(grid, 6000 + round);
      auto got = tcu::stencil::stencil_tcu_pool(cexec, grid.view(), w, 2);
      Device<Complex> ref({.m = 16, .latency = ell});
      auto expect = tcu::stencil::stencil_tcu(ref, grid.view(), w, 2);
      ASSERT_EQ(got, expect) << "stencil, round " << round;
    }
    {  // Mlp epoch pass: per-strip epilogues gated on their own tickets.
      Matrix<double> batch(8, 16);
      fill(batch, 7000 + round);
      auto got = mlp.forward(dexec, batch.view(), {.affinity = true},
                             tcu::ExecMode::kEpoch);
      Device<double> ref({.m = 16, .latency = ell});
      auto expect = mlp.forward(ref, batch.view());
      ASSERT_EQ(got, expect) << "mlp, round " << round;
    }
    {  // transitive closure: the full true-dependence epoch graph.
      auto adj = tcu::graph::random_digraph(24, 0.12, 8000 + round);
      tcu::graph::AdjMatrix expect = adj;
      tcu::graph::closure_tcu(vexec, adj.view(), tcu::ExecMode::kEpoch);
      Device<tcu::graph::Vert> ref({.m = 16, .latency = ell});
      tcu::graph::closure_tcu(ref, expect.view());
      ASSERT_EQ(adj, expect) << "closure, round " << round;
    }
  }

  // The plan actually bit: transients fired on both pools, and unit 2 of
  // the double pool died mid-run, was quarantined with its cache mirror
  // dropped, and the pool finished every remaining round at p - 1.
  EXPECT_GT(dplan.transients_injected(), 0u);
  EXPECT_GT(cplan.transients_injected(), 0u);
  EXPECT_EQ(dplan.permanent_trips(), 1u);
  const auto& stats = dexec.fault_stats();
  EXPECT_EQ(stats.quarantined, std::vector<std::size_t>{2});
  EXPECT_EQ(dexec.healthy_units(), 3u);
  EXPECT_GT(stats.retried + stats.redealt, 0u);
  EXPECT_EQ(dpool.unit(2).tile_cache().size(), 0u);
  EXPECT_EQ(cexec.healthy_units(), 4u);
  EXPECT_GT(vplan.transients_injected(), 0u);
  EXPECT_EQ(vexec.healthy_units(), 4u);
  dcheck.verify();
  ccheck.verify();
  vcheck.verify();
}

TEST(Stress, LargeScanAgainstKahanReference) {
  const std::size_t n = 1 << 18;
  tcu::util::Xoshiro256 rng(131);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.uniform(-1, 1);
  Device<double> dev({.m = 256});
  auto got = tcu::primitives::inclusive_scan_tcu(dev, data);
  // Kahan-compensated reference to keep the oracle itself accurate.
  double sum = 0, comp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double y = data[i] - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
    ASSERT_NEAR(got[i], sum, 1e-7) << "at " << i;
  }
}

}  // namespace
