// Tests for the util module: RNG determinism and distribution sanity,
// table rendering, and formatting helpers.

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using tcu::util::Table;
using tcu::util::Xoshiro256;

TEST(Rng, DeterministicForEqualSeeds) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3, 5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Xoshiro256 rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRespectsProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, RandomVectorTypesAndBounds) {
  Xoshiro256 rng(19);
  auto vd = tcu::util::random_vector<double>(50, rng, -2, 2);
  for (double v : vd) {
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 2.0);
  }
  auto vi = tcu::util::random_vector<int>(50, rng, -4, 4);
  for (int v : vi) {
    EXPECT_GE(v, -4);
    EXPECT_LE(v, 4);
  }
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, RejectsMalformedInput) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Fmt, FormatsNumbers) {
  EXPECT_EQ(tcu::util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(tcu::util::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(tcu::util::fmt(std::int64_t{-7}), "-7");
}

TEST(Stats, StddevOfConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(tcu::util::stddev({5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(tcu::util::mean({2, 4, 6}), 4.0);
  EXPECT_THROW((void)tcu::util::mean({}), std::invalid_argument);
}

TEST(Stats, FitHandlesNoise) {
  // y = 2 x^2 with 1% multiplicative noise: exponent recovered closely.
  Xoshiro256 rng(23);
  std::vector<double> xs, ys;
  for (double x = 2; x <= 512; x *= 2) {
    xs.push_back(x);
    ys.push_back(2.0 * x * x * rng.uniform(0.99, 1.01));
  }
  auto fit = tcu::util::fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 2.0, 0.02);
  EXPECT_GT(fit.r2, 0.999);
}

}  // namespace
