// Cross-module integration tests: pipelines that exercise several
// libraries together, the way a downstream user would compose them.

#include <gtest/gtest.h>

#include <complex>

#include "core/pool.hpp"
#include "core/precision.hpp"
#include "dft/dft.hpp"
#include "extmem/extmem.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "intmul/mul.hpp"
#include "linalg/dense.hpp"
#include "linalg/gauss.hpp"
#include "linalg/parallel.hpp"
#include "linalg/sparse.hpp"
#include "linalg/strassen.hpp"
#include "systolic/engine.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using Complex = std::complex<double>;

// GE solve, residual verified with a tensor-unit product.
TEST(Integration, SolveSystemAndVerifyResidualOnDevice) {
  const std::size_t r = 64;
  tcu::util::Xoshiro256 rng(1);
  Matrix<double> A(r - 1, r - 1);
  std::vector<double> b(r - 1);
  for (std::size_t i = 0; i < r - 1; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < r - 1; ++j) {
      A(i, j) = rng.uniform(-1, 1);
      row += std::abs(A(i, j));
    }
    A(i, i) = row + 1.0;
    b[i] = rng.uniform(-1, 1);
  }
  Device<double> dev({.m = 256});
  auto c = tcu::linalg::make_augmented<double>(A.view(), b, r);
  tcu::linalg::ge_forward_tcu(dev, c.view());
  Counters back;
  auto x = tcu::linalg::back_substitute<double>(c.view(), back);

  // Residual A x - b via the device: x as a column matrix.
  Matrix<double> xm(r - 1, 1);
  for (std::size_t i = 0; i + 1 < r; ++i) xm(i, 0) = x[i];
  auto ax = tcu::linalg::matmul_tcu(dev, A.view(), xm.view());
  for (std::size_t i = 0; i + 1 < r; ++i) {
    EXPECT_NEAR(ax(i, 0), b[i], 1e-8);
  }
}

// Integer multiplication two ways: the Theorem 9 Toeplitz product vs a
// DFT-based limb convolution (convolution theorem across modules).
TEST(Integration, IntegerProductViaDftConvolution) {
  tcu::util::Xoshiro256 rng(2);
  const auto a = tcu::intmul::BigInt::random_bits(600, rng);
  const auto b = tcu::intmul::BigInt::random_bits(600, rng);
  Device<std::int64_t> idev({.m = 64});
  const auto expect = tcu::intmul::mul_schoolbook_tcu(idev, a, b);

  // Limb polynomials convolved via the TCU DFT, then carried.
  const std::size_t conv = a.limb_count() + b.limb_count() - 1;
  std::size_t n = 1;
  while (n < conv) n *= 2;
  tcu::dft::CVec fa(n, Complex{}), fb(n, Complex{});
  for (std::size_t i = 0; i < a.limb_count(); ++i) fa[i] = a.limbs()[i];
  for (std::size_t i = 0; i < b.limb_count(); ++i) fb[i] = b.limbs()[i];
  Device<Complex> cdev({.m = 64});
  auto prod = tcu::dft::circular_convolve_tcu(cdev, fa, fb);
  std::vector<tcu::intmul::BigInt::Limb> limbs;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < conv; ++i) {
    carry += static_cast<std::uint64_t>(std::llround(prod[i].real()));
    limbs.push_back(static_cast<tcu::intmul::BigInt::Limb>(carry & 0xFFFF));
    carry >>= 16;
  }
  while (carry != 0) {
    limbs.push_back(static_cast<tcu::intmul::BigInt::Limb>(carry & 0xFFFF));
    carry >>= 16;
  }
  const auto got = tcu::intmul::BigInt::from_limbs(std::move(limbs));
  EXPECT_EQ(got.to_hex(), expect.to_hex());
}

// Transitive closure by repeated boolean squaring with device products
// agrees with the blocked Figure 7 algorithm.
TEST(Integration, ClosureByRepeatedSquaringAgrees) {
  const std::size_t n = 48;
  auto adj = tcu::graph::random_digraph(n, 0.06, 3);
  auto blocked = adj;
  Device<std::int64_t> dev({.m = 64});
  tcu::graph::closure_tcu(dev, blocked.view());

  // d <- d OR d*d until fixpoint, products on the device.
  auto cur = adj;
  for (std::size_t round = 0; round < n; ++round) {
    auto sq = tcu::linalg::matmul_tcu(dev, cur.view(), cur.view());
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::int64_t v = (sq(i, j) > 0 || cur(i, j) > 0) ? 1 : 0;
        if (v != cur(i, j)) changed = true;
        cur(i, j) = v;
      }
    }
    if (!changed) break;
  }
  EXPECT_TRUE(cur == blocked);
}

// The Seidel recursion's trace replays on the external-memory machine at
// M = 3m with I/Os proportional to its tensor time (Theorem 12 glue).
TEST(Integration, SeidelTraceReplaysInExternalMemory) {
  auto g = tcu::graph::random_connected_graph(32, 0.2, 4);
  Device<std::int64_t> dev({.m = 16, .allow_tall = false});
  dev.enable_trace();
  (void)tcu::graph::apsd_seidel(dev, g.view());
  const auto ios = tcu::extmem::simulate_trace_io(dev.trace(), 16);
  EXPECT_EQ(ios, tcu::extmem::trace_io_closed_form(dev.trace(), 16));
  EXPECT_EQ(ios, 3 * dev.counters().tensor_time);  // l = 0 here
}

// The cycle-level systolic engine can drive the whole DFT pipeline.
TEST(Integration, DftOnSystolicEngineMatchesReference) {
  const std::size_t n = 256;
  tcu::util::Xoshiro256 rng(5);
  tcu::dft::CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto sys = tcu::systolic::make_systolic_device<Complex>({.m = 64});
  Device<Complex> ref({.m = 64});
  auto y1 = tcu::dft::dft_tcu(sys, x);
  auto y2 = tcu::dft::dft_tcu(ref, x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y1[i] - y2[i]), 0.0, 1e-9);
  }
  EXPECT_GT(sys.counters().systolic_cycles, 0u);
  EXPECT_EQ(sys.counters().tensor_time, ref.counters().tensor_time);
}

// Strassen recursion inside the sparse compress-multiply-recover path.
TEST(Integration, SparseWithStrassenKernelMatchesNaive) {
  tcu::util::Xoshiro256 rng(6);
  std::vector<tcu::linalg::SparseEntry<std::int64_t>> ea, eb;
  for (int t = 0; t < 80; ++t) {
    ea.push_back({static_cast<std::size_t>(rng.uniform_int(0, 39)),
                  static_cast<std::size_t>(rng.uniform_int(0, 39)),
                  rng.uniform_int(1, 5)});
    eb.push_back({static_cast<std::size_t>(rng.uniform_int(0, 39)),
                  static_cast<std::size_t>(rng.uniform_int(0, 39)),
                  rng.uniform_int(1, 5)});
  }
  auto A = tcu::linalg::SparseMatrix<std::int64_t>::from_entries(
      40, 40, std::move(ea));
  auto B = tcu::linalg::SparseMatrix<std::int64_t>::from_entries(
      40, 40, std::move(eb));
  Counters ram;
  auto expect = tcu::linalg::spmm_naive(A, B, ram);
  Device<std::int64_t> dev({.m = 16});
  auto got = tcu::linalg::spmm_tcu(
      dev, A, B, {.z_hint = expect.nnz(), .seed = 5, .use_strassen = true});
  EXPECT_TRUE(got.to_dense() == expect.to_dense());
}

// A multi-unit pool running the products inside a larger pipeline
// produces identical numerics.
TEST(Integration, PoolProductsMatchSingleDeviceInPipeline) {
  tcu::util::Xoshiro256 rng(7);
  const std::size_t d = 96;
  Matrix<double> a(d, d), b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  }
  tcu::DevicePool<double> pool(3, {.m = 256, .latency = 10});
  Device<double> single({.m = 256, .latency = 10});
  auto c1 = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
  auto c2 = tcu::linalg::matmul_tcu(single, a.view(), b.view());
  // Chain a second product to make it a pipeline.
  auto d1 = tcu::linalg::matmul_tcu_pool(pool, c1.view(), a.view());
  auto d2 = tcu::linalg::matmul_tcu(single, c2.view(), a.view());
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      ASSERT_NEAR(d1(i, j), d2(i, j), 1e-9);
    }
  }
  EXPECT_LT(pool.makespan(), single.counters().time());
}

// Reduced-precision engine inside the blocked matmul: error grows with
// the reduction depth but stays linear in d for unit-range data.
TEST(Integration, QuantizedBlockedMatmulErrorScalesLinearly) {
  double prev = 0.0;
  tcu::util::Xoshiro256 rng(8);
  auto make = [&](std::size_t d) {
    Matrix<double> x(d, d);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform(-1, 1);
    }
    return x;
  };
  for (std::size_t d : {32u, 128u}) {
    auto a = make(d);
    auto b = make(d);
    Device<double> exact({.m = 256});
    Device<double> quant({.m = 256}, tcu::limited_precision_engine({}));
    auto c1 = tcu::linalg::matmul_tcu(exact, a.view(), b.view());
    auto c2 = tcu::linalg::matmul_tcu(quant, a.view(), b.view());
    const double err = tcu::max_abs_diff(c1.view(), c2.view());
    EXPECT_LT(err, static_cast<double>(d) * 1e-2);
    EXPECT_GT(err, prev / 50.0);  // error does grow with depth
    prev = err;
  }
}

}  // namespace
