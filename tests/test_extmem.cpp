// Tests for the external-memory machinery (Section 5): LRU simulator
// behaviour, blocked vs naive matmul I/O complexity, TCU-trace replay
// matching the Theta(m)-per-call closed form, and the operational
// Theorem 12 inequality (weak-TCU time >= I/O lower bound).

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "core/device.hpp"
#include "extmem/extmem.hpp"
#include "linalg/dense.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Device;
using tcu::Matrix;
using tcu::Trace;
using tcu::extmem::ExtMemSim;
using tcu::extmem::matmul_io_blocked;
using tcu::extmem::matmul_io_naive;
using tcu::extmem::simulate_trace_io;
using tcu::extmem::trace_io_closed_form;

// ------------------------------------------------------------- simulator

TEST(ExtMemSim, ColdMissesAndHits) {
  ExtMemSim sim(/*M=*/4, /*B=*/1);
  sim.read(0);
  sim.read(1);
  sim.read(0);  // hit
  EXPECT_EQ(sim.io_count(), 2u);
  EXPECT_EQ(sim.resident_blocks(), 2u);
}

TEST(ExtMemSim, LruEviction) {
  ExtMemSim sim(/*M=*/2, /*B=*/1);
  sim.read(0);
  sim.read(1);
  sim.read(0);  // refresh 0: now 1 is the LRU victim
  sim.read(2);  // evicts 1
  sim.read(0);  // still resident: hit
  sim.read(1);  // miss again
  EXPECT_EQ(sim.io_count(), 4u);
}

TEST(ExtMemSim, DirtyWriteBackCostsOneIO) {
  ExtMemSim sim(/*M=*/1, /*B=*/1);
  sim.write(0);            // produced in place: no fetch
  EXPECT_EQ(sim.io_count(), 0u);
  sim.read(1);             // evicts dirty 0 -> write-back + fetch
  EXPECT_EQ(sim.io_count(), 2u);
  sim.flush();             // block 1 is clean
  EXPECT_EQ(sim.io_count(), 2u);
}

TEST(ExtMemSim, BlockGranularity) {
  ExtMemSim sim(/*M=*/8, /*B=*/4);
  sim.read(0);
  sim.read(1);
  sim.read(3);  // same block
  sim.read(4);  // next block
  EXPECT_EQ(sim.io_count(), 2u);
}

TEST(ExtMemSim, FlushWritesDirtyBlocks) {
  ExtMemSim sim(/*M=*/4, /*B=*/1);
  sim.write(0);
  sim.write(1);
  sim.read(2);
  sim.flush();
  // 1 fetch (block 2) + 2 dirty write-backs.
  EXPECT_EQ(sim.io_count(), 3u);
  EXPECT_EQ(sim.resident_blocks(), 0u);
}

TEST(ExtMemSim, RejectsBadGeometry) {
  EXPECT_THROW(ExtMemSim(0, 1), std::invalid_argument);
  EXPECT_THROW(ExtMemSim(2, 0), std::invalid_argument);
  EXPECT_THROW(ExtMemSim(2, 4), std::invalid_argument);
}

// ------------------------------------------------------------- matmul I/O

TEST(MatmulIo, BlockedScalesAsCubeOverSqrtM) {
  // Sweep d at fixed M: I/Os ~ d^3 / sqrt(M) => exponent 3 in d.
  std::vector<double> ds, ios;
  for (std::size_t d : {16u, 32u, 64u}) {
    ds.push_back(static_cast<double>(d));
    ios.push_back(static_cast<double>(matmul_io_blocked(d, 192, 1)));
  }
  auto fit = tcu::util::fit_power_law(ds, ios);
  EXPECT_NEAR(fit.exponent, 3.0, 0.15);
}

TEST(MatmulIo, BlockedBeatsNaive) {
  const std::size_t d = 48, M = 192, B = 1;
  EXPECT_LT(matmul_io_blocked(d, M, B), matmul_io_naive(d, M, B));
}

TEST(MatmulIo, BlockedMatchesLowerBoundShape) {
  // Measured I/Os stay within a constant band of n^{3/2}/(B sqrt(M)).
  std::vector<double> predicted, measured;
  for (std::size_t d : {16u, 32u, 64u, 96u}) {
    predicted.push_back(tcu::costs::extmem_mm_lower_bound(
        static_cast<double>(d) * d, 192.0));
    measured.push_back(static_cast<double>(matmul_io_blocked(d, 192, 1)));
  }
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 3.0);
}

TEST(MatmulIo, EverythingFitsNeedsOnlyCompulsoryIos) {
  // With M >= 3d^2 each word is touched once: 2d^2 reads + d^2 write-backs.
  const std::size_t d = 8;
  EXPECT_EQ(matmul_io_blocked(d, 3 * d * d + 8, 1), 3u * d * d);
}

TEST(MatmulIo, LargerBlocksReduceIos) {
  const std::size_t d = 32, M = 256;
  EXPECT_LT(matmul_io_blocked(d, M, 8), matmul_io_blocked(d, M, 1));
}

// ----------------------------------------------------------- trace replay

TEST(TraceReplay, SquareCallCostsThreeM) {
  Trace trace;
  trace.record(/*n=*/4, /*s=*/4, false);  // one square 16-word call
  EXPECT_EQ(simulate_trace_io(trace, 16), 3u * 16u);
  EXPECT_EQ(trace_io_closed_form(trace, 16), 3u * 16u);
}

TEST(TraceReplay, TallCallSplitsIntoSquares) {
  Trace trace;
  trace.record(/*n=*/40, /*s=*/4, false);  // 10 square steps
  EXPECT_EQ(simulate_trace_io(trace, 16), 10u * 3u * 16u);
  EXPECT_EQ(trace_io_closed_form(trace, 16), 10u * 3u * 16u);
}

TEST(TraceReplay, SimulationMatchesClosedFormOnRealTraces) {
  // Record the trace of an actual blocked matmul and replay it.
  Device<double> dev({.m = 64});
  dev.enable_trace();
  tcu::util::Xoshiro256 rng(11);
  Matrix<double> a(64, 64), b(64, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  }
  (void)tcu::linalg::matmul_tcu(dev, a.view(), b.view());
  EXPECT_EQ(simulate_trace_io(dev.trace(), 64),
            trace_io_closed_form(dev.trace(), 64));
}

TEST(TraceReplay, BlockTransfersDivideIos) {
  Trace trace;
  trace.record(16, 4, false);
  EXPECT_EQ(simulate_trace_io(trace, 16, 4),
            simulate_trace_io(trace, 16, 1) / 4);
}

// ------------------------------------------------------------ Theorem 12

TEST(Theorem12, WeakTcuTimeDominatesIoLowerBound) {
  // Any weak-TCU algorithm's time is Omega of the I/O lower bound at
  // M = 3m: check it for the semiring matmul, whose bound is
  // n^{3/2}/sqrt(M). The check must hold across every (d, m) pair.
  tcu::util::Xoshiro256 rng(21);
  for (std::size_t m : {16u, 64u, 256u}) {
    for (std::size_t d : {32u, 64u, 128u}) {
      Device<double> dev({.m = m, .allow_tall = false});
      Matrix<double> a(d, d), b(d, d);
      for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
          a(i, j) = rng.uniform(-1, 1);
          b(i, j) = rng.uniform(-1, 1);
        }
      }
      (void)tcu::linalg::matmul_tcu(dev, a.view(), b.view());
      const double bound = tcu::costs::extmem_mm_lower_bound(
          static_cast<double>(d) * d, 3.0 * static_cast<double>(m));
      EXPECT_GE(static_cast<double>(dev.counters().time()), bound)
          << "d=" << d << " m=" << m;
    }
  }
}

TEST(Theorem12, TraceIosAreProportionalToWeakTime) {
  // The simulation argument: replayed I/Os <= c * weak-TCU tensor time
  // with c independent of the instance (here c = 3 exactly, as each
  // square call costs m + l time and 3m I/Os).
  tcu::util::Xoshiro256 rng(31);
  for (std::size_t d : {32u, 64u}) {
    Device<double> dev({.m = 16, .allow_tall = false});
    dev.enable_trace();
    Matrix<double> a(d, d), b(d, d);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        a(i, j) = rng.uniform(-1, 1);
        b(i, j) = rng.uniform(-1, 1);
      }
    }
    (void)tcu::linalg::matmul_tcu(dev, a.view(), b.view());
    const auto ios = simulate_trace_io(dev.trace(), 16);
    EXPECT_EQ(ios, 3u * dev.counters().tensor_time -
                       3u * dev.counters().latency_time);
  }
}

}  // namespace
