// The last three tensor workloads on the pool — stencils (Theorem 8),
// Gaussian-elimination kernel-D panels (Theorem 4), conv2d/im2col — and
// the residency-tagging bugfixes on their serial paths:
//   * serial-vs-pool bit-identical outputs at p = 1/2/4/8 for all three,
//     with aggregate counters matching exactly (GE) or modulo the
//     documented chunked-call latency relation (stencil, conv2d: the
//     chunk split re-pays or re-saves exactly l per extra tensor call,
//     and a 1-unit pool matches serial in every field);
//   * 10-run determinism and ragged/degenerate shapes (fewer strips than
//     units, k = 1 stencils, 1x1 conv kernels);
//   * closed-form resident-hit counts on the *serial* paths: conv2d's
//     filter bank pays its load latency once per tile (not per call
//     touching it), GE's kernel D loads X'_j once per (k, j) with the
//     weak-model column panel streaming past it for free, and
//     `matmul_batch_shared_b` keeps a shared B resident across calls.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/device.hpp"
#include "core/pool.hpp"
#include "linalg/batch.hpp"
#include "linalg/gauss.hpp"
#include "nn/layers.hpp"
#include "stencil/stencil.hpp"
#include "stencil/stencil1d.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;
using Complex = tcu::stencil::Complex;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out(i, j) = rng.uniform(-1, 1);
  }
  return out;
}

/// Integer-valued doubles: sums/products stay exact, so reassociating
/// schedules (split_chains) still compare bit-for-bit.
Matrix<double> random_int_matrix(std::size_t r, std::size_t c,
                                 std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      out(i, j) = static_cast<double>(rng.uniform_int(-3, 3));
    }
  }
  return out;
}

/// Every counter field the pool determinism contract covers, including
/// the residency split (resident_hits / latency_saved). Only evictions
/// are exempt: the aggregate count is schedule-dependent (each active
/// lane's first insertion fills an empty cache without displacing).
void expect_counters_identical(const Counters& got, const Counters& want) {
  EXPECT_EQ(got.tensor_calls, want.tensor_calls);
  EXPECT_EQ(got.tensor_rows, want.tensor_rows);
  EXPECT_EQ(got.tensor_time, want.tensor_time);
  EXPECT_EQ(got.tensor_macs, want.tensor_macs);
  EXPECT_EQ(got.latency_time, want.latency_time);
  EXPECT_EQ(got.resident_hits, want.resident_hits);
  EXPECT_EQ(got.latency_saved, want.latency_saved);
  EXPECT_EQ(got.cpu_ops, want.cpu_ops);
}

/// The chunked-call relation of the row-split pool paths (stencil,
/// conv2d): everything except the latency split matches serial exactly,
/// and every extra tensor call introduced by chunking accounts exactly
/// one extra l — paid on a first touch or saved on a resident hit.
void expect_counters_match_chunked(const Counters& agg, const Counters& ref,
                                   std::uint64_t ell) {
  EXPECT_EQ(agg.tensor_macs, ref.tensor_macs);
  EXPECT_EQ(agg.tensor_rows, ref.tensor_rows);
  EXPECT_EQ(agg.cpu_ops, ref.cpu_ops);
  EXPECT_EQ(agg.tensor_time - agg.latency_time,
            ref.tensor_time - ref.latency_time);
  EXPECT_GE(agg.tensor_calls, ref.tensor_calls);
  EXPECT_EQ(agg.latency_time + agg.latency_saved,
            ref.latency_time + ref.latency_saved +
                (agg.tensor_calls - ref.tensor_calls) * ell);
}

// ---------------------------------------------------------------- stencil

TEST(StencilPool, MatchesSerialAtEveryUnitCount) {
  const std::size_t k = 4;
  const std::uint64_t ell = 7;
  auto w = tcu::stencil::heat_kernel(0.1, 0.05);
  auto grid = random_matrix(12, 10, 100);  // ragged against k

  Device<Complex> single({.m = 16, .latency = ell});
  auto expect = tcu::stencil::stencil_tcu(single, grid.view(), w, k);
  EXPECT_GT(single.counters().resident_hits, 0u);  // levels share W_n

  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    DevicePool<Complex> pool(p, {.m = 16, .latency = ell});
    auto got = tcu::stencil::stencil_tcu_pool(pool, grid.view(), w, k);
    EXPECT_EQ(got, expect) << "p=" << p;  // bit-identical, not just close
    const Counters agg = pool.aggregate();
    expect_counters_match_chunked(agg, single.counters(), ell);
    EXPECT_GT(agg.resident_hits, 0u) << "p=" << p;
    if (p == 1) expect_counters_identical(agg, single.counters());
  }
}

TEST(StencilPool, OneDimensionalMatchesSerial) {
  const std::size_t k = 3;
  const std::uint64_t ell = 5;
  const std::array<double, 3> w{0.25, 0.5, 0.25};
  std::vector<double> signal(37);
  tcu::util::Xoshiro256 rng(110);
  for (auto& v : signal) v = rng.uniform(-1, 1);

  Device<Complex> single({.m = 16, .latency = ell});
  auto expect = tcu::stencil::stencil1d_tcu(single, signal, w, k);
  EXPECT_GT(single.counters().resident_hits, 0u);

  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    DevicePool<Complex> pool(p, {.m = 16, .latency = ell});
    auto got = tcu::stencil::stencil1d_tcu_pool(pool, signal, w, k);
    EXPECT_EQ(got, expect) << "p=" << p;
    expect_counters_match_chunked(pool.aggregate(), single.counters(), ell);
    if (p == 1) {
      expect_counters_identical(pool.aggregate(), single.counters());
    }
  }
}

TEST(StencilPool, DegenerateShapes) {
  auto w = tcu::stencil::heat_kernel(0.2, 0.2);
  // k = 1: the weight matrix is the kernel itself, blocks are 1x1 with
  // 3x3 neighbourhoods; grid smaller than the unit count at p = 8.
  auto grid = random_matrix(3, 2, 120);
  Device<Complex> single({.m = 16, .latency = 3});
  auto expect = tcu::stencil::stencil_tcu(single, grid.view(), w, 1);
  DevicePool<Complex> pool(8, {.m = 16, .latency = 3});
  auto got = tcu::stencil::stencil_tcu_pool(pool, grid.view(), w, 1);
  EXPECT_EQ(got, expect);
  expect_counters_match_chunked(pool.aggregate(), single.counters(), 3);

  // Sanity against the direct sweep (numerically, not bit-wise).
  Counters ram;
  auto direct = tcu::stencil::stencil_direct(grid.view(), w, 1, ram);
  for (std::size_t i = 0; i < direct.rows(); ++i) {
    for (std::size_t j = 0; j < direct.cols(); ++j) {
      EXPECT_NEAR(got(i, j), direct(i, j), 1e-9);
    }
  }
}

TEST(StencilPool, DeterministicAcrossRuns) {
  const std::size_t k = 2;
  auto w = tcu::stencil::heat_kernel(0.1, 0.1);
  auto grid = random_matrix(8, 8, 130);
  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    Matrix<double> first;
    std::vector<std::uint64_t> first_times;
    for (int run = 0; run < 10; ++run) {
      DevicePool<Complex> pool(p, {.m = 16, .latency = 11});
      auto got = tcu::stencil::stencil_tcu_pool(pool, grid.view(), w, k);
      std::vector<std::uint64_t> times;
      for (std::size_t u = 0; u < pool.size(); ++u) {
        times.push_back(pool.unit(u).counters().tensor_time);
      }
      if (run == 0) {
        first = got;
        first_times = times;
      }
      EXPECT_EQ(got, first) << "p=" << p << " run=" << run;
      EXPECT_EQ(times, first_times) << "p=" << p << " run=" << run;
    }
  }
}

// ----------------------------------------------------------------- gauss

Matrix<double> random_augmented(std::size_t r, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  const std::size_t d = r - 1;
  Matrix<double> A(d, d);
  std::vector<double> b(d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) A(i, j) = rng.uniform(-1, 1);
    A(i, i) += 4.0;  // diagonally dominant: elimination stays stable
    b[i] = rng.uniform(-1, 1);
  }
  return tcu::linalg::make_augmented<double>(A.view(), b, r);
}

TEST(GaussPool, MatchesSerialBitExactlyTallAndWeak) {
  const std::size_t r = 32;  // t = 8 blocks at m = 16
  const std::uint64_t ell = 13;
  auto c0 = random_augmented(r, 200);
  for (bool tall : {true, false}) {
    typename Device<double>::Config cfg{
        .m = 16, .latency = ell, .allow_tall = tall};
    Device<double> dev(cfg);
    Matrix<double> serial = c0;
    tcu::linalg::ge_forward_tcu(dev, serial.view());

    for (std::size_t p : {1u, 2u, 4u, 8u}) {
      DevicePool<double> pool(p, cfg);
      Matrix<double> got = c0;
      tcu::linalg::ge_forward_tcu_pool(pool, got.view());
      EXPECT_EQ(got, serial) << "tall=" << tall << " p=" << p;
      // Every key is unique per (k, j), so dealing can neither create
      // nor destroy hits: the aggregate matches serial in every field.
      expect_counters_identical(pool.aggregate(), dev.counters());
    }
  }
}

TEST(GaussPool, SerialWeakModeHitsMatchTheorem4ClosedForm) {
  // Weak model, r = 32, s = 4, t = 8: per pivot k the panel of
  // u = t-1-k block columns splits into u square calls each, the first
  // paying X'_j's load and the remaining u-1 streaming past it resident.
  const std::size_t r = 32, s = 4, t = r / s;
  const std::uint64_t ell = 9;
  auto c = random_augmented(r, 210);
  Device<double> dev({.m = s * s, .latency = ell, .allow_tall = false});
  tcu::linalg::ge_forward_tcu(dev, c.view());

  std::uint64_t loads = 0, hits = 0, calls = 0;
  for (std::size_t u = 1; u < t; ++u) {
    loads += u;          // one load per block column j
    hits += u * (u - 1); // the rest of the column panel reuses it
    calls += u * u;
  }
  EXPECT_EQ(dev.counters().tensor_calls, calls);
  EXPECT_EQ(dev.counters().latency_time, loads * ell);
  EXPECT_EQ(dev.counters().resident_hits, hits);
  EXPECT_EQ(dev.counters().latency_saved, hits * ell);
}

TEST(GaussPool, SerialTallModeLatencyUnchangedAndKeysCallLocal) {
  // Tall mode: one call per (k, j), one load each — tagging must not
  // change the Theorem 4 latency. Running twice on one device must not
  // produce phantom hits either (X' changes content between calls; the
  // entry evict_all re-anchors the call-local keys).
  const std::size_t r = 32;
  const std::uint64_t ell = 9;
  auto c0 = random_augmented(r, 220);
  Device<double> dev({.m = 16, .latency = ell});
  Matrix<double> c = c0;
  tcu::linalg::ge_forward_tcu(dev, c.view());
  const Counters once = dev.counters();
  EXPECT_EQ(once.resident_hits, 0u);
  EXPECT_EQ(once.latency_time, once.tensor_calls * ell);

  Matrix<double> again = c0;
  tcu::linalg::ge_forward_tcu(dev, again.view());
  EXPECT_EQ(dev.counters().resident_hits, 0u);  // no phantom reuse
  EXPECT_EQ(dev.counters().latency_time, 2 * once.latency_time);
  EXPECT_EQ(again, c);
}

TEST(GaussPool, SolvesTheSystem) {
  const std::size_t r = 16;
  auto c = random_augmented(r, 230);
  Matrix<double> reference = c;
  Counters naive;
  tcu::linalg::ge_forward_naive(reference.view(), naive);

  DevicePool<double> pool(3, {.m = 16, .latency = 2});
  tcu::linalg::ge_forward_tcu_pool(pool, c.view());
  Counters back;
  auto x_pool = tcu::linalg::back_substitute(c.view().as_const(), back);
  auto x_ref = tcu::linalg::back_substitute(reference.view().as_const(), back);
  ASSERT_EQ(x_pool.size(), x_ref.size());
  for (std::size_t i = 0; i < x_pool.size(); ++i) {
    EXPECT_NEAR(x_pool[i], x_ref[i], 1e-8) << i;
  }
}

TEST(GaussPool, DeterministicAcrossRuns) {
  const std::size_t r = 24;
  auto c0 = random_augmented(r, 240);
  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    Matrix<double> first;
    std::vector<std::uint64_t> first_times;
    for (int run = 0; run < 10; ++run) {
      DevicePool<double> pool(p, {.m = 16, .latency = 5});
      PoolExecutor<double> exec(pool);
      Matrix<double> got = c0;
      tcu::linalg::ge_forward_tcu_pool(exec, got.view());
      std::vector<std::uint64_t> times;
      for (std::size_t u = 0; u < pool.size(); ++u) {
        times.push_back(pool.unit(u).counters().tensor_time);
      }
      if (run == 0) {
        first = got;
        first_times = times;
      }
      EXPECT_EQ(got, first) << "p=" << p << " run=" << run;
      EXPECT_EQ(times, first_times) << "p=" << p << " run=" << run;
    }
  }
}

// ---------------------------------------------------------------- conv2d

struct ConvFixture {
  std::size_t channels_in = 2, kh = 2, kw = 2;
  Matrix<double> input, filters;

  ConvFixture()
      : input(random_int_matrix(2 * 6, 7, 300)),   // 2 channels of 6 x 7
        filters(random_int_matrix(3, 2 * 2 * 2, 301)) {}
};

TEST(ConvPool, MatchesSerialAtEveryUnitCount) {
  ConvFixture f;
  const std::uint64_t ell = 17;
  Device<double> single({.m = 16, .latency = ell});
  auto expect = tcu::nn::conv2d_tcu(single, f.input.view(), f.channels_in,
                                    f.filters.view(), f.kh, f.kw);

  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    DevicePool<double> pool(p, {.m = 16, .latency = ell});
    auto got = tcu::nn::conv2d_tcu_pool(pool, f.input.view(), f.channels_in,
                                        f.filters.view(), f.kh, f.kw);
    EXPECT_EQ(got, expect) << "p=" << p;
    expect_counters_match_chunked(pool.aggregate(), single.counters(), ell);
    if (p == 1) {
      expect_counters_identical(pool.aggregate(), single.counters());
    }
  }
}

TEST(ConvPool, SerialBankResidencyClosedForm) {
  // oh*ow = 30 -> rows_p = 32; patch = 8 -> 2 tiles; cout = 3 -> 1 strip:
  // the bank spans 2 tiles. With capacity >= 2 the bank is loaded once
  // *ever* across repeated layers against the same filters — the load
  // latency is charged per tile, not per call touching the bank.
  ConvFixture f;
  const std::uint64_t ell = 23;
  const int calls = 3;
  const std::uint64_t tiles = 2;
  Device<double> dev({.m = 16, .latency = ell, .resident_tiles = 2});
  Matrix<double> out;
  for (int r = 0; r < calls; ++r) {
    out = tcu::nn::conv2d_tcu(dev, f.input.view(), f.channels_in,
                              f.filters.view(), f.kh, f.kw);
  }
  EXPECT_EQ(dev.counters().latency_time, tiles * ell);
  EXPECT_EQ(dev.counters().resident_hits, tiles * (calls - 1));
  EXPECT_EQ(dev.counters().latency_saved, tiles * (calls - 1) * ell);

  // Same filters, fresh untagged-era accounting would have paid
  // tiles * calls * ell; the single-call charges are unchanged.
  Device<double> fresh({.m = 16, .latency = ell});
  (void)tcu::nn::conv2d_tcu(fresh, f.input.view(), f.channels_in,
                            f.filters.view(), f.kh, f.kw);
  EXPECT_EQ(fresh.counters().latency_time, tiles * ell);
}

TEST(ConvPool, SerialWeakModeSharesTileAcrossTheTallSplit) {
  // Weak model: each bank tile's tall stream splits into rows_p / s = 8
  // square calls; only the first pays l, the remaining 7 hit.
  ConvFixture f;
  const std::uint64_t ell = 11;
  Device<double> dev({.m = 16, .latency = ell, .allow_tall = false});
  (void)tcu::nn::conv2d_tcu(dev, f.input.view(), f.channels_in,
                            f.filters.view(), f.kh, f.kw);
  const std::uint64_t tiles = 2, split = 8;
  EXPECT_EQ(dev.counters().tensor_calls, tiles * split);
  EXPECT_EQ(dev.counters().latency_time, tiles * ell);
  EXPECT_EQ(dev.counters().resident_hits, tiles * (split - 1));
  EXPECT_EQ(dev.counters().latency_saved, tiles * (split - 1) * ell);
}

TEST(ConvPool, SplitChainsServeBanksDeeperThanTheCache) {
  // patch = 2*2*4 = 16 -> 4 bank tiles, one output strip. At c = 2 the
  // fused chain thrashes; split_chains gives each of 2 lanes a 2-tile
  // share that fits, so the second call is all hits.
  const std::size_t cin = 2, kh = 2, kw = 4;
  auto input = random_int_matrix(cin * 6, 8, 310);
  auto filters = random_int_matrix(3, cin * kh * kw, 311);
  const std::uint64_t ell = 19;

  Device<double> single({.m = 16, .latency = ell});
  auto expect = tcu::nn::conv2d_tcu(single, input.view(), cin,
                                    filters.view(), kh, kw);

  DevicePool<double> pool(2, {.m = 16, .latency = ell, .resident_tiles = 2});
  PoolExecutor<double> exec(pool);
  Matrix<double> got;
  for (int r = 0; r < 2; ++r) {
    got = tcu::nn::conv2d_tcu_pool(
        exec, input.view(), cin, filters.view(), kh, kw,
        {.affinity = true, .split_chains = true});
  }
  // Integer-valued inputs: the CPU combine's reassociation stays exact.
  EXPECT_EQ(got, expect);
  const Counters agg = pool.aggregate();
  const std::uint64_t tiles = 4;
  EXPECT_EQ(agg.latency_time, tiles * ell);      // each tile loaded once
  EXPECT_EQ(agg.resident_hits, tiles);           // second call all hits
  EXPECT_EQ(agg.latency_saved, tiles * ell);
  EXPECT_GT(pool.unit(0).counters().tensor_calls, 0u);
  EXPECT_GT(pool.unit(1).counters().tensor_calls, 0u);
}

TEST(ConvPool, OneByOneKernelAndFewerStripsThanUnits) {
  // 1x1 kernel, single channel: patch = 1 pads to one tile, the output
  // is the input scaled — and the 3x3 grid gives fewer row chunks than
  // the 8 units.
  auto input = random_int_matrix(3, 3, 320);
  auto filters = random_int_matrix(1, 1, 321);
  Device<double> single({.m = 16, .latency = 5});
  auto expect = tcu::nn::conv2d_tcu(single, input.view(), 1, filters.view(),
                                    1, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(expect(i, j), input(i, j) * filters(0, 0));
    }
  }
  DevicePool<double> pool(8, {.m = 16, .latency = 5});
  auto got = tcu::nn::conv2d_tcu_pool(pool, input.view(), 1, filters.view(),
                                      1, 1);
  EXPECT_EQ(got, expect);
  expect_counters_match_chunked(pool.aggregate(), single.counters(), 5);
}

TEST(ConvPool, MatchesRamReference) {
  ConvFixture f;
  Counters ram;
  auto oracle = tcu::nn::conv2d_ram(f.input.view(), f.channels_in,
                                    f.filters.view(), f.kh, f.kw, ram);
  DevicePool<double> pool(3, {.m = 16, .latency = 7});
  auto got = tcu::nn::conv2d_tcu_pool(pool, f.input.view(), f.channels_in,
                                      f.filters.view(), f.kh, f.kw);
  ASSERT_EQ(got.rows(), oracle.rows());
  ASSERT_EQ(got.cols(), oracle.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      EXPECT_EQ(got(i, j), oracle(i, j));  // integer-valued: exact
    }
  }
}

TEST(ConvPool, DeterministicAcrossRuns) {
  ConvFixture f;
  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    Matrix<double> first;
    std::vector<std::uint64_t> first_times;
    for (int run = 0; run < 10; ++run) {
      DevicePool<double> pool(p, {.m = 16, .latency = 9});
      auto got = tcu::nn::conv2d_tcu_pool(pool, f.input.view(),
                                          f.channels_in, f.filters.view(),
                                          f.kh, f.kw);
      std::vector<std::uint64_t> times;
      for (std::size_t u = 0; u < pool.size(); ++u) {
        times.push_back(pool.unit(u).counters().tensor_time);
      }
      if (run == 0) {
        first = got;
        first_times = times;
      }
      EXPECT_EQ(got, first) << "p=" << p << " run=" << run;
      EXPECT_EQ(times, first_times) << "p=" << p << " run=" << run;
    }
  }
}

// ------------------------------------------------- batched shared-B fix

TEST(BatchSharedB, SerialKeepsSharedWeightsResidentAcrossCalls) {
  // 2x2 tile grid of weights, capacity covering all 4: the previously
  // untagged product re-loaded (and invalidated) everything per call;
  // now the second and third calls are all hits.
  const std::size_t s = 4;
  const std::uint64_t ell = 31;
  const int calls = 3;
  auto b = random_matrix(2 * s, 2 * s, 400);
  std::vector<Matrix<double>> batch;
  for (int t = 0; t < 3; ++t) batch.push_back(random_matrix(s, 2 * s, 410 + t));

  Device<double> dev({.m = s * s, .latency = ell, .resident_tiles = 4});
  for (int r = 0; r < calls; ++r) {
    (void)tcu::linalg::matmul_batch_shared_b(dev, batch, b.view());
  }
  EXPECT_EQ(dev.counters().latency_time, 4 * ell);
  EXPECT_EQ(dev.counters().resident_hits, 4u * (calls - 1));
  EXPECT_EQ(dev.counters().latency_saved, 4 * (calls - 1) * ell);

  // At the default capacity 1 the four-tile stream thrashes: the PR 2
  // reload-per-call accounting is unchanged.
  Device<double> c1({.m = s * s, .latency = ell});
  for (int r = 0; r < calls; ++r) {
    (void)tcu::linalg::matmul_batch_shared_b(c1, batch, b.view());
  }
  EXPECT_EQ(c1.counters().resident_hits, 0u);
  EXPECT_EQ(c1.counters().latency_time, 4 * calls * ell);
}

}  // namespace
