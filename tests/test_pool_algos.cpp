// Pool-parallel algorithm paths (Strassen, transitive closure, APSD,
// DFT) against their single-device counterparts: identical output bits
// and identical aggregate counters — the determinism contract of the
// worker-thread runtime extended beyond dense matmul. The DFT is the one
// documented exception: splitting its single tall call per level across p
// units re-pays the Fourier-tile load latency per unit, so everything
// except the latency term matches (and a 1-unit pool matches exactly).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/pool.hpp"
#include "dft/dft.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "intmul/mul.hpp"
#include "linalg/strassen.hpp"
#include "poly/poly_mul.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out(i, j) = rng.uniform(-1, 1);
  }
  return out;
}

/// Random digraph adjacency (0/1, int64 storage).
tcu::graph::AdjMatrix random_digraph(std::size_t n, double p,
                                     std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  tcu::graph::AdjMatrix adj(n, n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform(0, 1) < p) adj(i, j) = 1;
    }
  }
  return adj;
}

/// Random connected undirected graph: a ring plus random chords.
tcu::graph::AdjMatrix random_connected(std::size_t n, double p,
                                       std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  tcu::graph::AdjMatrix adj(n, n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    adj(i, j) = adj(j, i) = 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform(0, 1) < p) adj(i, j) = adj(j, i) = 1;
    }
  }
  return adj;
}

void expect_counters_eq(const Counters& got, const Counters& want) {
  EXPECT_EQ(got.tensor_calls, want.tensor_calls);
  EXPECT_EQ(got.tensor_rows, want.tensor_rows);
  EXPECT_EQ(got.tensor_time, want.tensor_time);
  EXPECT_EQ(got.tensor_macs, want.tensor_macs);
  EXPECT_EQ(got.latency_time, want.latency_time);
  EXPECT_EQ(got.cpu_ops, want.cpu_ops);
}

TEST(PoolAlgos, StrassenPoolMatchesSerialBitExactly) {
  for (int p0 : {7, 8}) {
    for (std::size_t units : {1u, 3u}) {
      const std::size_t d = 32;
      auto a = random_matrix(d, d, 100 + p0);
      auto b = random_matrix(d, d, 200 + p0);
      Device<double> dev({.m = 16, .latency = 9});
      auto expect = tcu::linalg::matmul_strassen_tcu(dev, a.view(), b.view(),
                                                     {.p0 = p0});
      DevicePool<double> pool(units, {.m = 16, .latency = 9});
      auto got = tcu::linalg::matmul_strassen_tcu_pool(pool, a.view(),
                                                       b.view(), {.p0 = p0});
      EXPECT_EQ(got, expect) << "p0=" << p0 << " units=" << units;
      expect_counters_eq(pool.aggregate(), dev.counters());
    }
  }
}

TEST(PoolAlgos, StrassenPoolHandlesPaddedSizes) {
  const std::size_t d = 20;  // pads to 32
  auto a = random_matrix(d, d, 300);
  auto b = random_matrix(d, d, 301);
  Device<double> dev({.m = 16, .latency = 4});
  auto expect = tcu::linalg::matmul_strassen_tcu(dev, a.view(), b.view());
  DevicePool<double> pool(2, {.m = 16, .latency = 4});
  auto got = tcu::linalg::matmul_strassen_tcu_pool(pool, a.view(), b.view());
  EXPECT_EQ(got, expect);
  expect_counters_eq(pool.aggregate(), dev.counters());
}

TEST(PoolAlgos, StrassenPoolSplitsWorkAcrossUnits) {
  const std::size_t d = 64;
  auto a = random_matrix(d, d, 310);
  auto b = random_matrix(d, d, 311);
  Device<double> dev({.m = 16, .latency = 2});
  (void)tcu::linalg::matmul_strassen_tcu(dev, a.view(), b.view());
  DevicePool<double> pool(4, {.m = 16, .latency = 2});
  (void)tcu::linalg::matmul_strassen_tcu_pool(pool, a.view(), b.view());
  for (std::size_t u = 0; u < pool.size(); ++u) {
    EXPECT_GT(pool.unit(u).counters().tensor_calls, 0u) << "unit " << u;
  }
  EXPECT_LT(pool.makespan(), dev.counters().time());
}

TEST(PoolAlgos, ClosurePoolMatchesSerial) {
  for (std::size_t n : {24u, 30u}) {  // 30: exercises the padded path
    auto adj = random_digraph(n, 0.15, 400 + n);
    tcu::graph::AdjMatrix serial_d = adj;
    Device<tcu::graph::Vert> dev({.m = 64, .latency = 7});
    tcu::graph::closure_tcu(dev, serial_d.view());

    tcu::graph::AdjMatrix pool_d = adj;
    DevicePool<tcu::graph::Vert> pool(3, {.m = 64, .latency = 7});
    tcu::graph::closure_tcu(pool, pool_d.view());

    EXPECT_EQ(pool_d, serial_d) << "n=" << n;
    expect_counters_eq(pool.aggregate(), dev.counters());
    EXPECT_EQ(pool_d, tcu::graph::closure_bfs_oracle(adj.view())) << "n=" << n;
  }
}

TEST(PoolAlgos, ClosurePoolReusedExecutorAcrossCalls) {
  // One persistent executor across two closure computations is
  // bit-identical to two throwaway executors.
  auto adj = random_digraph(32, 0.1, 500);
  DevicePool<tcu::graph::Vert> pool_a(2, {.m = 64, .latency = 3});
  DevicePool<tcu::graph::Vert> pool_b(2, {.m = 64, .latency = 3});

  tcu::graph::AdjMatrix da1 = adj, da2 = adj, db1 = adj, db2 = adj;
  PoolExecutor<tcu::graph::Vert> exec(pool_a);
  tcu::graph::closure_tcu(exec, da1.view());
  tcu::graph::closure_tcu(exec, da2.view());
  tcu::graph::closure_tcu(pool_b, db1.view());
  tcu::graph::closure_tcu(pool_b, db2.view());

  EXPECT_EQ(da1, db1);
  EXPECT_EQ(da2, db2);
  for (std::size_t u = 0; u < pool_a.size(); ++u) {
    expect_counters_eq(pool_a.unit(u).counters(),
                       pool_b.unit(u).counters());
  }
}

TEST(PoolAlgos, ApsdPoolMatchesSerial) {
  for (bool strassen : {false, true}) {
    const std::size_t n = 18;
    auto adj = random_connected(n, 0.1, 600);
    Device<std::int64_t> dev({.m = 16, .latency = 5});
    auto expect = tcu::graph::apsd_seidel(dev, adj.view(),
                                          {.use_strassen = strassen});
    DevicePool<std::int64_t> pool(3, {.m = 16, .latency = 5});
    auto got = tcu::graph::apsd_seidel(pool, adj.view(),
                                       {.use_strassen = strassen});
    EXPECT_EQ(got, expect) << "strassen=" << strassen;
    expect_counters_eq(pool.aggregate(), dev.counters());

    Counters oracle_counters;
    auto bfs = tcu::graph::apsd_bfs(adj.view(), oracle_counters);
    EXPECT_EQ(got, bfs) << "strassen=" << strassen;
  }
}

TEST(PoolAlgos, DftPoolOneUnitMatchesSerialExactly) {
  using tcu::dft::Complex;
  tcu::util::Xoshiro256 rng(700);
  Matrix<Complex> serial_batch(3, 24);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t j = 0; j < 24; ++j) {
      serial_batch(r, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  Matrix<Complex> pool_batch = serial_batch;

  Device<Complex> dev({.m = 16, .latency = 11});
  tcu::dft::dft_batch_tcu(dev, serial_batch.view());

  DevicePool<Complex> pool(1, {.m = 16, .latency = 11});
  tcu::dft::dft_batch_tcu(pool, pool_batch.view());

  EXPECT_EQ(pool_batch, serial_batch);
  expect_counters_eq(pool.aggregate(), dev.counters());
}

TEST(PoolAlgos, DftPoolMultiUnitMatchesSerialModuloReloadLatency) {
  using tcu::dft::Complex;
  tcu::util::Xoshiro256 rng(701);
  const std::size_t b = 4, len = 40;
  Matrix<Complex> serial_batch(b, len);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      serial_batch(r, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  Matrix<Complex> pool_batch = serial_batch;

  Device<Complex> dev({.m = 16, .latency = 11});
  tcu::dft::dft_batch_tcu(dev, serial_batch.view());

  DevicePool<Complex> pool(3, {.m = 16, .latency = 11});
  tcu::dft::dft_batch_tcu(pool, pool_batch.view());

  // Bit-identical outputs: the row split does not change any FP op order.
  EXPECT_EQ(pool_batch, serial_batch);
  const Counters agg = pool.aggregate();
  const Counters& ref = dev.counters();
  // Everything but the per-unit tile re-load latency matches exactly.
  EXPECT_EQ(agg.tensor_macs, ref.tensor_macs);
  EXPECT_EQ(agg.tensor_rows, ref.tensor_rows);
  EXPECT_EQ(agg.cpu_ops, ref.cpu_ops);
  EXPECT_EQ(agg.tensor_time - agg.latency_time,
            ref.tensor_time - ref.latency_time);
  EXPECT_GE(agg.latency_time, ref.latency_time);
  // The overhead is exactly l per extra chunk.
  EXPECT_EQ(agg.latency_time - ref.latency_time,
            (agg.tensor_calls - ref.tensor_calls) * 11u);
}

// Weak-model units charge l per square call either way, and the pool's
// chunk boundaries fall on tile multiples, so the chunked schedule's
// counters match the serial ones in EVERY field — including latency.
TEST(PoolAlgos, DftPoolWeakModeMatchesSerialExactly) {
  using tcu::dft::Complex;
  tcu::util::Xoshiro256 rng(703);
  const std::size_t b = 3, len = 48;
  Matrix<Complex> serial_batch(b, len);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      serial_batch(r, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  Matrix<Complex> pool_batch = serial_batch;
  typename Device<Complex>::Config cfg{
      .m = 16, .latency = 13, .allow_tall = false};

  Device<Complex> dev(cfg);
  tcu::dft::dft_batch_tcu(dev, serial_batch.view());

  DevicePool<Complex> pool(2, cfg);
  tcu::dft::dft_batch_tcu(pool, pool_batch.view());

  EXPECT_EQ(pool_batch, serial_batch);
  expect_counters_eq(pool.aggregate(), dev.counters());
  EXPECT_EQ(pool.aggregate().tensor_calls, dev.counters().tensor_calls);
}

// Karatsuba's call tree is Strassen-shaped: the unrolled top levels run
// (and charge) on the shared CPU, the recorded subtree products are dealt
// across units, and the product plus the aggregate counters must be
// bit-identical to the serial Theorem 10 recursion at every unit count.
TEST(PoolAlgos, KaratsubaIntmulPoolMatchesSerialBitExactly) {
  tcu::util::Xoshiro256 rng(800);
  const auto a = tcu::intmul::BigInt::random_bits(4096, rng);
  const auto b = tcu::intmul::BigInt::random_bits(3500, rng);

  Device<std::int64_t> dev({.m = 64, .latency = 9});
  const auto expect = tcu::intmul::mul_karatsuba_tcu(dev, a, b);

  for (std::size_t units : {1u, 2u, 4u}) {
    DevicePool<std::int64_t> pool(units, {.m = 64, .latency = 9});
    PoolExecutor<std::int64_t> exec(pool);
    const auto got = tcu::intmul::mul_karatsuba_tcu_pool(exec, a, b);
    EXPECT_EQ(got, expect) << "units=" << units;
    expect_counters_eq(pool.aggregate(), dev.counters());
    if (units > 1) {
      // The subtrees really spread out.
      EXPECT_GT(pool.unit(1).counters().tensor_calls, 0u);
    }
  }
}

TEST(PoolAlgos, KaratsubaPolyPoolMatchesSerialBitExactly) {
  tcu::util::Xoshiro256 rng(810);
  // Integer-valued coefficients: Karatsuba's reassociation stays exact,
  // so the TCU routes can be compared bit-for-bit and against RAM.
  std::vector<double> a(300), b(257);
  for (auto& v : a) v = static_cast<double>(rng.uniform_int(-9, 9));
  for (auto& v : b) v = static_cast<double>(rng.uniform_int(-9, 9));

  Counters ram_counters;
  const auto oracle = tcu::poly::multiply_ram(a, b, ram_counters);

  Device<double> dev({.m = 16, .latency = 5});
  const auto expect = tcu::poly::multiply_karatsuba_tcu(dev, a, b);
  EXPECT_EQ(expect, oracle);  // exact: integer-valued inputs

  for (std::size_t units : {1u, 3u}) {
    DevicePool<double> pool(units, {.m = 16, .latency = 5});
    PoolExecutor<double> exec(pool);
    const auto got = tcu::poly::multiply_karatsuba_tcu_pool(exec, a, b);
    EXPECT_EQ(got, expect) << "units=" << units;
    expect_counters_eq(pool.aggregate(), dev.counters());
  }

  // The RAM Karatsuba agrees too (same reassociation, exact values).
  Counters kara_ram;
  EXPECT_EQ(tcu::poly::multiply_karatsuba_ram(a, b, kara_ram), oracle);
  EXPECT_GT(kara_ram.cpu_ops, 0u);
}

TEST(PoolAlgos, KaratsubaPoolReusedExecutorAcrossProducts) {
  tcu::util::Xoshiro256 rng(820);
  const auto a = tcu::intmul::BigInt::random_bits(2048, rng);
  const auto b = tcu::intmul::BigInt::random_bits(2048, rng);
  const auto c = tcu::intmul::BigInt::random_bits(1024, rng);

  DevicePool<std::int64_t> pool_reused(2, {.m = 64, .latency = 3});
  DevicePool<std::int64_t> pool_fresh(2, {.m = 64, .latency = 3});
  tcu::intmul::BigInt r1, r2, f1, f2;
  {
    PoolExecutor<std::int64_t> exec(pool_reused);
    r1 = tcu::intmul::mul_karatsuba_tcu_pool(exec, a, b);
    r2 = tcu::intmul::mul_karatsuba_tcu_pool(exec, r1, c);
  }
  {
    PoolExecutor<std::int64_t> exec1(pool_fresh);
    f1 = tcu::intmul::mul_karatsuba_tcu_pool(exec1, a, b);
  }
  {
    PoolExecutor<std::int64_t> exec2(pool_fresh);
    f2 = tcu::intmul::mul_karatsuba_tcu_pool(exec2, f1, c);
  }
  EXPECT_EQ(r1, f1);
  EXPECT_EQ(r2, f2);
  for (std::size_t u = 0; u < pool_reused.size(); ++u) {
    expect_counters_eq(pool_reused.unit(u).counters(),
                       pool_fresh.unit(u).counters());
  }
}

TEST(PoolAlgos, DftPoolInverseRoundTrips) {
  using tcu::dft::Complex;
  tcu::util::Xoshiro256 rng(702);
  const std::size_t b = 2, len = 32;
  Matrix<Complex> batch(b, len);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      batch(r, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  Matrix<Complex> original = batch;
  DevicePool<Complex> pool(2, {.m = 16, .latency = 3});
  tcu::dft::dft_batch_tcu(pool, batch.view());
  tcu::dft::idft_batch_tcu(pool, batch.view());
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      EXPECT_NEAR(batch(r, j).real(), original(r, j).real(), 1e-9);
      EXPECT_NEAR(batch(r, j).imag(), original(r, j).imag(), 1e-9);
    }
  }
}

}  // namespace
