// Tests for the Theorem 2 blocked dense multiplication and Corollary 1
// rectangular shapes: correctness against the naive baseline, exact cost
// accounting (call counts, work term, latency term), ragged shapes, and
// the semiring-optimality relationships asserted in the paper.

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "linalg/dense.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using tcu::linalg::matmul_naive;
using tcu::linalg::matmul_tcu;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

void expect_close(const Matrix<double>& a, const Matrix<double>& b,
                  double tol = 1e-9) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_NEAR(a(i, j), b(i, j), tol) << "at (" << i << "," << j << ")";
    }
  }
}

// Sweep over (m, matrix dimension): correctness for divisible shapes.
class DenseSweep : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t>> {};

TEST_P(DenseSweep, MatchesNaive) {
  const auto [m, d] = GetParam();
  Device<double> dev({.m = m});
  auto a = random_matrix(d, d, 1000 + m + d);
  auto b = random_matrix(d, d, 2000 + m + d);
  Counters ram;
  auto expect = matmul_naive<double>(a.view(), b.view(), ram);
  auto got = matmul_tcu(dev, a.view(), b.view());
  expect_close(got, expect);
}

TEST_P(DenseSweep, CostMatchesTheorem2Exactly) {
  const auto [m, d] = GetParam();
  const std::size_t s = tcu::exact_sqrt(m);
  if (d % s != 0) GTEST_SKIP() << "exact-count check needs divisible shapes";
  const std::uint64_t ell = 37;
  Device<double> dev({.m = m, .latency = ell});
  auto a = random_matrix(d, d, 3000 + m + d);
  auto b = random_matrix(d, d, 4000 + m + d);
  (void)matmul_tcu(dev, a.view(), b.view());
  // (d/s)^2 tensor calls, each streaming d rows: exactly d^3/s work plus
  // (d/s)^2 * ell latency — the two terms of Theorem 2 with n = d^2.
  const std::uint64_t tiles = (d / s) * (d / s);
  EXPECT_EQ(dev.counters().tensor_calls, tiles);
  EXPECT_EQ(dev.counters().tensor_time,
            static_cast<std::uint64_t>(d) * d * d / s + tiles * ell);
  EXPECT_EQ(dev.counters().latency_time, tiles * ell);
  // The closed form bounds the measurement within a small constant.
  const double predicted = tcu::costs::thm2_dense(
      static_cast<double>(d) * d, static_cast<double>(m),
      static_cast<double>(ell));
  const double measured = static_cast<double>(dev.counters().time());
  EXPECT_GE(measured, 0.49 * predicted);
  EXPECT_LE(measured, 2.01 * predicted);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 16, 64, 256),
                       ::testing::Values<std::size_t>(8, 16, 32, 48, 64)));

TEST(Dense, RaggedShapesArePaddedCorrectly) {
  Device<double> dev({.m = 16});
  auto a = random_matrix(13, 7, 51);
  auto b = random_matrix(7, 9, 52);
  Counters ram;
  auto expect = matmul_naive<double>(a.view(), b.view(), ram);
  auto got = matmul_tcu(dev, a.view(), b.view());
  expect_close(got, expect);
}

TEST(Dense, RectangularCorollary1CallCount) {
  // sqrt(n) x r times r x sqrt(n): r*sqrt(n)/m calls (Corollary 1 latency
  // term), each streaming sqrt(n) rows.
  const std::size_t root_n = 64, r = 32, m = 256, s = 16;
  Device<double> dev({.m = m, .latency = 11});
  auto a = random_matrix(root_n, r, 61);
  auto b = random_matrix(r, root_n, 62);
  (void)matmul_tcu(dev, a.view(), b.view());
  EXPECT_EQ(dev.counters().tensor_calls, (r / s) * (root_n / s));
  EXPECT_EQ(dev.counters().tensor_time,
            static_cast<std::uint64_t>(r) * root_n * root_n / s +
                (r / s) * (root_n / s) * 11u);
  const double predicted = tcu::costs::cor1_rectangular(
      static_cast<double>(root_n) * root_n, r, m, 11);
  EXPECT_GE(static_cast<double>(dev.counters().time()), 0.4 * predicted);
  EXPECT_LE(static_cast<double>(dev.counters().time()), 2.5 * predicted);
}

TEST(Dense, VectorTimesMatrixViaPadding) {
  // Degenerate p = 1 still works (charged as one full tile per call).
  Device<double> dev({.m = 16});
  auto a = random_matrix(1, 8, 71);
  auto b = random_matrix(8, 8, 72);
  Counters ram;
  expect_close(matmul_tcu(dev, a.view(), b.view()),
               matmul_naive<double>(a.view(), b.view(), ram));
}

TEST(Dense, MismatchedShapesThrow) {
  Device<double> dev({.m = 16});
  auto a = random_matrix(4, 5, 81);
  auto b = random_matrix(6, 4, 82);
  EXPECT_THROW((void)matmul_tcu(dev, a.view(), b.view()),
               std::invalid_argument);
}

TEST(Dense, IdentityIsNeutral) {
  Device<double> dev({.m = 16});
  auto a = random_matrix(12, 12, 91);
  auto eye = Matrix<double>::identity(12);
  expect_close(matmul_tcu(dev, a.view(), eye.view()), a, 1e-12);
  expect_close(matmul_tcu(dev, eye.view(), a.view()), a, 1e-12);
}

TEST(Dense, LatencyDominatesForManySmallTiles) {
  // With huge l, the (n/m) l term dominates: doubling d quadruples the
  // latency part — the regime where the tall-operand optimization matters.
  const std::size_t m = 16;
  Device<double> small({.m = m, .latency = 1u << 20});
  Device<double> large({.m = m, .latency = 1u << 20});
  auto a1 = random_matrix(16, 16, 101), b1 = random_matrix(16, 16, 102);
  auto a2 = random_matrix(32, 32, 103), b2 = random_matrix(32, 32, 104);
  (void)matmul_tcu(small, a1.view(), b1.view());
  (void)matmul_tcu(large, a2.view(), b2.view());
  EXPECT_EQ(large.counters().latency_time, 4 * small.counters().latency_time);
}

TEST(Dense, NaiveChargesExactFlopCount) {
  Counters ram;
  auto a = random_matrix(5, 6, 111);
  auto b = random_matrix(6, 7, 112);
  (void)matmul_naive<double>(a.view(), b.view(), ram);
  EXPECT_EQ(ram.cpu_ops, 5u * 6u * 7u);
}

TEST(Dense, TcuBeatsNaiveOnModelTime) {
  // The headline claim: simulated TCU time ~ n^{3/2}/sqrt(m) vs the RAM
  // baseline's n^{3/2}; speedup approaches sqrt(m).
  const std::size_t d = 64, m = 256;
  Device<double> dev({.m = m});
  Counters ram;
  auto a = random_matrix(d, d, 121), b = random_matrix(d, d, 122);
  (void)matmul_tcu(dev, a.view(), b.view());
  (void)matmul_naive<double>(a.view(), b.view(), ram);
  const double speedup = static_cast<double>(ram.time()) /
                         static_cast<double>(dev.counters().time());
  EXPECT_GT(speedup, 0.8 * std::sqrt(static_cast<double>(m)));
}

}  // namespace
