// Tests for the (n, k)-stencil pipeline (§4.6): weight matrices by
// unrolling vs polynomial powering (Lemma 2), the blocked-convolution
// stencil vs direct sweeps (Lemma 1 / Theorem 8), heat-equation physics
// sanity checks, and the cost bound.

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "stencil/stencil.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using tcu::stencil::Complex;
using tcu::stencil::heat_kernel;
using tcu::stencil::Kernel3;
using tcu::stencil::stencil_direct;
using tcu::stencil::stencil_tcu;
using tcu::stencil::weight_matrix_tcu;
using tcu::stencil::weight_matrix_unrolled;

Kernel3 random_kernel(std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Kernel3 w(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      // Keep spectral radius tame so k-fold powers stay well conditioned.
      w(i, j) = rng.uniform(-0.12, 0.12);
    }
  }
  return w;
}

Matrix<double> random_grid(std::size_t r, std::size_t c, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> g(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) g(i, j) = rng.uniform(-1, 1);
  }
  return g;
}

// ---------------------------------------------------------- weight matrix

class WeightMatrixSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WeightMatrixSweep, PoweringMatchesUnrolling) {
  const std::size_t k = GetParam();
  auto w = random_kernel(300 + k);
  Counters ram;
  auto expect = weight_matrix_unrolled(w, k, ram);
  Device<Complex> dev({.m = 16});
  auto got = weight_matrix_tcu(dev, w, k);
  ASSERT_EQ(got.rows(), 2 * k + 1);
  ASSERT_EQ(got.cols(), 2 * k + 1);
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      EXPECT_NEAR(got(i, j), expect(i, j), 1e-9) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, WeightMatrixSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST(WeightMatrix, IdentityKernelStaysIdentity) {
  Kernel3 w(3, 3, 0.0);
  w(1, 1) = 1.0;  // pure copy stencil
  Device<Complex> dev({.m = 16});
  auto got = weight_matrix_tcu(dev, w, 6);
  for (std::size_t i = 0; i < 13; ++i) {
    for (std::size_t j = 0; j < 13; ++j) {
      EXPECT_NEAR(got(i, j), (i == 6 && j == 6) ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(WeightMatrix, MassIsPreservedForStochasticKernels) {
  // If the one-step weights sum to 1, every power sums to 1.
  auto w = heat_kernel(0.1, 0.15);
  Device<Complex> dev({.m = 16});
  auto got = weight_matrix_tcu(dev, w, 9);
  double sum = 0;
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) sum += got(i, j);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WeightMatrix, RejectsBadArguments) {
  Device<Complex> dev({.m = 16});
  Matrix<double> bad(2, 3, 0.0);
  EXPECT_THROW((void)weight_matrix_tcu(dev, bad, 2), std::invalid_argument);
  Kernel3 w(3, 3, 0.1);
  EXPECT_THROW((void)weight_matrix_tcu(dev, w, 0), std::invalid_argument);
  Counters c;
  EXPECT_THROW((void)weight_matrix_unrolled(w, 0, c), std::invalid_argument);
}

// --------------------------------------------------------------- stencil

class StencilSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(StencilSweep, BlockedConvolutionMatchesDirectSweeps) {
  const auto [dim, k, m] = GetParam();
  auto w = random_kernel(400 + dim + k);
  auto grid = random_grid(dim, dim, 500 + dim + k);
  Counters ram;
  auto expect = stencil_direct(grid.view(), w, k, ram);
  Device<Complex> dev({.m = m});
  auto got = stencil_tcu(dev, grid.view(), w, k);
  ASSERT_EQ(got.rows(), dim);
  ASSERT_EQ(got.cols(), dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      ASSERT_NEAR(got(i, j), expect(i, j), 1e-8) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, StencilSweep,
    ::testing::Combine(::testing::Values<std::size_t>(8, 12, 16, 24),
                       ::testing::Values<std::size_t>(1, 2, 3, 4, 8),
                       ::testing::Values<std::size_t>(16, 64)));

TEST(Stencil, HeatDiffusionSpreadsAnImpulse) {
  const std::size_t n = 16, k = 4;
  auto w = heat_kernel(0.2, 0.2);
  Matrix<double> grid(n, n, 0.0);
  grid(8, 8) = 100.0;
  Device<Complex> dev({.m = 16});
  auto out = stencil_tcu(dev, grid.view(), w, k);
  // Total mass preserved (impulse far from the boundary).
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      total += out(i, j);
      EXPECT_GE(out(i, j), -1e-9);
    }
  }
  EXPECT_NEAR(total, 100.0, 1e-7);
  // The peak stays at the impulse site and decays.
  EXPECT_GT(out(8, 8), out(8, 12));
  EXPECT_LT(out(8, 8), 100.0);
  // Separable symmetric kernel => 4-fold symmetry around the impulse.
  EXPECT_NEAR(out(8, 6), out(8, 10), 1e-9);
  EXPECT_NEAR(out(6, 8), out(10, 8), 1e-9);
}

TEST(Stencil, RectangularGridsWork) {
  auto w = random_kernel(601);
  auto grid = random_grid(10, 22, 602);
  Counters ram;
  auto expect = stencil_direct(grid.view(), w, 3, ram);
  Device<Complex> dev({.m = 16});
  auto got = stencil_tcu(dev, grid.view(), w, 3);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 22; ++j) {
      ASSERT_NEAR(got(i, j), expect(i, j), 1e-8);
    }
  }
}

TEST(Stencil, KLargerThanGridStillCorrect) {
  // One k x k block covers the whole (padded) grid.
  auto w = random_kernel(611);
  auto grid = random_grid(5, 5, 612);
  Counters ram;
  auto expect = stencil_direct(grid.view(), w, 7, ram);
  Device<Complex> dev({.m = 16});
  auto got = stencil_tcu(dev, grid.view(), w, 7);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      ASSERT_NEAR(got(i, j), expect(i, j), 1e-8);
    }
  }
}

TEST(Stencil, DirectSweepChargesThetaNK) {
  Counters c;
  auto w = heat_kernel(0.1, 0.1);
  auto grid = random_grid(8, 8, 621);
  (void)stencil_direct(grid.view(), w, 5, c);
  // 9 MACs per cell of the (8+2k)^2 haloed grid per sweep, plus the final
  // crop of the 8x8 result.
  EXPECT_EQ(c.cpu_ops, 9u * 18u * 18u * 5u + 64u);
}

TEST(StencilCost, TracksTheorem8InK) {
  // Fix n, sweep k: cost ~ n log_m k + l log k grows slowly in k.
  const std::size_t dim = 32;
  std::vector<double> predicted, measured;
  for (std::size_t k : {2u, 4u, 8u, 16u}) {
    auto w = heat_kernel(0.05, 0.05);
    auto grid = random_grid(dim, dim, 700 + k);
    Device<Complex> dev({.m = 64, .latency = 10});
    (void)stencil_tcu(dev, grid.view(), w, k);
    predicted.push_back(tcu::costs::thm8_stencil(
        static_cast<double>(dim) * dim, static_cast<double>(k), 64.0, 10.0));
    measured.push_back(static_cast<double>(dev.counters().time()));
  }
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 8.0);
}

TEST(StencilCost, BeatsDirectSweepsForLargeK) {
  const std::size_t dim = 48, k = 24;
  auto w = heat_kernel(0.1, 0.1);
  auto grid = random_grid(dim, dim, 801);
  Counters ram;
  (void)stencil_direct(grid.view(), w, k, ram);
  Device<Complex> dev({.m = 256});
  (void)stencil_tcu(dev, grid.view(), w, k);
  EXPECT_LT(dev.counters().time(), ram.time());
}

}  // namespace
