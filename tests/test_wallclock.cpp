// Wall-clock measurement layer: Device::wall_ns() and the multicore
// speedup smoke. The simulated counters are the scientific output; the
// wall-clock numbers corroborate them — the backend seam means the same
// accounting choke point now times real GEMM execution, and a pool of p
// workers must finish the same schedule in less real time than one
// device whenever the machine actually has more than one core.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/device.hpp"
#include "core/pool.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

TEST(WallClock, DeviceAccumulatesAndResets) {
  Device<double> dev({.m = 16, .latency = 3});
  EXPECT_EQ(dev.wall_ns(), 0u);
  auto a = random_matrix(16, 16, 41);
  auto b = random_matrix(16, 16, 42);
  auto c = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
  // steady_clock around the backend run: some time must have passed.
  EXPECT_GT(dev.wall_ns(), 0u);
  const auto first = dev.wall_ns();
  (void)tcu::linalg::matmul_tcu(dev, a.view(), b.view());
  EXPECT_GT(dev.wall_ns(), first);  // accumulates across calls
  dev.reset();
  EXPECT_EQ(dev.wall_ns(), 0u);  // wall lives outside Counters but
                                 // follows the same reset discipline
}

TEST(WallClock, WallIsNotPartOfTheSimulatedCost) {
  // Two devices running the same schedule report identical Counters
  // regardless of how long the backend actually took — wall_ns is a
  // side channel, never an input to the model.
  Device<double> d1({.m = 16, .latency = 5});
  Device<double> d2({.m = 16, .latency = 5});
  auto a = random_matrix(32, 32, 43);
  auto b = random_matrix(32, 32, 44);
  (void)tcu::linalg::matmul_tcu(d1, a.view(), b.view());
  (void)tcu::linalg::matmul_tcu(d2, a.view(), b.view());
  EXPECT_EQ(d1.counters().time(), d2.counters().time());
  EXPECT_EQ(d1.counters().tensor_macs, d2.counters().tensor_macs);
}

TEST(WallClock, MulticorePoolBeatsSerialWall) {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores <= 1) {
    GTEST_SKIP() << "single-core runner: no wall-clock speedup to measure";
  }
  const std::size_t p = cores < 4 ? cores : 4;
  const std::size_t d = 512;
  const std::size_t m = 4096;  // sqrt(m) = 64 -> 8 output strips
  auto a = random_matrix(d, d, 45);
  auto b = random_matrix(d, d, 46);

  // Best-of-3 each way: the comparison is a smoke, not a benchmark, and
  // min-of-k is the standard defence against scheduler noise.
  double serial_best = 1e18;
  Device<double> dev({.m = m, .latency = 64});
  for (int r = 0; r < 3; ++r) {
    dev.reset();
    const auto t0 = std::chrono::steady_clock::now();
    auto c = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
    const auto t1 = std::chrono::steady_clock::now();
    ASSERT_NE(c.data(), nullptr);
    serial_best =
        std::min(serial_best, std::chrono::duration<double>(t1 - t0).count());
  }

  double pool_best = 1e18;
  DevicePool<double> pool(p, {.m = m, .latency = 64});
  for (int r = 0; r < 3; ++r) {
    pool.reset();
    const auto t0 = std::chrono::steady_clock::now();
    PoolExecutor<double> exec(pool);
    auto c = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
    const auto t1 = std::chrono::steady_clock::now();
    ASSERT_NE(c.data(), nullptr);
    pool_best =
        std::min(pool_best, std::chrono::duration<double>(t1 - t0).count());
  }

  EXPECT_LT(pool_best, serial_best)
      << "pool of " << p << " workers took " << pool_best
      << "s vs serial " << serial_best << "s on " << cores << " cores";

  // The per-unit wall accounting saw the same run: every worker that
  // executed strips accumulated backend time.
  std::uint64_t units_with_wall = 0;
  for (std::size_t u = 0; u < pool.size(); ++u) {
    if (pool.unit(u).wall_ns() > 0) ++units_with_wall;
  }
  EXPECT_GT(units_with_wall, 0u);
}

}  // namespace
