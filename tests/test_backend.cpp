// Backend equivalence: the GemmBackend seam must be invisible to the
// model. Every backend runs beneath the same Device::issue() accounting,
// so swapping sim -> micro (-> blas when compiled in) changes only the
// wall clock: integral and — because the micro kernel keeps the
// reference k-summation order with no FMA — floating outputs are
// bit-identical, and every Counters field matches exactly. BLAS
// reassociates, so its float/double outputs are bounded-ulp instead.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "check/contract.hpp"
#include "core/backend.hpp"
#include "core/device.hpp"
#include "core/pool.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"
#include "util/rng.hpp"

namespace {

using tcu::BackendKind;
using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

Matrix<std::int64_t> random_int_matrix(std::size_t r, std::size_t c,
                                       std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<std::int64_t> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform_int(-9, 9);
  }
  return m;
}

void expect_counters_equal(const Counters& got, const Counters& want,
                           const std::string& what) {
  EXPECT_EQ(got.tensor_calls, want.tensor_calls) << what;
  EXPECT_EQ(got.tensor_rows, want.tensor_rows) << what;
  EXPECT_EQ(got.tensor_time, want.tensor_time) << what;
  EXPECT_EQ(got.tensor_macs, want.tensor_macs) << what;
  EXPECT_EQ(got.latency_time, want.latency_time) << what;
  EXPECT_EQ(got.cpu_ops, want.cpu_ops) << what;
  EXPECT_EQ(got.resident_hits, want.resident_hits) << what;
  EXPECT_EQ(got.latency_saved, want.latency_saved) << what;
  EXPECT_EQ(got.evictions, want.evictions) << what;
  EXPECT_EQ(got.tagged_calls, want.tagged_calls) << what;
}

// ------------------------------------------------------------- selection

TEST(BackendSelect, ParserAndNamesRoundTrip) {
  EXPECT_EQ(tcu::parse_backend_kind("sim"), BackendKind::kSim);
  EXPECT_EQ(tcu::parse_backend_kind("micro"), BackendKind::kMicro);
  EXPECT_EQ(tcu::parse_backend_kind("blas"), BackendKind::kBlas);
  EXPECT_THROW(tcu::parse_backend_kind("cuda"), std::invalid_argument);
  EXPECT_THROW(tcu::parse_backend_kind(""), std::invalid_argument);
  EXPECT_STREQ(tcu::backend_kind_name(BackendKind::kSim), "sim");
  EXPECT_STREQ(tcu::backend_kind_name(BackendKind::kMicro), "micro");
  EXPECT_STREQ(tcu::backend_kind_name(BackendKind::kBlas), "blas");
}

TEST(BackendSelect, DefaultIsSimAndEnvOverrides) {
  unsetenv("TCU_BACKEND");
  {
    Device<double> dev({.m = 16});
    EXPECT_STREQ(dev.backend_name(), "sim");
  }
  setenv("TCU_BACKEND", "micro", 1);
  {
    Device<double> dev({.m = 16});
    EXPECT_STREQ(dev.backend_name(), "micro");
  }
  // An explicit kind wins over the env.
  {
    Device<double> dev({.m = 16, .backend = BackendKind::kSim});
    EXPECT_STREQ(dev.backend_name(), "sim");
  }
  setenv("TCU_BACKEND", "warp9", 1);
  EXPECT_THROW(Device<double>({.m = 16}), std::invalid_argument);
  unsetenv("TCU_BACKEND");
}

TEST(BackendSelect, UnavailableBlasFailsLoudly) {
  if (tcu::backend_available(BackendKind::kBlas)) {
    GTEST_SKIP() << "built with TCU_BLAS; unavailability path not reachable";
  }
  EXPECT_THROW(Device<double>({.m = 16, .backend = BackendKind::kBlas}),
               std::invalid_argument);
}

TEST(BackendSelect, EngineCtorStaysOnTheSeam) {
  Device<double> dev({.m = 16}, tcu::Device<double>::reference_engine());
  EXPECT_STREQ(dev.backend_name(), "engine");
  EXPECT_THROW(Device<double>({.m = 16}, tcu::Device<double>::Engine{}),
               std::invalid_argument);
}

// ------------------------------------------------- serial bit-identity

template <typename T>
void serial_identity_case(const Matrix<T>& a, const Matrix<T>& b) {
  Device<T> sim({.m = 64, .latency = 5, .backend = BackendKind::kSim});
  Device<T> micro({.m = 64, .latency = 5, .backend = BackendKind::kMicro});
  auto c_sim = tcu::linalg::matmul_tcu_resident(sim, a.view(), b.view());
  auto c_micro = tcu::linalg::matmul_tcu_resident(micro, a.view(), b.view());
  EXPECT_EQ(c_sim, c_micro);  // bitwise: micro keeps the k order, no FMA
  expect_counters_equal(micro.counters(), sim.counters(), "serial micro");
}

TEST(BackendEquivalence, MicroMatchesSimSerial) {
  // Aligned and ragged shapes: the ragged path exercises the micro
  // kernel's partial register blocks (n, s not multiples of kMR/kNR).
  serial_identity_case(random_matrix(32, 32, 501), random_matrix(32, 32, 502));
  serial_identity_case(random_matrix(40, 24, 503), random_matrix(24, 40, 504));
  serial_identity_case(random_int_matrix(32, 32, 505),
                       random_int_matrix(32, 32, 506));
  serial_identity_case(random_int_matrix(27, 19, 507),
                       random_int_matrix(19, 33, 508));
}

TEST(BackendEquivalence, MicroKernelTailsMatchReference) {
  // Drive the raw kernels at shapes that stress every tail: n and s off
  // the 4x8 register grid and off the AVX2 vector width.
  for (const auto [n, s] : {std::pair<std::size_t, std::size_t>{4, 4},
                            {13, 8},
                            {32, 16},
                            {37, 25}}) {
    auto a = random_matrix(n, s, 600 + n);
    auto b = random_matrix(s, s, 700 + s);
    Matrix<double> c_sim(n, s, 1.5), c_micro(n, s, 1.5);
    Counters unused;
    tcu::SimBackend<double> sim;
    tcu::MicroBackend<double> micro;
    for (const bool accumulate : {false, true}) {
      sim.run(a.view(), b.view(), c_sim.view(), accumulate, unused);
      micro.run(a.view(), b.view(), c_micro.view(), accumulate, unused);
      EXPECT_EQ(c_sim, c_micro) << "n=" << n << " s=" << s
                                << " accumulate=" << accumulate;
    }
  }
}

// --------------------------------------------------- pooled bit-identity

TEST(BackendEquivalence, MicroMatchesSimAcrossPoolSizes) {
  const auto a = random_matrix(64, 64, 801);
  const auto b = random_matrix(64, 64, 802);
  Device<double> serial({.m = 64, .latency = 7, .backend = BackendKind::kSim});
  // Untagged serial schedule: the pool's default dealing is untagged too,
  // so every Counters field (residency included) must match bitwise.
  const auto expect = tcu::linalg::matmul_tcu(serial, a.view(), b.view());

  for (const std::size_t p : {1u, 2u, 4u, 8u}) {
    DevicePool<double> pool(
        p, {.m = 64, .latency = 7, .backend = BackendKind::kMicro});
    tcu::check::ScopedCheck<double> check(pool);
    PoolExecutor<double> exec(pool);
    const auto got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
    EXPECT_EQ(got, expect) << "p=" << p;
    expect_counters_equal(pool.aggregate(), serial.counters(),
                          "micro pool p=" + std::to_string(p));
    check.verify();
  }
}

// ------------------------------------------------------------------ blas

#ifdef TCU_BLAS
TEST(BackendEquivalence, BlasBoundedUlpWithIdenticalCounters) {
  const auto a = random_matrix(48, 48, 901);
  const auto b = random_matrix(48, 48, 902);
  Device<double> sim({.m = 64, .latency = 5, .backend = BackendKind::kSim});
  Device<double> blas({.m = 64, .latency = 5, .backend = BackendKind::kBlas});
  const auto c_sim = tcu::linalg::matmul_tcu_resident(sim, a.view(), b.view());
  const auto c_blas =
      tcu::linalg::matmul_tcu_resident(blas, a.view(), b.view());
  ASSERT_EQ(c_sim.rows(), c_blas.rows());
  ASSERT_EQ(c_sim.cols(), c_blas.cols());
  for (std::size_t i = 0; i < c_sim.rows(); ++i) {
    for (std::size_t j = 0; j < c_sim.cols(); ++j) {
      // Reassociated dot products of length 48 over values in [-1, 1]:
      // a few ulps of 48; 1e-12 absolute is orders of magnitude of slack.
      EXPECT_NEAR(c_sim(i, j), c_blas(i, j), 1e-12) << i << "," << j;
    }
  }
  expect_counters_equal(blas.counters(), sim.counters(), "serial blas");
}

TEST(BackendEquivalence, BlasPoolCountersMatchAcrossP) {
  const auto a = random_matrix(64, 64, 903);
  const auto b = random_matrix(64, 64, 904);
  Device<double> serial({.m = 64, .latency = 7, .backend = BackendKind::kSim});
  const auto expect = tcu::linalg::matmul_tcu(serial, a.view(), b.view());
  for (const std::size_t p : {1u, 2u, 4u, 8u}) {
    DevicePool<double> pool(
        p, {.m = 64, .latency = 7, .backend = BackendKind::kBlas});
    tcu::check::ScopedCheck<double> check(pool);
    PoolExecutor<double> exec(pool);
    const auto got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
    ASSERT_EQ(got.rows(), expect.rows());
    for (std::size_t i = 0; i < got.rows(); ++i) {
      for (std::size_t j = 0; j < got.cols(); ++j) {
        EXPECT_NEAR(got(i, j), expect(i, j), 1e-12);
      }
    }
    expect_counters_equal(pool.aggregate(), serial.counters(),
                          "blas pool p=" + std::to_string(p));
    check.verify();
  }
}
#endif  // TCU_BLAS

}  // namespace
