// Tests for the remaining extensions: linear solve / determinant on the
// elimination kernels, polynomial multiplication via the DFT, and 1-D
// stencils.

#include <gtest/gtest.h>

#include "linalg/dense.hpp"
#include "linalg/solve.hpp"
#include "poly/poly_mul.hpp"
#include "stencil/stencil1d.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using Complex = tcu::dft::Complex;

// ------------------------------------------------------------- solve/det

Matrix<double> diag_dominant(std::size_t d, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> A(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < d; ++j) {
      A(i, j) = rng.uniform(-1, 1);
      row += std::abs(A(i, j));
    }
    A(i, i) = row + 1.0;
  }
  return A;
}

class SolveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolveSweep, ResidualIsSmall) {
  const std::size_t d = GetParam();
  auto A = diag_dominant(d, 900 + d);
  tcu::util::Xoshiro256 rng(901 + d);
  std::vector<double> b(d);
  for (auto& v : b) v = rng.uniform(-1, 1);
  Device<double> dev({.m = 16});
  auto x = tcu::linalg::solve_tcu(dev, A.view(), b);
  ASSERT_EQ(x.size(), d);
  for (std::size_t i = 0; i < d; ++i) {
    double acc = -b[i];
    for (std::size_t j = 0; j < d; ++j) acc += A(i, j) * x[j];
    EXPECT_NEAR(acc, 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 64));

TEST(Determinant, KnownValues) {
  Device<double> dev({.m = 16});
  // Identity.
  auto eye = Matrix<double>::identity(7);
  EXPECT_NEAR(tcu::linalg::determinant_tcu(dev, eye.view()), 1.0, 1e-10);
  // Diagonal.
  Matrix<double> diag(3, 3, 0.0);
  diag(0, 0) = 2;
  diag(1, 1) = -3;
  diag(2, 2) = 0.5;
  EXPECT_NEAR(tcu::linalg::determinant_tcu(dev, diag.view()), -3.0, 1e-10);
  // 2x2 closed form.
  Matrix<double> m(2, 2);
  m(0, 0) = 3;  m(0, 1) = 1;
  m(1, 0) = 2;  m(1, 1) = 5;
  EXPECT_NEAR(tcu::linalg::determinant_tcu(dev, m.view()), 13.0, 1e-10);
}

TEST(Determinant, ProductRule) {
  // det(AB) = det(A) det(B), with AB computed on the device.
  Device<double> dev({.m = 16});
  auto A = diag_dominant(12, 77);
  auto B = diag_dominant(12, 78);
  auto AB = tcu::linalg::matmul_tcu(dev, A.view(), B.view());
  const double da = tcu::linalg::determinant_tcu(dev, A.view());
  const double db = tcu::linalg::determinant_tcu(dev, B.view());
  const double dab = tcu::linalg::determinant_tcu(dev, AB.view());
  EXPECT_NEAR(dab / (da * db), 1.0, 1e-8);
}

// ------------------------------------------------------------- poly mult

class PolyMulSweep : public ::testing::TestWithParam<
                         std::tuple<std::size_t, std::size_t>> {};

TEST_P(PolyMulSweep, MatchesDirectConvolution) {
  const auto [da, db] = GetParam();
  tcu::util::Xoshiro256 rng(300 + da + db);
  std::vector<double> a(da), b(db);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  Counters ram;
  auto expect = tcu::poly::multiply_ram(a, b, ram);
  Device<Complex> dev({.m = 64});
  auto got = tcu::poly::multiply_tcu(dev, a, b);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], expect[i], 1e-8) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, PolyMulSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 5, 64, 333),
                       ::testing::Values<std::size_t>(1, 7, 128)));

TEST(PolyMul, BinomialSquare) {
  // (1 + x)^2 = 1 + 2x + x^2.
  Device<Complex> dev({.m = 16});
  auto got = tcu::poly::multiply_tcu(dev, {1, 1}, {1, 1});
  ASSERT_EQ(got.size(), 3u);
  EXPECT_NEAR(got[0], 1.0, 1e-10);
  EXPECT_NEAR(got[1], 2.0, 1e-10);
  EXPECT_NEAR(got[2], 1.0, 1e-10);
}

TEST(PolyMul, EmptyThrows) {
  Device<Complex> dev({.m = 16});
  Counters c;
  EXPECT_THROW((void)tcu::poly::multiply_tcu(dev, {}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)tcu::poly::multiply_ram({1.0}, {}, c),
               std::invalid_argument);
}

// ------------------------------------------------------------ 1-D stencil

class Stencil1dSweep : public ::testing::TestWithParam<
                           std::tuple<std::size_t, std::size_t>> {};

TEST_P(Stencil1dSweep, BlockedMatchesDirect) {
  const auto [n, k] = GetParam();
  tcu::util::Xoshiro256 rng(400 + n + k);
  std::vector<double> signal(n);
  for (auto& v : signal) v = rng.uniform(-1, 1);
  const std::array<double, 3> w{0.25, 0.5, 0.25};  // smoothing kernel
  Counters ram;
  auto expect = tcu::stencil::stencil1d_direct(signal, w, k, ram);
  Device<Complex> dev({.m = 16});
  auto got = tcu::stencil::stencil1d_tcu(dev, signal, w, k);
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(got[i], expect[i], 1e-8) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Stencil1dSweep,
    ::testing::Combine(::testing::Values<std::size_t>(5, 16, 50, 128),
                       ::testing::Values<std::size_t>(1, 2, 4, 9, 16)));

TEST(Stencil1d, WeightVectorIsBinomialForAveraging) {
  // The kernel {1/2, 0, 1/2} powered twice gives {1/4, 0, 1/2, 0, 1/4}.
  Device<Complex> dev({.m = 16});
  auto w2 = tcu::stencil::weight_vector_tcu(dev, {0.5, 0.0, 0.5}, 2);
  ASSERT_EQ(w2.size(), 5u);
  EXPECT_NEAR(w2[0], 0.25, 1e-10);
  EXPECT_NEAR(w2[1], 0.0, 1e-10);
  EXPECT_NEAR(w2[2], 0.5, 1e-10);
  EXPECT_NEAR(w2[3], 0.0, 1e-10);
  EXPECT_NEAR(w2[4], 0.25, 1e-10);
}

TEST(Stencil1d, MassConservation) {
  // Weights summing to 1: total signal mass is conserved on the infinite
  // line; with the signal centred and k small no mass escapes the window.
  Device<Complex> dev({.m = 16});
  std::vector<double> signal(64, 0.0);
  signal[32] = 10.0;
  auto out = tcu::stencil::stencil1d_tcu(dev, signal, {0.3, 0.4, 0.3}, 8);
  double total = 0;
  for (double v : out) total += v;
  EXPECT_NEAR(total, 10.0, 1e-8);
}

TEST(Stencil1d, ZeroKThrows) {
  Device<Complex> dev({.m = 16});
  Counters c;
  EXPECT_THROW((void)tcu::stencil::stencil1d_tcu(dev, {1.0}, {1, 1, 1}, 0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)tcu::stencil::stencil1d_direct({1.0}, {1, 1, 1}, 0, c),
      std::invalid_argument);
}

}  // namespace
