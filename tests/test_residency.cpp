// Multi-tile LRU residency and chain-aware affinity scheduling:
//   * TileCache semantics — LRU eviction order, hit promotion, capacity-1
//     degeneracy to the original single resident slot;
//   * Device accounting — untagged calls invalidate the whole set,
//     evictions are counted only under capacity pressure, weak-model
//     splits share their tile's residency;
//   * PoolExecutor chain dealing — 10-run determinism at p = 1/2/4/8,
//     full-chain residency once capacity covers a lane's working set
//     (each weight tile's load latency paid exactly once per lane),
//     LRU thrash below it, and the split_chains mode that re-parallelizes
//     deep chains at tile granularity with a CPU combine;
//   * evict_all — explicit invalidation on device and executor, and the
//     executor's re-anchoring after a worker exception.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "check/contract.hpp"
#include "core/device.hpp"
#include "core/pool.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;
using tcu::TileCache;

/// Integer-valued doubles: every sum/product below is exact in double, so
/// reassociating schedules (split_chains) still compare bit-for-bit.
Matrix<double> random_int_matrix(std::size_t r, std::size_t c,
                                 std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      out(i, j) = static_cast<double>(rng.uniform_int(-4, 4));
    }
  }
  return out;
}

TEST(TileCache, LruEvictionOrderAndHitPromotion) {
  TileCache cache(3);
  EXPECT_EQ(cache.capacity(), 3u);
  bool evicted = false;

  EXPECT_FALSE(cache.touch(1, &evicted));
  EXPECT_FALSE(evicted);
  EXPECT_FALSE(cache.touch(2, &evicted));
  EXPECT_FALSE(cache.touch(3, &evicted));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.entries(), (std::vector<std::uint64_t>{1, 2, 3}));

  // A hit promotes to MRU without eviction.
  EXPECT_TRUE(cache.touch(1, &evicted));
  EXPECT_FALSE(evicted);
  EXPECT_EQ(cache.entries(), (std::vector<std::uint64_t>{2, 3, 1}));
  EXPECT_EQ(cache.mru(), 1u);

  // A miss at capacity evicts the LRU entry (2, not the older-inserted 1).
  EXPECT_FALSE(cache.touch(4, &evicted));
  EXPECT_TRUE(evicted);
  EXPECT_EQ(cache.entries(), (std::vector<std::uint64_t>{3, 1, 4}));
  EXPECT_FALSE(cache.contains(2));

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.mru(), 0u);
}

TEST(TileCache, CapacityOneIsTheSingleSlotModel) {
  TileCache cache(1);
  EXPECT_FALSE(cache.touch(7));
  EXPECT_TRUE(cache.touch(7));
  bool evicted = false;
  EXPECT_FALSE(cache.touch(8, &evicted));  // displaces 7
  EXPECT_TRUE(evicted);
  EXPECT_FALSE(cache.contains(7));
  EXPECT_EQ(cache.mru(), 8u);
  EXPECT_THROW(TileCache(0), std::invalid_argument);
}

TEST(Residency, DeviceMembershipHitsAndEvictionCounts) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  Matrix<double> a(4, 4, 1.0), b(4, 4, 2.0), c(4, 4);

  dev.gemm_resident(1, a.view(), b.view(), c.view());  // load
  dev.gemm_resident(2, a.view(), b.view(), c.view());  // load, set {1, 2}
  EXPECT_EQ(dev.counters().latency_time, 10u);
  EXPECT_EQ(dev.counters().evictions, 0u);

  dev.gemm_resident(1, a.view(), b.view(), c.view());  // membership hit
  EXPECT_EQ(dev.counters().resident_hits, 1u);
  EXPECT_EQ(dev.counters().latency_saved, 5u);
  EXPECT_EQ(dev.counters().latency_time, 10u);
  EXPECT_EQ(dev.resident_key(), 1u);  // MRU after the hit

  dev.gemm_resident(3, a.view(), b.view(), c.view());  // evicts LRU = 2
  EXPECT_EQ(dev.counters().evictions, 1u);
  EXPECT_FALSE(dev.tile_cache().contains(2));
  EXPECT_TRUE(dev.tile_cache().contains(1));

  dev.gemm_resident(2, a.view(), b.view(), c.view());  // miss: evicts 1
  EXPECT_EQ(dev.counters().evictions, 2u);
  EXPECT_EQ(dev.counters().resident_hits, 1u);
}

TEST(Residency, UntaggedGemmInvalidatesTheWholeSet) {
  Device<double> dev({.m = 16, .latency = 3, .resident_tiles = 4});
  Matrix<double> a(4, 4, 1.0), b(4, 4, 2.0), c(4, 4);
  for (std::uint64_t key = 1; key <= 3; ++key) {
    dev.gemm_resident(key, a.view(), b.view(), c.view());
  }
  EXPECT_EQ(dev.tile_cache().size(), 3u);

  {
    // This drop is the behavior under test, not a tagging bug.
    tcu::check::AllowUntaggedClobber allow_clobber;
    dev.gemm(a.view(), b.view(), c.view());  // untagged: drops everything
  }
  EXPECT_EQ(dev.tile_cache().size(), 0u);
  EXPECT_EQ(dev.resident_key(), 0u);
  // No eviction counted: invalidation is not capacity pressure.
  EXPECT_EQ(dev.counters().evictions, 0u);

  // Every key must now reload and pay l again.
  const std::uint64_t before = dev.counters().latency_time;
  dev.gemm_resident(2, a.view(), b.view(), c.view());
  EXPECT_EQ(dev.counters().latency_time, before + 3u);
}

TEST(Residency, DeviceEvictAllDropsResidencyWithoutCountingEvictions) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 4});
  Matrix<double> a(4, 4, 1.0), b(4, 4, 2.0), c(4, 4);
  dev.gemm_resident(1, a.view(), b.view(), c.view());
  dev.gemm_resident(2, a.view(), b.view(), c.view());
  dev.evict_all();
  EXPECT_EQ(dev.tile_cache().size(), 0u);
  EXPECT_EQ(dev.counters().evictions, 0u);
  dev.gemm_resident(1, a.view(), b.view(), c.view());
  EXPECT_EQ(dev.counters().resident_hits, 0u);  // reload, not a hit
}

// Weak-model splits: the square calls of one tall gemm_resident share the
// tile, so only the first pays l — and with capacity > 1 a revisited tile
// is *all* hits, while the LRU set tracks multi-tile working sets.
TEST(Residency, WeakModelSplitHitAccounting) {
  Device<double> dev({.m = 16,
                      .latency = 7,
                      .allow_tall = false,
                      .resident_tiles = 2});
  const std::size_t s = dev.tile_dim();  // 4
  Matrix<double> a(3 * s, s, 1.0), b(s, s, 2.0), c(3 * s, s);

  dev.gemm_resident(1, a.view(), b.view(), c.view());  // 3 square calls
  EXPECT_EQ(dev.counters().tensor_calls, 3u);
  EXPECT_EQ(dev.counters().latency_time, 7u);   // one load for the split
  EXPECT_EQ(dev.counters().resident_hits, 2u);  // calls 2 and 3 share it
  EXPECT_EQ(dev.counters().latency_saved, 14u);

  dev.gemm_resident(2, a.view(), b.view(), c.view());  // second tile
  EXPECT_EQ(dev.counters().latency_time, 14u);
  EXPECT_EQ(dev.counters().evictions, 0u);  // both fit at c = 2

  dev.gemm_resident(1, a.view(), b.view(), c.view());  // fully resident
  EXPECT_EQ(dev.counters().latency_time, 14u);
  EXPECT_EQ(dev.counters().resident_hits, 2u + 2u + 3u);
  EXPECT_EQ(dev.counters().latency_saved, 7u * 7u);

  dev.gemm_resident(3, a.view(), b.view(), c.view());  // evicts LRU = 2
  EXPECT_EQ(dev.counters().evictions, 1u);
  EXPECT_FALSE(dev.tile_cache().contains(2));
}

/// Shared fixture shapes: B spans k = 4 tiles per strip (deep weights),
/// one strip per lane, repeated rounds through one persistent executor.
struct ChainSetup {
  static constexpr std::size_t kM = 64;        // s = 8
  static constexpr std::uint64_t kEll = 100;
  static constexpr int kRounds = 4;

  std::size_t s = 8;
  std::size_t strips;
  Matrix<double> a, b;

  explicit ChainSetup(std::size_t lanes)
      : strips(lanes),
        a(random_int_matrix(16, 4 * 8, 11)),
        b(random_int_matrix(4 * 8, lanes * 8, 12)) {}
};

// Capacity >= the chain length k: after the first round every strip's
// whole chain is resident on its lane, so each weight tile's load latency
// is paid exactly once per lane; capacities below k thrash (the classic
// LRU sequential-scan pathology) and save nothing — but outputs and
// everything except the latency split stay bit-identical throughout.
TEST(Residency, FullChainResidencyOnceCapacityCoversTheChain) {
  const std::size_t p = 2;
  ChainSetup setup(p);
  const std::size_t k = 4;

  // Serial untagged reference: reloads every tile every round.
  Device<double> single({.m = ChainSetup::kM, .latency = ChainSetup::kEll});
  Matrix<double> expect;
  for (int r = 0; r < ChainSetup::kRounds; ++r) {
    expect = tcu::linalg::matmul_tcu(single, setup.a.view(), setup.b.view());
  }

  for (std::size_t c : {1u, 2u, 4u, 8u}) {
    DevicePool<double> pool(p, {.m = ChainSetup::kM,
                                .latency = ChainSetup::kEll,
                                .resident_tiles = c});
    PoolExecutor<double> exec(pool);
    Matrix<double> got;
    for (int r = 0; r < ChainSetup::kRounds; ++r) {
      got = tcu::linalg::matmul_tcu_pool(exec, setup.a.view(), setup.b.view(),
                                         {.affinity = true});
    }
    EXPECT_EQ(got, expect) << "c=" << c;

    const Counters agg = pool.aggregate();
    EXPECT_EQ(agg.tensor_macs, single.counters().tensor_macs) << "c=" << c;
    EXPECT_EQ(agg.tensor_calls, single.counters().tensor_calls) << "c=" << c;
    // The latency split is exact: saved + paid = the reload-always total.
    EXPECT_EQ(agg.latency_time + agg.latency_saved,
              single.counters().latency_time)
        << "c=" << c;

    const std::uint64_t tiles = k * setup.strips;
    if (c >= k) {
      // Each tile loaded once ever; all later visits hit.
      EXPECT_EQ(agg.latency_time, tiles * ChainSetup::kEll) << "c=" << c;
      EXPECT_EQ(agg.resident_hits, tiles * (ChainSetup::kRounds - 1))
          << "c=" << c;
      EXPECT_EQ(agg.evictions, 0u) << "c=" << c;
    } else {
      // k > c: the chain cycles through the cache and never hits.
      EXPECT_EQ(agg.resident_hits, 0u) << "c=" << c;
      EXPECT_EQ(agg.latency_time, single.counters().latency_time)
          << "c=" << c;
      EXPECT_GT(agg.evictions, 0u) << "c=" << c;
    }
  }
}

// Chain-aware dealing is decided on the submitting thread against the
// mirrored caches, so per-unit counters and outputs cannot depend on OS
// interleaving: ten fresh runs at every p and c = 4 are identical.
TEST(Residency, ChainAwareDealingDeterministicAcrossRuns) {
  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    ChainSetup setup(8);  // 8 strips: divides every lane count
    std::vector<std::vector<std::uint64_t>> unit_times;
    std::vector<std::uint64_t> hit_counts;
    Matrix<double> first;
    for (int run = 0; run < 10; ++run) {
      DevicePool<double> pool(p, {.m = ChainSetup::kM,
                                  .latency = ChainSetup::kEll,
                                  .resident_tiles = 4});
      PoolExecutor<double> exec(pool);
      Matrix<double> got;
      for (int r = 0; r < ChainSetup::kRounds; ++r) {
        got = tcu::linalg::matmul_tcu_pool(exec, setup.a.view(),
                                           setup.b.view(),
                                           {.affinity = true});
      }
      if (run == 0) first = got;
      EXPECT_EQ(got, first) << "p=" << p << " run=" << run;
      std::vector<std::uint64_t> times;
      for (std::size_t u = 0; u < pool.size(); ++u) {
        times.push_back(pool.unit(u).counters().tensor_time);
      }
      unit_times.push_back(std::move(times));
      hit_counts.push_back(pool.aggregate().resident_hits);
    }
    for (int run = 1; run < 10; ++run) {
      EXPECT_EQ(unit_times[run], unit_times[0]) << "p=" << p;
      EXPECT_EQ(hit_counts[run], hit_counts[0]) << "p=" << p;
    }
  }
}

// Capacity 1 must reproduce the single-slot model: single-tile chains
// still hit across rounds (the PR 2 contract), while a k = 4 chain can
// only thrash — its entry tile is never the lane's exit tile.
TEST(Residency, CapacityOneMatchesSingleSlotModel) {
  const std::size_t p = 2;
  const std::uint64_t ell = ChainSetup::kEll;
  const int rounds = ChainSetup::kRounds;

  // Single-tile chains: B is one tile row -> k = 1, the PR 2 shape.
  {
    auto a = random_int_matrix(16, 8, 21);
    auto b = random_int_matrix(8, p * 8, 22);
    DevicePool<double> pool(p, {.m = 64, .latency = ell});  // default c = 1
    PoolExecutor<double> exec(pool);
    for (int r = 0; r < rounds; ++r) {
      (void)tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view(),
                                         {.affinity = true});
    }
    const Counters agg = pool.aggregate();
    EXPECT_EQ(agg.resident_hits,
              p * static_cast<std::uint64_t>(rounds - 1));
    EXPECT_EQ(agg.latency_time, p * ell);
    EXPECT_EQ(agg.latency_saved, p * (rounds - 1) * ell);
  }

  // k = 4 chains at c = 1: zero hits, exactly the single-slot behavior.
  {
    ChainSetup setup(p);
    DevicePool<double> pool(p, {.m = ChainSetup::kM,
                                .latency = ell,
                                .resident_tiles = 1});
    PoolExecutor<double> exec(pool);
    for (int r = 0; r < rounds; ++r) {
      (void)tcu::linalg::matmul_tcu_pool(exec, setup.a.view(),
                                         setup.b.view(), {.affinity = true});
    }
    EXPECT_EQ(pool.aggregate().resident_hits, 0u);
  }
}

// split_chains re-parallelizes a deep chain at tile granularity: each
// tile task is routed back to the lane holding its tile, so a lane's
// *share* of the chain only has to fit the cache (c >= k / p), not the
// whole chain. The CPU combine keeps outputs p- and run-deterministic —
// and exact here, because the inputs are integer-valued.
TEST(Residency, SplitChainsServeDeepWeightsBelowChainCapacity) {
  const std::size_t p = 2;
  const std::uint64_t ell = ChainSetup::kEll;
  const int rounds = ChainSetup::kRounds;
  const std::size_t k = 4;
  auto a = random_int_matrix(16, k * 8, 31);
  auto b = random_int_matrix(k * 8, 8, 32);  // ONE strip: k-deep chain

  // Reference: untagged serial product (integer inputs -> exact equality
  // even though the split combine reassociates the accumulation).
  Device<double> single({.m = 64, .latency = ell});
  Matrix<double> expect;
  for (int r = 0; r < rounds; ++r) {
    expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());
  }

  // Whole-chain dealing at c = 2 < k: one lane does everything (a single
  // strip cannot parallelize) and the chain thrashes its cache.
  DevicePool<double> pool_whole(p, {.m = 64,
                                    .latency = ell,
                                    .resident_tiles = 2});
  {
    PoolExecutor<double> exec(pool_whole);
    Matrix<double> got;
    for (int r = 0; r < rounds; ++r) {
      got = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view(),
                                         {.affinity = true});
    }
    EXPECT_EQ(got, expect);
    EXPECT_EQ(pool_whole.aggregate().resident_hits, 0u);
  }

  // Tile-split dealing at the same c = 2: each lane owns k / p = 2 tiles,
  // which fit, so every round after the first is all hits.
  DevicePool<double> pool_split(p, {.m = 64,
                                    .latency = ell,
                                    .resident_tiles = 2});
  {
    PoolExecutor<double> exec(pool_split);
    Matrix<double> got;
    for (int r = 0; r < rounds; ++r) {
      got = tcu::linalg::matmul_tcu_pool(
          exec, a.view(), b.view(),
          {.affinity = true, .split_chains = true});
    }
    EXPECT_EQ(got, expect);
    const Counters agg = pool_split.aggregate();
    EXPECT_EQ(agg.resident_hits, k * static_cast<std::uint64_t>(rounds - 1));
    EXPECT_EQ(agg.latency_time, k * ell);  // each tile loaded once ever
    EXPECT_EQ(agg.latency_saved, k * (rounds - 1) * ell);
    // Same tensor work as the fused schedule — the split only moves the
    // accumulate into the shared CPU combine.
    EXPECT_EQ(agg.tensor_calls, single.counters().tensor_calls);
    EXPECT_EQ(agg.tensor_macs, single.counters().tensor_macs);
    // And both lanes actually shared the chain.
    EXPECT_GT(pool_split.unit(0).counters().tensor_calls, 0u);
    EXPECT_GT(pool_split.unit(1).counters().tensor_calls, 0u);
  }

  // Split mode on one unit is the determinism baseline: same bits.
  DevicePool<double> pool_one(1, {.m = 64,
                                  .latency = ell,
                                  .resident_tiles = 2});
  {
    PoolExecutor<double> exec(pool_one);
    Matrix<double> got;
    for (int r = 0; r < rounds; ++r) {
      got = tcu::linalg::matmul_tcu_pool(
          exec, a.view(), b.view(),
          {.affinity = true, .split_chains = true});
    }
    EXPECT_EQ(got, expect);
    EXPECT_EQ(pool_one.aggregate().tensor_macs,
              pool_split.aggregate().tensor_macs);
    EXPECT_EQ(pool_one.aggregate().cpu_ops, pool_split.aggregate().cpu_ops);
  }
}

// Ragged shapes through the split path: padded partials and the CPU
// combine must agree with the untagged serial product exactly (integer
// inputs) for both tall and weak units.
TEST(Residency, SplitChainsHandleRaggedShapes) {
  auto a = random_int_matrix(13, 22, 41);
  auto b = random_int_matrix(22, 9, 42);
  for (bool tall : {true, false}) {
    typename Device<double>::Config cfg{
        .m = 16, .latency = 19, .allow_tall = tall, .resident_tiles = 2};
    Device<double> single(cfg);
    auto expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());
    DevicePool<double> pool(3, cfg);
    PoolExecutor<double> exec(pool);
    auto got = tcu::linalg::matmul_tcu_pool(
        exec, a.view(), b.view(), {.affinity = true, .split_chains = true});
    EXPECT_EQ(got, expect) << "tall=" << tall;
    EXPECT_EQ(pool.aggregate().tensor_macs, single.counters().tensor_macs)
        << "tall=" << tall;
    EXPECT_EQ(pool.aggregate().tensor_calls, single.counters().tensor_calls)
        << "tall=" << tall;
  }
}

TEST(Residency, ExecutorEvictAllForcesReloads) {
  const std::size_t p = 2;
  ChainSetup setup(p);
  DevicePool<double> pool(p, {.m = ChainSetup::kM,
                              .latency = ChainSetup::kEll,
                              .resident_tiles = 4});
  PoolExecutor<double> exec(pool);
  (void)tcu::linalg::matmul_tcu_pool(exec, setup.a.view(), setup.b.view(),
                                     {.affinity = true});
  (void)tcu::linalg::matmul_tcu_pool(exec, setup.a.view(), setup.b.view(),
                                     {.affinity = true});
  const std::uint64_t hits_before = pool.aggregate().resident_hits;
  EXPECT_GT(hits_before, 0u);

  exec.evict_all();
  for (std::size_t u = 0; u < pool.size(); ++u) {
    EXPECT_EQ(pool.unit(u).tile_cache().size(), 0u) << "unit " << u;
  }
  // The next round reloads everything: no new hits in it...
  (void)tcu::linalg::matmul_tcu_pool(exec, setup.a.view(), setup.b.view(),
                                     {.affinity = true});
  EXPECT_EQ(pool.aggregate().resident_hits, hits_before);
  // ...and the round after that is fully resident again.
  (void)tcu::linalg::matmul_tcu_pool(exec, setup.a.view(), setup.b.view(),
                                     {.affinity = true});
  EXPECT_GT(pool.aggregate().resident_hits, hits_before);
}

// A worker exception abandons its declared chain, so join() re-anchors
// prediction and unit state at the empty set (Device::evict_all) before
// rethrowing — the mirror can never drift from the units.
TEST(Residency, JoinEvictsAllResidencyAfterWorkerException) {
  DevicePool<double> pool(2, {.m = 16, .latency = 5, .resident_tiles = 4});
  PoolExecutor<double> exec(pool);
  Matrix<double> a(4, 4, 1.0), b(4, 4, 2.0), c(4, 4);
  exec.submit_affine(21, {77}, [&](Device<double>& unit) {
    unit.gemm_resident(77, a.view(), b.view(), c.view());
  });
  exec.join();
  EXPECT_TRUE(pool.unit(0).tile_cache().contains(77));

  exec.submit_affine(21, {78}, [](Device<double>&) {
    throw std::runtime_error("chain abandoned");
  });
  EXPECT_THROW(exec.join(), std::runtime_error);
  for (std::size_t u = 0; u < pool.size(); ++u) {
    EXPECT_EQ(pool.unit(u).tile_cache().size(), 0u) << "unit " << u;
  }
  // The executor still runs and predicts correctly after recovery: the
  // tile reloads (no phantom hit from the pre-exception state).
  exec.submit_affine(21, {77}, [&](Device<double>& unit) {
    unit.gemm_resident(77, a.view(), b.view(), c.view());
  });
  exec.join();
  EXPECT_EQ(pool.unit(0).counters().resident_hits, 0u);
}

// Mlp forwards through one executor: with capacity covering every
// layer's per-lane chain, repeated forwards pay each weight tile's load
// exactly once per lane (the deep-weights serving contract).
TEST(Residency, MlpForwardsKeepLayerChainsResident) {
  const std::size_t p = 2;
  const std::size_t s = 8;
  const std::uint64_t ell = 50;
  const int rounds = 3;
  tcu::util::Xoshiro256 rng(61);

  // Two layers: 4-tile chains (32 -> 16) then p-tile chains (16 -> 16).
  tcu::nn::Mlp mlp;
  {
    auto w1 = random_int_matrix(4 * s, p * s, 62);
    auto w2 = random_int_matrix(p * s, p * s, 63);
    std::vector<double> bias1(p * s), bias2(p * s);
    for (auto& v : bias1) v = static_cast<double>(rng.uniform_int(-2, 2));
    for (auto& v : bias2) v = static_cast<double>(rng.uniform_int(-2, 2));
    mlp.add_layer(tcu::nn::DenseLayer(w1, bias1));
    mlp.add_layer(tcu::nn::DenseLayer(w2, bias2));
  }
  auto batch = random_int_matrix(2 * s, 4 * s, 64);

  Device<double> single({.m = 64, .latency = ell});
  Matrix<double> expect;
  for (int r = 0; r < rounds; ++r) {
    expect = mlp.forward(single, batch.view());
  }

  // Per-lane working set: 4 tiles (layer 1) + p tiles (layer 2).
  const std::size_t c = 4 + p;
  DevicePool<double> pool(p, {.m = 64, .latency = ell, .resident_tiles = c});
  PoolExecutor<double> exec(pool);
  Matrix<double> got;
  for (int r = 0; r < rounds; ++r) {
    got = mlp.forward(exec, batch.view());
  }
  EXPECT_EQ(got, expect);

  const Counters agg = pool.aggregate();
  const std::uint64_t tiles = 4 * p + p * p;  // all weight tiles
  EXPECT_EQ(agg.latency_time, tiles * ell);  // once per lane, ever
  EXPECT_EQ(agg.resident_hits, tiles * (rounds - 1));
  EXPECT_EQ(agg.latency_saved, tiles * (rounds - 1) * ell);
  EXPECT_EQ(agg.tensor_macs, single.counters().tensor_macs);
  EXPECT_EQ(agg.latency_time + agg.latency_saved,
            single.counters().latency_time);
}

}  // namespace
