// The contract checker checked: every seeded violation class must be
// caught (wrong/over-declared/reordered chains, missing tags, untagged
// clobbers, conservation-law breaks, stale resident sets after worker
// failures, diverged join mirrors), and the real workloads — serial and
// pool, tall and weak, at p = 1/2/4/8 — must run green under a checker,
// proving the library itself honors the contracts it documents.
//
// `ScopedCheck` attaches explicitly, so this suite exercises the checker
// in every build; a -DTCU_CHECK=ON build additionally runs the *other*
// suites under auto-attached checkers.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "check/contract.hpp"
#include "core/device.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"
#include "linalg/batch.hpp"
#include "linalg/dense.hpp"
#include "linalg/gauss.hpp"
#include "linalg/parallel.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;
using tcu::check::AllowUntaggedClobber;
using tcu::check::ContractError;
using tcu::check::ScopedCheck;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out(i, j) = rng.uniform(-1, 1);
  }
  return out;
}

/// 4x4 operands for a device with m = 16 (s = 4).
struct SmallOps {
  Matrix<double> a{4, 4, 1.0};
  Matrix<double> b{4, 4, 2.0};
  Matrix<double> c{4, 4, 0.0};
};

// ---------------------------------------------------------- seeded bugs

TEST(CheckViolations, OverDeclaredChainIsCaught) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  const std::vector<std::uint64_t> chain{1, 2};
  check.unit(0).on_task_begin(&chain, 0, /*affine=*/true, /*hits_valid=*/true);
  dev.gemm_resident(1, ops.a.view(), ops.b.view(), ops.c.view());
  // The task ends having issued 1 of its 2 declared calls.
  EXPECT_THROW(check.unit(0).on_task_end(/*failed=*/false), ContractError);
}

TEST(CheckViolations, ReorderedChainIsCaught) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  const std::vector<std::uint64_t> chain{1, 2};
  check.unit(0).on_task_begin(&chain, 0, /*affine=*/true, /*hits_valid=*/true);
  dev.gemm_resident(2, ops.a.view(), ops.b.view(), ops.c.view());
  dev.gemm_resident(1, ops.a.view(), ops.b.view(), ops.c.view());
  EXPECT_THROW(check.unit(0).on_task_end(/*failed=*/false), ContractError);
}

TEST(CheckViolations, MissingTagInDeclaredTaskIsCaught) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  const std::vector<std::uint64_t> chain{1};
  check.unit(0).on_task_begin(&chain, 0, /*affine=*/true, /*hits_valid=*/true);
  dev.gemm(ops.a.view(), ops.b.view(), ops.c.view());  // should be tagged
  EXPECT_THROW(check.unit(0).on_task_end(/*failed=*/false), ContractError);
}

TEST(CheckViolations, TaggedCallInPlainSubmitTaskIsCaught) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  check.unit(0).on_task_begin(nullptr, 0, /*affine=*/false,
                              /*hits_valid=*/true);
  dev.gemm_resident(5, ops.a.view(), ops.b.view(), ops.c.view());
  EXPECT_THROW(check.unit(0).on_task_end(/*failed=*/false), ContractError);
}

TEST(CheckViolations, UntaggedClobberIsFlaggedUnlessAllowlisted) {
  SmallOps ops;
  {
    Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
    ScopedCheck<double> check(dev);
    dev.gemm_resident(7, ops.a.view(), ops.b.view(), ops.c.view());
    EXPECT_THROW(dev.gemm(ops.a.view(), ops.b.view(), ops.c.view()),
                 ContractError);
  }
  {
    Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
    ScopedCheck<double> check(dev);
    dev.gemm_resident(7, ops.a.view(), ops.b.view(), ops.c.view());
    AllowUntaggedClobber allow;
    EXPECT_NO_THROW(dev.gemm(ops.a.view(), ops.b.view(), ops.c.view()));
    check.verify();
  }
}

TEST(CheckViolations, DeclaredUntaggedEntrySanctionsTheClobber) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  const std::vector<std::uint64_t> chain{5, 0};  // 0 = declared untagged
  check.unit(0).on_task_begin(&chain, 0, /*affine=*/true, /*hits_valid=*/true);
  dev.gemm_resident(5, ops.a.view(), ops.b.view(), ops.c.view());
  EXPECT_NO_THROW(dev.gemm(ops.a.view(), ops.b.view(), ops.c.view()));
  EXPECT_NO_THROW(check.unit(0).on_task_end(/*failed=*/false));
  check.verify();
}

TEST(CheckViolations, ConservationLawBreakIsCaught) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  dev.gemm_resident(1, ops.a.view(), ops.b.view(), ops.c.view());
  // Corrupt the books: latency charged with no call to account for it.
  dev.counters().latency_time += 3;
  EXPECT_THROW(
      dev.gemm_resident(1, ops.a.view(), ops.b.view(), ops.c.view()),
      ContractError);
}

TEST(CheckViolations, PredictedHitsMismatchIsCaught) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  const std::vector<std::uint64_t> chain{1};
  // The dealer promises one hit, but the cache is cold: the task loads.
  check.unit(0).on_task_begin(&chain, /*predicted_hits=*/1, /*affine=*/true,
                              /*hits_valid=*/true);
  dev.gemm_resident(1, ops.a.view(), ops.b.view(), ops.c.view());
  EXPECT_THROW(check.unit(0).on_task_end(/*failed=*/false), ContractError);
}

TEST(CheckViolations, StaleResidentSetAfterFailedTaskIsCaught) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  const std::vector<std::uint64_t> chain{1, 2};
  check.unit(0).on_task_begin(&chain, 0, /*affine=*/true, /*hits_valid=*/true);
  dev.gemm_resident(1, ops.a.view(), ops.b.view(), ops.c.view());
  check.unit(0).on_task_end(/*failed=*/true);  // chain abandoned mid-flight
  // Any call before the evict_all re-anchor works on state the scheduler
  // can no longer vouch for.
  EXPECT_THROW(dev.gemm(ops.a.view(), ops.b.view(), ops.c.view()),
               ContractError);
}

TEST(CheckViolations, EvictAllReanchorsAfterFailedTask) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  const std::vector<std::uint64_t> chain{1};
  check.unit(0).on_task_begin(&chain, 0, /*affine=*/true, /*hits_valid=*/true);
  dev.gemm_resident(1, ops.a.view(), ops.b.view(), ops.c.view());
  check.unit(0).on_task_end(/*failed=*/true);
  dev.evict_all();  // what PoolExecutor::join does on the error path
  EXPECT_NO_THROW(dev.gemm(ops.a.view(), ops.b.view(), ops.c.view()));
  check.verify();
}

TEST(CheckViolations, DivergedJoinMirrorIsCaught) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  SmallOps ops;
  dev.gemm_resident(7, ops.a.view(), ops.b.view(), ops.c.view());
  EXPECT_NO_THROW(check.unit(0).on_join({7}));        // mirror agrees
  EXPECT_THROW(check.unit(0).on_join({123}), ContractError);
}

// ------------------------------------------------------- green workloads

TEST(CheckGreen, SerialResidencyWorkloadsPass) {
  // B is 8x12 = 6 tiles; capacity must hold all of them or LRU replays
  // the first pass's eviction order and the second pass never hits.
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 8});
  ScopedCheck<double> check(dev);
  auto a = random_matrix(12, 8, 1);
  auto b = random_matrix(8, 12, 2);
  auto r1 = tcu::linalg::matmul_tcu_resident(dev, a.view(), b.view());
  auto r2 = tcu::linalg::matmul_tcu_resident(dev, a.view(), b.view());
  EXPECT_EQ(r1, r2);
  EXPECT_GT(dev.counters().resident_hits, 0u);
  // The untagged baseline allowlists its own cold stream.
  (void)tcu::linalg::matmul_tcu(dev, a.view(), b.view());
  check.verify();
  EXPECT_GT(check.unit(0).checked_calls(), 0u);
}

TEST(CheckGreen, WeakModeSplitAccountingPasses) {
  Device<double> dev({.m = 16,
                      .latency = 5,
                      .allow_tall = false,
                      .resident_tiles = 2});
  ScopedCheck<double> check(dev);
  Matrix<double> a(12, 4, 1.0), b(4, 4, 2.0), c(12, 4, 0.0);
  dev.gemm_resident(9, a.view(), b.view(), c.view());  // load + 2 shared
  dev.gemm_resident(9, a.view(), b.view(), c.view());  // all 3 hit
  EXPECT_EQ(dev.counters().resident_hits, 5u);
  check.verify();
  EXPECT_EQ(check.unit(0).checked_calls(), 2u);
}

TEST(CheckGreen, SerialGaussAndMlpPass) {
  Device<double> dev({.m = 16, .latency = 6, .resident_tiles = 3});
  ScopedCheck<double> check(dev);

  auto x = random_matrix(16, 16, 3);
  tcu::linalg::ge_forward_tcu(dev, x.view());

  tcu::nn::Mlp mlp;
  mlp.add_layer(tcu::nn::DenseLayer(random_matrix(8, 8, 4),
                                    std::vector<double>(8, 0.1)));
  mlp.add_layer(tcu::nn::DenseLayer(random_matrix(8, 4, 5),
                                    std::vector<double>(4, 0.0)));
  auto batch = random_matrix(8, 8, 6);
  (void)mlp.forward(dev, batch.view());
  (void)mlp.forward(dev, batch.view());  // weight tiles hit on revisit
  check.verify();
  EXPECT_GT(check.unit(0).checked_calls(), 0u);
}

TEST(CheckGreen, SerialDftBothModesPass) {
  tcu::dft::CplxDevice dev({.m = 16, .latency = 5, .resident_tiles = 2});
  ScopedCheck<tcu::dft::Complex> check(dev);
  tcu::util::Xoshiro256 rng(7);
  Matrix<tcu::dft::Complex> batch(4, 12);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      batch(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  tcu::dft::dft_batch_tcu(dev, batch.view(), {.affinity = true});
  tcu::dft::idft_batch_tcu(dev, batch.view(), {.affinity = true});
  tcu::dft::dft_batch_tcu(dev, batch.view(), {});  // Theorem 7 untagged
  check.verify();
  EXPECT_GT(check.unit(0).checked_calls(), 0u);
}

TEST(CheckGreen, PoolWorkloadsPassAtEveryUnitCount) {
  auto a = random_matrix(24, 8, 11);
  auto b = random_matrix(8, 12, 12);
  std::vector<Matrix<double>> batch;
  for (int t = 0; t < 3; ++t) batch.push_back(random_matrix(8, 8, 20 + t));
  auto shared_b = random_matrix(8, 8, 30);

  for (const std::size_t p : {1u, 2u, 4u, 8u}) {
    DevicePool<double> pool(p, {.m = 16, .latency = 7, .resident_tiles = 2});
    ScopedCheck<double> check(pool);
    PoolExecutor<double> exec(pool);

    (void)tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view(),
                                       {.affinity = true});
    (void)tcu::linalg::matmul_tcu_pool(
        exec, a.view(), b.view(), {.affinity = true, .split_chains = true});
    (void)tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view(),
                                       {.affinity = false});
    (void)tcu::linalg::matmul_batch_shared_b(exec, batch, shared_b.view());

    auto x = random_matrix(16, 16, 40);
    tcu::linalg::ge_forward_tcu_pool(exec, x.view());

    check.verify();
    std::uint64_t calls = 0;
    for (std::size_t u = 0; u < check.size(); ++u) {
      calls += check.unit(u).checked_calls();
    }
    EXPECT_GT(calls, 0u) << "p=" << p;
  }
}

TEST(CheckGreen, PoolDftPassesAtEveryUnitCount) {
  tcu::util::Xoshiro256 rng(13);
  for (const std::size_t p : {1u, 2u, 4u, 8u}) {
    DevicePool<tcu::dft::Complex> pool(p, {.m = 16, .latency = 5,
                                      .resident_tiles = 2});
    ScopedCheck<tcu::dft::Complex> check(pool);
    PoolExecutor<tcu::dft::Complex> exec(pool);
    Matrix<tcu::dft::Complex> batch(8, 12);
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < 12; ++j) {
        batch(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
      }
    }
    tcu::dft::dft_batch_tcu(exec, batch.view(), {.affinity = true});
    tcu::dft::dft_batch_tcu(exec, batch.view(), {});
    check.verify();
  }
}

TEST(CheckGreen, ExecutorRecoversAfterWorkerFailure) {
  auto a = random_matrix(24, 8, 50);
  auto b = random_matrix(8, 12, 51);
  DevicePool<double> pool(2, {.m = 16, .latency = 7, .resident_tiles = 2});
  ScopedCheck<double> check(pool);
  PoolExecutor<double> exec(pool);

  (void)tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view(),
                                     {.affinity = true});
  exec.submit_affine(10, {99}, [](Device<double>&) {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(exec.join(), std::runtime_error);  // the original error

  // The error-path evict_all re-anchored every unit: later rounds green.
  (void)tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view(),
                                     {.affinity = true});
  check.verify();
}

// ----------------------------------------------------- TCU_CHECK builds

TEST(CheckAutoAttach, MatchesBuildConfiguration) {
  Device<double> dev({.m = 16, .latency = 5, .resident_tiles = 2});
#ifdef TCU_CHECK
  EXPECT_NE(dev.observer(), nullptr);
  SmallOps ops;
  dev.gemm_resident(7, ops.a.view(), ops.b.view(), ops.c.view());
  EXPECT_THROW(dev.gemm(ops.a.view(), ops.b.view(), ops.c.view()),
               ContractError);
#else
  EXPECT_EQ(dev.observer(), nullptr);
#endif
}

}  // namespace
