// Tests for the bignum substrate and §4.7 integer multiplication: BigInt
// arithmetic/IO, Theorem 9's banded-Toeplitz tensor product vs the RAM
// schoolbook, Karatsuba hybrids (Theorem 10), algebraic property checks,
// and the cost bounds.

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "intmul/mul.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::intmul::BigInt;
using tcu::intmul::mul_karatsuba_ram;
using tcu::intmul::mul_karatsuba_tcu;
using tcu::intmul::mul_schoolbook_ram;
using tcu::intmul::mul_schoolbook_tcu;

// ---------------------------------------------------------------- BigInt

TEST(BigInt, WordRoundTrip) {
  EXPECT_EQ(BigInt(0).to_hex(), "0");
  EXPECT_EQ(BigInt(0xdeadbeefULL).to_hex(), "deadbeef");
  EXPECT_EQ(BigInt(0x1234567890abcdefULL).to_hex(), "1234567890abcdef");
}

TEST(BigInt, HexRoundTrip) {
  const std::string hex = "f00dfacecafebabe0123456789abcdef42";
  EXPECT_EQ(BigInt::from_hex(hex).to_hex(), hex);
  EXPECT_EQ(BigInt::from_hex("000abc").to_hex(), "abc");
  EXPECT_EQ(BigInt::from_hex("0").to_hex(), "0");
  EXPECT_THROW((void)BigInt::from_hex(""), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigInt, BitLengthAndRandomBits) {
  tcu::util::Xoshiro256 rng(1);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  for (std::size_t bits : {1u, 7u, 16u, 17u, 250u, 1024u}) {
    EXPECT_EQ(BigInt::random_bits(bits, rng).bit_length(), bits);
  }
}

TEST(BigInt, AdditionAndSubtraction) {
  tcu::util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a64 =
        static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 62));
    const auto b64 =
        static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 62));
    const BigInt a(a64), b(b64);
    EXPECT_EQ((a + b).to_hex(), BigInt(a64 + b64).to_hex());
    if (a64 >= b64) {
      EXPECT_EQ((a - b).to_hex(), BigInt(a64 - b64).to_hex());
    } else {
      EXPECT_THROW((void)(a - b), std::invalid_argument);
    }
  }
}

TEST(BigInt, ComparisonOrdering) {
  EXPECT_LT(BigInt(5), BigInt(7));
  EXPECT_LT(BigInt(0xFFFF), BigInt(0x10000));
  EXPECT_EQ(BigInt(42), BigInt(42));
  EXPECT_GT(BigInt::from_hex("100000000"), BigInt(0xFFFFFFFFULL));
}

TEST(BigInt, LimbSplitsRecompose) {
  tcu::util::Xoshiro256 rng(3);
  const BigInt a = BigInt::random_bits(300, rng);
  for (std::size_t cut : {1u, 5u, 10u, 18u}) {
    const BigInt lo = a.low_limbs(cut);
    const BigInt hi = a.high_limbs(cut);
    EXPECT_EQ((hi.shifted_limbs(cut) + lo).to_hex(), a.to_hex());
  }
}

TEST(BigInt, FromLimbsValidates) {
  EXPECT_THROW((void)BigInt::from_limbs({0x10000}), std::invalid_argument);
  EXPECT_EQ(BigInt::from_limbs({0xbeef, 0xdead}).to_hex(), "deadbeef");
}

// ------------------------------------------------- schoolbook, small oracle

TEST(Schoolbook, SmallProductsMatchMachineArithmetic) {
  Counters c;
  Device<std::int64_t> dev({.m = 16});
  tcu::util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    const auto a64 = static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 31));
    const auto b64 = static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 31));
    const BigInt expect(a64 * b64);
    EXPECT_EQ(mul_schoolbook_ram(BigInt(a64), BigInt(b64), c).to_hex(),
              expect.to_hex());
    EXPECT_EQ(mul_schoolbook_tcu(dev, BigInt(a64), BigInt(b64)).to_hex(),
              expect.to_hex());
  }
}

TEST(Schoolbook, ZeroAndOne) {
  Counters c;
  Device<std::int64_t> dev({.m = 16});
  tcu::util::Xoshiro256 rng(5);
  const BigInt a = BigInt::random_bits(200, rng);
  EXPECT_TRUE(mul_schoolbook_tcu(dev, a, BigInt(0)).is_zero());
  EXPECT_TRUE(mul_schoolbook_tcu(dev, BigInt(0), a).is_zero());
  EXPECT_EQ(mul_schoolbook_tcu(dev, a, BigInt(1)).to_hex(), a.to_hex());
  EXPECT_EQ(mul_schoolbook_ram(a, BigInt(1), c).to_hex(), a.to_hex());
}

class IntMulSweep : public ::testing::TestWithParam<
                        std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(IntMulSweep, TcuMatchesRamSchoolbook) {
  const auto [bits_a, bits_b, m] = GetParam();
  tcu::util::Xoshiro256 rng(6000 + bits_a + bits_b + m);
  const BigInt a = BigInt::random_bits(bits_a, rng);
  const BigInt b = BigInt::random_bits(bits_b, rng);
  Counters c;
  Device<std::int64_t> dev({.m = m});
  EXPECT_EQ(mul_schoolbook_tcu(dev, a, b).to_hex(),
            mul_schoolbook_ram(a, b, c).to_hex());
}

TEST_P(IntMulSweep, KaratsubaTcuMatches) {
  const auto [bits_a, bits_b, m] = GetParam();
  tcu::util::Xoshiro256 rng(7000 + bits_a + bits_b + m);
  const BigInt a = BigInt::random_bits(bits_a, rng);
  const BigInt b = BigInt::random_bits(bits_b, rng);
  Counters c;
  Device<std::int64_t> dev({.m = m});
  EXPECT_EQ(mul_karatsuba_tcu(dev, a, b).to_hex(),
            mul_schoolbook_ram(a, b, c).to_hex());
}

INSTANTIATE_TEST_SUITE_P(
    BitLengths, IntMulSweep,
    ::testing::Combine(::testing::Values<std::size_t>(17, 128, 500, 2048),
                       ::testing::Values<std::size_t>(16, 333, 2048),
                       ::testing::Values<std::size_t>(16, 64)));

TEST(Karatsuba, RamMatchesSchoolbook) {
  tcu::util::Xoshiro256 rng(7);
  Counters c1, c2;
  const BigInt a = BigInt::random_bits(4096, rng);
  const BigInt b = BigInt::random_bits(4096, rng);
  EXPECT_EQ(mul_karatsuba_ram(a, b, c1, 8).to_hex(),
            mul_schoolbook_ram(a, b, c2).to_hex());
  // 4096 bits = 256 limbs >> threshold 8: Karatsuba must charge fewer ops.
  EXPECT_LT(c1.cpu_ops, c2.cpu_ops);
}

// -------------------------------------------------- algebraic properties

TEST(IntMulProperties, CommutativityAndDistributivity) {
  tcu::util::Xoshiro256 rng(8);
  Device<std::int64_t> dev({.m = 64});
  Counters c;
  for (int trial = 0; trial < 10; ++trial) {
    const BigInt a = BigInt::random_bits(100 + 31 * trial, rng);
    const BigInt b = BigInt::random_bits(77 + 17 * trial, rng);
    const BigInt d = BigInt::random_bits(50 + 13 * trial, rng);
    // a*b == b*a
    EXPECT_EQ(mul_schoolbook_tcu(dev, a, b).to_hex(),
              mul_schoolbook_tcu(dev, b, a).to_hex());
    // (a+b)*d == a*d + b*d
    const BigInt lhs = mul_schoolbook_tcu(dev, a + b, d);
    const BigInt rhs =
        mul_schoolbook_tcu(dev, a, d) + mul_schoolbook_tcu(dev, b, d);
    EXPECT_EQ(lhs.to_hex(), rhs.to_hex());
    (void)c;
  }
}

TEST(IntMulProperties, SquaresAreConsistentAcrossAlgorithms) {
  tcu::util::Xoshiro256 rng(9);
  Device<std::int64_t> dev({.m = 16});
  Counters c;
  const BigInt a = BigInt::random_bits(999, rng);
  const std::string expect = mul_schoolbook_ram(a, a, c).to_hex();
  EXPECT_EQ(mul_schoolbook_tcu(dev, a, a).to_hex(), expect);
  EXPECT_EQ(mul_karatsuba_tcu(dev, a, a).to_hex(), expect);
  EXPECT_EQ(mul_karatsuba_ram(a, a, c, 4).to_hex(), expect);
}

// ----------------------------------------------------------------- costs

TEST(IntMulCost, SchoolbookTracksTheorem9) {
  std::vector<double> predicted, measured;
  for (std::size_t bits : {4096u, 8192u, 16384u, 32768u}) {
    tcu::util::Xoshiro256 rng(90 + bits);
    const BigInt a = BigInt::random_bits(bits, rng);
    const BigInt b = BigInt::random_bits(bits, rng);
    Device<std::int64_t> dev({.m = 256, .latency = 20});
    (void)mul_schoolbook_tcu(dev, a, b);
    predicted.push_back(tcu::costs::thm9_intmul(
        static_cast<double>(bits), 64.0, 256.0, 20.0));
    measured.push_back(static_cast<double>(dev.counters().time()));
  }
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 2.5);
  auto fit = tcu::util::fit_power_law(predicted, measured);
  EXPECT_NEAR(fit.exponent, 1.0, 0.1);
}

TEST(IntMulCost, KaratsubaScalesWithLog3Exponent) {
  std::vector<double> bits_swept, times;
  for (std::size_t bits : {16384u, 32768u, 65536u, 131072u}) {
    tcu::util::Xoshiro256 rng(91 + bits);
    const BigInt a = BigInt::random_bits(bits, rng);
    const BigInt b = BigInt::random_bits(bits, rng);
    Device<std::int64_t> dev({.m = 64});
    (void)mul_karatsuba_tcu(dev, a, b);
    bits_swept.push_back(static_cast<double>(bits));
    times.push_back(static_cast<double>(dev.counters().tensor_time));
  }
  auto fit = tcu::util::fit_power_law(bits_swept, times);
  EXPECT_NEAR(fit.exponent, std::log2(3.0), 0.12);
}

TEST(IntMulCost, KaratsubaBeatsSchoolbookAtScale) {
  tcu::util::Xoshiro256 rng(92);
  const BigInt a = BigInt::random_bits(1 << 17, rng);
  const BigInt b = BigInt::random_bits(1 << 17, rng);
  Device<std::int64_t> dev1({.m = 64}), dev2({.m = 64});
  (void)mul_schoolbook_tcu(dev1, a, b);
  (void)mul_karatsuba_tcu(dev2, a, b);
  EXPECT_LT(dev2.counters().time(), dev1.counters().time());
}

}  // namespace
