// Tests for the extensions beyond the paper's core theorems: scan and
// reduction primitives (the [9]-style kernels), triangle counting via
// trace(A^3)/6, the limited-precision engine (§6 open question), and the
// multi-unit device pool (§3.1's deferred parallelism).

#include <gtest/gtest.h>

#include "core/pool.hpp"
#include "core/precision.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"
#include "linalg/parallel.hpp"
#include "primitives/primitives.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;

// ------------------------------------------------------------ primitives

class ScanSweep : public ::testing::TestWithParam<
                      std::tuple<std::size_t, std::size_t>> {};

TEST_P(ScanSweep, ReduceMatchesSequentialSum) {
  const auto [n, m] = GetParam();
  tcu::util::Xoshiro256 rng(100 + n + m);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.uniform(-1, 1);
  Counters ram;
  const double expect = tcu::primitives::reduce_ram(data, ram);
  Device<double> dev({.m = m});
  EXPECT_NEAR(tcu::primitives::reduce_tcu(dev, data), expect, 1e-9);
  if (n > 1) EXPECT_GT(dev.counters().tensor_calls, 0u);
}

TEST_P(ScanSweep, InclusiveScanMatchesSequential) {
  const auto [n, m] = GetParam();
  tcu::util::Xoshiro256 rng(200 + n + m);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.uniform(-1, 1);
  Counters ram;
  const auto expect = tcu::primitives::inclusive_scan_ram(data, ram);
  Device<double> dev({.m = m});
  const auto got = tcu::primitives::inclusive_scan_tcu(dev, data);
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(got[i], expect[i], 1e-8) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ScanSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 16, 100, 1000,
                                                      4096),
                       ::testing::Values<std::size_t>(16, 64)));

TEST(Primitives, EmptyInputs) {
  Device<double> dev({.m = 16});
  EXPECT_DOUBLE_EQ(tcu::primitives::reduce_tcu(dev, {}), 0.0);
  EXPECT_TRUE(tcu::primitives::inclusive_scan_tcu(dev, {}).empty());
}

TEST(Primitives, ReduceLatencyIsLogarithmic) {
  // n = s^3 collapses in 3 rounds: tensor calls O(log_m n), not O(n/m).
  Device<double> dev({.m = 256, .latency = 1000});
  std::vector<double> data(16 * 16 * 16, 1.0);
  EXPECT_NEAR(tcu::primitives::reduce_tcu(dev, data), 4096.0, 1e-9);
  EXPECT_LE(dev.counters().tensor_calls, 3u);
}

// ------------------------------------------------------------- triangles

TEST(Triangles, KnownSmallGraphs) {
  Device<std::int64_t> dev({.m = 16});
  // Triangle graph K3.
  auto k3 = tcu::graph::cycle_graph(3);
  EXPECT_EQ(tcu::graph::count_triangles_tcu(dev, k3.view()), 1u);
  // C4 has no triangles.
  auto c4 = tcu::graph::cycle_graph(4);
  EXPECT_EQ(tcu::graph::count_triangles_tcu(dev, c4.view()), 0u);
  // K4 has 4 triangles.
  Matrix<std::int64_t> k4(4, 4, 1);
  for (std::size_t i = 0; i < 4; ++i) k4(i, i) = 0;
  EXPECT_EQ(tcu::graph::count_triangles_tcu(dev, k4.view()), 4u);
}

class TriangleSweep : public ::testing::TestWithParam<
                          std::tuple<std::size_t, double>> {};

TEST_P(TriangleSweep, MatchesEnumerationOracle) {
  const auto [n, p] = GetParam();
  auto g = tcu::graph::random_connected_graph(n, p, 300 + n);
  Counters ram;
  const auto expect = tcu::graph::count_triangles_ram(g.view(), ram);
  Device<std::int64_t> dev({.m = 64});
  EXPECT_EQ(tcu::graph::count_triangles_tcu(dev, g.view()), expect);
  // Strassen path agrees too.
  Device<std::int64_t> dev7({.m = 64});
  EXPECT_EQ(tcu::graph::count_triangles_tcu(dev7, g.view(),
                                            {.use_strassen = true}),
            expect);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, TriangleSweep,
    ::testing::Combine(::testing::Values<std::size_t>(8, 24, 64),
                       ::testing::Values(0.1, 0.3, 0.8)));

TEST(Triangles, RejectsMalformedInput) {
  Device<std::int64_t> dev({.m = 16});
  Matrix<std::int64_t> loop(3, 3, 0);
  loop(0, 0) = 1;
  EXPECT_THROW((void)tcu::graph::count_triangles_tcu(dev, loop.view()),
               std::invalid_argument);
  Matrix<std::int64_t> asym(3, 3, 0);
  asym(0, 1) = 1;
  EXPECT_THROW((void)tcu::graph::count_triangles_tcu(dev, asym.view()),
               std::invalid_argument);
}

// -------------------------------------------------------------- precision

TEST(Precision, QuantizeBasics) {
  EXPECT_DOUBLE_EQ(tcu::quantize(0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(tcu::quantize(1.0, 10), 1.0);     // powers of two exact
  EXPECT_DOUBLE_EQ(tcu::quantize(-0.5, 4), -0.5);
  EXPECT_DOUBLE_EQ(tcu::quantize(3.141592653589793, 52), 3.141592653589793);
  EXPECT_THROW((void)tcu::quantize(1.5, 0), std::invalid_argument);
}

TEST(Precision, QuantizeRoundsToGrid) {
  // With 2 significand bits the representable values around 1 are
  // {1, 1.25, 1.5, 1.75, 2}: 1.3 rounds to 1.25, 1.4 to 1.5.
  EXPECT_DOUBLE_EQ(tcu::quantize(1.3, 2), 1.25);
  EXPECT_DOUBLE_EQ(tcu::quantize(1.4, 2), 1.5);
  EXPECT_DOUBLE_EQ(tcu::quantize(-1.3, 2), -1.25);
}

TEST(Precision, ErrorShrinksWithMantissaWidth) {
  tcu::util::Xoshiro256 rng(41);
  Matrix<double> a(64, 8), b(8, 8);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 8; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  Device<double> exact({.m = 64});
  auto reference = exact.multiply(a, b);
  double prev_err = 1e9;
  for (int bits : {6, 10, 17, 30}) {
    Device<double> quant({.m = 64},
                         tcu::limited_precision_engine(
                             {.input_mantissa = bits, .acc_mantissa = 30}));
    auto got = quant.multiply(a, b);
    const double err = tcu::max_abs_diff(got.view(), reference.view());
    EXPECT_LT(err, prev_err * 1.01) << "bits=" << bits;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);
}

TEST(Precision, Fp16InputErrorIsBounded) {
  // fp16 inputs / fp32 accumulate on unit-range data: error stays around
  // s * 2^-11 per output, far from catastrophic.
  tcu::util::Xoshiro256 rng(42);
  Matrix<double> a(128, 16), b(16, 16);
  for (std::size_t i = 0; i < 128; ++i) {
    for (std::size_t j = 0; j < 16; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  Device<double> exact({.m = 256});
  Device<double> tc_like({.m = 256}, tcu::limited_precision_engine({}));
  const double err = tcu::max_abs_diff(tc_like.multiply(a, b).view(),
                                       exact.multiply(a, b).view());
  EXPECT_GT(err, 0.0);       // precision is actually limited
  EXPECT_LT(err, 16 * 1e-2);  // but far from catastrophic
}

TEST(Precision, ModelCostUnchanged) {
  // Precision is an engine property; the (m, l) charge is identical.
  Matrix<double> a(32, 4, 1.0), b(4, 4, 1.0), c(32, 4);
  Device<double> exact({.m = 16, .latency = 7});
  Device<double> quant({.m = 16, .latency = 7},
                       tcu::limited_precision_engine({}));
  exact.gemm(a.view(), b.view(), c.view());
  quant.gemm(a.view(), b.view(), c.view());
  EXPECT_EQ(exact.counters().tensor_time, quant.counters().tensor_time);
}

// ------------------------------------------------------------ device pool

TEST(DevicePool, ConstructionAndNaming) {
  DevicePool<double> pool(4, {.m = 16, .name = "tc"});
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.unit(0).name(), "tc#0");
  EXPECT_EQ(pool.unit(3).name(), "tc#3");
  EXPECT_THROW(DevicePool<double>(0, {.m = 16}), std::invalid_argument);
}

TEST(DevicePool, LeastLoadedBalances) {
  DevicePool<double> pool(2, {.m = 16});
  Matrix<double> a(8, 4, 1.0), b(4, 4, 1.0), c(8, 4);
  pool.least_loaded().gemm(a.view(), b.view(), c.view());
  auto& second = pool.least_loaded();
  EXPECT_EQ(second.counters().tensor_calls, 0u);  // the other unit
  second.gemm(a.view(), b.view(), c.view());
  EXPECT_EQ(pool.unit(0).counters().tensor_calls, 1u);
  EXPECT_EQ(pool.unit(1).counters().tensor_calls, 1u);
}

TEST(DevicePool, MakespanIsMaxUnitPlusCpu) {
  DevicePool<double> pool(2, {.m = 16, .latency = 5});
  Matrix<double> a(16, 4, 1.0), b(4, 4, 1.0), c(16, 4);
  pool.unit(0).gemm(a.view(), b.view(), c.view());  // 64 + 5
  pool.charge_cpu(100);
  EXPECT_EQ(pool.makespan(), 64u + 5u + 100u);
  EXPECT_EQ(pool.total_tensor_time(), 64u + 5u);
}

class PoolSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSweep, ParallelMatmulMatchesSingleUnit) {
  const std::size_t units = GetParam();
  tcu::util::Xoshiro256 rng(50 + units);
  const std::size_t d = 64;
  Matrix<double> a(d, d), b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = rng.uniform(-1, 1);
      b(i, j) = rng.uniform(-1, 1);
    }
  }
  DevicePool<double> pool(units, {.m = 64, .latency = 16});
  auto c_pool = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
  Device<double> single({.m = 64, .latency = 16});
  auto c_single = tcu::linalg::matmul_tcu(single, a.view(), b.view());
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      ASSERT_NEAR(c_pool(i, j), c_single(i, j), 1e-12);
    }
  }
  // Strips divide evenly here: makespan ~ single time / units.
  const double speedup = static_cast<double>(single.counters().time()) /
                         static_cast<double>(pool.makespan());
  EXPECT_GT(speedup, 0.9 * static_cast<double>(units));
}

INSTANTIATE_TEST_SUITE_P(Units, PoolSweep, ::testing::Values(1, 2, 4, 8));

TEST(DevicePool, ParallelMatmulValidatesShapes) {
  DevicePool<double> pool(2, {.m = 16});
  // Ragged rows no longer throw: the final partial strip is padded in
  // worker-local scratch, bit-identical to the single-device path.
  Matrix<double> a(10, 8, 1.0), b(8, 8, 2.0);
  auto c_pool = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
  Device<double> single({.m = 16});
  auto c_single = tcu::linalg::matmul_tcu(single, a.view(), b.view());
  EXPECT_EQ(c_pool, c_single);
  // Genuine shape mismatches still throw.
  Matrix<double> c(8, 6), d(5, 8);
  EXPECT_THROW(
      (void)tcu::linalg::matmul_tcu_pool(pool, c.view(), d.view()),
      std::invalid_argument);
}

TEST(DevicePool, WorkConservation) {
  // Total tensor time across units equals the single-device total.
  tcu::util::Xoshiro256 rng(61);
  const std::size_t d = 128;
  Matrix<double> a(d, d, 1.0), b(d, d, 1.0);
  DevicePool<double> pool(4, {.m = 256, .latency = 3});
  (void)tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
  Device<double> single({.m = 256, .latency = 3});
  (void)tcu::linalg::matmul_tcu(single, a.view(), b.view());
  EXPECT_EQ(pool.total_tensor_time(), single.counters().tensor_time);
}

}  // namespace
