// Property-based tests: algebraic identities that must hold across the
// whole library, swept over model parameters (m, ℓ) and problem sizes
// with parameterized gtest. These complement the per-module oracles: an
// identity violated for *any* parameter combination indicates a model or
// accounting bug even when individual results look plausible.

#include <gtest/gtest.h>

#include <complex>

#include "core/precision.hpp"
#include "dft/dft.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "intmul/mul.hpp"
#include "linalg/dense.hpp"
#include "linalg/strassen.hpp"
#include "systolic/engine.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using Complex = std::complex<double>;

Matrix<double> rand_mat(std::size_t r, std::size_t c, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

void expect_close(const Matrix<double>& a, const Matrix<double>& b,
                  double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_NEAR(a(i, j), b(i, j), tol);
    }
  }
}

// --------------------------------------------------- matmul ring axioms

class MatmulAlgebra : public ::testing::TestWithParam<
                          std::tuple<std::size_t, std::size_t>> {};

TEST_P(MatmulAlgebra, Associativity) {
  const auto [m, d] = GetParam();
  Device<double> dev({.m = m});
  auto a = rand_mat(d, d, 10 + d + m);
  auto b = rand_mat(d, d, 20 + d + m);
  auto c = rand_mat(d, d, 30 + d + m);
  auto left = tcu::linalg::matmul_tcu(
      dev, tcu::linalg::matmul_tcu(dev, a.view(), b.view()).view(),
      c.view());
  auto right = tcu::linalg::matmul_tcu(
      dev, a.view(),
      tcu::linalg::matmul_tcu(dev, b.view(), c.view()).view());
  expect_close(left, right, 1e-9 * static_cast<double>(d));
}

TEST_P(MatmulAlgebra, DistributivityOverAddition) {
  const auto [m, d] = GetParam();
  Device<double> dev({.m = m});
  auto a = rand_mat(d, d, 40 + d + m);
  auto b = rand_mat(d, d, 50 + d + m);
  auto c = rand_mat(d, d, 60 + d + m);
  Matrix<double> bc(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) bc(i, j) = b(i, j) + c(i, j);
  }
  auto lhs = tcu::linalg::matmul_tcu(dev, a.view(), bc.view());
  auto ab = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
  auto ac = tcu::linalg::matmul_tcu(dev, a.view(), c.view());
  Matrix<double> rhs(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) rhs(i, j) = ab(i, j) + ac(i, j);
  }
  expect_close(lhs, rhs, 1e-10 * static_cast<double>(d));
}

TEST_P(MatmulAlgebra, TransposeAntiHomomorphism) {
  // (AB)^T = B^T A^T.
  const auto [m, d] = GetParam();
  Device<double> dev({.m = m});
  auto a = rand_mat(d, d, 70 + d + m);
  auto b = rand_mat(d, d, 80 + d + m);
  auto ab_t = tcu::transposed(
      tcu::linalg::matmul_tcu(dev, a.view(), b.view()).view());
  auto bt = tcu::transposed(b.view());
  auto at = tcu::transposed(a.view());
  auto bt_at = tcu::linalg::matmul_tcu(dev, bt.view(), at.view());
  expect_close(ab_t, bt_at, 1e-10 * static_cast<double>(d));
}

TEST_P(MatmulAlgebra, StrassenAgreesWithBlocked) {
  const auto [m, d] = GetParam();
  Device<double> dev1({.m = m}), dev2({.m = m});
  auto a = rand_mat(d, d, 90 + d + m);
  auto b = rand_mat(d, d, 95 + d + m);
  auto blocked = tcu::linalg::matmul_tcu(dev1, a.view(), b.view());
  auto strassen =
      tcu::linalg::matmul_strassen_tcu(dev2, a.view(), b.view(), {.p0 = 7});
  expect_close(blocked, strassen, 1e-9 * static_cast<double>(d));
}

INSTANTIATE_TEST_SUITE_P(
    Params, MatmulAlgebra,
    ::testing::Combine(::testing::Values<std::size_t>(16, 64, 256),
                       ::testing::Values<std::size_t>(24, 64)));

// ------------------------------------------------ engine interchangeability

class EngineEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineEquivalence, AllEnginesProduceSameProducts) {
  const std::size_t m = GetParam();
  const std::size_t s = tcu::exact_sqrt(m);
  auto a = rand_mat(3 * s + 1, s, 100 + m);
  auto b = rand_mat(s, s, 110 + m);
  Device<double> reference({.m = m});
  auto sys = tcu::systolic::make_systolic_device<double>({.m = m});
  Device<double> weak({.m = m, .allow_tall = false},
                      tcu::systolic::output_stationary_engine<double>());
  auto c1 = reference.multiply(a, b);
  auto c2 = sys.multiply(a, b);
  auto c3 = weak.multiply(a, b);
  expect_close(c1, c2, 1e-11);
  expect_close(c1, c3, 1e-11);
  // Cost charges agree between reference and systolic tall devices.
  EXPECT_EQ(reference.counters().tensor_time, sys.counters().tensor_time);
}

INSTANTIATE_TEST_SUITE_P(TileAreas, EngineEquivalence,
                         ::testing::Values(4, 16, 64, 256));

// ----------------------------------------------------- DFT signal theorems

class DftTheorems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DftTheorems, CircularShiftBecomesModulation) {
  // DFT(x shifted by s)[k] = DFT(x)[k] * exp(-2 pi i s k / n).
  const std::size_t n = GetParam();
  tcu::util::Xoshiro256 rng(200 + n);
  tcu::dft::CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const std::size_t shift = n / 3 + 1;
  tcu::dft::CVec shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = x[(i + shift) % n];
  Device<Complex> dev({.m = 64});
  auto fx = tcu::dft::dft_tcu(dev, x);
  auto fs = tcu::dft::dft_tcu(dev, shifted);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle = 2.0 * std::numbers::pi *
                         static_cast<double>((shift * k) % n) /
                         static_cast<double>(n);
    const Complex phase{std::cos(angle), std::sin(angle)};
    EXPECT_NEAR(std::abs(fs[k] - fx[k] * phase), 0.0, 1e-8);
  }
}

TEST_P(DftTheorems, ConvolutionTheoremHolds) {
  // DFT(a (*) b) = DFT(a) . DFT(b), checked through the public pieces.
  const std::size_t n = GetParam();
  tcu::util::Xoshiro256 rng(300 + n);
  tcu::dft::CVec a(n), b(n);
  for (auto& v : a) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto& v : b) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  Device<Complex> dev({.m = 64});
  auto conv = tcu::dft::circular_convolve_tcu(dev, a, b);
  auto f_conv = tcu::dft::dft_tcu(dev, conv);
  auto fa = tcu::dft::dft_tcu(dev, a);
  auto fb = tcu::dft::dft_tcu(dev, b);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(f_conv[k] - fa[k] * fb[k]), 0.0, 1e-7);
  }
}

TEST_P(DftTheorems, ConjugateSymmetryForRealSignals) {
  const std::size_t n = GetParam();
  tcu::util::Xoshiro256 rng(400 + n);
  tcu::dft::CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), 0.0};
  Device<Complex> dev({.m = 64});
  auto fx = tcu::dft::dft_tcu(dev, x);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(std::abs(fx[k] - std::conj(fx[n - k])), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, DftTheorems,
                         ::testing::Values(12, 32, 63, 128));

// -------------------------------------------------------- graph properties

class ClosureProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClosureProperties, ClosureIsIdempotent) {
  const std::size_t n = GetParam();
  auto adj = tcu::graph::random_digraph(n, 0.08, 500 + n);
  Device<std::int64_t> dev({.m = 16});
  auto once = adj;
  tcu::graph::closure_tcu(dev, once.view());
  auto twice = once;
  tcu::graph::closure_tcu(dev, twice.view());
  EXPECT_TRUE(once == twice);
}

TEST_P(ClosureProperties, ClosureIsMonotone) {
  // Adding an edge can only add reachable pairs.
  const std::size_t n = GetParam();
  auto adj = tcu::graph::random_digraph(n, 0.05, 600 + n);
  auto more = adj;
  more(0, n - 1) = 1;
  Device<std::int64_t> dev({.m = 16});
  auto c1 = adj;
  auto c2 = more;
  tcu::graph::closure_tcu(dev, c1.view());
  tcu::graph::closure_tcu(dev, c2.view());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(c2(i, j), c1(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClosureProperties,
                         ::testing::Values(6, 20, 40));

// ------------------------------------------------------- bignum invariants

TEST(BigIntProperties, MultiplicationLengthAndMonotonicity) {
  tcu::util::Xoshiro256 rng(700);
  Device<std::int64_t> dev({.m = 64});
  for (int trial = 0; trial < 15; ++trial) {
    const auto bits_a = static_cast<std::size_t>(rng.uniform_int(2, 700));
    const auto bits_b = static_cast<std::size_t>(rng.uniform_int(2, 700));
    const auto a = tcu::intmul::BigInt::random_bits(bits_a, rng);
    const auto b = tcu::intmul::BigInt::random_bits(bits_b, rng);
    const auto p = tcu::intmul::mul_schoolbook_tcu(dev, a, b);
    // bitlen(ab) in {bitlen a + bitlen b - 1, bitlen a + bitlen b}.
    EXPECT_GE(p.bit_length(), bits_a + bits_b - 1);
    EXPECT_LE(p.bit_length(), bits_a + bits_b);
    // ab >= a and ab >= b for b, a >= 1.
    EXPECT_GE(p, a);
    EXPECT_GE(p, b);
  }
}

TEST(BigIntProperties, KaratsubaIdentityCrossCheck) {
  // (a + b)^2 = a^2 + 2ab + b^2 across algorithms.
  tcu::util::Xoshiro256 rng(701);
  Device<std::int64_t> dev({.m = 64});
  const auto a = tcu::intmul::BigInt::random_bits(500, rng);
  const auto b = tcu::intmul::BigInt::random_bits(460, rng);
  const auto sum = a + b;
  const auto lhs = tcu::intmul::mul_karatsuba_tcu(dev, sum, sum);
  const auto ab = tcu::intmul::mul_schoolbook_tcu(dev, a, b);
  const auto rhs = tcu::intmul::mul_karatsuba_tcu(dev, a, a) + ab + ab +
                   tcu::intmul::mul_schoolbook_tcu(dev, b, b);
  EXPECT_EQ(lhs.to_hex(), rhs.to_hex());
}

// -------------------------------------------------- quantization properties

TEST(QuantizeProperties, IdempotentAndMonotone) {
  tcu::util::Xoshiro256 rng(800);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = rng.uniform(-1000, 1000);
    const int bits = static_cast<int>(rng.uniform_int(1, 40));
    const double q = tcu::quantize(x, bits);
    // Idempotence: quantizing a representable value is a no-op.
    EXPECT_EQ(tcu::quantize(q, bits), q);
    // Widening never loses what narrowing kept.
    EXPECT_EQ(tcu::quantize(q, bits + 5), q);
    // Relative error bounded by the mantissa step.
    if (x != 0.0) {
      EXPECT_LE(std::abs(q - x) / std::abs(x), std::ldexp(1.0, -bits - 1));
    }
  }
}

TEST(QuantizeProperties, PreservesSignAndOrder) {
  tcu::util::Xoshiro256 rng(801);
  for (int trial = 0; trial < 100; ++trial) {
    const double x = rng.uniform(-10, 10);
    const double y = rng.uniform(-10, 10);
    const double qx = tcu::quantize(x, 8);
    const double qy = tcu::quantize(y, 8);
    if (x > 0) EXPECT_GE(qx, 0.0);
    if (x < 0) EXPECT_LE(qx, 0.0);
    if (qx > qy) EXPECT_GT(x, y);  // rounding is monotone
  }
}

// ----------------------------------------------- cost-accounting invariants

class CostInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CostInvariants, TimeDecomposesExactly) {
  const std::size_t m = GetParam();
  Device<double> dev({.m = m, .latency = 11});
  auto a = rand_mat(40, 40, 900 + m);
  auto b = rand_mat(40, 40, 910 + m);
  (void)tcu::linalg::matmul_tcu(dev, a.view(), b.view());
  const auto& c = dev.counters();
  EXPECT_EQ(c.time(), c.tensor_time + c.cpu_ops);
  EXPECT_EQ(c.latency_time, c.tensor_calls * 11u);
  EXPECT_GE(c.tensor_time, c.latency_time);
  // MACs = sum of n*m over calls = tensor_rows * m.
  EXPECT_EQ(c.tensor_macs, c.tensor_rows * m);
}

TEST_P(CostInvariants, WeakModeNeverCheaper) {
  const std::size_t m = GetParam();
  Device<double> tall({.m = m, .latency = 9});
  Device<double> weak({.m = m, .latency = 9, .allow_tall = false});
  auto a = rand_mat(48, 48, 920 + m);
  auto b = rand_mat(48, 48, 930 + m);
  (void)tcu::linalg::matmul_tcu(tall, a.view(), b.view());
  (void)tcu::linalg::matmul_tcu(weak, a.view(), b.view());
  EXPECT_LE(tall.counters().time(), weak.counters().time());
}

INSTANTIATE_TEST_SUITE_P(TileAreas, CostInvariants,
                         ::testing::Values(4, 16, 64, 144, 256));

}  // namespace
