// Unit tests for the core module: matrices/views, counters, the Device
// cost contract (tall vs weak charging, latency accounting, shape
// validation), traces, and the complex-via-real GEMM wrappers.

#include <gtest/gtest.h>

#include <complex>

#include "core/complex_gemm.hpp"
#include "core/costs.hpp"
#include "core/device.hpp"
#include "core/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::ConstMatrixView;
using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using tcu::MatrixView;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             tcu::util::Xoshiro256& rng) {
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out(i, j) = rng.uniform(-1, 1);
  }
  return out;
}

Matrix<double> reference_product(const Matrix<double>& a,
                                 const Matrix<double>& b) {
  Matrix<double> c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += a(i, k) * b(k, j);
      }
    }
  }
  return c;
}

// ---------------------------------------------------------------- Matrix

TEST(Matrix, ConstructionAndIndexing) {
  Matrix<int> m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m(2, 3), 7);
  m(1, 2) = -5;
  EXPECT_EQ(m(1, 2), -5);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  auto eye = Matrix<double>::identity(5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, SubviewSharesStorage) {
  Matrix<int> m(4, 4, 0);
  auto v = m.subview(1, 1, 2, 2);
  v(0, 0) = 42;
  EXPECT_EQ(m(1, 1), 42);
  EXPECT_EQ(v.stride, 4u);
}

TEST(Matrix, SubviewOutOfRangeThrows) {
  Matrix<int> m(4, 4, 0);
  EXPECT_THROW((void)m.subview(2, 2, 3, 1), std::out_of_range);
  EXPECT_THROW((void)m.subview(0, 3, 1, 2), std::out_of_range);
}

TEST(Matrix, CopyAndMaterializeRoundTrip) {
  tcu::util::Xoshiro256 rng(1);
  auto m = random_matrix(5, 7, rng);
  auto copy = tcu::materialize(ConstMatrixView<double>(m.view()));
  EXPECT_TRUE(m == copy);
}

TEST(Matrix, TransposedIsInvolution) {
  tcu::util::Xoshiro256 rng(2);
  auto m = random_matrix(3, 6, rng);
  auto tt = tcu::transposed(tcu::transposed(m.view()).view());
  EXPECT_TRUE(m == tt);
}

TEST(Matrix, EqualityDetectsDifferences) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_TRUE(a == b);
  b(1, 1) = 2;
  EXPECT_FALSE(a == b);
}

// -------------------------------------------------------------- Counters

TEST(Counters, TensorChargeFormula) {
  Counters c;
  c.charge_tensor_call(/*n=*/100, /*sqrt_m=*/16, /*latency=*/50);
  EXPECT_EQ(c.tensor_calls, 1u);
  EXPECT_EQ(c.tensor_rows, 100u);
  EXPECT_EQ(c.tensor_time, 100u * 16u + 50u);
  EXPECT_EQ(c.tensor_macs, 100u * 256u);
  EXPECT_EQ(c.latency_time, 50u);
  EXPECT_EQ(c.time(), c.tensor_time);
}

TEST(Counters, TimeSumsCpuAndTensor) {
  Counters c;
  c.charge_cpu(123);
  c.charge_tensor_call(16, 16, 10);
  EXPECT_EQ(c.time(), 123u + 16u * 16u + 10u);
}

TEST(Counters, AccumulateOperator) {
  Counters a, b;
  a.charge_cpu(5);
  b.charge_tensor_call(16, 4, 1);
  a += b;
  EXPECT_EQ(a.cpu_ops, 5u);
  EXPECT_EQ(a.tensor_calls, 1u);
  EXPECT_EQ(a.tensor_time, 16u * 4u + 1u);
}

TEST(Counters, ResetClearsEverything) {
  Counters c;
  c.charge_cpu(9);
  c.charge_tensor_call(8, 8, 2);
  c.reset();
  EXPECT_EQ(c.time(), 0u);
  EXPECT_EQ(c.tensor_calls, 0u);
}

// ---------------------------------------------------------------- Device

TEST(Device, RejectsNonSquareM) {
  EXPECT_THROW(Device<double>({.m = 12}), std::invalid_argument);
  EXPECT_THROW(Device<double>({.m = 0}), std::invalid_argument);
}

TEST(Device, TileDimIsSqrtM) {
  Device<double> dev({.m = 256});
  EXPECT_EQ(dev.tile_dim(), 16u);
  EXPECT_EQ(dev.m(), 256u);
}

TEST(Device, GemmMatchesReference) {
  tcu::util::Xoshiro256 rng(3);
  Device<double> dev({.m = 64});
  auto a = random_matrix(24, 8, rng);
  auto b = random_matrix(8, 8, rng);
  auto c = dev.multiply(a, b);
  auto expect = reference_product(a, b);
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c(i, j), expect(i, j), 1e-12);
    }
  }
}

TEST(Device, GemmAccumulates) {
  tcu::util::Xoshiro256 rng(4);
  Device<double> dev({.m = 16});
  auto a = random_matrix(4, 4, rng);
  auto b = random_matrix(4, 4, rng);
  Matrix<double> c(4, 4, 1.0);
  dev.gemm(a.view(), b.view(), c.view(), /*accumulate=*/true);
  auto expect = reference_product(a, b);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(c(i, j), expect(i, j) + 1.0, 1e-12);
    }
  }
}

TEST(Device, TallCallChargesOnce) {
  Device<double> dev({.m = 16, .latency = 100});
  Matrix<double> a(40, 4, 1.0), b(4, 4, 1.0), c(40, 4);
  dev.gemm(a.view(), b.view(), c.view());
  EXPECT_EQ(dev.counters().tensor_calls, 1u);
  EXPECT_EQ(dev.counters().tensor_time, 40u * 4u + 100u);
  EXPECT_EQ(dev.counters().latency_time, 100u);
}

TEST(Device, WeakModeSplitsTallCalls) {
  Device<double> dev({.m = 16, .latency = 100, .allow_tall = false});
  Matrix<double> a(40, 4, 1.0), b(4, 4, 1.0), c(40, 4);
  dev.gemm(a.view(), b.view(), c.view());
  EXPECT_EQ(dev.counters().tensor_calls, 10u);
  EXPECT_EQ(dev.counters().tensor_time, 10u * (16u + 100u));
}

TEST(Device, WeakModeMatchesTallResults) {
  tcu::util::Xoshiro256 rng(5);
  Device<double> tall({.m = 64});
  Device<double> weak({.m = 64, .allow_tall = false});
  auto a = random_matrix(32, 8, rng);
  auto b = random_matrix(8, 8, rng);
  auto c1 = tall.multiply(a, b);
  auto c2 = weak.multiply(a, b);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(c1(i, j), c2(i, j));
    }
  }
}

TEST(Device, ShortOperandChargedAsFullTile) {
  Device<double> dev({.m = 64, .latency = 7});
  Matrix<double> a(3, 8, 1.0), b(8, 8, 1.0), c(3, 8);
  dev.gemm(a.view(), b.view(), c.view());
  // The pipeline depth cannot be shortened: charged as an 8-row call.
  EXPECT_EQ(dev.counters().tensor_time, 8u * 8u + 7u);
}

TEST(Device, ShapeValidation) {
  Device<double> dev({.m = 16});
  Matrix<double> a(8, 4), b(4, 4), c(8, 4);
  Matrix<double> bad_b(3, 4), bad_a(8, 3), bad_c(7, 4);
  EXPECT_THROW(dev.gemm(a.view(), bad_b.view(), c.view()),
               std::invalid_argument);
  EXPECT_THROW(dev.gemm(bad_a.view(), b.view(), c.view()),
               std::invalid_argument);
  EXPECT_THROW(dev.gemm(a.view(), b.view(), bad_c.view()),
               std::invalid_argument);
}

TEST(Device, TraceRecordsShapes) {
  Device<double> dev({.m = 16});
  dev.enable_trace();
  Matrix<double> a(12, 4, 1.0), b(4, 4, 1.0), c(12, 4);
  dev.gemm(a.view(), b.view(), c.view());
  dev.gemm(a.view(), b.view(), c.view(), true);
  ASSERT_EQ(dev.trace().size(), 2u);
  EXPECT_EQ(dev.trace().ops[0].n, 12u);
  EXPECT_EQ(dev.trace().ops[0].s, 4u);
  EXPECT_FALSE(dev.trace().ops[0].accumulate);
  EXPECT_TRUE(dev.trace().ops[1].accumulate);
  EXPECT_EQ(dev.trace().words_touched(), 2u * (2u * 12u * 4u + 16u));
}

TEST(Device, ResetClearsCountersAndTrace) {
  Device<double> dev({.m = 16});
  dev.enable_trace();
  Matrix<double> a(4, 4, 1.0), b(4, 4, 1.0), c(4, 4);
  dev.gemm(a.view(), b.view(), c.view());
  dev.reset();
  EXPECT_EQ(dev.counters().time(), 0u);
  EXPECT_EQ(dev.trace().size(), 0u);
}

TEST(Device, IntegerEngineIsExact) {
  Device<std::int64_t> dev({.m = 16});
  Matrix<std::int64_t> a(8, 4), b(4, 4);
  tcu::util::Xoshiro256 rng(6);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform_int(-100, 100);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b(i, j) = rng.uniform_int(-100, 100);
  }
  auto c = dev.multiply(a, b);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < 4; ++k) acc += a(i, k) * b(k, j);
      EXPECT_EQ(c(i, j), acc);
    }
  }
}

TEST(TensorCallCost, MatchesChargeFormula) {
  EXPECT_EQ(tcu::tensor_call_cost(100, 256, 5), 100u * 16u + 5u);
  EXPECT_EQ(tcu::tensor_call_cost(2, 256, 5), 16u * 16u + 5u);
}

// ------------------------------------------------- integer square roots

TEST(ExactSqrt, SmallValues) {
  EXPECT_EQ(tcu::exact_sqrt(0), 0u);
  EXPECT_EQ(tcu::exact_sqrt(1), 1u);
  EXPECT_EQ(tcu::exact_sqrt(4), 2u);
  EXPECT_EQ(tcu::exact_sqrt(256), 16u);
  EXPECT_THROW(tcu::exact_sqrt(2), std::invalid_argument);
  EXPECT_THROW(tcu::exact_sqrt(255), std::invalid_argument);
  EXPECT_THROW(tcu::exact_sqrt(257), std::invalid_argument);
}

// Above 2^52 the double conversion is lossy, so a float sqrt round-trip is
// only as exact as the platform's libm; the integer Newton iteration must
// classify these boundaries correctly regardless.
TEST(ExactSqrt, PerfectSquaresAboveDoublePrecision) {
  const std::uint64_t roots[] = {
      (1ull << 26) + 1,        // r^2 just over 2^52
      (1ull << 27) - 1,
      (1ull << 31) + 12345,
      3037000499ull,           // floor(sqrt(2^63))
      4294967295ull,           // 2^32 - 1: r^2 = 2^64 - 2^33 + 1
  };
  for (const std::uint64_t r : roots) {
    const auto v = static_cast<std::size_t>(r * r);
    EXPECT_EQ(tcu::exact_sqrt(v), r) << "r=" << r;
    EXPECT_THROW(tcu::exact_sqrt(v - 1), std::invalid_argument) << r;
    EXPECT_THROW(tcu::exact_sqrt(v + 1), std::invalid_argument) << r;
  }
}

TEST(ExactSqrt, IsqrtFloorAtBoundaries) {
  EXPECT_EQ(tcu::isqrt(0), 0u);
  EXPECT_EQ(tcu::isqrt(3), 1u);
  EXPECT_EQ(tcu::isqrt(8), 2u);
  EXPECT_EQ(tcu::isqrt((1ull << 52) - 1), 67108863u);
  EXPECT_EQ(tcu::isqrt(~std::size_t{0}), 4294967295u);  // 2^64 - 1
  for (std::uint64_t r = 67108860; r < 67108870; ++r) {  // around 2^26
    EXPECT_EQ(tcu::isqrt(r * r), r);
    EXPECT_EQ(tcu::isqrt(r * r + 1), r);
    EXPECT_EQ(tcu::isqrt(r * r - 1), r - 1);
  }
}

// ------------------------------------------------- complex GEMM wrappers

class ComplexGemmTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ComplexGemmTest, FourMultMatchesNativeComplex) {
  const std::size_t s = GetParam();
  tcu::util::Xoshiro256 rng(7 + s);
  Device<double> real_dev({.m = s * s});
  Matrix<std::complex<double>> a(3 * s, s), b(s, s), c(3 * s, s);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      a(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      b(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  tcu::complex_gemm_4m(real_dev, a.view(), b.view(), c.view());
  EXPECT_EQ(real_dev.counters().tensor_calls, 4u);

  Device<std::complex<double>> cplx_dev({.m = s * s});
  auto expect = cplx_dev.multiply(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      EXPECT_NEAR(std::abs(c(i, j) - expect(i, j)), 0.0, 1e-10);
    }
  }
}

TEST_P(ComplexGemmTest, ThreeMultMatchesFourMult) {
  const std::size_t s = GetParam();
  tcu::util::Xoshiro256 rng(17 + s);
  Device<double> dev4({.m = s * s}), dev3({.m = s * s});
  Matrix<std::complex<double>> a(2 * s, s), b(s, s), c4(2 * s, s),
      c3(2 * s, s);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      a(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      b(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  tcu::complex_gemm_4m(dev4, a.view(), b.view(), c4.view());
  tcu::complex_gemm_3m(dev3, a.view(), b.view(), c3.view());
  EXPECT_EQ(dev3.counters().tensor_calls, 3u);
  EXPECT_LT(dev3.counters().tensor_time, dev4.counters().tensor_time);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      EXPECT_NEAR(std::abs(c3(i, j) - c4(i, j)), 0.0, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, ComplexGemmTest,
                         ::testing::Values(2, 4, 8, 16));

// ------------------------------------------------------------ util/stats

TEST(Stats, PowerFitRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.5));
  }
  auto fit = tcu::util::fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
  EXPECT_NEAR(fit.coeff, 3.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, RatioSpreadOfProportionalSeriesIsOne) {
  std::vector<double> xs{1, 2, 3}, ys{2, 4, 6};
  EXPECT_NEAR(tcu::util::ratio_spread(xs, ys), 1.0, 1e-12);
}

TEST(Stats, GeometricMeanRatio) {
  std::vector<double> xs{1, 1}, ys{2, 8};
  EXPECT_NEAR(tcu::util::geometric_mean_ratio(xs, ys), 4.0, 1e-12);
}

TEST(Stats, FitRejectsDegenerateInput) {
  EXPECT_THROW(tcu::util::fit_power_law({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(tcu::util::fit_power_law({1, 1}, {2, 2}),
               std::invalid_argument);
  EXPECT_THROW(tcu::util::fit_power_law({1, -2}, {2, 2}),
               std::invalid_argument);
}

// -------------------------------------------------------------- costs.hpp

TEST(Costs, Omega0OfStandardAndStrassen) {
  EXPECT_NEAR(tcu::costs::omega0(8, 4), 1.5, 1e-12);
  EXPECT_NEAR(tcu::costs::omega0(7, 4), std::log(7.0) / std::log(4.0), 1e-12);
}

TEST(Costs, Thm2ReducesToWorkTermWithoutLatency) {
  const double n = 1 << 16;
  EXPECT_NEAR(tcu::costs::thm2_dense(n, 256, 0),
              std::pow(n, 1.5) / 16.0, 1e-6);
}

TEST(Costs, Thm1StandardMatchesThm2WorkTerm) {
  const double n = 1 << 14;
  // With p0 = 8 (omega0 = 3/2) and l = 0 Theorem 1 reduces to n^1.5/sqrt(m).
  EXPECT_NEAR(tcu::costs::thm1_strassen(n, 256, 0, 8, 4),
              std::pow(n / 256.0, 1.5) * 256.0, 1e-6);
}

}  // namespace
