// Tests for the worker-thread pool runtime (PoolExecutor): deterministic
// counters under real thread interleaving, exception propagation out of
// worker threads, bit-exact agreement with the single-device blocked
// matmul, and the pool paths through the batch and nn layers.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "check/contract.hpp"
#include "core/pool.hpp"
#include "linalg/batch.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::Matrix;
using tcu::PoolExecutor;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out(i, j) = rng.uniform(-1, 1);
  }
  return out;
}

// The schedule is decided on the submitting thread against projected
// costs, so per-unit counters must not depend on how the OS interleaves
// the workers: ten fresh runs produce identical per-unit totals.
TEST(PoolRuntime, CountersDeterministicAcrossRuns) {
  const std::size_t d = 96;
  auto a = random_matrix(d, d, 1);
  auto b = random_matrix(d, d, 2);

  std::vector<std::vector<std::uint64_t>> unit_times;
  std::vector<std::uint64_t> aggregates;
  Matrix<double> first;
  for (int run = 0; run < 10; ++run) {
    DevicePool<double> pool(3, {.m = 256, .latency = 7});
    auto c = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
    if (run == 0) first = c;
    std::vector<std::uint64_t> times;
    for (std::size_t u = 0; u < pool.size(); ++u) {
      times.push_back(pool.unit(u).counters().tensor_time);
    }
    unit_times.push_back(std::move(times));
    aggregates.push_back(pool.aggregate().tensor_time);
    EXPECT_EQ(c, first);  // numerics independent of interleaving too
  }
  for (int run = 1; run < 10; ++run) {
    EXPECT_EQ(unit_times[run], unit_times[0]) << "run " << run;
    EXPECT_EQ(aggregates[run], aggregates[0]) << "run " << run;
  }
}

// A 1-unit pool must execute the exact same call sequence as the serial
// blocked algorithm: identical output bits and identical counters.
TEST(PoolRuntime, OneUnitPoolMatchesSerialBitExactly) {
  const std::size_t d = 64;
  auto a = random_matrix(d, d, 3);
  auto b = random_matrix(d, d, 4);

  Device<double> single({.m = 64, .latency = 11});
  Matrix<double> c_single(d, d, 0.0);
  tcu::linalg::matmul_tcu_into(single, a.view(), b.view(), c_single.view());

  DevicePool<double> pool(1, {.m = 64, .latency = 11});
  auto c_pool = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());

  EXPECT_EQ(c_pool, c_single);  // exact ==, not near: same FP op order
  const Counters& su = single.counters();
  const Counters& pu = pool.unit(0).counters();
  EXPECT_EQ(pu.tensor_calls, su.tensor_calls);
  EXPECT_EQ(pu.tensor_rows, su.tensor_rows);
  EXPECT_EQ(pu.tensor_time, su.tensor_time);
  EXPECT_EQ(pu.tensor_macs, su.tensor_macs);
  EXPECT_EQ(pu.latency_time, su.latency_time);
  EXPECT_EQ(pool.makespan(), su.tensor_time);
}

// Aggregated pool counters equal the serial device's for any unit count:
// the same gemm calls run, just distributed.
TEST(PoolRuntime, AggregateCountersMatchSerialSchedule) {
  const std::size_t d = 128;
  auto a = random_matrix(d, d, 5);
  auto b = random_matrix(d, d, 6);
  Device<double> single({.m = 256, .latency = 13});
  (void)tcu::linalg::matmul_tcu(single, a.view(), b.view());
  for (std::size_t units : {2u, 4u, 8u}) {
    DevicePool<double> pool(units, {.m = 256, .latency = 13});
    (void)tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
    const Counters agg = pool.aggregate();
    EXPECT_EQ(agg.tensor_calls, single.counters().tensor_calls);
    EXPECT_EQ(agg.tensor_time, single.counters().tensor_time);
    EXPECT_EQ(agg.latency_time, single.counters().latency_time);
    EXPECT_EQ(agg.tensor_macs, single.counters().tensor_macs);
  }
}

// Weak-model units charge (m + l) per square call, not (rows*s + l) per
// tall call; the projected dealing must mirror that or the schedule (and
// with it per-unit counters) would drift from the serial greedy loop.
TEST(PoolRuntime, WeakModePoolMatchesSerialScheduleWithPreload) {
  const std::size_t d = 64;
  auto a = random_matrix(d, d, 8);
  auto b = random_matrix(d, d, 9);
  typename Device<double>::Config cfg{
      .m = 64, .latency = 21, .allow_tall = false};

  // Preload unit 1 with ~1.9 strips' worth of weak-model work (976 rows
  // -> 122 calls of m+l = 10370). Under the correct weak cost (5440 per
  // strip) unit 1 still wins 2 of the 8 strips; under the tall-formula
  // cost (4264) the projection sees ~2.4 strips of preload and hands
  // unit 1 only 1 — so a mis-projection changes per-unit counters here.
  Matrix<double> tall(976, 8, 1.0), tiny(8, 8, 1.0), tall_c(976, 8);

  // Serial greedy reference: execute strips one by one on least_loaded.
  DevicePool<double> serial(3, cfg);
  serial.unit(1).gemm(tall.view(), tiny.view(), tall_c.view());
  {
    const std::size_t s = serial.unit(0).tile_dim();
    Matrix<double> c(d, d, 0.0);
    for (std::size_t jb = 0; jb < d; jb += s) {
      Device<double>& unit = serial.least_loaded();
      for (std::size_t kb = 0; kb < d; kb += s) {
        unit.gemm(a.subview(0, kb, d, s), b.subview(kb, jb, s, s),
                  c.subview(0, jb, d, s), kb != 0);
      }
    }
  }

  DevicePool<double> pool(3, cfg);
  pool.unit(1).gemm(tall.view(), tiny.view(), tall_c.view());
  (void)tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());

  for (std::size_t u = 0; u < pool.size(); ++u) {
    EXPECT_EQ(pool.unit(u).counters().tensor_time,
              serial.unit(u).counters().tensor_time)
        << "unit " << u;
    EXPECT_EQ(pool.unit(u).counters().tensor_calls,
              serial.unit(u).counters().tensor_calls)
        << "unit " << u;
  }
}

TEST(PoolRuntime, ExceptionFromWorkerPropagatesAtJoin) {
  DevicePool<double> pool(2, {.m = 16});
  PoolExecutor<double> exec(pool);
  exec.submit(1, [](Device<double>&) {
    throw std::runtime_error("worker boom");
  });
  EXPECT_THROW(exec.join(), std::runtime_error);
  // The error is consumed: a subsequent join is clean and the executor
  // still drains new work.
  std::atomic<int> ran{0};
  exec.submit(1, [&](Device<double>&) { ran.fetch_add(1); });
  EXPECT_NO_THROW(exec.join());
  EXPECT_EQ(ran.load(), 1);
}

TEST(PoolRuntime, FirstOfManyExceptionsWinsAndAllTasksStillRun) {
  DevicePool<double> pool(2, {.m = 16});
  PoolExecutor<double> exec(pool);
  std::atomic<int> ran{0};
  for (int t = 0; t < 8; ++t) {
    exec.submit(1, [&ran](Device<double>&) {
      ran.fetch_add(1);
      throw std::invalid_argument("each task throws");
    });
  }
  EXPECT_THROW(exec.join(), std::invalid_argument);
  EXPECT_EQ(ran.load(), 8);  // a throwing task does not stall its lane
}

TEST(PoolRuntime, SubmitDealsGreedilyByProjectedCost) {
  DevicePool<double> pool(2, {.m = 16});
  PoolExecutor<double> exec(pool);
  // Costs 10, 1, 1: unit 0 takes the heavy task, unit 1 both light ones.
  EXPECT_EQ(exec.submit(10, [](Device<double>&) {}), 0u);
  EXPECT_EQ(exec.submit(1, [](Device<double>&) {}), 1u);
  EXPECT_EQ(exec.submit(1, [](Device<double>&) {}), 1u);
  EXPECT_EQ(exec.submit(1, [](Device<double>&) {}), 1u);  // 2 < 10
  EXPECT_EQ(exec.submit(8, [](Device<double>&) {}), 1u);  // 3 < 10
  EXPECT_EQ(exec.submit(1, [](Device<double>&) {}), 0u);  // 10 < 11
  exec.join();
}

TEST(PoolRuntime, BatchSharedBPoolMatchesSingleDevice) {
  auto b = random_matrix(8, 8, 7);
  std::vector<Matrix<double>> batch;
  for (int t = 0; t < 4; ++t) batch.push_back(random_matrix(8, 8, 20 + t));

  Device<double> dev({.m = 64, .latency = 9});
  auto expect = tcu::linalg::matmul_batch_shared_b(dev, batch, b.view());

  DevicePool<double> pool(2, {.m = 64, .latency = 9});
  auto got = tcu::linalg::matmul_batch_shared_b(pool, batch, b.view());

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t t = 0; t < got.size(); ++t) {
    EXPECT_EQ(got[t], expect[t]);
  }
  // Same stacked schedule: latency still charged per weight tile.
  EXPECT_EQ(pool.aggregate().latency_time, dev.counters().latency_time);
  EXPECT_EQ(pool.aggregate().tensor_calls, dev.counters().tensor_calls);
}

// Ragged stacked shapes can't strip-deal; the pool overload must fall
// back to the padded single-unit path instead of throwing, so the two
// overloads stay behaviorally interchangeable.
TEST(PoolRuntime, BatchSharedBPoolFallsBackOnRaggedShapes) {
  auto b = random_matrix(4, 4, 8);  // 4 < sqrt(m) = 8: ragged everywhere
  std::vector<Matrix<double>> batch{random_matrix(4, 4, 9),
                                    random_matrix(4, 4, 10)};
  Device<double> dev({.m = 64, .latency = 5});
  auto expect = tcu::linalg::matmul_batch_shared_b(dev, batch, b.view());
  DevicePool<double> pool(2, {.m = 64, .latency = 5});
  auto got = tcu::linalg::matmul_batch_shared_b(pool, batch, b.view());
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t t = 0; t < got.size(); ++t) EXPECT_EQ(got[t], expect[t]);
}

// The ragged pool path's worker-local scratch must charge exactly what
// the single-device ragged path charges — aggregate counters, not just
// output bits, in both tall and weak modes.
TEST(PoolRuntime, RaggedPoolMatmulMatchesSerialCounters) {
  auto a = random_matrix(13, 22, 14);
  auto b = random_matrix(22, 9, 15);
  for (bool tall : {true, false}) {
    typename Device<double>::Config cfg{
        .m = 16, .latency = 19, .allow_tall = tall};
    Device<double> single(cfg);
    auto expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());
    DevicePool<double> pool(3, cfg);
    auto got = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
    EXPECT_EQ(got, expect) << "tall=" << tall;
    const Counters agg = pool.aggregate();
    const Counters& ref = single.counters();
    EXPECT_EQ(agg.tensor_calls, ref.tensor_calls) << "tall=" << tall;
    EXPECT_EQ(agg.tensor_rows, ref.tensor_rows) << "tall=" << tall;
    EXPECT_EQ(agg.tensor_time, ref.tensor_time) << "tall=" << tall;
    EXPECT_EQ(agg.tensor_macs, ref.tensor_macs) << "tall=" << tall;
    EXPECT_EQ(agg.latency_time, ref.latency_time) << "tall=" << tall;
    EXPECT_EQ(agg.cpu_ops, ref.cpu_ops) << "tall=" << tall;
  }
}

// Persistent mode: one executor dealing two rounds (join between them)
// must be bit-identical — outputs and per-unit counters — to two fresh
// executors, because join() reseeds the projections from the live units.
TEST(PoolRuntime, PersistentExecutorReuseMatchesFreshExecutors) {
  const std::size_t d = 96;
  auto a = random_matrix(d, d, 11);
  auto b = random_matrix(d, d, 12);
  typename Device<double>::Config cfg{.m = 256, .latency = 17};

  DevicePool<double> pool_reused(3, cfg);
  PoolExecutor<double> exec(pool_reused);
  auto r1 = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
  auto r2 = tcu::linalg::matmul_tcu_pool(exec, b.view(), a.view());

  DevicePool<double> pool_fresh(3, cfg);
  auto f1 = tcu::linalg::matmul_tcu_pool(pool_fresh, a.view(), b.view());
  auto f2 = tcu::linalg::matmul_tcu_pool(pool_fresh, b.view(), a.view());

  EXPECT_EQ(r1, f1);
  EXPECT_EQ(r2, f2);
  for (std::size_t u = 0; u < pool_reused.size(); ++u) {
    const Counters& ru = pool_reused.unit(u).counters();
    const Counters& fu = pool_fresh.unit(u).counters();
    EXPECT_EQ(ru.tensor_calls, fu.tensor_calls) << "unit " << u;
    EXPECT_EQ(ru.tensor_time, fu.tensor_time) << "unit " << u;
    EXPECT_EQ(ru.tensor_macs, fu.tensor_macs) << "unit " << u;
    EXPECT_EQ(ru.latency_time, fu.latency_time) << "unit " << u;
  }
}

// The resident-tile model on a single device: a tagged call whose key
// matches the resident operand skips the load latency and counts a hit;
// untagged calls displace the resident tile.
TEST(PoolRuntime, DeviceResidentTileSkipsLatencyOnHit) {
  Device<double> dev({.m = 16, .latency = 5});
  Matrix<double> a(4, 4, 1.0), b(4, 4, 2.0), c(4, 4);

  dev.gemm_resident(42, a.view(), b.view(), c.view());  // load
  EXPECT_EQ(dev.counters().latency_time, 5u);
  EXPECT_EQ(dev.counters().resident_hits, 0u);

  dev.gemm_resident(42, a.view(), b.view(), c.view());  // hit
  EXPECT_EQ(dev.counters().latency_time, 5u);
  EXPECT_EQ(dev.counters().resident_hits, 1u);
  EXPECT_EQ(dev.counters().latency_saved, 5u);
  EXPECT_EQ(dev.resident_key(), 42u);

  dev.gemm_resident(43, a.view(), b.view(), c.view());  // new tile: load
  EXPECT_EQ(dev.counters().latency_time, 10u);

  {
    // This drop is the behavior under test, not a tagging bug.
    tcu::check::AllowUntaggedClobber allow_clobber;
    dev.gemm(a.view(), b.view(), c.view());  // untagged: displaces
  }
  EXPECT_EQ(dev.resident_key(), 0u);
  dev.gemm_resident(43, a.view(), b.view(), c.view());  // reload
  EXPECT_EQ(dev.counters().latency_time, 20u);
  EXPECT_EQ(dev.counters().resident_hits, 1u);
}

// Affinity scheduling end to end: a steady stream of batches against one
// resident B pays each tile's load latency once, not once per round. The
// dealer routes every strip back to the lane holding its tile, the
// devices' resident-hit counters record the savings, and the outputs stay
// bit-identical to the single-device schedule.
TEST(PoolRuntime, AffinityServesResidentTilesAcrossRounds) {
  const std::uint64_t ell = 100;
  auto b = random_matrix(8, 16, 70);  // s = 8: two single-tile strips
  std::vector<Matrix<double>> batch;
  for (int t = 0; t < 4; ++t) batch.push_back(random_matrix(8, 8, 80 + t));
  const int rounds = 5;

  Device<double> single({.m = 64, .latency = ell});
  DevicePool<double> pool(2, {.m = 64, .latency = ell});
  PoolExecutor<double> exec(pool);
  for (int r = 0; r < rounds; ++r) {
    auto expect = tcu::linalg::matmul_batch_shared_b(single, batch, b.view());
    auto got = tcu::linalg::matmul_batch_shared_b(exec, batch, b.view());
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t t = 0; t < got.size(); ++t) EXPECT_EQ(got[t], expect[t]);
  }

  const Counters agg = pool.aggregate();
  // 2 tiles loaded in round 1; every later round hits both.
  EXPECT_EQ(agg.resident_hits, 2u * (rounds - 1));
  EXPECT_EQ(agg.latency_saved, 2u * (rounds - 1) * ell);
  EXPECT_EQ(agg.latency_time, 2u * ell);
  // PR 1's dealer (the single-device reference) reloads B every round.
  EXPECT_EQ(single.counters().latency_time, 2u * rounds * ell);
  EXPECT_LT(agg.latency_time, single.counters().latency_time);
  // The saving is pure latency: everything else matches the serial totals.
  EXPECT_EQ(agg.tensor_macs, single.counters().tensor_macs);
  EXPECT_EQ(agg.tensor_calls, single.counters().tensor_calls);
  EXPECT_EQ(agg.tensor_time + agg.latency_saved,
            single.counters().tensor_time);
}

TEST(PoolRuntime, MlpForwardPoolMatchesSingleDevice) {
  tcu::util::Xoshiro256 rng(31);
  const std::size_t width = 16;
  tcu::nn::Mlp mlp;
  for (int l = 0; l < 3; ++l) {
    auto w = random_matrix(width, width, 40 + l);
    std::vector<double> bias(width);
    for (auto& v : bias) v = rng.uniform(-1, 1);
    mlp.add_layer(tcu::nn::DenseLayer(w, bias));
  }
  auto batch = random_matrix(32, width, 50);

  Device<double> dev({.m = 16, .latency = 3});
  auto expect = mlp.forward(dev, batch.view());

  DevicePool<double> pool(4, {.m = 16, .latency = 3});
  auto got = mlp.forward(pool, batch.view());

  EXPECT_EQ(got, expect);
  EXPECT_EQ(pool.aggregate().tensor_calls, dev.counters().tensor_calls);
  EXPECT_EQ(pool.aggregate().tensor_time, dev.counters().tensor_time);
  // With 4 units sharing the strips the critical path shrinks.
  EXPECT_LT(pool.makespan(), dev.counters().time());
}

}  // namespace
