// The epoch (non-barrier) runtime: per-task ready signals, the
// completion ledger, and `join_epoch()` virtual barriers — plus the
// epoch schedules of every workload that cashes them in (transitive
// closure, Gaussian elimination, batched DFT, Mlp inference).
//
// Contracts pinned here:
//   * raw runtime ordering: explicit TaskDeps chains serialize
//     cross-lane reads, a virtual barrier orders the next epoch's tasks
//     after everything before it, and forward deps are rejected without
//     corrupting the executor;
//   * 10-run determinism at p = 1/2/4/8 for all four epoch workloads,
//     down to every per-unit counter field (the dealer schedules off
//     declared costs, never wall time);
//   * outputs are bit-identical between epoch and barrier modes, with
//     aggregate counters equal (closure, GE) or equal modulo the
//     documented latency-split conservation law (DFT, Mlp);
//   * the barrier-mode flag reproduces the historical schedule
//     bit-for-bit (p = 1 pools match a single device in every field;
//     Mlp's default mode argument is the barrier path);
//   * the contract checker stays green across epoch rounds (the
//     join_epoch markers validate each lane's mirror at the fence).

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/contract.hpp"
#include "core/device.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "linalg/gauss.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::DevicePool;
using tcu::ExecMode;
using tcu::Matrix;
using tcu::PoolExecutor;
using tcu::TaskDeps;
using tcu::TaskTicket;
using Complex = tcu::dft::Complex;
using Vert = tcu::graph::Vert;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) out(i, j) = rng.uniform(-1, 1);
  }
  return out;
}

Matrix<Complex> random_cbatch(std::size_t b, std::size_t len,
                              std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<Complex> out(b, len);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      out(r, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  return out;
}

tcu::nn::Mlp make_mlp() {
  tcu::util::Xoshiro256 rng(77);
  tcu::nn::Mlp mlp;
  for (int l = 0; l < 3; ++l) {
    auto w = random_matrix(16, 16, 70 + l);
    std::vector<double> bias(16);
    for (auto& v : bias) v = rng.uniform(-1, 1);
    mlp.add_layer(tcu::nn::DenseLayer(w, bias));
  }
  return mlp;
}

/// Every field, bitwise — the determinism contract covers the full
/// counter vector including the residency split and evictions (two runs
/// of the same schedule make identical placement decisions).
void expect_counters_bitwise(const Counters& got, const Counters& want,
                             const std::string& what) {
  EXPECT_EQ(got.tensor_calls, want.tensor_calls) << what;
  EXPECT_EQ(got.tensor_rows, want.tensor_rows) << what;
  EXPECT_EQ(got.tensor_time, want.tensor_time) << what;
  EXPECT_EQ(got.tensor_macs, want.tensor_macs) << what;
  EXPECT_EQ(got.latency_time, want.latency_time) << what;
  EXPECT_EQ(got.cpu_ops, want.cpu_ops) << what;
  EXPECT_EQ(got.resident_hits, want.resident_hits) << what;
  EXPECT_EQ(got.latency_saved, want.latency_saved) << what;
  EXPECT_EQ(got.evictions, want.evictions) << what;
  EXPECT_EQ(got.tagged_calls, want.tagged_calls) << what;
}

/// Per-unit counters plus the shared-CPU stream, in one flat vector.
template <typename T>
std::vector<Counters> snapshot(const DevicePool<T>& pool) {
  std::vector<Counters> out;
  for (std::size_t u = 0; u < pool.size(); ++u) {
    out.push_back(pool.unit(u).counters());
  }
  out.push_back(pool.cpu());
  return out;
}

void expect_snapshots_bitwise(const std::vector<Counters>& got,
                              const std::vector<Counters>& want,
                              const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_counters_bitwise(got[i], want[i],
                            what + " stream " + std::to_string(i));
  }
}

/// Cross-mode comparison where lane placement may differ (DFT, Mlp):
/// everything but the latency split matches, and the split obeys the
/// conservation law — each call either pays or saves its l.
void expect_counters_conserved(const Counters& a, const Counters& b,
                               std::uint64_t ell) {
  EXPECT_EQ(a.tensor_calls, b.tensor_calls);
  EXPECT_EQ(a.tensor_rows, b.tensor_rows);
  EXPECT_EQ(a.tensor_macs, b.tensor_macs);
  EXPECT_EQ(a.cpu_ops, b.cpu_ops);
  EXPECT_EQ(a.tensor_time - a.latency_time, b.tensor_time - b.latency_time);
  EXPECT_EQ(a.latency_time + a.latency_saved,
            b.latency_time + b.latency_saved +
                (a.tensor_calls - b.tensor_calls) * ell);
}

// ---------------------------------------------------------------- runtime

TEST(EpochRuntime, DepChainSerializesCrossLaneReads) {
  DevicePool<double> pool(4, {.m = 16, .latency = 3});
  PoolExecutor<double> exec(pool);
  // Task i extends the value task i-1 wrote. The varying costs spread
  // the chain across lanes, so without the dep the reads would race;
  // the ledger must serialize them regardless of placement.
  std::vector<std::uint64_t> slots(33, 0);
  slots[0] = 1;
  TaskTicket prev{};
  for (std::size_t i = 1; i < slots.size(); ++i) {
    TaskDeps deps;
    if (i > 1) deps.after.push_back(prev.serial);
    prev = exec.submit_cpu(
        1 + (i % 3), std::move(deps), [&slots, i](Device<double>& unit) {
          slots[i] = slots[i - 1] + 1;
          unit.charge_cpu(1);
        });
  }
  exec.join();
  EXPECT_EQ(slots.back(), slots.size());
  // The chain touched more than one lane — the ordering above was the
  // ledger's doing, not an accident of single-lane FIFO.
  std::size_t busy = 0;
  for (std::size_t u = 0; u < pool.size(); ++u) {
    busy += pool.unit(u).counters().cpu_ops > 0;
  }
  EXPECT_GT(busy, 1u);
}

TEST(EpochRuntime, VirtualBarrierOrdersTheNextEpoch) {
  DevicePool<double> pool(4, {.m = 16, .latency = 3});
  PoolExecutor<double> exec(pool);
  // Round 1 writes four partials on four lanes; round 2 carries no
  // explicit deps — the join_epoch fence alone must order its read
  // after every round-1 write.
  std::vector<std::uint64_t> parts(4, 0);
  for (std::size_t u = 0; u < parts.size(); ++u) {
    exec.submit_cpu(5, TaskDeps{}, [&parts, u](Device<double>& unit) {
      parts[u] = u + 1;
      unit.charge_cpu(5);
    });
  }
  const std::uint64_t epoch = exec.join_epoch();
  EXPECT_GE(epoch, 1u);
  std::uint64_t total = 0;
  exec.submit_cpu(1, TaskDeps{}, [&parts, &total](Device<double>& unit) {
    for (const auto v : parts) total += v;
    unit.charge_cpu(1);
  });
  exec.join();
  EXPECT_EQ(total, 10u);
}

TEST(EpochRuntime, ForwardDependencyIsRejectedWithoutCorruption) {
  DevicePool<double> pool(2, {.m = 16, .latency = 3});
  PoolExecutor<double> exec(pool);
  std::uint64_t witness = 0;
  const TaskTicket t0 =
      exec.submit_cpu(1, TaskDeps{}, [&witness](Device<double>& unit) {
        witness += 1;
        unit.charge_cpu(1);
      });
  // A dep on a serial that has not been submitted could never retire.
  EXPECT_THROW(exec.submit_cpu(1, TaskDeps{.after = {t0.serial + 100}},
                               [](Device<double>&) {}),
               std::invalid_argument);
  // The rejection leaked no serial: epoch fences and dep-waits keyed on
  // the ledger's low-water mark still advance, so the executor remains
  // fully usable — including across a subsequent virtual barrier.
  exec.join_epoch();
  exec.submit_cpu(1, TaskDeps{}, [&witness](Device<double>& unit) {
    witness += 10;
    unit.charge_cpu(1);
  });
  exec.join();
  EXPECT_EQ(witness, 11u);
}

// ----------------------------------------------------- 10-run determinism

TEST(EpochDeterminism, ClosureTenRunsEveryUnitCount) {
  auto adj = tcu::graph::random_digraph(24, 0.15, 424);
  tcu::graph::AdjMatrix serial_d = adj;
  Device<Vert> dev({.m = 64, .latency = 7});
  tcu::graph::closure_tcu(dev, serial_d.view());

  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    std::vector<Counters> first;
    for (int run = 0; run < 10; ++run) {
      tcu::graph::AdjMatrix d = adj;
      DevicePool<Vert> pool(p, {.m = 64, .latency = 7});
      tcu::graph::closure_tcu(pool, d.view(), ExecMode::kEpoch);
      ASSERT_EQ(d, serial_d) << "p=" << p << " run=" << run;
      auto snap = snapshot(pool);
      if (run == 0) {
        first = std::move(snap);
      } else {
        expect_snapshots_bitwise(
            snap, first, "closure p=" + std::to_string(p));
      }
    }
  }
}

TEST(EpochDeterminism, GaussTenRunsEveryUnitCount) {
  auto x = random_matrix(24, 24, 520);
  Matrix<double> serial_x = x;
  Device<double> dev({.m = 16, .latency = 5});
  tcu::linalg::ge_forward_tcu(dev, serial_x.view());

  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    std::vector<Counters> first;
    for (int run = 0; run < 10; ++run) {
      Matrix<double> got = x;
      DevicePool<double> pool(p, {.m = 16, .latency = 5});
      tcu::linalg::ge_forward_tcu_pool(pool, got.view(), ExecMode::kEpoch);
      ASSERT_EQ(got, serial_x) << "p=" << p << " run=" << run;
      auto snap = snapshot(pool);
      if (run == 0) {
        first = std::move(snap);
      } else {
        expect_snapshots_bitwise(snap, first, "GE p=" + std::to_string(p));
      }
    }
  }
}

TEST(EpochDeterminism, DftTenRunsEveryUnitCount) {
  auto batch = random_cbatch(3, 24, 624);
  Matrix<Complex> serial_batch = batch;
  Device<Complex> dev({.m = 16, .latency = 11});
  tcu::dft::dft_batch_tcu(dev, serial_batch.view(), {.affinity = true});

  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    std::vector<Counters> first;
    for (int run = 0; run < 10; ++run) {
      Matrix<Complex> got = batch;
      DevicePool<Complex> pool(p, {.m = 16, .latency = 11});
      PoolExecutor<Complex> exec(pool);
      tcu::dft::dft_batch_tcu(exec, got.view(),
                              {.affinity = true, .mode = ExecMode::kEpoch});
      ASSERT_EQ(got, serial_batch) << "p=" << p << " run=" << run;
      auto snap = snapshot(pool);
      if (run == 0) {
        first = std::move(snap);
      } else {
        expect_snapshots_bitwise(snap, first, "DFT p=" + std::to_string(p));
      }
    }
  }
}

TEST(EpochDeterminism, MlpTenRunsEveryUnitCount) {
  const auto mlp = make_mlp();
  const auto batch = random_matrix(16, 16, 724);
  Device<double> dev({.m = 16, .latency = 3});
  const auto expect = mlp.forward(dev, batch.view());

  for (std::size_t p : {1u, 2u, 4u, 8u}) {
    std::vector<Counters> first;
    for (int run = 0; run < 10; ++run) {
      DevicePool<double> pool(p, {.m = 16, .latency = 3});
      PoolExecutor<double> exec(pool);
      const auto got = mlp.forward(exec, batch.view(), {.affinity = true},
                                   ExecMode::kEpoch);
      ASSERT_EQ(got, expect) << "p=" << p << " run=" << run;
      auto snap = snapshot(pool);
      if (run == 0) {
        first = std::move(snap);
      } else {
        expect_snapshots_bitwise(snap, first, "Mlp p=" + std::to_string(p));
      }
    }
  }
}

// --------------------------------------------------------- epoch/barrier

TEST(EpochVsBarrier, ClosureAndGaussAggregatesIdentical) {
  // Closure and GE charge their epoch-mode glue through the same counted
  // kernels as the barrier path, so the aggregates match in every field
  // — only the split across units moves.
  auto adj = tcu::graph::random_digraph(30, 0.15, 830);
  for (std::size_t p : {2u, 4u}) {
    tcu::graph::AdjMatrix d_epoch = adj, d_barrier = adj;
    DevicePool<Vert> pe(p, {.m = 64, .latency = 7});
    DevicePool<Vert> pb(p, {.m = 64, .latency = 7});
    tcu::graph::closure_tcu(pe, d_epoch.view(), ExecMode::kEpoch);
    tcu::graph::closure_tcu(pb, d_barrier.view(), ExecMode::kBarrier);
    EXPECT_EQ(d_epoch, d_barrier) << "p=" << p;
    expect_counters_bitwise(pe.aggregate(), pb.aggregate(),
                            "closure p=" + std::to_string(p));
  }

  auto x = random_matrix(24, 24, 831);
  for (std::size_t p : {2u, 4u}) {
    Matrix<double> x_epoch = x, x_barrier = x;
    DevicePool<double> pe(p, {.m = 16, .latency = 5});
    DevicePool<double> pb(p, {.m = 16, .latency = 5});
    tcu::linalg::ge_forward_tcu_pool(pe, x_epoch.view(), ExecMode::kEpoch);
    tcu::linalg::ge_forward_tcu_pool(pb, x_barrier.view(),
                                     ExecMode::kBarrier);
    EXPECT_EQ(x_epoch, x_barrier) << "p=" << p;
    expect_counters_bitwise(pe.aggregate(), pb.aggregate(),
                            "GE p=" + std::to_string(p));
  }
}

TEST(EpochVsBarrier, DftAndMlpBitIdenticalAndConserved) {
  // DFT and Mlp epoch schedules may place chunks on different lanes than
  // the barrier dealer (deps change the greedy projections), so the
  // latency split can move between paid and saved — but outputs are
  // bit-identical and the conservation law pins the totals.
  const std::uint64_t ell = 11;
  auto batch = random_cbatch(4, 40, 840);
  for (std::size_t p : {2u, 4u}) {
    Matrix<Complex> b_epoch = batch, b_barrier = batch;
    DevicePool<Complex> pe(p, {.m = 16, .latency = ell});
    DevicePool<Complex> pb(p, {.m = 16, .latency = ell});
    PoolExecutor<Complex> ee(pe);
    PoolExecutor<Complex> eb(pb);
    tcu::dft::dft_batch_tcu(ee, b_epoch.view(),
                            {.affinity = true, .mode = ExecMode::kEpoch});
    tcu::dft::dft_batch_tcu(eb, b_barrier.view(),
                            {.affinity = true, .mode = ExecMode::kBarrier});
    EXPECT_EQ(b_epoch, b_barrier) << "p=" << p;
    expect_counters_conserved(pe.aggregate(), pb.aggregate(), ell);
  }

  const auto mlp = make_mlp();
  const auto in = random_matrix(16, 16, 841);
  for (std::size_t p : {2u, 4u}) {
    DevicePool<double> pe(p, {.m = 16, .latency = 3});
    DevicePool<double> pb(p, {.m = 16, .latency = 3});
    PoolExecutor<double> ee(pe);
    PoolExecutor<double> eb(pb);
    const auto got_epoch =
        mlp.forward(ee, in.view(), {.affinity = true}, ExecMode::kEpoch);
    const auto got_barrier =
        mlp.forward(eb, in.view(), {.affinity = true}, ExecMode::kBarrier);
    EXPECT_EQ(got_epoch, got_barrier) << "p=" << p;
    expect_counters_conserved(pe.aggregate(), pb.aggregate(), 3);
  }
}

TEST(EpochVsBarrier, BarrierFlagReproducesHistoricalSchedule) {
  // The barrier flag is the pre-epoch runtime verbatim: a 1-unit pool
  // matches a single device in every counter field (the historical
  // p = 1 identity). Mlp's default mode argument is checked separately
  // below — it is the epoch path, bitwise.
  {
    auto adj = tcu::graph::random_digraph(24, 0.15, 924);
    tcu::graph::AdjMatrix serial_d = adj, pool_d = adj;
    Device<Vert> dev({.m = 64, .latency = 7});
    tcu::graph::closure_tcu(dev, serial_d.view());
    DevicePool<Vert> pool(1, {.m = 64, .latency = 7});
    tcu::graph::closure_tcu(pool, pool_d.view(), ExecMode::kBarrier);
    EXPECT_EQ(pool_d, serial_d);
    expect_counters_bitwise(pool.aggregate(), dev.counters(), "closure p=1");
  }
  {
    auto x = random_matrix(24, 24, 925);
    Matrix<double> serial_x = x, pool_x = x;
    Device<double> dev({.m = 16, .latency = 5});
    tcu::linalg::ge_forward_tcu(dev, serial_x.view());
    DevicePool<double> pool(1, {.m = 16, .latency = 5});
    tcu::linalg::ge_forward_tcu_pool(pool, pool_x.view(),
                                     ExecMode::kBarrier);
    EXPECT_EQ(pool_x, serial_x);
    expect_counters_bitwise(pool.aggregate(), dev.counters(), "GE p=1");
  }
  {
    auto batch = random_cbatch(3, 24, 926);
    Matrix<Complex> serial_b = batch, pool_b = batch;
    Device<Complex> dev({.m = 16, .latency = 11});
    tcu::dft::dft_batch_tcu(dev, serial_b.view(), {.affinity = true});
    DevicePool<Complex> pool(1, {.m = 16, .latency = 11});
    PoolExecutor<Complex> exec(pool);
    tcu::dft::dft_batch_tcu(exec, pool_b.view(),
                            {.affinity = true, .mode = ExecMode::kBarrier});
    EXPECT_EQ(pool_b, serial_b);
    expect_counters_bitwise(pool.aggregate(), dev.counters(), "DFT p=1");
  }
  {
    // Mlp's default mode argument is now the epoch path (flipped when the
    // bench_residency records were re-anchored under the epoch dealer):
    // the default must be bitwise the explicit kEpoch flag, and the
    // barrier flag — the historical schedule — must still produce the
    // same bits with its aggregate counters conserved against epoch's.
    const auto mlp = make_mlp();
    const auto in = random_matrix(16, 16, 927);
    DevicePool<double> pd(4, {.m = 16, .latency = 3});
    DevicePool<double> pe(4, {.m = 16, .latency = 3});
    DevicePool<double> pb(4, {.m = 16, .latency = 3});
    PoolExecutor<double> ed(pd);
    PoolExecutor<double> ee(pe);
    PoolExecutor<double> eb(pb);
    const auto got_default = mlp.forward(ed, in.view());
    const auto got_epoch =
        mlp.forward(ee, in.view(), {.affinity = true}, ExecMode::kEpoch);
    const auto got_barrier =
        mlp.forward(eb, in.view(), {.affinity = true}, ExecMode::kBarrier);
    EXPECT_EQ(got_default, got_epoch);
    EXPECT_EQ(got_default, got_barrier);
    expect_snapshots_bitwise(snapshot(pe), snapshot(pd), "Mlp epoch default");
    expect_counters_conserved(pb.aggregate(), pe.aggregate(), 3);
  }
}

// ----------------------------------------------------------------- checker

TEST(EpochCheck, AllWorkloadsPassWithCheckerAttached) {
  // The join_epoch markers compare each lane's dealer mirror to the
  // unit's live resident set at every virtual barrier; any divergence
  // throws out of the worker and surfaces at the strict join.
  {
    DevicePool<Vert> pool(4, {.m = 64, .latency = 7});
    tcu::check::ScopedCheck<Vert> check(pool);
    auto adj = tcu::graph::random_digraph(24, 0.15, 1024);
    tcu::graph::AdjMatrix serial_d = adj;
    Device<Vert> dev({.m = 64, .latency = 7});
    tcu::graph::closure_tcu(dev, serial_d.view());
    tcu::graph::closure_tcu(pool, adj.view(), ExecMode::kEpoch);
    EXPECT_EQ(adj, serial_d);
    check.verify();
  }
  {
    DevicePool<double> pool(4, {.m = 16, .latency = 5});
    tcu::check::ScopedCheck<double> check(pool);
    PoolExecutor<double> exec(pool);
    auto x = random_matrix(24, 24, 1025);
    Matrix<double> serial_x = x;
    Device<double> dev({.m = 16, .latency = 5});
    tcu::linalg::ge_forward_tcu(dev, serial_x.view());
    tcu::linalg::ge_forward_tcu_pool(exec, x.view(), ExecMode::kEpoch);
    EXPECT_EQ(x, serial_x);

    const auto mlp = make_mlp();
    const auto in = random_matrix(16, 16, 1026);
    Device<double> mdev({.m = 16, .latency = 5});
    const auto expect = mlp.forward(mdev, in.view());
    const auto got =
        mlp.forward(exec, in.view(), {.affinity = true}, ExecMode::kEpoch);
    EXPECT_EQ(got, expect);
    check.verify();
  }
  {
    DevicePool<Complex> pool(4, {.m = 16, .latency = 11});
    tcu::check::ScopedCheck<Complex> check(pool);
    PoolExecutor<Complex> exec(pool);
    auto batch = random_cbatch(3, 24, 1027);
    Matrix<Complex> serial_b = batch;
    Device<Complex> dev({.m = 16, .latency = 11});
    tcu::dft::dft_batch_tcu(dev, serial_b.view(), {.affinity = true});
    tcu::dft::dft_batch_tcu(exec, batch.view(),
                            {.affinity = true, .mode = ExecMode::kEpoch});
    EXPECT_EQ(batch, serial_b);
    check.verify();
  }
}

}  // namespace
