// Tests for the cycle-level systolic array (Section 2.2 / Figure 1):
// numeric equivalence with the reference engine, the exact cycle schedule
// (load cycles, first/last output steps, total cycles), and the device
// integration (FIG1 reproduction target).

#include <gtest/gtest.h>

#include <cstdint>

#include "core/device.hpp"
#include "systolic/engine.hpp"
#include "systolic/systolic_array.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Matrix;
using tcu::systolic::OutputStationaryArray;
using tcu::systolic::RunStats;
using tcu::systolic::SystolicArray;

template <typename T>
Matrix<T> random_int_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<T> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m(i, j) = static_cast<T>(rng.uniform_int(-9, 9));
    }
  }
  return m;
}

template <typename T>
Matrix<T> reference_product(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c(a.rows(), b.cols(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += a(i, k) * b(k, j);
      }
    }
  }
  return c;
}

// Parameterized over (s, n): tile dimension and streamed rows.
class SystolicSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SystolicSweep, MatchesReferenceProduct) {
  const auto [s, n] = GetParam();
  auto a = random_int_matrix<std::int64_t>(n, s, 100 + s + n);
  auto b = random_int_matrix<std::int64_t>(s, s, 200 + s + n);
  Matrix<std::int64_t> c(n, s, 0);
  SystolicArray<std::int64_t> array(s);
  array.multiply(a.view(), b.view(), c.view());
  auto expect = reference_product(a, b);
  EXPECT_TRUE(c == expect);
}

TEST_P(SystolicSweep, CycleScheduleMatchesFigure1) {
  const auto [s, n] = GetParam();
  auto a = random_int_matrix<std::int64_t>(n, s, 300 + s + n);
  auto b = random_int_matrix<std::int64_t>(s, s, 400 + s + n);
  Matrix<std::int64_t> c(n, s, 0);
  SystolicArray<std::int64_t> array(s);
  const RunStats stats = array.multiply(a.view(), b.view(), c.view());

  // Loading B takes exactly s cycles (one row pushed per cycle).
  EXPECT_EQ(stats.load_cycles, s);
  // c[0][0] leaves the bottom row at streaming step s - 1; the paper's
  // "output at step sqrt(m) + i + j" counts the same event 1-indexed.
  EXPECT_EQ(stats.first_output_step, s - 1);
  // c[n-1][s-1] leaves at streaming step (n-1) + (s-1) + (s-1).
  EXPECT_EQ(stats.last_output_step, n + 2 * s - 3);
  // Total streaming steps: n + 2s - 2 => Theta(n + sqrt(m)) per call.
  EXPECT_EQ(stats.stream_cycles, n + 2 * s - 2);
  EXPECT_EQ(stats.total_cycles(), n + 3 * s - 2);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, SystolicSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 4, 8, 16),
                       ::testing::Values<std::size_t>(1, 2, 5, 16, 33, 64)));

TEST(Systolic, AccumulateAddsToExisting) {
  const std::size_t s = 4, n = 8;
  auto a = random_int_matrix<std::int64_t>(n, s, 11);
  auto b = random_int_matrix<std::int64_t>(s, s, 12);
  Matrix<std::int64_t> c(n, s, 5);
  SystolicArray<std::int64_t> array(s);
  array.multiply(a.view(), b.view(), c.view(), /*accumulate=*/true);
  auto expect = reference_product(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      EXPECT_EQ(c(i, j), expect(i, j) + 5);
    }
  }
}

TEST(Systolic, WeightsPersistAcrossStreams) {
  // Weight-stationary reuse: load B once, stream two different A blocks —
  // the TPU-style behaviour that motivates the tall-left-operand model.
  const std::size_t s = 4;
  auto b = random_int_matrix<std::int64_t>(s, s, 21);
  auto a1 = random_int_matrix<std::int64_t>(6, s, 22);
  auto a2 = random_int_matrix<std::int64_t>(9, s, 23);
  SystolicArray<std::int64_t> array(s);
  array.load_weights(b.view());
  Matrix<std::int64_t> c1(6, s, 0), c2(9, s, 0);
  array.stream(a1.view(), c1.view(), false);
  array.stream(a2.view(), c2.view(), false);
  EXPECT_TRUE(c1 == reference_product(a1, b));
  EXPECT_TRUE(c2 == reference_product(a2, b));
}

TEST(Systolic, MacCountIsGridTimesSteps) {
  const std::size_t s = 4, n = 10;
  auto a = random_int_matrix<std::int64_t>(n, s, 31);
  auto b = random_int_matrix<std::int64_t>(s, s, 32);
  Matrix<std::int64_t> c(n, s, 0);
  SystolicArray<std::int64_t> array(s);
  const auto stats = array.multiply(a.view(), b.view(), c.view());
  // Every PE fires every streaming cycle (idle PEs multiply by zero).
  EXPECT_EQ(stats.mac_count, stats.stream_cycles * s * s);
}

TEST(Systolic, RejectsBadShapes) {
  SystolicArray<double> array(4);
  Matrix<double> bad_b(3, 4), b(4, 4), a(8, 4), bad_a(8, 3), c(8, 4);
  EXPECT_THROW(array.load_weights(bad_b.view()), std::invalid_argument);
  array.load_weights(b.view());
  EXPECT_THROW(array.stream(bad_a.view(), c.view(), false),
               std::invalid_argument);
  EXPECT_THROW(SystolicArray<double>(0), std::invalid_argument);
}

TEST(Systolic, DoublePrecisionCloseToReference) {
  const std::size_t s = 8, n = 20;
  tcu::util::Xoshiro256 rng(41);
  Matrix<double> a(n, s), b(s, s), c(n, s, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < s; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  SystolicArray<double> array(s);
  array.multiply(a.view(), b.view(), c.view());
  auto expect = reference_product(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      EXPECT_NEAR(c(i, j), expect(i, j), 1e-12);
    }
  }
}

// ------------------------------------------------ output-stationary array

class OutputStationarySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OutputStationarySweep, MatchesReference) {
  const std::size_t s = GetParam();
  auto a = random_int_matrix<std::int64_t>(s, s, 50 + s);
  auto b = random_int_matrix<std::int64_t>(s, s, 60 + s);
  Matrix<std::int64_t> c(s, s, 0);
  OutputStationaryArray<std::int64_t> array(s);
  const auto stats = array.multiply(a.view(), b.view(), c.view());
  EXPECT_TRUE(c == reference_product(a, b));
  EXPECT_EQ(stats.stream_cycles, 3 * s - 2);
  EXPECT_EQ(stats.mac_count, static_cast<std::uint64_t>(s) * s * s);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OutputStationarySweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(OutputStationary, RejectsTallOperand) {
  OutputStationaryArray<std::int64_t> array(4);
  Matrix<std::int64_t> a(8, 4), b(4, 4), c(8, 4);
  EXPECT_THROW(array.multiply(a.view(), b.view(), c.view()),
               std::invalid_argument);
}

// --------------------------------------------------- device integration

TEST(SystolicDevice, ResultsMatchReferenceEngine) {
  tcu::util::Xoshiro256 rng(71);
  auto sys = tcu::systolic::make_systolic_device<double>({.m = 64});
  tcu::Device<double> ref({.m = 64});
  Matrix<double> a(24, 8), b(8, 8);
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < 8; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  auto c1 = sys.multiply(a, b);
  auto c2 = ref.multiply(a, b);
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c1(i, j), c2(i, j), 1e-12);
    }
  }
}

TEST(SystolicDevice, CountsCyclesAndModelTime) {
  auto dev = tcu::systolic::make_systolic_device<double>(
      {.m = 64, .latency = 10});
  Matrix<double> a(32, 8, 1.0), b(8, 8, 1.0), c(32, 8);
  dev.gemm(a.view(), b.view(), c.view());
  // Model charge: n*sqrt(m) + l.
  EXPECT_EQ(dev.counters().tensor_time, 32u * 8u + 10u);
  // Engine detail: s load + n + 2s - 2 streaming cycles.
  EXPECT_EQ(dev.counters().systolic_cycles, 8u + 32u + 2u * 8u - 2u);
}

TEST(SystolicDevice, WeakDeviceWithOutputStationaryEngine) {
  tcu::Device<double> dev(
      {.m = 16, .latency = 3, .allow_tall = false},
      tcu::systolic::output_stationary_engine<double>());
  tcu::util::Xoshiro256 rng(81);
  Matrix<double> a(12, 4), b(4, 4);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-1, 1);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b(i, j) = rng.uniform(-1, 1);
  }
  auto c = dev.multiply(a, b);
  EXPECT_EQ(dev.counters().tensor_calls, 3u);  // 12 rows / 4 per square call
  tcu::Device<double> ref({.m = 16});
  auto expect = ref.multiply(a, b);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(c(i, j), expect(i, j), 1e-12);
    }
  }
}

}  // namespace
