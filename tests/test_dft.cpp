// Tests for the Theorem 7 DFT: agreement with the naive O(n^2) oracle for
// smooth, prime and mixed lengths (exercising the Cooley-Tukey and
// Bluestein paths), inverse round trips, Parseval's identity, batching,
// 2-D transforms, the convolution theorem, and the (n + l) log_m n cost.

#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "dft/dft.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using tcu::dft::Complex;
using tcu::dft::CVec;

CVec random_signal(std::size_t n, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return x;
}

void expect_close(const CVec& a, const CVec& b, double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(std::abs(a[i] - b[i]), 0.0, tol) << "at " << i;
  }
}

class DftLengthSweep : public ::testing::TestWithParam<
                           std::tuple<std::size_t, std::size_t>> {};

TEST_P(DftLengthSweep, MatchesNaive) {
  const auto [n, m] = GetParam();
  Device<Complex> dev({.m = m});
  auto x = random_signal(n, 4000 + n + m);
  Counters ram;
  auto expect = tcu::dft::dft_naive(x, ram);
  auto got = tcu::dft::dft_tcu(dev, x);
  expect_close(got, expect, 1e-8);
}

TEST_P(DftLengthSweep, InverseRoundTrip) {
  const auto [n, m] = GetParam();
  Device<Complex> dev({.m = m});
  auto x = random_signal(n, 5000 + n + m);
  auto y = tcu::dft::dft_tcu(dev, x);
  auto back = tcu::dft::dft_tcu(dev, y, /*inverse=*/true);
  expect_close(back, x, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, DftLengthSweep,
    ::testing::Combine(
        // Powers of the tile, smooth composites, primes (Bluestein), and
        // sizes with prime factors larger than sqrt(m).
        ::testing::Values<std::size_t>(1, 2, 3, 8, 16, 31, 60, 64, 97, 128,
                                       100, 256, 360),
        ::testing::Values<std::size_t>(4, 16, 64)));

TEST(Dft, ImpulseTransformsToAllOnes) {
  Device<Complex> dev({.m = 16});
  CVec x(32, Complex{});
  x[0] = 1.0;
  auto y = tcu::dft::dft_tcu(dev, x);
  for (const auto& v : y) EXPECT_NEAR(std::abs(v - Complex{1.0, 0.0}), 0, 1e-10);
}

TEST(Dft, LinearityHolds) {
  Device<Complex> dev({.m = 16});
  auto x1 = random_signal(48, 61);
  auto x2 = random_signal(48, 62);
  const Complex alpha{0.7, -0.2};
  CVec mix(48);
  for (std::size_t i = 0; i < 48; ++i) mix[i] = x1[i] + alpha * x2[i];
  auto y1 = tcu::dft::dft_tcu(dev, x1);
  auto y2 = tcu::dft::dft_tcu(dev, x2);
  auto ym = tcu::dft::dft_tcu(dev, mix);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_NEAR(std::abs(ym[i] - (y1[i] + alpha * y2[i])), 0.0, 1e-9);
  }
}

TEST(Dft, ParsevalIdentity) {
  Device<Complex> dev({.m = 64});
  auto x = random_signal(120, 71);
  auto y = tcu::dft::dft_tcu(dev, x);
  double ex = 0, ey = 0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * 120.0, 1e-6);
}

TEST(Dft, BatchMatchesIndividualTransforms) {
  Device<Complex> dev({.m = 16}), dev_single({.m = 16});
  const std::size_t b = 5, n = 64;
  Matrix<Complex> batch(b, n);
  std::vector<CVec> singles(b);
  for (std::size_t r = 0; r < b; ++r) {
    singles[r] = random_signal(n, 80 + r);
    for (std::size_t j = 0; j < n; ++j) batch(r, j) = singles[r][j];
  }
  tcu::dft::dft_batch_tcu(dev, batch.view());
  for (std::size_t r = 0; r < b; ++r) {
    auto y = tcu::dft::dft_tcu(dev_single, singles[r]);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(std::abs(batch(r, j) - y[j]), 0.0, 1e-9);
    }
  }
}

TEST(Dft, BatchSharesTensorCallsAcrossRows) {
  // The tall-operand trick: a 16-row batch must use the same number of
  // tensor calls as a 1-row transform, not 16x as many.
  const std::size_t n = 256;
  Device<Complex> dev1({.m = 16}), dev16({.m = 16});
  Matrix<Complex> one(1, n), many(16, n);
  for (std::size_t j = 0; j < n; ++j) one(0, j) = Complex{1.0, 0.0};
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t j = 0; j < n; ++j) many(r, j) = Complex{1.0, 0.0};
  }
  tcu::dft::dft_batch_tcu(dev1, one.view());
  tcu::dft::dft_batch_tcu(dev16, many.view());
  EXPECT_EQ(dev1.counters().tensor_calls, dev16.counters().tensor_calls);
}

TEST(Dft, FftRamMatchesNaive) {
  Counters c1, c2;
  auto x = random_signal(128, 91);
  auto expect = tcu::dft::dft_naive(x, c1);
  auto got = tcu::dft::fft_ram(x, c2);
  expect_close(got, expect, 1e-9);
  EXPECT_LT(c2.cpu_ops, c1.cpu_ops);  // n log n beats n^2
}

TEST(Dft, FftRamRejectsNonPowerOfTwo) {
  Counters c;
  EXPECT_THROW((void)tcu::dft::fft_ram(random_signal(12, 1), c),
               std::invalid_argument);
}

TEST(Dft, FftRamInverseRoundTrip) {
  Counters c;
  auto x = random_signal(64, 93);
  auto back = tcu::dft::fft_ram(tcu::dft::fft_ram(x, c), c, true);
  expect_close(back, x, 1e-10);
}

TEST(Dft2, MatchesRowColumnNaive) {
  Device<Complex> dev({.m = 16});
  const std::size_t r = 12, c = 20;
  Matrix<Complex> x(r, c);
  tcu::util::Xoshiro256 rng(101);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      x(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  auto got = tcu::dft::dft2_tcu(dev, x.view());
  // Oracle: naive DFT of rows then columns.
  Counters ctr;
  Matrix<Complex> oracle(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    CVec row(c);
    for (std::size_t j = 0; j < c; ++j) row[j] = x(i, j);
    auto tr = tcu::dft::dft_naive(row, ctr);
    for (std::size_t j = 0; j < c; ++j) oracle(i, j) = tr[j];
  }
  for (std::size_t j = 0; j < c; ++j) {
    CVec col(r);
    for (std::size_t i = 0; i < r; ++i) col[i] = oracle(i, j);
    auto tc2 = tcu::dft::dft_naive(col, ctr);
    for (std::size_t i = 0; i < r; ++i) oracle(i, j) = tc2[i];
  }
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      EXPECT_NEAR(std::abs(got(i, j) - oracle(i, j)), 0.0, 1e-8);
    }
  }
}

TEST(Dft2, InverseRoundTrip) {
  Device<Complex> dev({.m = 16});
  Matrix<Complex> x(9, 15);
  tcu::util::Xoshiro256 rng(111);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 15; ++j) {
      x(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  auto y = tcu::dft::dft2_tcu(dev, x.view());
  auto back = tcu::dft::dft2_tcu(dev, y.view(), /*inverse=*/true);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 15; ++j) {
      EXPECT_NEAR(std::abs(back(i, j) - x(i, j)), 0.0, 1e-8);
    }
  }
}

TEST(Convolution, MatchesDirectCircularConvolution) {
  Device<Complex> dev({.m = 16});
  const std::size_t n = 24;
  auto a = random_signal(n, 121);
  auto b = random_signal(n, 122);
  auto got = tcu::dft::circular_convolve_tcu(dev, a, b);
  for (std::size_t i = 0; i < n; ++i) {
    Complex direct{};
    for (std::size_t j = 0; j < n; ++j) direct += a[j] * b[(i + n - j) % n];
    EXPECT_NEAR(std::abs(got[i] - direct), 0.0, 1e-8);
  }
}

TEST(Convolution, LengthMismatchThrows) {
  Device<Complex> dev({.m = 16});
  EXPECT_THROW((void)tcu::dft::circular_convolve_tcu(
                   dev, random_signal(8, 1), random_signal(9, 2)),
               std::invalid_argument);
}

TEST(Convolution, TwoDimensionalMatchesDirect) {
  Device<Complex> dev({.m = 16});
  const std::size_t n = 8;
  Matrix<Complex> a(n, n), k(n, n);
  tcu::util::Xoshiro256 rng(131);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = {rng.uniform(-1, 1), 0.0};
      k(i, j) = {rng.uniform(-1, 1), 0.0};
    }
  }
  auto got = tcu::dft::circular_convolve2_tcu(dev, a.view(), k.view());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex direct{};
      for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
          direct += k(p, q) * a((i + n - p) % n, (j + n - q) % n);
        }
      }
      EXPECT_NEAR(std::abs(got(i, j) - direct), 0.0, 1e-7);
    }
  }
}

TEST(DftCost, TracksTheorem7AcrossSizes) {
  std::vector<double> predicted, measured;
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    Device<Complex> dev({.m = 256, .latency = 50});
    auto x = random_signal(n, 140 + n);
    (void)tcu::dft::dft_tcu(dev, x);
    predicted.push_back(tcu::costs::thm7_dft(
        static_cast<double>(n), 256.0, 50.0));
    measured.push_back(static_cast<double>(dev.counters().time()));
  }
  EXPECT_LT(tcu::util::ratio_spread(predicted, measured), 3.0);
  auto fit = tcu::util::fit_power_law(predicted, measured);
  EXPECT_NEAR(fit.exponent, 1.0, 0.2);
}

TEST(DftCost, LatencyPaidPerLevelNotPerSubvector) {
  // n = 4096 with m = 256 has 2 levels of 16-point transforms plus a
  // final level: tensor calls should be O(log_m n), not O(n/sqrt(m)).
  Device<Complex> dev({.m = 256, .latency = 1000});
  auto x = random_signal(4096, 151);
  (void)tcu::dft::dft_tcu(dev, x);
  EXPECT_LE(dev.counters().tensor_calls, 4u);
}

TEST(DftCost, TcuBeatsNaiveModelTime) {
  const std::size_t n = 4096;
  Device<Complex> dev({.m = 256});
  Counters ram;
  auto x = random_signal(n, 161);
  (void)tcu::dft::dft_tcu(dev, x);
  (void)tcu::dft::dft_naive(x, ram);
  EXPECT_LT(dev.counters().time(), ram.time());
}

}  // namespace
