// Tests for the neural-network layers: dense layers vs hand-computed
// references, MLP composition, conv2d via im2col vs the direct sliding
// window, and the weight-stationary cost structure (latency per tile,
// not per batch item).

#include <gtest/gtest.h>

#include "linalg/batch.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace {

using tcu::Counters;
using tcu::Device;
using tcu::Matrix;
using tcu::nn::conv2d_ram;
using tcu::nn::conv2d_tcu;
using tcu::nn::DenseLayer;
using tcu::nn::Mlp;

Matrix<double> random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

TEST(DenseLayerTest, MatchesHandComputedForward) {
  Matrix<double> w(2, 3);
  w(0, 0) = 1;  w(0, 1) = 2;  w(0, 2) = -1;
  w(1, 0) = 0;  w(1, 1) = 1;  w(1, 2) = 3;
  DenseLayer layer(w, {0.5, -0.5, 0.0});
  Matrix<double> x(1, 2);
  x(0, 0) = 2;
  x(0, 1) = -1;
  Device<double> dev({.m = 16});
  auto y = layer.forward(dev, x.view(), /*relu=*/false);
  // y = [2*1 + (-1)*0 + 0.5, 2*2 + (-1)*1 - 0.5, 2*(-1) + (-1)*3 + 0]
  EXPECT_NEAR(y(0, 0), 2.5, 1e-12);
  EXPECT_NEAR(y(0, 1), 2.5, 1e-12);
  EXPECT_NEAR(y(0, 2), -5.0, 1e-12);
}

TEST(DenseLayerTest, ReluClampsNegatives) {
  Matrix<double> w = Matrix<double>::identity(2);
  DenseLayer layer(w, {0.0, 0.0});
  Matrix<double> x(1, 2);
  x(0, 0) = -3.0;
  x(0, 1) = 4.0;
  Device<double> dev({.m = 16});
  auto y = layer.forward(dev, x.view(), /*relu=*/true);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 4.0);
}

TEST(DenseLayerTest, ValidatesShapes) {
  EXPECT_THROW(DenseLayer(Matrix<double>(2, 3), {1.0}),
               std::invalid_argument);
  DenseLayer layer(Matrix<double>(4, 2), {0.0, 0.0});
  Device<double> dev({.m = 16});
  Matrix<double> bad(1, 3);
  EXPECT_THROW((void)layer.forward(dev, bad.view()), std::invalid_argument);
}

TEST(DenseLayerTest, BatchStreamsThroughResidentWeights) {
  // Doubling the batch must not change the tensor-call count (only rows
  // streamed): the weight tiles stay resident.
  auto w = random_matrix(32, 32, 1);
  DenseLayer layer(w, std::vector<double>(32, 0.0));
  Device<double> dev_small({.m = 256, .latency = 100});
  Device<double> dev_large({.m = 256, .latency = 100});
  (void)layer.forward(dev_small, random_matrix(64, 32, 2).view());
  (void)layer.forward(dev_large, random_matrix(128, 32, 3).view());
  EXPECT_EQ(dev_small.counters().tensor_calls,
            dev_large.counters().tensor_calls);
  EXPECT_EQ(dev_small.counters().latency_time,
            dev_large.counters().latency_time);
}

TEST(MlpTest, ComposesLayersAndValidatesWidths) {
  Mlp mlp;
  mlp.add_layer(DenseLayer(random_matrix(8, 16, 11),
                           std::vector<double>(16, 0.1)));
  mlp.add_layer(DenseLayer(random_matrix(16, 4, 12),
                           std::vector<double>(4, -0.1)));
  EXPECT_EQ(mlp.depth(), 2u);
  EXPECT_THROW(mlp.add_layer(DenseLayer(random_matrix(5, 3, 13),
                                        std::vector<double>(3, 0.0))),
               std::invalid_argument);
  Device<double> dev({.m = 16});
  auto out = mlp.forward(dev, random_matrix(10, 8, 14).view());
  EXPECT_EQ(out.rows(), 10u);
  EXPECT_EQ(out.cols(), 4u);
}

TEST(MlpTest, EmptyNetworkThrows) {
  Mlp mlp;
  Device<double> dev({.m = 16});
  Matrix<double> x(1, 4);
  EXPECT_THROW((void)mlp.forward(dev, x.view()), std::invalid_argument);
}

class ConvSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {};

TEST_P(ConvSweep, Im2colMatchesDirect) {
  const auto [h, cin, cout, kk] = GetParam();
  const std::size_t w = h + 3;
  auto input = random_matrix(cin * h, w, 100 + h + cin);
  auto filters = random_matrix(cout, cin * kk * kk, 200 + cout + kk);
  Device<double> dev({.m = 64});
  auto got = conv2d_tcu(dev, input.view(), cin, filters.view(), kk, kk);
  Counters ram;
  auto expect = conv2d_ram(input.view(), cin, filters.view(), kk, kk, ram);
  ASSERT_EQ(got.rows(), expect.rows());
  ASSERT_EQ(got.cols(), expect.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      ASSERT_NEAR(got(i, j), expect(i, j), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Combine(::testing::Values<std::size_t>(6, 10, 16),  // h
                       ::testing::Values<std::size_t>(1, 3),       // cin
                       ::testing::Values<std::size_t>(1, 4),       // cout
                       ::testing::Values<std::size_t>(1, 3)));     // k

TEST(Conv, IdentityFilterCopiesChannel) {
  const std::size_t h = 5, w = 5;
  auto input = random_matrix(h, w, 31);
  Matrix<double> filters(1, 9, 0.0);
  filters(0, 4) = 1.0;  // centre tap of a 3x3 kernel
  Device<double> dev({.m = 16});
  auto out = conv2d_tcu(dev, input.view(), 1, filters.view(), 3, 3);
  ASSERT_EQ(out.rows(), 3u);
  ASSERT_EQ(out.cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(out(i, j), input(i + 1, j + 1), 1e-12);
    }
  }
}

TEST(Conv, ValidatesShapes) {
  Device<double> dev({.m = 16});
  auto input = random_matrix(10, 8, 41);
  auto filters = random_matrix(2, 9, 42);
  EXPECT_THROW((void)conv2d_tcu(dev, input.view(), 3, filters.view(), 3, 3),
               std::invalid_argument);  // 10 rows not divisible by 3
  EXPECT_THROW((void)conv2d_tcu(dev, input.view(), 1, filters.view(), 3, 2),
               std::invalid_argument);  // bank width mismatch
  EXPECT_THROW(
      (void)conv2d_tcu(dev, input.view(), 1,
                       random_matrix(2, 121, 43).view(), 11, 11),
      std::invalid_argument);  // kernel larger than input
}

TEST(BatchSharedB, MatchesPerItemProducts) {
  Device<double> dev({.m = 64}), ref({.m = 64});
  auto b = random_matrix(8, 8, 51);
  std::vector<Matrix<double>> batch;
  for (int t = 0; t < 5; ++t) batch.push_back(random_matrix(16, 8, 60 + t));
  auto out = tcu::linalg::matmul_batch_shared_b(dev, batch, b.view());
  ASSERT_EQ(out.size(), 5u);
  for (int t = 0; t < 5; ++t) {
    auto expect = tcu::linalg::matmul_tcu(ref, batch[t].view(), b.view());
    for (std::size_t i = 0; i < 16; ++i) {
      for (std::size_t j = 0; j < 8; ++j) {
        ASSERT_NEAR(out[t](i, j), expect(i, j), 1e-12);
      }
    }
  }
  // One tall call for the whole batch (single weight tile here).
  EXPECT_EQ(dev.counters().tensor_calls, 1u);
}

// The asymmetry property (§3, property 3): growing the batch must not add
// latency charges — l is paid per resident weight tile, never per item.
TEST(BatchSharedB, ChargesLatencyPerWeightTileNotPerItem) {
  const std::uint64_t ell = 1000;
  const std::size_t s = 8;  // m = 64
  auto b = random_matrix(2 * s, 2 * s, 90);  // 2x2 grid of weight tiles
  std::vector<std::uint64_t> latency_seen;
  for (const std::size_t items : {1u, 3u, 9u}) {
    Device<double> dev({.m = s * s, .latency = ell});
    std::vector<Matrix<double>> batch;
    for (std::size_t t = 0; t < items; ++t) {
      batch.push_back(random_matrix(2 * s, 2 * s, 91 + t));
    }
    (void)tcu::linalg::matmul_batch_shared_b(dev, batch, b.view());
    // 4 weight tiles -> 4 tall calls -> exactly 4 * l of latency.
    EXPECT_EQ(dev.counters().tensor_calls, 4u) << items;
    EXPECT_EQ(dev.counters().latency_time, 4u * ell) << items;
    latency_seen.push_back(dev.counters().latency_time);
  }
  EXPECT_EQ(latency_seen[0], latency_seen[1]);
  EXPECT_EQ(latency_seen[1], latency_seen[2]);
}

TEST(BatchSharedB, ValidatesShapes) {
  Device<double> dev({.m = 16});
  auto b = random_matrix(4, 4, 71);
  std::vector<Matrix<double>> mixed{random_matrix(4, 4, 72),
                                    random_matrix(5, 4, 73)};
  EXPECT_THROW(
      (void)tcu::linalg::matmul_batch_shared_b(dev, mixed, b.view()),
      std::invalid_argument);
  EXPECT_TRUE(
      tcu::linalg::matmul_batch_shared_b(dev, {}, b.view()).empty());
}

}  // namespace
