#pragma once
// Linear (n, k)-stencil computations in the (m, l)-TCU model (§4.6).
//
// A linear stencil updates every cell of a sqrt(n) x sqrt(n) grid as a
// fixed linear combination of its 3x3 neighbourhood (out-of-range cells
// read as zero, matching the paper's zero-block convention); k sweeps are
// applied. The paper's pipeline:
//
//   * Lemma 2 — the unrolled weight matrix W ((2k+1) x (2k+1), with
//     A_k[i,j] = sum_{|a|,|b| <= k} W[k+a, k+b] A[i+a, j+b]) equals the
//     k-th convolution power of the one-step 3x3 kernel. It is computed by
//     repeated squaring of the associated bivariate polynomial, each
//     product a 2-D DFT convolution on the tensor unit:
//     O(k^2 log_m k + l log k).
//   * Lemma 1 — the grid is cut into k x k blocks; each block's 3k x 3k
//     neighbourhood is convolved with W (one circular convolution, no
//     wrap-around affects the centre), and the centre k x k is the result.
//     All Theta(n/k^2) convolutions share the tensor calls of each DFT
//     level through batched transforms (tall left operands).
//   * Theorem 8 — total O(n log_m k + l log k).
//
// `stencil_direct` is the RAM baseline: k explicit sweeps, Theta(nk).
//
// Boundary semantics: the unrolled weight-matrix representation the paper
// builds on is exact for a grid embedded in an infinite zero plane (mass
// leaving the grid in an intermediate sweep may flow back). Both the
// baseline and the TCU pipeline implement these semantics; the baseline
// sweeps a halo of k cells per side to realize them exactly.

#include <complex>
#include <cstdint>

#include "core/device.hpp"
#include "core/matrix.hpp"
#include "core/pool.hpp"

namespace tcu::stencil {

using Complex = std::complex<double>;

/// One-step 3x3 kernel; entry (a+1, b+1) weights neighbour (i+a, j+b).
using Kernel3 = Matrix<double>;

/// Discretized 2-D heat equation weights (the paper's running example):
/// cx = alpha dt / dx^2, cy = alpha dt / dy^2.
Kernel3 heat_kernel(double cx, double cy);

/// RAM baseline: k sweeps with zero boundary, Theta(9 n k) charged.
Matrix<double> stencil_direct(ConstMatrixView<double> grid, const Kernel3& w,
                              std::size_t k, Counters& counters);

/// Reference weight-matrix computation: k-fold linear self-convolution of
/// the 3x3 kernel, Theta(k^3) on the RAM (the "trivial" method the paper
/// improves on).
Matrix<double> weight_matrix_unrolled(const Kernel3& w, std::size_t k,
                                      Counters& counters);

/// Lemma 2: the (2k+1) x (2k+1) weight matrix via repeated squaring of
/// the kernel polynomial with DFT convolutions on the tensor unit.
Matrix<double> weight_matrix_tcu(Device<Complex>& dev, const Kernel3& w,
                                 std::size_t k);

/// Lemma 1 + Theorem 8: the full (n, k)-stencil via blocked convolution
/// with batched DFTs. Any grid size (padded to a multiple of k with
/// zeros, which is exact for the zero-boundary semantics). Every DFT
/// level's Fourier tile is residency-tagged (DftOptions::affinity): the
/// Theta(n/k^2) batched transforms re-visit the same levels many times
/// per call, so the tile stays resident instead of reloading — the
/// serial path shows strictly positive `Counters::resident_hits`.
Matrix<double> stencil_tcu(Device<Complex>& dev,
                           ConstMatrixView<double> grid, const Kernel3& w,
                           std::size_t k);

/// Multi-unit stencil over a caller-owned persistent executor: each DFT
/// level's single tall tensor product is row-chunked across the pool's
/// units, and every chunk declares the level's Fourier-tile key as its
/// chain — so batched transforms pay each level's tile load once per
/// lane while it stays cached, not once per chunk. Outputs are
/// bit-identical to `stencil_tcu` at every unit count, and so is every
/// aggregate counter except the documented chunking effect on the
/// latency split: with `calls` the aggregate tensor-call count,
/// `latency_time + latency_saved - serial.latency_time ==
/// (calls - serial.tensor_calls) * l` (a 1-unit pool matches serial in
/// every field).
Matrix<double> stencil_tcu_pool(PoolExecutor<Complex>& exec,
                                ConstMatrixView<double> grid,
                                const Kernel3& w, std::size_t k);

/// Same, with a throwaway executor spawned for the call.
Matrix<double> stencil_tcu_pool(DevicePool<Complex>& pool,
                                ConstMatrixView<double> grid,
                                const Kernel3& w, std::size_t k);

}  // namespace tcu::stencil
