#include "stencil/stencil1d.hpp"

#include <array>
#include <stdexcept>

#include "stencil/stencil_ctx.hpp"

namespace tcu::stencil {

namespace {

/// The residency-tagged DFT dispatch shared with the 2-D pipeline (see
/// stencil_ctx.hpp).
using Stencil1dCtx = detail::DftDispatch;

/// Linear convolution of two real vectors via a circular DFT convolution
/// of exactly the output length.
std::vector<double> conv1_linear_tcu(const Stencil1dCtx& ctx,
                                     const std::vector<double>& a,
                                     const std::vector<double>& b) {
  const std::size_t out_len = a.size() + b.size() - 1;
  // Power-of-two circular size: exact for linear convolution and keeps
  // every DFT length smooth (no Bluestein detour on odd sizes).
  std::size_t len = 1;
  while (len < out_len) len *= 2;
  dft::CVec fa(len, dft::Complex{}), fb(len, dft::Complex{});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  ctx.charge_cpu(a.size() + b.size());
  auto conv = ctx.circular_convolve(fa, fb);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = conv[i].real();
  ctx.charge_cpu(out_len);
  return out;
}

std::vector<double> kernel_power1(const Stencil1dCtx& ctx,
                                  const std::vector<double>& w,
                                  std::size_t k) {
  if (k == 1) return w;
  auto half = kernel_power1(ctx, w, k / 2);
  auto sq = conv1_linear_tcu(ctx, half, half);
  if (k % 2 == 0) return sq;
  return conv1_linear_tcu(ctx, sq, w);
}

std::vector<double> stencil1d_impl(const Stencil1dCtx& ctx,
                                   const std::vector<double>& signal,
                                   const std::array<double, 3>& w,
                                   std::size_t k) {
  if (k == 0) throw std::invalid_argument("stencil1d: k must be >= 1");
  const std::size_t n = signal.size();
  if (n == 0) return {};

  const auto W = kernel_power1(ctx, {w[0], w[1], w[2]}, k);  // length 2k+1
  const std::size_t N = 3 * k;

  // Zero-pad the signal to a multiple of k.
  const std::size_t pn = ((n + k - 1) / k) * k;
  std::vector<double> padded(pn, 0.0);
  for (std::size_t i = 0; i < n; ++i) padded[i] = signal[i];
  ctx.charge_cpu(pn);

  // Correlation-as-convolution kernel at size N.
  dft::CVec kf(N, dft::Complex{});
  for (std::int64_t a = -static_cast<std::int64_t>(k);
       a <= static_cast<std::int64_t>(k); ++a) {
    const auto u = static_cast<std::size_t>(
        ((-a) % static_cast<std::int64_t>(N) + static_cast<std::int64_t>(N)) %
        static_cast<std::int64_t>(N));
    kf[u] = W[static_cast<std::size_t>(k + a)];
  }
  ctx.charge_cpu(2 * k + 1);
  Matrix<dft::Complex> fk(1, N);
  for (std::size_t i = 0; i < N; ++i) fk(0, i) = kf[i];
  ctx.dft_batch(fk.view());

  // All block neighbourhoods as one batch (the 1-D Lemma 1).
  const std::size_t blocks = pn / k;
  Matrix<dft::Complex> batch(blocks, N, dft::Complex{});
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    for (std::size_t i = 0; i < N; ++i) {
      const std::int64_t g = static_cast<std::int64_t>(blk * k + i) -
                             static_cast<std::int64_t>(k);
      if (g >= 0 && g < static_cast<std::int64_t>(pn)) {
        batch(blk, i) = padded[static_cast<std::size_t>(g)];
      }
    }
  }
  ctx.charge_cpu(blocks * N);
  ctx.dft_batch(batch.view());
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    for (std::size_t i = 0; i < N; ++i) batch(blk, i) *= fk(0, i);
  }
  ctx.charge_cpu(blocks * N);
  ctx.idft_batch(batch.view());

  std::vector<double> out(n);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t g = blk * k + i;
      if (g < n) out[g] = batch(blk, k + i).real();
    }
  }
  ctx.charge_cpu(n);
  return out;
}

}  // namespace

std::vector<double> stencil1d_direct(const std::vector<double>& signal,
                                     const std::array<double, 3>& w,
                                     std::size_t k, Counters& counters) {
  if (k == 0) throw std::invalid_argument("stencil1d: k must be >= 1");
  const std::size_t n = signal.size();
  std::vector<double> cur(n + 2 * k, 0.0);
  for (std::size_t i = 0; i < n; ++i) cur[i + k] = signal[i];
  std::vector<double> next(cur.size(), 0.0);
  for (std::size_t sweep = 0; sweep < k; ++sweep) {
    for (std::size_t i = 0; i < cur.size(); ++i) {
      double acc = w[1] * cur[i];
      if (i > 0) acc += w[0] * cur[i - 1];
      if (i + 1 < cur.size()) acc += w[2] * cur[i + 1];
      next[i] = acc;
    }
    std::swap(cur, next);
    counters.charge_cpu(3 * cur.size());
  }
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = cur[i + k];
  counters.charge_cpu(n);
  return out;
}

std::vector<double> weight_vector_tcu(Device<dft::Complex>& dev,
                                      const std::array<double, 3>& w,
                                      std::size_t k) {
  if (k == 0) throw std::invalid_argument("stencil1d: k must be >= 1");
  return kernel_power1(Stencil1dCtx{.dev = &dev}, {w[0], w[1], w[2]}, k);
}

std::vector<double> stencil1d_tcu(Device<dft::Complex>& dev,
                                  const std::vector<double>& signal,
                                  const std::array<double, 3>& w,
                                  std::size_t k) {
  return stencil1d_impl(Stencil1dCtx{.dev = &dev}, signal, w, k);
}

std::vector<double> stencil1d_tcu_pool(PoolExecutor<dft::Complex>& exec,
                                       const std::vector<double>& signal,
                                       const std::array<double, 3>& w,
                                       std::size_t k) {
  return stencil1d_impl(Stencil1dCtx{.exec = &exec}, signal, w, k);
}

std::vector<double> stencil1d_tcu_pool(DevicePool<dft::Complex>& pool,
                                       const std::vector<double>& signal,
                                       const std::array<double, 3>& w,
                                       std::size_t k) {
  PoolExecutor<dft::Complex> exec(pool);
  return stencil1d_tcu_pool(exec, signal, w, k);
}

}  // namespace tcu::stencil
