#pragma once
// One-dimensional linear (n, k)-stencils.
//
// §4.6 notes the techniques "extend to any d = O(1)"; this is the d = 1
// instantiation, useful for time-series smoothing and as a simpler lens
// on the same machinery: a 3-tap kernel applied k times equals one
// (2k+1)-tap kernel (the k-th convolution power), evaluated blockwise
// with batched DFT convolutions. Semantics match the 2-D module: the
// signal sits in an infinite zero line.

#include <array>
#include <vector>

#include "core/device.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"

namespace tcu::stencil {

/// w = {w[-1], w[0], w[+1]} applied for k sweeps, direct RAM loop with a
/// k-cell halo; Theta((n + k) k) charged.
std::vector<double> stencil1d_direct(const std::vector<double>& signal,
                                     const std::array<double, 3>& w,
                                     std::size_t k, Counters& counters);

/// The (2k+1)-tap unrolled kernel of the 3-tap stencil (k-th convolution
/// power), computed with DFT convolutions on the device.
std::vector<double> weight_vector_tcu(Device<dft::Complex>& dev,
                                      const std::array<double, 3>& w,
                                      std::size_t k);

/// Blocked-convolution evaluation (the 1-D Lemma 1 + Theorem 8). DFT
/// level tiles are residency-tagged, exactly as in the 2-D pipeline.
std::vector<double> stencil1d_tcu(Device<dft::Complex>& dev,
                                  const std::vector<double>& signal,
                                  const std::array<double, 3>& w,
                                  std::size_t k);

/// Multi-unit 1-D stencil: same contract as `stencil_tcu_pool` — outputs
/// bit-identical to the serial path at every unit count, counters
/// matching modulo the documented chunked-call latency split.
std::vector<double> stencil1d_tcu_pool(PoolExecutor<dft::Complex>& exec,
                                       const std::vector<double>& signal,
                                       const std::array<double, 3>& w,
                                       std::size_t k);

/// Same, with a throwaway executor spawned for the call.
std::vector<double> stencil1d_tcu_pool(DevicePool<dft::Complex>& pool,
                                       const std::vector<double>& signal,
                                       const std::array<double, 3>& w,
                                       std::size_t k);

}  // namespace tcu::stencil
