#include "stencil/stencil.hpp"

#include <stdexcept>
#include <vector>

#include "dft/dft.hpp"
#include "stencil/stencil_ctx.hpp"

namespace tcu::stencil {

namespace {

/// Execution handle threading the Lemma 1 / Lemma 2 pipeline through
/// either a single device or a pool executor — the residency-tagged DFT
/// dispatch shared with the 1-D pipeline (see stencil_ctx.hpp).
using StencilCtx = detail::DftDispatch;

/// Linear 2-D convolution of real matrices a (ra x ca) and b (rb x cb)
/// into (ra+rb-1) x (ca+cb-1), computed as a circular convolution of
/// exactly that size on the tensor unit (no wrap-around can occur at full
/// size). Used by the Lemma 2 polynomial powering.
Matrix<double> conv2_linear_tcu(const StencilCtx& ctx,
                                ConstMatrixView<double> a,
                                ConstMatrixView<double> b) {
  const std::size_t out_rows = a.rows + b.rows - 1;
  const std::size_t out_cols = a.cols + b.cols - 1;
  // Pad the circular size up to a power of two: zero padding keeps the
  // linear convolution exact (no index can wrap) and keeps every DFT
  // length smooth, avoiding Bluestein's constant-factor detour on the
  // odd sizes the kernel powering would otherwise produce.
  std::size_t rows = 1, cols = 1;
  while (rows < out_rows) rows *= 2;
  while (cols < out_cols) cols *= 2;
  Matrix<Complex> pa(rows, cols, Complex{});
  Matrix<Complex> pb(rows, cols, Complex{});
  for (std::size_t i = 0; i < a.rows; ++i) {
    for (std::size_t j = 0; j < a.cols; ++j) pa(i, j) = a(i, j);
  }
  for (std::size_t i = 0; i < b.rows; ++i) {
    for (std::size_t j = 0; j < b.cols; ++j) pb(i, j) = b(i, j);
  }
  ctx.charge_cpu(2 * rows * cols);
  auto full = ctx.circular_convolve2(pa.view(), pb.view());
  Matrix<double> out(out_rows, out_cols);
  for (std::size_t i = 0; i < out_rows; ++i) {
    for (std::size_t j = 0; j < out_cols; ++j) {
      out(i, j) = full(i, j).real();
    }
  }
  ctx.charge_cpu(out_rows * out_cols);
  return out;
}

/// Convolution power by repeated squaring (the P(x,y)^k of Lemma 2).
Matrix<double> kernel_power(const StencilCtx& ctx, const Kernel3& w,
                            std::size_t k) {
  if (k == 1) return w;
  Matrix<double> half = kernel_power(ctx, w, k / 2);
  Matrix<double> sq = conv2_linear_tcu(ctx, half.view(), half.view());
  if (k % 2 == 0) return sq;
  return conv2_linear_tcu(ctx, sq.view(), w.view());
}

void check_kernel(const Kernel3& w) {
  if (w.rows() != 3 || w.cols() != 3) {
    throw std::invalid_argument("stencil: kernel must be 3x3");
  }
}

/// Batched in-place 2-D DFT of `count` contiguous N x N blocks stacked
/// vertically in `stack` ((count*N) x N). The row pass transforms all
/// rows of all blocks with one batched call per DFT level; the column
/// pass transposes each block, batches again, and transposes back.
void dft2_stacked(const StencilCtx& ctx, MatrixView<Complex> stack,
                  std::size_t block, bool inverse) {
  auto pass = [&](MatrixView<Complex> rows) {
    if (inverse) {
      ctx.idft_batch(rows);
    } else {
      ctx.dft_batch(rows);
    }
  };
  pass(stack);
  const std::size_t count = stack.rows / block;
  for (std::size_t bidx = 0; bidx < count; ++bidx) {
    auto blk = stack.subview(bidx * block, 0, block, block);
    for (std::size_t i = 0; i < block; ++i) {
      for (std::size_t j = i + 1; j < block; ++j) {
        std::swap(blk(i, j), blk(j, i));
      }
    }
  }
  ctx.charge_cpu(stack.rows * block);
  pass(stack);
  for (std::size_t bidx = 0; bidx < count; ++bidx) {
    auto blk = stack.subview(bidx * block, 0, block, block);
    for (std::size_t i = 0; i < block; ++i) {
      for (std::size_t j = i + 1; j < block; ++j) {
        std::swap(blk(i, j), blk(j, i));
      }
    }
  }
  ctx.charge_cpu(stack.rows * block);
}

Matrix<double> weight_matrix_impl(const StencilCtx& ctx, const Kernel3& w,
                                  std::size_t k) {
  check_kernel(w);
  if (k == 0) throw std::invalid_argument("stencil: k must be >= 1");
  return kernel_power(ctx, w, k);
}

Matrix<double> stencil_impl(const StencilCtx& ctx,
                            ConstMatrixView<double> grid, const Kernel3& w,
                            std::size_t k) {
  check_kernel(w);
  if (k == 0) throw std::invalid_argument("stencil: k must be >= 1");
  const std::size_t rows = grid.rows, cols = grid.cols;
  if (rows == 0 || cols == 0) return Matrix<double>(rows, cols);

  // Zero-pad the grid to a multiple of k per side (exact for the
  // zero-boundary semantics).
  const std::size_t pr = ((rows + k - 1) / k) * k;
  const std::size_t pc = ((cols + k - 1) / k) * k;
  Matrix<double> padded(pr, pc, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) padded(i, j) = grid(i, j);
  }
  ctx.charge_cpu(pr * pc);

  // Lemma 2: the unrolled weight matrix.
  Matrix<double> W = weight_matrix_impl(ctx, w, k);
  const std::size_t N = 3 * k;  // block neighbourhood / convolution size

  // Kernel for correlation-as-convolution at size N:
  // Kf[(-a) mod N][(-b) mod N] = W[k+a][k+b].
  Matrix<Complex> kf(N, N, Complex{});
  for (std::int64_t a = -static_cast<std::int64_t>(k);
       a <= static_cast<std::int64_t>(k); ++a) {
    for (std::int64_t b = -static_cast<std::int64_t>(k);
         b <= static_cast<std::int64_t>(k); ++b) {
      const std::size_t u = static_cast<std::size_t>(
          ((-a) % static_cast<std::int64_t>(N) + static_cast<std::int64_t>(N)) %
          static_cast<std::int64_t>(N));
      const std::size_t v = static_cast<std::size_t>(
          ((-b) % static_cast<std::int64_t>(N) + static_cast<std::int64_t>(N)) %
          static_cast<std::int64_t>(N));
      kf(u, v) = W(static_cast<std::size_t>(k + a),
                   static_cast<std::size_t>(k + b));
    }
  }
  ctx.charge_cpu((2 * k + 1) * (2 * k + 1));
  Matrix<Complex> fk = ctx.dft2(kf.view(), false);

  // Assemble every block's 3k x 3k neighbourhood, stacked vertically so
  // the batched DFT shares tensor calls across all blocks (Lemma 1).
  const std::size_t br = pr / k, bc = pc / k;
  const std::size_t count = br * bc;
  Matrix<Complex> stack(count * N, N, Complex{});
  for (std::size_t rb = 0; rb < br; ++rb) {
    for (std::size_t cb = 0; cb < bc; ++cb) {
      const std::size_t bidx = rb * bc + cb;
      for (std::size_t i = 0; i < N; ++i) {
        const std::int64_t gi = static_cast<std::int64_t>(rb * k + i) -
                                static_cast<std::int64_t>(k);
        if (gi < 0 || gi >= static_cast<std::int64_t>(pr)) continue;
        for (std::size_t j = 0; j < N; ++j) {
          const std::int64_t gj = static_cast<std::int64_t>(cb * k + j) -
                                  static_cast<std::int64_t>(k);
          if (gj < 0 || gj >= static_cast<std::int64_t>(pc)) continue;
          stack(bidx * N + i, j) =
              padded(static_cast<std::size_t>(gi),
                     static_cast<std::size_t>(gj));
        }
      }
    }
  }
  ctx.charge_cpu(count * N * N);

  // Forward transform of all neighbourhoods, pointwise multiply with the
  // kernel spectrum, inverse transform.
  dft2_stacked(ctx, stack.view(), N, /*inverse=*/false);
  for (std::size_t bidx = 0; bidx < count; ++bidx) {
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = 0; j < N; ++j) {
        stack(bidx * N + i, j) *= fk(i, j);
      }
    }
  }
  ctx.charge_cpu(count * N * N);
  dft2_stacked(ctx, stack.view(), N, /*inverse=*/true);

  // Extract the centre k x k of each block.
  Matrix<double> out(rows, cols, 0.0);
  for (std::size_t rb = 0; rb < br; ++rb) {
    for (std::size_t cb = 0; cb < bc; ++cb) {
      const std::size_t bidx = rb * bc + cb;
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t gi = rb * k + i;
        if (gi >= rows) continue;
        for (std::size_t j = 0; j < k; ++j) {
          const std::size_t gj = cb * k + j;
          if (gj >= cols) continue;
          out(gi, gj) = stack(bidx * N + k + i, k + j).real();
        }
      }
    }
  }
  ctx.charge_cpu(count * k * k);
  return out;
}

}  // namespace

Kernel3 heat_kernel(double cx, double cy) {
  Kernel3 w(3, 3, 0.0);
  w(1, 1) = 1.0 - 2.0 * cx - 2.0 * cy;
  w(0, 1) = w(2, 1) = cx;  // neighbours in the first grid dimension
  w(1, 0) = w(1, 2) = cy;  // neighbours in the second grid dimension
  return w;
}

Matrix<double> stencil_direct(ConstMatrixView<double> grid, const Kernel3& w,
                              std::size_t k, Counters& counters) {
  check_kernel(w);
  const std::size_t rows = grid.rows, cols = grid.cols;
  // The paper's linear-stencil semantics are those of the unrolled weight
  // matrix: the grid sits inside an infinite zero plane, so mass that
  // leaves the grid in an intermediate sweep can flow back. Simulate this
  // exactly by sweeping over a halo of k cells per side (cells further
  // than k away can never influence the grid within k sweeps).
  const std::size_t er = rows + 2 * k, ec = cols + 2 * k;
  Matrix<double> cur(er, ec, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) cur(i + k, j + k) = grid(i, j);
  }
  Matrix<double> next(er, ec, 0.0);
  for (std::size_t sweep = 0; sweep < k; ++sweep) {
    for (std::size_t i = 0; i < er; ++i) {
      for (std::size_t j = 0; j < ec; ++j) {
        double acc = 0.0;
        for (int a = -1; a <= 1; ++a) {
          for (int b = -1; b <= 1; ++b) {
            const std::int64_t ii = static_cast<std::int64_t>(i) + a;
            const std::int64_t jj = static_cast<std::int64_t>(j) + b;
            if (ii < 0 || jj < 0 || ii >= static_cast<std::int64_t>(er) ||
                jj >= static_cast<std::int64_t>(ec)) {
              continue;
            }
            acc += w(static_cast<std::size_t>(a + 1),
                     static_cast<std::size_t>(b + 1)) *
                   cur(static_cast<std::size_t>(ii),
                       static_cast<std::size_t>(jj));
          }
        }
        next(i, j) = acc;
      }
    }
    std::swap(cur, next);
    counters.charge_cpu(9 * er * ec);
  }
  Matrix<double> out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) out(i, j) = cur(i + k, j + k);
  }
  counters.charge_cpu(rows * cols);
  return out;
}

Matrix<double> weight_matrix_unrolled(const Kernel3& w, std::size_t k,
                                      Counters& counters) {
  check_kernel(w);
  if (k == 0) throw std::invalid_argument("stencil: k must be >= 1");
  // W_1 = w; W_{t} = W_{t-1} (*) w (linear convolution in offset space).
  Matrix<double> cur = w;
  for (std::size_t t = 1; t < k; ++t) {
    const std::size_t d = cur.rows();
    Matrix<double> next(d + 2, d + 2, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        for (std::size_t a = 0; a < 3; ++a) {
          for (std::size_t b = 0; b < 3; ++b) {
            next(i + a, j + b) += cur(i, j) * w(a, b);
          }
        }
      }
    }
    counters.charge_cpu(9 * d * d);
    cur = std::move(next);
  }
  return cur;
}

Matrix<double> weight_matrix_tcu(Device<Complex>& dev, const Kernel3& w,
                                 std::size_t k) {
  return weight_matrix_impl(StencilCtx{.dev = &dev}, w, k);
}

Matrix<double> stencil_tcu(Device<Complex>& dev,
                           ConstMatrixView<double> grid, const Kernel3& w,
                           std::size_t k) {
  return stencil_impl(StencilCtx{.dev = &dev}, grid, w, k);
}

Matrix<double> stencil_tcu_pool(PoolExecutor<Complex>& exec,
                                ConstMatrixView<double> grid,
                                const Kernel3& w, std::size_t k) {
  return stencil_impl(StencilCtx{.exec = &exec}, grid, w, k);
}

Matrix<double> stencil_tcu_pool(DevicePool<Complex>& pool,
                                ConstMatrixView<double> grid,
                                const Kernel3& w, std::size_t k) {
  PoolExecutor<Complex> exec(pool);
  return stencil_tcu_pool(exec, grid, w, k);
}

}  // namespace tcu::stencil
