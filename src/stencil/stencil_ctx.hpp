#pragma once
// Internal execution handle shared by the 1-D and 2-D stencil pipelines
// (stencil.cpp / stencil1d.cpp): dispatches the pipelines' DFT work to a
// single device or a pool executor — always with DftOptions::affinity
// on, because the Lemma 1 / Lemma 2 machinery re-visits the same
// Cooley-Tukey levels many times per call, so the level tiles are kept
// resident instead of reloaded. On the pool path each level's chunks
// additionally declare the level key as their chain, landing chunks on
// lanes that already hold the tile. Not part of the public API.

#include <cstdint>

#include "core/device.hpp"
#include "core/matrix.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"

namespace tcu::stencil::detail {

struct DftDispatch {
  Device<dft::Complex>* dev = nullptr;
  PoolExecutor<dft::Complex>* exec = nullptr;

  // Epoch mode spelled out (it is also the DftOptions default): the
  // pipelines' transform levels overlap as one non-barrier round, with
  // the gather/twiddle glue charged to the executing units.
  static constexpr tcu::dft::DftOptions kDft{.affinity = true,
                                             .mode = ExecMode::kEpoch};

  void charge_cpu(std::uint64_t ops) const {
    if (dev) {
      dev->charge_cpu(ops);
    } else {
      exec->pool().charge_cpu(ops);
    }
  }

  void dft_batch(MatrixView<dft::Complex> batch) const {
    if (dev) {
      tcu::dft::dft_batch_tcu(*dev, batch, kDft);
    } else {
      tcu::dft::dft_batch_tcu(*exec, batch, kDft);
    }
  }

  void idft_batch(MatrixView<dft::Complex> batch) const {
    if (dev) {
      tcu::dft::idft_batch_tcu(*dev, batch, kDft);
    } else {
      tcu::dft::idft_batch_tcu(*exec, batch, kDft);
    }
  }

  Matrix<dft::Complex> dft2(ConstMatrixView<dft::Complex> x,
                            bool inverse) const {
    return dev ? tcu::dft::dft2_tcu(*dev, x, inverse, kDft)
               : tcu::dft::dft2_tcu(*exec, x, inverse, kDft);
  }

  dft::CVec circular_convolve(const dft::CVec& a, const dft::CVec& b) const {
    return dev ? tcu::dft::circular_convolve_tcu(*dev, a, b, kDft)
               : tcu::dft::circular_convolve_tcu(*exec, a, b, kDft);
  }

  Matrix<dft::Complex> circular_convolve2(
      ConstMatrixView<dft::Complex> a,
      ConstMatrixView<dft::Complex> kernel) const {
    return dev ? tcu::dft::circular_convolve2_tcu(*dev, a, kernel, kDft)
               : tcu::dft::circular_convolve2_tcu(*exec, a, kernel, kDft);
  }
};

}  // namespace tcu::stencil::detail
