#include "fault/fault.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "util/rng.hpp"

namespace tcu::fault {

/// Per-unit injector state. All mutation happens in `on_call`/`on_spawn`
/// on the thread that owns the unit; the plan's aggregate accessors read
/// it only at quiescent points (the same contract as Device counters).
class FaultPlan::UnitFault final : public UnitFaultInjector {
 public:
  UnitFault(std::uint64_t seed, std::size_t unit, const FaultSpec& spec)
      : spec_(&spec), unit_(unit), rng_(mix(seed, unit)) {
    for (const auto& [u, call] : spec.transient_at) {
      if (u == unit) transient_calls_.push_back(call);
    }
    for (const auto& [u, call] : spec.death_at) {
      if (u == unit && call < death_call_) death_call_ = call;
    }
    for (const std::size_t u : spec.spawn_fail) {
      if (u == unit) spawn_fails_ = true;
    }
    for (const std::size_t u : spec.stragglers) {
      if (u == unit) straggler_ = true;
    }
  }

  void on_call() override {
    const std::uint64_t call = calls_++;
    if (straggler_ && spec_->straggle_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(spec_->straggle_us));
    }
    if (call >= death_call_) {
      if (!permanent_tripped_) permanent_tripped_ = true;
      throw PermanentUnitFault("injected permanent fault: unit " +
                               std::to_string(unit_) + " died at call " +
                               std::to_string(death_call_));
    }
    bool transient = false;
    for (const std::uint64_t c : transient_calls_) {
      if (c == call) transient = true;
    }
    // Advance the rate stream on every call (see FaultSpec::transient_rate
    // — the draw for call k must not depend on earlier outcomes).
    const bool drawn =
        spec_->transient_rate > 0.0 && rng_.bernoulli(spec_->transient_rate);
    if (drawn && rate_transients_ < spec_->max_rate_transients_per_unit) {
      ++rate_transients_;
      transient = true;
    }
    if (transient) {
      ++transients_;
      throw TransientFault("injected transient fault: unit " +
                           std::to_string(unit_) + ", call " +
                           std::to_string(call));
    }
  }

  void on_spawn() override {
    if (spawn_fails_) {
      ++spawn_faults_;
      throw SpawnFault("injected spawn fault: unit " + std::to_string(unit_));
    }
  }

  std::uint64_t calls() const { return calls_; }
  std::uint64_t transients() const { return transients_; }
  bool permanent_tripped() const { return permanent_tripped_; }
  std::uint64_t spawn_faults() const { return spawn_faults_; }

 private:
  static std::uint64_t mix(std::uint64_t seed, std::size_t unit) {
    std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL *
                              (static_cast<std::uint64_t>(unit) + 1));
    return util::splitmix64(s);
  }

  const FaultSpec* spec_;
  std::size_t unit_;
  util::Xoshiro256 rng_;
  std::vector<std::uint64_t> transient_calls_;
  std::uint64_t death_call_ = ~static_cast<std::uint64_t>(0);
  bool spawn_fails_ = false;
  bool straggler_ = false;
  std::uint64_t calls_ = 0;
  std::uint64_t transients_ = 0;
  std::uint64_t rate_transients_ = 0;
  std::uint64_t spawn_faults_ = 0;
  bool permanent_tripped_ = false;
};

FaultPlan::FaultPlan(std::uint64_t seed, FaultSpec spec)
    : seed_(seed), spec_(std::move(spec)) {}

FaultPlan::~FaultPlan() = default;

FaultPlan::UnitFault& FaultPlan::unit_state(std::size_t unit) {
  if (units_.size() <= unit) units_.resize(unit + 1);
  if (!units_[unit]) {
    units_[unit] = std::make_unique<UnitFault>(seed_, unit, spec_);
  }
  return *units_[unit];
}

UnitFaultInjector* FaultPlan::injector(std::size_t unit) {
  return &unit_state(unit);
}

std::uint64_t FaultPlan::calls(std::size_t unit) const {
  if (unit >= units_.size() || !units_[unit]) return 0;
  return units_[unit]->calls();
}

std::uint64_t FaultPlan::transients_injected() const {
  std::uint64_t total = 0;
  for (const auto& u : units_) {
    if (u) total += u->transients();
  }
  return total;
}

std::uint64_t FaultPlan::permanent_trips() const {
  std::uint64_t total = 0;
  for (const auto& u : units_) {
    if (u && u->permanent_tripped()) ++total;
  }
  return total;
}

std::uint64_t FaultPlan::spawn_faults() const {
  std::uint64_t total = 0;
  for (const auto& u : units_) {
    if (u) total += u->spawn_faults();
  }
  return total;
}

}  // namespace tcu::fault
