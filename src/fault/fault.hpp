#pragma once
// Seeded, deterministic fault injection for the pool runtime.
//
// The self-healing contract of `PoolExecutor` (core/pool.hpp) is only
// worth having if it can be exercised reproducibly: a fault that fires
// "sometimes" cannot pin down bit-identical recovery in a test. A
// `FaultPlan` therefore decides every fault from (seed, unit, call
// index) alone — exact per-call trigger lists plus a per-unit seeded
// Bernoulli stream — so two runs of the same schedule under the same
// plan fault at exactly the same calls, recover through exactly the
// same retries and redeals, and produce identical outputs and
// `RoundReport`s.
//
// Injection rides the `fault::UnitFaultInjector` seam of
// core/observer.hpp: the device consults the injector *before* a call
// validates, touches the resident set, or charges counters, so a
// faulted call leaves no trace and re-issuing it is bit-identical to a
// first attempt. Four fault classes are modeled:
//
//   * transient call failures  -> TransientFault (retried in place,
//     then redealt),
//   * permanent unit death     -> PermanentUnitFault (unit quarantined,
//     queue drained to survivors),
//   * worker-spawn EAGAIN      -> SpawnFault (executor degrades to the
//     workers that started),
//   * stragglers               -> a wall-clock sleep per call; pure
//     latency that never touches model counters, so outputs *and*
//     counters stay bit-identical to the straggler-free run.
//
// Recovery correctness rests on task idempotence: every pooled workload
// task overwrites its output from scratch (matmul strips, DFT level
// chunks, GE panels, conv2d strips), so re-running one — partially
// executed or not — converges to the same bits. Tasks that issue
// multiple in-place *accumulating* calls (graph/closure.cpp) are not
// idempotent and must not run under an active plan.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/observer.hpp"
#include "core/pool.hpp"

namespace tcu::fault {

/// Declarative description of what a FaultPlan injects. Call indices are
/// 0-based over a unit's lifetime sequence of `gemm`/`gemm_resident`
/// invocations (weak-model splits count as one invocation).
struct FaultSpec {
  /// Per-call probability of a transient fault, drawn from a per-unit
  /// stream seeded by (seed, unit). 0 disables the rate model. The
  /// stream is advanced on every call regardless of outcome, so whether
  /// call k faults never depends on how earlier faults resolved.
  double transient_rate = 0.0;
  /// Cap on rate-drawn transients per unit (exact `transient_at`
  /// triggers are not counted against it).
  std::uint64_t max_rate_transients_per_unit =
      ~static_cast<std::uint64_t>(0);
  /// Exact (unit, call index) transient triggers.
  std::vector<std::pair<std::size_t, std::uint64_t>> transient_at = {};
  /// (unit, call index) permanent deaths: that call and every later call
  /// on the unit fails.
  std::vector<std::pair<std::size_t, std::uint64_t>> death_at = {};
  /// Units whose worker-thread spawn fails (PoolExecutor degrades).
  std::vector<std::size_t> spawn_fail = {};
  /// Units that sleep `straggle_us` wall-clock microseconds per call.
  std::vector<std::size_t> stragglers = {};
  std::uint64_t straggle_us = 0;
};

/// A seeded plan owning one injector per unit (created on first request,
/// stable addresses for the plan's lifetime). Attach injectors while the
/// devices are quiescent — directly via Device::set_fault_injector or
/// pool-wide via ScopedInjection — and read the statistics only while
/// every attached device is quiescent (they are written from the units'
/// worker threads).
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultSpec spec = {});
  ~FaultPlan();
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  const FaultSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

  /// The injector for `unit` (unit indices need not be contiguous or
  /// bounded by any pool size).
  UnitFaultInjector* injector(std::size_t unit);

  /// Tensor calls the injector for `unit` has vetted (faulted included).
  std::uint64_t calls(std::size_t unit) const;
  /// Transient faults injected, summed over units.
  std::uint64_t transients_injected() const;
  /// Units whose permanent death has tripped at least once.
  std::uint64_t permanent_trips() const;
  /// Spawn faults injected, summed over units.
  std::uint64_t spawn_faults() const;

 private:
  class UnitFault;
  UnitFault& unit_state(std::size_t unit);

  std::uint64_t seed_;
  FaultSpec spec_;
  std::vector<std::unique_ptr<UnitFault>> units_;
};

/// RAII attachment of a plan to every unit of a DevicePool (unit i gets
/// the plan's injector i), restoring the previous injectors on exit.
/// Construct and destroy only while the pool is quiescent, and before
/// constructing a PoolExecutor when the plan injects spawn faults (the
/// executor consults the injectors as it spawns workers).
template <typename T>
class ScopedInjection {
 public:
  ScopedInjection(DevicePool<T>& pool, FaultPlan& plan) : pool_(&pool) {
    previous_.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      previous_.push_back(pool.unit(i).set_fault_injector(plan.injector(i)));
    }
  }
  ScopedInjection(const ScopedInjection&) = delete;
  ScopedInjection& operator=(const ScopedInjection&) = delete;
  ~ScopedInjection() {
    for (std::size_t i = previous_.size(); i-- > 0;) {
      pool_->unit(i).set_fault_injector(previous_[i]);
    }
  }

 private:
  DevicePool<T>* pool_;
  std::vector<UnitFaultInjector*> previous_;
};

}  // namespace tcu::fault
