#include "graph/closure.hpp"

#include <stdexcept>
#include <vector>

#include "check/contract.hpp"

namespace tcu::graph {

void closure_naive(MatrixView<Vert> d, Counters& counters) {
  const std::size_t n = d.rows;
  if (d.cols != n) throw std::invalid_argument("closure_naive: square input");
  std::uint64_t updates = 0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (d(i, k) == 0) {
        updates += n;  // the inner loop still scans (branch per j)
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        d(i, j) = d(i, j) | (d(i, k) & d(k, j));
        ++updates;
      }
    }
  }
  counters.charge_cpu(updates);
}

namespace {

// The Figure 7 kernels as pure computations; the caller charges their
// s^3 (or rows*cols for the clamp) CPU cost to whichever counter owns the
// work — the device on the serial path, the shared CPU or the executing
// unit on the pool path.

/// Kernel A (Figure 7): boolean closure within the diagonal block.
void kernel_a(MatrixView<Vert> X) {
  const std::size_t s = X.rows;
  for (std::size_t k = 0; k < s; ++k) {
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = 0; j < s; ++j) {
        X(i, j) = X(i, j) | (X(i, k) & X(k, j));
      }
    }
  }
}

/// Kernel B (Figure 7): X |= Y (diagonal block) times X, boolean.
void kernel_b(MatrixView<Vert> X, ConstMatrixView<Vert> Y) {
  const std::size_t s = X.rows;
  for (std::size_t k = 0; k < s; ++k) {
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = 0; j < s; ++j) {
        X(i, j) = X(i, j) | (Y(i, k) & X(k, j));
      }
    }
  }
}

/// Kernel C (Figure 7): X |= X times Y (diagonal block), boolean.
void kernel_c(MatrixView<Vert> X, ConstMatrixView<Vert> Y) {
  const std::size_t s = X.rows;
  for (std::size_t k = 0; k < s; ++k) {
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = 0; j < s; ++j) {
        X(i, j) = X(i, j) | (X(i, k) & Y(k, j));
      }
    }
  }
}

/// Clamp a strip back to 0/1 after an arithmetic D update (lines 5-7 of
/// function D in Figure 7).
void clamp_block(MatrixView<Vert> X) {
  for (std::size_t i = 0; i < X.rows; ++i) {
    for (std::size_t j = 0; j < X.cols; ++j) {
      if (X(i, j) > 1) X(i, j) = 1;
    }
  }
}

void closure_tcu_divisible(Device<Vert>& dev, MatrixView<Vert> X) {
  const std::size_t n = X.rows;
  const std::size_t s = dev.tile_dim();
  const std::size_t t = n / s;
  const std::uint64_t s3 = static_cast<std::uint64_t>(s) * s * s;
  for (std::size_t kb = 0; kb < t; ++kb) {
    auto diag = X.subview(kb * s, kb * s, s, s);
    kernel_a(diag);
    dev.charge_cpu(s3);
    for (std::size_t jb = 0; jb < t; ++jb) {
      if (jb != kb) {
        kernel_b(X.subview(kb * s, jb * s, s, s), diag);
        dev.charge_cpu(s3);
      }
    }
    for (std::size_t ib = 0; ib < t; ++ib) {
      if (ib != kb) {
        kernel_c(X.subview(ib * s, kb * s, s, s), diag);
        dev.charge_cpu(s3);
      }
    }
    // Kernel D: for each block column j != k, load X_kj as the weight
    // matrix and stream the column panel X_ik for all i != k. The panel is
    // contiguous above and below the pivot row — two tall calls.
    for (std::size_t jb = 0; jb < t; ++jb) {
      if (jb == kb) continue;
      auto weight = X.subview(kb * s, jb * s, s, s);
      // The weight block X_kj is overwritten by kernel B every pivot
      // iteration: equal addresses would not mean equal content, so the
      // residency contract forbids tagging it.
      check::AllowUntaggedClobber allow_clobber;
      if (kb > 0) {
        // tcu-lint: untagged-ok(weight block mutated every pivot iteration)
        dev.gemm(X.subview(0, kb * s, kb * s, s), weight,
                 X.subview(0, jb * s, kb * s, s), /*accumulate=*/true);
        clamp_block(X.subview(0, jb * s, kb * s, s));
        dev.charge_cpu(static_cast<std::uint64_t>(kb) * s * s);
      }
      if (kb + 1 < t) {
        const std::size_t top = (kb + 1) * s;
        // tcu-lint: untagged-ok(weight block mutated every pivot iteration)
        dev.gemm(X.subview(top, kb * s, n - top, s), weight,
                 X.subview(top, jb * s, n - top, s), /*accumulate=*/true);
        clamp_block(X.subview(top, jb * s, n - top, s));
        dev.charge_cpu(static_cast<std::uint64_t>(n - top) * s);
      }
    }
  }
}

/// Pool variant: kernels A/B/C (pivot row/column, boolean, CPU-bound) run
/// on the submitting thread against the shared CPU counter; the kernel D
/// update of each block column j != k — two tall GEMMs plus clamps on a
/// panel disjoint from every other j — is one pool task. The barrier per
/// pivot iteration is required (iteration k+1 reads blocks D just wrote),
/// and the persistent executor makes it cheap: no thread churn across the
/// n/sqrt(m) iterations.
void closure_pool_divisible(PoolExecutor<Vert>& exec, MatrixView<Vert> X) {
  DevicePool<Vert>& pool = exec.pool();
  const Device<Vert>& unit0 = pool.unit(0);
  const std::size_t n = X.rows;
  const std::size_t s = unit0.tile_dim();
  const std::size_t t = n / s;
  const std::uint64_t s3 = static_cast<std::uint64_t>(s) * s * s;
  for (std::size_t kb = 0; kb < t; ++kb) {
    auto diag = X.subview(kb * s, kb * s, s, s);
    kernel_a(diag);
    pool.charge_cpu(s3);
    for (std::size_t jb = 0; jb < t; ++jb) {
      if (jb != kb) {
        kernel_b(X.subview(kb * s, jb * s, s, s), diag);
        pool.charge_cpu(s3);
      }
    }
    for (std::size_t ib = 0; ib < t; ++ib) {
      if (ib != kb) {
        kernel_c(X.subview(ib * s, kb * s, s, s), diag);
        pool.charge_cpu(s3);
      }
    }
    // All D tasks of this pivot iteration carry the same panel height, so
    // the greedy dealer splits them round-robin over the units.
    std::uint64_t cost = 0;
    if (kb > 0) cost += projected_gemm_cost(unit0, kb * s);
    if (kb + 1 < t) cost += projected_gemm_cost(unit0, n - (kb + 1) * s);
    for (std::size_t jb = 0; jb < t; ++jb) {
      if (jb == kb) continue;
      exec.submit(cost, [X, kb, jb, s, t, n](Device<Vert>& unit) {
        auto weight = X.subview(kb * s, jb * s, s, s);
        if (kb > 0) {
          // tcu-lint: untagged-ok(plain-submit task; weight mutated per pivot)
          unit.gemm(X.subview(0, kb * s, kb * s, s), weight,
                    X.subview(0, jb * s, kb * s, s), /*accumulate=*/true);
          clamp_block(X.subview(0, jb * s, kb * s, s));
          unit.charge_cpu(static_cast<std::uint64_t>(kb) * s * s);
        }
        if (kb + 1 < t) {
          const std::size_t top = (kb + 1) * s;
          // tcu-lint: untagged-ok(plain-submit task; weight mutated per pivot)
          unit.gemm(X.subview(top, kb * s, n - top, s), weight,
                    X.subview(top, jb * s, n - top, s), /*accumulate=*/true);
          clamp_block(X.subview(top, jb * s, n - top, s));
          unit.charge_cpu(static_cast<std::uint64_t>(n - top) * s);
        }
      });
    }
    exec.join();
  }
}

/// Epoch-mode pool variant: one dependency-ordered round for the whole
/// closure, with a single strict join at the end. The per-pivot barrier
/// over-synchronized two ways — it kept kernels A/B/C on the shared
/// (serial) CPU counter, Amdahl-bounding the pool, and it idled lanes on
/// work only the pivot panels actually order. Here every kernel is a
/// `submit_cpu` unit task and each task declares its true predecessors.
/// With writer(i,j) = the last pivot's task that wrote block (i,j)
/// (D(k-1,j) for most blocks, B(k-1,j) / C(k-1,i) for the old pivot row
/// and column):
///
///   A(k)    after D(k-1, k)                (the diagonal block)
///   B(k,j)  after A(k), writer(k, j)       (the new pivot-row block)
///   C(k,i)  after A(k) [, B(k-1, k) when i is the old pivot row —
///           every other writer is covered through A's dependence]
///   D(k,j)  after B(k,j), every C(k,i)     (weight + full column panel;
///           the accumulate chain into column j is ordered through
///           B(k,j) -> D(k-1,j) -> B(k-1,j))
///
/// The FP/boolean op order per block is unchanged and each column's
/// accumulates stay in pivot order, so outputs are bit-identical to the
/// serial closure; aggregate counters are preserved because the kernel
/// charges move from the shared counter to the units (same field sums).
void closure_pool_epoch(PoolExecutor<Vert>& exec, MatrixView<Vert> X) {
  const Device<Vert>& unit0 = exec.pool().unit(0);
  const std::size_t n = X.rows;
  const std::size_t s = unit0.tile_dim();
  const std::size_t t = n / s;
  const std::uint64_t s3 = static_cast<std::uint64_t>(s) * s * s;
  std::vector<TaskTicket> b_prev(t), c_prev(t), d_prev(t);
  for (std::size_t kb = 0; kb < t; ++kb) {
    auto diag = X.subview(kb * s, kb * s, s, s);
    TaskDeps a_deps;
    if (kb > 0) a_deps.after.push_back(d_prev[kb].serial);
    const TaskTicket a =
        exec.submit_cpu(s3, std::move(a_deps), [diag, s3](Device<Vert>& unit) {
          kernel_a(diag);
          unit.charge_cpu(s3);
        });
    std::vector<TaskTicket> b_now(t), c_now(t);
    for (std::size_t jb = 0; jb < t; ++jb) {
      if (jb == kb) continue;
      TaskDeps b_deps{{a.serial}};
      if (kb > 0) {
        if (jb == kb - 1) {
          // The old pivot column: C(k-1, k) wrote this block, and every
          // D(k-1, x) *read* it as part of its column panel — the
          // overwrite must wait for all of them. This also transitively
          // orders D(k, k-1)'s writes into the old pivot column (and its
          // diagonal) behind all of pivot k-1's readers, since each
          // D(k-1, x) depends on B(k-1, x) and every C(k-1, i).
          b_deps.after.push_back(c_prev[kb].serial);
          for (std::size_t x = 0; x < t; ++x) {
            if (x != kb - 1) b_deps.after.push_back(d_prev[x].serial);
          }
        } else {
          b_deps.after.push_back(d_prev[jb].serial);
        }
      }
      auto block = X.subview(kb * s, jb * s, s, s);
      b_now[jb] = exec.submit_cpu(
          s3, std::move(b_deps), [block, diag, s3](Device<Vert>& unit) {
            kernel_b(block, diag);
            unit.charge_cpu(s3);
          });
    }
    for (std::size_t ib = 0; ib < t; ++ib) {
      if (ib == kb) continue;
      TaskDeps c_deps{{a.serial}};
      if (kb > 0 && ib == kb - 1) c_deps.after.push_back(b_prev[kb].serial);
      auto block = X.subview(ib * s, kb * s, s, s);
      c_now[ib] = exec.submit_cpu(
          s3, std::move(c_deps), [block, diag, s3](Device<Vert>& unit) {
            kernel_c(block, diag);
            unit.charge_cpu(s3);
          });
    }
    std::uint64_t cost = 0;
    if (kb > 0) cost += projected_gemm_cost(unit0, kb * s);
    if (kb + 1 < t) cost += projected_gemm_cost(unit0, n - (kb + 1) * s);
    for (std::size_t jb = 0; jb < t; ++jb) {
      if (jb == kb) continue;
      TaskDeps d_deps{{b_now[jb].serial}};
      for (std::size_t ib = 0; ib < t; ++ib) {
        if (ib != kb) d_deps.after.push_back(c_now[ib].serial);
      }
      d_prev[jb] = exec.submit(
          cost, std::move(d_deps), [X, kb, jb, s, t, n](Device<Vert>& unit) {
            auto weight = X.subview(kb * s, jb * s, s, s);
            if (kb > 0) {
              // tcu-lint: untagged-ok(plain-submit task; weight mutated per pivot)
              unit.gemm(X.subview(0, kb * s, kb * s, s), weight,
                        X.subview(0, jb * s, kb * s, s), /*accumulate=*/true);
              clamp_block(X.subview(0, jb * s, kb * s, s));
              unit.charge_cpu(static_cast<std::uint64_t>(kb) * s * s);
            }
            if (kb + 1 < t) {
              const std::size_t top = (kb + 1) * s;
              // tcu-lint: untagged-ok(plain-submit task; weight mutated per pivot)
              unit.gemm(X.subview(top, kb * s, n - top, s), weight,
                        X.subview(top, jb * s, n - top, s),
                        /*accumulate=*/true);
              clamp_block(X.subview(top, jb * s, n - top, s));
              unit.charge_cpu(static_cast<std::uint64_t>(n - top) * s);
            }
          });
    }
    b_prev = std::move(b_now);
    c_prev = std::move(c_now);
  }
  exec.join();
}

}  // namespace

void closure_tcu(Device<Vert>& dev, MatrixView<Vert> d) {
  const std::size_t n = d.rows;
  if (d.cols != n) throw std::invalid_argument("closure_tcu: square input");
  if (n == 0) return;
  const std::size_t s = dev.tile_dim();
  if (n % s == 0) {
    closure_tcu_divisible(dev, d);
    return;
  }
  // Pad with isolated vertices (no edges): they cannot create paths, so
  // the closure restricted to the original vertices is unchanged.
  const std::size_t np = ((n + s - 1) / s) * s;
  AdjMatrix padded(np, np, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) padded(i, j) = d(i, j);
  }
  dev.charge_cpu(np * np);
  closure_tcu_divisible(dev, padded.view());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) d(i, j) = padded(i, j);
  }
  dev.charge_cpu(n * n);
}

void closure_tcu(PoolExecutor<Vert>& exec, MatrixView<Vert> d,
                 ExecMode mode) {
  const std::size_t n = d.rows;
  if (d.cols != n) throw std::invalid_argument("closure_tcu: square input");
  if (n == 0) return;
  DevicePool<Vert>& pool = exec.pool();
  const std::size_t s = pool.unit(0).tile_dim();
  const auto run = [&](MatrixView<Vert> X) {
    if (mode == ExecMode::kEpoch) {
      closure_pool_epoch(exec, X);
    } else {
      closure_pool_divisible(exec, X);
    }
  };
  if (n % s == 0) {
    run(d);
    return;
  }
  const std::size_t np = ((n + s - 1) / s) * s;
  AdjMatrix padded(np, np, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) padded(i, j) = d(i, j);
  }
  pool.charge_cpu(np * np);
  run(padded.view());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) d(i, j) = padded(i, j);
  }
  pool.charge_cpu(n * n);
}

void closure_tcu(DevicePool<Vert>& pool, MatrixView<Vert> d, ExecMode mode) {
  PoolExecutor<Vert> exec(pool);
  closure_tcu(exec, d, mode);
}

AdjMatrix closure_bfs_oracle(ConstMatrixView<Vert> adjacency) {
  const std::size_t n = adjacency.rows;
  if (adjacency.cols != n) {
    throw std::invalid_argument("closure_bfs_oracle: square input");
  }
  AdjMatrix out(n, n, 0);
  std::vector<std::size_t> stack;
  std::vector<char> seen(n);
  for (std::size_t src = 0; src < n; ++src) {
    std::fill(seen.begin(), seen.end(), 0);
    stack.assign(1, src);
    seen[src] = 1;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      for (std::size_t w = 0; w < n; ++w) {
        if (adjacency(v, w) != 0 && !seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
      }
    }
    for (std::size_t w = 0; w < n; ++w) {
      // Figure 5 semantics: d[i,j] reports reachability including the
      // trivial i = j case whenever a self-loop or cycle produces it; the
      // iterative algorithm keeps d[i,i] = 1 only if it was set or lies on
      // a cycle. BFS marks the source, so mirror that convention: i
      // reaches j if j is seen via at least one edge, or i == j with the
      // initial matrix already having d[i,i] = 1.
      if (w == src) continue;
      out(src, w) = seen[w];
    }
  }
  // Diagonal: v reaches itself through a cycle (some w with v->w and w->v
  // reachable) or an explicit self-loop.
  for (std::size_t v = 0; v < n; ++v) {
    if (adjacency(v, v) != 0) {
      out(v, v) = 1;
      continue;
    }
    for (std::size_t w = 0; w < n && out(v, v) == 0; ++w) {
      if (w != v && adjacency(v, w) != 0 && out(w, v) != 0) out(v, v) = 1;
    }
    // Direct back-edge cycle v->w->v.
    for (std::size_t w = 0; w < n && out(v, v) == 0; ++w) {
      if (w != v && adjacency(v, w) != 0 && adjacency(w, v) != 0) {
        out(v, v) = 1;
      }
    }
  }
  return out;
}

}  // namespace tcu::graph
