#pragma once
// All pairs shortest distances (§4.4, Theorem 6): Seidel's algorithm for
// unweighted undirected graphs on the TCU.
//
// The recursion squares the graph (one matrix product), recursively solves
// APSD on the squared graph, and reconstructs distances with one more
// product C = D^(2) * A plus the degree comparison
//   delta(u,v) = 2 delta2(u,v) - [ C[u,v] < deg(v) * D2[u,v] ].
// There are O(log n) levels and two n x n products per level, each run by
// the Theorem 1 / Theorem 2 kernels, giving
// O((n^2/m)^{omega0} (m + l) log n).
//
// Requires a connected graph (Seidel's precondition); the recursion depth
// is capped at ceil(log2 n) + 1 and a disconnected input raises.

#include <cstdint>

#include "core/device.hpp"
#include "core/matrix.hpp"
#include "core/pool.hpp"

namespace tcu::graph {

struct ApsdOptions {
  bool use_strassen = false;  ///< run the products with the p0=7 recursion
};

/// Seidel's APSD on the tensor unit. `adjacency` must be symmetric 0/1
/// with a zero diagonal. Returns the n x n distance matrix.
Matrix<std::int64_t> apsd_seidel(Device<std::int64_t>& dev,
                                 ConstMatrixView<std::int64_t> adjacency,
                                 ApsdOptions opts = {});

/// Multi-unit Seidel: the recursion levels stay sequential (each level
/// squares the previous one's graph) but the two n x n products per level
/// run across the pool — Theorem 2 strips, or the pool Strassen's leaf
/// fan-out with `use_strassen`. Output and aggregate counters match the
/// single-device apsd_seidel bit-for-bit.
Matrix<std::int64_t> apsd_seidel(DevicePool<std::int64_t>& pool,
                                 ConstMatrixView<std::int64_t> adjacency,
                                 ApsdOptions opts = {});

/// Same, over a caller-owned persistent executor (one thread spawn for
/// all O(log n) recursion levels).
Matrix<std::int64_t> apsd_seidel(PoolExecutor<std::int64_t>& exec,
                                 ConstMatrixView<std::int64_t> adjacency,
                                 ApsdOptions opts = {});

/// RAM baseline: BFS from every vertex; Theta(n * (n + E)) charged.
/// Unreachable pairs get distance -1 (used to detect disconnection).
Matrix<std::int64_t> apsd_bfs(ConstMatrixView<std::int64_t> adjacency,
                              Counters& counters);

}  // namespace tcu::graph
