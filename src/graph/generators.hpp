#pragma once
// Random graph workload generators shared by tests, benches and examples.

#include <cstdint>

#include "core/matrix.hpp"
#include "util/rng.hpp"

namespace tcu::graph {

/// G(n, p) directed graph, no self loops.
inline Matrix<std::int64_t> random_digraph(std::size_t n, double edge_prob,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Matrix<std::int64_t> a(n, n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(edge_prob)) a(i, j) = 1;
    }
  }
  return a;
}

/// Connected undirected G(n, p): a random Hamiltonian-ish path guarantees
/// connectivity, then extra edges are sprinkled with probability p.
inline Matrix<std::int64_t> random_connected_graph(std::size_t n,
                                                   double edge_prob,
                                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Matrix<std::int64_t> a(n, n, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a(i, i + 1) = a(i + 1, i) = 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(edge_prob)) a(i, j) = a(j, i) = 1;
    }
  }
  return a;
}

/// Undirected cycle graph C_n: diameter floor(n/2), handy for testing
/// deep Seidel recursions.
inline Matrix<std::int64_t> cycle_graph(std::size_t n) {
  Matrix<std::int64_t> a(n, n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, (i + 1) % n) = 1;
    a((i + 1) % n, i) = 1;
  }
  return a;
}

}  // namespace tcu::graph
