#pragma once
// Graph transitive closure in the (m, l)-TCU model (§4.3, Theorem 5).
//
// `closure_naive` is the Figure 5 iterative algorithm (Floyd-Warshall with
// OR/AND in place of +/x). `closure_tcu` is the Figure 7 blocked version:
// per outer block iteration k, kernel A closes the diagonal block, kernels
// B and C update the row/column panels with boolean operations on the CPU,
// and kernel D updates every trailing block with an ordinary *arithmetic*
// product on the tensor unit followed by a clamp X[i,j] <- min(X[i,j], 1)
// — the paper's observation that D touches blocks disjoint from the pivot
// panels, so plain + and x are safe. Per block column j, X_kj is loaded as
// the weight matrix and the Theta(n) rows of all X_ik blocks (i != k)
// stream through the unit, yielding
// Theta(n^3/sqrt(m) + (n^2/m) l + n^2 sqrt(m)).
//
// Vertices use int64 storage (0/1 values) so the tensor products are exact.

#include <cstdint>

#include "core/device.hpp"
#include "core/matrix.hpp"
#include "core/pool.hpp"

namespace tcu::graph {

using Vert = std::int64_t;
using AdjMatrix = Matrix<Vert>;

/// Figure 5: in-place Theta(n^3) transitive closure on the RAM; charges
/// one unit per innermost OR/AND update.
void closure_naive(MatrixView<Vert> d, Counters& counters);

/// Figure 7 / Theorem 5: in-place blocked transitive closure with the
/// trailing (D) updates on the tensor unit. Any n is accepted: the matrix
/// is padded with isolated vertices up to a multiple of sqrt(m)
/// internally.
void closure_tcu(Device<Vert>& dev, MatrixView<Vert> d);

/// Multi-unit Theorem 5: per pivot block k, the kernel D updates of the
/// block columns j != k write disjoint column panels, so each becomes one
/// pool task (its two tall min-plus/boolean GEMM calls plus the clamp).
/// Output bits and aggregate counters are identical to the single-device
/// closure_tcu at every unit count. In `ExecMode::kBarrier` the pivot
/// kernels A/B/C stay on the shared CPU and a strict join fences every
/// pivot (the historical schedule); in `ExecMode::kEpoch` (default) the
/// kernels become dependency-ordered unit tasks and the whole closure is
/// one non-barrier round — see closure.cpp for the dependence graph.
void closure_tcu(DevicePool<Vert>& pool, MatrixView<Vert> d,
                 ExecMode mode = ExecMode::kEpoch);

/// Same, over a caller-owned persistent executor.
void closure_tcu(PoolExecutor<Vert>& exec, MatrixView<Vert> d,
                 ExecMode mode = ExecMode::kEpoch);

/// Reference oracle for tests: reachability by BFS from every vertex.
/// Not cost-charged (it is the ground truth, not a model algorithm).
AdjMatrix closure_bfs_oracle(ConstMatrixView<Vert> adjacency);

}  // namespace tcu::graph
