#pragma once
// Triangle counting via matrix multiplication.
//
// The paper's introduction cites triangle listing (Bjorklund et al. [5])
// as a headline application of fast matrix multiplication that transfers
// to the TCU model through Theorem 1. This is the counting version: for a
// simple undirected graph with adjacency matrix A, the number of
// triangles is trace(A^3)/6. One TCU product computes A^2; the trace of
// A^2 * A needs only the diagonal, a Theta(n^2) CPU dot-product pass —
// total O((n^2/m)^{w0}(m + l) + n^2).

#include <cstdint>

#include "core/device.hpp"
#include "core/matrix.hpp"

namespace tcu::graph {

struct TriangleOptions {
  bool use_strassen = false;  ///< Theorem 1 (p0 = 7) for the square
};

/// Number of triangles of a simple undirected graph (symmetric 0/1
/// adjacency, zero diagonal).
std::uint64_t count_triangles_tcu(Device<std::int64_t>& dev,
                                  ConstMatrixView<std::int64_t> adjacency,
                                  TriangleOptions opts = {});

/// RAM baseline: enumerate ordered vertex triples i < j < k; Theta(n^3)
/// worst case, charged.
std::uint64_t count_triangles_ram(ConstMatrixView<std::int64_t> adjacency,
                                  Counters& counters);

}  // namespace tcu::graph
