#include "graph/apsd.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"
#include "linalg/strassen.hpp"

namespace tcu::graph {

namespace {

using Mat = Matrix<std::int64_t>;

void check_adjacency(ConstMatrixView<std::int64_t> a) {
  const std::size_t n = a.rows;
  if (a.cols != n || n == 0) {
    throw std::invalid_argument("apsd: adjacency must be square, non-empty");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (a(i, i) != 0) {
      throw std::invalid_argument("apsd: diagonal must be zero");
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (a(i, j) != a(j, i) || (a(i, j) != 0 && a(i, j) != 1)) {
        throw std::invalid_argument("apsd: adjacency must be symmetric 0/1");
      }
    }
  }
}

/// Execution context for the Seidel recursion: how to run an n x n product
/// and where the elementwise CPU work is charged. The serial path binds a
/// Device, the pool path a persistent PoolExecutor — the recursion itself
/// (and hence every charge amount and output bit) is shared.
struct SeidelCtx {
  std::function<Mat(const Mat&, const Mat&)> product;
  std::function<void(std::uint64_t)> charge_cpu;
};

bool is_complete(const SeidelCtx& ctx, const Mat& a) {
  const std::size_t n = a.rows();
  ctx.charge_cpu(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && a(i, j) != 1) return false;
    }
  }
  return true;
}

Mat seidel_rec(const SeidelCtx& ctx, const Mat& a, std::size_t depth_left) {
  const std::size_t n = a.rows();
  if (is_complete(ctx, a)) {
    // Base case: distance matrix of the complete graph is A(h) - I, i.e.
    // 1 everywhere off the diagonal.
    Mat d(n, n, 1);
    for (std::size_t i = 0; i < n; ++i) d(i, i) = 0;
    ctx.charge_cpu(n * n);
    return d;
  }
  if (depth_left == 0) {
    throw std::invalid_argument("apsd_seidel: graph is not connected");
  }

  // Squared graph: A2[u][v] = 1 iff some w has (u,w), (w,v) in E, or
  // (u,v) already an edge; diagonal forced to zero.
  Mat prod = ctx.product(a, a);
  Mat a2(n, n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && (prod(i, j) > 0 || a(i, j) == 1)) a2(i, j) = 1;
    }
  }
  ctx.charge_cpu(n * n);

  Mat d2 = seidel_rec(ctx, a2, depth_left - 1);

  // Reconstruction: C = D2 * A; deg(v) = column sums of A.
  Mat c = ctx.product(d2, a);
  std::vector<std::int64_t> deg(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) deg[j] += a(i, j);
  }
  ctx.charge_cpu(n * n);

  Mat d(n, n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      const bool even = c(u, v) >= deg[v] * d2(u, v);
      d(u, v) = 2 * d2(u, v) - (even ? 0 : 1);
    }
  }
  ctx.charge_cpu(n * n);
  return d;
}

Mat seidel_with_ctx(const SeidelCtx& ctx,
                    ConstMatrixView<std::int64_t> adjacency) {
  check_adjacency(adjacency);
  const std::size_t n = adjacency.rows;
  if (n == 1) return Mat(1, 1, 0);
  const auto depth = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(n)))) + 1;
  Mat a = materialize(adjacency);
  ctx.charge_cpu(n * n);
  return seidel_rec(ctx, a, depth);
}

}  // namespace

Matrix<std::int64_t> apsd_seidel(Device<std::int64_t>& dev,
                                 ConstMatrixView<std::int64_t> adjacency,
                                 ApsdOptions opts) {
  SeidelCtx ctx{
      .product =
          [&dev, opts](const Mat& a, const Mat& b) {
            if (opts.use_strassen) {
              return linalg::matmul_strassen_tcu(dev, a.view(), b.view(),
                                                 {.p0 = 7});
            }
            return linalg::matmul_tcu(dev, a.view(), b.view());
          },
      .charge_cpu = [&dev](std::uint64_t ops) { dev.charge_cpu(ops); },
  };
  return seidel_with_ctx(ctx, adjacency);
}

Matrix<std::int64_t> apsd_seidel(PoolExecutor<std::int64_t>& exec,
                                 ConstMatrixView<std::int64_t> adjacency,
                                 ApsdOptions opts) {
  DevicePool<std::int64_t>& pool = exec.pool();
  SeidelCtx ctx{
      .product =
          [&exec, opts](const Mat& a, const Mat& b) {
            if (opts.use_strassen) {
              return linalg::matmul_strassen_tcu_pool(exec, a.view(), b.view(),
                                                      {.p0 = 7});
            }
            return linalg::matmul_tcu_pool(exec, a.view(), b.view());
          },
      .charge_cpu = [&pool](std::uint64_t ops) { pool.charge_cpu(ops); },
  };
  return seidel_with_ctx(ctx, adjacency);
}

Matrix<std::int64_t> apsd_seidel(DevicePool<std::int64_t>& pool,
                                 ConstMatrixView<std::int64_t> adjacency,
                                 ApsdOptions opts) {
  PoolExecutor<std::int64_t> exec(pool);
  return apsd_seidel(exec, adjacency, opts);
}

Matrix<std::int64_t> apsd_bfs(ConstMatrixView<std::int64_t> adjacency,
                              Counters& counters) {
  const std::size_t n = adjacency.rows;
  if (adjacency.cols != n) {
    throw std::invalid_argument("apsd_bfs: square input required");
  }
  Mat dist(n, n, -1);
  std::vector<std::size_t> queue(n);
  std::uint64_t ops = 0;
  for (std::size_t src = 0; src < n; ++src) {
    std::size_t head = 0, tail = 0;
    dist(src, src) = 0;
    queue[tail++] = src;
    while (head < tail) {
      const std::size_t v = queue[head++];
      for (std::size_t w = 0; w < n; ++w) {
        ++ops;
        if (adjacency(v, w) != 0 && dist(src, w) < 0) {
          dist(src, w) = dist(src, v) + 1;
          queue[tail++] = w;
        }
      }
    }
  }
  counters.charge_cpu(ops);
  return dist;
}

}  // namespace tcu::graph
