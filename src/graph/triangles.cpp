#include "graph/triangles.hpp"

#include <stdexcept>

#include "linalg/dense.hpp"
#include "linalg/strassen.hpp"

namespace tcu::graph {

namespace {

void check_simple(ConstMatrixView<std::int64_t> a) {
  const std::size_t n = a.rows;
  if (a.cols != n) {
    throw std::invalid_argument("triangles: adjacency must be square");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (a(i, i) != 0) {
      throw std::invalid_argument("triangles: no self loops allowed");
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (a(i, j) != a(j, i) || (a(i, j) != 0 && a(i, j) != 1)) {
        throw std::invalid_argument(
            "triangles: adjacency must be symmetric 0/1");
      }
    }
  }
}

}  // namespace

std::uint64_t count_triangles_tcu(Device<std::int64_t>& dev,
                                  ConstMatrixView<std::int64_t> adjacency,
                                  TriangleOptions opts) {
  check_simple(adjacency);
  const std::size_t n = adjacency.rows;
  if (n < 3) return 0;
  Matrix<std::int64_t> a = materialize(adjacency);
  dev.charge_cpu(n * n);
  Matrix<std::int64_t> a2 =
      opts.use_strassen
          ? linalg::matmul_strassen_tcu(dev, a.view(), a.view(), {.p0 = 7})
          : linalg::matmul_tcu(dev, a.view(), a.view());
  // trace(A^2 * A) = sum_{i,k} A2[i][k] * A[k][i]: a CPU dot pass.
  std::int64_t trace = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) trace += a2(i, k) * a(k, i);
  }
  dev.charge_cpu(n * n);
  return static_cast<std::uint64_t>(trace / 6);
}

std::uint64_t count_triangles_ram(ConstMatrixView<std::int64_t> adjacency,
                                  Counters& counters) {
  check_simple(adjacency);
  const std::size_t n = adjacency.rows;
  std::uint64_t count = 0;
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (adjacency(i, j) == 0) {
        ++ops;
        continue;
      }
      for (std::size_t k = j + 1; k < n; ++k) {
        ++ops;
        if (adjacency(i, k) != 0 && adjacency(j, k) != 0) ++count;
      }
    }
  }
  counters.charge_cpu(ops);
  return count;
}

}  // namespace tcu::graph
