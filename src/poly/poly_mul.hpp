#pragma once
// Polynomial multiplication on the tensor unit via the DFT (Theorem 7 +
// convolution theorem): the product of degree-(da) and degree-(db)
// polynomials is their linear convolution, computed as a circular
// convolution of any length >= da + db + 1 — O((d + l) log_m d).

#include <vector>

#include "core/device.hpp"
#include "dft/dft.hpp"

namespace tcu::poly {

/// Coefficients of a(x) * b(x); inputs are coefficient vectors in
/// ascending degree order.
std::vector<double> multiply_tcu(Device<dft::Complex>& dev,
                                 const std::vector<double>& a,
                                 const std::vector<double>& b);

/// RAM baseline: the Theta(da * db) convolution loop, charged.
std::vector<double> multiply_ram(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 Counters& counters);

}  // namespace tcu::poly
