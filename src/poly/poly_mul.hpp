#pragma once
// Polynomial multiplication on the tensor unit.
//
// Two routes:
//   * via the DFT (Theorem 7 + convolution theorem): the product of
//     degree-(da) and degree-(db) polynomials is their linear
//     convolution, computed as a circular convolution of any length
//     >= da + db + 1 — O((d + l) log_m d);
//   * via Karatsuba over the coefficient vectors with the banded-Toeplitz
//     schoolbook kernel (linalg/toeplitz.hpp, the §4.7 construction on
//     real coefficients) as the base case — the polynomial counterpart of
//     Theorem 10, and the route that pool-parallelizes with aggregate
//     counters bit-identical to serial (the DFT route re-pays tile loads
//     per unit when split).

#include <vector>

#include "core/device.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"

namespace tcu::poly {

/// Coefficients of a(x) * b(x); inputs are coefficient vectors in
/// ascending degree order.
std::vector<double> multiply_tcu(Device<dft::Complex>& dev,
                                 const std::vector<double>& a,
                                 const std::vector<double>& b);

/// RAM baseline: the Theta(da * db) convolution loop, charged.
std::vector<double> multiply_ram(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 Counters& counters);

/// Karatsuba over coefficient vectors with the Toeplitz schoolbook TCU
/// kernel below `threshold` coefficients (default 4 sqrt(m), mirroring
/// Theorem 10's base). Exact for integer-valued coefficients; for general
/// doubles the recursion reassociates sums, so results agree with
/// `multiply_ram` up to rounding.
std::vector<double> multiply_karatsuba_tcu(Device<double>& dev,
                                           const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           std::size_t threshold = 0);

/// Pool-parallel Karatsuba: the top levels of the call tree are unrolled
/// on the submitting thread and the independent subtree products are
/// dealt across the executor's units (the Strassen-shaped plan of
/// util/karatsuba_plan.hpp). Coefficients and aggregate counters are
/// bit-identical to `multiply_karatsuba_tcu` on one device for every
/// unit count.
std::vector<double> multiply_karatsuba_tcu_pool(PoolExecutor<double>& exec,
                                                const std::vector<double>& a,
                                                const std::vector<double>& b,
                                                std::size_t threshold = 0);

/// RAM Karatsuba baseline (schoolbook below `threshold`), charged.
std::vector<double> multiply_karatsuba_ram(const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           Counters& counters,
                                           std::size_t threshold = 32);

}  // namespace tcu::poly
