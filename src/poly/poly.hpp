#pragma once
// Batch polynomial evaluation in the (m, l)-TCU model (§4.8, Theorem 11).
//
// Evaluating A(x) = sum a_i x^i of degree n-1 at p points: with s =
// sqrt(m), each point contributes a row [x^0 .. x^{s-1}] of the p x s
// Vandermonde-slice X, the coefficients are arranged column-major in the
// s x n/s matrix A (A[i][j] = a_{i+js}), and one tall tensor product
// C = X A yields per point the partial sums of each degree band; the
// final value is sum_j C[i][j] (x_i^s)^j, a Horner pass over n/s terms.
// Cost: O(p n / sqrt(m) + p sqrt(m) + (n/m) l).

#include <cstdint>
#include <vector>

#include "core/device.hpp"

namespace tcu::poly {

/// RAM baseline: Horner's rule per point, Theta(p n) charged.
std::vector<double> eval_horner(const std::vector<double>& coeffs,
                                const std::vector<double>& points,
                                Counters& counters);

/// Theorem 11: batch evaluation via one Vandermonde-slice tensor product.
std::vector<double> eval_tcu(Device<double>& dev,
                             const std::vector<double>& coeffs,
                             const std::vector<double>& points);

}  // namespace tcu::poly
