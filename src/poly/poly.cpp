#include "poly/poly.hpp"

#include <stdexcept>

#include "linalg/dense.hpp"

namespace tcu::poly {

std::vector<double> eval_horner(const std::vector<double>& coeffs,
                                const std::vector<double>& points,
                                Counters& counters) {
  if (coeffs.empty()) {
    throw std::invalid_argument("eval_horner: empty coefficient vector");
  }
  std::vector<double> out(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    double acc = 0.0;
    for (std::size_t c = coeffs.size(); c-- > 0;) {
      acc = acc * points[i] + coeffs[c];
    }
    out[i] = acc;
  }
  counters.charge_cpu(points.size() * coeffs.size());
  return out;
}

std::vector<double> eval_tcu(Device<double>& dev,
                             const std::vector<double>& coeffs,
                             const std::vector<double>& points) {
  if (coeffs.empty()) {
    throw std::invalid_argument("eval_tcu: empty coefficient vector");
  }
  const std::size_t s = dev.tile_dim();
  const std::size_t p = points.size();
  if (p == 0) return {};
  const std::size_t n = ((coeffs.size() + s - 1) / s) * s;  // pad degree

  // X: powers x^0 .. x^{s-1} per point (the paper's initial
  // exponentiation, Theta(p sqrt(m)) CPU work).
  Matrix<double> x(p, s);
  for (std::size_t i = 0; i < p; ++i) {
    double pw = 1.0;
    for (std::size_t j = 0; j < s; ++j) {
      x(i, j) = pw;
      pw *= points[i];
    }
  }
  // A: coefficients column-major, A[k][j] = a_{k + js}.
  Matrix<double> a(s, n / s, 0.0);
  for (std::size_t idx = 0; idx < coeffs.size(); ++idx) {
    a(idx % s, idx / s) = coeffs[idx];
  }
  dev.charge_cpu(p * s + n);

  Matrix<double> c = linalg::matmul_tcu(dev, x.view(), a.view());

  // Final combination: A(x_i) = sum_j c[i][j] * (x_i^s)^j, evaluated as a
  // Horner pass over the n/s band sums (the paper's x^{js} powers).
  std::vector<double> out(p);
  for (std::size_t i = 0; i < p; ++i) {
    const double xs = x(i, s - 1) * points[i];  // x_i^s
    double acc = 0.0;
    for (std::size_t j = c.cols(); j-- > 0;) {
      acc = acc * xs + c(i, j);
    }
    out[i] = acc;
  }
  dev.charge_cpu(p * (n / s) * 2);
  return out;
}

}  // namespace tcu::poly
