#include "poly/poly_mul.hpp"

#include <stdexcept>

namespace tcu::poly {

std::vector<double> multiply_tcu(Device<dft::Complex>& dev,
                                 const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("poly multiply: empty operand");
  }
  const std::size_t out_len = a.size() + b.size() - 1;
  std::size_t n = 1;
  while (n < out_len) n *= 2;
  dft::CVec fa(n, dft::Complex{}), fb(n, dft::Complex{});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  dev.charge_cpu(a.size() + b.size());
  auto conv = dft::circular_convolve_tcu(dev, fa, fb);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = conv[i].real();
  dev.charge_cpu(out_len);
  return out;
}

std::vector<double> multiply_ram(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 Counters& counters) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("poly multiply: empty operand");
  }
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  counters.charge_cpu(a.size() * b.size());
  return out;
}

}  // namespace tcu::poly
