#include "poly/poly_mul.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/toeplitz.hpp"
#include "util/karatsuba_plan.hpp"

namespace tcu::poly {

std::vector<double> multiply_tcu(Device<dft::Complex>& dev,
                                 const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("poly multiply: empty operand");
  }
  const std::size_t out_len = a.size() + b.size() - 1;
  std::size_t n = 1;
  while (n < out_len) n *= 2;
  dft::CVec fa(n, dft::Complex{}), fb(n, dft::Complex{});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  dev.charge_cpu(a.size() + b.size());
  auto conv = dft::circular_convolve_tcu(dev, fa, fb);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = conv[i].real();
  dev.charge_cpu(out_len);
  return out;
}

std::vector<double> multiply_ram(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 Counters& counters) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("poly multiply: empty operand");
  }
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  counters.charge_cpu(a.size() * b.size());
  return out;
}

namespace {

using DVec = std::vector<double>;

DVec vec_add(const DVec& x, const DVec& y) {
  DVec out(std::max(x.size(), y.size()), 0.0);
  std::copy(x.begin(), x.end(), out.begin());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] += y[i];
  return out;
}

DVec vec_sub(const DVec& x, const DVec& y) {
  DVec out(std::max(x.size(), y.size()), 0.0);
  std::copy(x.begin(), x.end(), out.begin());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] -= y[i];
  return out;
}

DVec vec_shift(const DVec& v, std::size_t count) {
  DVec out(count + v.size(), 0.0);
  std::copy(v.begin(), v.end(), out.begin() + static_cast<std::ptrdiff_t>(count));
  return out;
}

DVec vec_low(const DVec& v, std::size_t half) {
  return DVec(v.begin(),
              v.begin() + static_cast<std::ptrdiff_t>(std::min(half, v.size())));
}

DVec vec_high(const DVec& v, std::size_t half) {
  if (v.size() <= half) return {};
  return DVec(v.begin() + static_cast<std::ptrdiff_t>(half), v.end());
}

/// Karatsuba ops over double coefficient vectors for the shared serial
/// recursion and unroll engine (util/karatsuba_plan.hpp).
struct DVecKaratsubaOps {
  using Value = DVec;
  static std::size_t size(const DVec& v) { return v.size(); }
  static DVec low(const DVec& v, std::size_t half) {
    return vec_low(v, half);
  }
  static DVec high(const DVec& v, std::size_t half) {
    return vec_high(v, half);
  }
  static DVec add(const DVec& x, const DVec& y) { return vec_add(x, y); }
  static DVec sub(const DVec& x, const DVec& y) { return vec_sub(x, y); }
  static DVec shift(const DVec& v, std::size_t count) {
    return vec_shift(v, count);
  }
};

}  // namespace

std::vector<double> multiply_karatsuba_tcu(Device<double>& dev,
                                           const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           std::size_t threshold) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("poly multiply: empty operand");
  }
  if (threshold == 0) threshold = 4 * dev.tile_dim();
  auto base = [&dev](const DVec& x, const DVec& y) -> DVec {
    if (x.empty() || y.empty()) return {};
    return linalg::conv_toeplitz_tcu(dev, x, y);
  };
  DVec out = util::karatsuba_serial<DVecKaratsubaOps>(
      a, b, threshold, dev.counters(), base);
  const std::size_t out_len = a.size() + b.size() - 1;
  out.resize(out_len, 0.0);  // the padded tail past out_len is exact zeros
  dev.charge_cpu(out_len);
  return out;
}

std::vector<double> multiply_karatsuba_tcu_pool(PoolExecutor<double>& exec,
                                                const std::vector<double>& a,
                                                const std::vector<double>& b,
                                                std::size_t threshold) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("poly multiply: empty operand");
  }
  DevicePool<double>& pool = exec.pool();
  if (threshold == 0) threshold = 4 * pool.unit(0).tile_dim();
  const std::size_t n = std::max(a.size(), b.size());
  const std::size_t depth =
      util::karatsuba_unroll_depth(n, threshold, exec.size());
  util::KaratsubaPlan<DVecKaratsubaOps> plan;
  auto root = util::karatsuba_plan<DVecKaratsubaOps>(pool, plan, a, b,
                                                     threshold, depth);
  DVec out = util::karatsuba_run_plan<DVecKaratsubaOps>(
      exec, plan, root,
      [threshold](Device<double>& unit, const DVec& x, const DVec& y) {
        auto base = [&unit](const DVec& u, const DVec& v) -> DVec {
          if (u.empty() || v.empty()) return {};
          return linalg::conv_toeplitz_tcu(unit, u, v);
        };
        return util::karatsuba_serial<DVecKaratsubaOps>(
            x, y, threshold, unit.counters(), base);
      },
      [&pool, threshold](const DVec& x, const DVec& y) {
        return util::karatsuba_toeplitz_cost(
            pool.unit(0), std::max(x.size(), y.size()), threshold);
      });
  const std::size_t out_len = a.size() + b.size() - 1;
  out.resize(out_len, 0.0);
  pool.charge_cpu(out_len);
  return out;
}

std::vector<double> multiply_karatsuba_ram(const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           Counters& counters,
                                           std::size_t threshold) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("poly multiply: empty operand");
  }
  if (threshold < 1) {
    throw std::invalid_argument(
        "multiply_karatsuba_ram: threshold must be >= 1");
  }
  auto base = [&counters](const DVec& x, const DVec& y) -> DVec {
    if (x.empty() || y.empty()) return {};
    DVec out(x.size() + y.size() - 1, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
      for (std::size_t j = 0; j < y.size(); ++j) out[i + j] += x[i] * y[j];
    }
    counters.charge_cpu(x.size() * y.size());
    return out;
  };
  DVec out = util::karatsuba_serial<DVecKaratsubaOps>(a, b, threshold,
                                                      counters, base);
  out.resize(a.size() + b.size() - 1, 0.0);
  counters.charge_cpu(a.size() + b.size() - 1);
  return out;
}

}  // namespace tcu::poly
