#pragma once
// Multiple parallel tensor units.
//
// Section 3.1 calls the single-unit assumption the model's main
// simplification — real boards carry hundreds of tensor cores — and §6
// asks how parallel units change algorithm design. `DevicePool<T>` is the
// natural extension: p independent (m, l) units sharing the CPU. A
// parallel algorithm assigns whole tensor calls to units; the pool's
// running time (makespan) is the shared CPU time plus the *maximum*
// tensor time over units, so perfectly balanced work divides the tensor
// term by p while the latency of each call stays on its unit.
//
// `PoolExecutor<T>` turns the simulated pool into a real parallel
// runtime: one OS worker thread per unit, each draining its own FIFO
// work queue. Scheduling stays deterministic — tasks are dealt on the
// *submitting* thread by greedy least-loaded over the projected
// simulated tensor time (actual counters plus the declared cost of
// everything already queued), with ties broken toward the lowest unit
// index, exactly like the serial `least_loaded()` loop. Because every
// task runs on the one thread that owns its unit, per-unit `Counters`
// are written race-free and their totals are independent of thread
// interleaving; `join()` is the barrier at which the merged view
// (`aggregate()`, `makespan()`) becomes meaningful again.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "core/device.hpp"

namespace tcu {

template <typename T>
class DevicePool {
 public:
  DevicePool(std::size_t units, typename Device<T>::Config cfg) {
    if (units == 0) throw std::invalid_argument("DevicePool: units >= 1");
    units_.reserve(units);
    for (std::size_t i = 0; i < units; ++i) {
      auto unit_cfg = cfg;
      unit_cfg.name = cfg.name + "#" + std::to_string(i);
      units_.emplace_back(std::move(unit_cfg));
    }
  }

  std::size_t size() const { return units_.size(); }
  Device<T>& unit(std::size_t i) { return units_.at(i); }
  const Device<T>& unit(std::size_t i) const { return units_.at(i); }

  /// Unit with the smallest tensor time so far (greedy list scheduling).
  Device<T>& least_loaded() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < units_.size(); ++i) {
      if (units_[i].counters().tensor_time <
          units_[best].counters().tensor_time) {
        best = i;
      }
    }
    return units_[best];
  }

  /// Shared (sequential) CPU work.
  void charge_cpu(std::uint64_t ops) { cpu_.charge_cpu(ops); }
  const Counters& cpu() const { return cpu_; }

  /// Model running time: CPU plus the busiest unit.
  std::uint64_t makespan() const {
    std::uint64_t worst = 0;
    for (const auto& u : units_) {
      worst = std::max(worst,
                       u.counters().tensor_time + u.counters().cpu_ops);
    }
    return worst + cpu_.cpu_ops;
  }

  /// Aggregate tensor time across units (the sequential-equivalent work).
  std::uint64_t total_tensor_time() const {
    std::uint64_t total = 0;
    for (const auto& u : units_) total += u.counters().tensor_time;
    return total;
  }

  /// Merged counters: shared CPU plus every unit, summed in unit order.
  /// Deterministic because each unit's counters are charged by exactly one
  /// worker (or the caller) and addition is per-field.
  Counters aggregate() const {
    Counters total = cpu_;
    for (const auto& u : units_) total += u.counters();
    return total;
  }

  void reset() {
    for (auto& u : units_) u.reset();
    cpu_.reset();
  }

 private:
  std::vector<Device<T>> units_;
  Counters cpu_;
};

/// Recovery budgets for fault-tolerant execution (src/fault/ injects the
/// faults; `PoolExecutor` survives them). A transient fault retries the
/// task in place up to `same_lane_retries` times, then hands it back to
/// the join barrier for redealing to a healthy lane; a task whose faulted
/// executions reach `max_attempts` exhausts recovery and `join()`
/// rethrows its last fault. Both budgets count *faulted executions* — a
/// funneled (never-run) task consumes nothing.
struct PoolRecoveryOptions {
  std::size_t same_lane_retries = 1;
  std::size_t max_attempts = 4;
};

/// What one `join()` round survived. Every field is deterministic given
/// the submitted schedule and the fault plan: faults fire at seeded
/// per-unit call indices, retry and redeal replay the same deterministic
/// dealer in original submit order, so two runs with the same
/// (seed, plan) produce identical reports — and identical outputs,
/// because tasks are idempotent strip writes re-issued from scratch.
struct RoundReport {
  std::uint64_t transient_faults = 0;  ///< transient-fault throws observed
  std::uint64_t permanent_faults = 0;  ///< permanent-fault throws observed
  std::uint64_t retried = 0;           ///< same-lane re-executions
  std::uint64_t redealt = 0;           ///< tasks redealt at the barrier
  std::uint64_t drained = 0;  ///< tasks funneled off dead lanes without running
  std::uint64_t spawn_failures = 0;  ///< workers that never spawned (ctor)
  std::vector<std::size_t> quarantined;  ///< units newly quarantined, ascending
  std::size_t healthy_units = 0;  ///< lanes still accepting work afterwards

  bool faulted() const { return transient_faults != 0 || permanent_faults != 0; }
};

/// Worker-thread runtime over a DevicePool: one thread and one FIFO queue
/// per unit. Construction spawns the workers; destruction drains and joins
/// them. `submit` deals a task to the projected-least-loaded unit and must
/// be called from a single thread (the scheduling decision sequence is the
/// schedule). Do not touch the pool's units directly between the first
/// `submit` and the matching `join`. Worker exceptions are only surfaced
/// by `join()`; destroying the executor without a final join discards any
/// recorded error (destructors cannot throw).
///
/// The executor is *self-healing* against the fault taxonomy of
/// core/observer.hpp (injected by src/fault/, or raised by a real
/// backend): a `TransientFault` fails one tensor call with no side
/// effects, so the worker re-runs the task on the same lane (tasks are
/// idempotent: every pooled workload's tasks overwrite their output from
/// scratch); once the lane budget is spent the task is handed back to
/// `join()`, which redeals the failures — in original submit order,
/// through the normal deterministic dealer — to healthy lanes. A
/// `PermanentUnitFault` quarantines the unit: its worker funnels the
/// remaining queue back for redealing, its prediction mirror is dropped,
/// `evict_all` re-anchors its residency, and the pool keeps running at
/// p − f. `join()` returns a `RoundReport` of what it survived and
/// rethrows only when recovery is exhausted (attempt budget spent, or no
/// healthy unit remains) — non-fault exceptions keep the historical
/// first-error-rethrow contract. Tasks that issue multiple in-place
/// accumulating calls (graph/closure.cpp) are *not* idempotent and must
/// not run under an active fault plan.
///
/// The executor is *persistent*: `join()` is a barrier, not the end of its
/// life. After every join the greedy projections (and the per-lane
/// resident-tile predictions) are reseeded from the units' live counters,
/// so a caller-owned executor dealing work, joining, and dealing again is
/// bit-identical to constructing a fresh executor per round — one
/// executor amortizes thread startup across an entire Mlp forward, a batch
/// of matmuls, or a recursion tree.
///
/// `submit_affine` implements chain-aware tile-affinity scheduling: a
/// task declares its *tile chain* — the ordered resident-operand keys its
/// tensor calls will touch. The dealer keeps, per lane, a mirror of the
/// unit's TileCache advanced through everything already queued, replays
/// the candidate chain against each mirror to count predicted hits, and
/// charges the task `cost - hits * l` on each lane — so work lands where
/// its tiles already live and every predicted saving is genuinely
/// realized (Device::gemm_resident runs the identical LRU transitions,
/// elides the charges, and counts the hits). With capacity-1 caches and
/// single-tile chains this degenerates to the original
/// (enter_key, exit_key) affinity dealer bit-for-bit.
template <typename T>
class PoolExecutor {
 public:
  /// A task runs on its unit's worker thread and may only touch that unit
  /// (plus any disjoint output it was given).
  using Task = std::function<void(Device<T>&)>;

  explicit PoolExecutor(DevicePool<T>& pool, PoolRecoveryOptions recovery = {})
      : pool_(pool),
        recovery_(recovery),
        latency_(pool.unit(0).latency()),
        projected_(pool.size()),
        quarantined_(pool.size(), 0) {
    lane_cache_.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      lane_cache_.emplace_back(pool.unit(i).cache_capacity());
    }
    // Seed projections (and resident-tile predictions) from the live unit
    // state so dealing continues the greedy schedule of any work already
    // on the units.
    reseed();
    lanes_.reserve(pool_.size());
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      lanes_.push_back(std::make_unique<Lane>());
    }
    // Thread spawn can fail mid-loop (EAGAIN under thread pressure, or an
    // injected SpawnFault): degrade to the workers that did start —
    // unspawned units are quarantined before they can be dealt work, and
    // spawn_failures() records the loss — instead of aborting the pool.
    std::size_t spawned = 0;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      try {
        if (auto* inj = pool_.unit(i).fault_injector()) inj->on_spawn();
        lanes_[i]->worker =
            std::thread([this, i] { worker_loop(*lanes_[i], pool_.unit(i)); });
        ++spawned;
      } catch (const fault::SpawnFault&) {
        quarantine_unspawned(i);
      } catch (const std::system_error&) {
        quarantine_unspawned(i);
      }
    }
    if (spawned == 0) {
      shutdown();
      throw fault::SpawnFault("PoolExecutor: no worker thread could be spawned");
    }
  }

  PoolExecutor(const PoolExecutor&) = delete;
  PoolExecutor& operator=(const PoolExecutor&) = delete;

  ~PoolExecutor() { shutdown(); }

  DevicePool<T>& pool() { return pool_; }
  std::size_t size() const { return pool_.size(); }

  /// Cumulative fault-recovery statistics over this executor's lifetime:
  /// counters summed across rounds, `quarantined` listing every unit ever
  /// quarantined in the order it happened. Read only while quiescent.
  const RoundReport& fault_stats() const { return cumulative_; }

  /// Lanes still accepting work (p minus quarantined units).
  std::size_t healthy_units() const {
    std::size_t n = 0;
    for (const char q : quarantined_) {
      if (!q) ++n;
    }
    return n;
  }

  bool quarantined(std::size_t unit) const {
    return quarantined_.at(unit) != 0;
  }

  /// Worker threads that could not be spawned at construction (the pool
  /// runs degraded on the remainder; nonzero only after spawn faults).
  std::uint64_t spawn_failures() const { return spawn_failures_; }

  /// Deal `task` to the unit with the smallest projected tensor time
  /// (actual + declared cost of queued work), lowest index on ties.
  /// `projected_cost` is the simulated tensor time the task will charge;
  /// exact costs keep the dealing identical to a serial execute-then-pick
  /// loop. Returns the chosen unit index. The task's tensor calls are
  /// assumed untagged (they displace any resident tile).
  std::size_t submit(std::uint64_t projected_cost, Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.cost = projected_cost;
    t.serial = next_serial_++;
    return place_plain(std::move(t));
  }

  /// Chain-aware tile-affinity dealing. `projected_cost` is the task's
  /// full simulated tensor time including one load latency per chain
  /// entry; `chain` lists, in call order, the resident-operand key of
  /// every tagged tensor call the task will issue (a 0 entry marks an
  /// untagged call, which invalidates the predicted set exactly as
  /// Device::gemm does). Keys are storage addresses for long-lived
  /// weights, or symbolic identities built with `make_tile_key` for
  /// operands whose storage is transient or reused (the DFT level tiles,
  /// Gaussian elimination's per-pivot panel strips) — the two spaces
  /// cannot collide. Each lane's mirrored cache is advanced through
  /// the chain to count predicted hits; the task is charged
  /// `cost - hits * l` there and the lane with the smallest projected
  /// completion wins (ties toward the lowest index). The winner's mirror
  /// keeps the replayed state, so later chains see exactly what the unit
  /// will hold. Returns the chosen unit index.
  std::size_t submit_affine(std::uint64_t projected_cost,
                            const std::vector<std::uint64_t>& chain,
                            Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.chain = chain;
    t.affine = true;
    t.cost = projected_cost;
    t.serial = next_serial_++;
    return place_affine(std::move(t));
  }

  /// Enqueue on a specific unit's lane (for schedules computed elsewhere).
  /// If `unit` has been quarantined the pinned placement is impossible;
  /// the task degrades to the greedy dealer instead of aborting.
  void submit_to(std::size_t unit, std::uint64_t projected_cost, Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.cost = projected_cost;
    t.serial = next_serial_++;
    if (quarantined_.at(unit)) {
      place_plain(std::move(t));
      return;
    }
    projected_[unit] += projected_cost;
    // Untagged work invalidates the unit's whole resident set.
    lane_cache_[unit].clear();
    enqueue(unit, std::move(t));
  }

  /// Drop every resident tile on every unit *and* every prediction
  /// mirror. Callable only while the executor is quiescent (before the
  /// first submit or after a join), when the submitting thread may touch
  /// the units safely.
  void evict_all() {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      pool_.unit(i).evict_all();
      lane_cache_[i].clear();
    }
  }

  /// Barrier with self-healing: wait until every queue has drained and
  /// every worker is idle, redeal fault-failed tasks to healthy lanes
  /// (repeating until a wave completes without new failures), quarantine
  /// dead units, reseed the projections from the units' live state (so
  /// further submits continue the greedy schedule exactly as a fresh
  /// executor would), and report what the round survived. Rethrows when
  /// recovery is impossible — a non-fault task exception (historical
  /// first-error contract), a task whose attempt budget is exhausted, or
  /// no healthy unit left — leaving the executor reusable: residency
  /// re-anchored at empty, projections reseeded, queues drained.
  RoundReport join() {
    RoundReport report;
    report.spawn_failures = spawn_failures_;
    for (;;) {
      wait_all_idle();
      // Collect what the workers recorded, under each lane's lock (the
      // idle wait ordered their writes before us).
      std::vector<PendingTask> failed;
      std::vector<std::size_t> dirty;
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        Lane& lane = *lanes_[i];
        std::lock_guard<std::mutex> lock(lane.mu);
        report.transient_faults += std::exchange(lane.transients, 0);
        report.permanent_faults += std::exchange(lane.permanents, 0);
        report.retried += std::exchange(lane.retried, 0);
        report.drained += std::exchange(lane.drained, 0);
        for (auto& t : lane.failed) failed.push_back(std::move(t));
        lane.failed.clear();
        if (lane.dead && !quarantined_[i]) {
          // Quarantine: the dealer stops offering this lane work and its
          // prediction mirror is dropped (the worker already re-anchored
          // the dead unit's residency at the empty set).
          quarantined_[i] = 1;
          lane_cache_[i].clear();
          report.quarantined.push_back(i);
          cumulative_.quarantined.push_back(i);
        }
        if (std::exchange(lane.dirty, false) && !quarantined_[i]) {
          dirty.push_back(i);
        }
      }
      // Non-fault task exceptions keep the historical contract: first
      // error wins, the round is lost, join rethrows. A failed task
      // abandoned its declared chain mid-flight, so the residency the
      // dealer promised later tasks never materialized; re-anchor both
      // sides at the empty set so prediction cannot drift from unit state.
      std::exception_ptr error;
      {
        std::lock_guard<std::mutex> lock(error_mu_);
        error = std::exchange(first_error_, nullptr);
      }
      if (error) {
        fail_round(report);
        std::rethrow_exception(error);
      }
      // Re-anchor faulted-but-alive lanes: a fault aborted a declared
      // chain mid-flight (or retried calls the dealer never predicted),
      // so mirror and unit re-meet at the empty set before more dealing.
      for (const std::size_t i : dirty) {
        pool_.unit(i).evict_all();
        lane_cache_[i].clear();
      }
      if (failed.empty()) break;
      // Deterministic redeal: original submit order, healthy lanes only,
      // through the normal dealer (so mirrors stay in lock-step).
      std::sort(failed.begin(), failed.end(),
                [](const PendingTask& a, const PendingTask& b) {
                  return a.serial < b.serial;
                });
      if (healthy_units() == 0) {
        std::exception_ptr last = failed.front().last_fault;
        fail_round(report);
        if (last) std::rethrow_exception(last);
        throw fault::PermanentUnitFault(
            "PoolExecutor: all units quarantined");
      }
      // Exhaustion is decided for the whole wave *before* any redeal is
      // placed: a re-enqueued task puts workers back in flight, and
      // fail_round's reseed/evict_all may only touch unit state while
      // every worker is idle — rethrowing mid-loop would also leak the
      // already-redealt tasks past the barrier. All workers are still
      // idle here, so the lowest-serial exhausted task surfaces its
      // fault exactly like the historical error path (the executor
      // stays reusable, queues drained).
      for (const auto& t : failed) {
        if (t.attempts >= recovery_.max_attempts) {
          std::exception_ptr last = t.last_fault;
          fail_round(report);
          std::rethrow_exception(last);
        }
      }
      for (auto& t : failed) {
        t.hits_valid = false;
        ++report.redealt;
        if (t.affine) {
          place_affine(std::move(t));
        } else {
          place_plain(std::move(t));
        }
      }
    }
    // Clean barrier: the dealer's prediction mirrors must have replayed
    // to exactly the units' resident sets. Checked before reseed (which
    // would make the comparison a tautology).
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (auto* obs = pool_.unit(i).observer()) {
        obs->on_join(lane_cache_[i].entries());
      }
    }
    reseed();
    report.healthy_units = healthy_units();
    accumulate(report);
    return report;
  }

 private:
  /// A dealt task with everything recovery needs to run it elsewhere: the
  /// declared chain (the checker reads it on the worker thread, and a
  /// redeal replays it against the new lane's mirror), the full declared
  /// cost (no hit credit — hits are lane-specific), the submit serial
  /// (redeal order), and the fault history.
  struct PendingTask {
    Task fn;
    std::vector<std::uint64_t> chain;  ///< declared keys (affine tasks)
    bool affine = false;
    std::uint64_t cost = 0;        ///< declared cost before any hit credit
    std::uint64_t predicted_hits = 0;
    bool hits_valid = true;  ///< false once recovery invalidated the replay
    std::uint64_t serial = 0;  ///< submit order, stable across redeals
    std::size_t attempts = 0;  ///< faulted executions so far
    std::exception_ptr last_fault;
  };

  struct Lane {
    std::mutex mu;
    std::condition_variable cv;    ///< work available / stop requested
    std::condition_variable idle;  ///< queue drained and worker idle
    std::deque<PendingTask> queue;
    bool busy = false;
    bool stop = false;
    // Fault state, written by the worker under `mu`, harvested by join.
    bool dead = false;   ///< permanent fault observed: funnel, don't run
    bool dirty = false;  ///< a fault left work the dealer never predicted
    std::uint64_t transients = 0;
    std::uint64_t permanents = 0;
    std::uint64_t retried = 0;
    std::uint64_t drained = 0;
    std::vector<PendingTask> failed;  ///< awaiting redeal at the barrier
    std::thread worker;
  };

  /// Greedy least-projected dealing over healthy lanes (ties toward the
  /// lowest index), shared by `submit`/`submit_to`-redirect and redeal.
  std::size_t place_plain(PendingTask task) {
    const std::size_t none = projected_.size();
    std::size_t best = none;
    for (std::size_t i = 0; i < projected_.size(); ++i) {
      if (quarantined_[i]) continue;
      if (best == none || projected_[i] < projected_[best]) best = i;
    }
    if (best == none) {
      throw fault::PermanentUnitFault("PoolExecutor: all units quarantined");
    }
    projected_[best] += task.cost;
    // Untagged work invalidates the unit's whole resident set.
    lane_cache_[best].clear();
    enqueue(best, std::move(task));
    return best;
  }

  /// Chain-replay affine dealing over healthy lanes, shared by
  /// `submit_affine` and redeal. Updates the winner's mirror with the
  /// replayed state and records the winning hit count on the task.
  std::size_t place_affine(PendingTask task) {
    const std::size_t none = projected_.size();
    std::size_t best = none;
    std::uint64_t best_done = 0;
    std::uint64_t best_hits = 0;
    TileCache best_cache(1);
    for (std::size_t i = 0; i < projected_.size(); ++i) {
      if (quarantined_[i]) continue;
      TileCache sim = lane_cache_[i];
      std::uint64_t hits = 0;
      for (const std::uint64_t key : task.chain) {
        if (key == 0) {
          sim.clear();
        } else if (sim.touch(key)) {
          ++hits;
        }
      }
      std::uint64_t eff = task.cost;
      eff -= std::min(hits * latency_, eff);
      const std::uint64_t done = projected_[i] + eff;
      if (best == none || done < best_done) {
        best = i;
        best_done = done;
        best_hits = hits;
        best_cache = std::move(sim);
      }
    }
    if (best == none) {
      throw fault::PermanentUnitFault("PoolExecutor: all units quarantined");
    }
    projected_[best] = best_done;
    lane_cache_[best] = std::move(best_cache);
    task.predicted_hits = best_hits;
    enqueue(best, std::move(task));
    return best;
  }

  void enqueue(std::size_t unit, PendingTask task) {
    Lane& lane = *lanes_.at(unit);
    {
      std::lock_guard<std::mutex> lock(lane.mu);
      lane.queue.push_back(std::move(task));
    }
    lane.cv.notify_one();
  }

  void quarantine_unspawned(std::size_t unit) {
    quarantined_[unit] = 1;
    ++spawn_failures_;
    cumulative_.spawn_failures = spawn_failures_;
    cumulative_.quarantined.push_back(unit);
  }

  void wait_all_idle() {
    for (auto& lane_ptr : lanes_) {
      Lane& lane = *lane_ptr;
      std::unique_lock<std::mutex> lock(lane.mu);
      lane.idle.wait(lock, [&] { return lane.queue.empty() && !lane.busy; });
    }
  }

  /// Abandon the round for a rethrow: fold the partial report into the
  /// lifetime statistics (the harvested faults really happened, so
  /// `fault_stats()` must not forget them), then re-anchor prediction and
  /// residency at the empty set and reseed the projections — leaving the
  /// executor reusable. Callable only while every worker is idle.
  void fail_round(RoundReport& report) {
    report.healthy_units = healthy_units();
    accumulate(report);
    reseed();
    evict_all();
  }

  void accumulate(const RoundReport& report) {
    cumulative_.transient_faults += report.transient_faults;
    cumulative_.permanent_faults += report.permanent_faults;
    cumulative_.retried += report.retried;
    cumulative_.redealt += report.redealt;
    cumulative_.drained += report.drained;
    cumulative_.spawn_failures = spawn_failures_;
    cumulative_.healthy_units = report.healthy_units;
    // cumulative_.quarantined is appended at quarantine time.
  }

  /// Re-anchor the submit-side predictions on the units' actual state:
  /// projections from the live counters, prediction mirrors as copies of
  /// the live tile caches. Safe whenever all workers are idle
  /// (construction and join): the drained workers' writes happen-before
  /// the idle wait returned.
  void reseed() {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      projected_[i] = pool_.unit(i).counters().tensor_time;
      lane_cache_[i] = pool_.unit(i).tile_cache();
    }
  }

  void worker_loop(Lane& lane, Device<T>& unit) {
    for (;;) {
      PendingTask task;
      bool dead = false;
      {
        std::unique_lock<std::mutex> lock(lane.mu);
        lane.cv.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
        if (lane.queue.empty()) return;  // stop requested and drained
        task = std::move(lane.queue.front());
        lane.queue.pop_front();
        lane.busy = true;
        dead = lane.dead;
      }
      run_one(lane, unit, std::move(task), dead);
      {
        std::lock_guard<std::mutex> lock(lane.mu);
        lane.busy = false;
        if (lane.queue.empty()) lane.idle.notify_all();
      }
    }
  }

  /// Execute one task on the worker thread, bracketing it for the unit's
  /// observer and absorbing fault exceptions into the lane's recovery
  /// state. Transient faults retry in place (the faulted call charged
  /// nothing, and the task's output writes are idempotent); once the
  /// same-lane budget is spent the task joins `lane.failed` for the
  /// barrier to redeal. A permanent fault kills the lane: the unit's
  /// residency is re-anchored at empty and every later queued task is
  /// funneled back unrun. Non-fault exceptions go to `first_error_`.
  void run_one(Lane& lane, Device<T>& unit, PendingTask task, bool dead) {
    if (dead) {
      std::lock_guard<std::mutex> lock(lane.mu);
      ++lane.drained;
      lane.failed.push_back(std::move(task));
      return;
    }
    check::UnitObserver* obs = unit.observer();
    std::size_t lane_retries = 0;
    for (;;) {
      if (obs) {
        obs->on_task_begin(task.affine ? &task.chain : nullptr,
                           task.predicted_hits, task.affine, task.hits_valid);
      }
      try {
        task.fn(unit);
        if (obs) obs->on_task_end(/*failed=*/false);
        return;
      } catch (const fault::PermanentUnitFault&) {
        if (obs) obs->on_task_end(/*failed=*/true);
        task.last_fault = std::current_exception();
        ++task.attempts;
        unit.evict_all();  // the dead unit can vouch for nothing
        std::lock_guard<std::mutex> lock(lane.mu);
        lane.dead = true;
        ++lane.permanents;
        lane.failed.push_back(std::move(task));
        return;
      } catch (const fault::TransientFault&) {
        if (obs) obs->on_task_end(/*failed=*/true);
        task.last_fault = std::current_exception();
        ++task.attempts;
        const bool retry_here = task.attempts < recovery_.max_attempts &&
                                lane_retries < recovery_.same_lane_retries;
        {
          std::lock_guard<std::mutex> lock(lane.mu);
          lane.dirty = true;
          ++lane.transients;
          if (retry_here) ++lane.retried;
        }
        if (retry_here) {
          ++lane_retries;
          task.hits_valid = false;
          continue;
        }
        std::lock_guard<std::mutex> lock(lane.mu);
        lane.failed.push_back(std::move(task));
        return;
      } catch (...) {
        if (obs) obs->on_task_end(/*failed=*/true);
        std::lock_guard<std::mutex> lock(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
        return;
      }
    }
  }

  void shutdown() {
    for (auto& lane_ptr : lanes_) {
      std::lock_guard<std::mutex> lock(lane_ptr->mu);
      lane_ptr->stop = true;
      lane_ptr->cv.notify_one();
    }
    for (auto& lane_ptr : lanes_) {
      if (lane_ptr->worker.joinable()) lane_ptr->worker.join();
    }
  }

  DevicePool<T>& pool_;
  PoolRecoveryOptions recovery_;
  std::uint64_t latency_;                 ///< the units' load latency l
  std::vector<std::uint64_t> projected_;  ///< submit-thread-only state
  std::vector<TileCache> lane_cache_;     ///< predicted resident set/lane
  std::vector<char> quarantined_;         ///< submit-thread-only view
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t next_serial_ = 0;
  std::uint64_t spawn_failures_ = 0;
  RoundReport cumulative_;  ///< lifetime fault statistics
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace tcu
