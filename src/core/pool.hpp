#pragma once
// Multiple parallel tensor units.
//
// Section 3.1 calls the single-unit assumption the model's main
// simplification — real boards carry hundreds of tensor cores — and §6
// asks how parallel units change algorithm design. `DevicePool<T>` is the
// natural extension: p independent (m, l) units sharing the CPU. A
// parallel algorithm assigns whole tensor calls to units; the pool's
// running time (makespan) is the shared CPU time plus the *maximum*
// tensor time over units, so perfectly balanced work divides the tensor
// term by p while the latency of each call stays on its unit.
//
// `PoolExecutor<T>` turns the simulated pool into a real parallel
// runtime: one OS worker thread per unit, each draining its own FIFO
// work queue. Scheduling stays deterministic — tasks are dealt on the
// *submitting* thread by greedy least-loaded over the projected
// simulated tensor time (actual counters plus the declared cost of
// everything already queued), with ties broken toward the lowest unit
// index, exactly like the serial `least_loaded()` loop. Because every
// task runs on the one thread that owns its unit, per-unit `Counters`
// are written race-free and their totals are independent of thread
// interleaving; `join()` is the barrier at which the merged view
// (`aggregate()`, `makespan()`) becomes meaningful again.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "core/device.hpp"

namespace tcu {

template <typename T>
class DevicePool {
 public:
  DevicePool(std::size_t units, typename Device<T>::Config cfg) {
    if (units == 0) throw std::invalid_argument("DevicePool: units >= 1");
    units_.reserve(units);
    for (std::size_t i = 0; i < units; ++i) {
      auto unit_cfg = cfg;
      unit_cfg.name = cfg.name + "#" + std::to_string(i);
      units_.emplace_back(std::move(unit_cfg));
    }
  }

  std::size_t size() const { return units_.size(); }
  Device<T>& unit(std::size_t i) { return units_.at(i); }
  const Device<T>& unit(std::size_t i) const { return units_.at(i); }

  /// Unit with the smallest tensor time so far (greedy list scheduling).
  Device<T>& least_loaded() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < units_.size(); ++i) {
      if (units_[i].counters().tensor_time <
          units_[best].counters().tensor_time) {
        best = i;
      }
    }
    return units_[best];
  }

  /// Shared (sequential) CPU work.
  void charge_cpu(std::uint64_t ops) { cpu_.charge_cpu(ops); }
  const Counters& cpu() const { return cpu_; }

  /// Model running time: CPU plus the busiest unit.
  std::uint64_t makespan() const {
    std::uint64_t worst = 0;
    for (const auto& u : units_) {
      worst = std::max(worst,
                       u.counters().tensor_time + u.counters().cpu_ops);
    }
    return worst + cpu_.cpu_ops;
  }

  /// Aggregate tensor time across units (the sequential-equivalent work).
  std::uint64_t total_tensor_time() const {
    std::uint64_t total = 0;
    for (const auto& u : units_) total += u.counters().tensor_time;
    return total;
  }

  /// Merged counters: shared CPU plus every unit, summed in unit order.
  /// Deterministic because each unit's counters are charged by exactly one
  /// worker (or the caller) and addition is per-field.
  Counters aggregate() const {
    Counters total = cpu_;
    for (const auto& u : units_) total += u.counters();
    return total;
  }

  void reset() {
    for (auto& u : units_) u.reset();
    cpu_.reset();
  }

 private:
  std::vector<Device<T>> units_;
  Counters cpu_;
};

/// Recovery budgets for fault-tolerant execution (src/fault/ injects the
/// faults; `PoolExecutor` survives them). A transient fault retries the
/// task in place up to `same_lane_retries` times, then hands it back to
/// the join barrier for redealing to a healthy lane; a task whose faulted
/// executions reach `max_attempts` exhausts recovery and `join()`
/// rethrows its last fault. Both budgets count *faulted executions* — a
/// funneled (never-run) task consumes nothing.
struct PoolRecoveryOptions {
  std::size_t same_lane_retries = 1;
  std::size_t max_attempts = 4;
};

/// Which join discipline a pooled workload drives the executor with.
/// `kBarrier` is the historical schedule: a strict `join()` after every
/// algorithmic round, bit-identical to PR 7. `kEpoch` replaces the
/// intermediate barriers with `join_epoch()` virtual barriers and
/// explicit task dependencies, overlapping rounds across lanes while the
/// per-lane schedules (and therefore every counter) stay deterministic.
enum class ExecMode { kBarrier, kEpoch };

/// Explicit predecessor set for a dependent task: the serials (returned
/// as `TaskTicket::serial`) of every task that must retire before this
/// one may start. Serials must come from earlier submits on the same
/// executor round — a dep on a not-yet-submitted serial is rejected.
struct TaskDeps {
  std::vector<std::uint64_t> after;
};

/// Receipt for a submitted task: its submit serial (usable as a
/// dependency for later tasks) and the lane the dealer chose.
struct TaskTicket {
  std::uint64_t serial = 0;
  std::size_t unit = 0;
};

/// What one `join()` round survived. Every field is deterministic given
/// the submitted schedule and the fault plan: faults fire at seeded
/// per-unit call indices, retry and redeal replay the same deterministic
/// dealer in original submit order, so two runs with the same
/// (seed, plan) produce identical reports — and identical outputs,
/// because tasks are idempotent strip writes re-issued from scratch.
struct RoundReport {
  std::uint64_t transient_faults = 0;  ///< transient-fault throws observed
  std::uint64_t permanent_faults = 0;  ///< permanent-fault throws observed
  std::uint64_t retried = 0;           ///< same-lane re-executions
  std::uint64_t redealt = 0;           ///< tasks redealt at the barrier
  std::uint64_t drained = 0;  ///< tasks funneled off dead lanes without running
  std::uint64_t deferred = 0;  ///< dep-waits abandoned to the barrier (recovery)
  std::uint64_t spawn_failures = 0;  ///< workers that never spawned (ctor)
  std::vector<std::size_t> quarantined;  ///< units newly quarantined, ascending
  std::size_t healthy_units = 0;  ///< lanes still accepting work afterwards

  bool faulted() const { return transient_faults != 0 || permanent_faults != 0; }
};

/// Worker-thread runtime over a DevicePool: one thread and one FIFO queue
/// per unit. Construction spawns the workers; destruction drains and joins
/// them. `submit` deals a task to the projected-least-loaded unit and must
/// be called from a single thread (the scheduling decision sequence is the
/// schedule). Do not touch the pool's units directly between the first
/// `submit` and the matching `join`. Worker exceptions are only surfaced
/// by `join()`; destroying the executor without a final join discards any
/// recorded error (destructors cannot throw).
///
/// The executor is *self-healing* against the fault taxonomy of
/// core/observer.hpp (injected by src/fault/, or raised by a real
/// backend): a `TransientFault` fails one tensor call with no side
/// effects, so the worker re-runs the task on the same lane (tasks are
/// idempotent: every pooled workload's tasks overwrite their output from
/// scratch); once the lane budget is spent the task is handed back to
/// `join()`, which redeals the failures — in original submit order,
/// through the normal deterministic dealer — to healthy lanes. A
/// `PermanentUnitFault` quarantines the unit: its worker funnels the
/// remaining queue back for redealing, its prediction mirror is dropped,
/// `evict_all` re-anchors its residency, and the pool keeps running at
/// p − f. `join()` returns a `RoundReport` of what it survived and
/// rethrows only when recovery is exhausted (attempt budget spent, or no
/// healthy unit remains) — non-fault exceptions keep the historical
/// first-error-rethrow contract. Tasks that issue multiple in-place
/// accumulating calls (graph/closure.cpp) are *not* idempotent and must
/// not run under an active fault plan.
///
/// The executor is *persistent*: `join()` is a barrier, not the end of its
/// life. After every join the greedy projections (and the per-lane
/// resident-tile predictions) are reseeded from the units' live counters,
/// so a caller-owned executor dealing work, joining, and dealing again is
/// bit-identical to constructing a fresh executor per round — one
/// executor amortizes thread startup across an entire Mlp forward, a batch
/// of matmuls, or a recursion tree.
///
/// `submit_affine` implements chain-aware tile-affinity scheduling: a
/// task declares its *tile chain* — the ordered resident-operand keys its
/// tensor calls will touch. The dealer keeps, per lane, a mirror of the
/// unit's TileCache advanced through everything already queued, replays
/// the candidate chain against each mirror to count predicted hits, and
/// charges the task `cost - hits * l` on each lane — so work lands where
/// its tiles already live and every predicted saving is genuinely
/// realized (Device::gemm_resident runs the identical LRU transitions,
/// elides the charges, and counts the hits). With capacity-1 caches and
/// single-tile chains this degenerates to the original
/// (enter_key, exit_key) affinity dealer bit-for-bit.
template <typename T>
class PoolExecutor {
 public:
  /// A task runs on its unit's worker thread and may only touch that unit
  /// (plus any disjoint output it was given).
  using Task = std::function<void(Device<T>&)>;

  explicit PoolExecutor(DevicePool<T>& pool, PoolRecoveryOptions recovery = {})
      : pool_(pool),
        recovery_(recovery),
        latency_(pool.unit(0).latency()),
        projected_(pool.size()),
        quarantined_(pool.size(), 0) {
    lane_cache_.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      lane_cache_.emplace_back(pool.unit(i).cache_capacity());
    }
    // Seed projections (and resident-tile predictions) from the live unit
    // state so dealing continues the greedy schedule of any work already
    // on the units.
    reseed();
    lanes_.reserve(pool_.size());
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      lanes_.push_back(std::make_unique<Lane>());
    }
    // Thread spawn can fail mid-loop (EAGAIN under thread pressure, or an
    // injected SpawnFault): degrade to the workers that did start —
    // unspawned units are quarantined before they can be dealt work, and
    // spawn_failures() records the loss — instead of aborting the pool.
    std::size_t spawned = 0;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      try {
        if (auto* inj = pool_.unit(i).fault_injector()) inj->on_spawn();
        lanes_[i]->worker =
            std::thread([this, i] { worker_loop(*lanes_[i], pool_.unit(i)); });
        ++spawned;
      } catch (const fault::SpawnFault&) {
        quarantine_unspawned(i);
      } catch (const std::system_error&) {
        quarantine_unspawned(i);
      }
    }
    if (spawned == 0) {
      shutdown();
      throw fault::SpawnFault("PoolExecutor: no worker thread could be spawned");
    }
  }

  PoolExecutor(const PoolExecutor&) = delete;
  PoolExecutor& operator=(const PoolExecutor&) = delete;

  ~PoolExecutor() { shutdown(); }

  DevicePool<T>& pool() { return pool_; }
  std::size_t size() const { return pool_.size(); }

  /// Cumulative fault-recovery statistics over this executor's lifetime:
  /// counters summed across rounds, `quarantined` listing every unit ever
  /// quarantined in the order it happened. Read only while quiescent.
  const RoundReport& fault_stats() const { return cumulative_; }

  /// Lanes still accepting work (p minus quarantined units).
  std::size_t healthy_units() const {
    std::size_t n = 0;
    for (const char q : quarantined_) {
      if (!q) ++n;
    }
    return n;
  }

  bool quarantined(std::size_t unit) const {
    return quarantined_.at(unit) != 0;
  }

  /// Worker threads that could not be spawned at construction (the pool
  /// runs degraded on the remainder; nonzero only after spawn faults).
  std::uint64_t spawn_failures() const { return spawn_failures_; }

  /// Deal `task` to the unit with the smallest projected tensor time
  /// (actual + declared cost of queued work), lowest index on ties.
  /// `projected_cost` is the simulated tensor time the task will charge;
  /// exact costs keep the dealing identical to a serial execute-then-pick
  /// loop. Returns the chosen unit index. The task's tensor calls are
  /// assumed untagged (they displace any resident tile).
  std::size_t submit(std::uint64_t projected_cost, Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.cost = projected_cost;
    t.fence = epoch_fence_;
    t.serial = next_serial_++;
    return place_plain(std::move(t));
  }

  /// `submit` with an explicit predecessor set: the task will not start
  /// until every serial in `deps.after` has retired into the completion
  /// ledger (in addition to the current epoch fence). Returns a ticket
  /// whose serial later tasks may depend on.
  TaskTicket submit(std::uint64_t projected_cost, TaskDeps deps, Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.cost = projected_cost;
    t.fence = epoch_fence_;
    t.deps = std::move(deps.after);
    check_deps(t.deps);
    t.serial = next_serial_++;
    const std::size_t unit = place_plain(std::move(t));
    return {next_serial_ - 1, unit};
  }

  /// Chain-aware tile-affinity dealing. `projected_cost` is the task's
  /// full simulated tensor time including one load latency per chain
  /// entry; `chain` lists, in call order, the resident-operand key of
  /// every tagged tensor call the task will issue (a 0 entry marks an
  /// untagged call, which invalidates the predicted set exactly as
  /// Device::gemm does). Keys are storage addresses for long-lived
  /// weights, or symbolic identities built with `make_tile_key` for
  /// operands whose storage is transient or reused (the DFT level tiles,
  /// Gaussian elimination's per-pivot panel strips) — the two spaces
  /// cannot collide. Each lane's mirrored cache is advanced through
  /// the chain to count predicted hits; the task is charged
  /// `cost - hits * l` there and the lane with the smallest projected
  /// completion wins (ties toward the lowest index). The winner's mirror
  /// keeps the replayed state, so later chains see exactly what the unit
  /// will hold. Returns the chosen unit index.
  // tcu-lint: epoch-free-ok(the runtime's own definition, not a call site)
  std::size_t submit_affine(std::uint64_t projected_cost,
                            const std::vector<std::uint64_t>& chain,
                            Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.chain = chain;
    t.affine = true;
    t.cost = projected_cost;
    t.fence = epoch_fence_;
    t.serial = next_serial_++;
    return place_affine(std::move(t));
  }

  /// `submit_affine` with an explicit predecessor set (see the TaskDeps
  /// overload of `submit`). Affinity dealing is unchanged — dependencies
  /// gate *when* the task starts, not *where* it lands.
  TaskTicket submit_affine(std::uint64_t projected_cost,
                           const std::vector<std::uint64_t>& chain,
                           TaskDeps deps, Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.chain = chain;
    t.affine = true;
    t.cost = projected_cost;
    t.fence = epoch_fence_;
    t.deps = std::move(deps.after);
    check_deps(t.deps);
    t.serial = next_serial_++;
    const std::size_t unit = place_affine(std::move(t));
    return {next_serial_ - 1, unit};
  }

  /// Pure-CPU task: issues no tensor calls, so the dealer leaves the
  /// lane's resident-set mirror untouched (unlike `submit`, whose
  /// untagged calls clobber it). `cpu_cost` is the exact cpu_ops the task
  /// will charge to its unit (`unit.charge_cpu`); it joins the lane's
  /// greedy projection because CPU work occupies the unit's timeline in
  /// `makespan()` exactly like tensor time. This is how epoch-mode
  /// workloads move per-round kernel work off the shared (serial) CPU
  /// counter and onto the units, where it parallelizes.
  TaskTicket submit_cpu(std::uint64_t cpu_cost, TaskDeps deps, Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.cost = cpu_cost;
    t.cpu = true;
    t.fence = epoch_fence_;
    t.deps = std::move(deps.after);
    check_deps(t.deps);
    t.serial = next_serial_++;
    const std::size_t unit = place_cpu(std::move(t));
    return {next_serial_ - 1, unit};
  }

  /// Enqueue on a specific unit's lane (for schedules computed elsewhere).
  /// If `unit` has been quarantined the pinned placement is impossible;
  /// the task degrades to the greedy dealer instead of aborting.
  void submit_to(std::size_t unit, std::uint64_t projected_cost, Task task) {
    PendingTask t;
    t.fn = std::move(task);
    t.cost = projected_cost;
    t.fence = epoch_fence_;
    t.serial = next_serial_++;
    if (quarantined_.at(unit)) {
      place_plain(std::move(t));
      return;
    }
    projected_[unit] += projected_cost;
    // Untagged work invalidates the unit's whole resident set.
    lane_cache_[unit].clear();
    enqueue(unit, std::move(t));
  }

  /// Drop every resident tile on every unit *and* every prediction
  /// mirror. Callable only while the executor is quiescent (before the
  /// first submit or after a join), when the submitting thread may touch
  /// the units safely.
  void evict_all() {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      pool_.unit(i).evict_all();
      lane_cache_[i].clear();
    }
  }

  /// Barrier with self-healing: wait until every queue has drained and
  /// every worker is idle, redeal fault-failed tasks to healthy lanes
  /// (repeating until a wave completes without new failures), quarantine
  /// dead units, reseed the projections from the units' live state (so
  /// further submits continue the greedy schedule exactly as a fresh
  /// executor would), and report what the round survived. Rethrows when
  /// recovery is impossible — a non-fault task exception (historical
  /// first-error contract), a task whose attempt budget is exhausted, or
  /// no healthy unit left — leaving the executor reusable: residency
  /// re-anchored at empty, projections reseeded, queues drained.
  /// Virtual barrier: order without idling. Everything submitted before
  /// this call must retire (into the completion ledger) before anything
  /// submitted after it starts — but the submitting thread does not
  /// block, and a worker that finishes its pre-epoch queue early starts
  /// on post-epoch work as soon as the ledger's low-water mark crosses
  /// the fence. Because every task carries its exact declared cost, the
  /// dealer's greedy projections and lane cache mirrors are already the
  /// virtual post-drain state, so no reseed is needed: dealing after a
  /// `join_epoch()` is bit-identical to dealing after a strict `join()`
  /// for the same submission sequence. When a checker is attached, each
  /// healthy lane gets a zero-cost marker that validates the dealer's
  /// mirror against the unit's live resident set exactly at the epoch
  /// boundary (the per-epoch analogue of the join-time mirror check).
  /// Faults are *not* recovered here — a faulted round's redeal happens
  /// at the next strict `join()`, which remains the only place errors
  /// are surfaced. Returns the new epoch id.
  std::uint64_t join_epoch() {
    ++epoch_id_;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (quarantined_[i] || !pool_.unit(i).observer()) continue;
      PendingTask t;
      t.marker = true;
      t.epoch = epoch_id_;
      t.mirror = lane_cache_[i].entries();
      t.serial = next_serial_++;
      enqueue(i, std::move(t));
    }
    epoch_fence_ = next_serial_;
    return epoch_id_;
  }

  RoundReport join() {
    RoundReport report;
    report.spawn_failures = spawn_failures_;
    for (;;) {
      wait_all_idle();
      // Collect what the workers recorded, under each lane's lock (the
      // idle wait ordered their writes before us).
      std::vector<PendingTask> failed;
      std::vector<std::size_t> dirty;
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        Lane& lane = *lanes_[i];
        std::lock_guard<std::mutex> lock(lane.mu);
        report.transient_faults += std::exchange(lane.transients, 0);
        report.permanent_faults += std::exchange(lane.permanents, 0);
        report.retried += std::exchange(lane.retried, 0);
        report.drained += std::exchange(lane.drained, 0);
        report.deferred += std::exchange(lane.deferred, 0);
        for (auto& t : lane.failed) failed.push_back(std::move(t));
        lane.failed.clear();
        if (lane.dead && !quarantined_[i]) {
          // Quarantine: the dealer stops offering this lane work and its
          // prediction mirror is dropped (the worker already re-anchored
          // the dead unit's residency at the empty set).
          quarantined_[i] = 1;
          lane_cache_[i].clear();
          report.quarantined.push_back(i);
          cumulative_.quarantined.push_back(i);
        }
        if (std::exchange(lane.dirty, false) && !quarantined_[i]) {
          dirty.push_back(i);
        }
      }
      // Non-fault task exceptions keep the historical contract: first
      // error wins, the round is lost, join rethrows. A failed task
      // abandoned its declared chain mid-flight, so the residency the
      // dealer promised later tasks never materialized; re-anchor both
      // sides at the empty set so prediction cannot drift from unit state.
      std::exception_ptr error;
      {
        std::lock_guard<std::mutex> lock(error_mu_);
        error = std::exchange(first_error_, nullptr);
      }
      if (error) {
        fail_round(report);
        std::rethrow_exception(error);
      }
      // Re-anchor faulted-but-alive lanes: a fault aborted a declared
      // chain mid-flight (or retried calls the dealer never predicted),
      // so mirror and unit re-meet at the empty set before more dealing.
      for (const std::size_t i : dirty) {
        pool_.unit(i).evict_all();
        lane_cache_[i].clear();
      }
      // Re-arm dependency waiting before any redeal is placed: redealt
      // tasks carry their original deps/fences, and a still-raised
      // recovery flag would make them defer right back to this barrier.
      recovery_flag_.store(false, std::memory_order_release);
      if (failed.empty()) break;
      // Deterministic redeal: original submit order, healthy lanes only,
      // through the normal dealer (so mirrors stay in lock-step).
      std::sort(failed.begin(), failed.end(),
                [](const PendingTask& a, const PendingTask& b) {
                  return a.serial < b.serial;
                });
      if (healthy_units() == 0) {
        std::exception_ptr last = failed.front().last_fault;
        fail_round(report);
        if (last) std::rethrow_exception(last);
        throw fault::PermanentUnitFault(
            "PoolExecutor: all units quarantined");
      }
      // Exhaustion is decided for the whole wave *before* any redeal is
      // placed: a re-enqueued task puts workers back in flight, and
      // fail_round's reseed/evict_all may only touch unit state while
      // every worker is idle — rethrowing mid-loop would also leak the
      // already-redealt tasks past the barrier. All workers are still
      // idle here, so the lowest-serial exhausted task surfaces its
      // fault exactly like the historical error path (the executor
      // stays reusable, queues drained).
      for (const auto& t : failed) {
        if (t.attempts >= recovery_.max_attempts) {
          std::exception_ptr last = t.last_fault;
          fail_round(report);
          std::rethrow_exception(last);
        }
      }
      for (auto& t : failed) {
        t.hits_valid = false;
        ++report.redealt;
        if (t.affine) {
          place_affine(std::move(t));
        } else if (t.cpu) {
          place_cpu(std::move(t));
        } else {
          place_plain(std::move(t));
        }
      }
    }
    // Clean barrier: the dealer's prediction mirrors must have replayed
    // to exactly the units' resident sets. Checked before reseed (which
    // would make the comparison a tautology).
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (auto* obs = pool_.unit(i).observer()) {
        obs->on_join(lane_cache_[i].entries());
      }
    }
    reseed();
    // Every serial retired: compact the ledger and drop the fence so the
    // next round's tasks take the no-wait fast path.
    reset_ledger();
    epoch_fence_ = 0;
    report.healthy_units = healthy_units();
    accumulate(report);
    return report;
  }

 private:
  /// A dealt task with everything recovery needs to run it elsewhere: the
  /// declared chain (the checker reads it on the worker thread, and a
  /// redeal replays it against the new lane's mirror), the full declared
  /// cost (no hit credit — hits are lane-specific), the submit serial
  /// (redeal order), and the fault history.
  struct PendingTask {
    Task fn;
    std::vector<std::uint64_t> chain;  ///< declared keys (affine tasks)
    bool affine = false;
    std::uint64_t cost = 0;        ///< declared cost before any hit credit
    std::uint64_t predicted_hits = 0;
    bool hits_valid = true;  ///< false once recovery invalidated the replay
    std::uint64_t serial = 0;  ///< submit order, stable across redeals
    std::size_t attempts = 0;  ///< faulted executions so far
    std::exception_ptr last_fault;
    // Epoch runtime state. `fence` orders the task after every serial
    // below it (0 = unfenced); `deps` lists explicit predecessor serials.
    // Markers are zero-cost checker probes enqueued by join_epoch():
    // FIFO order makes them run exactly after the lane's pre-epoch tasks,
    // where `mirror` (the dealer's lane-cache snapshot) must equal the
    // unit's live resident set.
    std::uint64_t fence = 0;
    std::vector<std::uint64_t> deps;
    bool cpu = false;  ///< pure-CPU task: redeal through place_cpu
    bool marker = false;
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> mirror;
  };

  struct Lane {
    std::mutex mu;
    std::condition_variable cv;    ///< work available / stop requested
    std::condition_variable idle;  ///< queue drained and worker idle
    std::deque<PendingTask> queue;
    bool busy = false;
    bool stop = false;
    // Fault state, written by the worker under `mu`, harvested by join.
    bool dead = false;   ///< permanent fault observed: funnel, don't run
    bool dirty = false;  ///< a fault left work the dealer never predicted
    std::uint64_t transients = 0;
    std::uint64_t permanents = 0;
    std::uint64_t retried = 0;
    std::uint64_t drained = 0;
    std::uint64_t deferred = 0;
    std::vector<PendingTask> failed;  ///< awaiting redeal at the barrier
    std::thread worker;
  };

  /// Greedy least-projected dealing over healthy lanes (ties toward the
  /// lowest index), shared by `submit`/`submit_to`-redirect and redeal.
  std::size_t place_plain(PendingTask task) {
    const std::size_t none = projected_.size();
    std::size_t best = none;
    for (std::size_t i = 0; i < projected_.size(); ++i) {
      if (quarantined_[i]) continue;
      if (best == none || projected_[i] < projected_[best]) best = i;
    }
    if (best == none) {
      throw fault::PermanentUnitFault("PoolExecutor: all units quarantined");
    }
    projected_[best] += task.cost;
    // Untagged work invalidates the unit's whole resident set.
    lane_cache_[best].clear();
    enqueue(best, std::move(task));
    return best;
  }

  /// Least-projected dealing for pure-CPU tasks: no tensor calls, so the
  /// lane's mirror survives (a CPU task between two affine tasks must not
  /// cost the second its predicted hits).
  std::size_t place_cpu(PendingTask task) {
    const std::size_t none = projected_.size();
    std::size_t best = none;
    for (std::size_t i = 0; i < projected_.size(); ++i) {
      if (quarantined_[i]) continue;
      if (best == none || projected_[i] < projected_[best]) best = i;
    }
    if (best == none) {
      throw fault::PermanentUnitFault("PoolExecutor: all units quarantined");
    }
    projected_[best] += task.cost;
    enqueue(best, std::move(task));
    return best;
  }

  /// Chain-replay affine dealing over healthy lanes, shared by
  /// `submit_affine` and redeal. Updates the winner's mirror with the
  /// replayed state and records the winning hit count on the task.
  std::size_t place_affine(PendingTask task) {
    const std::size_t none = projected_.size();
    std::size_t best = none;
    std::uint64_t best_done = 0;
    std::uint64_t best_hits = 0;
    TileCache best_cache(1);
    for (std::size_t i = 0; i < projected_.size(); ++i) {
      if (quarantined_[i]) continue;
      TileCache sim = lane_cache_[i];
      std::uint64_t hits = 0;
      for (const std::uint64_t key : task.chain) {
        if (key == 0) {
          sim.clear();
        } else if (sim.touch(key)) {
          ++hits;
        }
      }
      std::uint64_t eff = task.cost;
      eff -= std::min(hits * latency_, eff);
      const std::uint64_t done = projected_[i] + eff;
      if (best == none || done < best_done) {
        best = i;
        best_done = done;
        best_hits = hits;
        best_cache = std::move(sim);
      }
    }
    if (best == none) {
      throw fault::PermanentUnitFault("PoolExecutor: all units quarantined");
    }
    projected_[best] = best_done;
    lane_cache_[best] = std::move(best_cache);
    task.predicted_hits = best_hits;
    enqueue(best, std::move(task));
    return best;
  }

  /// Reject dependencies on serials that have not been submitted yet (a
  /// forward dep could never retire and would deadlock the dep-wait).
  /// Called on the submit thread *before* the task's serial is allocated
  /// — the task's own serial would be `next_serial_`, so `< next_serial_`
  /// is the precise bound, and a rejected submit leaks nothing (an
  /// allocated-but-never-enqueued serial could never retire and would
  /// stall every later epoch fence).
  void check_deps(const std::vector<std::uint64_t>& deps) const {
    for (const std::uint64_t d : deps) {
      if (d >= next_serial_) {
        throw std::invalid_argument(
            "PoolExecutor: dependency on a not-yet-submitted serial");
      }
    }
  }

  /// Mark one serial complete in the ledger and advance the low-water
  /// mark (all serials below it are retired). Worker threads call this
  /// for every task outcome that will not run again.
  void retire(std::uint64_t serial) {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    if (serial < ledger_base_) return;  // compacted: already retired
    const std::size_t idx = static_cast<std::size_t>(serial - ledger_base_);
    if (idx >= done_.size()) done_.resize(idx + 1, 0);
    done_[idx] = 1;
    while (low_water_ < ledger_base_ + done_.size() &&
           done_[static_cast<std::size_t>(low_water_ - ledger_base_)]) {
      ++low_water_;
    }
    ledger_cv_.notify_all();
  }

  bool deps_ready_locked(const PendingTask& t) const {
    if (low_water_ < t.fence) return false;
    for (const std::uint64_t d : t.deps) {
      if (d < low_water_) continue;
      const std::size_t idx = static_cast<std::size_t>(d - ledger_base_);
      if (idx >= done_.size() || !done_[idx]) return false;
    }
    return true;
  }

  /// Raise the recovery flag and wake every dep-waiting worker: some
  /// serial may never retire on its own (a task failed, died with its
  /// lane, or hit a non-fault error), so blocked tasks must defer to the
  /// strict barrier instead of waiting. The empty critical section
  /// orders the flag write before any waiter's predicate re-check.
  void signal_recovery() {
    recovery_flag_.store(true, std::memory_order_release);
    { std::lock_guard<std::mutex> lock(ledger_mu_); }
    ledger_cv_.notify_all();
  }

  /// Forget every outstanding serial: the round is over (cleanly, or
  /// abandoned by fail_round, which re-anchors all state anyway).
  void reset_ledger() {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    low_water_ = next_serial_;
    ledger_base_ = next_serial_;
    done_.clear();
    recovery_flag_.store(false, std::memory_order_release);
  }

  enum class DepWait { kRun, kDefer, kStop };

  /// Block until the task's fence and predecessor serials have retired.
  /// Returns kDefer when recovery is underway (the task goes back to the
  /// barrier for redealing — its predecessors may be in `failed` and
  /// unable to retire until then) and kStop on executor shutdown.
  DepWait wait_deps(const PendingTask& task) {
    if (task.fence == 0 && task.deps.empty()) return DepWait::kRun;
    std::unique_lock<std::mutex> lock(ledger_mu_);
    ledger_cv_.wait(lock, [&] {
      return ledger_stop_ || deps_ready_locked(task) ||
             recovery_flag_.load(std::memory_order_acquire);
    });
    if (deps_ready_locked(task)) return DepWait::kRun;
    return ledger_stop_ ? DepWait::kStop : DepWait::kDefer;
  }

  void enqueue(std::size_t unit, PendingTask task) {
    Lane& lane = *lanes_.at(unit);
    {
      std::lock_guard<std::mutex> lock(lane.mu);
      lane.queue.push_back(std::move(task));
    }
    lane.cv.notify_one();
  }

  void quarantine_unspawned(std::size_t unit) {
    quarantined_[unit] = 1;
    ++spawn_failures_;
    cumulative_.spawn_failures = spawn_failures_;
    cumulative_.quarantined.push_back(unit);
  }

  void wait_all_idle() {
    for (auto& lane_ptr : lanes_) {
      Lane& lane = *lane_ptr;
      std::unique_lock<std::mutex> lock(lane.mu);
      lane.idle.wait(lock, [&] { return lane.queue.empty() && !lane.busy; });
    }
  }

  /// Abandon the round for a rethrow: fold the partial report into the
  /// lifetime statistics (the harvested faults really happened, so
  /// `fault_stats()` must not forget them), then re-anchor prediction and
  /// residency at the empty set and reseed the projections — leaving the
  /// executor reusable. Callable only while every worker is idle.
  void fail_round(RoundReport& report) {
    report.healthy_units = healthy_units();
    accumulate(report);
    reseed();
    evict_all();
    // Outstanding serials died with the round; forget them so the next
    // round's dep-waits cannot block on tasks that will never run.
    reset_ledger();
    epoch_fence_ = 0;
  }

  void accumulate(const RoundReport& report) {
    cumulative_.transient_faults += report.transient_faults;
    cumulative_.permanent_faults += report.permanent_faults;
    cumulative_.retried += report.retried;
    cumulative_.redealt += report.redealt;
    cumulative_.drained += report.drained;
    cumulative_.deferred += report.deferred;
    cumulative_.spawn_failures = spawn_failures_;
    cumulative_.healthy_units = report.healthy_units;
    // cumulative_.quarantined is appended at quarantine time.
  }

  /// Re-anchor the submit-side predictions on the units' actual state:
  /// projections from the live counters, prediction mirrors as copies of
  /// the live tile caches. Safe whenever all workers are idle
  /// (construction and join): the drained workers' writes happen-before
  /// the idle wait returned.
  void reseed() {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      projected_[i] = pool_.unit(i).counters().tensor_time;
      lane_cache_[i] = pool_.unit(i).tile_cache();
    }
  }

  void worker_loop(Lane& lane, Device<T>& unit) {
    for (;;) {
      PendingTask task;
      bool dead = false;
      {
        std::unique_lock<std::mutex> lock(lane.mu);
        lane.cv.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
        if (lane.queue.empty()) return;  // stop requested and drained
        task = std::move(lane.queue.front());
        lane.queue.pop_front();
        lane.busy = true;
        dead = lane.dead;
      }
      run_one(lane, unit, std::move(task), dead);
      {
        std::lock_guard<std::mutex> lock(lane.mu);
        lane.busy = false;
        if (lane.queue.empty()) lane.idle.notify_all();
      }
    }
  }

  /// Execute one task on the worker thread, bracketing it for the unit's
  /// observer and absorbing fault exceptions into the lane's recovery
  /// state. Transient faults retry in place (the faulted call charged
  /// nothing, and the task's output writes are idempotent); once the
  /// same-lane budget is spent the task joins `lane.failed` for the
  /// barrier to redeal. A permanent fault kills the lane: the unit's
  /// residency is re-anchored at empty and every later queued task is
  /// funneled back unrun. Non-fault exceptions go to `first_error_`.
  void run_one(Lane& lane, Device<T>& unit, PendingTask task, bool dead) {
    if (dead) {
      if (task.marker) {
        // Checker probes are lane-local and meaningless on a dead lane;
        // retire so the epoch's fence can still clear.
        retire(task.serial);
        return;
      }
      std::lock_guard<std::mutex> lock(lane.mu);
      ++lane.drained;
      lane.failed.push_back(std::move(task));
      return;
    }
    check::UnitObserver* obs = unit.observer();
    if (task.marker) {
      // Epoch boundary on this lane: every pre-epoch task here has run
      // (FIFO), so the dealer's mirror snapshot must equal the unit's
      // live resident set — unless a fault already desynced them (the
      // strict barrier re-anchors and re-checks in that case).
      bool stale;
      {
        std::lock_guard<std::mutex> lock(lane.mu);
        stale = lane.dirty || lane.dead;
      }
      if (obs && !stale && !recovery_flag_.load(std::memory_order_acquire)) {
        try {
          obs->on_epoch(task.mirror, task.epoch);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu_);
          if (!first_error_) first_error_ = std::current_exception();
          signal_recovery();
        }
      }
      retire(task.serial);
      return;
    }
    switch (wait_deps(task)) {
      case DepWait::kRun:
        break;
      case DepWait::kStop:
        return;  // shutdown without join: round abandoned
      case DepWait::kDefer: {
        // A predecessor is stuck in recovery; hand the task back to the
        // strict barrier unrun (no attempt consumed). The dealer's
        // mirror was advanced for a task that never touched this unit —
        // mark the lane dirty so join() re-anchors it.
        std::lock_guard<std::mutex> lock(lane.mu);
        lane.dirty = true;
        ++lane.deferred;
        lane.failed.push_back(std::move(task));
        return;
      }
    }
    std::size_t lane_retries = 0;
    for (;;) {
      if (obs) {
        obs->on_task_begin(task.affine ? &task.chain : nullptr,
                           task.predicted_hits, task.affine, task.hits_valid);
      }
      try {
        task.fn(unit);
        if (obs) obs->on_task_end(/*failed=*/false);
        retire(task.serial);
        return;
      } catch (const fault::PermanentUnitFault&) {
        if (obs) obs->on_task_end(/*failed=*/true);
        task.last_fault = std::current_exception();
        ++task.attempts;
        unit.evict_all();  // the dead unit can vouch for nothing
        {
          std::lock_guard<std::mutex> lock(lane.mu);
          lane.dead = true;
          ++lane.permanents;
          lane.failed.push_back(std::move(task));
        }
        signal_recovery();
        return;
      } catch (const fault::TransientFault&) {
        if (obs) obs->on_task_end(/*failed=*/true);
        task.last_fault = std::current_exception();
        ++task.attempts;
        const bool retry_here = task.attempts < recovery_.max_attempts &&
                                lane_retries < recovery_.same_lane_retries;
        {
          std::lock_guard<std::mutex> lock(lane.mu);
          lane.dirty = true;
          ++lane.transients;
          if (retry_here) ++lane.retried;
        }
        if (retry_here) {
          ++lane_retries;
          task.hits_valid = false;
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(lane.mu);
          lane.failed.push_back(std::move(task));
        }
        signal_recovery();
        return;
      } catch (...) {
        if (obs) obs->on_task_end(/*failed=*/true);
        {
          std::lock_guard<std::mutex> lock(error_mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        // The task's serial will never retire; unstick any dep-waiters.
        signal_recovery();
        return;
      }
    }
  }

  void shutdown() {
    for (auto& lane_ptr : lanes_) {
      std::lock_guard<std::mutex> lock(lane_ptr->mu);
      lane_ptr->stop = true;
      lane_ptr->cv.notify_one();
    }
    {
      // Wake workers parked in a dep-wait: their predecessors may sit in
      // queues behind them and can never retire once we stop draining.
      std::lock_guard<std::mutex> lock(ledger_mu_);
      ledger_stop_ = true;
    }
    ledger_cv_.notify_all();
    for (auto& lane_ptr : lanes_) {
      if (lane_ptr->worker.joinable()) lane_ptr->worker.join();
    }
  }

  DevicePool<T>& pool_;
  PoolRecoveryOptions recovery_;
  std::uint64_t latency_;                 ///< the units' load latency l
  std::vector<std::uint64_t> projected_;  ///< submit-thread-only state
  std::vector<TileCache> lane_cache_;     ///< predicted resident set/lane
  std::vector<char> quarantined_;         ///< submit-thread-only view
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t next_serial_ = 0;
  std::uint64_t spawn_failures_ = 0;
  RoundReport cumulative_;  ///< lifetime fault statistics
  std::mutex error_mu_;
  std::exception_ptr first_error_;
  // Completion ledger: which serials have retired. `done_` is indexed by
  // serial - ledger_base_; `low_water_` is the smallest unretired serial
  // (compacted forward at every strict join). Guarded by ledger_mu_.
  std::mutex ledger_mu_;
  std::condition_variable ledger_cv_;
  std::vector<std::uint8_t> done_;
  std::uint64_t ledger_base_ = 0;
  std::uint64_t low_water_ = 0;
  bool ledger_stop_ = false;
  /// Raised by any outcome that strands a serial (fault, funneled task,
  /// non-fault error): dep-waiting workers defer to the strict barrier
  /// instead of blocking on a retire that will never come.
  std::atomic<bool> recovery_flag_{false};
  // Epoch state (submit-thread-only, like the dealer's projections).
  std::uint64_t epoch_fence_ = 0;  ///< fence stamped onto new tasks
  std::uint64_t epoch_id_ = 0;
};

}  // namespace tcu
