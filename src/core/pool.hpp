#pragma once
// Multiple parallel tensor units.
//
// Section 3.1 calls the single-unit assumption the model's main
// simplification — real boards carry hundreds of tensor cores — and §6
// asks how parallel units change algorithm design. `DevicePool<T>` is the
// natural extension: p independent (m, l) units sharing the CPU. A
// parallel algorithm assigns whole tensor calls to units; the pool's
// running time (makespan) is the shared CPU time plus the *maximum*
// tensor time over units, so perfectly balanced work divides the tensor
// term by p while the latency of each call stays on its unit.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/device.hpp"

namespace tcu {

template <typename T>
class DevicePool {
 public:
  DevicePool(std::size_t units, typename Device<T>::Config cfg) {
    if (units == 0) throw std::invalid_argument("DevicePool: units >= 1");
    units_.reserve(units);
    for (std::size_t i = 0; i < units; ++i) {
      auto unit_cfg = cfg;
      unit_cfg.name = cfg.name + "#" + std::to_string(i);
      units_.emplace_back(std::move(unit_cfg));
    }
  }

  std::size_t size() const { return units_.size(); }
  Device<T>& unit(std::size_t i) { return units_.at(i); }
  const Device<T>& unit(std::size_t i) const { return units_.at(i); }

  /// Unit with the smallest tensor time so far (greedy list scheduling).
  Device<T>& least_loaded() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < units_.size(); ++i) {
      if (units_[i].counters().tensor_time <
          units_[best].counters().tensor_time) {
        best = i;
      }
    }
    return units_[best];
  }

  /// Shared (sequential) CPU work.
  void charge_cpu(std::uint64_t ops) { cpu_.charge_cpu(ops); }
  const Counters& cpu() const { return cpu_; }

  /// Model running time: CPU plus the busiest unit.
  std::uint64_t makespan() const {
    std::uint64_t worst = 0;
    for (const auto& u : units_) {
      worst = std::max(worst,
                       u.counters().tensor_time + u.counters().cpu_ops);
    }
    return worst + cpu_.cpu_ops;
  }

  /// Aggregate tensor time across units (the sequential-equivalent work).
  std::uint64_t total_tensor_time() const {
    std::uint64_t total = 0;
    for (const auto& u : units_) total += u.counters().tensor_time;
    return total;
  }

  void reset() {
    for (auto& u : units_) u.reset();
    cpu_.reset();
  }

 private:
  std::vector<Device<T>> units_;
  Counters cpu_;
};

}  // namespace tcu
