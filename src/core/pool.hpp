#pragma once
// Multiple parallel tensor units.
//
// Section 3.1 calls the single-unit assumption the model's main
// simplification — real boards carry hundreds of tensor cores — and §6
// asks how parallel units change algorithm design. `DevicePool<T>` is the
// natural extension: p independent (m, l) units sharing the CPU. A
// parallel algorithm assigns whole tensor calls to units; the pool's
// running time (makespan) is the shared CPU time plus the *maximum*
// tensor time over units, so perfectly balanced work divides the tensor
// term by p while the latency of each call stays on its unit.
//
// `PoolExecutor<T>` turns the simulated pool into a real parallel
// runtime: one OS worker thread per unit, each draining its own FIFO
// work queue. Scheduling stays deterministic — tasks are dealt on the
// *submitting* thread by greedy least-loaded over the projected
// simulated tensor time (actual counters plus the declared cost of
// everything already queued), with ties broken toward the lowest unit
// index, exactly like the serial `least_loaded()` loop. Because every
// task runs on the one thread that owns its unit, per-unit `Counters`
// are written race-free and their totals are independent of thread
// interleaving; `join()` is the barrier at which the merged view
// (`aggregate()`, `makespan()`) becomes meaningful again.

#include <cstdint>
#include <deque>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/device.hpp"

namespace tcu {

template <typename T>
class DevicePool {
 public:
  DevicePool(std::size_t units, typename Device<T>::Config cfg) {
    if (units == 0) throw std::invalid_argument("DevicePool: units >= 1");
    units_.reserve(units);
    for (std::size_t i = 0; i < units; ++i) {
      auto unit_cfg = cfg;
      unit_cfg.name = cfg.name + "#" + std::to_string(i);
      units_.emplace_back(std::move(unit_cfg));
    }
  }

  std::size_t size() const { return units_.size(); }
  Device<T>& unit(std::size_t i) { return units_.at(i); }
  const Device<T>& unit(std::size_t i) const { return units_.at(i); }

  /// Unit with the smallest tensor time so far (greedy list scheduling).
  Device<T>& least_loaded() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < units_.size(); ++i) {
      if (units_[i].counters().tensor_time <
          units_[best].counters().tensor_time) {
        best = i;
      }
    }
    return units_[best];
  }

  /// Shared (sequential) CPU work.
  void charge_cpu(std::uint64_t ops) { cpu_.charge_cpu(ops); }
  const Counters& cpu() const { return cpu_; }

  /// Model running time: CPU plus the busiest unit.
  std::uint64_t makespan() const {
    std::uint64_t worst = 0;
    for (const auto& u : units_) {
      worst = std::max(worst,
                       u.counters().tensor_time + u.counters().cpu_ops);
    }
    return worst + cpu_.cpu_ops;
  }

  /// Aggregate tensor time across units (the sequential-equivalent work).
  std::uint64_t total_tensor_time() const {
    std::uint64_t total = 0;
    for (const auto& u : units_) total += u.counters().tensor_time;
    return total;
  }

  /// Merged counters: shared CPU plus every unit, summed in unit order.
  /// Deterministic because each unit's counters are charged by exactly one
  /// worker (or the caller) and addition is per-field.
  Counters aggregate() const {
    Counters total = cpu_;
    for (const auto& u : units_) total += u.counters();
    return total;
  }

  void reset() {
    for (auto& u : units_) u.reset();
    cpu_.reset();
  }

 private:
  std::vector<Device<T>> units_;
  Counters cpu_;
};

/// Worker-thread runtime over a DevicePool: one thread and one FIFO queue
/// per unit. Construction spawns the workers; destruction drains and joins
/// them. `submit` deals a task to the projected-least-loaded unit and must
/// be called from a single thread (the scheduling decision sequence is the
/// schedule). Do not touch the pool's units directly between the first
/// `submit` and the matching `join`. Worker exceptions are only surfaced
/// by `join()`; destroying the executor without a final join discards any
/// recorded error (destructors cannot throw).
///
/// The executor is *persistent*: `join()` is a barrier, not the end of its
/// life. After every join the greedy projections (and the per-lane
/// resident-tile predictions) are reseeded from the units' live counters,
/// so a caller-owned executor dealing work, joining, and dealing again is
/// bit-identical to constructing a fresh executor per round — one
/// executor amortizes thread startup across an entire Mlp forward, a batch
/// of matmuls, or a recursion tree.
///
/// `submit_affine` implements chain-aware tile-affinity scheduling: a
/// task declares its *tile chain* — the ordered resident-operand keys its
/// tensor calls will touch. The dealer keeps, per lane, a mirror of the
/// unit's TileCache advanced through everything already queued, replays
/// the candidate chain against each mirror to count predicted hits, and
/// charges the task `cost - hits * l` on each lane — so work lands where
/// its tiles already live and every predicted saving is genuinely
/// realized (Device::gemm_resident runs the identical LRU transitions,
/// elides the charges, and counts the hits). With capacity-1 caches and
/// single-tile chains this degenerates to the original
/// (enter_key, exit_key) affinity dealer bit-for-bit.
template <typename T>
class PoolExecutor {
 public:
  /// A task runs on its unit's worker thread and may only touch that unit
  /// (plus any disjoint output it was given).
  using Task = std::function<void(Device<T>&)>;

  explicit PoolExecutor(DevicePool<T>& pool)
      : pool_(pool),
        latency_(pool.unit(0).latency()),
        projected_(pool.size()) {
    lane_cache_.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      lane_cache_.emplace_back(pool.unit(i).cache_capacity());
    }
    // Seed projections (and resident-tile predictions) from the live unit
    // state so dealing continues the greedy schedule of any work already
    // on the units.
    reseed();
    lanes_.reserve(pool_.size());
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      lanes_.push_back(std::make_unique<Lane>());
    }
    try {
      for (std::size_t i = 0; i < pool_.size(); ++i) {
        lanes_[i]->worker =
            std::thread([this, i] { worker_loop(*lanes_[i], pool_.unit(i)); });
      }
    } catch (...) {
      // Thread spawn failed mid-loop (e.g. EAGAIN): stop and join the
      // workers that did start, or their ~std::thread would terminate.
      shutdown();
      throw;
    }
  }

  PoolExecutor(const PoolExecutor&) = delete;
  PoolExecutor& operator=(const PoolExecutor&) = delete;

  ~PoolExecutor() { shutdown(); }

  DevicePool<T>& pool() { return pool_; }
  std::size_t size() const { return pool_.size(); }

  /// Deal `task` to the unit with the smallest projected tensor time
  /// (actual + declared cost of queued work), lowest index on ties.
  /// `projected_cost` is the simulated tensor time the task will charge;
  /// exact costs keep the dealing identical to a serial execute-then-pick
  /// loop. Returns the chosen unit index. The task's tensor calls are
  /// assumed untagged (they displace any resident tile).
  std::size_t submit(std::uint64_t projected_cost, Task task) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < projected_.size(); ++i) {
      if (projected_[i] < projected_[best]) best = i;
    }
    submit_to(best, projected_cost, std::move(task));
    return best;
  }

  /// Chain-aware tile-affinity dealing. `projected_cost` is the task's
  /// full simulated tensor time including one load latency per chain
  /// entry; `chain` lists, in call order, the resident-operand key of
  /// every tagged tensor call the task will issue (a 0 entry marks an
  /// untagged call, which invalidates the predicted set exactly as
  /// Device::gemm does). Keys are storage addresses for long-lived
  /// weights, or symbolic identities built with `make_tile_key` for
  /// operands whose storage is transient or reused (the DFT level tiles,
  /// Gaussian elimination's per-pivot panel strips) — the two spaces
  /// cannot collide. Each lane's mirrored cache is advanced through
  /// the chain to count predicted hits; the task is charged
  /// `cost - hits * l` there and the lane with the smallest projected
  /// completion wins (ties toward the lowest index). The winner's mirror
  /// keeps the replayed state, so later chains see exactly what the unit
  /// will hold. Returns the chosen unit index.
  std::size_t submit_affine(std::uint64_t projected_cost,
                            const std::vector<std::uint64_t>& chain,
                            Task task) {
    std::size_t best = 0;
    std::uint64_t best_done = 0;
    std::uint64_t best_hits = 0;
    TileCache best_cache(1);
    for (std::size_t i = 0; i < projected_.size(); ++i) {
      TileCache sim = lane_cache_[i];
      std::uint64_t hits = 0;
      for (const std::uint64_t key : chain) {
        if (key == 0) {
          sim.clear();
        } else if (sim.touch(key)) {
          ++hits;
        }
      }
      std::uint64_t eff = projected_cost;
      eff -= std::min(hits * latency_, eff);
      const std::uint64_t done = projected_[i] + eff;
      if (i == 0 || done < best_done) {
        best = i;
        best_done = done;
        best_hits = hits;
        best_cache = std::move(sim);
      }
    }
    projected_[best] = best_done;
    lane_cache_[best] = std::move(best_cache);
    enqueue(best, wrap_checked(best, &chain, best_hits, std::move(task)));
    return best;
  }

  /// Enqueue on a specific unit's lane (for schedules computed elsewhere).
  void submit_to(std::size_t unit, std::uint64_t projected_cost, Task task) {
    projected_.at(unit) += projected_cost;
    // Untagged work invalidates the unit's whole resident set.
    lane_cache_[unit].clear();
    enqueue(unit, wrap_checked(unit, /*chain=*/nullptr, /*predicted_hits=*/0,
                               std::move(task)));
  }

  /// Drop every resident tile on every unit *and* every prediction
  /// mirror. Callable only while the executor is quiescent (before the
  /// first submit or after a join), when the submitting thread may touch
  /// the units safely.
  void evict_all() {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      pool_.unit(i).evict_all();
      lane_cache_[i].clear();
    }
  }

  /// Barrier: wait until every queue has drained and every worker is idle,
  /// reseed the projections from the units' live state (so further submits
  /// continue the greedy schedule exactly as a fresh executor would), then
  /// rethrow the first exception any task raised (if one did).
  void join() {
    for (auto& lane_ptr : lanes_) {
      Lane& lane = *lane_ptr;
      std::unique_lock<std::mutex> lock(lane.mu);
      lane.idle.wait(lock, [&] { return lane.queue.empty() && !lane.busy; });
    }
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      error = std::exchange(first_error_, nullptr);
    }
    if (!error) {
      // Clean barrier: the dealer's prediction mirrors must have replayed
      // to exactly the units' resident sets. Checked before reseed (which
      // would make the comparison a tautology); skipped on the error path,
      // where a failed task legitimately abandoned its declared chain.
      for (std::size_t i = 0; i < pool_.size(); ++i) {
        if (auto* obs = pool_.unit(i).observer()) {
          obs->on_join(lane_cache_[i].entries());
        }
      }
    }
    reseed();
    if (error) {
      // A failed task abandoned its declared chain mid-flight, so the
      // residency the dealer promised later tasks never materialized.
      // Re-anchor both sides at the empty set (Device::evict_all) so the
      // prediction cannot drift from unit state on the recovery path.
      evict_all();
      std::rethrow_exception(error);
    }
  }

 private:
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;    ///< work available / stop requested
    std::condition_variable idle;  ///< queue drained and worker idle
    std::deque<Task> queue;
    bool busy = false;
    bool stop = false;
    std::thread worker;
  };

  /// Bracket `task` with observer notifications when the target unit is
  /// being watched (contract checking). `chain` is the declared resident
  /// chain for affine tasks, null for plain submits. The chain is copied
  /// into the wrapper: the checker reads it on the worker thread, after
  /// the caller's reference may be gone. Unobserved units pay only this
  /// pointer test.
  Task wrap_checked(std::size_t unit, const std::vector<std::uint64_t>* chain,
                    std::uint64_t predicted_hits, Task task) {
    check::UnitObserver* obs = pool_.unit(unit).observer();
    if (!obs) return task;
    const bool affine = chain != nullptr;
    return [obs, affine, predicted_hits,
            declared = chain ? *chain : std::vector<std::uint64_t>{},
            inner = std::move(task)](Device<T>& unit_dev) {
      obs->on_task_begin(affine ? &declared : nullptr, predicted_hits, affine);
      try {
        inner(unit_dev);
      } catch (...) {
        obs->on_task_end(/*failed=*/true);
        throw;
      }
      obs->on_task_end(/*failed=*/false);
    };
  }

  void enqueue(std::size_t unit, Task task) {
    Lane& lane = *lanes_.at(unit);
    {
      std::lock_guard<std::mutex> lock(lane.mu);
      lane.queue.push_back(std::move(task));
    }
    lane.cv.notify_one();
  }

  /// Re-anchor the submit-side predictions on the units' actual state:
  /// projections from the live counters, prediction mirrors as copies of
  /// the live tile caches. Safe whenever all workers are idle
  /// (construction and join): the drained workers' writes happen-before
  /// the idle wait returned.
  void reseed() {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      projected_[i] = pool_.unit(i).counters().tensor_time;
      lane_cache_[i] = pool_.unit(i).tile_cache();
    }
  }

  void worker_loop(Lane& lane, Device<T>& unit) {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(lane.mu);
        lane.cv.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
        if (lane.queue.empty()) return;  // stop requested and drained
        task = std::move(lane.queue.front());
        lane.queue.pop_front();
        lane.busy = true;
      }
      try {
        task(unit);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(lane.mu);
        lane.busy = false;
        if (lane.queue.empty()) lane.idle.notify_all();
      }
    }
  }

  void shutdown() {
    for (auto& lane_ptr : lanes_) {
      std::lock_guard<std::mutex> lock(lane_ptr->mu);
      lane_ptr->stop = true;
      lane_ptr->cv.notify_one();
    }
    for (auto& lane_ptr : lanes_) {
      if (lane_ptr->worker.joinable()) lane_ptr->worker.join();
    }
  }

  DevicePool<T>& pool_;
  std::uint64_t latency_;                 ///< the units' load latency l
  std::vector<std::uint64_t> projected_;  ///< submit-thread-only state
  std::vector<TileCache> lane_cache_;     ///< predicted resident set/lane
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace tcu
