#pragma once
// Pluggable numeric GEMM backends beneath the (m, l)-TCU cost model.
//
// `Device::issue()` charges simulated time and drives the observer /
// fault-injection seams; the *numeric* work — C = A * B for an n x s left
// operand and s x s right operand — is delegated to a `GemmBackend`. Every
// backend computes the same product through the same accounting path, so
// the checker, lint, and fault layers are backend-agnostic; only the
// wall-clock time (Device::wall_ns) and, for non-sim float backends, the
// floating-point rounding may differ:
//
//   * sim   — the reference triple loop, bit-for-bit the historical
//             engine (the default; every bit-identity test runs on it);
//   * micro — a cache-blocked register-tiled kernel, with an AVX2 path
//             for float/double dispatched at runtime. Each output
//             element's k-summation order equals the reference loop's
//             and the SIMD path uses separate mul/add (no FMA), so the
//             results are bit-identical to sim for every T — integral
//             exactness falls out as a special case;
//   * blas  — vendor [sd]gemm behind -DTCU_BLAS=ON (float/double only);
//             reassociates sums, so outputs are bounded-ulp, not
//             bit-identical.
//
// A fourth, internal kind wraps a legacy `Device::Engine` std::function so
// custom engines (systolic, limited precision) keep working unchanged.
//
// Backends must NOT charge model time or mutate counters beyond
// engine-detail fields (the systolic engine's cycle counts); the device
// owns the charges.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "core/counters.hpp"
#include "core/matrix.hpp"

namespace tcu {

/// Numeric engine signature shared by the backend seam and the legacy
/// `Device::Engine` alias: computes C = A*B (or C += A*B) and may add
/// engine detail (e.g. systolic cycles) to the counters.
template <typename T>
using GemmFn = std::function<void(ConstMatrixView<T>, ConstMatrixView<T>,
                                  MatrixView<T>, bool, Counters&)>;

enum class BackendKind {
  kDefault,  ///< resolve via TCU_BACKEND env, falling back to kSim
  kSim,      ///< reference triple loop (bit-for-bit historical results)
  kMicro,    ///< blocked register-tiled microkernel (+ runtime AVX2)
  kBlas,     ///< vendor BLAS, float/double, requires -DTCU_BLAS=ON
  kEngine,   ///< adapter around a caller-supplied GemmFn
};

/// "sim" / "micro" / "blas" -> kind; throws std::invalid_argument on
/// anything else (the CLI and TCU_BACKEND env share this parser).
BackendKind parse_backend_kind(const std::string& name);

/// Canonical name of a kind ("sim", "micro", "blas", "engine").
const char* backend_kind_name(BackendKind kind);

/// kDefault resolved: TCU_BACKEND if set (throwing on unparsable or
/// unavailable values), else kSim. Other kinds pass through.
BackendKind resolve_backend_kind(BackendKind kind);

/// True when the build can construct this kind for float/double (kBlas is
/// only compiled in under -DTCU_BLAS=ON).
bool backend_available(BackendKind kind);

/// True when the running CPU takes the micro backend's AVX2 path.
bool micro_simd_active();

namespace backend_detail {

// AVX2 float/double kernels (backend_micro.cpp). `lda`/`ldb`/`ldc` are
// row strides in elements; summation is k-sequential per element with
// separate mul/add, so results are bit-identical to the reference loop.
void micro_gemm_avx2(const float* a, std::size_t lda, const float* b,
                     std::size_t ldb, float* c, std::size_t ldc,
                     std::size_t n, std::size_t s, bool accumulate);
void micro_gemm_avx2(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t n, std::size_t s, bool accumulate);

#ifdef TCU_BLAS
// Row-major [sd]gemm wrappers (backend_blas.cpp): C = A*B or C += A*B.
void blas_gemm(const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float* c, std::size_t ldc, std::size_t n,
               std::size_t s, bool accumulate);
void blas_gemm(const double* a, std::size_t lda, const double* b,
               std::size_t ldb, double* c, std::size_t ldc, std::size_t n,
               std::size_t s, bool accumulate);
#endif

}  // namespace backend_detail

/// Abstract numeric backend. `run` computes the product; it must not
/// charge model time (the device does, identically for every backend).
template <typename T>
class GemmBackend {
 public:
  GemmBackend() = default;
  GemmBackend(const GemmBackend&) = delete;
  GemmBackend& operator=(const GemmBackend&) = delete;
  virtual ~GemmBackend() = default;

  virtual BackendKind kind() const = 0;
  virtual const char* name() const { return backend_kind_name(kind()); }
  virtual void run(ConstMatrixView<T> A, ConstMatrixView<T> B,
                   MatrixView<T> C, bool accumulate, Counters& counters) = 0;
};

/// The reference loop — bit-for-bit the historical default engine.
template <typename T>
class SimBackend final : public GemmBackend<T> {
 public:
  BackendKind kind() const override { return BackendKind::kSim; }
  void run(ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
           bool accumulate, Counters&) override {
    const std::size_t n = A.rows;
    const std::size_t s = B.rows;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < s; ++j) {
        T acc = accumulate ? C(i, j) : T{};
        for (std::size_t k = 0; k < s; ++k) acc += A(i, k) * B(k, j);
        C(i, j) = acc;
      }
    }
  }
};

/// Cache-blocked register-tiled kernel. The (i, j) output block keeps
/// kMR x kNR accumulators in registers while k streams through in the
/// reference order, so every element's sum order — and therefore its
/// result, for any T — matches SimBackend exactly; only the wall clock
/// changes. float/double additionally dispatch to the AVX2 path at
/// runtime (j-vectorized, mul+add, still bit-identical).
template <typename T>
class MicroBackend final : public GemmBackend<T> {
 public:
  static constexpr std::size_t kMR = 4;  ///< register block rows
  static constexpr std::size_t kNR = 8;  ///< register block cols

  BackendKind kind() const override { return BackendKind::kMicro; }

  void run(ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
           bool accumulate, Counters&) override {
    if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
      if (micro_simd_active()) {
        backend_detail::micro_gemm_avx2(A.data, A.stride, B.data, B.stride,
                                        C.data, C.stride, A.rows, B.rows,
                                        accumulate);
        return;
      }
    }
    blocked(A, B, C, accumulate);
  }

 private:
  static void blocked(ConstMatrixView<T> A, ConstMatrixView<T> B,
                      MatrixView<T> C, bool accumulate) {
    const std::size_t n = A.rows;
    const std::size_t s = B.rows;
    T acc[kMR][kNR];
    for (std::size_t i0 = 0; i0 < n; i0 += kMR) {
      const std::size_t ib = std::min(kMR, n - i0);
      for (std::size_t j0 = 0; j0 < s; j0 += kNR) {
        const std::size_t jb = std::min(kNR, s - j0);
        for (std::size_t i = 0; i < ib; ++i) {
          for (std::size_t j = 0; j < jb; ++j) {
            acc[i][j] = accumulate ? C(i0 + i, j0 + j) : T{};
          }
        }
        for (std::size_t k = 0; k < s; ++k) {
          const T* brow = &B(k, j0);
          for (std::size_t i = 0; i < ib; ++i) {
            const T a = A(i0 + i, k);
            for (std::size_t j = 0; j < jb; ++j) acc[i][j] += a * brow[j];
          }
        }
        for (std::size_t i = 0; i < ib; ++i) {
          for (std::size_t j = 0; j < jb; ++j) C(i0 + i, j0 + j) = acc[i][j];
        }
      }
    }
  }
};

#ifdef TCU_BLAS
/// Vendor BLAS [sd]gemm. Only instantiable for float/double; sums are
/// reassociated, so outputs are bounded-ulp rather than bit-identical.
template <typename T>
class BlasBackend final : public GemmBackend<T> {
  static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                "BlasBackend supports float and double only");

 public:
  BackendKind kind() const override { return BackendKind::kBlas; }
  void run(ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
           bool accumulate, Counters&) override {
    backend_detail::blas_gemm(A.data, A.stride, B.data, B.stride, C.data,
                              C.stride, A.rows, B.rows, accumulate);
  }
};
#endif

/// Adapter keeping the legacy `Device(Config, Engine)` constructor (and
/// with it the systolic and limited-precision engines) on the seam.
template <typename T>
class EngineBackend final : public GemmBackend<T> {
 public:
  explicit EngineBackend(GemmFn<T> fn) : fn_(std::move(fn)) {
    if (!fn_) throw std::invalid_argument("Device: null engine");
  }
  BackendKind kind() const override { return BackendKind::kEngine; }
  void run(ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
           bool accumulate, Counters& counters) override {
    fn_(A, B, C, accumulate, counters);
  }

 private:
  GemmFn<T> fn_;
};

/// Construct the backend for `kind` (kDefault resolves via TCU_BACKEND).
/// Throws std::invalid_argument for kBlas when the build lacks TCU_BLAS
/// or T is not float/double — missing deps fail loudly, never silently
/// fall back.
template <typename T>
std::shared_ptr<GemmBackend<T>> make_backend(BackendKind kind) {
  switch (resolve_backend_kind(kind)) {
    case BackendKind::kSim:
      return std::make_shared<SimBackend<T>>();
    case BackendKind::kMicro:
      return std::make_shared<MicroBackend<T>>();
    case BackendKind::kBlas:
#ifdef TCU_BLAS
      if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
        return std::make_shared<BlasBackend<T>>();
      } else {
        throw std::invalid_argument(
            "blas backend supports float/double only");
      }
#else
      throw std::invalid_argument(
          "blas backend requires building with -DTCU_BLAS=ON");
#endif
    default:
      throw std::invalid_argument("make_backend: unresolvable backend kind");
  }
}

}  // namespace tcu
