// Backend-kind parsing and TCU_BACKEND resolution (core/backend.hpp).
//
// The sim backend itself is a header template (SimBackend) so it inlines
// into every Device<T> instantiation exactly like the historical engine
// lambda did; this TU holds the non-template selection machinery shared
// by the env var, the CLI's --backend flag, and the tests.

#include "core/backend.hpp"

#include <cstdlib>

namespace tcu {

BackendKind parse_backend_kind(const std::string& name) {
  if (name == "sim") return BackendKind::kSim;
  if (name == "micro") return BackendKind::kMicro;
  if (name == "blas") return BackendKind::kBlas;
  throw std::invalid_argument("unknown gemm backend '" + name +
                              "' (expected sim|micro|blas)");
}

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kMicro:
      return "micro";
    case BackendKind::kBlas:
      return "blas";
    case BackendKind::kEngine:
      return "engine";
    case BackendKind::kDefault:
      return "default";
  }
  return "?";
}

BackendKind resolve_backend_kind(BackendKind kind) {
  if (kind != BackendKind::kDefault) return kind;
  const char* env = std::getenv("TCU_BACKEND");
  if (env == nullptr || *env == '\0') return BackendKind::kSim;
  return parse_backend_kind(env);
}

bool backend_available(BackendKind kind) {
  switch (resolve_backend_kind(kind)) {
    case BackendKind::kBlas:
#ifdef TCU_BLAS
      return true;
#else
      return false;
#endif
    case BackendKind::kSim:
    case BackendKind::kMicro:
    case BackendKind::kEngine:
      return true;
    case BackendKind::kDefault:
      break;
  }
  return false;
}

}  // namespace tcu
