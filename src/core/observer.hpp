#pragma once
// Instrumentation seam for the (m, l)-TCU contract checker.
//
// The model's correctness story rests on conventions the type system
// cannot see: long-lived right operands must be tagged with
// `gemm_resident`, a `submit_affine` chain must list exactly the keys its
// task touches, and per-unit counters must satisfy closed-form
// conservation laws. `UnitObserver` is the hook through which a checker
// watches one `Device` — every tensor call, invalidation, reset, and
// (through `PoolExecutor`) task bracket and join barrier — without the
// core headers depending on the checker. The production build carries
// only a null-pointer test per event; `src/check/contract.hpp` provides
// the real implementation, and building with -DTCU_CHECK=ON attaches one
// checker per device automatically.
//
// Threading contract: a device's observer is invoked only from the thread
// that owns the device (the caller in serial code, the one worker thread
// of that unit's lane under PoolExecutor). `on_join` is invoked from the
// submitting thread, but only at the join barrier, after the lane's idle
// wait — so it is ordered after every task-side event. Observers
// therefore need no locking for per-unit state. Attach or detach
// observers only while the device is quiescent (no queued or running
// tasks touch it).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/counters.hpp"

namespace tcu::fault {

/// Fault taxonomy for the injection seam. These are *runtime conditions*
/// (unlike check::ContractError's logic errors): `PoolExecutor` recovers
/// from them — transient faults are retried, permanent ones quarantine
/// the unit and redeal its work — while every other exception type keeps
/// the historical rethrow-at-join contract.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A one-off failure of a single tensor call (a dropped result, an ECC
/// hiccup). The call charged nothing; re-issuing it is safe.
class TransientFault : public FaultError {
 public:
  using FaultError::FaultError;
};

/// The unit died: this call and every later call on it will fail. The
/// executor quarantines the unit and drains its queue to survivors.
class PermanentUnitFault : public FaultError {
 public:
  using FaultError::FaultError;
};

/// A worker thread could not be spawned (EAGAIN). The executor degrades
/// to the workers that did start instead of aborting the pool.
class SpawnFault : public FaultError {
 public:
  using FaultError::FaultError;
};

/// Injection seam for one Device (the fault analogue of
/// check::UnitObserver): `src/fault/fault.hpp` implements it with a
/// seeded deterministic plan. A device consults its injector at the top
/// of every `gemm`/`gemm_resident`, *before* shape validation, cache
/// transitions, or counter charges — so a throwing injector fails the
/// call with zero side effects and a retry is bit-identical to a first
/// attempt. Threading contract matches UnitObserver: `on_call` runs on
/// the thread that owns the device, `on_spawn` on the executor's
/// constructing thread; attach only while the device is quiescent.
class UnitFaultInjector {
 public:
  virtual ~UnitFaultInjector() = default;

  /// Invoked before a tensor call charges. Throw TransientFault or
  /// PermanentUnitFault to fail the call; may also sleep (straggler
  /// simulation — wall-clock only, never model counters).
  virtual void on_call() = 0;

  /// Invoked before this unit's worker thread is spawned. Throw
  /// SpawnFault to simulate thread-creation EAGAIN.
  virtual void on_spawn() {}
};

}  // namespace tcu::fault

namespace tcu::check {

class UnitObserver {
 public:
  virtual ~UnitObserver() = default;

  /// A tensor call completed on the device. `key` is the resident-operand
  /// identity (Device::kNoResident for untagged calls), `tagged` says
  /// whether the call went through `gemm_resident` with a nonzero key.
  /// `after` are the unit's counters and `cache_entries` its resident set
  /// (LRU -> MRU) *after* the call charged.
  virtual void on_gemm(std::uint64_t key, bool tagged, const Counters& after,
                       const std::vector<std::uint64_t>& cache_entries) = 0;

  /// Device::evict_all ran: the resident set was explicitly re-anchored
  /// at empty (no eviction counted).
  virtual void on_evict_all() {}

  /// Device::reset ran: counters and resident set both returned to zero.
  virtual void on_reset() {}

  /// The device's effective observer changed (or its state may have been
  /// mutated outside the observed event stream). A stateful observer
  /// should drop its shadow state and re-adopt the device's at the next
  /// event instead of reporting phantom violations.
  virtual void on_desync() {}

  /// A PoolExecutor task is about to run on this unit's worker thread.
  /// `chain` is the declared resident-key chain for `submit_affine` tasks
  /// (null for plain `submit`/`submit_to` tasks, whose calls are assumed
  /// untagged), `predicted_hits` the dealer's replayed hit count for the
  /// winning lane, and `affine` whether the task was chain-declared.
  /// `hits_valid` is false when the executor knows the dealer's replay no
  /// longer describes this lane — a fault-recovery retry or a redeal to a
  /// different unit — so a stateful checker must not hold the task to
  /// `predicted_hits`.
  virtual void on_task_begin(const std::vector<std::uint64_t>* chain,
                             std::uint64_t predicted_hits, bool affine,
                             bool hits_valid = true) {
    (void)chain;
    (void)predicted_hits;
    (void)affine;
    (void)hits_valid;
  }

  /// The task returned (`failed` = false) or threw (`failed` = true). A
  /// failed task abandons its declared chain; the executor re-anchors at
  /// the next join.
  virtual void on_task_end(bool failed) { (void)failed; }

  /// The join barrier reached this unit with no recorded worker error.
  /// `mirror_entries` is the dealer's prediction mirror for the lane
  /// (LRU -> MRU), which must equal the unit's actual resident set.
  virtual void on_join(const std::vector<std::uint64_t>& mirror_entries) {
    (void)mirror_entries;
  }

  /// A `join_epoch()` virtual barrier crossed this lane: every task
  /// submitted before the epoch has run on this unit, none submitted
  /// after it has. Runs on the unit's worker thread (unlike `on_join`),
  /// ordered by the lane's FIFO. `mirror_entries` is the dealer's
  /// prediction mirror snapshot at the epoch (LRU -> MRU), which must
  /// equal the unit's live resident set; the executor skips the call on
  /// lanes desynced by fault recovery (the strict join re-checks).
  virtual void on_epoch(const std::vector<std::uint64_t>& mirror_entries,
                        std::uint64_t epoch) {
    (void)mirror_entries;
    (void)epoch;
  }
};

/// Factory for the auto-attached checker used by -DTCU_CHECK=ON builds.
/// Declared here so `Device` (a template instantiated in many TUs) can
/// create checkers without including the checker implementation; defined
/// in src/check/contract.cpp. The returned observer is already synced to
/// an all-zero, empty-cache device — create it at device construction.
UnitObserver* make_auto_checker(const char* name, std::uint64_t latency,
                                std::size_t tile_dim, bool allow_tall,
                                std::size_t cache_capacity);
void destroy_checker(UnitObserver* checker);

/// Owning handle for an auto-attached checker. Copying a device yields a
/// copy with no auto checker (shadow state cannot be cloned through the
/// abstract interface); moving transfers the checker. Destruction is
/// routed through `destroy_checker` so the core headers never need the
/// checker's definition.
class OwnedChecker {
 public:
  OwnedChecker() = default;
  explicit OwnedChecker(UnitObserver* checker) : checker_(checker) {}
  OwnedChecker(const OwnedChecker&) : checker_(nullptr) {}
  OwnedChecker& operator=(const OwnedChecker& other) {
    // A copied-over device has fresh counters the old shadow state cannot
    // explain: drop the checker rather than report phantom violations.
    if (this != &other) reset(nullptr);
    return *this;
  }
  OwnedChecker(OwnedChecker&& other) noexcept
      : checker_(other.checker_) {
    other.checker_ = nullptr;
  }
  OwnedChecker& operator=(OwnedChecker&& other) noexcept {
    if (this != &other) {
      reset(other.checker_);
      other.checker_ = nullptr;
    }
    return *this;
  }
  ~OwnedChecker() { reset(nullptr); }

  UnitObserver* get() const { return checker_; }
  void reset(UnitObserver* checker) {
    if (checker_) destroy_checker(checker_);
    checker_ = checker;
  }

 private:
  UnitObserver* checker_ = nullptr;
};

}  // namespace tcu::check
