#include "core/precision.hpp"

#include <cmath>
#include <stdexcept>

namespace tcu {

double quantize(double x, int mantissa_bits) {
  if (mantissa_bits >= 52) return x;
  if (mantissa_bits < 1) {
    throw std::invalid_argument("quantize: mantissa_bits must be >= 1");
  }
  if (x == 0.0 || !std::isfinite(x)) return x;
  int exponent = 0;
  const double significand = std::frexp(x, &exponent);  // in [0.5, 1)
  const double scale = std::ldexp(1.0, mantissa_bits + 1);
  const double rounded = std::nearbyint(significand * scale) / scale;
  return std::ldexp(rounded, exponent);
}

Device<double>::Engine limited_precision_engine(PrecisionSpec spec) {
  return [spec](ConstMatrixView<double> A, ConstMatrixView<double> B,
                MatrixView<double> C, bool accumulate, Counters&) {
    const std::size_t n = A.rows;
    const std::size_t s = B.rows;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < s; ++j) {
        double acc = accumulate ? quantize(C(i, j), spec.acc_mantissa) : 0.0;
        for (std::size_t k = 0; k < s; ++k) {
          const double a = quantize(A(i, k), spec.input_mantissa);
          const double b = quantize(B(k, j), spec.input_mantissa);
          acc = quantize(acc + quantize(a * b, spec.acc_mantissa),
                         spec.acc_mantissa);
        }
        C(i, j) = acc;
      }
    }
  };
}

double max_abs_diff(ConstMatrixView<double> a, ConstMatrixView<double> b) {
  if (a.rows != b.rows || a.cols != b.cols) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows; ++i) {
    for (std::size_t j = 0; j < a.cols; ++j) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

}  // namespace tcu
