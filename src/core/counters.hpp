#pragma once
// Simulated-cost accounting for the (m, l)-TCU model.
//
// The model's "running time" (Section 3) is the number of RAM operations
// performed by the CPU plus n*sqrt(m) + l per tensor-unit call. Every
// algorithm in this library charges its exact operation counts here, and
// the benchmark harness compares Counters::time() against the paper's
// closed-form bounds.

#include <cstdint>

namespace tcu {

struct Counters {
  // --- tensor unit ---
  std::uint64_t tensor_calls = 0;     ///< number of tensor-unit invocations
  std::uint64_t tensor_rows = 0;      ///< sum of left-operand row counts n
  std::uint64_t tensor_time = 0;      ///< sum of (n*sqrt(m) + l) charges
  std::uint64_t tensor_macs = 0;      ///< sum of n*m elementary products
  std::uint64_t latency_time = 0;     ///< latency-only portion (loads * l)
  std::uint64_t resident_hits = 0;    ///< calls served by a resident tile
  std::uint64_t latency_saved = 0;    ///< latency charges skipped by hits
  std::uint64_t evictions = 0;        ///< resident tiles displaced by loads
  std::uint64_t tagged_calls = 0;     ///< calls issued with a residency key

  // --- CPU / RAM ---
  std::uint64_t cpu_ops = 0;          ///< unit-cost RAM operations

  // --- optional engine detail ---
  std::uint64_t systolic_cycles = 0;  ///< cycles if the systolic engine ran

  /// Total simulated time in model units.
  std::uint64_t time() const { return tensor_time + cpu_ops; }

  void charge_cpu(std::uint64_t ops) { cpu_ops += ops; }

  void charge_tensor_call(std::uint64_t n, std::uint64_t sqrt_m,
                          std::uint64_t latency) {
    tensor_calls += 1;
    tensor_rows += n;
    tensor_time += n * sqrt_m + latency;
    tensor_macs += n * sqrt_m * sqrt_m;
    latency_time += latency;
  }

  /// A call whose right operand is already resident: the load latency is
  /// not paid again (the paper charges l per tile *load*, §3).
  void charge_resident_hit(std::uint64_t n, std::uint64_t sqrt_m,
                           std::uint64_t latency_skipped) {
    charge_tensor_call(n, sqrt_m, 0);
    resident_hits += 1;
    latency_saved += latency_skipped;
  }

  /// A tile load displaced the least-recently-used resident tile (the
  /// cache was at capacity). Untagged invalidation is not counted — only
  /// genuine capacity pressure.
  void count_eviction() { evictions += 1; }

  void reset() { *this = Counters{}; }

  Counters& operator+=(const Counters& other) {
    tensor_calls += other.tensor_calls;
    tensor_rows += other.tensor_rows;
    tensor_time += other.tensor_time;
    tensor_macs += other.tensor_macs;
    latency_time += other.latency_time;
    resident_hits += other.resident_hits;
    latency_saved += other.latency_saved;
    evictions += other.evictions;
    tagged_calls += other.tagged_calls;
    cpu_ops += other.cpu_ops;
    systolic_cycles += other.systolic_cycles;
    return *this;
  }
};

}  // namespace tcu
