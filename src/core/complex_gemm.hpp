#pragma once
// Complex matrix products on a *real* tensor unit.
//
// Section 4.5 of the paper assumes the TCU operates on complex numbers and
// notes the assumption "can be easily removed with a constant slow down:
// the multiplication between sqrt(m) x sqrt(m) complex matrices can be
// computed with four matrix multiplications and two sums of real values."
// This header implements that reduction (the classic 4M scheme) plus the
// Karatsuba-style 3M variant, so the DFT/stencil pipelines can run either
// on a native complex device or on a real device via these wrappers
// (ablation ABL2 in DESIGN.md).

#include <complex>

#include "core/device.hpp"
#include "core/matrix.hpp"

namespace tcu {

/// C = A*B (or +=) with complex operands executed as four real GEMMs:
///   Cr = Ar*Br - Ai*Bi,  Ci = Ar*Bi + Ai*Br.
/// Charges the real device for the four tensor calls plus the CPU work of
/// splitting/recombining (4 n s reads + 2 n s adds + 2 n s writes).
void complex_gemm_4m(Device<double>& dev,
                     ConstMatrixView<std::complex<double>> A,
                     ConstMatrixView<std::complex<double>> B,
                     MatrixView<std::complex<double>> C,
                     bool accumulate = false);

/// Same contract with three real GEMMs (Karatsuba / 3M scheme):
///   T1 = Ar*Br, T2 = Ai*Bi, T3 = (Ar+Ai)*(Br+Bi),
///   Cr = T1 - T2, Ci = T3 - T1 - T2.
/// Trades one tensor call for O(n sqrt(m)) extra additions.
void complex_gemm_3m(Device<double>& dev,
                     ConstMatrixView<std::complex<double>> A,
                     ConstMatrixView<std::complex<double>> B,
                     MatrixView<std::complex<double>> C,
                     bool accumulate = false);

}  // namespace tcu
