#pragma once
// Closed-form cost bounds from the paper, in one place.
//
// Every theorem in Section 4 states a bound on the simulated running time
// in the (m, l)-TCU model. The benchmark harness evaluates these formulas
// next to the measured Counters::time() of the corresponding algorithm and
// reports the ratio, which a correct reproduction keeps within a narrow
// constant band across each sweep (that is what a Theta/O bound promises).
//
// Conventions follow the paper: for matrix problems `n` is the *area* of a
// sqrt(n) x sqrt(n) matrix; for graphs `n` is the vertex count; omega0 is
// the Strassen-like exponent log_{n0}(p0) (2 -> standard, log4(7) ->
// Strassen).

#include <cmath>
#include <cstdint>

namespace tcu::costs {

inline double omega0(double p0, double n0) {
  return std::log(p0) / std::log(n0);
}

/// Theorem 1: Strassen-like dense MM, O((n/m)^{omega0} (m + l)).
inline double thm1_strassen(double n, double m, double ell, double p0 = 7,
                            double n0 = 4) {
  return std::pow(n / m, omega0(p0, n0)) * (m + ell);
}

/// Theorem 2: blocked dense MM, Theta(n^{3/2}/sqrt(m) + (n/m) l).
inline double thm2_dense(double n, double m, double ell) {
  return std::pow(n, 1.5) / std::sqrt(m) + (n / m) * ell;
}

/// Corollary 1: sqrt(n) x r times r x sqrt(n),
/// Theta(r n / sqrt(m) + (r sqrt(n) / m) l).
inline double cor1_rectangular(double n, double r, double m, double ell) {
  return r * n / std::sqrt(m) + (r * std::sqrt(n) / m) * ell;
}

/// Theorem 3: sparse MM, O(sqrt(n/Z) (Z/m)^{omega0} (m + l) + I).
inline double thm3_sparse(double n, double Z, double I, double m, double ell,
                          double p0 = 8, double n0 = 4) {
  return std::sqrt(n / Z) * std::pow(Z / m, omega0(p0, n0)) * (m + ell) + I;
}

/// Theorem 4: Gaussian elimination forward phase,
/// Theta(n^{3/2}/sqrt(m) + (n/m) l + n sqrt(m)).
inline double thm4_gauss(double n, double m, double ell) {
  return std::pow(n, 1.5) / std::sqrt(m) + (n / m) * ell + n * std::sqrt(m);
}

/// Theorem 5: transitive closure of an n-vertex graph,
/// Theta(n^3/sqrt(m) + (n^2/m) l + n^2 sqrt(m)).
inline double thm5_closure(double n_vertices, double m, double ell) {
  const double n = n_vertices;
  return n * n * n / std::sqrt(m) + (n * n / m) * ell + n * n * std::sqrt(m);
}

/// Theorem 6: Seidel APSD, O((n^2/m)^{omega0} (m + l) log n).
inline double thm6_apsd(double n_vertices, double m, double ell,
                        double p0 = 8, double n0 = 4) {
  const double area = n_vertices * n_vertices;
  return std::pow(area / m, omega0(p0, n0)) * (m + ell) *
         std::log2(n_vertices);
}

/// Theorem 7: DFT, O((n + l) log_m n).
inline double thm7_dft(double n, double m, double ell) {
  const double logm_n = std::log(n) / std::log(m);
  return (n + ell) * std::max(1.0, logm_n);
}

/// Theorem 8: linear (n, k)-stencil, O(n log_m k + l log k).
inline double thm8_stencil(double n, double k, double m, double ell) {
  const double logm_k = std::max(1.0, std::log(k) / std::log(m));
  return n * logm_k + ell * std::max(1.0, std::log2(k));
}

/// Theorem 8 before absorbing Lemma 2 into the n-term (the paper's proof
/// sums Lemma 1's (n + l) log_m k with Lemma 2's k^2 log_m k + l log k;
/// the absorption uses k^2 <= n). Benchmarks compare against this
/// two-term form as well, because the two parts carry very different
/// hidden constants (see EXPERIMENTS.md).
inline double thm8_stencil_refined(double n, double k, double m,
                                   double ell) {
  const double logm_k = std::max(1.0, std::log(k) / std::log(m));
  return (n + ell) * logm_k + k * k * logm_k +
         ell * std::max(1.0, std::log2(k));
}

/// Theorem 9: schoolbook integer multiplication of n-bit inputs,
/// O(n^2 / (kappa^2 sqrt(m)) + (n / (kappa m)) l).
inline double thm9_intmul(double n_bits, double kappa, double m, double ell) {
  return n_bits * n_bits / (kappa * kappa * std::sqrt(m)) +
         (n_bits / (kappa * m)) * ell;
}

/// Theorem 10: Karatsuba with TCU base case,
/// O((n / (kappa sqrt(m)))^{log2 3} (sqrt(m) + l / sqrt(m))).
inline double thm10_karatsuba(double n_bits, double kappa, double m,
                              double ell) {
  const double ratio = n_bits / (kappa * std::sqrt(m));
  return std::pow(std::max(1.0, ratio), std::log2(3.0)) *
         (std::sqrt(m) + ell / std::sqrt(m));
}

/// Theorem 11: evaluating a degree-(n-1) polynomial on p points,
/// O(p n / sqrt(m) + p sqrt(m) + (n/m) l).
inline double thm11_polyeval(double n, double p, double m, double ell) {
  return p * n / std::sqrt(m) + p * std::sqrt(m) + (n / m) * ell;
}

/// Section 5: I/O lower bound for dense semiring MM in external memory,
/// Omega(n^{3/2} / sqrt(M)) with B = 1 (the Theorem 12 comparison curve).
inline double extmem_mm_lower_bound(double n, double M) {
  return std::pow(n, 1.5) / std::sqrt(M);
}

}  // namespace tcu::costs
