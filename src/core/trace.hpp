#pragma once
// Execution traces of tensor-unit calls.
//
// A trace is the sequence of tensor operations an algorithm issued, with
// their shapes. The external-memory module (Theorem 12) replays traces on
// an I/O machine: each call becomes Theta(m) block transfers at M = 3m,
// B = 1, which is exactly the simulation argument of Section 5.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcu {

/// One tensor-unit invocation: left operand n x s times right s x s.
struct TensorOp {
  std::uint64_t n = 0;         ///< rows of the (possibly tall) left operand
  std::uint64_t s = 0;         ///< sqrt(m) at the time of the call
  bool accumulate = false;     ///< C += A*B rather than C = A*B
};

struct Trace {
  std::vector<TensorOp> ops;

  void record(std::uint64_t n, std::uint64_t s, bool accumulate) {
    ops.push_back(TensorOp{n, s, accumulate});
  }
  void clear() { ops.clear(); }
  std::size_t size() const { return ops.size(); }

  /// Total elements moved through the unit: sum of (n*s + s*s + n*s).
  std::uint64_t words_touched() const {
    std::uint64_t total = 0;
    for (const auto& op : ops) total += 2 * op.n * op.s + op.s * op.s;
    return total;
  }
};

}  // namespace tcu
