// AVX2 float/double kernels for the micro backend (core/backend.hpp).
//
// Correctness contract: results must be bit-identical to the reference
// loop for every input. Vector lanes hold *different output columns* of
// one row, so each element's k-summation stays sequential in the
// reference order; the kernels use separate multiply and add intrinsics,
// and the target attribute enables avx2 but NOT fma, so the compiler
// cannot contract them — there is no FMA rounding to diverge by. The
// dispatch is runtime (cpuid), compiled only on x86-64 gcc/clang;
// everywhere else the generic blocked kernel (header) runs.

#include "core/backend.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TCU_MICRO_AVX2 1
#include <immintrin.h>
#endif

namespace tcu {

bool micro_simd_active() {
#ifdef TCU_MICRO_AVX2
  static const bool avx2 = __builtin_cpu_supports("avx2") != 0;
  return avx2;
#else
  return false;
#endif
}

namespace backend_detail {

#ifdef TCU_MICRO_AVX2

__attribute__((target("avx2"))) void micro_gemm_avx2(
    const double* a, std::size_t lda, const double* b, std::size_t ldb,
    double* c, std::size_t ldc, std::size_t n, std::size_t s,
    bool accumulate) {
  const std::size_t jv = s - s % 4;  // vectorized column prefix
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    for (std::size_t j = 0; j < jv; j += 4) {
      __m256d acc = accumulate ? _mm256_loadu_pd(crow + j)
                               : _mm256_setzero_pd();
      for (std::size_t k = 0; k < s; ++k) {
        const __m256d av = _mm256_set1_pd(arow[k]);
        const __m256d bv = _mm256_loadu_pd(b + k * ldb + j);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
      }
      _mm256_storeu_pd(crow + j, acc);
    }
    for (std::size_t j = jv; j < s; ++j) {
      double acc = accumulate ? crow[j] : 0.0;
      for (std::size_t k = 0; k < s; ++k) acc += arow[k] * b[k * ldb + j];
      crow[j] = acc;
    }
  }
}

__attribute__((target("avx2"))) void micro_gemm_avx2(
    const float* a, std::size_t lda, const float* b, std::size_t ldb,
    float* c, std::size_t ldc, std::size_t n, std::size_t s,
    bool accumulate) {
  const std::size_t jv = s - s % 8;
  for (std::size_t i = 0; i < n; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t j = 0; j < jv; j += 8) {
      __m256 acc = accumulate ? _mm256_loadu_ps(crow + j)
                              : _mm256_setzero_ps();
      for (std::size_t k = 0; k < s; ++k) {
        const __m256 av = _mm256_set1_ps(arow[k]);
        const __m256 bv = _mm256_loadu_ps(b + k * ldb + j);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    for (std::size_t j = jv; j < s; ++j) {
      float acc = accumulate ? crow[j] : 0.0F;
      for (std::size_t k = 0; k < s; ++k) acc += arow[k] * b[k * ldb + j];
      crow[j] = acc;
    }
  }
}

#else  // !TCU_MICRO_AVX2: never called (micro_simd_active() is false).

void micro_gemm_avx2(const double*, std::size_t, const double*, std::size_t,
                     double*, std::size_t, std::size_t, std::size_t, bool) {
  throw std::logic_error("micro AVX2 path unavailable on this target");
}

void micro_gemm_avx2(const float*, std::size_t, const float*, std::size_t,
                     float*, std::size_t, std::size_t, std::size_t, bool) {
  throw std::logic_error("micro AVX2 path unavailable on this target");
}

#endif

}  // namespace backend_detail
}  // namespace tcu
