#pragma once
// The simulated tensor core unit: the heart of the (m, l)-TCU model.
//
// Section 3 of the paper defines the model: a RAM machine whose CPU owns a
// circuit multiplying an n x sqrt(m) left operand by a sqrt(m) x sqrt(m)
// right operand in time O(n*sqrt(m) + l), where n >= sqrt(m) is chosen per
// call. `Device<T>` reproduces that contract:
//
//   * `gemm` executes the product (bit-exactly for integral T) and charges
//     exactly n*sqrt(m) + l simulated time units to its `Counters`.
//   * In *weak* mode (Section 5) tall operands are split into square
//     sqrt(m) x sqrt(m) calls, each charged m + l, reproducing the weak
//     TCU model used for the lower-bound transfer of Theorem 12.
//   * The numeric engine is pluggable: the default reference engine is a
//     tight triple loop; `tcu::systolic` installs a cycle-level systolic
//     array (Section 2.2 / Figure 1) that also reports cycle counts.
//
// The device does not model limited numerical precision or multiple
// parallel units; Section 3.1 of the paper explicitly scopes those out.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "core/counters.hpp"
#include "core/matrix.hpp"
#include "core/observer.hpp"
#include "core/trace.hpp"

namespace tcu {

/// floor(sqrt(v)) computed in pure integer arithmetic. The double
/// round-trip is only exact where the platform guarantees a correctly
/// rounded sqrt; above 2^52 the conversion to double is already lossy, so
/// the FP estimate only seeds a Newton iteration that converges from above
/// and is finished with an exact neighbor check.
inline std::size_t isqrt(std::size_t v) {
  if (v < 2) return v;
  auto x = static_cast<std::size_t>(std::sqrt(static_cast<double>(v))) + 2;
  while (true) {
    const std::size_t y = (x + v / x) / 2;
    if (y >= x) break;
    x = y;
  }
  while (x + 1 <= v / (x + 1)) ++x;  // overflow-safe (x+1)^2 <= v
  while (x > v / x) --x;             // overflow-safe x^2 > v
  return x;
}

/// Integer square root; throws unless v is a perfect square.
inline std::size_t exact_sqrt(std::size_t v) {
  const std::size_t root = isqrt(v);
  if (root * root != v) {
    throw std::invalid_argument("exact_sqrt: value is not a perfect square");
  }
  return root;
}

/// A small LRU set of resident-tile keys: the model of a tensor core that
/// holds `capacity` right-operand tiles at once. Capacity 1 reproduces the
/// single resident slot of the original model bit-for-bit. Keys are
/// caller-chosen nonzero identities (0 = "no tile"); lookup is a linear
/// scan, which beats any indexed structure at the 1-8 entry sizes real
/// boards motivate. The same class serves as the device's ground truth
/// and as the scheduler's per-lane prediction mirror (core/pool.hpp), so
/// the two can never disagree about LRU transitions.
class TileCache {
 public:
  explicit TileCache(std::size_t capacity = 1) : capacity_(capacity) {
    if (capacity_ == 0) {
      throw std::invalid_argument("TileCache: capacity must be >= 1");
    }
    entries_.reserve(capacity_);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }

  bool contains(std::uint64_t key) const {
    for (const std::uint64_t k : entries_) {
      if (k == key) return true;
    }
    return false;
  }

  /// Access `key`: on a hit the key moves to most-recently-used position
  /// and true is returned; on a miss the key is inserted as MRU — the
  /// least-recently-used entry is dropped if the cache is full, reported
  /// through `*evicted` — and false is returned.
  bool touch(std::uint64_t key, bool* evicted = nullptr) {
    if (evicted) *evicted = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i] == key) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        entries_.push_back(key);
        return true;
      }
    }
    if (entries_.size() == capacity_) {
      entries_.erase(entries_.begin());
      if (evicted) *evicted = true;
    }
    entries_.push_back(key);
    return false;
  }

  void clear() { entries_.clear(); }

  /// The most-recently-used key, or 0 when the cache is empty.
  std::uint64_t mru() const { return entries_.empty() ? 0 : entries_.back(); }

  /// Keys in LRU -> MRU order (for mirroring by the scheduler).
  const std::vector<std::uint64_t>& entries() const { return entries_; }

 private:
  std::size_t capacity_;
  std::vector<std::uint64_t> entries_;  ///< front = LRU, back = MRU
};

/// Build a symbolic resident-tile key: `tag` namespaces the id space and
/// lands in bits 63..48, `id` identifies the tile's *content* within it.
/// The default keys used by the pool matmul are storage addresses;
/// user-space virtual addresses stay below 2^57 even on 57-bit-VA
/// systems (x86-64 5-level paging, arm64 LVA), so any tag >= 0x0200
/// yields keys >= 2^57 that can never collide with an address key — pick
/// tags in that range (the DFT level tiles use 0xD517, the
/// Gaussian-elimination panel strips 0x6E47; distinct tags can never
/// collide with each other). A symbolic key must follow the same
/// identity contract as an address key: equal keys promise equal tile
/// content.
constexpr std::uint64_t make_tile_key(std::uint16_t tag, std::uint64_t id) {
  return (static_cast<std::uint64_t>(tag) << 48) |
         (id & ((std::uint64_t{1} << 48) - 1));
}

template <typename T>
class Device {
 public:
  /// Numeric engine signature: computes C = A*B (or C += A*B) for an
  /// n x s left operand and s x s right operand, and may add engine detail
  /// (e.g. systolic cycles) to the counters. It must NOT charge model time;
  /// the device does that. Engines run on the backend seam through an
  /// EngineBackend adapter (core/backend.hpp).
  using Engine = GemmFn<T>;

  struct Config {
    std::size_t m = 256;        ///< tile area; sqrt(m) x sqrt(m) right operand
    std::uint64_t latency = 0;  ///< the model parameter l
    bool allow_tall = true;     ///< false = weak TCU model (square calls only)
    std::size_t resident_tiles = 1;  ///< LRU capacity c of the tile cache
    std::string name = "tcu";
    /// Numeric backend executing the charged products (core/backend.hpp);
    /// kDefault honors the TCU_BACKEND env var and falls back to sim, the
    /// bit-for-bit historical engine. Model charges are backend-invariant.
    BackendKind backend = BackendKind::kDefault;
  };

  explicit Device(Config cfg)
      : Device(std::move(cfg),
               static_cast<std::shared_ptr<GemmBackend<T>>>(nullptr)) {}

  Device(Config cfg, Engine engine)
      : Device(std::move(cfg),
               std::make_shared<EngineBackend<T>>(std::move(engine))) {}

  /// All construction funnels here: a null backend means "build from
  /// cfg.backend" (resolving kDefault via TCU_BACKEND).
  Device(Config cfg, std::shared_ptr<GemmBackend<T>> backend)
      : cfg_(std::move(cfg)),
        backend_(std::move(backend)),
        cache_(cfg_.resident_tiles) {
    if (cfg_.m == 0) throw std::invalid_argument("Device: m must be >= 1");
    s_ = exact_sqrt(cfg_.m);
    if (!backend_) backend_ = make_backend<T>(cfg_.backend);
#ifdef TCU_CHECK
    // Debug-mode contract checking: every device is born with a checker
    // shadowing its resident set and counters (src/check/contract.cpp).
    auto_checker_.reset(check::make_auto_checker(cfg_.name.c_str(),
                                                 cfg_.latency, s_,
                                                 cfg_.allow_tall,
                                                 cache_.capacity()));
#endif
  }

  std::size_t m() const { return cfg_.m; }
  std::size_t tile_dim() const { return s_; }  ///< sqrt(m)
  std::uint64_t latency() const { return cfg_.latency; }
  bool allows_tall() const { return cfg_.allow_tall; }
  const std::string& name() const { return cfg_.name; }

  /// C = A * B (or C += A * B when `accumulate`), with A: n x s, B: s x s,
  /// C: n x s. Charges n*s + l model time (tall mode) or ceil(n/s)*(m + l)
  /// (weak mode). Rows are processed even when n < s, but a full tile is
  /// charged: the hardware pipeline cannot be shortened below its depth.
  /// The right operand of an untagged call is anonymous, so it invalidates
  /// the *entire* resident set — the unit can no longer vouch for any of
  /// its tiles.
  void gemm(ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
            bool accumulate = false) {
    if (fault_) fault_->on_call();  // a faulted call has zero side effects
    validate_shapes(A, B, C);  // reject before mutating the resident set
    cache_.clear();
    gemm_charged(A, B, C, accumulate, /*first_hit=*/false, /*tracked=*/false);
    notify_gemm(kNoResident, /*tagged=*/false);
  }

  /// Like `gemm`, but the right operand carries a caller-chosen nonzero
  /// identity `key`. If `key` is a member of the unit's resident set, the
  /// load latency l is *not* charged again (the model charges l per tile
  /// load; a resident model is streamed for free, §3's asymmetry property)
  /// and the hit is counted. Otherwise the tile is loaded, charged in
  /// full, and becomes the most-recently-used resident — displacing the
  /// LRU tile (counted in Counters::evictions) when the cache is at its
  /// configured capacity. In weak mode the square calls of one split
  /// share the tile, so only the first pays l.
  void gemm_resident(std::uint64_t key, ConstMatrixView<T> A,
                     ConstMatrixView<T> B, MatrixView<T> C,
                     bool accumulate = false) {
    if (key == kNoResident) {
      gemm(A, B, C, accumulate);  // delegation injects the fault there
      return;
    }
    if (fault_) fault_->on_call();  // a faulted call has zero side effects
    validate_shapes(A, B, C);  // reject before mutating the resident set
    bool evicted = false;
    const bool hit = cache_.touch(key, &evicted);
    if (evicted) counters_.count_eviction();
    gemm_charged(A, B, C, accumulate, hit, /*tracked=*/true);
    notify_gemm(key, /*tagged=*/true);
  }

  /// Identity of the most-recently-used resident operand (0 = none).
  std::uint64_t resident_key() const { return cache_.mru(); }

  /// The unit's resident set (LRU -> MRU order); the scheduler mirrors
  /// this to predict hits without touching the worker thread.
  const TileCache& tile_cache() const { return cache_; }

  /// Configured residency capacity c.
  std::size_t cache_capacity() const { return cache_.capacity(); }

  /// Drop every resident tile (no eviction is counted: this is an explicit
  /// invalidation, not capacity pressure). PoolExecutor re-anchors with
  /// this when a failed task leaves the declared chain unfinished, so the
  /// scheduler's prediction can never drift from the unit's state.
  void evict_all() {
    cache_.clear();
    if (auto* obs = observer()) obs->on_evict_all();
  }

  static constexpr std::uint64_t kNoResident = 0;

  /// Convenience wrapper allocating the output.
  Matrix<T> multiply(const Matrix<T>& A, const Matrix<T>& B) {
    Matrix<T> C(A.rows(), B.cols());
    gemm(A.view(), B.view(), C.view(), /*accumulate=*/false);
    return C;
  }

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  void reset() {
    counters_.reset();
    trace_.clear();
    cache_.clear();
    wall_ns_ = 0;
    if (auto* obs = observer()) obs->on_reset();
  }

  /// Measured wall-clock nanoseconds spent inside the numeric backend
  /// across this device's calls. Deliberately *not* a Counters field: the
  /// determinism suites compare counters bitwise across runs, and wall
  /// time is the one machine-dependent signal. Cleared by reset().
  std::uint64_t wall_ns() const { return wall_ns_; }

  /// The numeric backend executing this device's products.
  const GemmBackend<T>& backend() const { return *backend_; }
  const char* backend_name() const { return backend_->name(); }

  /// The observer receiving this device's events: an explicitly attached
  /// one (set_observer) wins over the TCU_CHECK auto-attached checker.
  check::UnitObserver* observer() const {
    return observer_ ? observer_ : auto_checker_.get();
  }

  /// Attach (or with nullptr, detach) an explicit observer; returns the
  /// previous explicit observer so scoped attachments can restore it.
  /// Only call while the device is quiescent. The auto-attached checker
  /// is masked while an explicit observer is set and told to resync,
  /// since it misses the masked events.
  check::UnitObserver* set_observer(check::UnitObserver* obs) {
    if (auto* auto_obs = auto_checker_.get()) auto_obs->on_desync();
    return std::exchange(observer_, obs);
  }

  /// The fault injector consulted at the top of every `gemm` /
  /// `gemm_resident` (src/fault/fault.hpp), or null when none is
  /// attached. Injection happens *before* shape validation, cache
  /// transitions, and counter charges, so a faulted call leaves no trace
  /// and a retry is bit-identical to a first attempt.
  fault::UnitFaultInjector* fault_injector() const { return fault_; }

  /// Attach (or with nullptr, detach) a fault injector; returns the
  /// previous one so scoped attachments can restore it. Only call while
  /// the device is quiescent.
  fault::UnitFaultInjector* set_fault_injector(fault::UnitFaultInjector* f) {
    return std::exchange(fault_, f);
  }

  /// Charge `ops` unit-cost RAM operations (the algorithms' CPU work).
  void charge_cpu(std::uint64_t ops) { counters_.charge_cpu(ops); }

  void enable_trace(bool on = true) { tracing_ = on; }
  bool tracing() const { return tracing_; }
  const Trace& trace() const { return trace_; }

  /// Default numeric engine: straightforward triple loop.
  static Engine reference_engine() {
    return [](ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
              bool accumulate, Counters&) {
      const std::size_t n = A.rows;
      const std::size_t s = B.rows;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < s; ++j) {
          T acc = accumulate ? C(i, j) : T{};
          for (std::size_t k = 0; k < s; ++k) acc += A(i, k) * B(k, j);
          C(i, j) = acc;
        }
      }
    };
  }

 private:
  void validate_shapes(ConstMatrixView<T> A, ConstMatrixView<T> B,
                       MatrixView<T> C) const {
    if (B.rows != s_ || B.cols != s_) {
      throw std::invalid_argument(
          "Device::gemm: right operand must be sqrt(m) x sqrt(m)");
    }
    if (A.cols != s_) {
      throw std::invalid_argument(
          "Device::gemm: left operand must have sqrt(m) columns");
    }
    if (C.rows != A.rows || C.cols != s_) {
      throw std::invalid_argument("Device::gemm: output shape mismatch");
    }
  }

  /// Shared body of `gemm` / `gemm_resident`. `first_hit` skips the load
  /// latency of the first issued call; `tracked` marks the split calls of
  /// a weak-mode chain as sharing one resident tile (only the first load
  /// pays l). Untracked calls charge l per call, the historical behavior.
  void gemm_charged(ConstMatrixView<T> A, ConstMatrixView<T> B,
                    MatrixView<T> C, bool accumulate, bool first_hit,
                    bool tracked) {
    validate_shapes(A, B, C);
    const std::uint64_t n = A.rows;
    if (cfg_.allow_tall || n <= s_) {
      issue(A, B, C, accumulate, std::max<std::uint64_t>(n, s_), first_hit,
            tracked);
      return;
    }
    // Weak model: split the tall operand into square tiles (Section 5).
    bool hit = first_hit;
    for (std::size_t r0 = 0; r0 < n; r0 += s_) {
      const std::size_t rows = std::min(s_, static_cast<std::size_t>(n) - r0);
      issue(A.row_block(r0, rows), B, C.row_block(r0, rows), accumulate, s_,
            hit, tracked);
      hit = tracked;  // the tile stays resident for the rest of the split
    }
  }

  void issue(ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
             bool accumulate, std::uint64_t charged_rows, bool hit,
             bool tagged) {
    const auto t0 = std::chrono::steady_clock::now();
    backend_->run(A, B, C, accumulate, counters_);
    wall_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (hit) {
      counters_.charge_resident_hit(charged_rows, s_, cfg_.latency);
    } else {
      counters_.charge_tensor_call(charged_rows, s_, cfg_.latency);
    }
    if (tagged) ++counters_.tagged_calls;
    if (tracing_) trace_.record(charged_rows, s_, accumulate);
  }

  void notify_gemm(std::uint64_t key, bool tagged) {
    if (auto* obs = observer()) {
      obs->on_gemm(key, tagged, counters_, cache_.entries());
    }
  }

  Config cfg_;
  std::shared_ptr<GemmBackend<T>> backend_;
  TileCache cache_;
  std::size_t s_ = 0;
  Counters counters_;
  std::uint64_t wall_ns_ = 0;  ///< backend wall time; outside Counters
  Trace trace_;
  bool tracing_ = false;
  check::UnitObserver* observer_ = nullptr;  ///< explicit, non-owning
  check::OwnedChecker auto_checker_;         ///< TCU_CHECK auto-attach
  fault::UnitFaultInjector* fault_ = nullptr;  ///< non-owning injection seam
};

/// Closed-form model cost of one tall tensor call (for bench predictions).
inline std::uint64_t tensor_call_cost(std::uint64_t n, std::size_t m,
                                      std::uint64_t latency) {
  const auto s = static_cast<std::uint64_t>(exact_sqrt(m));
  return std::max(n, s) * s + latency;
}

/// Exact simulated tensor time one `gemm(A[n x s], B, C)` will charge on
/// `unit`: a tall call, or ceil(n/s) square calls on weak-model units.
/// Schedulers project with this so their dealing reproduces the serial
/// execute-then-pick greedy loop bit-for-bit.
template <typename T>
std::uint64_t projected_gemm_cost(const Device<T>& unit, std::uint64_t n) {
  const auto s = static_cast<std::uint64_t>(unit.tile_dim());
  if (unit.allows_tall() || n <= s) {
    return std::max(n, s) * s + unit.latency();
  }
  return ((n + s - 1) / s) * (unit.m() + unit.latency());
}

}  // namespace tcu
