// BLAS-backed GEMM wrappers for the blas backend (core/backend.hpp).
//
// Compiled to an empty TU unless -DTCU_BLAS=ON links a BLAS; the Fortran
// [sd]gemm symbols are declared directly, so no cblas header is needed.
// The row-major product C(n x s) = A(n x s) * B(s x s) is computed as the
// column-major C^T = B^T * A^T: a row-major matrix with leading dimension
// ld *is* its transpose in column-major, so no copies are made. beta = 0
// overwrites (BLAS never reads C then), beta = 1 accumulates.

#include "core/backend.hpp"

#ifdef TCU_BLAS

extern "C" {
void sgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const float* alpha, const float* a,
            const int* lda, const float* b, const int* ldb,
            const float* beta, float* c, const int* ldc);
void dgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const double* alpha, const double* a,
            const int* lda, const double* b, const int* ldb,
            const double* beta, double* c, const int* ldc);
}

namespace tcu::backend_detail {

void blas_gemm(const double* a, std::size_t lda, const double* b,
               std::size_t ldb, double* c, std::size_t ldc, std::size_t n,
               std::size_t s, bool accumulate) {
  const int m_ = static_cast<int>(s);   // rows of C^T
  const int n_ = static_cast<int>(n);   // cols of C^T
  const int k_ = static_cast<int>(s);
  const int lda_ = static_cast<int>(ldb);  // B^T's leading dimension
  const int ldb_ = static_cast<int>(lda);  // A^T's leading dimension
  const int ldc_ = static_cast<int>(ldc);
  const double alpha = 1.0;
  const double beta = accumulate ? 1.0 : 0.0;
  dgemm_("N", "N", &m_, &n_, &k_, &alpha, b, &lda_, a, &ldb_, &beta, c,
         &ldc_);
}

void blas_gemm(const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float* c, std::size_t ldc, std::size_t n,
               std::size_t s, bool accumulate) {
  const int m_ = static_cast<int>(s);
  const int n_ = static_cast<int>(n);
  const int k_ = static_cast<int>(s);
  const int lda_ = static_cast<int>(ldb);
  const int ldb_ = static_cast<int>(lda);
  const int ldc_ = static_cast<int>(ldc);
  const float alpha = 1.0F;
  const float beta = accumulate ? 1.0F : 0.0F;
  sgemm_("N", "N", &m_, &n_, &k_, &alpha, b, &lda_, a, &ldb_, &beta, c,
         &ldc_);
}

}  // namespace tcu::backend_detail

#endif  // TCU_BLAS
