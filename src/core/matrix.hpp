#pragma once
// Dense row-major matrix container and non-owning strided views.
//
// The whole library works in terms of these types: the simulated tensor
// unit consumes `ConstMatrixView` operands and writes a `MatrixView`
// destination, so algorithms can hand sub-blocks of larger matrices to the
// device without copying (mirroring how real TCU instructions take memory
// addresses, Section 3 of the paper).

#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace tcu {

template <typename T>
struct ConstMatrixView;

/// Non-owning mutable view over a row-major block with a row stride.
template <typename T>
struct MatrixView {
  T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;  ///< distance in elements between row starts

  MatrixView() = default;
  MatrixView(T* d, std::size_t r, std::size_t c, std::size_t s)
      : data(d), rows(r), cols(c), stride(s) {
    assert(s >= c);
  }

  T& operator()(std::size_t i, std::size_t j) const {
    assert(i < rows && j < cols);
    return data[i * stride + j];
  }

  MatrixView subview(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
    if (r0 + nr > rows || c0 + nc > cols) {
      throw std::out_of_range("MatrixView::subview out of range");
    }
    return MatrixView(data + r0 * stride + c0, nr, nc, stride);
  }

  /// Rows [r0, r0+nr) as a full-width view.
  MatrixView row_block(std::size_t r0, std::size_t nr) const {
    return subview(r0, 0, nr, cols);
  }

  void fill(const T& value) const {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) (*this)(i, j) = value;
    }
  }

  ConstMatrixView<T> as_const() const;
};

/// Non-owning read-only view; implicitly convertible from MatrixView.
template <typename T>
struct ConstMatrixView {
  const T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const T* d, std::size_t r, std::size_t c, std::size_t s)
      : data(d), rows(r), cols(c), stride(s) {
    assert(s >= c);
  }
  ConstMatrixView(MatrixView<T> v)  // NOLINT: intentional implicit
      : data(v.data), rows(v.rows), cols(v.cols), stride(v.stride) {}

  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < rows && j < cols);
    return data[i * stride + j];
  }

  ConstMatrixView subview(std::size_t r0, std::size_t c0, std::size_t nr,
                          std::size_t nc) const {
    if (r0 + nr > rows || c0 + nc > cols) {
      throw std::out_of_range("ConstMatrixView::subview out of range");
    }
    return ConstMatrixView(data + r0 * stride + c0, nr, nc, stride);
  }

  ConstMatrixView row_block(std::size_t r0, std::size_t nr) const {
    return subview(r0, 0, nr, cols);
  }
};

template <typename T>
ConstMatrixView<T> MatrixView<T>::as_const() const {
  return ConstMatrixView<T>(data, rows, cols, stride);
}

/// Owning dense row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, const T& init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(std::size_t n) {
    Matrix eye(n, n, T{});
    for (std::size_t i = 0; i < n; ++i) eye(i, i) = T{1};
    return eye;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  MatrixView<T> view() {
    return MatrixView<T>(data_.data(), rows_, cols_, cols_);
  }
  ConstMatrixView<T> view() const {
    return ConstMatrixView<T>(data_.data(), rows_, cols_, cols_);
  }
  MatrixView<T> subview(std::size_t r0, std::size_t c0, std::size_t nr,
                        std::size_t nc) {
    return view().subview(r0, c0, nr, nc);
  }
  ConstMatrixView<T> subview(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const {
    return view().subview(r0, c0, nr, nc);
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Copy `src` into `dst`; shapes must match.
template <typename T>
void copy(ConstMatrixView<T> src, MatrixView<T> dst) {
  if (src.rows != dst.rows || src.cols != dst.cols) {
    throw std::invalid_argument("copy: shape mismatch");
  }
  for (std::size_t i = 0; i < src.rows; ++i) {
    for (std::size_t j = 0; j < src.cols; ++j) dst(i, j) = src(i, j);
  }
}

/// Materialize a view as an owning matrix.
template <typename T>
Matrix<T> materialize(ConstMatrixView<T> src) {
  Matrix<T> out(src.rows, src.cols);
  copy(src, out.view());
  return out;
}

/// Transpose into a fresh matrix.
template <typename T>
Matrix<T> transposed(ConstMatrixView<T> src) {
  Matrix<T> out(src.cols, src.rows);
  for (std::size_t i = 0; i < src.rows; ++i) {
    for (std::size_t j = 0; j < src.cols; ++j) out(j, i) = src(i, j);
  }
  return out;
}

/// Mutable-view overloads (template deduction does not apply the implicit
/// MatrixView -> ConstMatrixView conversion).
template <typename T>
Matrix<T> materialize(MatrixView<T> src) {
  return materialize(src.as_const());
}
template <typename T>
Matrix<T> transposed(MatrixView<T> src) {
  return transposed(src.as_const());
}

}  // namespace tcu
