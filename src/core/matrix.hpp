#pragma once
// Dense row-major matrix container and non-owning strided views.
//
// The whole library works in terms of these types: the simulated tensor
// unit consumes `ConstMatrixView` operands and writes a `MatrixView`
// destination, so algorithms can hand sub-blocks of larger matrices to the
// device without copying (mirroring how real TCU instructions take memory
// addresses, Section 3 of the paper).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace tcu {

template <typename T>
struct ConstMatrixView;

/// Non-owning mutable view over a row-major block with a row stride.
template <typename T>
struct MatrixView {
  T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;  ///< distance in elements between row starts

  MatrixView() = default;
  MatrixView(T* d, std::size_t r, std::size_t c, std::size_t s)
      : data(d), rows(r), cols(c), stride(s) {
    assert(s >= c);
  }

  T& operator()(std::size_t i, std::size_t j) const {
    assert(i < rows && j < cols);
    return data[i * stride + j];
  }

  MatrixView subview(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
    if (r0 + nr > rows || c0 + nc > cols) {
      throw std::out_of_range("MatrixView::subview out of range");
    }
    return MatrixView(data + r0 * stride + c0, nr, nc, stride);
  }

  /// Rows [r0, r0+nr) as a full-width view.
  MatrixView row_block(std::size_t r0, std::size_t nr) const {
    return subview(r0, 0, nr, cols);
  }

  void fill(const T& value) const {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) (*this)(i, j) = value;
    }
  }

  ConstMatrixView<T> as_const() const;
};

/// Non-owning read-only view; implicitly convertible from MatrixView.
template <typename T>
struct ConstMatrixView {
  const T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t stride = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const T* d, std::size_t r, std::size_t c, std::size_t s)
      : data(d), rows(r), cols(c), stride(s) {
    assert(s >= c);
  }
  ConstMatrixView(MatrixView<T> v)  // NOLINT: intentional implicit
      : data(v.data), rows(v.rows), cols(v.cols), stride(v.stride) {}

  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < rows && j < cols);
    return data[i * stride + j];
  }

  ConstMatrixView subview(std::size_t r0, std::size_t c0, std::size_t nr,
                          std::size_t nc) const {
    if (r0 + nr > rows || c0 + nc > cols) {
      throw std::out_of_range("ConstMatrixView::subview out of range");
    }
    return ConstMatrixView(data + r0 * stride + c0, nr, nc, stride);
  }

  ConstMatrixView row_block(std::size_t r0, std::size_t nr) const {
    return subview(r0, 0, nr, cols);
  }
};

template <typename T>
ConstMatrixView<T> MatrixView<T>::as_const() const {
  return ConstMatrixView<T>(data, rows, cols, stride);
}

/// Owning dense row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, const T& init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(std::size_t n) {
    Matrix eye(n, n, T{});
    for (std::size_t i = 0; i < n; ++i) eye(i, i) = T{1};
    return eye;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  MatrixView<T> view() {
    return MatrixView<T>(data_.data(), rows_, cols_, cols_);
  }
  ConstMatrixView<T> view() const {
    return ConstMatrixView<T>(data_.data(), rows_, cols_, cols_);
  }
  MatrixView<T> subview(std::size_t r0, std::size_t c0, std::size_t nr,
                        std::size_t nc) {
    return view().subview(r0, c0, nr, nc);
  }
  ConstMatrixView<T> subview(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const {
    return view().subview(r0, c0, nr, nc);
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Owning tile-major matrix: storage is partitioned into s x s tiles
/// (s = the device's sqrt(m)), each tile a contiguous row-major block, and
/// tiles are laid out strip-major — all tiles of tile-column 0 first (top
/// to bottom), then tile-column 1, and so on. One layout therefore gives
/// *both* contiguous shapes the TCU call needs: `tile_view(ti, tj)` is a
/// contiguous s x s right operand, and `strip_view(tj)`, the vertical
/// concatenation of tile-column tj, is a contiguous padded_rows x s tall
/// left operand. Logical dimensions are zero-padded up to tile multiples
/// (the paper's divisibility assumption, materialized in storage); the
/// padding rows/columns are exact zeros, so products over the padded
/// shapes agree with the logical product on the logical region.
template <typename T>
class TiledMatrix {
 public:
  TiledMatrix() = default;
  TiledMatrix(std::size_t rows, std::size_t cols, std::size_t tile_dim)
      : rows_(rows), cols_(cols), s_(tile_dim) {
    if (tile_dim == 0) {
      throw std::invalid_argument("TiledMatrix: tile_dim must be >= 1");
    }
    tile_rows_ = (rows + s_ - 1) / s_;
    tile_cols_ = (cols + s_ - 1) / s_;
    data_.assign(tile_rows_ * tile_cols_ * s_ * s_, T{});
  }

  /// Pack a row-major view into tile-major storage (the row-major ->
  /// tile-major packer; padding stays zero).
  static TiledMatrix pack(ConstMatrixView<T> src, std::size_t tile_dim) {
    TiledMatrix out(src.rows, src.cols, tile_dim);
    for (std::size_t i = 0; i < src.rows; ++i) {
      for (std::size_t j = 0; j < src.cols; ++j) out.at(i, j) = src(i, j);
    }
    return out;
  }

  std::size_t rows() const { return rows_; }  ///< logical rows
  std::size_t cols() const { return cols_; }  ///< logical cols
  std::size_t tile_dim() const { return s_; }
  std::size_t tile_rows() const { return tile_rows_; }  ///< tiles per column
  std::size_t tile_cols() const { return tile_cols_; }  ///< tiles per row
  std::size_t padded_rows() const { return tile_rows_ * s_; }
  std::size_t padded_cols() const { return tile_cols_ * s_; }
  bool empty() const { return data_.empty(); }

  /// Elements a pack/unpack touches (the honest CPU charge for a repack).
  std::uint64_t pack_cost() const {
    return static_cast<std::uint64_t>(rows_) * cols_;
  }

  /// Tile (ti, tj) as a contiguous s x s view (stride == s).
  MatrixView<T> tile_view(std::size_t ti, std::size_t tj) {
    return MatrixView<T>(tile_ptr(ti, tj), s_, s_, s_);
  }
  ConstMatrixView<T> tile_view(std::size_t ti, std::size_t tj) const {
    return ConstMatrixView<T>(tile_ptr(ti, tj), s_, s_, s_);
  }

  /// Tile-column tj — all row tiles stacked — as one contiguous
  /// padded_rows x s view (stride == s): a tall TCU left operand.
  MatrixView<T> strip_view(std::size_t tj) {
    return MatrixView<T>(tile_ptr(0, tj), padded_rows(), s_, s_);
  }
  ConstMatrixView<T> strip_view(std::size_t tj) const {
    return ConstMatrixView<T>(tile_ptr(0, tj), padded_rows(), s_, s_);
  }

  /// Address of tile (ti, tj)'s first element: a stable residency key for
  /// as long as this TiledMatrix lives (the same identity contract as
  /// row-major `&B(kb, jb)` keys).
  const T* tile_data(std::size_t ti, std::size_t tj) const {
    return tile_ptr(ti, tj);
  }

  /// Logical element access (pack/unpack convenience; not a hot path).
  T& at(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return tile_ptr(i / s_, j / s_)[(i % s_) * s_ + j % s_];
  }
  const T& at(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return tile_ptr(i / s_, j / s_)[(i % s_) * s_ + j % s_];
  }

  /// Unpack the logical region into a row-major destination.
  void unpack_into(MatrixView<T> dst) const {
    if (dst.rows != rows_ || dst.cols != cols_) {
      throw std::invalid_argument("TiledMatrix::unpack_into: shape mismatch");
    }
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) dst(i, j) = at(i, j);
    }
  }

  /// The logical region as a fresh row-major matrix (tile-major ->
  /// row-major packer).
  Matrix<T> unpack() const {
    Matrix<T> out(rows_, cols_);
    unpack_into(out.view());
    return out;
  }

 private:
  T* tile_ptr(std::size_t ti, std::size_t tj) {
    assert(ti < tile_rows_ && tj < tile_cols_);
    return data_.data() + (tj * tile_rows_ + ti) * s_ * s_;
  }
  const T* tile_ptr(std::size_t ti, std::size_t tj) const {
    assert(ti < tile_rows_ && tj < tile_cols_);
    return data_.data() + (tj * tile_rows_ + ti) * s_ * s_;
  }

  std::size_t rows_ = 0, cols_ = 0;  ///< logical shape
  std::size_t s_ = 0;                ///< tile dimension (sqrt m)
  std::size_t tile_rows_ = 0, tile_cols_ = 0;
  std::vector<T> data_;
};

/// Copy `src` into `dst`; shapes must match.
template <typename T>
void copy(ConstMatrixView<T> src, MatrixView<T> dst) {
  if (src.rows != dst.rows || src.cols != dst.cols) {
    throw std::invalid_argument("copy: shape mismatch");
  }
  for (std::size_t i = 0; i < src.rows; ++i) {
    for (std::size_t j = 0; j < src.cols; ++j) dst(i, j) = src(i, j);
  }
}

/// Materialize a view as an owning matrix.
template <typename T>
Matrix<T> materialize(ConstMatrixView<T> src) {
  Matrix<T> out(src.rows, src.cols);
  copy(src, out.view());
  return out;
}

/// Transpose into a fresh matrix.
template <typename T>
Matrix<T> transposed(ConstMatrixView<T> src) {
  Matrix<T> out(src.cols, src.rows);
  for (std::size_t i = 0; i < src.rows; ++i) {
    for (std::size_t j = 0; j < src.cols; ++j) out(j, i) = src(i, j);
  }
  return out;
}

/// Mutable-view overloads (template deduction does not apply the implicit
/// MatrixView -> ConstMatrixView conversion).
template <typename T>
Matrix<T> materialize(MatrixView<T> src) {
  return materialize(src.as_const());
}
template <typename T>
Matrix<T> transposed(MatrixView<T> src) {
  return transposed(src.as_const());
}

}  // namespace tcu
