#pragma once
// Limited-numerical-precision tensor engines.
//
// Real tensor units compute in reduced precision: NVIDIA TCs multiply
// fp16 operands into an fp32 accumulator, TPUv1 uses 8-bit integers. The
// paper deliberately keeps precision out of the model (§3.1) and lists
// "how to include low numerical precision" among its open questions (§6).
// This header provides the experimental apparatus for that question: a
// Device<double> engine whose inputs are rounded to a configurable
// mantissa width and whose accumulator rounds after every add, so the
// numerical behaviour of fp16x/fp32+ (TC-like) or bf16-like hardware can
// be measured against the exact reference engine (ablation ABL3).

#include "core/device.hpp"

namespace tcu {

/// Round `x` to `mantissa_bits` of significand (IEEE round-to-nearest on
/// the significand; exponent range is not clamped). mantissa_bits >= 52
/// returns x unchanged.
double quantize(double x, int mantissa_bits);

struct PrecisionSpec {
  int input_mantissa = 10;  ///< fp16 has 10 explicit significand bits
  int acc_mantissa = 23;    ///< fp32 accumulate, the NVIDIA TC default
};

/// Engine for Device<double> emulating a limited-precision tensor unit:
/// both operands are quantized on load; every multiply result and every
/// accumulator update is rounded to the accumulator width.
Device<double>::Engine limited_precision_engine(PrecisionSpec spec);

/// Max absolute elementwise difference between two equal-shape matrices —
/// the error metric used by the precision tests and the ABL3 bench.
double max_abs_diff(ConstMatrixView<double> a, ConstMatrixView<double> b);

}  // namespace tcu
