#include "core/complex_gemm.hpp"

#include <stdexcept>

#include "check/contract.hpp"

namespace tcu {
namespace {

struct SplitOperands {
  Matrix<double> ar, ai, br, bi;
};

SplitOperands split(Device<double>& dev,
                    ConstMatrixView<std::complex<double>> A,
                    ConstMatrixView<std::complex<double>> B) {
  SplitOperands out{Matrix<double>(A.rows, A.cols), Matrix<double>(A.rows, A.cols),
                    Matrix<double>(B.rows, B.cols), Matrix<double>(B.rows, B.cols)};
  for (std::size_t i = 0; i < A.rows; ++i) {
    for (std::size_t j = 0; j < A.cols; ++j) {
      out.ar(i, j) = A(i, j).real();
      out.ai(i, j) = A(i, j).imag();
    }
  }
  for (std::size_t i = 0; i < B.rows; ++i) {
    for (std::size_t j = 0; j < B.cols; ++j) {
      out.br(i, j) = B(i, j).real();
      out.bi(i, j) = B(i, j).imag();
    }
  }
  dev.charge_cpu(2 * (A.rows * A.cols + B.rows * B.cols));
  return out;
}

void check_shapes(ConstMatrixView<std::complex<double>> A,
                  ConstMatrixView<std::complex<double>> B,
                  MatrixView<std::complex<double>> C, std::size_t s) {
  if (B.rows != s || B.cols != s || A.cols != s || C.rows != A.rows ||
      C.cols != s) {
    throw std::invalid_argument("complex_gemm: operand shapes do not match "
                                "the device tile");
  }
}

}  // namespace

void complex_gemm_4m(Device<double>& dev,
                     ConstMatrixView<std::complex<double>> A,
                     ConstMatrixView<std::complex<double>> B,
                     MatrixView<std::complex<double>> C, bool accumulate) {
  const std::size_t s = dev.tile_dim();
  check_shapes(A, B, C, s);
  auto ops = split(dev, A, B);
  const std::size_t n = A.rows;

  Matrix<double> p1(n, s), p2(n, s), p3(n, s), p4(n, s);
  // The four right operands are transient split halves rebuilt per call:
  // no identity outlives this function, so residency tagging has nothing
  // to key on.
  check::AllowUntaggedClobber allow_clobber;
  // tcu-lint: untagged-ok(transient split-half operands, no stable identity)
  dev.gemm(ops.ar.view(), ops.br.view(), p1.view());
  // tcu-lint: untagged-ok(transient split-half operands, no stable identity)
  dev.gemm(ops.ai.view(), ops.bi.view(), p2.view());
  // tcu-lint: untagged-ok(transient split-half operands, no stable identity)
  dev.gemm(ops.ar.view(), ops.bi.view(), p3.view());
  // tcu-lint: untagged-ok(transient split-half operands, no stable identity)
  dev.gemm(ops.ai.view(), ops.br.view(), p4.view());

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      const std::complex<double> prod(p1(i, j) - p2(i, j),
                                      p3(i, j) + p4(i, j));
      C(i, j) = accumulate ? C(i, j) + prod : prod;
    }
  }
  dev.charge_cpu(2 * n * s);  // the "two sums of real values" of Section 4.5
}

void complex_gemm_3m(Device<double>& dev,
                     ConstMatrixView<std::complex<double>> A,
                     ConstMatrixView<std::complex<double>> B,
                     MatrixView<std::complex<double>> C, bool accumulate) {
  const std::size_t s = dev.tile_dim();
  check_shapes(A, B, C, s);
  auto ops = split(dev, A, B);
  const std::size_t n = A.rows;

  Matrix<double> asum(n, s), bsum(s, s);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < s; ++j) asum(i, j) = ops.ar(i, j) + ops.ai(i, j);
  }
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) bsum(i, j) = ops.br(i, j) + ops.bi(i, j);
  }
  dev.charge_cpu(n * s + s * s);

  Matrix<double> t1(n, s), t2(n, s), t3(n, s);
  // Same as the 4M scheme: transient split/sum operands, nothing to tag.
  check::AllowUntaggedClobber allow_clobber;
  // tcu-lint: untagged-ok(transient split-half operands, no stable identity)
  dev.gemm(ops.ar.view(), ops.br.view(), t1.view());
  // tcu-lint: untagged-ok(transient split-half operands, no stable identity)
  dev.gemm(ops.ai.view(), ops.bi.view(), t2.view());
  // tcu-lint: untagged-ok(transient split-sum operands, no stable identity)
  dev.gemm(asum.view(), bsum.view(), t3.view());

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      const std::complex<double> prod(t1(i, j) - t2(i, j),
                                      t3(i, j) - t1(i, j) - t2(i, j));
      C(i, j) = accumulate ? C(i, j) + prod : prod;
    }
  }
  dev.charge_cpu(3 * n * s);
}

}  // namespace tcu
