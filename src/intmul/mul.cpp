#include "intmul/mul.hpp"

#include <stdexcept>

#include "linalg/dense.hpp"

namespace tcu::intmul {

namespace {

/// Evaluate coefficient vector C at 2^16 with a carry pass.
BigInt carry_evaluate(const std::vector<std::int64_t>& coeffs) {
  std::vector<BigInt::Limb> limbs;
  limbs.reserve(coeffs.size() + 4);
  std::uint64_t acc = 0;
  for (const std::int64_t c : coeffs) {
    acc += static_cast<std::uint64_t>(c);
    limbs.push_back(static_cast<BigInt::Limb>(acc & BigInt::kLimbMask));
    acc >>= BigInt::kLimbBits;
  }
  while (acc != 0) {
    limbs.push_back(static_cast<BigInt::Limb>(acc & BigInt::kLimbMask));
    acc >>= BigInt::kLimbBits;
  }
  return BigInt::from_limbs(std::move(limbs));
}

}  // namespace

BigInt mul_schoolbook_ram(const BigInt& a, const BigInt& b,
                          Counters& counters) {
  if (a.is_zero() || b.is_zero()) return {};
  const auto& al = a.limbs();
  const auto& bl = b.limbs();
  std::vector<std::int64_t> coeffs(al.size() + bl.size() - 1, 0);
  for (std::size_t i = 0; i < al.size(); ++i) {
    for (std::size_t j = 0; j < bl.size(); ++j) {
      coeffs[i + j] += static_cast<std::int64_t>(al[i]) * bl[j];
    }
  }
  counters.charge_cpu(al.size() * bl.size() + coeffs.size());
  return carry_evaluate(coeffs);
}

BigInt mul_schoolbook_tcu(Device<std::int64_t>& dev, const BigInt& a,
                          const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return {};
  const std::size_t s = dev.tile_dim();
  // Pad both operands to a common limb count n', a multiple of s.
  const std::size_t raw = std::max(a.limb_count(), b.limb_count());
  const std::size_t np = ((raw + s - 1) / s) * s;

  // A': every length-s window of the zero-padded limb sequence.
  Matrix<std::int64_t> ap(np + s - 1, s, 0);
  for (std::size_t i = 0; i < ap.rows(); ++i) {
    for (std::size_t t = 0; t < s; ++t) {
      const std::int64_t u = static_cast<std::int64_t>(i) -
                             static_cast<std::int64_t>(s) + 1 +
                             static_cast<std::int64_t>(t);
      if (u >= 0 && u < static_cast<std::int64_t>(a.limb_count())) {
        ap(i, t) = a.limbs()[static_cast<std::size_t>(u)];
      }
    }
  }
  // B': limbs column-major, reversed within each column.
  Matrix<std::int64_t> bp(s, np / s, 0);
  for (std::size_t t = 0; t < s; ++t) {
    for (std::size_t j = 0; j < np / s; ++j) {
      const std::size_t v = j * s + (s - 1 - t);
      if (v < b.limb_count()) bp(t, j) = b.limbs()[v];
    }
  }
  dev.charge_cpu(ap.rows() * s + s * (np / s));

  Matrix<std::int64_t> cp =
      linalg::matmul_tcu(dev, ap.view(), bp.view());

  // Coefficient h of the product = sum of C' over i = h - j*s.
  std::vector<std::int64_t> coeffs(2 * np - 1, 0);
  for (std::size_t j = 0; j < cp.cols(); ++j) {
    for (std::size_t i = 0; i < cp.rows(); ++i) {
      const std::size_t h = i + j * s;
      if (h < coeffs.size()) coeffs[h] += cp(i, j);
    }
  }
  dev.charge_cpu(cp.rows() * cp.cols() + coeffs.size());
  return carry_evaluate(coeffs);
}

namespace {

template <typename MulBase>
BigInt karatsuba_rec(const BigInt& a, const BigInt& b,
                     std::size_t threshold_limbs, Counters& counters,
                     const MulBase& base) {
  const std::size_t n = std::max(a.limb_count(), b.limb_count());
  if (n <= threshold_limbs || n < 2) return base(a, b);
  const std::size_t half = (n + 1) / 2;

  const BigInt a0 = a.low_limbs(half), a1 = a.high_limbs(half);
  const BigInt b0 = b.low_limbs(half), b1 = b.high_limbs(half);
  counters.charge_cpu(2 * n);

  BigInt z0 = karatsuba_rec(a0, b0, threshold_limbs, counters, base);
  BigInt z2 = karatsuba_rec(a1, b1, threshold_limbs, counters, base);
  const BigInt sa = a0 + a1;
  const BigInt sb = b0 + b1;
  counters.charge_cpu(2 * half);
  BigInt z1 = karatsuba_rec(sa, sb, threshold_limbs, counters, base);
  z1 = z1 - z0 - z2;
  counters.charge_cpu(4 * half);

  BigInt out = z2.shifted_limbs(2 * half) + z1.shifted_limbs(half) + z0;
  counters.charge_cpu(4 * half);
  return out;
}

}  // namespace

BigInt mul_karatsuba_ram(const BigInt& a, const BigInt& b, Counters& counters,
                         std::size_t threshold_limbs) {
  if (threshold_limbs < 1) {
    throw std::invalid_argument("mul_karatsuba_ram: threshold must be >= 1");
  }
  return karatsuba_rec(a, b, threshold_limbs, counters,
                       [&counters](const BigInt& x, const BigInt& y) {
                         return mul_schoolbook_ram(x, y, counters);
                       });
}

BigInt mul_karatsuba_tcu(Device<std::int64_t>& dev, const BigInt& a,
                         const BigInt& b, std::size_t threshold_limbs) {
  if (threshold_limbs == 0) threshold_limbs = 4 * dev.tile_dim();
  return karatsuba_rec(a, b, threshold_limbs, dev.counters(),
                       [&dev](const BigInt& x, const BigInt& y) {
                         return mul_schoolbook_tcu(dev, x, y);
                       });
}

}  // namespace tcu::intmul
