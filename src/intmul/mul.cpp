#include "intmul/mul.hpp"

#include <stdexcept>

#include "linalg/dense.hpp"
#include "linalg/toeplitz.hpp"
#include "util/karatsuba_plan.hpp"

namespace tcu::intmul {

namespace {

/// Evaluate coefficient vector C at 2^16 with a carry pass.
BigInt carry_evaluate(const std::vector<std::int64_t>& coeffs) {
  std::vector<BigInt::Limb> limbs;
  limbs.reserve(coeffs.size() + 4);
  std::uint64_t acc = 0;
  for (const std::int64_t c : coeffs) {
    acc += static_cast<std::uint64_t>(c);
    limbs.push_back(static_cast<BigInt::Limb>(acc & BigInt::kLimbMask));
    acc >>= BigInt::kLimbBits;
  }
  while (acc != 0) {
    limbs.push_back(static_cast<BigInt::Limb>(acc & BigInt::kLimbMask));
    acc >>= BigInt::kLimbBits;
  }
  return BigInt::from_limbs(std::move(limbs));
}

}  // namespace

BigInt mul_schoolbook_ram(const BigInt& a, const BigInt& b,
                          Counters& counters) {
  if (a.is_zero() || b.is_zero()) return {};
  const auto& al = a.limbs();
  const auto& bl = b.limbs();
  std::vector<std::int64_t> coeffs(al.size() + bl.size() - 1, 0);
  for (std::size_t i = 0; i < al.size(); ++i) {
    for (std::size_t j = 0; j < bl.size(); ++j) {
      coeffs[i + j] += static_cast<std::int64_t>(al[i]) * bl[j];
    }
  }
  counters.charge_cpu(al.size() * bl.size() + coeffs.size());
  return carry_evaluate(coeffs);
}

BigInt mul_schoolbook_tcu(Device<std::int64_t>& dev, const BigInt& a,
                          const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return {};
  // The banded-Toeplitz kernel is shared with poly/: limbs in, the full
  // coefficient convolution out, then the carry pass evaluates at 2^16.
  const std::vector<std::int64_t> av(a.limbs().begin(), a.limbs().end());
  const std::vector<std::int64_t> bv(b.limbs().begin(), b.limbs().end());
  return carry_evaluate(linalg::conv_toeplitz_tcu(dev, av, bv));
}

namespace {

/// Karatsuba over limb vectors for the shared serial recursion and the
/// depth-limited unroll engine (util/karatsuba_plan.hpp).
struct BigIntKaratsubaOps {
  using Value = BigInt;
  static std::size_t size(const BigInt& v) { return v.limb_count(); }
  static BigInt low(const BigInt& v, std::size_t half) {
    return v.low_limbs(half);
  }
  static BigInt high(const BigInt& v, std::size_t half) {
    return v.high_limbs(half);
  }
  static BigInt add(const BigInt& x, const BigInt& y) { return x + y; }
  static BigInt sub(const BigInt& x, const BigInt& y) { return x - y; }
  static BigInt shift(const BigInt& v, std::size_t count) {
    return v.shifted_limbs(count);
  }
};

}  // namespace

BigInt mul_karatsuba_ram(const BigInt& a, const BigInt& b, Counters& counters,
                         std::size_t threshold_limbs) {
  if (threshold_limbs < 1) {
    throw std::invalid_argument("mul_karatsuba_ram: threshold must be >= 1");
  }
  return util::karatsuba_serial<BigIntKaratsubaOps>(
      a, b, threshold_limbs, counters,
      [&counters](const BigInt& x, const BigInt& y) {
        return mul_schoolbook_ram(x, y, counters);
      });
}

BigInt mul_karatsuba_tcu(Device<std::int64_t>& dev, const BigInt& a,
                         const BigInt& b, std::size_t threshold_limbs) {
  if (threshold_limbs == 0) threshold_limbs = 4 * dev.tile_dim();
  return util::karatsuba_serial<BigIntKaratsubaOps>(
      a, b, threshold_limbs, dev.counters(),
      [&dev](const BigInt& x, const BigInt& y) {
        return mul_schoolbook_tcu(dev, x, y);
      });
}

BigInt mul_karatsuba_tcu_pool(PoolExecutor<std::int64_t>& exec,
                              const BigInt& a, const BigInt& b,
                              std::size_t threshold_limbs) {
  DevicePool<std::int64_t>& pool = exec.pool();
  if (threshold_limbs == 0) {
    threshold_limbs = 4 * pool.unit(0).tile_dim();
  }
  const std::size_t n = std::max(a.limb_count(), b.limb_count());
  const std::size_t depth =
      util::karatsuba_unroll_depth(n, threshold_limbs, exec.size());
  util::KaratsubaPlan<BigIntKaratsubaOps> plan;
  auto root = util::karatsuba_plan<BigIntKaratsubaOps>(
      pool, plan, a, b, threshold_limbs, depth);
  return util::karatsuba_run_plan<BigIntKaratsubaOps>(
      exec, plan, root,
      [threshold_limbs](Device<std::int64_t>& unit, const BigInt& x,
                        const BigInt& y) {
        return util::karatsuba_serial<BigIntKaratsubaOps>(
            x, y, threshold_limbs, unit.counters(),
            [&unit](const BigInt& u, const BigInt& v) {
              return mul_schoolbook_tcu(unit, u, v);
            });
      },
      [&pool, threshold_limbs](const BigInt& x, const BigInt& y) {
        return util::karatsuba_toeplitz_cost(
            pool.unit(0), std::max(x.limb_count(), y.limb_count()),
            threshold_limbs);
      });
}

}  // namespace tcu::intmul
