#pragma once
// Arbitrary-precision unsigned integers: the substrate for §4.7.
//
// The paper stores long integers as polynomials over base-2^{kappa'}
// limbs with kappa' = kappa/4, so that limb products summed over n' terms
// never overflow a kappa-bit tensor word. With the library's 64-bit
// integer device we use 16-bit limbs: a schoolbook coefficient is at most
// (2^16-1)^2 * n' < 2^32 * n', exact in int64 for any practical n'.

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace tcu::intmul {

class BigInt {
 public:
  static constexpr unsigned kLimbBits = 16;
  static constexpr std::uint32_t kLimbMask = 0xFFFFu;
  using Limb = std::uint32_t;  // holds a 16-bit digit

  BigInt() = default;                    ///< zero
  explicit BigInt(std::uint64_t value);  ///< from a machine word

  /// Parse a (lowercase or uppercase) hexadecimal string, no prefix.
  static BigInt from_hex(const std::string& hex);
  std::string to_hex() const;

  /// Uniformly random integer with exactly `bits` significant bits
  /// (top bit set), or zero when bits == 0.
  static BigInt random_bits(std::size_t bits, util::Xoshiro256& rng);

  /// Construct from little-endian base-2^16 limbs (normalizes).
  static BigInt from_limbs(std::vector<Limb> limbs);

  bool is_zero() const { return limbs_.empty(); }
  std::size_t limb_count() const { return limbs_.size(); }
  std::size_t bit_length() const;
  const std::vector<Limb>& limbs() const { return limbs_; }

  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  std::strong_ordering operator<=>(const BigInt& other) const;

  BigInt operator+(const BigInt& other) const;
  /// Requires *this >= other; throws std::invalid_argument otherwise.
  BigInt operator-(const BigInt& other) const;
  /// Multiply by 2^{16 * count} (limb shift).
  BigInt shifted_limbs(std::size_t count) const;
  /// The low `count` limbs (mod 2^{16 * count}).
  BigInt low_limbs(std::size_t count) const;
  /// Limbs from `count` upward (floor division by 2^{16 * count}).
  BigInt high_limbs(std::size_t count) const;

 private:
  void normalize();
  std::vector<Limb> limbs_;  // little-endian, no trailing zeros
};

}  // namespace tcu::intmul
