#include "intmul/bigint.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcu::intmul {

BigInt::BigInt(std::uint64_t value) {
  while (value != 0) {
    limbs_.push_back(static_cast<Limb>(value & kLimbMask));
    value >>= kLimbBits;
  }
}

BigInt BigInt::from_limbs(std::vector<Limb> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  for (Limb l : out.limbs_) {
    if (l > kLimbMask) {
      throw std::invalid_argument("BigInt::from_limbs: limb out of range");
    }
  }
  out.normalize();
  return out;
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_hex(const std::string& hex) {
  if (hex.empty()) throw std::invalid_argument("BigInt::from_hex: empty");
  BigInt out;
  // Each limb is exactly 4 hex digits; parse from the tail.
  std::size_t end = hex.size();
  while (end > 0) {
    const std::size_t begin = end >= 4 ? end - 4 : 0;
    Limb limb = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const char c = hex[i];
      limb <<= 4;
      if (c >= '0' && c <= '9') {
        limb |= static_cast<Limb>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        limb |= static_cast<Limb>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        limb |= static_cast<Limb>(c - 'A' + 10);
      } else {
        throw std::invalid_argument("BigInt::from_hex: bad digit");
      }
    }
    out.limbs_.push_back(limb);
    end = begin;
  }
  out.normalize();
  return out;
}

std::string BigInt::to_hex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t idx = limbs_.size(); idx-- > 0;) {
    for (int shift = 12; shift >= 0; shift -= 4) {
      out.push_back(digits[(limbs_[idx] >> shift) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return first == std::string::npos ? "0" : out.substr(first);
}

BigInt BigInt::random_bits(std::size_t bits, util::Xoshiro256& rng) {
  if (bits == 0) return BigInt{};
  BigInt out;
  const std::size_t limbs = (bits + kLimbBits - 1) / kLimbBits;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) {
    limb = static_cast<Limb>(rng.uniform_int(0, kLimbMask));
  }
  // Force exactly `bits` significant bits.
  const std::size_t top_bits = bits - (limbs - 1) * kLimbBits;
  Limb& top = out.limbs_.back();
  top &= static_cast<Limb>((1u << top_bits) - 1);
  top |= static_cast<Limb>(1u << (top_bits - 1));
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * kLimbBits;
  Limb top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::strong_ordering BigInt::operator<=>(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint32_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_.push_back(sum & kLimbMask);
    carry = sum >> kLimbBits;
  }
  if (carry != 0) out.limbs_.push_back(carry);
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (*this < other) {
    throw std::invalid_argument("BigInt: subtraction would underflow");
  }
  BigInt out;
  out.limbs_.reserve(limbs_.size());
  std::int32_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int32_t diff = static_cast<std::int32_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) {
      diff -= static_cast<std::int32_t>(other.limbs_[i]);
    }
    if (diff < 0) {
      diff += 1 << kLimbBits;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<Limb>(diff));
  }
  out.normalize();
  return out;
}

BigInt BigInt::shifted_limbs(std::size_t count) const {
  if (limbs_.empty()) return {};
  BigInt out;
  out.limbs_.assign(count, 0);
  out.limbs_.insert(out.limbs_.end(), limbs_.begin(), limbs_.end());
  return out;
}

BigInt BigInt::low_limbs(std::size_t count) const {
  BigInt out;
  const std::size_t n = std::min(count, limbs_.size());
  out.limbs_.assign(limbs_.begin(), limbs_.begin() + static_cast<std::ptrdiff_t>(n));
  out.normalize();
  return out;
}

BigInt BigInt::high_limbs(std::size_t count) const {
  BigInt out;
  if (count < limbs_.size()) {
    out.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(count),
                      limbs_.end());
  }
  return out;
}

}  // namespace tcu::intmul
