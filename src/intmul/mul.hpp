#pragma once
// Long integer multiplication in the (m, l)-TCU model (§4.7).
//
// Theorem 9 (`mul_schoolbook_tcu`): the schoolbook product of the limb
// polynomials A(x) B(x) is computed as one banded-Toeplitz matrix product
// on the tensor unit. With s = sqrt(m):
//
//   * A' ((n'+s-1) x s) holds every length-s window of the zero-padded
//     limb sequence of a: A'[i][t] = A_{i-s+1+t};
//   * B' (s x n'/s) holds b's limbs column-major, reversed within each
//     column: B'[t][j] = B_{js+s-1-t};
//   * C' = A' B' then satisfies: entry (i, j) accumulates exactly the
//     products A_u B_v with u + v = i + j s, so coefficient h of the
//     product polynomial is the sum of C' along the anti-diagonal
//     i = h - j s. A final carry pass evaluates C(2^{16}).
//
// (The roles of the windowed/reversed operands are stated transposed in
// the paper's text; the index identity above is the one that makes every
// (u, v) pair land exactly once, and is what we implement and test.)
//
// Cost: the tall product is (n'/m) tensor calls streaming n' + s - 1 rows
// each: O(n'^2/sqrt(m) + (n'/m) l) = O(n^2/(kappa^2 sqrt(m)) +
// (n/(kappa m)) l).
//
// Theorem 10 (`mul_karatsuba_tcu`): Karatsuba's recursion with the
// Theorem 9 kernel as base case once operands fit kappa * sqrt(m) bits:
// O((n / (kappa sqrt(m)))^{log2 3} (sqrt(m) + l / sqrt(m))).

#include <cstdint>

#include "core/device.hpp"
#include "core/pool.hpp"
#include "intmul/bigint.hpp"

namespace tcu::intmul {

/// RAM baseline: limb-level schoolbook product, Theta(n'^2) charged.
BigInt mul_schoolbook_ram(const BigInt& a, const BigInt& b,
                          Counters& counters);

/// Theorem 9: schoolbook via one banded-Toeplitz tensor product.
BigInt mul_schoolbook_tcu(Device<std::int64_t>& dev, const BigInt& a,
                          const BigInt& b);

/// RAM Karatsuba baseline with schoolbook base case below
/// `threshold_limbs`.
BigInt mul_karatsuba_ram(const BigInt& a, const BigInt& b, Counters& counters,
                         std::size_t threshold_limbs = 32);

/// Theorem 10: Karatsuba with the Theorem 9 TCU kernel at the base. The
/// default threshold of 4 sqrt(m) limbs corresponds to the paper's
/// kappa sqrt(m)-bit base case with kappa' = kappa/4 = 16-bit limbs.
BigInt mul_karatsuba_tcu(Device<std::int64_t>& dev, const BigInt& a,
                         const BigInt& b, std::size_t threshold_limbs = 0);

/// Pool-parallel Theorem 10: the top levels of Karatsuba's call tree are
/// unrolled on the submitting thread (linear work on the shared CPU,
/// charged as in the serial recursion) and the independent subtree
/// products are dealt across the executor's units, each running the
/// serial recursion with the Theorem 9 base case. Product and aggregate
/// counters are bit-identical to `mul_karatsuba_tcu` on one device for
/// every unit count.
BigInt mul_karatsuba_tcu_pool(PoolExecutor<std::int64_t>& exec,
                              const BigInt& a, const BigInt& b,
                              std::size_t threshold_limbs = 0);

}  // namespace tcu::intmul
