#pragma once
// Depth-limited Karatsuba unroll over a DevicePool — the Strassen plan
// pattern of linalg/strassen.hpp applied to Theorem 10's call tree, and
// shared by integer (intmul) and polynomial (poly) multiplication.
//
// Karatsuba's recursion is Strassen-shaped: each node performs linear
// work (splits, operand sums, recombination) and spawns three independent
// half-size products. The top `depth` levels are unrolled on the
// submitting thread: their linear steps run — and are charged to the
// pool's shared CPU — exactly as in the serial recursion, while each
// subtree root below is *recorded*. The recorded subtrees are dealt
// across the pool's worker threads (each worker runs the ordinary serial
// recursion on its unit) and the returned combine closure stitches the
// results bottom-up. Because the same linear steps produce the same
// operand values and every subtree runs the same serial call sequence,
// the product and the aggregate counters are bit-identical to the serial
// recursion — only the split of work over units changes.
//
// `Ops` abstracts the coefficient domain:
//   using Value = ...;                   // a BigInt, a coefficient vector
//   static std::size_t size(const Value&);
//   static Value low(const Value&, std::size_t half);
//   static Value high(const Value&, std::size_t half);
//   static Value add(const Value&, const Value&);
//   static Value sub(const Value&, const Value&);   // a >= b domains only
//   static Value shift(const Value&, std::size_t);  // * base^count
// `karatsuba_serial` below is the one serial recursion every domain
// calls (intmul and poly only supply Ops and a base case), so the
// CPU-charge constants live in exactly two adjacent functions here: the
// serial recursion and the plan that unrolls it.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/pool.hpp"

namespace tcu::util {

/// Serial Karatsuba recursion over `Ops` with a pluggable base-case
/// multiply. This is the single source of the recursion's CPU-charge
/// constants (2n split, 2*half operand sums, 4*half middle correction,
/// 4*half recombination); the plan engine below performs the identical
/// steps split between unroll time and combine time, so the aggregate
/// charges agree node for node.
template <typename Ops, typename MulBase>
typename Ops::Value karatsuba_serial(const typename Ops::Value& a,
                                     const typename Ops::Value& b,
                                     std::size_t threshold,
                                     Counters& counters,
                                     const MulBase& base) {
  using Value = typename Ops::Value;
  const std::size_t n = std::max(Ops::size(a), Ops::size(b));
  if (n <= threshold || n < 2) return base(a, b);
  const std::size_t half = (n + 1) / 2;

  const Value a0 = Ops::low(a, half), a1 = Ops::high(a, half);
  const Value b0 = Ops::low(b, half), b1 = Ops::high(b, half);
  counters.charge_cpu(2 * n);

  Value z0 = karatsuba_serial<Ops>(a0, b0, threshold, counters, base);
  Value z2 = karatsuba_serial<Ops>(a1, b1, threshold, counters, base);
  const Value sa = Ops::add(a0, a1);
  const Value sb = Ops::add(b0, b1);
  counters.charge_cpu(2 * half);
  Value z1 = karatsuba_serial<Ops>(sa, sb, threshold, counters, base);
  z1 = Ops::sub(Ops::sub(z1, z0), z2);
  counters.charge_cpu(4 * half);

  Value out = Ops::add(
      Ops::add(Ops::shift(z2, 2 * half), Ops::shift(z1, half)), z0);
  counters.charge_cpu(4 * half);
  return out;
}

/// Recorded subtree products of one unrolled Karatsuba call tree.
template <typename Ops>
struct KaratsubaPlan {
  using Value = typename Ops::Value;
  std::vector<Value> leaf_a;   ///< left operand per subtree product
  std::vector<Value> leaf_b;   ///< right operand per subtree product
  std::vector<Value> results;  ///< filled by the pool workers
};

/// Unroll depth that yields >= 4 subtrees per unit (3^depth leaves)
/// without recursing past the serial base-case threshold.
inline std::size_t karatsuba_unroll_depth(std::size_t n,
                                          std::size_t threshold,
                                          std::size_t units) {
  std::size_t depth = 0;
  std::uint64_t leaves = 1;
  const std::uint64_t target = 4 * static_cast<std::uint64_t>(units);
  while (leaves < target && n > threshold && n >= 2) {
    n = (n + 1) / 2;
    ++depth;
    leaves *= 3;
  }
  return depth;
}

/// Estimated tensor time of one Karatsuba subtree over n coefficients on
/// `unit` with the banded-Toeplitz schoolbook base (exact for the base
/// case, 3 * est(half) above it). The dealer only needs a deterministic
/// balance signal: the aggregate counters are the same for any placement.
template <typename T>
std::uint64_t karatsuba_toeplitz_cost(const Device<T>& unit, std::size_t n,
                                      std::size_t threshold) {
  if (n <= threshold || n < 2) {
    const std::size_t s = unit.tile_dim();
    const std::size_t np = ((std::max<std::size_t>(n, 1) + s - 1) / s) * s;
    const std::uint64_t strips = (np / s + s - 1) / s;
    return strips * projected_gemm_cost(unit, np + s - 1);
  }
  return 3 * karatsuba_toeplitz_cost(unit, (n + 1) / 2, threshold);
}

/// Unroll the top `depth` levels, recording subtree operands in `plan`;
/// returns the closure that recombines `plan.results` into the product.
/// Linear work is charged to the pool's shared CPU with the same
/// constants as the serial recursion.
template <typename Ops, typename T>
std::function<typename Ops::Value()> karatsuba_plan(
    DevicePool<T>& pool, KaratsubaPlan<Ops>& plan,
    const typename Ops::Value& a, const typename Ops::Value& b,
    std::size_t threshold, std::size_t depth) {
  using Value = typename Ops::Value;
  const std::size_t n = std::max(Ops::size(a), Ops::size(b));
  if (depth == 0 || n <= threshold || n < 2) {
    const std::size_t idx = plan.leaf_a.size();
    plan.leaf_a.push_back(a);
    plan.leaf_b.push_back(b);
    return [&plan, idx] { return std::move(plan.results[idx]); };
  }
  const std::size_t half = (n + 1) / 2;

  Value a0 = Ops::low(a, half), a1 = Ops::high(a, half);
  Value b0 = Ops::low(b, half), b1 = Ops::high(b, half);
  pool.charge_cpu(2 * n);

  auto f0 = karatsuba_plan<Ops>(pool, plan, a0, b0, threshold, depth - 1);
  auto f2 = karatsuba_plan<Ops>(pool, plan, a1, b1, threshold, depth - 1);
  const Value sa = Ops::add(a0, a1);
  const Value sb = Ops::add(b0, b1);
  pool.charge_cpu(2 * half);
  auto f1 = karatsuba_plan<Ops>(pool, plan, sa, sb, threshold, depth - 1);

  return [&pool, half, f0 = std::move(f0), f1 = std::move(f1),
          f2 = std::move(f2)]() -> Value {
    Value z0 = f0();
    Value z2 = f2();
    Value z1 = f1();
    z1 = Ops::sub(Ops::sub(z1, z0), z2);
    pool.charge_cpu(4 * half);
    Value out = Ops::add(
        Ops::add(Ops::shift(z2, 2 * half), Ops::shift(z1, half)), z0);
    pool.charge_cpu(4 * half);
    return out;
  };
}

/// Deal the recorded subtrees across the executor's units and recombine.
/// `leaf(unit, a, b)` runs the domain's serial Karatsuba recursion on one
/// unit; `leaf_cost(a, b)` is the projected simulated tensor time used by
/// the greedy dealer (an estimate is fine — the dealing is deterministic
/// either way, and the aggregate counters are placement-independent).
template <typename Ops, typename T, typename LeafFn, typename CostFn>
typename Ops::Value karatsuba_run_plan(
    PoolExecutor<T>& exec, KaratsubaPlan<Ops>& plan,
    const std::function<typename Ops::Value()>& root, LeafFn leaf,
    CostFn leaf_cost) {
  plan.results.resize(plan.leaf_a.size());
  for (std::size_t idx = 0; idx < plan.leaf_a.size(); ++idx) {
    const std::uint64_t cost = leaf_cost(plan.leaf_a[idx], plan.leaf_b[idx]);
    exec.submit(cost, [&plan, idx, leaf](Device<T>& unit) {
      plan.results[idx] = leaf(unit, plan.leaf_a[idx], plan.leaf_b[idx]);
    });
  }
  exec.join();
  return root();
}

}  // namespace tcu::util
