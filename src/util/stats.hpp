#pragma once
// Small statistics helpers used by the benchmark harness to compare
// measured simulated costs against the paper's closed-form bounds:
// power-law exponent fitting (log-log least squares) and ratio-band checks.

#include <cstddef>
#include <vector>

namespace tcu::util {

/// Result of fitting y = coeff * x^exponent by least squares on logs.
struct PowerFit {
  double exponent = 0.0;  ///< fitted slope in log-log space
  double coeff = 0.0;     ///< fitted multiplicative constant
  double r2 = 0.0;        ///< coefficient of determination in log space
};

/// Fit y = c * x^e over strictly-positive samples. Requires xs.size() ==
/// ys.size() >= 2; throws std::invalid_argument otherwise.
PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys);

/// max(ys[i]/xs[i]) / min(ys[i]/xs[i]): how far the measured/predicted
/// ratio drifts across a sweep. A value near 1 means the bound tracks the
/// measurement up to a constant, which is what a Theta-bound promises.
double ratio_spread(const std::vector<double>& xs,
                    const std::vector<double>& ys);

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// Geometric mean of ys[i]/xs[i]; the empirical "hidden constant".
double geometric_mean_ratio(const std::vector<double>& xs,
                            const std::vector<double>& ys);

}  // namespace tcu::util
