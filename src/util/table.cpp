#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tcu::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must be non-empty");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity does not match header");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c]
         << (c + 1 == row.size() ? "" : "  ");
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt(std::uint64_t value) { return std::to_string(value); }
std::string fmt(std::int64_t value) { return std::to_string(value); }

}  // namespace tcu::util
