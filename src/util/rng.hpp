#pragma once
// Deterministic, fast pseudo-random number generation for tests and
// benchmarks. Reproducibility matters more than cryptographic quality here:
// every experiment in EXPERIMENTS.md is seeded so reruns regenerate the
// same workloads.

#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

namespace tcu::util {

/// SplitMix64: used to expand a single seed into the xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: small, fast, high-quality generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Fill a vector with uniform values; floating-point types get [lo, hi),
/// integral types get integers in [lo, hi].
template <typename T>
std::vector<T> random_vector(std::size_t n, Xoshiro256& rng, double lo = -1.0,
                             double hi = 1.0) {
  std::vector<T> v(n);
  for (auto& x : v) {
    if constexpr (std::is_floating_point_v<T>) {
      x = static_cast<T>(rng.uniform(lo, hi));
    } else {
      x = static_cast<T>(rng.uniform_int(static_cast<std::int64_t>(lo),
                                         static_cast<std::int64_t>(hi)));
    }
  }
  return v;
}

}  // namespace tcu::util
