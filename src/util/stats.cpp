#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace tcu::util {

PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >= 2 paired samples");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) {
      throw std::invalid_argument("fit_power_law: samples must be positive");
    }
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("fit_power_law: all x values identical");
  }
  PowerFit fit;
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.coeff = std::exp((sy - fit.exponent * sx) / n);
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = std::log(fit.coeff) + fit.exponent * std::log(xs[i]);
    const double resid = std::log(ys[i]) - pred;
    ss_res += resid * resid;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double ratio_spread(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("ratio_spread: need paired non-empty samples");
  }
  double lo = ys[0] / xs[0];
  double hi = lo;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double r = ys[i] / xs[i];
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  return hi / lo;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double geometric_mean_ratio(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("geometric_mean_ratio: mismatched samples");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += std::log(ys[i] / xs[i]);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace tcu::util
