#pragma once
// Minimal fixed-width table printer. Benchmarks and examples use it to
// emit the paper-vs-measured rows recorded in EXPERIMENTS.md.

#include <iosfwd>
#include <string>
#include <vector>

namespace tcu::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column-aligned padding and a rule under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 3 digits).
std::string fmt(double value, int precision = 3);
/// Format an integer count with thousands grouping removed (plain digits).
std::string fmt(std::uint64_t value);
std::string fmt(std::int64_t value);

}  // namespace tcu::util
