#pragma once
// Debug-mode contract checker for the (m, l)-TCU residency model.
//
// PRs 2-4 established the model's conventions: long-lived right operands
// are tagged with `gemm_resident`, every `submit_affine` chain lists
// exactly the keys its task touches in order, counters obey the latency
// conservation law, and the pool's prediction mirrors replay the units'
// LRU transitions bit-for-bit. Nothing enforced any of it — PR 4 was an
// entire bugfix PR for silent violations. `UnitChecker` turns the
// conventions into machine-checked assertions by shadowing one device
// through the `check::UnitObserver` seam (core/observer.hpp):
//
//   * a shadow TileCache replays every call's LRU transition and must
//     land on the device's exact resident set, hit/eviction counts, and
//     latency charges — per event, not just in aggregate;
//   * the conservation law  Δ(latency_time + latency_saved) == Δcalls·ℓ
//     and the hit bound  Δresident_hits <= Δtagged_calls  must hold at
//     every event (each issued call adds ℓ to exactly one side);
//   * a PoolExecutor task declared via `submit_affine` must issue exactly
//     its declared chain — extra, missing, or reordered keys are hard
//     errors — and must realize exactly the hits the dealer predicted;
//   * an untagged `gemm` that clobbers a live resident set is flagged
//     unless the site is allowlisted (`AllowUntaggedClobber`), the task
//     declared it (a 0 chain entry), or the task was submitted through
//     the untagged `submit` path, whose dealer already dropped the lane's
//     prediction mirror;
//   * after a failed task abandons its chain, any tensor call issued
//     outside the executor's grace window before the `evict_all`
//     re-anchor is a "stale resident set" error;
//   * at every clean `join()` the dealer's mirror must equal the unit's
//     resident set (prediction == realization).
//
// Violations throw `ContractError`. Checkers attach two ways: building
// with -DTCU_CHECK=ON gives every Device an automatic checker from
// birth, and `ScopedCheck` attaches explicitly to a device or pool for
// the lifetime of a scope (tests use this to assert violations fire).

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/device.hpp"
#include "core/observer.hpp"
#include "core/pool.hpp"

namespace tcu::check {

/// A model-contract violation. Derives from std::logic_error: these are
/// programming errors in workload code, not runtime conditions.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// RAII allowlist for untagged calls that deliberately clobber a live
/// resident set (cold-stream baselines, operands that change every call).
/// Thread-local and counted, so scopes nest and a scope on one thread
/// never blesses another. Every scope in src/ should sit next to a
/// matching `// tcu-lint: untagged-ok(<reason>)` annotation — the static
/// and runtime halves of the same audit entry.
class AllowUntaggedClobber {
 public:
  AllowUntaggedClobber();
  ~AllowUntaggedClobber();
  AllowUntaggedClobber(const AllowUntaggedClobber&) = delete;
  AllowUntaggedClobber& operator=(const AllowUntaggedClobber&) = delete;

  /// True while any scope is live on the calling thread.
  static bool active();
};

/// Shadow-state checker for one Device. See the file comment for the
/// invariants. All per-unit entry points run on the thread that owns the
/// device (see core/observer.hpp's threading contract); no locking.
class UnitChecker final : public UnitObserver {
 public:
  UnitChecker(std::string name, std::uint64_t latency, std::size_t tile_dim,
              bool allow_tall, std::size_t cache_capacity);

  /// Adopt `counters` / `cache_entries` as the device's current ground
  /// truth. Called when attaching to a device with history; a desynced
  /// checker instead re-adopts lazily at its next observed call.
  void sync(const Counters& counters,
            const std::vector<std::uint64_t>& cache_entries);

  void on_gemm(std::uint64_t key, bool tagged, const Counters& after,
               const std::vector<std::uint64_t>& cache_entries) override;
  void on_evict_all() override;
  void on_reset() override;
  void on_desync() override;
  // No default for `hits_valid` here: default arguments bind statically,
  // so redeclaring the base's default on an override invites silently
  // divergent call sites. The base virtual alone carries it.
  void on_task_begin(const std::vector<std::uint64_t>* chain,
                     std::uint64_t predicted_hits, bool affine,
                     bool hits_valid) override;
  void on_task_end(bool failed) override;
  void on_join(const std::vector<std::uint64_t>& mirror_entries) override;
  void on_epoch(const std::vector<std::uint64_t>& mirror_entries,
                std::uint64_t epoch) override;

  /// Re-check the standing invariants (conservation law, hit bound) and
  /// throw ContractError on violation. on_join calls this automatically;
  /// serial users may call it at any quiescent point.
  void verify() const;

  const std::string& name() const { return name_; }

  /// Tensor calls validated since the last sync/reset (attachment proof
  /// for tests: zero means the checker never saw an event).
  std::uint64_t checked_calls() const { return checked_calls_; }

 private:
  enum class TaskMode { kNone, kUntagged, kAffine };

  [[noreturn]] void fail(const std::string& msg) const;
  void check_standing(const Counters& now) const;
  bool clobber_sanctioned() const;

  std::string name_;
  std::uint64_t latency_;
  std::size_t tile_dim_;
  bool allow_tall_;

  TileCache shadow_;          ///< replayed resident set
  bool synced_ = false;       ///< false = adopt device state at next event
  Counters last_;             ///< device counters after the last event
  Counters base_;             ///< counters at sync (laws measured from here)
  std::uint64_t checked_calls_ = 0;

  // Task bracket state (set by the PoolExecutor wrapper).
  TaskMode mode_ = TaskMode::kNone;
  std::vector<std::uint64_t> declared_;  ///< affine task's declared chain
  std::vector<std::uint64_t> observed_;  ///< keys actually issued (0=untagged)
  std::uint64_t predicted_hits_ = 0;     ///< dealer's replayed hit count
  std::uint64_t task_realized_hits_ = 0; ///< invocations served resident
  bool task_baseline_valid_ = false;
  bool needs_anchor_ = false;  ///< failed task left the chain unfinished
};

/// Attach a UnitChecker to a device — or one per unit of a DevicePool —
/// for the lifetime of the scope, restoring any previous observers on
/// exit. The checkers are synced to the live state at attachment, so a
/// mid-stream attach starts clean. Attach/detach only while quiescent.
template <typename T>
class ScopedCheck {
 public:
  explicit ScopedCheck(Device<T>& dev) { attach(dev); }
  explicit ScopedCheck(DevicePool<T>& pool) {
    for (std::size_t i = 0; i < pool.size(); ++i) attach(pool.unit(i));
  }
  ScopedCheck(const ScopedCheck&) = delete;
  ScopedCheck& operator=(const ScopedCheck&) = delete;
  ~ScopedCheck() {
    for (std::size_t i = devices_.size(); i-- > 0;) {
      devices_[i]->set_observer(previous_[i]);
    }
  }

  std::size_t size() const { return checkers_.size(); }
  UnitChecker& unit(std::size_t i) { return *checkers_.at(i); }

  /// Standing invariants across every attached unit.
  void verify() const {
    for (const auto& checker : checkers_) checker->verify();
  }

 private:
  void attach(Device<T>& dev) {
    auto checker = std::make_unique<UnitChecker>(
        dev.name(), dev.latency(), dev.tile_dim(), dev.allows_tall(),
        dev.cache_capacity());
    checker->sync(dev.counters(), dev.tile_cache().entries());
    previous_.push_back(dev.set_observer(checker.get()));
    devices_.push_back(&dev);
    checkers_.push_back(std::move(checker));
  }

  std::vector<Device<T>*> devices_;
  std::vector<UnitObserver*> previous_;
  std::vector<std::unique_ptr<UnitChecker>> checkers_;
};

}  // namespace tcu::check
