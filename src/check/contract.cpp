// Implementation of the (m, l)-TCU contract checker (see contract.hpp).
//
// The checker is exact, not statistical: every expected delta below is
// the closed-form consequence of the model rules in core/device.hpp.
// One `gemm`/`gemm_resident` invocation issues `dcalls` model calls
// (1 in tall mode, ceil(n/sqrt(m)) in the weak model) and the split
// calls of one weak-mode tagged invocation share their tile's single
// load — so a tagged invocation whose key was resident realizes
// `dcalls` hits, a tagged miss realizes `dcalls - 1`, and an untagged
// invocation realizes none and pays the latency on every call.

#include "check/contract.hpp"

#include <sstream>

namespace tcu::check {

namespace {

thread_local int g_allow_untagged_depth = 0;

std::string format_keys(const std::vector<std::uint64_t>& keys) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i) out << ", ";
    out << "0x" << std::hex << keys[i] << std::dec;
  }
  out << "]";
  return out.str();
}

std::string format_key(std::uint64_t key) {
  std::ostringstream out;
  out << "0x" << std::hex << key << std::dec;
  return out.str();
}

}  // namespace

AllowUntaggedClobber::AllowUntaggedClobber() { ++g_allow_untagged_depth; }
AllowUntaggedClobber::~AllowUntaggedClobber() { --g_allow_untagged_depth; }
bool AllowUntaggedClobber::active() { return g_allow_untagged_depth > 0; }

UnitObserver* make_auto_checker(const char* name, std::uint64_t latency,
                                std::size_t tile_dim, bool allow_tall,
                                std::size_t cache_capacity) {
  auto* checker =
      new UnitChecker(name, latency, tile_dim, allow_tall, cache_capacity);
  // A device observes its checker from birth: all-zero counters, empty
  // resident set.
  checker->sync(Counters{}, {});
  return checker;
}

void destroy_checker(UnitObserver* checker) { delete checker; }

UnitChecker::UnitChecker(std::string name, std::uint64_t latency,
                         std::size_t tile_dim, bool allow_tall,
                         std::size_t cache_capacity)
    : name_(std::move(name)),
      latency_(latency),
      tile_dim_(tile_dim),
      allow_tall_(allow_tall),
      shadow_(cache_capacity) {}

void UnitChecker::fail(const std::string& msg) const {
  throw ContractError("tcu-check[" + name_ + "]: " + msg);
}

void UnitChecker::sync(const Counters& counters,
                       const std::vector<std::uint64_t>& cache_entries) {
  shadow_.clear();
  for (const std::uint64_t key : cache_entries) shadow_.touch(key);
  synced_ = true;
  last_ = counters;
  base_ = counters;
  checked_calls_ = 0;
  mode_ = TaskMode::kNone;
  declared_.clear();
  observed_.clear();
  predicted_hits_ = 0;
  task_realized_hits_ = 0;
  task_baseline_valid_ = false;
  needs_anchor_ = false;
}

bool UnitChecker::clobber_sanctioned() const {
  if (AllowUntaggedClobber::active()) return true;
  // A plain-submit task's calls were declared untagged wholesale: the
  // dealer dropped the lane's prediction mirror when it enqueued.
  if (mode_ == TaskMode::kUntagged) return true;
  // An affine task may declare individual untagged calls as 0 entries.
  if (mode_ == TaskMode::kAffine && !observed_.empty() &&
      observed_.size() - 1 < declared_.size() &&
      declared_[observed_.size() - 1] == 0) {
    return true;
  }
  return false;
}

void UnitChecker::on_gemm(std::uint64_t key, bool tagged,
                          const Counters& after,
                          const std::vector<std::uint64_t>& cache_entries) {
  if (mode_ != TaskMode::kNone) observed_.push_back(tagged ? key : 0);

  if (needs_anchor_ && mode_ == TaskMode::kNone) {
    fail("tensor call issued on a stale resident set: a failed task "
         "abandoned its declared chain and no evict_all re-anchor has run");
  }

  if (!synced_) {
    // Desynced (observer churn): adopt the device's state and resume
    // exact checking from the next event. The task bracket, if any, is
    // preserved — chain conformance needs no shadow state — but hit
    // predictions against the pre-desync mirror are off (the task began
    // with task_baseline_valid_ == false).
    shadow_.clear();
    for (const std::uint64_t entry : cache_entries) shadow_.touch(entry);
    synced_ = true;
    last_ = after;
    base_ = after;
    return;
  }

  if (after.tensor_calls < last_.tensor_calls) {
    fail("counters went backwards (device mutated outside the observed "
         "event stream; reset() without notification?)");
  }
  const std::uint64_t dcalls = after.tensor_calls - last_.tensor_calls;
  if (dcalls == 0) fail("a gemm completed without charging a tensor call");
  if (allow_tall_ && dcalls != 1) {
    fail("a tall-mode gemm charged " + std::to_string(dcalls) +
         " model calls; tall mode issues exactly one");
  }

  std::uint64_t expect_hits = 0;
  std::uint64_t expect_evictions = 0;
  std::uint64_t expect_paid = 0;
  if (tagged) {
    bool evicted = false;
    const bool hit = shadow_.touch(key, &evicted);
    if (hit && mode_ != TaskMode::kNone) ++task_realized_hits_;
    expect_hits = hit ? dcalls : dcalls - 1;
    expect_evictions = evicted ? 1 : 0;
    expect_paid = hit ? 0 : latency_;
  } else {
    if (shadow_.size() > 0 && !clobber_sanctioned()) {
      fail("untagged gemm clobbered a live resident set " +
           format_keys(shadow_.entries()) +
           "; tag the call, declare it in the task's chain, or allowlist "
           "the site with check::AllowUntaggedClobber");
    }
    shadow_.clear();
    expect_paid = latency_ * dcalls;
  }
  const std::uint64_t expect_saved = latency_ * dcalls - expect_paid;

  const auto delta = [&](std::uint64_t now, std::uint64_t before,
                         std::uint64_t expect, const char* what) {
    if (now - before != expect) {
      fail(std::string(what) + " delta " + std::to_string(now - before) +
           " does not match the model's expected " + std::to_string(expect) +
           " for " + (tagged ? "tagged key " + format_key(key) : "an untagged call"));
    }
  };
  delta(after.resident_hits, last_.resident_hits, expect_hits,
        "resident_hits");
  delta(after.evictions, last_.evictions, expect_evictions, "evictions");
  delta(after.latency_time, last_.latency_time, expect_paid, "latency_time");
  delta(after.latency_saved, last_.latency_saved, expect_saved,
        "latency_saved");
  delta(after.tagged_calls, last_.tagged_calls, tagged ? dcalls : 0,
        "tagged_calls");

  if (cache_entries != shadow_.entries()) {
    fail("resident set diverged from the shadow replay: device holds " +
         format_keys(cache_entries) + ", shadow expects " +
         format_keys(shadow_.entries()));
  }

  check_standing(after);
  last_ = after;
  ++checked_calls_;
}

void UnitChecker::on_evict_all() {
  shadow_.clear();
  needs_anchor_ = false;
}

void UnitChecker::on_reset() {
  sync(Counters{}, {});
}

void UnitChecker::on_desync() {
  synced_ = false;
  mode_ = TaskMode::kNone;
  declared_.clear();
  observed_.clear();
  needs_anchor_ = false;
}

void UnitChecker::on_task_begin(const std::vector<std::uint64_t>* chain,
                                std::uint64_t predicted_hits, bool affine,
                                bool hits_valid) {
  if (mode_ != TaskMode::kNone) {
    fail("a task began while another task was still active on this unit");
  }
  mode_ = affine ? TaskMode::kAffine : TaskMode::kUntagged;
  declared_ = chain ? *chain : std::vector<std::uint64_t>{};
  observed_.clear();
  predicted_hits_ = predicted_hits;
  task_realized_hits_ = 0;
  // Hit predictions are only meaningful when the dealer's mirror tracked
  // this lane from a common anchor: not in the grace window behind a
  // failed task, not before the checker adopted the device's state, and
  // not when the executor itself voided the replay (a fault-recovery
  // retry or a redeal onto a lane the original replay never saw).
  task_baseline_valid_ = synced_ && !needs_anchor_ && hits_valid;
}

void UnitChecker::on_task_end(bool failed) {
  const TaskMode mode = mode_;
  mode_ = TaskMode::kNone;
  if (mode == TaskMode::kNone) {
    fail("a task ended on this unit without a matching begin");
  }
  if (failed) {
    // The declared chain was abandoned mid-flight. Later tasks already
    // queued on this lane run in a documented grace window; the executor
    // re-anchors both sides (evict_all) at the join barrier, which
    // clears this flag through on_evict_all.
    needs_anchor_ = true;
    return;
  }
  if (mode == TaskMode::kAffine) {
    const std::size_t common = std::min(declared_.size(), observed_.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (declared_[i] != observed_[i]) {
        fail("declared chain mismatch at call #" + std::to_string(i) +
             ": declared " + format_key(declared_[i]) + ", task issued " +
             format_key(observed_[i]) + " (declared " +
             format_keys(declared_) + ", issued " + format_keys(observed_) +
             ")");
      }
    }
    if (observed_.size() != declared_.size()) {
      fail("declared chain covers " + std::to_string(declared_.size()) +
           " calls but the task issued " + std::to_string(observed_.size()) +
           " (declared " + format_keys(declared_) + ", issued " +
           format_keys(observed_) + ")");
    }
    if (task_baseline_valid_ && task_realized_hits_ != predicted_hits_) {
      fail("the dealer predicted " + std::to_string(predicted_hits_) +
           " resident hits for this task but it realized " +
           std::to_string(task_realized_hits_) +
           " (prediction mirror diverged from the unit)");
    }
  } else {
    for (const std::uint64_t key : observed_) {
      if (key != 0) {
        fail("tagged call " + format_key(key) +
             " issued inside a plain-submit task; residency-tagged work "
             "must declare its chain via submit_affine");
      }
    }
  }
}

void UnitChecker::on_join(const std::vector<std::uint64_t>& mirror_entries) {
  if (mode_ != TaskMode::kNone) {
    fail("join barrier reached this unit while a task was still active");
  }
  if (!synced_ || needs_anchor_) return;
  if (mirror_entries != shadow_.entries()) {
    fail("at join, the dealer's prediction mirror " +
         format_keys(mirror_entries) + " diverged from the unit's resident "
         "set " + format_keys(shadow_.entries()));
  }
  verify();
}

void UnitChecker::on_epoch(const std::vector<std::uint64_t>& mirror_entries,
                           std::uint64_t epoch) {
  // Virtual-barrier bracket: the executor sends this between two tasks on
  // the lane's FIFO (never inside one), and only on lanes untouched by
  // fault recovery, so the dealer's epoch-time mirror snapshot must match
  // the unit's resident set exactly like the strict join's check does.
  if (mode_ != TaskMode::kNone) {
    fail("epoch marker reached this unit while a task was still active");
  }
  if (!synced_ || needs_anchor_) return;
  if (mirror_entries != shadow_.entries()) {
    fail("at epoch " + std::to_string(epoch) +
         ", the dealer's prediction mirror " + format_keys(mirror_entries) +
         " diverged from the unit's resident set " +
         format_keys(shadow_.entries()));
  }
  verify();
}

void UnitChecker::verify() const {
  if (!synced_) return;
  check_standing(last_);
}

void UnitChecker::check_standing(const Counters& now) const {
  // Conservation law: every issued call adds exactly l to latency_time
  // (a load) or latency_saved (a resident hit), never both, never
  // neither.
  const std::uint64_t paid_and_saved = (now.latency_time - base_.latency_time) +
                                       (now.latency_saved - base_.latency_saved);
  const std::uint64_t calls = now.tensor_calls - base_.tensor_calls;
  if (paid_and_saved != calls * latency_) {
    fail("latency conservation law violated: latency_time + latency_saved "
         "grew by " + std::to_string(paid_and_saved) + " over " +
         std::to_string(calls) + " calls with l = " +
         std::to_string(latency_) + " (expected " +
         std::to_string(calls * latency_) + ")");
  }
  const std::uint64_t hits = now.resident_hits - base_.resident_hits;
  const std::uint64_t tagged = now.tagged_calls - base_.tagged_calls;
  if (hits > tagged) {
    fail("resident_hits grew by " + std::to_string(hits) +
         " but only " + std::to_string(tagged) +
         " tagged calls were issued (hits require tags)");
  }
}

}  // namespace tcu::check
