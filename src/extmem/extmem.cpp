#include "extmem/extmem.hpp"

#include <cmath>
#include <stdexcept>

#include "core/device.hpp"

namespace tcu::extmem {

ExtMemSim::ExtMemSim(std::size_t M, std::size_t B) : block_words_(B) {
  if (B == 0 || M < B) {
    throw std::invalid_argument("ExtMemSim: need B >= 1 and M >= B");
  }
  capacity_ = M / B;
}

void ExtMemSim::touch(std::uint64_t addr, bool write) {
  const std::uint64_t block = addr / block_words_;
  if (auto it = index_.find(block); it != index_.end()) {
    it->second->dirty |= write;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() == capacity_) {
    const Entry victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim.block);
    if (victim.dirty) ++ios_;  // write-back
  }
  // No-fetch-on-write allocation: a block that is first *written* is being
  // produced, not loaded, so only its eventual write-back costs an I/O.
  // This matches the Theorem 12 accounting (2m reads + m writes per call).
  if (!write) ++ios_;  // fetch
  lru_.push_front(Entry{block, write});
  index_[block] = lru_.begin();
}

void ExtMemSim::flush() {
  for (const Entry& e : lru_) {
    if (e.dirty) ++ios_;
  }
  lru_.clear();
  index_.clear();
}

std::uint64_t matmul_io_blocked(std::size_t d, std::size_t M, std::size_t B) {
  std::size_t t = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(M) / 3.0));
  if (t == 0) throw std::invalid_argument("matmul_io_blocked: M too small");
  t = std::min(t, d);
  ExtMemSim sim(M, B);
  // Operand layouts: A at 0, B at d^2, C at 2d^2, all row-major.
  const auto addr_a = [&](std::size_t i, std::size_t k) { return i * d + k; };
  const auto addr_b = [&](std::size_t k, std::size_t j) {
    return d * d + k * d + j;
  };
  const auto addr_c = [&](std::size_t i, std::size_t j) {
    return 2 * d * d + i * d + j;
  };
  for (std::size_t ib = 0; ib < d; ib += t) {
    for (std::size_t jb = 0; jb < d; jb += t) {
      for (std::size_t kb = 0; kb < d; kb += t) {
        const std::size_t ie = std::min(ib + t, d);
        const std::size_t je = std::min(jb + t, d);
        const std::size_t ke = std::min(kb + t, d);
        for (std::size_t i = ib; i < ie; ++i) {
          for (std::size_t k = kb; k < ke; ++k) {
            sim.read(addr_a(i, k));
            for (std::size_t j = jb; j < je; ++j) {
              sim.read(addr_b(k, j));
              sim.write(addr_c(i, j));
            }
          }
        }
      }
    }
  }
  sim.flush();
  return sim.io_count();
}

std::uint64_t matmul_io_naive(std::size_t d, std::size_t M, std::size_t B) {
  ExtMemSim sim(M, B);
  const auto addr_a = [&](std::size_t i, std::size_t k) { return i * d + k; };
  const auto addr_b = [&](std::size_t k, std::size_t j) {
    return d * d + k * d + j;
  };
  const auto addr_c = [&](std::size_t i, std::size_t j) {
    return 2 * d * d + i * d + j;
  };
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t k = 0; k < d; ++k) {
        sim.read(addr_a(i, k));
        sim.read(addr_b(k, j));
      }
      sim.write(addr_c(i, j));
    }
  }
  sim.flush();
  return sim.io_count();
}

std::uint64_t simulate_trace_io(const Trace& trace, std::size_t m,
                                std::size_t block_words) {
  const std::uint64_t s = exact_sqrt(m);
  ExtMemSim sim(3 * m + 2 * block_words, block_words);
  // Each call's operands live at fresh external addresses (worst case: no
  // reuse between calls, matching the upper-bound argument of Theorem 12).
  std::uint64_t base = 0;
  for (const TensorOp& op : trace.ops) {
    const std::uint64_t squares = (op.n + s - 1) / s;
    for (std::uint64_t q = 0; q < squares; ++q) {
      for (std::uint64_t w = 0; w < m; ++w) sim.read(base + w);  // A tile
      base += m;
      for (std::uint64_t w = 0; w < m; ++w) sim.read(base + w);  // B
      base += m;
      for (std::uint64_t w = 0; w < m; ++w) sim.write(base + w);  // C tile
      base += m;
    }
  }
  sim.flush();
  return sim.io_count();
}

std::uint64_t trace_io_closed_form(const Trace& trace, std::size_t m,
                                   std::size_t block_words) {
  const std::uint64_t s = exact_sqrt(m);
  std::uint64_t total = 0;
  for (const TensorOp& op : trace.ops) {
    const std::uint64_t squares = (op.n + s - 1) / s;
    // 2m reads + m writes per square step, B words per transfer; the
    // written blocks are written back on eviction (counted once).
    total += squares * (3 * m / block_words);
  }
  return total;
}

}  // namespace tcu::extmem
