#pragma once
// External-memory (I/O) model machinery for Section 5 of the paper.
//
// The external memory model: an internal memory of M words, an unbounded
// external memory, and block transfers of B words; the cost of an
// algorithm is the number of transfers. Section 5 observes that
//
//   * a sqrt(m) x sqrt(m) tensor call can be simulated in an internal
//     memory of M = 3m + O(1) with Theta(m) I/Os (load both operands,
//     multiply internally, write the result), and therefore
//   * any I/O lower bound F_P at M = 3m + O(1), B = 1 transfers to an
//     Omega(F_P) running-time lower bound in the *weak* TCU model
//     (Theorem 12).
//
// This module provides: an LRU cache simulator (`ExtMemSim`) that counts
// the I/Os of address traces; an instrumented blocked matrix multiply in
// the I/O model (the classical Theta(d^3/(B sqrt(M))) upper bound, which
// matches the model-time shape of Theorem 2); and the replay of recorded
// TCU traces as I/O traces, realizing the simulation argument of
// Theorem 12 operationally.

#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/trace.hpp"

namespace tcu::extmem {

/// LRU-managed internal memory over an unbounded external address space.
/// Counts one I/O per block fetched and one per dirty block written back.
class ExtMemSim {
 public:
  /// M = internal memory capacity in words, B = block size in words.
  ExtMemSim(std::size_t M, std::size_t B);

  void read(std::uint64_t addr) { touch(addr, /*write=*/false); }
  void write(std::uint64_t addr) { touch(addr, /*write=*/true); }

  /// Write back every dirty block and empty the internal memory.
  void flush();

  std::uint64_t io_count() const { return ios_; }
  std::size_t capacity_blocks() const { return capacity_; }
  std::size_t resident_blocks() const { return lru_.size(); }

 private:
  struct Entry {
    std::uint64_t block;
    bool dirty;
  };
  void touch(std::uint64_t addr, bool write);

  std::size_t block_words_;
  std::size_t capacity_;
  std::uint64_t ios_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

/// I/Os of the classical blocked d x d matrix multiplication with tile
/// size t = floor(sqrt(M/3)) (three tiles resident), executed address-by-
/// address through an ExtMemSim: Theta(d^3 / (B sqrt(M))) for d^2 >= M.
std::uint64_t matmul_io_blocked(std::size_t d, std::size_t M, std::size_t B);

/// I/Os of the naive (unblocked) triple loop, for comparison:
/// Theta(d^3 / B) once a row of B no longer fits.
std::uint64_t matmul_io_naive(std::size_t d, std::size_t M, std::size_t B);

/// Replay a recorded TCU trace in the external memory model at
/// M = 3m + O(1), B = block_words: every (square-split) tensor call loads
/// its two operands and writes its output through an ExtMemSim with
/// disjoint operand addresses (the worst case of the Theorem 12
/// simulation). Returns total I/Os.
std::uint64_t simulate_trace_io(const Trace& trace, std::size_t m,
                                std::size_t block_words = 1);

/// Closed form of the same quantity: sum over calls of ceil(n/s) * 3m / B
/// (load A tile + load B + write C per square step).
std::uint64_t trace_io_closed_form(const Trace& trace, std::size_t m,
                                   std::size_t block_words = 1);

}  // namespace tcu::extmem
