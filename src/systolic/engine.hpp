#pragma once
// Device engines backed by the cycle-level systolic simulators, plus
// factory helpers. `make_systolic_device` yields a Device whose numeric
// results come from the Figure-1 schedule and whose Counters additionally
// accumulate `systolic_cycles`.

#include <memory>

#include "core/device.hpp"
#include "systolic/systolic_array.hpp"

namespace tcu::systolic {

/// Engine running every tensor call on a weight-stationary systolic array.
template <typename T>
typename Device<T>::Engine weight_stationary_engine() {
  return [](ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
            bool accumulate, Counters& counters) {
    SystolicArray<T> array(B.rows);
    const RunStats stats = array.multiply(A, B, C, accumulate);
    counters.systolic_cycles += stats.total_cycles();
  };
}

/// Engine running square tensor calls on an output-stationary array
/// (NVIDIA-style). Tall calls must already be split by a weak-mode device.
template <typename T>
typename Device<T>::Engine output_stationary_engine() {
  return [](ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
            bool accumulate, Counters& counters) {
    const std::size_t s = B.rows;
    if (A.rows == s) {
      OutputStationaryArray<T> array(s);
      counters.systolic_cycles +=
          array.multiply(A, B, C, accumulate).total_cycles();
      return;
    }
    // A tall call reached an output-stationary engine (a tall-mode device
    // with this engine): execute it as a sequence of square passes.
    OutputStationaryArray<T> array(s);
    for (std::size_t r0 = 0; r0 < A.rows; r0 += s) {
      const std::size_t rows = std::min(s, A.rows - r0);
      Matrix<T> a_tile(s, s, T{});
      Matrix<T> c_tile(s, s, T{});
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < s; ++j) a_tile(i, j) = A(r0 + i, j);
      }
      counters.systolic_cycles +=
          array.multiply(a_tile.view(), B, c_tile.view(), false)
              .total_cycles();
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < s; ++j) {
          C(r0 + i, j) =
              accumulate ? C(r0 + i, j) + c_tile(i, j) : c_tile(i, j);
        }
      }
    }
  };
}

/// A Device whose numeric engine is the cycle-level weight-stationary
/// systolic array of Section 2.2.
template <typename T>
Device<T> make_systolic_device(typename Device<T>::Config cfg) {
  return Device<T>(std::move(cfg), weight_stationary_engine<T>());
}

}  // namespace tcu::systolic
