// Explicit instantiations of the systolic simulators for the scalar types
// used across the library; keeps template code-gen out of every TU.

#include <complex>
#include <cstdint>

#include "systolic/systolic_array.hpp"

namespace tcu::systolic {

template class SystolicArray<float>;
template class SystolicArray<double>;
template class SystolicArray<std::int32_t>;
template class SystolicArray<std::int64_t>;
template class SystolicArray<std::complex<double>>;

template class OutputStationaryArray<double>;
template class OutputStationaryArray<std::int64_t>;

}  // namespace tcu::systolic
