#pragma once
// Cycle-level simulation of the systolic matrix-multiplication algorithm of
// Section 2.2 / Figure 1 of the paper (the Google-TPU-style schedule).
//
// The array is an s x s grid of processing elements (PEs), s = sqrt(m).
// Execution has two phases:
//
//   1. Weight load: matrix B is pushed into the grid over s cycles so that
//      PE (i, j) ends up holding b[i][j] (weight-stationary).
//   2. Streaming: the rows of the n x s left operand A enter from the left
//      edge, skewed by one cycle per PE row; partial sums flow downward.
//      PE (i, j) receives an `a` from its left neighbour (or the input
//      a[k-i][i] at the left edge at step k), a partial sum `c` from above
//      (or 0 in row 0), computes c += a * b[i][j], and forwards both.
//      The bottom row emits c[r][j] at streaming step r + j + (s - 1);
//      this matches the paper's "p_{sqrt(m)-1, j} outputs c_{i,j} at the
//      end of step sqrt(m) + i + j" up to the 0/1-indexing of steps.
//
// Totals: s load cycles + (n + 2s - 2) streaming cycles, i.e. Theta(n + s)
// per call — the O(n sqrt(m)) *work* of the model is the m PEs running for
// those Theta(n + s) cycles. Tests assert both the schedule and the exact
// cycle counts; this is the reproduction target for experiment FIG1.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/matrix.hpp"

namespace tcu::systolic {

/// Statistics of one load+stream execution.
struct RunStats {
  std::uint64_t load_cycles = 0;       ///< cycles spent loading B (== s)
  std::uint64_t stream_cycles = 0;     ///< cycles spent streaming A
  std::uint64_t first_output_step = 0; ///< streaming step of first C entry
  std::uint64_t last_output_step = 0;  ///< streaming step of last C entry
  std::uint64_t mac_count = 0;         ///< multiply-accumulates performed
  std::uint64_t total_cycles() const { return load_cycles + stream_cycles; }
};

/// Weight-stationary systolic array (TPU style, tall left operand allowed).
template <typename T>
class SystolicArray {
 public:
  explicit SystolicArray(std::size_t s) : s_(s) {
    if (s == 0) throw std::invalid_argument("SystolicArray: s must be >= 1");
    weights_.assign(s * s, T{});
    a_reg_.assign(s * s, T{});
    c_reg_.assign(s * s, T{});
  }

  std::size_t dim() const { return s_; }

  /// Phase 1: push B (s x s) into the grid, one row per cycle.
  /// Returns the number of cycles consumed (always s).
  std::uint64_t load_weights(ConstMatrixView<T> B) {
    if (B.rows != s_ || B.cols != s_) {
      throw std::invalid_argument("SystolicArray: B must be s x s");
    }
    // Simulate the downward shift: at cycle t, row (s-1-t) of B enters the
    // top edge and everything already inside shifts down one row. After s
    // cycles PE (i, j) holds B(i, j).
    std::vector<T> grid(s_ * s_, T{});
    for (std::size_t t = 0; t < s_; ++t) {
      for (std::size_t i = s_; i-- > 1;) {
        for (std::size_t j = 0; j < s_; ++j) {
          grid[i * s_ + j] = grid[(i - 1) * s_ + j];
        }
      }
      const std::size_t src_row = s_ - 1 - t;
      for (std::size_t j = 0; j < s_; ++j) grid[j] = B(src_row, j);
    }
    weights_ = std::move(grid);
    return s_;
  }

  /// Phase 2: stream the rows of A (n x s) through the loaded weights and
  /// collect C = A * B (or C += A * B). C must be n x s.
  RunStats stream(ConstMatrixView<T> A, MatrixView<T> C, bool accumulate) {
    const std::size_t n = A.rows;
    if (A.cols != s_ || C.rows != n || C.cols != s_) {
      throw std::invalid_argument("SystolicArray: stream shape mismatch");
    }
    RunStats stats;
    stats.load_cycles = s_;  // already paid by load_weights; reported here
    if (n == 0) return stats;

    std::fill(a_reg_.begin(), a_reg_.end(), T{});
    std::fill(c_reg_.begin(), c_reg_.end(), T{});
    std::vector<T> a_next(s_ * s_, T{});
    std::vector<T> c_next(s_ * s_, T{});

    const std::uint64_t steps = static_cast<std::uint64_t>(n) + 2 * s_ - 2;
    bool first_seen = false;
    for (std::uint64_t k = 0; k < steps; ++k) {
      for (std::size_t i = 0; i < s_; ++i) {
        for (std::size_t j = 0; j < s_; ++j) {
          // Receive `a`: left edge takes the skewed input a[k-i][i].
          T a{};
          if (j == 0) {
            const std::int64_t row = static_cast<std::int64_t>(k) -
                                     static_cast<std::int64_t>(i);
            if (row >= 0 && row < static_cast<std::int64_t>(n)) {
              a = A(static_cast<std::size_t>(row), i);
            }
          } else {
            a = a_reg_[i * s_ + j - 1];
          }
          // Receive the partial sum from above (0 in the top row).
          const T c_in = (i == 0) ? T{} : c_reg_[(i - 1) * s_ + j];
          a_next[i * s_ + j] = a;
          c_next[i * s_ + j] = c_in + a * weights_[i * s_ + j];
          ++stats.mac_count;
        }
      }
      a_reg_.swap(a_next);
      c_reg_.swap(c_next);
      // Bottom row emits c[r][j] at step k = r + j + (s - 1).
      for (std::size_t j = 0; j < s_; ++j) {
        const std::int64_t r = static_cast<std::int64_t>(k) -
                               static_cast<std::int64_t>(j) -
                               static_cast<std::int64_t>(s_ - 1);
        if (r >= 0 && r < static_cast<std::int64_t>(n)) {
          const auto row = static_cast<std::size_t>(r);
          const T value = c_reg_[(s_ - 1) * s_ + j];
          C(row, j) = accumulate ? C(row, j) + value : value;
          if (!first_seen) {
            stats.first_output_step = k;
            first_seen = true;
          }
          stats.last_output_step = k;
        }
      }
    }
    stats.stream_cycles = steps;
    return stats;
  }

  /// Convenience: load + stream in one call.
  RunStats multiply(ConstMatrixView<T> A, ConstMatrixView<T> B,
                    MatrixView<T> C, bool accumulate = false) {
    const std::uint64_t load = load_weights(B);
    RunStats stats = stream(A, C, accumulate);
    stats.load_cycles = load;
    return stats;
  }

 private:
  std::size_t s_;
  std::vector<T> weights_;
  std::vector<T> a_reg_;
  std::vector<T> c_reg_;
};

/// Output-stationary systolic array (NVIDIA-TC-like: both operands are
/// percolated through the grid, so the weight matrix cannot be reused
/// across calls — the hardware motivation for the *weak* TCU model).
/// Supports square s x s operands only.
template <typename T>
class OutputStationaryArray {
 public:
  explicit OutputStationaryArray(std::size_t s) : s_(s) {
    if (s == 0) {
      throw std::invalid_argument("OutputStationaryArray: s must be >= 1");
    }
  }

  std::size_t dim() const { return s_; }

  /// C = A*B (or +=). Returns total cycles: the 3s-2 wavefront steps plus
  /// s drain cycles to move results out of the grid.
  RunStats multiply(ConstMatrixView<T> A, ConstMatrixView<T> B,
                    MatrixView<T> C, bool accumulate = false) {
    if (A.rows != s_ || A.cols != s_ || B.rows != s_ || B.cols != s_ ||
        C.rows != s_ || C.cols != s_) {
      throw std::invalid_argument("OutputStationaryArray: operands must be "
                                  "s x s");
    }
    RunStats stats;
    std::vector<T> acc(s_ * s_, T{});
    const std::uint64_t steps = 3 * s_ - 2;
    for (std::uint64_t t = 0; t < steps; ++t) {
      // At step t, PE (i, j) performs the k-th MAC where k = t - i - j.
      for (std::size_t i = 0; i < s_; ++i) {
        for (std::size_t j = 0; j < s_; ++j) {
          const std::int64_t k = static_cast<std::int64_t>(t) -
                                 static_cast<std::int64_t>(i) -
                                 static_cast<std::int64_t>(j);
          if (k >= 0 && k < static_cast<std::int64_t>(s_)) {
            const auto kk = static_cast<std::size_t>(k);
            acc[i * s_ + j] += A(i, kk) * B(kk, j);
            ++stats.mac_count;
          }
        }
      }
    }
    for (std::size_t i = 0; i < s_; ++i) {
      for (std::size_t j = 0; j < s_; ++j) {
        C(i, j) = accumulate ? C(i, j) + acc[i * s_ + j] : acc[i * s_ + j];
      }
    }
    stats.stream_cycles = steps;
    stats.load_cycles = s_;  // drain phase
    stats.first_output_step = 2 * (s_ - 1);
    stats.last_output_step = steps - 1;
    return stats;
  }

 private:
  std::size_t s_;
};

}  // namespace tcu::systolic
