#include "nn/layers.hpp"

#include <stdexcept>

#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"

namespace tcu::nn {

namespace {

/// Bias + optional ReLU epilogue; the caller charges the CPU work.
void apply_epilogue(Matrix<double>& out, const std::vector<double>& bias,
                    bool relu) {
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      double v = out(i, j) + bias[j];
      if (relu && v < 0.0) v = 0.0;
      out(i, j) = v;
    }
  }
}

}  // namespace

DenseLayer::DenseLayer(Matrix<double> weights, std::vector<double> bias)
    : weights_(std::move(weights)), bias_(std::move(bias)) {
  if (bias_.size() != weights_.cols()) {
    throw std::invalid_argument("DenseLayer: bias size must match outputs");
  }
}

Matrix<double> DenseLayer::forward(Device<double>& dev,
                                   ConstMatrixView<double> activations,
                                   bool relu) const {
  if (activations.cols != weights_.rows()) {
    throw std::invalid_argument("DenseLayer: activation width mismatch");
  }
  Matrix<double> out =
      linalg::matmul_tcu(dev, activations, weights_.view());
  apply_epilogue(out, bias_, relu);
  dev.charge_cpu(out.rows() * out.cols() * (relu ? 2 : 1));
  return out;
}

Matrix<double> DenseLayer::forward(DevicePool<double>& pool,
                                   ConstMatrixView<double> activations,
                                   bool relu) const {
  PoolExecutor<double> exec(pool);
  return forward(exec, activations, relu);
}

Matrix<double> DenseLayer::forward(PoolExecutor<double>& exec,
                                   ConstMatrixView<double> activations,
                                   bool relu,
                                   const linalg::PoolMatmulOptions& opts)
    const {
  if (activations.cols != weights_.rows()) {
    throw std::invalid_argument("DenseLayer: activation width mismatch");
  }
  Matrix<double> out =
      linalg::matmul_tcu_pool(exec, activations, weights_.view(), opts);
  apply_epilogue(out, bias_, relu);
  exec.pool().charge_cpu(out.rows() * out.cols() * (relu ? 2 : 1));
  return out;
}

void Mlp::add_layer(DenseLayer layer) {
  if (!layers_.empty() &&
      layers_.back().out_features() != layer.in_features()) {
    throw std::invalid_argument("Mlp: layer width mismatch");
  }
  layers_.push_back(std::move(layer));
}

Matrix<double> Mlp::forward(Device<double>& dev,
                            ConstMatrixView<double> batch) const {
  if (layers_.empty()) throw std::invalid_argument("Mlp: no layers");
  Matrix<double> cur = materialize(batch);
  dev.charge_cpu(batch.rows * batch.cols);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const bool relu = l + 1 < layers_.size();
    cur = layers_[l].forward(dev, cur.view(), relu);
  }
  return cur;
}

Matrix<double> Mlp::forward(DevicePool<double>& pool,
                            ConstMatrixView<double> batch) const {
  if (layers_.empty()) throw std::invalid_argument("Mlp: no layers");
  PoolExecutor<double> exec(pool);  // one spawn for the whole pass
  return forward(exec, batch);
}

Matrix<double> Mlp::forward(PoolExecutor<double>& exec,
                            ConstMatrixView<double> batch,
                            const linalg::PoolMatmulOptions& opts) const {
  if (layers_.empty()) throw std::invalid_argument("Mlp: no layers");
  Matrix<double> cur = materialize(batch);
  exec.pool().charge_cpu(batch.rows * batch.cols);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const bool relu = l + 1 < layers_.size();
    cur = layers_[l].forward(exec, cur.view(), relu, opts);
  }
  return cur;
}

namespace {

void check_conv_shapes(ConstMatrixView<double> input, std::size_t channels,
                       ConstMatrixView<double> filters, std::size_t kh,
                       std::size_t kw) {
  if (channels == 0 || input.rows % channels != 0) {
    throw std::invalid_argument("conv2d: input rows not divisible by "
                                "channel count");
  }
  const std::size_t h = input.rows / channels;
  if (filters.cols != channels * kh * kw) {
    throw std::invalid_argument("conv2d: filter bank width mismatch");
  }
  if (kh == 0 || kw == 0 || kh > h || kw > input.cols) {
    throw std::invalid_argument("conv2d: kernel larger than input");
  }
}

}  // namespace

Matrix<double> conv2d_tcu(Device<double>& dev, ConstMatrixView<double> input,
                          std::size_t channels_in,
                          ConstMatrixView<double> filters, std::size_t kh,
                          std::size_t kw) {
  check_conv_shapes(input, channels_in, filters, kh, kw);
  const std::size_t h = input.rows / channels_in;
  const std::size_t w = input.cols;
  const std::size_t oh = h - kh + 1;
  const std::size_t ow = w - kw + 1;
  const std::size_t patch = channels_in * kh * kw;

  // im2col: one row per output position, one column per filter tap.
  Matrix<double> cols(oh * ow, patch);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      std::size_t t = 0;
      for (std::size_t c = 0; c < channels_in; ++c) {
        for (std::size_t dy = 0; dy < kh; ++dy) {
          for (std::size_t dx = 0; dx < kw; ++dx) {
            cols(oy * ow + ox, t++) = input(c * h + oy + dy, ox + dx);
          }
        }
      }
    }
  }
  dev.charge_cpu(oh * ow * patch);

  // Tall GEMM: every output position streams past the resident filters.
  Matrix<double> bank = transposed(filters);  // (patch x channels_out)
  dev.charge_cpu(filters.rows * filters.cols);
  Matrix<double> gem = linalg::matmul_tcu(dev, cols.view(), bank.view());

  // Re-layout to (channels_out * oh) x ow.
  const std::size_t channels_out = filters.rows;
  Matrix<double> out(channels_out * oh, ow);
  for (std::size_t c = 0; c < channels_out; ++c) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        out(c * oh + oy, ox) = gem(oy * ow + ox, c);
      }
    }
  }
  dev.charge_cpu(channels_out * oh * ow);
  return out;
}

Matrix<double> conv2d_ram(ConstMatrixView<double> input,
                          std::size_t channels_in,
                          ConstMatrixView<double> filters, std::size_t kh,
                          std::size_t kw, Counters& counters) {
  check_conv_shapes(input, channels_in, filters, kh, kw);
  const std::size_t h = input.rows / channels_in;
  const std::size_t w = input.cols;
  const std::size_t oh = h - kh + 1;
  const std::size_t ow = w - kw + 1;
  const std::size_t channels_out = filters.rows;
  Matrix<double> out(channels_out * oh, ow, 0.0);
  std::uint64_t ops = 0;
  for (std::size_t c = 0; c < channels_out; ++c) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        std::size_t t = 0;
        for (std::size_t ci = 0; ci < channels_in; ++ci) {
          for (std::size_t dy = 0; dy < kh; ++dy) {
            for (std::size_t dx = 0; dx < kw; ++dx) {
              acc += filters(c, t++) * input(ci * h + oy + dy, ox + dx);
              ++ops;
            }
          }
        }
        out(c * oh + oy, ox) = acc;
      }
    }
  }
  counters.charge_cpu(ops);
  return out;
}

}  // namespace tcu::nn
