#include "nn/layers.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"

namespace tcu::nn {

namespace {

/// Bias + optional ReLU epilogue; the caller charges the CPU work.
void apply_epilogue(Matrix<double>& out, const std::vector<double>& bias,
                    bool relu) {
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      double v = out(i, j) + bias[j];
      if (relu && v < 0.0) v = 0.0;
      out(i, j) = v;
    }
  }
}

}  // namespace

DenseLayer::DenseLayer(Matrix<double> weights, std::vector<double> bias)
    : weights_(std::move(weights)), bias_(std::move(bias)) {
  if (bias_.size() != weights_.cols()) {
    throw std::invalid_argument("DenseLayer: bias size must match outputs");
  }
}

const TiledMatrix<double>& DenseLayer::tiled_weights(std::size_t s) const {
  // One-time layout preprocessing per tile dimension (the tile dim is a
  // device property, unknown at construction); not charged as model CPU
  // work, like the weights' own initialization. Rebuilt only if the same
  // layer later serves a device with a different m.
  if (packed_.tile_dim() != s || packed_.empty()) {
    packed_ = TiledMatrix<double>::pack(weights_.view(), s);
  }
  return packed_;
}

linalg::TileKeyFn DenseLayer::weights_key() const {
  return [this](std::size_t kb, std::size_t jb) -> std::uint64_t {
    return static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(&weights_(kb, jb)));
  };
}

Matrix<double> DenseLayer::forward(Device<double>& dev,
                                   ConstMatrixView<double> activations,
                                   bool relu) const {
  if (activations.cols != weights_.rows()) {
    throw std::invalid_argument("DenseLayer: activation width mismatch");
  }
  // The weights are the layer's long-lived resident operand, so their
  // tiles carry identity keys (row-major storage addresses on every
  // path): repeated forwards on a device whose cache covers the weight
  // tiles skip the re-load latency, the same contract the executor path
  // realizes per lane. Aligned shapes stream the cached tile-major
  // weights — each resident tile is a contiguous block — with call
  // structure and charges identical to the row-major fast path; ragged
  // shapes keep the scratch path's accounting.
  Matrix<double> out(activations.rows, weights_.cols(), 0.0);
  if (tile_aligned(dev.tile_dim(), activations.rows)) {
    linalg::matmul_tcu_resident_into(dev, activations,
                                     tiled_weights(dev.tile_dim()),
                                     out.view(), weights_key());
  } else {
    linalg::matmul_tcu_resident_into(dev, activations, weights_.view(),
                                     out.view(), weights_key());
  }
  apply_epilogue(out, bias_, relu);
  dev.charge_cpu(out.rows() * out.cols() * (relu ? 2 : 1));
  return out;
}

Matrix<double> DenseLayer::forward(DevicePool<double>& pool,
                                   ConstMatrixView<double> activations,
                                   bool relu) const {
  PoolExecutor<double> exec(pool);
  return forward(exec, activations, relu);
}

Matrix<double> DenseLayer::forward(PoolExecutor<double>& exec,
                                   ConstMatrixView<double> activations,
                                   bool relu,
                                   const linalg::PoolMatmulOptions& opts)
    const {
  if (activations.cols != weights_.rows()) {
    throw std::invalid_argument("DenseLayer: activation width mismatch");
  }
  const std::size_t s = exec.pool().unit(0).tile_dim();
  Matrix<double> out(activations.rows, weights_.cols(), 0.0);
  // Aligned plain-strip deals stream the cached tile-major weights
  // (contiguous resident tiles) under the same keys and charges; the
  // chunked/split/ragged schedules keep the row-major dealer.
  if (tile_aligned(s, activations.rows) && !opts.split_chains &&
      opts.row_chunks <= 1) {
    linalg::PoolMatmulOptions tiled_opts = opts;
    if (!tiled_opts.tile_key) tiled_opts.tile_key = weights_key();
    linalg::matmul_tcu_pool_into(exec, activations, tiled_weights(s),
                                 out.view(), tiled_opts);
  } else {
    linalg::matmul_tcu_pool_into(exec, activations, weights_.view(),
                                 out.view(), opts);
  }
  apply_epilogue(out, bias_, relu);
  exec.pool().charge_cpu(out.rows() * out.cols() * (relu ? 2 : 1));
  return out;
}

void DenseLayer::forward_epoch(PoolExecutor<double>& exec,
                               ConstMatrixView<double> activations,
                               MatrixView<double> out, bool relu,
                               const linalg::PoolMatmulOptions& opts) const {
  if (activations.cols != weights_.rows()) {
    throw std::invalid_argument("DenseLayer: activation width mismatch");
  }
  if (out.rows != activations.rows || out.cols != weights_.cols()) {
    throw std::invalid_argument("DenseLayer: output shape mismatch");
  }
  const std::size_t tile = exec.pool().unit(0).tile_dim();
  std::vector<TaskTicket> tickets;
  if (tile_aligned(tile, activations.rows) && !opts.split_chains) {
    linalg::PoolMatmulOptions tiled_opts = opts;
    if (!tiled_opts.tile_key) tiled_opts.tile_key = weights_key();
    tickets = linalg::matmul_tcu_pool_strips(
        exec, activations, tiled_weights(tile), out, tiled_opts);
  } else {
    tickets = linalg::matmul_tcu_pool_strips(exec, activations,
                                             weights_.view(), out, opts);
  }

  // One epilogue task per output strip, gated on exactly that strip's
  // product: columns [jb, jb+jw) of `out` are final once the ticket
  // retires, and no other strip touches them. The per-strip CPU charges
  // sum to the barrier path's shared-CPU epilogue charge.
  const std::size_t s = exec.pool().unit(0).tile_dim();
  const std::size_t rows = out.rows;
  const std::size_t cols = out.cols;
  for (std::size_t jb = 0; jb < cols; jb += s) {
    const std::size_t jw = std::min(s, cols - jb);
    const std::uint64_t cost =
        static_cast<std::uint64_t>(rows) * jw * (relu ? 2 : 1);
    exec.submit_cpu(
        cost, TaskDeps{{tickets[jb / s].serial}},
        [out, this, relu, jb, jw, rows, cost](Device<double>& unit) {
          for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = jb; j < jb + jw; ++j) {
              double v = out(i, j) + bias_[j];
              if (relu && v < 0.0) v = 0.0;
              out(i, j) = v;
            }
          }
          unit.charge_cpu(cost);
        });
  }
  exec.join_epoch();
}

void Mlp::add_layer(DenseLayer layer) {
  if (!layers_.empty() &&
      layers_.back().out_features() != layer.in_features()) {
    throw std::invalid_argument("Mlp: layer width mismatch");
  }
  layers_.push_back(std::move(layer));
}

Matrix<double> Mlp::forward(Device<double>& dev,
                            ConstMatrixView<double> batch) const {
  if (layers_.empty()) throw std::invalid_argument("Mlp: no layers");
  Matrix<double> cur = materialize(batch);
  dev.charge_cpu(batch.rows * batch.cols);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const bool relu = l + 1 < layers_.size();
    cur = layers_[l].forward(dev, cur.view(), relu);
  }
  return cur;
}

Matrix<double> Mlp::forward(DevicePool<double>& pool,
                            ConstMatrixView<double> batch) const {
  if (layers_.empty()) throw std::invalid_argument("Mlp: no layers");
  PoolExecutor<double> exec(pool);  // one spawn for the whole pass
  return forward(exec, batch);
}

Matrix<double> Mlp::forward(PoolExecutor<double>& exec,
                            ConstMatrixView<double> batch,
                            const linalg::PoolMatmulOptions& opts,
                            ExecMode mode) const {
  if (layers_.empty()) throw std::invalid_argument("Mlp: no layers");
  if (mode == ExecMode::kBarrier) {
    Matrix<double> cur = materialize(batch);
    exec.pool().charge_cpu(batch.rows * batch.cols);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      const bool relu = l + 1 < layers_.size();
      cur = layers_[l].forward(exec, cur.view(), relu, opts);
    }
    return cur;
  }

  // Epoch pass: every layer submits its strips and per-strip epilogues
  // and opens a new epoch; one strict join closes the whole pass. The
  // activation matrices are arena-held because in-flight tasks reference
  // them long after the submitting loop iteration has moved on.
  auto cur = std::make_shared<Matrix<double>>(materialize(batch));
  exec.pool().charge_cpu(batch.rows * batch.cols);
  std::vector<std::shared_ptr<Matrix<double>>> arena{cur};
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const bool relu = l + 1 < layers_.size();
    auto next = std::make_shared<Matrix<double>>(
        cur->rows(), layers_[l].out_features(), 0.0);
    layers_[l].forward_epoch(exec, cur->view().as_const(), next->view(),
                             relu, opts);
    arena.push_back(next);
    cur = std::move(next);
  }
  exec.join();
  return std::move(*cur);
}

namespace {

void check_conv_shapes(ConstMatrixView<double> input, std::size_t channels,
                       ConstMatrixView<double> filters, std::size_t kh,
                       std::size_t kw) {
  if (channels == 0 || input.rows % channels != 0) {
    throw std::invalid_argument("conv2d: input rows not divisible by "
                                "channel count");
  }
  const std::size_t h = input.rows / channels;
  if (filters.cols != channels * kh * kw) {
    throw std::invalid_argument("conv2d: filter bank width mismatch");
  }
  if (kh == 0 || kw == 0 || kh > h || kw > input.cols) {
    throw std::invalid_argument("conv2d: kernel larger than input");
  }
}

/// The im2col lowering, laid out tile-aligned: `cols` (output positions x
/// filter taps) and `bank` (taps x output channels) are zero-padded up to
/// multiples of sqrt(m), so the GEMM below is one aligned Theorem 2
/// schedule on every path (the padding contributes exact zeros and only
/// lower-order CPU work, charged by the caller via `cpu_ops`).
struct ConvLowering {
  std::size_t h = 0, w = 0, oh = 0, ow = 0, patch = 0, channels_out = 0;
  std::size_t rows_p = 0, patch_p = 0, cout_p = 0;  // tile-aligned shape
  Matrix<double> cols, bank;
  std::uint64_t cpu_ops = 0;  ///< lowering cost, charged by the caller
};

ConvLowering lower_conv(std::size_t s, ConstMatrixView<double> input,
                        std::size_t channels_in,
                        ConstMatrixView<double> filters, std::size_t kh,
                        std::size_t kw) {
  check_conv_shapes(input, channels_in, filters, kh, kw);
  ConvLowering lo;
  lo.h = input.rows / channels_in;
  lo.w = input.cols;
  lo.oh = lo.h - kh + 1;
  lo.ow = lo.w - kw + 1;
  lo.patch = channels_in * kh * kw;
  lo.channels_out = filters.rows;
  auto pad = [s](std::size_t n) { return ((n + s - 1) / s) * s; };
  lo.rows_p = pad(lo.oh * lo.ow);
  lo.patch_p = pad(lo.patch);
  lo.cout_p = pad(lo.channels_out);

  // im2col: one row per output position, one column per filter tap.
  lo.cols = Matrix<double>(lo.rows_p, lo.patch_p, 0.0);
  for (std::size_t oy = 0; oy < lo.oh; ++oy) {
    for (std::size_t ox = 0; ox < lo.ow; ++ox) {
      std::size_t t = 0;
      for (std::size_t c = 0; c < channels_in; ++c) {
        for (std::size_t dy = 0; dy < kh; ++dy) {
          for (std::size_t dx = 0; dx < kw; ++dx) {
            lo.cols(oy * lo.ow + ox, t++) = input(c * lo.h + oy + dy, ox + dx);
          }
        }
      }
    }
  }
  lo.bank = Matrix<double>(lo.patch_p, lo.cout_p, 0.0);
  for (std::size_t c = 0; c < lo.channels_out; ++c) {
    for (std::size_t t = 0; t < lo.patch; ++t) lo.bank(t, c) = filters(c, t);
  }
  lo.cpu_ops = static_cast<std::uint64_t>(lo.rows_p) * lo.patch_p +
               static_cast<std::uint64_t>(lo.patch_p) * lo.cout_p;
  return lo;
}

/// Identity of the bank tile at origin (kb, jb), keyed on the caller's
/// `filters` storage — not on the per-call bank repack — so residency
/// survives across conv2d calls against the same filters. Tile origins
/// are clamped into the real bank region by construction (every aligned
/// tile origin satisfies kb < patch, jb < channels_out), and bank(t, c)
/// mirrors filters(c, t), so the keyed element is &filters(jb, kb).
linalg::TileKeyFn conv_bank_key(ConstMatrixView<double> filters) {
  return [filters](std::size_t kb, std::size_t jb) -> std::uint64_t {
    return static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(&filters(jb, kb)));
  };
}

/// Fold the aligned GEMM result back to (channels_out * oh) x ow.
Matrix<double> conv_relayout(const ConvLowering& lo,
                             const Matrix<double>& gem) {
  Matrix<double> out(lo.channels_out * lo.oh, lo.ow);
  for (std::size_t c = 0; c < lo.channels_out; ++c) {
    for (std::size_t oy = 0; oy < lo.oh; ++oy) {
      for (std::size_t ox = 0; ox < lo.ow; ++ox) {
        out(c * lo.oh + oy, ox) = gem(oy * lo.ow + ox, c);
      }
    }
  }
  return out;
}

}  // namespace

Matrix<double> conv2d_tcu(Device<double>& dev, ConstMatrixView<double> input,
                          std::size_t channels_in,
                          ConstMatrixView<double> filters, std::size_t kh,
                          std::size_t kw) {
  ConvLowering lo = lower_conv(dev.tile_dim(), input, channels_in, filters,
                               kh, kw);
  dev.charge_cpu(lo.cpu_ops);

  // Tall GEMM: every output position streams past the resident filters,
  // whose tiles carry stable identity keys — the bank's load latency is
  // charged once per tile load, not per call touching it.
  Matrix<double> gem(lo.rows_p, lo.cout_p, 0.0);
  linalg::matmul_tcu_resident_into(dev, lo.cols.view(), lo.bank.view(),
                                   gem.view(), conv_bank_key(filters));

  Matrix<double> out = conv_relayout(lo, gem);
  dev.charge_cpu(lo.channels_out * lo.oh * lo.ow);
  return out;
}

Matrix<double> conv2d_tcu_pool(PoolExecutor<double>& exec,
                               ConstMatrixView<double> input,
                               std::size_t channels_in,
                               ConstMatrixView<double> filters,
                               std::size_t kh, std::size_t kw,
                               const linalg::PoolMatmulOptions& opts) {
  DevicePool<double>& pool = exec.pool();
  const std::size_t s = pool.unit(0).tile_dim();
  ConvLowering lo = lower_conv(s, input, channels_in, filters, kh, kw);
  pool.charge_cpu(lo.cpu_ops);

  Matrix<double> gem(lo.rows_p, lo.cout_p, 0.0);

  // One shared dealer serves both modes: split_chains fans the bank out
  // as (tile, strip) tasks with a CPU combine; otherwise the im2col rows
  // are split into up to p tile-aligned chunks (the DFT levels' schedule)
  // so the product parallelizes even with fewer output strips than
  // units. Bank tiles are keyed on the caller's filters storage either
  // way. row_chunks 0 ("auto") becomes the unit count; explicit values
  // (including 1, the one-task-per-strip schedule) are honored.
  linalg::PoolMatmulOptions gemm_opts = opts;
  gemm_opts.tile_key = conv_bank_key(filters);
  if (gemm_opts.row_chunks == 0) gemm_opts.row_chunks = pool.size();
  linalg::matmul_tcu_pool_into(exec, lo.cols.view(), lo.bank.view(),
                               gem.view(), gemm_opts);

  Matrix<double> out = conv_relayout(lo, gem);
  pool.charge_cpu(lo.channels_out * lo.oh * lo.ow);
  return out;
}

Matrix<double> conv2d_tcu_pool(DevicePool<double>& pool,
                               ConstMatrixView<double> input,
                               std::size_t channels_in,
                               ConstMatrixView<double> filters,
                               std::size_t kh, std::size_t kw,
                               const linalg::PoolMatmulOptions& opts) {
  PoolExecutor<double> exec(pool);
  return conv2d_tcu_pool(exec, input, channels_in, filters, kh, kw, opts);
}

Matrix<double> conv2d_ram(ConstMatrixView<double> input,
                          std::size_t channels_in,
                          ConstMatrixView<double> filters, std::size_t kh,
                          std::size_t kw, Counters& counters) {
  check_conv_shapes(input, channels_in, filters, kh, kw);
  const std::size_t h = input.rows / channels_in;
  const std::size_t w = input.cols;
  const std::size_t oh = h - kh + 1;
  const std::size_t ow = w - kw + 1;
  const std::size_t channels_out = filters.rows;
  Matrix<double> out(channels_out * oh, ow, 0.0);
  std::uint64_t ops = 0;
  for (std::size_t c = 0; c < channels_out; ++c) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        std::size_t t = 0;
        for (std::size_t ci = 0; ci < channels_in; ++ci) {
          for (std::size_t dy = 0; dy < kh; ++dy) {
            for (std::size_t dx = 0; dx < kw; ++dx) {
              acc += filters(c, t++) * input(ci * h + oy + dy, ox + dx);
              ++ops;
            }
          }
        }
        out(c * oh + oy, ox) = acc;
      }
    }
  }
  counters.charge_cpu(ops);
  return out;
}

}  // namespace tcu::nn
