#pragma once
// Neural-network inference layers on the (m, l)-TCU model.
//
// The paper's opening motivation: tensor units exist because dense layers
// and convolutions *are* matrix products, with the weight matrix resident
// (model) and activations streamed (§3, asymmetry property: "the same
// model can be applied to k vectors"). This module expresses those native
// workloads against the simulated device, closing the loop between the
// model's design rationale and its algorithmics:
//
//   * `DenseLayer` — y = x W + b for a batch of inputs: the weight tiles
//     stay resident while the whole batch streams through (one tall call
//     per weight tile, exactly the TPU workflow of §2.1);
//   * `conv2d_tcu` — convolutional layer via im2col + tall GEMM, the
//     standard lowering that TPUs/TCs execute;
//   * ReLU and bias epilogues charged as CPU work.

#include <cstdint>
#include <vector>

#include "core/device.hpp"
#include "core/matrix.hpp"
#include "core/pool.hpp"
#include "linalg/parallel.hpp"

namespace tcu::nn {

/// Fully connected layer: weights (in x out), bias (out).
class DenseLayer {
 public:
  DenseLayer(Matrix<double> weights, std::vector<double> bias);

  std::size_t in_features() const { return weights_.rows(); }
  std::size_t out_features() const { return weights_.cols(); }

  /// y = activations x W + b for a (batch x in) input, streamed through
  /// the device weight-stationarily; optional ReLU epilogue.
  Matrix<double> forward(Device<double>& dev,
                         ConstMatrixView<double> activations,
                         bool relu = true) const;

  /// Multi-unit forward: output strips of the weight product run across
  /// the pool's worker threads for any shape (ragged layers are padded in
  /// worker-local scratch); epilogue is shared CPU work. Spawns a
  /// throwaway executor — prefer the PoolExecutor overload in loops.
  Matrix<double> forward(DevicePool<double>& pool,
                         ConstMatrixView<double> activations,
                         bool relu = true) const;

  /// Multi-unit forward over a caller-owned persistent executor: no
  /// thread churn, and every weight strip declares its full B-tile chain,
  /// so repeated forwards of the same layer skip the weight re-load
  /// latency on every tile still resident from the previous batch (a
  /// chain of k tiles stays fully hot on its lane once the units'
  /// `resident_tiles` capacity is >= k). `opts` tunes the dealing — e.g.
  /// `{.affinity = true, .split_chains = true}` splits deep chains at
  /// tile granularity (CPU combine of partials) when capacity < k.
  Matrix<double> forward(PoolExecutor<double>& exec,
                         ConstMatrixView<double> activations,
                         bool relu = true,
                         const linalg::PoolMatmulOptions& opts = {
                             .affinity = true}) const;

  /// Epoch-mode forward: submits the weight product one task per output
  /// strip plus a per-strip bias/ReLU epilogue that depends only on its
  /// own strip's ticket — the epilogue of a finished strip overlaps the
  /// remaining strips' products — then opens a new epoch (join_epoch) so
  /// the next layer's reads are fence-ordered. No strict join: `out` is
  /// entirely task-written and must only be read (and `activations`/`out`
  /// only freed) after the caller's join(). Aggregate counters equal the
  /// barrier forward's — the epilogue CPU moves from the shared counter
  /// to the executing units, which is what lets a deep pass scale past
  /// the serial-epilogue Amdahl bound.
  void forward_epoch(PoolExecutor<double>& exec,
                     ConstMatrixView<double> activations,
                     MatrixView<double> out, bool relu,
                     const linalg::PoolMatmulOptions& opts = {
                         .affinity = true}) const;

  /// The weights packed tile-major for tile dimension `s` (sqrt of the
  /// device's m), built lazily on first use and cached — packed tile
  /// addresses are stable across forwards, and the resident keys stay the
  /// row-major weight addresses either way, so residency identity is
  /// path-invariant. Call from the submit thread only (same discipline as
  /// forward itself).
  const TiledMatrix<double>& tiled_weights(std::size_t s) const;

 private:
  /// Resident-tile identity of weight tile origin (kb, jb): the row-major
  /// weights storage address, shared by the row-major and tile-major
  /// paths so hits survive path changes.
  linalg::TileKeyFn weights_key() const;

  /// True when every forward dimension is tile-aligned for `s`, i.e. the
  /// tile-major fast path charges exactly what the row-major fast path
  /// does (the ragged scratch path keeps its own accounting).
  bool tile_aligned(std::size_t s, std::size_t batch_rows) const {
    return batch_rows % s == 0 && weights_.rows() % s == 0 &&
           weights_.cols() % s == 0;
  }

  Matrix<double> weights_;
  std::vector<double> bias_;
  mutable TiledMatrix<double> packed_;  ///< tile-major weights cache
};

/// A sequential multilayer perceptron.
class Mlp {
 public:
  void add_layer(DenseLayer layer);
  std::size_t depth() const { return layers_.size(); }

  /// Forward pass of a batch; ReLU between layers, linear final layer.
  Matrix<double> forward(Device<double>& dev,
                         ConstMatrixView<double> batch) const;

  /// Forward pass across a multi-unit pool (layers stay sequential; each
  /// layer's weight product parallelizes over output strips). One
  /// executor serves the whole forward, so thread startup is paid once
  /// per pass, not once per layer.
  Matrix<double> forward(DevicePool<double>& pool,
                         ConstMatrixView<double> batch) const;

  /// Forward pass over a caller-owned persistent executor: an inference
  /// server keeps one executor alive across requests and pays thread
  /// startup never and weight-tile load latency only on first touch —
  /// with enough `resident_tiles` capacity, every layer's whole chain of
  /// weight tiles stays resident on its lane across requests. `opts` is
  /// forwarded to every layer's strip dealing (see DenseLayer::forward).
  ///
  /// `mode` selects the pass schedule. `kEpoch` (default since the
  /// bench_residency records were re-anchored under the epoch dealer):
  /// layers run as one non-barrier round — per-strip epilogue tasks
  /// depend on their own strip's ticket, consecutive layers are
  /// separated by virtual barriers (join_epoch), and one strict join
  /// closes the pass. `kBarrier` (the historical schedule, still fully
  /// supported and tested): each layer strict-joins and runs its
  /// epilogue on the shared CPU. Outputs are bit-identical and aggregate
  /// counters equal in both modes; per-unit cpu_ops differ (epoch
  /// charges epilogues to the executing units), which is what un-bounds
  /// multi-unit speedup from the serial epilogue.
  Matrix<double> forward(PoolExecutor<double>& exec,
                         ConstMatrixView<double> batch,
                         const linalg::PoolMatmulOptions& opts = {
                             .affinity = true},
                         ExecMode mode = ExecMode::kEpoch) const;

 private:
  std::vector<DenseLayer> layers_;
};

/// 2-D convolution (valid padding, stride 1) of `channels_in` feature
/// maps with `channels_out` filters of size kh x kw, via im2col + GEMM.
/// input:  (channels_in) matrices of h x w stacked vertically
///         ((channels_in * h) x w);
/// filters: (channels_out) x (channels_in * kh * kw) row-major bank;
/// output: (channels_out * oh) x ow with oh = h-kh+1, ow = w-kw+1.
///
/// The filter bank is the resident weight: its tiles carry identity keys
/// derived from the `filters` storage (stable across calls even though
/// the im2col bank repack is rebuilt per call), so the bank's load
/// latency is charged once per tile while it stays resident — in the
/// weak model the square calls of one tall stream share their tile's
/// load, and repeated layers against the same filters hit across calls.
/// The im2col matrix and bank are laid out tile-aligned (zero padding,
/// charged as CPU work), so serial and pool paths share one aligned
/// schedule.
Matrix<double> conv2d_tcu(Device<double>& dev, ConstMatrixView<double> input,
                          std::size_t channels_in,
                          ConstMatrixView<double> filters, std::size_t kh,
                          std::size_t kw);

/// Multi-unit convolution over a caller-owned persistent executor: the
/// im2col row strips are dealt across the pool's lanes, each declaring
/// the filter-bank tile chain of its output strip, so strips land on the
/// lane already holding their tiles and each bank tile's load is paid
/// once per lane while resident. Outputs are bit-identical to
/// `conv2d_tcu` at every unit count (row chunks preserve every FP
/// accumulation order); aggregate counters match modulo the documented
/// chunked-call latency split — `latency_time + latency_saved -
/// serial.latency_time == (calls - serial.tensor_calls) * l`, with a
/// 1-unit pool matching serial in every field. `opts.split_chains`
/// instead deals one task per (bank tile, output strip) with a CPU
/// combine, serving banks deeper than the tile cache (see
/// PoolMatmulOptions); `{.affinity = false}` is the untagged baseline.
Matrix<double> conv2d_tcu_pool(PoolExecutor<double>& exec,
                               ConstMatrixView<double> input,
                               std::size_t channels_in,
                               ConstMatrixView<double> filters,
                               std::size_t kh, std::size_t kw,
                               const linalg::PoolMatmulOptions& opts = {
                                   .affinity = true});

/// Same, with a throwaway executor spawned for the call.
Matrix<double> conv2d_tcu_pool(DevicePool<double>& pool,
                               ConstMatrixView<double> input,
                               std::size_t channels_in,
                               ConstMatrixView<double> filters,
                               std::size_t kh, std::size_t kw,
                               const linalg::PoolMatmulOptions& opts = {
                                   .affinity = true});

/// RAM reference for conv2d (direct sliding window), charged.
Matrix<double> conv2d_ram(ConstMatrixView<double> input,
                          std::size_t channels_in,
                          ConstMatrixView<double> filters, std::size_t kh,
                          std::size_t kw, Counters& counters);

}  // namespace tcu::nn
