#pragma once
// Discrete Fourier Transform in the (m, l)-TCU model (§4.5, Theorem 7).
//
// The Cooley-Tukey recursion is run with n1 = sqrt(m): the input vector is
// arranged as an n1 x n2 matrix (row-major); all column DFTs of one
// recursion level are computed by a single *tall* tensor product with the
// Fourier matrix W_{n1} (latency paid once per level), entries are
// multiplied by twiddle factors, and the rows are transformed recursively.
// Total: O((n + l) log_m n).
//
// Engineering extensions beyond the paper's statement (documented in
// DESIGN.md):
//   * batched transforms — a b x len matrix of b independent vectors is
//     transformed with the same number of tensor calls as one vector,
//     which is exactly the "concurrent DFTs via tall left matrices" trick
//     Lemma 1 (stencils) relies on;
//   * arbitrary lengths — composite lengths split by the largest factor
//     <= sqrt(m); prime lengths fall back to Bluestein's chirp-z reduction
//     onto a power-of-two circular convolution;
//   * inverse transforms via conjugation, 2-D transforms, and circular
//     convolution through the convolution theorem (used by §4.6 stencils).
//
// The device operates natively on complex words; Section 4.5's remark
// reduces this to a real device with constant slowdown (see
// core/complex_gemm.hpp and the ABL2 ablation bench).

#include <complex>
#include <cstdint>
#include <vector>

#include "core/device.hpp"
#include "core/matrix.hpp"
#include "core/pool.hpp"

namespace tcu::dft {

using Complex = std::complex<double>;
using CVec = std::vector<Complex>;
using CplxDevice = Device<Complex>;

/// Key namespace of the Cooley-Tukey level tiles (see make_tile_key): the
/// tile of a level is the Fourier matrix W_n zero-padded to the device
/// tile, whose content is fully determined by n — so
/// `make_tile_key(kDftTileTag, n)` is a stable identity shared by every
/// level, call, and transform direction that uses W_n.
inline constexpr std::uint16_t kDftTileTag = 0xD517;

/// Tuning for the batched-transform pipelines.
struct DftOptions {
  /// Tag each level's Fourier tile with its symbolic content key and
  /// issue `gemm_resident` instead of untagged `gemm`, so consecutive
  /// levels sharing W_n (every level of a smooth length splits by the
  /// same factor) and repeated transforms keep the tile resident instead
  /// of reloading it; on the pool path the chunked calls of one level
  /// declare the key as their chain, so each lane pays the level's tile
  /// load once while it stays cached. Off by default: the untagged
  /// accounting (l per level serially, plus one reload per extra chunk on
  /// the pool path) is the Theorem 7 contract the PR 2 benches pinned.
  /// The stencil pipelines (§4.6), whose batched transforms re-visit the
  /// same levels many times per call, turn this on.
  bool affinity = false;
  /// Pool-path scheduling (ignored on the serial path). `kEpoch`
  /// (default): each level's chunk fuses its gather, tall tensor product,
  /// and twiddle/scatter into one unit task with the glue CPU charged to
  /// the executing unit, levels are separated by virtual barriers
  /// (`join_epoch`) instead of strict joins, and the recursion read-outs
  /// run as fenced CPU tasks — the whole transform is one non-barrier
  /// round, strict-joined only at the public API boundary and before
  /// submit-thread reads (transposes, Bluestein glue, pointwise
  /// products). `kBarrier`: the historical schedule — glue CPU on the
  /// shared counter, a strict join per level. Output bits, tensor
  /// counters, and aggregate cpu_ops are identical in both modes; only
  /// the split of cpu_ops between the shared CPU and the units moves,
  /// which is exactly what un-bounds the pool speedup from the serial
  /// glue (see bench_pool_algos).
  ExecMode mode = ExecMode::kEpoch;
};

/// Naive O(n^2) DFT on the RAM model (test oracle and small baseline).
CVec dft_naive(const CVec& x, Counters& counters, bool inverse = false);

/// Radix-2 iterative FFT on the RAM model; n must be a power of two.
/// Charges one unit per butterfly. The classical baseline for crossover
/// benchmarks.
CVec fft_ram(const CVec& x, Counters& counters, bool inverse = false);

/// Theorem 7: DFT of one vector on the tensor unit (any length >= 1).
CVec dft_tcu(CplxDevice& dev, const CVec& x, bool inverse = false);

/// Batched forward DFT: every row of `batch` (b x len) is transformed in
/// place. All rows share each level's tensor calls.
void dft_batch_tcu(CplxDevice& dev, MatrixView<Complex> batch,
                   const DftOptions& opts = {});

/// Batched inverse DFT (conjugation trick + 1/len scaling), in place.
void idft_batch_tcu(CplxDevice& dev, MatrixView<Complex> batch,
                    const DftOptions& opts = {});

/// Multi-unit batched DFT: each Cooley-Tukey level's single tall tensor
/// product is split into contiguous row chunks (boundaries on multiples
/// of sqrt(m)) dealt across the pool's units. Output bits and every
/// counter except the call count and latency term match the serial path
/// exactly: a k-way split issues k tall calls instead of one and each
/// unit re-loads the level's Fourier tile, costing (k - 1) * l extra
/// latency per level — the model's inherent cost of parallelizing one
/// call. A 1-unit pool reproduces the serial counters bit-for-bit.
void dft_batch_tcu(DevicePool<Complex>& pool, MatrixView<Complex> batch);
void idft_batch_tcu(DevicePool<Complex>& pool, MatrixView<Complex> batch);

/// Same, over a caller-owned persistent executor (one thread spawn for
/// the whole recursion / a stream of transforms).
void dft_batch_tcu(PoolExecutor<Complex>& exec, MatrixView<Complex> batch,
                   const DftOptions& opts = {});
void idft_batch_tcu(PoolExecutor<Complex>& exec, MatrixView<Complex> batch,
                    const DftOptions& opts = {});

/// 2-D DFT of an r x c matrix: DFT of every row, then of every column.
Matrix<Complex> dft2_tcu(CplxDevice& dev, ConstMatrixView<Complex> x,
                         bool inverse = false, const DftOptions& opts = {});

/// Pool 2-D DFT: both batched passes run their levels row-chunked across
/// the executor's units (same contract as the pool dft_batch_tcu).
Matrix<Complex> dft2_tcu(PoolExecutor<Complex>& exec,
                         ConstMatrixView<Complex> x, bool inverse = false,
                         const DftOptions& opts = {});

/// Circular convolution of equal-length vectors via the convolution
/// theorem (three DFTs + pointwise product).
CVec circular_convolve_tcu(CplxDevice& dev, const CVec& a, const CVec& b,
                           const DftOptions& opts = {});
CVec circular_convolve_tcu(PoolExecutor<Complex>& exec, const CVec& a,
                           const CVec& b, const DftOptions& opts = {});

/// 2-D circular convolution of equal-shape matrices.
Matrix<Complex> circular_convolve2_tcu(CplxDevice& dev,
                                       ConstMatrixView<Complex> a,
                                       ConstMatrixView<Complex> kernel,
                                       const DftOptions& opts = {});
Matrix<Complex> circular_convolve2_tcu(PoolExecutor<Complex>& exec,
                                       ConstMatrixView<Complex> a,
                                       ConstMatrixView<Complex> kernel,
                                       const DftOptions& opts = {});

/// The n x n symmetric Fourier matrix W with W[r][c] = exp(-2 pi i rc/n).
Matrix<Complex> fourier_matrix(std::size_t n, bool inverse = false);

}  // namespace tcu::dft
