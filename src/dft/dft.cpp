#include "dft/dft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tcu::dft {

namespace {

constexpr double kPi = std::numbers::pi;

Complex unit_root(double num, double den, bool inverse) {
  const double angle = (inverse ? 2.0 : -2.0) * kPi * num / den;
  return {std::cos(angle), std::sin(angle)};
}

/// Largest factor f of len with 2 <= f <= s; 0 if none (len prime > s).
std::size_t choose_factor(std::size_t len, std::size_t s) {
  for (std::size_t f = std::min(s, len); f >= 2; --f) {
    if (len % f == 0) return f;
  }
  return 0;
}

void dft_batch_rec(CplxDevice& dev, MatrixView<Complex> batch);

/// All column DFTs of one Cooley-Tukey level for the whole batch with a
/// single tall tensor product: gather the (b*n2) x n1 matrix of column
/// vectors, multiply by W_{n1} zero-padded to the device tile, scatter the
/// results back twiddled, reshaped so each length-n2 subvector of the next
/// level is a contiguous row.
void ct_level(CplxDevice& dev, MatrixView<Complex> batch, std::size_t n1,
              MatrixView<Complex> next) {
  const std::size_t b = batch.rows;
  const std::size_t len = batch.cols;
  const std::size_t n2 = len / n1;
  const std::size_t s = dev.tile_dim();

  // Zero-padded Fourier tile for the column transforms.
  Matrix<Complex> w_tile(s, s, Complex{});
  for (std::size_t r = 0; r < n1; ++r) {
    for (std::size_t c = 0; c < n1; ++c) {
      w_tile(r, c) = unit_root(static_cast<double>((r * c) % n1),
                               static_cast<double>(n1), false);
    }
  }
  dev.charge_cpu(n1 * n1);

  // Gather: G[r*n2 + c][j1] = batch(r, j1*n2 + c) — the column vectors of
  // every row's n1 x n2 arrangement, stacked tall.
  Matrix<Complex> gathered(b * n2, s, Complex{});
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t c = 0; c < n2; ++c) {
      for (std::size_t j1 = 0; j1 < n1; ++j1) {
        gathered(r * n2 + c, j1) = batch(r, j1 * n2 + c);
      }
    }
  }
  dev.charge_cpu(b * len);

  Matrix<Complex> transformed(b * n2, s, Complex{});
  dev.gemm(gathered.view(), w_tile.view(), transformed.view());

  // Twiddle + scatter into the next level's contiguous layout:
  // next(r*n1 + k1, j2) = transformed(r*n2 + j2, k1) * w_len^{k1*j2}.
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      for (std::size_t j2 = 0; j2 < n2; ++j2) {
        const Complex tw =
            unit_root(static_cast<double>((k1 * j2) % len),
                      static_cast<double>(len), false);
        next(r * n1 + k1, j2) = transformed(r * n2 + j2, k1) * tw;
      }
    }
  }
  dev.charge_cpu(2 * b * len);
}

/// Bluestein chirp-z: DFT of prime length len > sqrt(m) via a circular
/// convolution of power-of-two size N >= 2*len - 1.
void bluestein(CplxDevice& dev, MatrixView<Complex> batch) {
  const std::size_t len = batch.cols;
  const std::size_t b = batch.rows;
  std::size_t N = 1;
  while (N < 2 * len - 1) N *= 2;

  // Chirps: a_j = x_j * conj(chirp_j), kernel_j = chirp_j with chirp_j =
  // exp(pi i j^2 / len); y_k = conj(chirp_k) * (a (*) kernel)_k.
  std::vector<Complex> chirp(len);
  for (std::size_t j = 0; j < len; ++j) {
    const auto j2 = static_cast<double>((j * j) % (2 * len));
    const double angle = kPi * j2 / static_cast<double>(len);
    chirp[j] = {std::cos(angle), std::sin(angle)};
  }
  dev.charge_cpu(len);

  Matrix<Complex> a(b, N, Complex{});
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      a(r, j) = batch(r, j) * std::conj(chirp[j]);
    }
  }
  Matrix<Complex> kernel(1, N, Complex{});
  kernel(0, 0) = chirp[0];
  for (std::size_t j = 1; j < len; ++j) {
    kernel(0, j) = chirp[j];
    kernel(0, N - j) = chirp[j];
  }
  dev.charge_cpu(b * len + 2 * len);

  dft_batch_rec(dev, a.view());
  dft_batch_rec(dev, kernel.view());
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < N; ++j) {
      a(r, j) = std::conj(a(r, j) * kernel(0, j));
    }
  }
  dev.charge_cpu(2 * b * N);
  // Inverse DFT of size N via conjugation around the forward transform.
  dft_batch_rec(dev, a.view());
  const double scale = 1.0 / static_cast<double>(N);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t k = 0; k < len; ++k) {
      batch(r, k) = std::conj(a(r, k)) * scale * std::conj(chirp[k]);
    }
  }
  dev.charge_cpu(b * len);
}

void dft_batch_rec(CplxDevice& dev, MatrixView<Complex> batch) {
  const std::size_t len = batch.cols;
  const std::size_t b = batch.rows;
  const std::size_t s = dev.tile_dim();
  if (len <= 1) return;

  if (len <= s) {
    // One tall call transforms the whole batch.
    Matrix<Complex> w_tile(s, s, Complex{});
    for (std::size_t r = 0; r < len; ++r) {
      for (std::size_t c = 0; c < len; ++c) {
        w_tile(r, c) = unit_root(static_cast<double>((r * c) % len),
                                 static_cast<double>(len), false);
      }
    }
    Matrix<Complex> padded(b, s, Complex{});
    for (std::size_t r = 0; r < b; ++r) {
      for (std::size_t j = 0; j < len; ++j) padded(r, j) = batch(r, j);
    }
    Matrix<Complex> out(b, s, Complex{});
    dev.gemm(padded.view(), w_tile.view(), out.view());
    for (std::size_t r = 0; r < b; ++r) {
      for (std::size_t j = 0; j < len; ++j) batch(r, j) = out(r, j);
    }
    dev.charge_cpu(len * len + 2 * b * len);
    return;
  }

  const std::size_t n1 = choose_factor(len, s);
  if (n1 == 0) {
    bluestein(dev, batch);
    return;
  }
  const std::size_t n2 = len / n1;

  Matrix<Complex> next(b * n1, n2, Complex{});
  ct_level(dev, batch, n1, next.view());
  dft_batch_rec(dev, next.view());

  // Column-major read-out: y[k1 + n1*k2] = next(r*n1 + k1, k2).
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      for (std::size_t k2 = 0; k2 < n2; ++k2) {
        batch(r, k1 + n1 * k2) = next(r * n1 + k1, k2);
      }
    }
  }
  dev.charge_cpu(b * len);
}

}  // namespace

Matrix<Complex> fourier_matrix(std::size_t n, bool inverse) {
  Matrix<Complex> w(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      w(r, c) = unit_root(static_cast<double>((r * c) % n),
                          static_cast<double>(n), inverse);
    }
  }
  return w;
}

CVec dft_naive(const CVec& x, Counters& counters, bool inverse) {
  const std::size_t n = x.size();
  CVec y(n, Complex{});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      y[k] += x[j] * unit_root(static_cast<double>((j * k) % n),
                               static_cast<double>(n), inverse);
    }
  }
  if (inverse) {
    for (auto& v : y) v /= static_cast<double>(n);
  }
  counters.charge_cpu(n * n + (inverse ? n : 0));
  return y;
}

CVec fft_ram(const CVec& x, Counters& counters, bool inverse) {
  const std::size_t n = x.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_ram: length must be a power of two");
  }
  CVec a = x;
  std::uint64_t ops = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
    ++ops;
  }
  for (std::size_t half = 1; half < n; half *= 2) {
    const Complex step =
        unit_root(1.0, static_cast<double>(2 * half), inverse);
    for (std::size_t start = 0; start < n; start += 2 * half) {
      Complex w{1.0, 0.0};
      for (std::size_t off = 0; off < half; ++off) {
        const Complex even = a[start + off];
        const Complex odd = a[start + off + half] * w;
        a[start + off] = even + odd;
        a[start + off + half] = even - odd;
        w *= step;
        // One complex multiply + two complex adds per butterfly, plus the
        // twiddle update — charged per complex-word operation, the same
        // granularity the TCU pipelines charge their glue at.
        ops += 4;
      }
    }
  }
  if (inverse) {
    for (auto& v : a) v /= static_cast<double>(n);
    ops += n;
  }
  counters.charge_cpu(ops);
  return a;
}

void dft_batch_tcu(CplxDevice& dev, MatrixView<Complex> batch) {
  if (dev.tile_dim() < 2) {
    throw std::invalid_argument("dft_batch_tcu: needs m >= 4");
  }
  dft_batch_rec(dev, batch);
}

void idft_batch_tcu(CplxDevice& dev, MatrixView<Complex> batch) {
  const std::size_t b = batch.rows, len = batch.cols;
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      batch(r, j) = std::conj(batch(r, j));
    }
  }
  dft_batch_tcu(dev, batch);
  const double scale = 1.0 / static_cast<double>(len);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      batch(r, j) = std::conj(batch(r, j)) * scale;
    }
  }
  dev.charge_cpu(2 * b * len);
}

CVec dft_tcu(CplxDevice& dev, const CVec& x, bool inverse) {
  if (x.empty()) return {};
  Matrix<Complex> batch(1, x.size());
  for (std::size_t j = 0; j < x.size(); ++j) batch(0, j) = x[j];
  if (inverse) {
    idft_batch_tcu(dev, batch.view());
  } else {
    dft_batch_tcu(dev, batch.view());
  }
  dev.charge_cpu(2 * x.size());
  CVec y(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) y[j] = batch(0, j);
  return y;
}

Matrix<Complex> dft2_tcu(CplxDevice& dev, ConstMatrixView<Complex> x,
                         bool inverse) {
  Matrix<Complex> rows = materialize(x);
  dev.charge_cpu(x.rows * x.cols);
  if (inverse) {
    idft_batch_tcu(dev, rows.view());
  } else {
    dft_batch_tcu(dev, rows.view());
  }
  Matrix<Complex> cols = transposed(rows.view().as_const());
  dev.charge_cpu(x.rows * x.cols);
  if (inverse) {
    idft_batch_tcu(dev, cols.view());
  } else {
    dft_batch_tcu(dev, cols.view());
  }
  Matrix<Complex> out = transposed(cols.view().as_const());
  dev.charge_cpu(x.rows * x.cols);
  return out;
}

CVec circular_convolve_tcu(CplxDevice& dev, const CVec& a, const CVec& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("circular_convolve: length mismatch");
  }
  if (a.empty()) return {};
  const std::size_t n = a.size();
  Matrix<Complex> batch(2, n);
  for (std::size_t j = 0; j < n; ++j) {
    batch(0, j) = a[j];
    batch(1, j) = b[j];
  }
  dft_batch_tcu(dev, batch.view());
  Matrix<Complex> prod(1, n);
  for (std::size_t j = 0; j < n; ++j) prod(0, j) = batch(0, j) * batch(1, j);
  dev.charge_cpu(n);
  idft_batch_tcu(dev, prod.view());
  CVec out(n);
  for (std::size_t j = 0; j < n; ++j) out[j] = prod(0, j);
  return out;
}

Matrix<Complex> circular_convolve2_tcu(CplxDevice& dev,
                                       ConstMatrixView<Complex> a,
                                       ConstMatrixView<Complex> kernel) {
  if (a.rows != kernel.rows || a.cols != kernel.cols) {
    throw std::invalid_argument("circular_convolve2: shape mismatch");
  }
  Matrix<Complex> fa = dft2_tcu(dev, a, false);
  Matrix<Complex> fk = dft2_tcu(dev, kernel, false);
  for (std::size_t i = 0; i < fa.rows(); ++i) {
    for (std::size_t j = 0; j < fa.cols(); ++j) fa(i, j) *= fk(i, j);
  }
  dev.charge_cpu(fa.rows() * fa.cols());
  return dft2_tcu(dev, fa.view(), true);
}

}  // namespace tcu::dft
