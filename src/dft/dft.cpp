#include "dft/dft.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <stdexcept>

#include "check/contract.hpp"
#include "linalg/parallel.hpp"

namespace tcu::dft {

namespace {

constexpr double kPi = std::numbers::pi;

Complex unit_root(double num, double den, bool inverse) {
  const double angle = (inverse ? 2.0 : -2.0) * kPi * num / den;
  return {std::cos(angle), std::sin(angle)};
}

/// Largest factor f of len with 2 <= f <= s; 0 if none (len prime > s).
std::size_t choose_factor(std::size_t len, std::size_t s) {
  for (std::size_t f = std::min(s, len); f >= 2; --f) {
    if (len % f == 0) return f;
  }
  return 0;
}

/// Execution context threading the Cooley-Tukey recursion through either
/// a single device or a DevicePool. The one tensor product per level is a
/// tall call whose rows are independent, so the pool path splits it into
/// up to `pool.size()` contiguous row chunks (boundaries on multiples of
/// sqrt(m), so charged rows and tensor_macs equal the serial call's)
/// dealt across the units. Each unit must load the level's Fourier tile
/// once, so a k-way split issues k tall calls where the serial path
/// issues one, paying (k - 1) * l extra load latency per level — the
/// classic parallelization overhead of the model, reported by the pool
/// benches. Every other counter field (rows, macs, cpu_ops, the
/// non-latency tensor time), and every output bit, match the serial path
/// exactly; a 1-unit pool degenerates to the serial schedule, and
/// weak-model units (which pay l per square call anyway) match in every
/// field including latency.
struct DftCtx {
  CplxDevice* dev = nullptr;
  PoolExecutor<Complex>* exec = nullptr;
  /// DftOptions::affinity: tag each level's Fourier tile with its
  /// symbolic content key (make_tile_key(kDftTileTag, n)), so repeated
  /// levels and transforms keep the tile resident. Off = the historical
  /// untagged accounting (the Theorem 7 contract pinned by the PR 2
  /// benches): the serial path pays l once per level — there is no
  /// needless reload *within* a call to fix — and the pool path re-pays l
  /// per extra chunk.
  bool affinity = false;
  /// DftOptions::mode: pool-path scheduling. See epoch_* below.
  ExecMode mode = ExecMode::kEpoch;
  /// Epoch-mode arena: heap owners of matrices that in-flight tasks still
  /// reference after the submitting stack frame returns (per-level
  /// Fourier tiles, per-recursion `next` buffers). Owned by the public
  /// entry point, released at each strict join. Null on the serial path.
  std::vector<std::shared_ptr<Matrix<Complex>>>* keep = nullptr;

  bool epoch() const { return exec != nullptr && mode == ExecMode::kEpoch; }

  /// Strict barrier before a submit-thread read of task-written data
  /// (transposes, Bluestein glue, pointwise products) and at the public
  /// API boundary. No-op on the serial and barrier paths, whose per-level
  /// joins already guarantee quiescence at every such point. The arena is
  /// NOT released here: enclosing recursion frames (a Bluestein sync runs
  /// deep inside the level stack) still hold views into it and submit
  /// read-out tasks against them after we return — only the public entry
  /// point, where the whole recursion has unwound, may drop `keep`.
  void sync() const {
    if (!epoch()) return;
    exec->join();
  }

  std::size_t tile_dim() const {
    return dev ? dev->tile_dim() : exec->pool().unit(0).tile_dim();
  }

  void charge_cpu(std::uint64_t ops) const {
    if (dev) {
      dev->charge_cpu(ops);
    } else {
      exec->pool().charge_cpu(ops);
    }
  }

  /// C = A * B for a tall A and one resident tile B (identity `key`),
  /// row-split over the pool's units (barrier at the end: the caller
  /// immediately reads C). Chunk boundaries are multiples of sqrt(m), so
  /// the charged rows — and on weak-model units the square-call count —
  /// sum to exactly the serial call's charges. With affinity each chunk
  /// declares `key` as its chain, so the dealer routes it to a lane
  /// already holding the level's tile and the load latency is paid once
  /// per lane instead of once per chunk. This dealer deliberately does
  /// NOT route through matmul_tcu_pool_into's row_chunks mode: the DFT
  /// issues raw device calls (sub-tile remainder rows ride the last
  /// chunk's tall call unpadded), while the Theorem 2 tiling would pad
  /// them in scratch and charge the extra CPU work — the serial
  /// counters the pool contract pins would change.
  void gemm(std::uint64_t key, ConstMatrixView<Complex> A,
            ConstMatrixView<Complex> B, MatrixView<Complex> C) const {
    if (dev) {
      if (affinity) {
        dev->gemm_resident(key, A, B, C);
      } else {
        // Theorem 7's historical accounting: one load per level, even if
        // a previous level's (or transform's) tile is still resident.
        check::AllowUntaggedClobber allow_clobber;
        // tcu-lint: untagged-ok(Theorem 7 pays l per level by contract)
        dev->gemm(A, B, C);
      }
      return;
    }
    DevicePool<Complex>& pool = exec->pool();
    const Device<Complex>& unit0 = pool.unit(0);
    const std::size_t s = unit0.tile_dim();
    const std::size_t rows = A.rows;
    const std::size_t tiles = rows / s;  // full tile-rows available
    const std::size_t chunks =
        std::max<std::size_t>(1, std::min(pool.size(), tiles));
    std::size_t r0 = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t tile_cnt = tiles / chunks + (c < tiles % chunks);
      // The last chunk also absorbs the sub-tile remainder rows.
      const std::size_t nr =
          (c + 1 == chunks) ? rows - r0 : tile_cnt * s;
      if (affinity) {
        // tcu-lint: epoch-free-ok(barrier path: a strict join closes this call)
        exec->submit_affine(
            tcu::linalg::detail::strip_tile_cost(unit0, nr, true), {key},
            [A, B, C, r0, nr, key](Device<Complex>& unit) {
              unit.gemm_resident(key, A.row_block(r0, nr), B,
                                 C.row_block(r0, nr));
            });
      } else {
        exec->submit(projected_gemm_cost(unit0, nr),
                     [A, B, C, r0, nr](Device<Complex>& unit) {
                       // tcu-lint: untagged-ok(plain-submit chunk; the dealer dropped the lane mirror)
                       unit.gemm(A.row_block(r0, nr), B, C.row_block(r0, nr));
                     });
      }
      r0 += nr;
    }
    exec->join();
  }
};

void dft_batch_rec(const DftCtx& ctx, MatrixView<Complex> batch);

/// All column DFTs of one Cooley-Tukey level for the whole batch with a
/// single tall tensor product: gather the (b*n2) x n1 matrix of column
/// vectors, multiply by W_{n1} zero-padded to the device tile, scatter the
/// results back twiddled, reshaped so each length-n2 subvector of the next
/// level is a contiguous row.
void ct_level(const DftCtx& ctx, MatrixView<Complex> batch, std::size_t n1,
              MatrixView<Complex> next) {
  const std::size_t b = batch.rows;
  const std::size_t len = batch.cols;
  const std::size_t n2 = len / n1;
  const std::size_t s = ctx.tile_dim();

  // Zero-padded Fourier tile for the column transforms.
  Matrix<Complex> w_tile(s, s, Complex{});
  for (std::size_t r = 0; r < n1; ++r) {
    for (std::size_t c = 0; c < n1; ++c) {
      w_tile(r, c) = unit_root(static_cast<double>((r * c) % n1),
                               static_cast<double>(n1), false);
    }
  }
  ctx.charge_cpu(n1 * n1);

  // Gather: G[r*n2 + c][j1] = batch(r, j1*n2 + c) — the column vectors of
  // every row's n1 x n2 arrangement, stacked tall.
  Matrix<Complex> gathered(b * n2, s, Complex{});
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t c = 0; c < n2; ++c) {
      for (std::size_t j1 = 0; j1 < n1; ++j1) {
        gathered(r * n2 + c, j1) = batch(r, j1 * n2 + c);
      }
    }
  }
  ctx.charge_cpu(b * len);

  Matrix<Complex> transformed(b * n2, s, Complex{});
  // tcu-lint: untagged-ok(DftCtx dispatcher; tags per DftOptions::affinity)
  ctx.gemm(make_tile_key(kDftTileTag, n1), gathered.view(), w_tile.view(),
           transformed.view());

  // Twiddle + scatter into the next level's contiguous layout:
  // next(r*n1 + k1, j2) = transformed(r*n2 + j2, k1) * w_len^{k1*j2}.
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      for (std::size_t j2 = 0; j2 < n2; ++j2) {
        const Complex tw =
            unit_root(static_cast<double>((k1 * j2) % len),
                      static_cast<double>(len), false);
        next(r * n1 + k1, j2) = transformed(r * n2 + j2, k1) * tw;
      }
    }
  }
  ctx.charge_cpu(2 * b * len);
}

/// Epoch-mode ct_level: one fused task per chunk — gather its rows of the
/// level's tall matrix from `batch` into task-local scratch, one tall
/// tensor product, twiddle + scatter into `next` — with the gather and
/// twiddle CPU charged to the executing unit instead of the shared CPU.
/// Chunk boundaries are exactly DftCtx::gemm's (multiples of sqrt(m),
/// min(pool, tiles) chunks), so every tensor counter, the aggregate
/// cpu_ops, and every output bit match the barrier path; only the split
/// of cpu_ops between the shared counter and the units moves. Rows of the
/// tall matrix touch pairwise-disjoint elements of `batch` and `next`, so
/// chunks race on nothing. Ends with a virtual barrier (join_epoch): the
/// next stage's tasks are fence-ordered behind this level's without
/// idling the submit thread.
void ct_level_epoch(const DftCtx& ctx, MatrixView<Complex> batch,
                    std::size_t n1, MatrixView<Complex> next) {
  const std::size_t b = batch.rows;
  const std::size_t len = batch.cols;
  const std::size_t n2 = len / n1;
  const std::size_t s = ctx.tile_dim();

  auto w_tile = std::make_shared<Matrix<Complex>>(s, s, Complex{});
  for (std::size_t r = 0; r < n1; ++r) {
    for (std::size_t c = 0; c < n1; ++c) {
      (*w_tile)(r, c) = unit_root(static_cast<double>((r * c) % n1),
                                  static_cast<double>(n1), false);
    }
  }
  // The tile is built once for every chunk: shared-CPU work by nature.
  ctx.charge_cpu(n1 * n1);
  ctx.keep->push_back(w_tile);

  PoolExecutor<Complex>& exec = *ctx.exec;
  const Device<Complex>& unit0 = exec.pool().unit(0);
  const std::size_t rows = b * n2;
  const std::size_t tiles = rows / s;
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(exec.pool().size(), tiles));
  const std::uint64_t key = make_tile_key(kDftTileTag, n1);
  std::size_t r0 = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t tile_cnt = tiles / chunks + (c < tiles % chunks);
    const std::size_t nr = (c + 1 == chunks) ? rows - r0 : tile_cnt * s;
    const bool affinity = ctx.affinity;
    auto run_chunk = [batch, next, w_tile, r0, nr, n1, n2, len, s, key,
                      affinity](Device<Complex>& unit) {
      // Gather: tall-matrix row r0+i is column vector (r, c) with
      // r = (r0+i)/n2, c = (r0+i)%n2 of row r's n1 x n2 arrangement.
      Matrix<Complex> g(nr, s, Complex{});
      for (std::size_t i = 0; i < nr; ++i) {
        const std::size_t r = (r0 + i) / n2;
        const std::size_t cc = (r0 + i) % n2;
        for (std::size_t j1 = 0; j1 < n1; ++j1) {
          g(i, j1) = batch(r, j1 * n2 + cc);
        }
      }
      unit.charge_cpu(nr * n1);
      Matrix<Complex> t(nr, s, Complex{});
      if (affinity) {
        unit.gemm_resident(key, g.view().as_const(),
                           w_tile->view().as_const(), t.view());
      } else {
        // tcu-lint: untagged-ok(plain-submit chunk; the dealer dropped the lane mirror)
        unit.gemm(g.view().as_const(), w_tile->view().as_const(), t.view());
      }
      // Twiddle + scatter into the next level's contiguous layout.
      for (std::size_t i = 0; i < nr; ++i) {
        const std::size_t r = (r0 + i) / n2;
        const std::size_t j2 = (r0 + i) % n2;
        for (std::size_t k1 = 0; k1 < n1; ++k1) {
          const Complex tw =
              unit_root(static_cast<double>((k1 * j2) % len),
                        static_cast<double>(len), false);
          next(r * n1 + k1, j2) = t(i, k1) * tw;
        }
      }
      unit.charge_cpu(2 * nr * n1);
    };
    const std::uint64_t glue = 3ull * nr * n1;
    if (affinity) {
      // tcu-lint: epoch-free-ok(fence-ordered: join_epoch brackets every level)
      exec.submit_affine(
          tcu::linalg::detail::strip_tile_cost(unit0, nr, true) + glue, {key},
          std::move(run_chunk));
    } else {
      exec.submit(projected_gemm_cost(unit0, nr) + glue,
                  std::move(run_chunk));
    }
    r0 += nr;
  }
  exec.join_epoch();
}

/// Bluestein chirp-z: DFT of prime length len > sqrt(m) via a circular
/// convolution of power-of-two size N >= 2*len - 1.
void bluestein(const DftCtx& ctx, MatrixView<Complex> batch) {
  const std::size_t len = batch.cols;
  const std::size_t b = batch.rows;
  std::size_t N = 1;
  while (N < 2 * len - 1) N *= 2;

  // Chirps: a_j = x_j * conj(chirp_j), kernel_j = chirp_j with chirp_j =
  // exp(pi i j^2 / len); y_k = conj(chirp_k) * (a (*) kernel)_k.
  std::vector<Complex> chirp(len);
  for (std::size_t j = 0; j < len; ++j) {
    const auto j2 = static_cast<double>((j * j) % (2 * len));
    const double angle = kPi * j2 / static_cast<double>(len);
    chirp[j] = {std::cos(angle), std::sin(angle)};
  }
  ctx.charge_cpu(len);

  // The chirp modulation reads `batch` on the submit thread; earlier
  // epoch-mode stages may still be writing it.
  ctx.sync();
  Matrix<Complex> a(b, N, Complex{});
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      a(r, j) = batch(r, j) * std::conj(chirp[j]);
    }
  }
  Matrix<Complex> kernel(1, N, Complex{});
  kernel(0, 0) = chirp[0];
  for (std::size_t j = 1; j < len; ++j) {
    kernel(0, j) = chirp[j];
    kernel(0, N - j) = chirp[j];
  }
  ctx.charge_cpu(b * len + 2 * len);

  dft_batch_rec(ctx, a.view());
  dft_batch_rec(ctx, kernel.view());
  ctx.sync();  // the pointwise product reads both transforms
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < N; ++j) {
      a(r, j) = std::conj(a(r, j) * kernel(0, j));
    }
  }
  ctx.charge_cpu(2 * b * N);
  // Inverse DFT of size N via conjugation around the forward transform.
  dft_batch_rec(ctx, a.view());
  ctx.sync();  // the write-back below reads `a`, and `a` is a local
  const double scale = 1.0 / static_cast<double>(N);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t k = 0; k < len; ++k) {
      batch(r, k) = std::conj(a(r, k)) * scale * std::conj(chirp[k]);
    }
  }
  ctx.charge_cpu(b * len);
}

/// Epoch-mode base case (len <= sqrt(m)): fused pad + tall call +
/// write-back per chunk, same chunk boundaries as DftCtx::gemm over the b
/// batch rows. Each chunk writes its own batch rows; fenced behind the
/// previous stage and ahead of the next by join_epoch.
void base_case_epoch(const DftCtx& ctx, MatrixView<Complex> batch) {
  const std::size_t len = batch.cols;
  const std::size_t b = batch.rows;
  const std::size_t s = ctx.tile_dim();

  auto w_tile = std::make_shared<Matrix<Complex>>(s, s, Complex{});
  for (std::size_t r = 0; r < len; ++r) {
    for (std::size_t c = 0; c < len; ++c) {
      (*w_tile)(r, c) = unit_root(static_cast<double>((r * c) % len),
                                  static_cast<double>(len), false);
    }
  }
  ctx.charge_cpu(len * len);
  ctx.keep->push_back(w_tile);

  PoolExecutor<Complex>& exec = *ctx.exec;
  const Device<Complex>& unit0 = exec.pool().unit(0);
  const std::size_t tiles = b / s;
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(exec.pool().size(), tiles));
  const std::uint64_t key = make_tile_key(kDftTileTag, len);
  std::size_t r0 = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t tile_cnt = tiles / chunks + (c < tiles % chunks);
    const std::size_t nr = (c + 1 == chunks) ? b - r0 : tile_cnt * s;
    const bool affinity = ctx.affinity;
    auto run_chunk = [batch, w_tile, r0, nr, len, s, key,
                      affinity](Device<Complex>& unit) {
      Matrix<Complex> padded(nr, s, Complex{});
      for (std::size_t i = 0; i < nr; ++i) {
        for (std::size_t j = 0; j < len; ++j) {
          padded(i, j) = batch(r0 + i, j);
        }
      }
      unit.charge_cpu(nr * len);
      Matrix<Complex> out(nr, s, Complex{});
      if (affinity) {
        unit.gemm_resident(key, padded.view().as_const(),
                           w_tile->view().as_const(), out.view());
      } else {
        // tcu-lint: untagged-ok(plain-submit chunk; the dealer dropped the lane mirror)
        unit.gemm(padded.view().as_const(), w_tile->view().as_const(),
                  out.view());
      }
      for (std::size_t i = 0; i < nr; ++i) {
        for (std::size_t j = 0; j < len; ++j) {
          batch(r0 + i, j) = out(i, j);
        }
      }
      unit.charge_cpu(nr * len);
    };
    const std::uint64_t glue = 2ull * nr * len;
    if (affinity) {
      // tcu-lint: epoch-free-ok(fence-ordered: join_epoch brackets every level)
      exec.submit_affine(
          tcu::linalg::detail::strip_tile_cost(unit0, nr, true) + glue, {key},
          std::move(run_chunk));
    } else {
      exec.submit(projected_gemm_cost(unit0, nr) + glue,
                  std::move(run_chunk));
    }
    r0 += nr;
  }
  exec.join_epoch();
}

void dft_batch_rec(const DftCtx& ctx, MatrixView<Complex> batch) {
  const std::size_t len = batch.cols;
  const std::size_t b = batch.rows;
  const std::size_t s = ctx.tile_dim();
  if (len <= 1) return;

  if (len <= s && ctx.epoch()) {
    base_case_epoch(ctx, batch);
    return;
  }
  if (len <= s) {
    // One tall call transforms the whole batch.
    Matrix<Complex> w_tile(s, s, Complex{});
    for (std::size_t r = 0; r < len; ++r) {
      for (std::size_t c = 0; c < len; ++c) {
        w_tile(r, c) = unit_root(static_cast<double>((r * c) % len),
                                 static_cast<double>(len), false);
      }
    }
    Matrix<Complex> padded(b, s, Complex{});
    for (std::size_t r = 0; r < b; ++r) {
      for (std::size_t j = 0; j < len; ++j) padded(r, j) = batch(r, j);
    }
    Matrix<Complex> out(b, s, Complex{});
    // tcu-lint: untagged-ok(DftCtx dispatcher; tags per DftOptions::affinity)
    ctx.gemm(make_tile_key(kDftTileTag, len), padded.view(), w_tile.view(),
             out.view());
    for (std::size_t r = 0; r < b; ++r) {
      for (std::size_t j = 0; j < len; ++j) batch(r, j) = out(r, j);
    }
    ctx.charge_cpu(len * len + 2 * b * len);
    return;
  }

  const std::size_t n1 = choose_factor(len, s);
  if (n1 == 0) {
    bluestein(ctx, batch);
    return;
  }
  const std::size_t n2 = len / n1;

  if (ctx.epoch()) {
    // `next` outlives this frame: the read-out tasks below (and the
    // recursion's) run after we return, so the buffer lives in the arena
    // until the enclosing strict join.
    auto owned = std::make_shared<Matrix<Complex>>(b * n1, n2, Complex{});
    ctx.keep->push_back(owned);
    MatrixView<Complex> next = owned->view();
    ct_level_epoch(ctx, batch, n1, next);
    dft_batch_rec(ctx, next);

    // Column-major read-out as fenced CPU tasks: batch rows are written
    // disjointly and no tensor call is issued (submit_cpu leaves the
    // lane's prediction mirror alone).
    PoolExecutor<Complex>& exec = *ctx.exec;
    const std::size_t chunks =
        std::max<std::size_t>(1, std::min(exec.pool().size(), b));
    std::size_t r0 = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t nr = b / chunks + (c < b % chunks);
      exec.submit_cpu(
          static_cast<std::uint64_t>(nr) * len, TaskDeps{},
          [batch, next, r0, nr, n1, n2, len](Device<Complex>& unit) {
            for (std::size_t r = r0; r < r0 + nr; ++r) {
              for (std::size_t k1 = 0; k1 < n1; ++k1) {
                for (std::size_t k2 = 0; k2 < n2; ++k2) {
                  batch(r, k1 + n1 * k2) = next(r * n1 + k1, k2);
                }
              }
            }
            unit.charge_cpu(nr * len);
          });
      r0 += nr;
    }
    exec.join_epoch();
    return;
  }

  Matrix<Complex> next(b * n1, n2, Complex{});
  ct_level(ctx, batch, n1, next.view());
  dft_batch_rec(ctx, next.view());

  // Column-major read-out: y[k1 + n1*k2] = next(r*n1 + k1, k2).
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      for (std::size_t k2 = 0; k2 < n2; ++k2) {
        batch(r, k1 + n1 * k2) = next(r * n1 + k1, k2);
      }
    }
  }
  ctx.charge_cpu(b * len);
}

}  // namespace

Matrix<Complex> fourier_matrix(std::size_t n, bool inverse) {
  Matrix<Complex> w(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      w(r, c) = unit_root(static_cast<double>((r * c) % n),
                          static_cast<double>(n), inverse);
    }
  }
  return w;
}

CVec dft_naive(const CVec& x, Counters& counters, bool inverse) {
  const std::size_t n = x.size();
  CVec y(n, Complex{});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      y[k] += x[j] * unit_root(static_cast<double>((j * k) % n),
                               static_cast<double>(n), inverse);
    }
  }
  if (inverse) {
    for (auto& v : y) v /= static_cast<double>(n);
  }
  counters.charge_cpu(n * n + (inverse ? n : 0));
  return y;
}

CVec fft_ram(const CVec& x, Counters& counters, bool inverse) {
  const std::size_t n = x.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_ram: length must be a power of two");
  }
  CVec a = x;
  std::uint64_t ops = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
    ++ops;
  }
  for (std::size_t half = 1; half < n; half *= 2) {
    const Complex step =
        unit_root(1.0, static_cast<double>(2 * half), inverse);
    for (std::size_t start = 0; start < n; start += 2 * half) {
      Complex w{1.0, 0.0};
      for (std::size_t off = 0; off < half; ++off) {
        const Complex even = a[start + off];
        const Complex odd = a[start + off + half] * w;
        a[start + off] = even + odd;
        a[start + off + half] = even - odd;
        w *= step;
        // One complex multiply + two complex adds per butterfly, plus the
        // twiddle update — charged per complex-word operation, the same
        // granularity the TCU pipelines charge their glue at.
        ops += 4;
      }
    }
  }
  if (inverse) {
    for (auto& v : a) v /= static_cast<double>(n);
    ops += n;
  }
  counters.charge_cpu(ops);
  return a;
}

namespace {

void dft_batch_with_ctx(const DftCtx& ctx, MatrixView<Complex> batch) {
  if (ctx.tile_dim() < 2) {
    throw std::invalid_argument("dft_batch_tcu: needs m >= 4");
  }
  dft_batch_rec(ctx, batch);
}

void idft_batch_with_ctx(const DftCtx& ctx, MatrixView<Complex> batch) {
  const std::size_t b = batch.rows, len = batch.cols;
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      batch(r, j) = std::conj(batch(r, j));
    }
  }
  dft_batch_with_ctx(ctx, batch);
  ctx.sync();  // the conjugate-and-scale below reads task-written rows
  const double scale = 1.0 / static_cast<double>(len);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      batch(r, j) = std::conj(batch(r, j)) * scale;
    }
  }
  ctx.charge_cpu(2 * b * len);
}

}  // namespace

void dft_batch_tcu(CplxDevice& dev, MatrixView<Complex> batch,
                   const DftOptions& opts) {
  dft_batch_with_ctx(DftCtx{.dev = &dev, .affinity = opts.affinity}, batch);
}

void idft_batch_tcu(CplxDevice& dev, MatrixView<Complex> batch,
                    const DftOptions& opts) {
  idft_batch_with_ctx(DftCtx{.dev = &dev, .affinity = opts.affinity}, batch);
}

void dft_batch_tcu(PoolExecutor<Complex>& exec, MatrixView<Complex> batch,
                   const DftOptions& opts) {
  std::vector<std::shared_ptr<Matrix<Complex>>> keep;
  const DftCtx ctx{.exec = &exec, .affinity = opts.affinity,
                   .mode = opts.mode, .keep = &keep};
  dft_batch_with_ctx(ctx, batch);
  ctx.sync();  // public API boundary: the caller reads `batch` next
}

void idft_batch_tcu(PoolExecutor<Complex>& exec, MatrixView<Complex> batch,
                    const DftOptions& opts) {
  std::vector<std::shared_ptr<Matrix<Complex>>> keep;
  const DftCtx ctx{.exec = &exec, .affinity = opts.affinity,
                   .mode = opts.mode, .keep = &keep};
  idft_batch_with_ctx(ctx, batch);
  ctx.sync();
}

void dft_batch_tcu(DevicePool<Complex>& pool, MatrixView<Complex> batch) {
  PoolExecutor<Complex> exec(pool);
  dft_batch_tcu(exec, batch);
}

void idft_batch_tcu(DevicePool<Complex>& pool, MatrixView<Complex> batch) {
  PoolExecutor<Complex> exec(pool);
  idft_batch_tcu(exec, batch);
}

CVec dft_tcu(CplxDevice& dev, const CVec& x, bool inverse) {
  if (x.empty()) return {};
  Matrix<Complex> batch(1, x.size());
  for (std::size_t j = 0; j < x.size(); ++j) batch(0, j) = x[j];
  if (inverse) {
    idft_batch_tcu(dev, batch.view());
  } else {
    dft_batch_tcu(dev, batch.view());
  }
  dev.charge_cpu(2 * x.size());
  CVec y(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) y[j] = batch(0, j);
  return y;
}

namespace {

Matrix<Complex> dft2_with_ctx(const DftCtx& ctx, ConstMatrixView<Complex> x,
                              bool inverse) {
  Matrix<Complex> rows = materialize(x);
  ctx.charge_cpu(x.rows * x.cols);
  if (inverse) {
    idft_batch_with_ctx(ctx, rows.view());
  } else {
    dft_batch_with_ctx(ctx, rows.view());
  }
  ctx.sync();  // the transpose reads task-written rows
  Matrix<Complex> cols = transposed(rows.view().as_const());
  ctx.charge_cpu(x.rows * x.cols);
  if (inverse) {
    idft_batch_with_ctx(ctx, cols.view());
  } else {
    dft_batch_with_ctx(ctx, cols.view());
  }
  ctx.sync();  // ditto, and `cols` is a local the tasks still reference
  Matrix<Complex> out = transposed(cols.view().as_const());
  ctx.charge_cpu(x.rows * x.cols);
  return out;
}

CVec circular_convolve_with_ctx(const DftCtx& ctx, const CVec& a,
                                const CVec& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("circular_convolve: length mismatch");
  }
  if (a.empty()) return {};
  const std::size_t n = a.size();
  Matrix<Complex> batch(2, n);
  for (std::size_t j = 0; j < n; ++j) {
    batch(0, j) = a[j];
    batch(1, j) = b[j];
  }
  dft_batch_with_ctx(ctx, batch.view());
  ctx.sync();  // the pointwise product reads both transformed rows
  Matrix<Complex> prod(1, n);
  for (std::size_t j = 0; j < n; ++j) prod(0, j) = batch(0, j) * batch(1, j);
  ctx.charge_cpu(n);
  idft_batch_with_ctx(ctx, prod.view());
  CVec out(n);
  for (std::size_t j = 0; j < n; ++j) out[j] = prod(0, j);
  return out;
}

Matrix<Complex> circular_convolve2_with_ctx(const DftCtx& ctx,
                                            ConstMatrixView<Complex> a,
                                            ConstMatrixView<Complex> kernel) {
  if (a.rows != kernel.rows || a.cols != kernel.cols) {
    throw std::invalid_argument("circular_convolve2: shape mismatch");
  }
  Matrix<Complex> fa = dft2_with_ctx(ctx, a, false);
  Matrix<Complex> fk = dft2_with_ctx(ctx, kernel, false);
  for (std::size_t i = 0; i < fa.rows(); ++i) {
    for (std::size_t j = 0; j < fa.cols(); ++j) fa(i, j) *= fk(i, j);
  }
  ctx.charge_cpu(fa.rows() * fa.cols());
  return dft2_with_ctx(ctx, fa.view(), true);
}

}  // namespace

Matrix<Complex> dft2_tcu(CplxDevice& dev, ConstMatrixView<Complex> x,
                         bool inverse, const DftOptions& opts) {
  return dft2_with_ctx(DftCtx{.dev = &dev, .affinity = opts.affinity}, x,
                       inverse);
}

Matrix<Complex> dft2_tcu(PoolExecutor<Complex>& exec,
                         ConstMatrixView<Complex> x, bool inverse,
                         const DftOptions& opts) {
  std::vector<std::shared_ptr<Matrix<Complex>>> keep;
  const DftCtx ctx{.exec = &exec, .affinity = opts.affinity,
                   .mode = opts.mode, .keep = &keep};
  return dft2_with_ctx(ctx, x, inverse);  // drained: ends past a sync()
}

CVec circular_convolve_tcu(CplxDevice& dev, const CVec& a, const CVec& b,
                           const DftOptions& opts) {
  return circular_convolve_with_ctx(
      DftCtx{.dev = &dev, .affinity = opts.affinity}, a, b);
}

CVec circular_convolve_tcu(PoolExecutor<Complex>& exec, const CVec& a,
                           const CVec& b, const DftOptions& opts) {
  std::vector<std::shared_ptr<Matrix<Complex>>> keep;
  const DftCtx ctx{.exec = &exec, .affinity = opts.affinity,
                   .mode = opts.mode, .keep = &keep};
  return circular_convolve_with_ctx(ctx, a, b);  // idft drains internally
}

Matrix<Complex> circular_convolve2_tcu(CplxDevice& dev,
                                       ConstMatrixView<Complex> a,
                                       ConstMatrixView<Complex> kernel,
                                       const DftOptions& opts) {
  return circular_convolve2_with_ctx(
      DftCtx{.dev = &dev, .affinity = opts.affinity}, a, kernel);
}

Matrix<Complex> circular_convolve2_tcu(PoolExecutor<Complex>& exec,
                                       ConstMatrixView<Complex> a,
                                       ConstMatrixView<Complex> kernel,
                                       const DftOptions& opts) {
  std::vector<std::shared_ptr<Matrix<Complex>>> keep;
  const DftCtx ctx{.exec = &exec, .affinity = opts.affinity,
                   .mode = opts.mode, .keep = &keep};
  return circular_convolve2_with_ctx(ctx, a, kernel);  // dft2 drains
}

}  // namespace tcu::dft
