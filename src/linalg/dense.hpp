#pragma once
// Dense matrix multiplication in the (m, l)-TCU model.
//
// `matmul_tcu` is the blocked algorithm of Theorem 2: the right operand is
// cut into sqrt(m) x sqrt(m) tiles; for each tile the full left column
// strip is streamed through the tensor unit as one tall call, so the
// latency l is paid once per tile — Theta(n^{3/2}/sqrt(m) + (n/m) l) for
// square sqrt(n) x sqrt(n) inputs, and Corollary 1's bound for rectangular
// shapes. `matmul_naive` is the RAM baseline the paper compares against
// (semiring lower-bound discussion in Theorem 2's proof).

#include <algorithm>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "check/contract.hpp"
#include "core/device.hpp"
#include "core/matrix.hpp"

namespace tcu::linalg {

/// Identity of B's tile at element origin (kb, jb) for residency tagging.
/// An empty function means "key each tile by its storage address" — valid
/// while B is long-lived and unchanged between calls. Callers whose B is a
/// transient repack of long-lived weights (conv2d's im2col filter bank)
/// supply a key derived from the underlying storage instead, so repeated
/// calls keep hitting across rebuilds of the repack.
using TileKeyFn = std::function<std::uint64_t(std::size_t kb, std::size_t jb)>;

/// RAM baseline: definition-based multiplication, charges one unit per
/// multiply-accumulate to `counters`. Works for any p x q times q x r.
template <typename T>
Matrix<T> matmul_naive(ConstMatrixView<T> A, ConstMatrixView<T> B,
                       Counters& counters) {
  if (A.cols != B.rows) {
    throw std::invalid_argument("matmul_naive: inner dimensions differ");
  }
  Matrix<T> C(A.rows, B.cols);
  for (std::size_t i = 0; i < A.rows; ++i) {
    for (std::size_t j = 0; j < B.cols; ++j) {
      T acc{};
      for (std::size_t k = 0; k < A.cols; ++k) acc += A(i, k) * B(k, j);
      C(i, j) = acc;
    }
  }
  counters.charge_cpu(static_cast<std::uint64_t>(A.rows) * B.cols * A.cols);
  return C;
}

namespace detail {

/// One ragged output strip [jb, jb + jw) of the zero-padded Theorem 2
/// path: pad each B tile and the matching A strip into caller-provided
/// scratch, run the chain of tall calls, copy the result out. Shared by
/// the serial path (which reuses one scratch set across strips) and the
/// pool workers (task-local scratch) so their operations and CPU charges
/// cannot drift apart — the pool's bit-identical-to-serial contract
/// depends on it. `do_gemm(kb, a, b, c, accumulate)` issues the tensor
/// call, letting the pool path tag resident-operand keys.
template <typename T, typename GemmFn>
void ragged_strip_into(Device<T>& dev, ConstMatrixView<T> A,
                       ConstMatrixView<T> B, MatrixView<T> C, std::size_t jb,
                       Matrix<T>& b_tile, Matrix<T>& a_strip,
                       Matrix<T>& c_strip, GemmFn&& do_gemm) {
  const std::size_t s = dev.tile_dim();
  const std::size_t p = A.rows, q = A.cols, r = B.cols;
  const std::size_t jw = std::min(s, r - jb);
  c_strip.fill(T{});
  for (std::size_t kb = 0; kb < q; kb += s) {
    const std::size_t kw = std::min(s, q - kb);
    b_tile.fill(T{});
    for (std::size_t i = 0; i < kw; ++i) {
      for (std::size_t j = 0; j < jw; ++j) {
        b_tile(i, j) = B(kb + i, jb + j);
      }
    }
    a_strip.fill(T{});
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t k = 0; k < kw; ++k) a_strip(i, k) = A(i, kb + k);
    }
    dev.charge_cpu(kw * jw + p * kw);
    do_gemm(kb, a_strip.view().as_const(), b_tile.view().as_const(),
            c_strip.view(), /*accumulate=*/kb != 0);
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < jw; ++j) C(i, jb + j) = c_strip(i, j);
  }
  dev.charge_cpu(p * jw);
}

/// The whole Theorem 2 schedule — aligned fast path and ragged scratch
/// path — around a caller-supplied tensor-call body, so the untagged and
/// residency-tagged products run the bit-identical tiling and can never
/// drift apart. `do_gemm(kb, jb, a, b, c, accumulate)` issues the call.
template <typename T, typename GemmFn>
void tiled_matmul_into(Device<T>& dev, ConstMatrixView<T> A,
                       ConstMatrixView<T> B, MatrixView<T> C,
                       GemmFn&& do_gemm) {
  if (A.cols != B.rows || C.rows != A.rows || C.cols != B.cols) {
    throw std::invalid_argument("matmul_tcu: shape mismatch");
  }
  const std::size_t s = dev.tile_dim();
  const std::size_t p = A.rows, q = A.cols, r = B.cols;
  const bool ragged = (p % s) || (q % s) || (r % s);

  if (!ragged) {
    for (std::size_t jb = 0; jb < r; jb += s) {
      for (std::size_t kb = 0; kb < q; kb += s) {
        do_gemm(kb, jb, A.subview(0, kb, p, s), B.subview(kb, jb, s, s),
                C.subview(0, jb, p, s), /*accumulate=*/kb != 0);
      }
    }
    return;
  }

  // Ragged path: pad each operand tile/strip into scratch buffers.
  Matrix<T> b_tile(s, s, T{});
  Matrix<T> a_strip(p, s, T{});
  Matrix<T> c_strip(p, s, T{});
  for (std::size_t jb = 0; jb < r; jb += s) {
    ragged_strip_into(
        dev, A, B, C, jb, b_tile, a_strip, c_strip,
        [&do_gemm, jb](std::size_t kb, ConstMatrixView<T> a,
                       ConstMatrixView<T> b, MatrixView<T> c,
                       bool accumulate) {
          do_gemm(kb, jb, a, b, c, accumulate);
        });
  }
}

}  // namespace detail

/// Theorem 2 (and Corollary 1 for rectangular shapes): C += A * B computed
/// by tiling B into sqrt(m) x sqrt(m) blocks and streaming the matching
/// tall strip of A through the unit once per block. Ragged edges are
/// zero-padded into scratch tiles (the paper assumes divisibility; padding
/// only adds lower-order CPU work, charged honestly).
template <typename T>
void matmul_tcu_into(Device<T>& dev, std::type_identity_t<ConstMatrixView<T>> A,
                     std::type_identity_t<ConstMatrixView<T>> B,
                     std::type_identity_t<MatrixView<T>> C) {
  // The untagged Theorem 2 baseline by definition streams every tile
  // cold; benches compare it against the resident-tagged variant, so it
  // must not borrow residency from earlier work either.
  check::AllowUntaggedClobber allow_clobber;
  detail::tiled_matmul_into(
      dev, A, B, C,
      [&dev](std::size_t, std::size_t, ConstMatrixView<T> a,
             ConstMatrixView<T> b, MatrixView<T> c, bool accumulate) {
        // tcu-lint: untagged-ok(Theorem 2 cold-stream baseline)
        dev.gemm(a, b, c, accumulate);
      });
}

/// Allocating wrapper for `matmul_tcu_into`.
template <typename T>
Matrix<T> matmul_tcu(Device<T>& dev, std::type_identity_t<ConstMatrixView<T>> A,
                     std::type_identity_t<ConstMatrixView<T>> B) {
  Matrix<T> C(A.rows, B.cols, T{});
  matmul_tcu_into(dev, A, B, C.view());
  return C;
}

/// Theorem 2 with residency-tagged weight tiles: identical call structure
/// and charges to `matmul_tcu_into`, but every B tile carries its identity
/// key, so the device's TileCache can serve repeated products against the
/// same weights without re-paying the load latency — one load per tile
/// while it stays resident (`Counters::resident_hits` records the reuse),
/// and in the weak model the square calls of one tall split share their
/// tile's single load. This is the serial half of the §3 asymmetry
/// property the pool's affinity dealer realizes across lanes.
template <typename T>
void matmul_tcu_resident_into(Device<T>& dev,
                              std::type_identity_t<ConstMatrixView<T>> A,
                              std::type_identity_t<ConstMatrixView<T>> B,
                              std::type_identity_t<MatrixView<T>> C,
                              const TileKeyFn& tile_key = {}) {
  detail::tiled_matmul_into(
      dev, A, B, C,
      [&dev, &B, &tile_key](std::size_t kb, std::size_t jb,
                            ConstMatrixView<T> a, ConstMatrixView<T> b,
                            MatrixView<T> c, bool accumulate) {
        const std::uint64_t key =
            tile_key ? tile_key(kb, jb)
                     : reinterpret_cast<std::uintptr_t>(&B(kb, jb));
        dev.gemm_resident(key, a, b, c, accumulate);
      });
}

/// Allocating wrapper for `matmul_tcu_resident_into`.
template <typename T>
Matrix<T> matmul_tcu_resident(Device<T>& dev,
                              std::type_identity_t<ConstMatrixView<T>> A,
                              std::type_identity_t<ConstMatrixView<T>> B,
                              const TileKeyFn& tile_key = {}) {
  Matrix<T> C(A.rows, B.cols, T{});
  matmul_tcu_resident_into(dev, A, B, C.view(), tile_key);
  return C;
}

namespace detail {

/// Shape/tile-dim validation shared by the tile-major products.
template <typename T>
void validate_tiled_b(const Device<T>& dev, const TiledMatrix<T>& B) {
  if (B.tile_dim() != dev.tile_dim()) {
    throw std::invalid_argument(
        "matmul tiled: B tile_dim must equal the device's sqrt(m)");
  }
}

/// Default identity of a tile-major B's tile (kt, jt): the tile's storage
/// address — stable for the TiledMatrix's lifetime, the same contract as
/// row-major `&B(kb, jb)` keys. A caller-supplied TileKeyFn receives the
/// *element* origin (kt*s, jt*s), matching the row-major overloads.
template <typename T>
std::uint64_t tiled_b_key(const TiledMatrix<T>& B, std::size_t kt,
                          std::size_t jt, const TileKeyFn& tile_key) {
  const std::size_t s = B.tile_dim();
  return tile_key ? tile_key(kt * s, jt * s)
                  : static_cast<std::uint64_t>(
                        reinterpret_cast<std::uintptr_t>(B.tile_data(kt, jt)));
}

}  // namespace detail

/// Theorem 2 with a tile-major right operand: every B tile handed to the
/// device is a contiguous s x s block (stride s), not a strided subview
/// of a row-major matrix — the layout contract real TCU loads want. A and
/// C stay row-major; B's logical dimensions must be tile-aligned (pack a
/// padded TiledMatrix, or use the all-tile-major overload, for ragged
/// shapes). Call structure, charges, and — keyed on the same identities —
/// residency transitions are identical to the aligned row-major path.
template <typename T>
void matmul_tcu_resident_into(Device<T>& dev,
                              std::type_identity_t<ConstMatrixView<T>> A,
                              const TiledMatrix<T>& B,
                              std::type_identity_t<MatrixView<T>> C,
                              const TileKeyFn& tile_key = {}) {
  detail::validate_tiled_b(dev, B);
  const std::size_t s = dev.tile_dim();
  if (B.rows() % s || B.cols() % s) {
    throw std::invalid_argument(
        "matmul tiled: B logical shape must be tile-aligned");
  }
  if (A.cols != B.rows() || C.rows != A.rows || C.cols != B.cols()) {
    throw std::invalid_argument("matmul tiled: shape mismatch");
  }
  for (std::size_t jt = 0; jt < B.tile_cols(); ++jt) {
    for (std::size_t kt = 0; kt < B.tile_rows(); ++kt) {
      // tcu-lint: anchored-ok(B is caller-owned long-lived storage; callers that repack or recycle it must evict_all, same contract as the row-major resident overload)
      dev.gemm_resident(detail::tiled_b_key(B, kt, jt, tile_key),
                        A.subview(0, kt * s, A.rows, s), B.tile_view(kt, jt),
                        C.subview(0, jt * s, A.rows, s),
                        /*accumulate=*/kt != 0);
    }
  }
}

/// Fully tile-major product: A's dealt strips (`strip_view`), B's
/// resident tiles, and C's output strips are all contiguous blocks. Any
/// logical shapes — the containers' zero padding stands in for the ragged
/// scratch path, so the device streams padded_rows-tall calls and the
/// logical region of C carries the product (padding rows stay zero).
template <typename T>
void matmul_tcu_resident_into(Device<T>& dev, const TiledMatrix<T>& A,
                              const TiledMatrix<T>& B, TiledMatrix<T>& C,
                              const TileKeyFn& tile_key = {}) {
  detail::validate_tiled_b(dev, B);
  if (A.tile_dim() != B.tile_dim() || C.tile_dim() != B.tile_dim()) {
    throw std::invalid_argument("matmul tiled: operand tile_dim mismatch");
  }
  if (A.cols() != B.rows() || C.rows() != A.rows() || C.cols() != B.cols()) {
    throw std::invalid_argument("matmul tiled: shape mismatch");
  }
  for (std::size_t jt = 0; jt < B.tile_cols(); ++jt) {
    for (std::size_t kt = 0; kt < B.tile_rows(); ++kt) {
      // tcu-lint: anchored-ok(B is caller-owned long-lived storage; callers that repack or recycle it must evict_all, same contract as the row-major resident overload)
      dev.gemm_resident(detail::tiled_b_key(B, kt, jt, tile_key),
                        A.strip_view(kt), B.tile_view(kt, jt),
                        C.strip_view(jt), /*accumulate=*/kt != 0);
    }
  }
}

/// Allocating wrapper for the fully tile-major product.
template <typename T>
TiledMatrix<T> matmul_tcu_resident(Device<T>& dev, const TiledMatrix<T>& A,
                                   const TiledMatrix<T>& B,
                                   const TileKeyFn& tile_key = {}) {
  TiledMatrix<T> C(A.rows(), B.cols(), B.tile_dim());
  matmul_tcu_resident_into(dev, A, B, C, tile_key);
  return C;
}

}  // namespace tcu::linalg
