#pragma once
// Strassen-like dense multiplication with a TCU base case (Theorem 1).
//
// A Strassen-like algorithm (Ballard et al. [4]) with parameters (n0, p0)
// views a sqrt(n) x sqrt(n) product as an sqrt(n0) x sqrt(n0) product of
// submatrix blocks, performs p0 recursive block products and O(n) linear
// work. The paper plugs the tensor unit in at the bottom: recursion stops
// as soon as a subproblem fits the unit, giving running time
// O((n/m)^{omega0} (m + l)) with omega0 = log_{n0} p0.
//
// Implemented instances, both with n0 = 4 (2x2 block split):
//   * p0 = 8 — the standard recursive algorithm (omega0 = 3/2);
//   * p0 = 7 — Strassen (omega0 = log4 7 ~ 1.4037).
//
// The base case uses the Theorem 2 blocked kernel once the current block
// area is at most n0 * m, exactly the recurrence base in the paper's proof.

#include <cstdint>
#include <type_traits>
#include <stdexcept>

#include "linalg/dense.hpp"

namespace tcu::linalg {

struct StrassenOptions {
  int p0 = 7;  ///< 7 = Strassen, 8 = standard recursive
};

namespace detail {

template <typename T>
Matrix<T> add_charged(Device<T>& dev, const Matrix<T>& a, const Matrix<T>& b,
                      T sign = T{1}) {
  Matrix<T> out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out(i, j) = a(i, j) + sign * b(i, j);
    }
  }
  dev.charge_cpu(a.rows() * a.cols());
  return out;
}

template <typename T>
Matrix<T> quadrant(Device<T>& dev, ConstMatrixView<T> X, std::size_t qi,
                   std::size_t qj) {
  const std::size_t h = X.rows / 2;
  Matrix<T> out = materialize(X.subview(qi * h, qj * h, h, h));
  dev.charge_cpu(h * h);
  return out;
}

template <typename T>
Matrix<T> strassen_rec(Device<T>& dev, const Matrix<T>& A, const Matrix<T>& B,
                       const StrassenOptions& opts) {
  const std::size_t d = A.rows();
  if (d * d <= 4 * dev.m() || d % 2 != 0) {
    return matmul_tcu(dev, A.view(), B.view());
  }
  auto a11 = quadrant(dev, A.view(), 0, 0), a12 = quadrant(dev, A.view(), 0, 1);
  auto a21 = quadrant(dev, A.view(), 1, 0), a22 = quadrant(dev, A.view(), 1, 1);
  auto b11 = quadrant(dev, B.view(), 0, 0), b12 = quadrant(dev, B.view(), 0, 1);
  auto b21 = quadrant(dev, B.view(), 1, 0), b22 = quadrant(dev, B.view(), 1, 1);
  const std::size_t h = d / 2;
  Matrix<T> C(d, d);
  auto place = [&](const Matrix<T>& block, std::size_t qi, std::size_t qj) {
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < h; ++j) {
        C(qi * h + i, qj * h + j) = block(i, j);
      }
    }
    dev.charge_cpu(h * h);
  };

  if (opts.p0 == 8) {
    auto c11 = add_charged(dev, strassen_rec(dev, a11, b11, opts),
                           strassen_rec(dev, a12, b21, opts));
    auto c12 = add_charged(dev, strassen_rec(dev, a11, b12, opts),
                           strassen_rec(dev, a12, b22, opts));
    auto c21 = add_charged(dev, strassen_rec(dev, a21, b11, opts),
                           strassen_rec(dev, a22, b21, opts));
    auto c22 = add_charged(dev, strassen_rec(dev, a21, b12, opts),
                           strassen_rec(dev, a22, b22, opts));
    place(c11, 0, 0);
    place(c12, 0, 1);
    place(c21, 1, 0);
    place(c22, 1, 1);
    return C;
  }

  // Strassen's seven products.
  auto m1 = strassen_rec(dev, add_charged(dev, a11, a22),
                         add_charged(dev, b11, b22), opts);
  auto m2 = strassen_rec(dev, add_charged(dev, a21, a22), b11, opts);
  auto m3 = strassen_rec(dev, a11, add_charged(dev, b12, b22, T{-1}), opts);
  auto m4 = strassen_rec(dev, a22, add_charged(dev, b21, b11, T{-1}), opts);
  auto m5 = strassen_rec(dev, add_charged(dev, a11, a12), b22, opts);
  auto m6 = strassen_rec(dev, add_charged(dev, a21, a11, T{-1}),
                         add_charged(dev, b11, b12), opts);
  auto m7 = strassen_rec(dev, add_charged(dev, a12, a22, T{-1}),
                         add_charged(dev, b21, b22), opts);

  auto c11 = add_charged(dev, add_charged(dev, m1, m4),
                         add_charged(dev, m7, m5, T{-1}));
  auto c12 = add_charged(dev, m3, m5);
  auto c21 = add_charged(dev, m2, m4);
  auto c22 = add_charged(dev, add_charged(dev, m1, m2, T{-1}),
                         add_charged(dev, m3, m6));
  place(c11, 0, 0);
  place(c12, 0, 1);
  place(c21, 1, 0);
  place(c22, 1, 1);
  return C;
}

}  // namespace detail

/// Theorem 1: multiply two square matrices with a Strassen-like recursion
/// whose leaves are executed by the tensor unit. Inputs of awkward sizes
/// are zero-padded to the nearest s * 2^k dimension (the paper assumes
/// divisibility; padding adds only lower-order charged CPU work).
template <typename T>
Matrix<T> matmul_strassen_tcu(Device<T>& dev,
                              std::type_identity_t<ConstMatrixView<T>> A,
                              std::type_identity_t<ConstMatrixView<T>> B,
                              StrassenOptions opts = {}) {
  if (A.cols != B.rows || A.rows != A.cols || B.rows != B.cols) {
    throw std::invalid_argument("matmul_strassen_tcu: square inputs required");
  }
  if (opts.p0 != 7 && opts.p0 != 8) {
    throw std::invalid_argument("matmul_strassen_tcu: p0 must be 7 or 8");
  }
  const std::size_t d = A.rows;
  const std::size_t s = dev.tile_dim();
  std::size_t padded = s;
  while (padded < d) padded *= 2;

  if (padded == d) {
    Matrix<T> a = materialize(A);
    Matrix<T> b = materialize(B);
    dev.charge_cpu(2 * d * d);
    return detail::strassen_rec(dev, a, b, opts);
  }
  Matrix<T> a(padded, padded, T{});
  Matrix<T> b(padded, padded, T{});
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = A(i, j);
      b(i, j) = B(i, j);
    }
  }
  dev.charge_cpu(2 * padded * padded);
  Matrix<T> cp = detail::strassen_rec(dev, a, b, opts);
  Matrix<T> C(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) C(i, j) = cp(i, j);
  }
  dev.charge_cpu(d * d);
  return C;
}

/// RAM Strassen baseline (no tensor unit): same recursion with a naive
/// base case, for crossover benchmarks.
template <typename T>
Matrix<T> matmul_strassen_ram(ConstMatrixView<T> A, ConstMatrixView<T> B,
                              Counters& counters,
                              std::size_t base_dim = 32) {
  if (A.cols != B.rows || A.rows != A.cols || B.rows != B.cols) {
    throw std::invalid_argument("matmul_strassen_ram: square inputs required");
  }
  const std::size_t d = A.rows;
  if (d <= base_dim || d % 2 != 0) {
    return matmul_naive(A, B, counters);
  }
  // Reuse the TCU recursion machinery through a throwaway device whose
  // "tensor unit" is the RAM baseline charged at naive cost: simplest is a
  // direct recursive implementation here.
  const std::size_t h = d / 2;
  auto sub = [&](ConstMatrixView<T> X, std::size_t qi, std::size_t qj) {
    Matrix<T> out = materialize(X.subview(qi * h, qj * h, h, h));
    counters.charge_cpu(h * h);
    return out;
  };
  auto add = [&](const Matrix<T>& x, const Matrix<T>& y, T sign = T{1}) {
    Matrix<T> out(h, h);
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < h; ++j) out(i, j) = x(i, j) + sign * y(i, j);
    }
    counters.charge_cpu(h * h);
    return out;
  };
  auto rec = [&](const Matrix<T>& x, const Matrix<T>& y) {
    return matmul_strassen_ram(x.view(), y.view(), counters, base_dim);
  };
  auto a11 = sub(A, 0, 0), a12 = sub(A, 0, 1), a21 = sub(A, 1, 0),
       a22 = sub(A, 1, 1);
  auto b11 = sub(B, 0, 0), b12 = sub(B, 0, 1), b21 = sub(B, 1, 0),
       b22 = sub(B, 1, 1);
  auto m1 = rec(add(a11, a22), add(b11, b22));
  auto m2 = rec(add(a21, a22), b11);
  auto m3 = rec(a11, add(b12, b22, T{-1}));
  auto m4 = rec(a22, add(b21, b11, T{-1}));
  auto m5 = rec(add(a11, a12), b22);
  auto m6 = rec(add(a21, a11, T{-1}), add(b11, b12));
  auto m7 = rec(add(a12, a22, T{-1}), add(b21, b22));
  Matrix<T> C(d, d);
  auto c11 = add(add(m1, m4), add(m7, m5, T{-1}));
  auto c12 = add(m3, m5);
  auto c21 = add(m2, m4);
  auto c22 = add(add(m1, m2, T{-1}), add(m3, m6));
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      C(i, j) = c11(i, j);
      C(i, j + h) = c12(i, j);
      C(i + h, j) = c21(i, j);
      C(i + h, j + h) = c22(i, j);
    }
  }
  counters.charge_cpu(d * d);
  return C;
}

}  // namespace tcu::linalg
