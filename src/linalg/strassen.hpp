#pragma once
// Strassen-like dense multiplication with a TCU base case (Theorem 1).
//
// A Strassen-like algorithm (Ballard et al. [4]) with parameters (n0, p0)
// views a sqrt(n) x sqrt(n) product as an sqrt(n0) x sqrt(n0) product of
// submatrix blocks, performs p0 recursive block products and O(n) linear
// work. The paper plugs the tensor unit in at the bottom: recursion stops
// as soon as a subproblem fits the unit, giving running time
// O((n/m)^{omega0} (m + l)) with omega0 = log_{n0} p0.
//
// Implemented instances, both with n0 = 4 (2x2 block split):
//   * p0 = 8 — the standard recursive algorithm (omega0 = 3/2);
//   * p0 = 7 — Strassen (omega0 = log4 7 ~ 1.4037).
//
// The base case uses the Theorem 2 blocked kernel once the current block
// area is at most n0 * m, exactly the recurrence base in the paper's proof.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/pool.hpp"
#include "linalg/dense.hpp"

namespace tcu::linalg {

struct StrassenOptions {
  int p0 = 7;  ///< 7 = Strassen, 8 = standard recursive
};

namespace detail {

template <typename T>
Matrix<T> add_charged(Device<T>& dev, const Matrix<T>& a, const Matrix<T>& b,
                      T sign = T{1}) {
  Matrix<T> out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out(i, j) = a(i, j) + sign * b(i, j);
    }
  }
  dev.charge_cpu(a.rows() * a.cols());
  return out;
}

template <typename T>
Matrix<T> quadrant(Device<T>& dev, ConstMatrixView<T> X, std::size_t qi,
                   std::size_t qj) {
  const std::size_t h = X.rows / 2;
  Matrix<T> out = materialize(X.subview(qi * h, qj * h, h, h));
  dev.charge_cpu(h * h);
  return out;
}

template <typename T>
Matrix<T> strassen_rec(Device<T>& dev, const Matrix<T>& A, const Matrix<T>& B,
                       const StrassenOptions& opts) {
  const std::size_t d = A.rows();
  if (d * d <= 4 * dev.m() || d % 2 != 0) {
    return matmul_tcu(dev, A.view(), B.view());
  }
  auto a11 = quadrant(dev, A.view(), 0, 0), a12 = quadrant(dev, A.view(), 0, 1);
  auto a21 = quadrant(dev, A.view(), 1, 0), a22 = quadrant(dev, A.view(), 1, 1);
  auto b11 = quadrant(dev, B.view(), 0, 0), b12 = quadrant(dev, B.view(), 0, 1);
  auto b21 = quadrant(dev, B.view(), 1, 0), b22 = quadrant(dev, B.view(), 1, 1);
  const std::size_t h = d / 2;
  Matrix<T> C(d, d);
  auto place = [&](const Matrix<T>& block, std::size_t qi, std::size_t qj) {
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < h; ++j) {
        C(qi * h + i, qj * h + j) = block(i, j);
      }
    }
    dev.charge_cpu(h * h);
  };

  if (opts.p0 == 8) {
    auto c11 = add_charged(dev, strassen_rec(dev, a11, b11, opts),
                           strassen_rec(dev, a12, b21, opts));
    auto c12 = add_charged(dev, strassen_rec(dev, a11, b12, opts),
                           strassen_rec(dev, a12, b22, opts));
    auto c21 = add_charged(dev, strassen_rec(dev, a21, b11, opts),
                           strassen_rec(dev, a22, b21, opts));
    auto c22 = add_charged(dev, strassen_rec(dev, a21, b12, opts),
                           strassen_rec(dev, a22, b22, opts));
    place(c11, 0, 0);
    place(c12, 0, 1);
    place(c21, 1, 0);
    place(c22, 1, 1);
    return C;
  }

  // Strassen's seven products.
  auto m1 = strassen_rec(dev, add_charged(dev, a11, a22),
                         add_charged(dev, b11, b22), opts);
  auto m2 = strassen_rec(dev, add_charged(dev, a21, a22), b11, opts);
  auto m3 = strassen_rec(dev, a11, add_charged(dev, b12, b22, T{-1}), opts);
  auto m4 = strassen_rec(dev, a22, add_charged(dev, b21, b11, T{-1}), opts);
  auto m5 = strassen_rec(dev, add_charged(dev, a11, a12), b22, opts);
  auto m6 = strassen_rec(dev, add_charged(dev, a21, a11, T{-1}),
                         add_charged(dev, b11, b12), opts);
  auto m7 = strassen_rec(dev, add_charged(dev, a12, a22, T{-1}),
                         add_charged(dev, b21, b22), opts);

  auto c11 = add_charged(dev, add_charged(dev, m1, m4),
                         add_charged(dev, m7, m5, T{-1}));
  auto c12 = add_charged(dev, m3, m5);
  auto c21 = add_charged(dev, m2, m4);
  auto c22 = add_charged(dev, add_charged(dev, m1, m2, T{-1}),
                         add_charged(dev, m3, m6));
  place(c11, 0, 0);
  place(c12, 0, 1);
  place(c21, 1, 0);
  place(c22, 1, 1);
  return C;
}

}  // namespace detail

/// Deferred-execution form of the Strassen recursion for the pool path.
/// The top `depth` levels of the recursion tree are unrolled on the
/// submitting thread: their linear steps (quadrant extraction, operand
/// sums, combination) are performed — and charged — exactly as in the
/// serial `strassen_rec`, but each subtree root below is *recorded*
/// instead of executed. The recorded subtrees are independent products;
/// the caller deals them across the pool's worker threads (each worker
/// runs the ordinary serial recursion on its unit) and then runs the
/// returned combine closure bottom-up. Because the same additions
/// produce the same operand bits and every subtree runs the same serial
/// call sequence, the output and the aggregate counters are bit-identical
/// to the serial recursion — only the split of work over units changes.
/// The unroll depth is chosen just deep enough to keep all units fed
/// (p0^depth subtrees), so the plan's operand copies stay a small
/// constant multiple of the input size instead of the full leaf fan-out.
template <typename T>
struct StrassenLeafPlan {
  std::vector<Matrix<T>> leaf_a;   ///< left operand per subtree product
  std::vector<Matrix<T>> leaf_b;   ///< right operand per subtree product
  std::vector<Matrix<T>> results;  ///< filled by the pool workers
};

namespace detail {

/// Exact tensor time the serial recursion will charge for a d x d
/// subtree: p0 recursive products down to the Theorem 2 base case.
template <typename T>
std::uint64_t strassen_subtree_cost(const Device<T>& unit, std::size_t d,
                                    int p0) {
  if (d * d <= 4 * unit.m() || d % 2 != 0) {
    const auto s = static_cast<std::uint64_t>(unit.tile_dim());
    const std::uint64_t tiles = (d + s - 1) / s;
    return tiles * tiles * projected_gemm_cost(unit, d);
  }
  return static_cast<std::uint64_t>(p0) *
         strassen_subtree_cost(unit, d / 2, p0);
}

template <typename T>
std::function<Matrix<T>()> strassen_plan(DevicePool<T>& pool,
                                         StrassenLeafPlan<T>& plan,
                                         const Matrix<T>& A,
                                         const Matrix<T>& B,
                                         const StrassenOptions& opts,
                                         std::size_t depth) {
  const std::size_t d = A.rows();
  if (depth == 0 || d * d <= 4 * pool.unit(0).m() || d % 2 != 0) {
    const std::size_t idx = plan.leaf_a.size();
    plan.leaf_a.push_back(A);
    plan.leaf_b.push_back(B);
    return [&plan, idx] { return std::move(plan.results[idx]); };
  }
  const std::size_t h = d / 2;
  auto add = [&pool](const Matrix<T>& a, const Matrix<T>& b,
                     T sign = T{1}) {
    Matrix<T> out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        out(i, j) = a(i, j) + sign * b(i, j);
      }
    }
    pool.charge_cpu(a.rows() * a.cols());
    return out;
  };
  auto quad = [&pool, h](const Matrix<T>& X, std::size_t qi, std::size_t qj) {
    Matrix<T> out =
        materialize(X.view().subview(qi * h, qj * h, h, h));
    pool.charge_cpu(h * h);
    return out;
  };
  auto a11 = quad(A, 0, 0), a12 = quad(A, 0, 1);
  auto a21 = quad(A, 1, 0), a22 = quad(A, 1, 1);
  auto b11 = quad(B, 0, 0), b12 = quad(B, 0, 1);
  auto b21 = quad(B, 1, 0), b22 = quad(B, 1, 1);

  auto combine = [&pool, h, d, add](std::vector<std::function<Matrix<T>()>> fs,
                                    bool standard) {
    return std::function<Matrix<T>()>([&pool, h, d, add,
                                       fs = std::move(fs), standard] {
      Matrix<T> C(d, d);
      auto place = [&](const Matrix<T>& block, std::size_t qi,
                       std::size_t qj) {
        for (std::size_t i = 0; i < h; ++i) {
          for (std::size_t j = 0; j < h; ++j) {
            C(qi * h + i, qj * h + j) = block(i, j);
          }
        }
        pool.charge_cpu(h * h);
      };
      if (standard) {
        place(add(fs[0](), fs[1]()), 0, 0);
        place(add(fs[2](), fs[3]()), 0, 1);
        place(add(fs[4](), fs[5]()), 1, 0);
        place(add(fs[6](), fs[7]()), 1, 1);
        return C;
      }
      auto m1 = fs[0](), m2 = fs[1](), m3 = fs[2](), m4 = fs[3]();
      auto m5 = fs[4](), m6 = fs[5](), m7 = fs[6]();
      place(add(add(m1, m4), add(m7, m5, T{-1})), 0, 0);
      place(add(m3, m5), 0, 1);
      place(add(m2, m4), 1, 0);
      place(add(add(m1, m2, T{-1}), add(m3, m6)), 1, 1);
      return C;
    });
  };

  if (opts.p0 == 8) {
    std::vector<std::function<Matrix<T>()>> fs;
    fs.push_back(strassen_plan(pool, plan, a11, b11, opts, depth - 1));
    fs.push_back(strassen_plan(pool, plan, a12, b21, opts, depth - 1));
    fs.push_back(strassen_plan(pool, plan, a11, b12, opts, depth - 1));
    fs.push_back(strassen_plan(pool, plan, a12, b22, opts, depth - 1));
    fs.push_back(strassen_plan(pool, plan, a21, b11, opts, depth - 1));
    fs.push_back(strassen_plan(pool, plan, a22, b21, opts, depth - 1));
    fs.push_back(strassen_plan(pool, plan, a21, b12, opts, depth - 1));
    fs.push_back(strassen_plan(pool, plan, a22, b22, opts, depth - 1));
    return combine(std::move(fs), /*standard=*/true);
  }

  // Strassen's seven products, operand sums charged as in the serial path.
  std::vector<std::function<Matrix<T>()>> fs;
  fs.push_back(strassen_plan(pool, plan, add(a11, a22), add(b11, b22), opts,
                             depth - 1));
  fs.push_back(strassen_plan(pool, plan, add(a21, a22), b11, opts,
                             depth - 1));
  fs.push_back(strassen_plan(pool, plan, a11, add(b12, b22, T{-1}), opts,
                             depth - 1));
  fs.push_back(strassen_plan(pool, plan, a22, add(b21, b11, T{-1}), opts,
                             depth - 1));
  fs.push_back(strassen_plan(pool, plan, add(a11, a12), b22, opts,
                             depth - 1));
  fs.push_back(strassen_plan(pool, plan, add(a21, a11, T{-1}),
                             add(b11, b12), opts, depth - 1));
  fs.push_back(strassen_plan(pool, plan, add(a12, a22, T{-1}),
                             add(b21, b22), opts, depth - 1));
  return combine(std::move(fs), /*standard=*/false);
}

/// Deal the recorded subtrees across the executor's units (exact
/// projected costs → deterministic split), run the serial recursion on
/// each, and combine. A subtree's linear work is charged to its unit, so
/// the aggregate still equals the serial device's totals.
template <typename T>
Matrix<T> strassen_run_plan(PoolExecutor<T>& exec, StrassenLeafPlan<T>& plan,
                            const std::function<Matrix<T>()>& root,
                            const StrassenOptions& opts) {
  const Device<T>& unit0 = exec.pool().unit(0);
  plan.results.resize(plan.leaf_a.size());
  for (std::size_t idx = 0; idx < plan.leaf_a.size(); ++idx) {
    const std::uint64_t cost =
        strassen_subtree_cost(unit0, plan.leaf_a[idx].rows(), opts.p0);
    exec.submit(cost, [&plan, idx, opts](Device<T>& unit) {
      plan.results[idx] = strassen_rec(unit, plan.leaf_a[idx],
                                       plan.leaf_b[idx], opts);
    });
  }
  exec.join();
  return root();
}

}  // namespace detail

/// Theorem 1 on a DevicePool: the Strassen-like recursion's linear work
/// runs on the shared CPU while all leaf tile-GEMMs of the call tree are
/// dealt across the pool's worker threads. Output bits and aggregate
/// counters are identical to the single-device `matmul_strassen_tcu`; the
/// makespan drops by up to the unit count.
template <typename T>
Matrix<T> matmul_strassen_tcu_pool(PoolExecutor<T>& exec,
                                   std::type_identity_t<ConstMatrixView<T>> A,
                                   std::type_identity_t<ConstMatrixView<T>> B,
                                   StrassenOptions opts = {}) {
  if (A.cols != B.rows || A.rows != A.cols || B.rows != B.cols) {
    throw std::invalid_argument("matmul_strassen_tcu: square inputs required");
  }
  if (opts.p0 != 7 && opts.p0 != 8) {
    throw std::invalid_argument("matmul_strassen_tcu: p0 must be 7 or 8");
  }
  DevicePool<T>& pool = exec.pool();
  const std::size_t d = A.rows;
  const std::size_t s = pool.unit(0).tile_dim();
  std::size_t padded = s;
  while (padded < d) padded *= 2;

  // Unroll just deep enough to feed every unit several subtrees; deeper
  // unrolling only multiplies the plan's operand copies.
  std::size_t depth = 0;
  std::uint64_t subtrees = 1;
  const std::uint64_t target = 4 * static_cast<std::uint64_t>(pool.size());
  for (std::size_t dd = padded;
       subtrees < target && dd * dd > 4 * pool.unit(0).m() && dd % 2 == 0;
       dd /= 2) {
    ++depth;
    subtrees *= static_cast<std::uint64_t>(opts.p0);
  }

  StrassenLeafPlan<T> plan;
  if (padded == d) {
    Matrix<T> a = materialize(A);
    Matrix<T> b = materialize(B);
    pool.charge_cpu(2 * d * d);
    auto root = detail::strassen_plan(pool, plan, a, b, opts, depth);
    return detail::strassen_run_plan(exec, plan, root, opts);
  }
  Matrix<T> a(padded, padded, T{});
  Matrix<T> b(padded, padded, T{});
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = A(i, j);
      b(i, j) = B(i, j);
    }
  }
  pool.charge_cpu(2 * padded * padded);
  auto root = detail::strassen_plan(pool, plan, a, b, opts, depth);
  Matrix<T> cp = detail::strassen_run_plan(exec, plan, root, opts);
  Matrix<T> C(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) C(i, j) = cp(i, j);
  }
  pool.charge_cpu(d * d);
  return C;
}

/// DevicePool convenience overload (throwaway executor per call).
template <typename T>
Matrix<T> matmul_strassen_tcu_pool(DevicePool<T>& pool,
                                   std::type_identity_t<ConstMatrixView<T>> A,
                                   std::type_identity_t<ConstMatrixView<T>> B,
                                   StrassenOptions opts = {}) {
  PoolExecutor<T> exec(pool);
  return matmul_strassen_tcu_pool(exec, A, B, opts);
}

/// Theorem 1: multiply two square matrices with a Strassen-like recursion
/// whose leaves are executed by the tensor unit. Inputs of awkward sizes
/// are zero-padded to the nearest s * 2^k dimension (the paper assumes
/// divisibility; padding adds only lower-order charged CPU work).
template <typename T>
Matrix<T> matmul_strassen_tcu(Device<T>& dev,
                              std::type_identity_t<ConstMatrixView<T>> A,
                              std::type_identity_t<ConstMatrixView<T>> B,
                              StrassenOptions opts = {}) {
  if (A.cols != B.rows || A.rows != A.cols || B.rows != B.cols) {
    throw std::invalid_argument("matmul_strassen_tcu: square inputs required");
  }
  if (opts.p0 != 7 && opts.p0 != 8) {
    throw std::invalid_argument("matmul_strassen_tcu: p0 must be 7 or 8");
  }
  const std::size_t d = A.rows;
  const std::size_t s = dev.tile_dim();
  std::size_t padded = s;
  while (padded < d) padded *= 2;

  if (padded == d) {
    Matrix<T> a = materialize(A);
    Matrix<T> b = materialize(B);
    dev.charge_cpu(2 * d * d);
    return detail::strassen_rec(dev, a, b, opts);
  }
  Matrix<T> a(padded, padded, T{});
  Matrix<T> b(padded, padded, T{});
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = A(i, j);
      b(i, j) = B(i, j);
    }
  }
  dev.charge_cpu(2 * padded * padded);
  Matrix<T> cp = detail::strassen_rec(dev, a, b, opts);
  Matrix<T> C(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) C(i, j) = cp(i, j);
  }
  dev.charge_cpu(d * d);
  return C;
}

/// RAM Strassen baseline (no tensor unit): same recursion with a naive
/// base case, for crossover benchmarks.
template <typename T>
Matrix<T> matmul_strassen_ram(ConstMatrixView<T> A, ConstMatrixView<T> B,
                              Counters& counters,
                              std::size_t base_dim = 32) {
  if (A.cols != B.rows || A.rows != A.cols || B.rows != B.cols) {
    throw std::invalid_argument("matmul_strassen_ram: square inputs required");
  }
  const std::size_t d = A.rows;
  if (d <= base_dim || d % 2 != 0) {
    return matmul_naive(A, B, counters);
  }
  // Reuse the TCU recursion machinery through a throwaway device whose
  // "tensor unit" is the RAM baseline charged at naive cost: simplest is a
  // direct recursive implementation here.
  const std::size_t h = d / 2;
  auto sub = [&](ConstMatrixView<T> X, std::size_t qi, std::size_t qj) {
    Matrix<T> out = materialize(X.subview(qi * h, qj * h, h, h));
    counters.charge_cpu(h * h);
    return out;
  };
  auto add = [&](const Matrix<T>& x, const Matrix<T>& y, T sign = T{1}) {
    Matrix<T> out(h, h);
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < h; ++j) out(i, j) = x(i, j) + sign * y(i, j);
    }
    counters.charge_cpu(h * h);
    return out;
  };
  auto rec = [&](const Matrix<T>& x, const Matrix<T>& y) {
    return matmul_strassen_ram(x.view(), y.view(), counters, base_dim);
  };
  auto a11 = sub(A, 0, 0), a12 = sub(A, 0, 1), a21 = sub(A, 1, 0),
       a22 = sub(A, 1, 1);
  auto b11 = sub(B, 0, 0), b12 = sub(B, 0, 1), b21 = sub(B, 1, 0),
       b22 = sub(B, 1, 1);
  auto m1 = rec(add(a11, a22), add(b11, b22));
  auto m2 = rec(add(a21, a22), b11);
  auto m3 = rec(a11, add(b12, b22, T{-1}));
  auto m4 = rec(a22, add(b21, b11, T{-1}));
  auto m5 = rec(add(a11, a12), b22);
  auto m6 = rec(add(a21, a11, T{-1}), add(b11, b12));
  auto m7 = rec(add(a12, a22, T{-1}), add(b21, b22));
  Matrix<T> C(d, d);
  auto c11 = add(add(m1, m4), add(m7, m5, T{-1}));
  auto c12 = add(m3, m5);
  auto c21 = add(m2, m4);
  auto c22 = add(add(m1, m2, T{-1}), add(m3, m6));
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      C(i, j) = c11(i, j);
      C(i, j + h) = c12(i, j);
      C(i + h, j) = c21(i, j);
      C(i + h, j + h) = c22(i, j);
    }
  }
  counters.charge_cpu(d * d);
  return C;
}

}  // namespace tcu::linalg
