#pragma once
// Dense multiplication on multiple tensor units (the §3.1/§6 extension).
//
// The Theorem 2 blocked algorithm parallelizes naturally: each output
// column strip (one weight tile column) is an independent chain of tall
// calls, so strips are dealt to units greedily by load. With p units and
// at least p strips the tensor term drops from n^{3/2}/sqrt(m) to
// n^{3/2}/(p sqrt(m)) while each unit still pays l per resident tile —
// measured by the ABL4 ablation bench.

#include <type_traits>

#include "core/pool.hpp"
#include "linalg/dense.hpp"

namespace tcu::linalg {

/// C = A * B across the pool's units; shapes must be multiples of the
/// tile dimension (use matmul_tcu on a single unit for ragged shapes).
template <typename T>
Matrix<T> matmul_tcu_pool(DevicePool<T>& pool,
                          std::type_identity_t<ConstMatrixView<T>> A,
                          std::type_identity_t<ConstMatrixView<T>> B) {
  if (A.cols != B.rows) {
    throw std::invalid_argument("matmul_tcu_pool: inner dimensions differ");
  }
  const std::size_t s = pool.unit(0).tile_dim();
  if ((A.rows % s) || (A.cols % s) || (B.cols % s)) {
    throw std::invalid_argument(
        "matmul_tcu_pool: dimensions must be multiples of sqrt(m)");
  }
  Matrix<T> C(A.rows, B.cols, T{});
  // Deal output strips (independent work) to the least-loaded unit.
  for (std::size_t jb = 0; jb < B.cols; jb += s) {
    Device<T>& unit = pool.least_loaded();
    for (std::size_t kb = 0; kb < A.cols; kb += s) {
      unit.gemm(A.subview(0, kb, A.rows, s), B.subview(kb, jb, s, s),
                C.subview(0, jb, A.rows, s), /*accumulate=*/kb != 0);
    }
  }
  return C;
}

}  // namespace tcu::linalg
