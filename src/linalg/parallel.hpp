#pragma once
// Dense multiplication on multiple tensor units (the §3.1/§6 extension).
//
// The Theorem 2 blocked algorithm parallelizes naturally: each output
// column strip (one weight tile column) is an independent chain of tall
// calls, so strips are dealt to units greedily by load. With p units and
// at least p strips the tensor term drops from n^{3/2}/sqrt(m) to
// n^{3/2}/(p sqrt(m)) while each unit still pays l per resident tile —
// measured by the ABL4 ablation bench.
//
// Execution is genuinely parallel: strips are enqueued on a
// `PoolExecutor` (one worker thread per unit) and write disjoint column
// strips of C, so workers never touch the same memory. Dealing happens on
// the calling thread against *projected* loads equal to the exact
// simulated cost each strip will charge, so the assignment — and with it
// every unit's `Counters` — is bit-identical to the historical serial
// execute-then-pick loop regardless of thread interleaving.

#include <cstdint>
#include <type_traits>

#include "core/pool.hpp"
#include "linalg/dense.hpp"

namespace tcu::linalg {

/// True iff A * B can run on the pool path: strip dealing needs every
/// dimension to be a multiple of the tile dimension. Callers that accept
/// ragged shapes should test this and fall back to the padded
/// single-unit matmul_tcu.
template <typename T>
bool pool_shapes_aligned(const DevicePool<T>& pool, ConstMatrixView<T> A,
                         ConstMatrixView<T> B) {
  const std::size_t s = pool.unit(0).tile_dim();
  return (A.rows % s) == 0 && (A.cols % s) == 0 && (B.cols % s) == 0;
}

/// C = A * B across the pool's units; shapes must be multiples of the
/// tile dimension (use matmul_tcu on a single unit for ragged shapes).
template <typename T>
void matmul_tcu_pool_into(DevicePool<T>& pool,
                          std::type_identity_t<ConstMatrixView<T>> A,
                          std::type_identity_t<ConstMatrixView<T>> B,
                          std::type_identity_t<MatrixView<T>> C) {
  if (A.cols != B.rows) {
    throw std::invalid_argument("matmul_tcu_pool: inner dimensions differ");
  }
  if (C.rows != A.rows || C.cols != B.cols) {
    throw std::invalid_argument("matmul_tcu_pool: output shape mismatch");
  }
  if (!pool_shapes_aligned(pool, A, B)) {
    throw std::invalid_argument(
        "matmul_tcu_pool: dimensions must be multiples of sqrt(m)");
  }
  const std::size_t s = pool.unit(0).tile_dim();
  // Exact simulated cost of one strip: one tall call per weight tile, or
  // ceil(rows/s) square calls per tile on weak-model units — must mirror
  // Device::gemm's charging exactly or the projected dealing would drift
  // from the serial execute-then-pick schedule.
  const Device<T>& unit0 = pool.unit(0);
  const std::uint64_t tile_cost =
      unit0.allows_tall()
          ? tensor_call_cost(A.rows, unit0.m(), unit0.latency())
          : static_cast<std::uint64_t>(A.rows / s) *
                (unit0.m() + unit0.latency());
  const std::uint64_t strip_cost =
      static_cast<std::uint64_t>(A.cols / s) * tile_cost;
  PoolExecutor<T> exec(pool);
  // Deal output strips (independent work) to the least-loaded unit.
  for (std::size_t jb = 0; jb < B.cols; jb += s) {
    exec.submit(strip_cost, [A, B, C, jb, s](Device<T>& unit) {
      for (std::size_t kb = 0; kb < A.cols; kb += s) {
        unit.gemm(A.subview(0, kb, A.rows, s), B.subview(kb, jb, s, s),
                  C.subview(0, jb, A.rows, s), /*accumulate=*/kb != 0);
      }
    });
  }
  exec.join();
}

/// Allocating wrapper for `matmul_tcu_pool_into`.
template <typename T>
Matrix<T> matmul_tcu_pool(DevicePool<T>& pool,
                          std::type_identity_t<ConstMatrixView<T>> A,
                          std::type_identity_t<ConstMatrixView<T>> B) {
  Matrix<T> C(A.rows, B.cols, T{});
  matmul_tcu_pool_into(pool, A, B, C.view());
  return C;
}

}  // namespace tcu::linalg
